// Ablation study for the mechanisms of Sections III-A and III-B (the
// machinery illustrated by Figures 3, 8 and 9 of the paper):
//
//   1. Output-grid resolution: the comparable-slice bound says a new tuple
//      fights at most k^d - (k-1)^d of the k^d partitions; finer grids cut
//      dominance comparisons until bookkeeping overhead wins.
//   2. Input-grid resolution: more input partitions => more, tighter
//      regions => more look-ahead pruning and fewer join pairs, at the cost
//      of more region bookkeeping.
//   3. Signature realization: exact signatures guarantee population (and so
//      enable region/cell pruning); Bloom signatures only skip provably
//      disjoint pairs.
//   4. The analytic slice bound itself, tabulated.
#include <cmath>

#include "bench_common.h"

using namespace progxe;
using namespace progxe::bench;

namespace {

Workload StandardWorkload(const BenchArgs& args, Distribution dist) {
  WorkloadParams params;
  params.distribution = dist;
  params.cardinality = args.ResolveN(6000);
  params.dims = args.ResolveDims(4);
  params.sigma = 0.001;
  params.seed = args.seed;
  return MustMakeWorkload(params);
}

void PrintStatsRow(const char* label, const ProgXeStats& s, double secs) {
  std::printf("  %-14s cmps=%-11llu pairs=%-9llu pruned=%-5zu marked=%-6zu "
              "skip=%-5zu time=%.4fs\n",
              label,
              static_cast<unsigned long long>(s.dominance_comparisons),
              static_cast<unsigned long long>(s.join_pairs_generated),
              s.regions_pruned_lookahead, s.cells_marked_lookahead,
              s.partition_pairs_skipped, secs);
}

ProgXeStats RunWith(const Workload& workload, ProgXeOptions options,
                    double* secs) {
  ProgXeExecutor exec(workload.query(), options);
  Stopwatch watch;
  Status st = exec.Run([](const ResultTuple&) {});
  *secs = watch.ElapsedSeconds();
  if (!st.ok()) {
    std::fprintf(stderr, "run failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return exec.stats();
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);

  std::printf("=== Ablation: ProgXe mechanism contributions ===\n\n");

  // --- 1. Output grid resolution (comparable-slice savings) ---------------
  std::printf("--- output_cells_per_dim sweep (anticorrelated) ---\n");
  {
    Workload w = StandardWorkload(args, Distribution::kAntiCorrelated);
    for (int cells : {1, 2, 4, 8, 16}) {
      ProgXeOptions options;
      options.output_cells_per_dim = cells;
      double secs = 0;
      ProgXeStats stats = RunWith(w, options, &secs);
      char label[32];
      std::snprintf(label, sizeof(label), "k=%d", cells);
      PrintStatsRow(label, stats, secs);
    }
  }

  // --- 2. Input grid resolution (look-ahead pruning power) ----------------
  std::printf("\n--- input_cells_per_dim sweep (correlated) ---\n");
  {
    Workload w = StandardWorkload(args, Distribution::kCorrelated);
    for (int cells : {1, 2, 3, 4}) {
      ProgXeOptions options;
      options.input_cells_per_dim = cells;
      double secs = 0;
      ProgXeStats stats = RunWith(w, options, &secs);
      char label[32];
      std::snprintf(label, sizeof(label), "q=%d", cells);
      PrintStatsRow(label, stats, secs);
    }
  }

  // --- 3. Signature realization --------------------------------------------
  std::printf("\n--- signature mode (independent, low sigma) ---\n");
  {
    WorkloadParams params;
    params.distribution = Distribution::kIndependent;
    params.cardinality = args.ResolveN(6000);
    params.dims = args.ResolveDims(4);
    params.sigma = 0.0005;
    params.seed = args.seed;
    Workload w = MustMakeWorkload(params);
    for (SignatureMode mode : {SignatureMode::kExact, SignatureMode::kBloom}) {
      ProgXeOptions options;
      options.signature_mode = mode;
      double secs = 0;
      ProgXeStats stats = RunWith(w, options, &secs);
      PrintStatsRow(mode == SignatureMode::kExact ? "exact" : "bloom", stats,
                    secs);
    }
  }

  // --- 3b. Partitioning scheme: uniform grid vs adaptive kd splits ---------
  std::printf("\n--- partitioning scheme (per distribution) ---\n");
  for (Distribution dist :
       {Distribution::kCorrelated, Distribution::kIndependent,
        Distribution::kAntiCorrelated}) {
    Workload w = StandardWorkload(args, dist);
    for (PartitioningScheme scheme :
         {PartitioningScheme::kUniformGrid, PartitioningScheme::kKdTree}) {
      ProgXeOptions options;
      options.partitioning = scheme;
      double secs = 0;
      ProgXeStats stats = RunWith(w, options, &secs);
      char label[48];
      std::snprintf(label, sizeof(label), "%s/%s",
                    DistributionName(dist),
                    scheme == PartitioningScheme::kUniformGrid ? "grid"
                                                               : "kd");
      PrintStatsRow(label, stats, secs);
    }
  }

  // --- 4. The analytic comparable-slice bound (Section III-B) -------------
  std::printf("\n--- slice bound: k^d - (k-1)^d of k^d partitions ---\n");
  std::printf("  %-6s %-4s %-14s %-14s %-8s\n", "k", "d", "k^d",
              "slice cells", "fraction");
  for (int d : {2, 3, 4, 5}) {
    for (int k : {4, 8, 16}) {
      const double total = std::pow(k, d);
      const double slice = total - std::pow(k - 1, d);
      std::printf("  %-6d %-4d %-14.0f %-14.0f %-8.4f\n", k, d, total, slice,
                  slice / total);
    }
  }

  std::printf("\n--- ordering ablation is Figure 10; see "
              "bench_fig10_progressiveness ---\n");
  return 0;
}
