// Supplementary comparison (the companion technical report WPI-CS-TR-09-03,
// cited as [12], compares the blocking baselines' execution time; the main
// paper drops JF-SL/JF-SL+/SAJ from the figures because they are blocking).
//
// This bench reports total time, first-result time, join pairs and sorted
// accesses for every baseline plus ProgXe, per distribution.
#include "bench_common.h"

#include "baselines/saj.h"

using namespace progxe;
using namespace progxe::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  const size_t n = args.ResolveN(4000);
  const int dims = args.ResolveDims(4);
  const double sigma = 0.01;

  std::printf("=== Baselines: total time and blocking behaviour ===\n");
  std::printf("d=%d sigma=%g N=%zu\n\n", dims, sigma, n);

  const Algo algos[] = {Algo::kProgXe, Algo::kProgXePlus, Algo::kJfSl,
                        Algo::kJfSlPlus, Algo::kSaj, Algo::kSsmj};
  for (Distribution dist :
       {Distribution::kCorrelated, Distribution::kIndependent,
        Distribution::kAntiCorrelated}) {
    WorkloadParams params;
    params.distribution = dist;
    params.cardinality = n;
    params.dims = dims;
    params.sigma = sigma;
    params.seed = args.seed;
    Workload workload = MustMakeWorkload(params);
    std::printf("--- %s ---\n", DistributionName(dist));
    std::printf("  %-15s %10s %12s %12s %12s\n", "algorithm", "total",
                "t_first", "cmps", "pairs");
    for (Algo algo : algos) {
      auto run = RunAlgorithm(algo, workload);
      if (!run.ok()) {
        std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
        return 1;
      }
      std::printf("  %-15s %9.4fs %11.4fs %12llu %12llu\n",
                  ShortAlgoName(algo), run->metrics.total_time,
                  run->metrics.time_to_first,
                  static_cast<unsigned long long>(run->dominance_comparisons),
                  static_cast<unsigned long long>(run->join_pairs));
    }
    // SAJ extra detail: sorted-access depth.
    SajStats saj_stats;
    if (RunSaj(workload.query(), [](const ResultTuple&) {}, &saj_stats)
            .ok()) {
      std::printf("  (SAJ sorted accesses: R=%zu/%zu T=%zu/%zu%s)\n",
                  saj_stats.rows_accessed_r, n, saj_stats.rows_accessed_t, n,
                  saj_stats.stopped_early ? ", stopped early" : "");
    }
    std::printf("\n");
  }
  return 0;
}
