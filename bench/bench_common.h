// Shared utilities for the figure-reproduction benches.
//
// Every bench binary accepts:
//   --n=<cardinality>   source size |R| = |T| (default: CI-scale)
//   --dims=<d>          skyline dimensions
//   --seed=<s>          workload seed
//   --paper             paper-scale sizes (N = 500K; slow!)
//   --quick             extra-small sizes for smoke runs
//
// The paper's workstation (2009 Java) and this C++ build differ in absolute
// speed, so benches report both wall-clock series and machine-independent
// work counters (dominance comparisons, join pairs). Shapes — who is first,
// who wins, where crossovers fall — are the reproduction target
// (EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace progxe {
namespace bench {

struct BenchArgs {
  size_t n = 0;  // 0 = per-bench default
  int dims = 0;  // 0 = per-bench default
  uint64_t seed = 42;
  bool paper_scale = false;
  bool quick = false;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--n=", 4) == 0) {
        args.n = static_cast<size_t>(std::atoll(arg + 4));
      } else if (std::strncmp(arg, "--dims=", 7) == 0) {
        args.dims = std::atoi(arg + 7);
      } else if (std::strncmp(arg, "--seed=", 7) == 0) {
        args.seed = static_cast<uint64_t>(std::atoll(arg + 7));
      } else if (std::strcmp(arg, "--paper") == 0) {
        args.paper_scale = true;
      } else if (std::strcmp(arg, "--quick") == 0) {
        args.quick = true;
      } else if (std::strcmp(arg, "--help") == 0) {
        std::printf(
            "flags: --n=<N> --dims=<d> --seed=<s> --paper --quick\n");
        std::exit(0);
      }
    }
    return args;
  }

  size_t ResolveN(size_t ci_default) const {
    if (n != 0) return n;
    if (paper_scale) return 500000;
    if (quick) return ci_default / 4 + 1;
    return ci_default;
  }

  int ResolveDims(int d) const { return dims != 0 ? dims : d; }
};

inline const char* ShortAlgoName(Algo algo) {
  switch (algo) {
    case Algo::kProgXe:
      return "ProgXe";
    case Algo::kProgXePlus:
      return "ProgXe+";
    case Algo::kProgXeNoOrder:
      return "ProgXe(NoOrd)";
    case Algo::kProgXePlusNoOrder:
      return "ProgXe+(NoOrd)";
    case Algo::kJfSl:
      return "JF-SL";
    case Algo::kJfSlPlus:
      return "JF-SL+";
    case Algo::kSsmj:
      return "SSMJ";
    case Algo::kSaj:
      return "SAJ";
  }
  return "?";
}

/// Prints one progressiveness series in the paper's figure format:
/// cumulative results over time, sampled at up to `samples` points.
inline void PrintSeries(const ExperimentRun& run, int samples = 8) {
  std::printf("  %-15s total=%-7zu t_first=%9.4fs t_50%%=%9.4fs "
              "t_done=%9.4fs cmps=%-10llu pairs=%llu\n",
              ShortAlgoName(run.algo), run.metrics.total_results,
              run.metrics.time_to_first, run.metrics.time_to_50pct,
              run.metrics.total_time,
              static_cast<unsigned long long>(run.dominance_comparisons),
              static_cast<unsigned long long>(run.join_pairs));
  // Compact series row: "t:count" pairs.
  std::vector<SeriesPoint> pts = run.series;
  if (pts.size() > static_cast<size_t>(samples) && samples >= 2) {
    std::vector<SeriesPoint> sampled;
    const double step = static_cast<double>(pts.size() - 1) /
                        static_cast<double>(samples - 1);
    for (int i = 0; i < samples; ++i) {
      size_t idx = static_cast<size_t>(step * i);
      if (idx >= pts.size()) idx = pts.size() - 1;
      sampled.push_back(pts[idx]);
    }
    sampled.back() = pts.back();
    pts = std::move(sampled);
  }
  std::printf("    series:");
  for (const SeriesPoint& p : pts) {
    std::printf(" %.4fs:%zu", p.t_sec, p.count);
  }
  std::printf("\n");
}

/// Runs one algorithm and prints its series; exits on error.
inline ExperimentRun RunAndPrint(Algo algo, const Workload& workload,
                                 ProgXeOptions tuning = ProgXeOptions()) {
  auto run = RunAlgorithm(algo, workload, tuning);
  if (!run.ok()) {
    std::fprintf(stderr, "error running %s: %s\n", AlgoName(algo),
                 run.status().ToString().c_str());
    std::exit(1);
  }
  PrintSeries(*run);
  return run.MoveValue();
}

inline Workload MustMakeWorkload(const WorkloadParams& params) {
  auto workload = Workload::Make(params);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 workload.status().ToString().c_str());
    std::exit(1);
  }
  return workload.MoveValue();
}

}  // namespace bench
}  // namespace progxe
