// Distributed-execution bench: one K-sharded query served by loopback
// shard workers versus the same query run fully in-process.
//
// Two WorkerServer instances (real TCP on 127.0.0.1, in-process threads)
// serve the four shards of an anticorrelated workload; the coordinator
// side is the ordinary ShardedStream with a worker list. The bench reports
// both makespans, the transport volume (bytes/frames both ways) and RTT
// quantiles, and — the correctness headline CI gates on — whether the
// distributed run delivered exactly the in-process result set
// (`results_match`). Distribution is a placement decision, never a results
// decision.
//
// Extra flags over bench_common: --json=<path>.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "net/net_stats.h"
#include "net/worker_service.h"
#include "progxe/stream.h"
#include "shard/sharded_stream.h"

using namespace progxe;
using namespace progxe::bench;

namespace {

using IdSet = std::vector<std::pair<RowId, RowId>>;

struct DrainResult {
  double makespan = 0.0;
  double t_first = 0.0;
  size_t results = 0;
  uint64_t join_pairs = 0;
  IdSet ids;
};

bool DrainTimed(ProgXeStream* stream, DrainResult* out) {
  Stopwatch watch;
  std::vector<ResultTuple> batch;
  while (stream->NextBatch(0, &batch) > 0) {
    if (out->results == 0) out->t_first = watch.ElapsedSeconds();
    out->results += batch.size();
    for (const ResultTuple& res : batch) {
      out->ids.emplace_back(res.r_id, res.t_id);
    }
  }
  out->makespan = watch.ElapsedSeconds();
  out->join_pairs = stream->stats().join_pairs_generated;
  std::sort(out->ids.begin(), out->ids.end());
  return stream->last_status().ok();
}

// One worker-kill recovery run: fresh loopback workers, budgeted drain,
// worker 0 stopped mid-stream, shard retries allowed to finish the query.
struct RecoveryResult {
  bool ok = false;
  bool results_match = false;
  double makespan = 0.0;
  uint64_t join_pairs = 0;
  uint64_t retries = 0;
  uint64_t replay_pairs_saved = 0;
};

RecoveryResult RunRecoveryLeg(const Workload& workload, const IdSet& reference,
                              uint64_t baseline_pairs, int num_shards,
                              bool checkpoint_retry) {
  RecoveryResult out;
  std::vector<std::unique_ptr<WorkerServer>> servers;
  ShardOptions opts;
  opts.num_shards = num_shards;
  opts.max_retries = 8;
  opts.retry_backoff = std::chrono::milliseconds(1);
  opts.checkpoint_retry = checkpoint_retry;
  for (int i = 0; i < 2; ++i) {
    WorkerServerOptions wopts;
    wopts.port = 0;
    auto server = WorkerServer::Start(wopts);
    if (!server.ok()) {
      std::fprintf(stderr, "recovery worker %d: %s\n", i,
                   server.status().ToString().c_str());
      return out;
    }
    opts.workers.push_back("127.0.0.1:" +
                           std::to_string((*server)->port()));
    servers.push_back(server.MoveValue());
  }
  auto stream = OpenProgXeStream(workload.query(), ProgXeOptions(), opts);
  if (!stream.ok()) {
    std::fprintf(stderr, "recovery open: %s\n",
                 stream.status().ToString().c_str());
    return out;
  }
  // Pump budget scaled to the workload so the drain crosses many region
  // boundaries at any bench size. The kill triggers on *delivery* progress,
  // not a pump count: processed regions only become skip-safe once their
  // results are confirmed delivered, so a kill pinned to an early pump
  // would always find empty checkpoints. Two fifths of the skyline leaves
  // both resumable history behind the kill and real work ahead of it.
  const size_t pump_budget = static_cast<size_t>(
      std::max<uint64_t>(256, baseline_pairs / 24));
  Stopwatch watch;
  std::vector<ResultTuple> batch;
  IdSet ids;
  while (!(*stream)->Finished()) {
    (*stream)->NextBatch(0, pump_budget, &batch);
    for (const ResultTuple& res : batch) {
      ids.emplace_back(res.r_id, res.t_id);
    }
    if (servers[0] != nullptr && ids.size() >= reference.size() * 2 / 5) {
      servers[0]->Stop();
      servers[0].reset();
    }
  }
  out.makespan = watch.ElapsedSeconds();
  if (!(*stream)->last_status().ok()) {
    std::fprintf(stderr, "recovery run failed: %s\n",
                 (*stream)->last_status().ToString().c_str());
    return out;
  }
  std::sort(ids.begin(), ids.end());
  out.results_match = ids == reference;
  out.join_pairs = (*stream)->stats().join_pairs_generated;
  const ShardCoverage coverage = (*stream)->coverage();
  out.retries = coverage.retries;
  out.replay_pairs_saved = coverage.replay_pairs_saved;
  out.ok = true;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  WorkloadParams params;
  params.distribution = Distribution::kAntiCorrelated;
  params.cardinality = args.ResolveN(args.quick ? 3000 : 12000);
  params.dims = args.ResolveDims(4);
  params.sigma = args.quick ? 0.01 : 0.004;
  params.seed = args.seed;
  const Workload workload = MustMakeWorkload(params);
  constexpr int kShards = 4;
  constexpr int kWorkers = 2;

  std::printf("distributed: %s shards=%d workers=%d\n",
              params.ToString().c_str(), kShards, kWorkers);

  ShardOptions local;
  local.num_shards = kShards;
  auto in_process =
      OpenProgXeStream(workload.query(), ProgXeOptions(), local);
  if (!in_process.ok()) {
    std::fprintf(stderr, "in-process open: %s\n",
                 in_process.status().ToString().c_str());
    return 1;
  }
  DrainResult baseline;
  if (!DrainTimed(in_process->get(), &baseline)) {
    std::fprintf(stderr, "in-process run failed: %s\n",
                 (*in_process)->last_status().ToString().c_str());
    return 1;
  }

  std::vector<std::unique_ptr<WorkerServer>> servers;
  ShardOptions distributed;
  distributed.num_shards = kShards;
  for (int i = 0; i < kWorkers; ++i) {
    WorkerServerOptions wopts;
    wopts.port = 0;
    auto server = WorkerServer::Start(wopts);
    if (!server.ok()) {
      std::fprintf(stderr, "worker %d: %s\n", i,
                   server.status().ToString().c_str());
      return 1;
    }
    distributed.workers.push_back("127.0.0.1:" +
                                  std::to_string((*server)->port()));
    servers.push_back(server.MoveValue());
  }

  const NetStatsSnapshot before = SnapshotNetStats();
  auto remote =
      OpenProgXeStream(workload.query(), ProgXeOptions(), distributed);
  if (!remote.ok()) {
    std::fprintf(stderr, "distributed open: %s\n",
                 remote.status().ToString().c_str());
    return 1;
  }
  DrainResult dist;
  if (!DrainTimed(remote->get(), &dist)) {
    std::fprintf(stderr, "distributed run failed: %s\n",
                 (*remote)->last_status().ToString().c_str());
    return 1;
  }
  const NetStatsSnapshot after = SnapshotNetStats();
  const ShardCoverage coverage = (*remote)->coverage();

  // Loopback counts both directions of both processes-worth of traffic in
  // this one process; halving would undercount a real deployment, so the
  // raw deltas are reported as-is and labeled loopback.
  const uint64_t bytes_sent = after.bytes_sent - before.bytes_sent;
  const uint64_t bytes_received = after.bytes_received - before.bytes_received;
  const uint64_t frames = after.frames_sent - before.frames_sent;

  const bool results_match = dist.ids == baseline.ids;
  std::printf(
      "  in-process  makespan=%8.4fs t_first=%8.4fs results=%zu\n"
      "  distributed makespan=%8.4fs t_first=%8.4fs results=%zu "
      "remote=%d/%d retries=%llu\n"
      "  transport   bytes_sent=%llu bytes_received=%llu frames=%llu "
      "rtt_p50<%lluus rtt_p99<%lluus\n"
      "  results_match=%s\n",
      baseline.makespan, baseline.t_first, baseline.results, dist.makespan,
      dist.t_first, dist.results, coverage.remote, coverage.shards,
      static_cast<unsigned long long>(coverage.retries),
      static_cast<unsigned long long>(bytes_sent),
      static_cast<unsigned long long>(bytes_received),
      static_cast<unsigned long long>(frames),
      static_cast<unsigned long long>(after.RttQuantileUs(0.5)),
      static_cast<unsigned long long>(after.RttQuantileUs(0.99)),
      results_match ? "true" : "false");
  if (!results_match) {
    std::fprintf(stderr,
                 "FATAL: distributed delivered %zu results, in-process %zu "
                 "(sets differ)\n",
                 dist.ids.size(), baseline.ids.size());
  }

  // Worker-kill recovery comparison: the same kill schedule with and
  // without checkpointed retry. Both must stay bit-identical; the
  // checkpointed run additionally reports the replay pairs its resumes
  // skipped (CI gates replay_pairs_saved > 0).
  const RecoveryResult with_checkpoint = RunRecoveryLeg(
      workload, baseline.ids, baseline.join_pairs, kShards, true);
  const RecoveryResult full_replay = RunRecoveryLeg(
      workload, baseline.ids, baseline.join_pairs, kShards, false);
  const bool recovery_ok = with_checkpoint.ok && full_replay.ok &&
                           with_checkpoint.results_match &&
                           full_replay.results_match;
  std::printf(
      "  recovery    checkpointed makespan=%8.4fs join_pairs=%llu "
      "retries=%llu saved_pairs=%llu\n"
      "              full-replay  makespan=%8.4fs join_pairs=%llu "
      "retries=%llu\n"
      "              results_match=%s\n",
      with_checkpoint.makespan,
      static_cast<unsigned long long>(with_checkpoint.join_pairs),
      static_cast<unsigned long long>(with_checkpoint.retries),
      static_cast<unsigned long long>(with_checkpoint.replay_pairs_saved),
      full_replay.makespan,
      static_cast<unsigned long long>(full_replay.join_pairs),
      static_cast<unsigned long long>(full_replay.retries),
      recovery_ok ? "true" : "false");
  if (!recovery_ok) {
    std::fprintf(stderr,
                 "FATAL: a worker-kill recovery run diverged from the "
                 "in-process result set\n");
  }

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        out,
        "{\n  \"bench\": \"distributed\",\n  \"n\": %zu,\n"
        "  \"dims\": %d,\n  \"sigma\": %g,\n  \"seed\": %llu,\n"
        "  \"shards\": %d,\n  \"workers\": %d,\n"
        "  \"in_process_makespan_s\": %.6f,\n"
        "  \"distributed_makespan_s\": %.6f,\n"
        "  \"distributed_t_first_s\": %.6f,\n"
        "  \"results\": %zu,\n"
        "  \"bytes_sent\": %llu,\n  \"bytes_received\": %llu,\n"
        "  \"frames\": %llu,\n"
        "  \"rtt_p50_us\": %llu,\n  \"rtt_p99_us\": %llu,\n"
        "  \"retries\": %llu,\n"
        "  \"results_match\": %s,\n"
        "  \"recovery\": {\n"
        "    \"results_match\": %s,\n"
        "    \"retries\": %llu,\n"
        "    \"replay_pairs_saved\": %llu,\n"
        "    \"join_pairs_with_checkpoint\": %llu,\n"
        "    \"join_pairs_full_replay\": %llu,\n"
        "    \"makespan_with_checkpoint_s\": %.6f,\n"
        "    \"makespan_full_replay_s\": %.6f\n"
        "  }\n}\n",
        params.cardinality, params.dims, params.sigma,
        static_cast<unsigned long long>(params.seed), kShards, kWorkers,
        baseline.makespan, dist.makespan, dist.t_first, dist.results,
        static_cast<unsigned long long>(bytes_sent),
        static_cast<unsigned long long>(bytes_received),
        static_cast<unsigned long long>(frames),
        static_cast<unsigned long long>(after.RttQuantileUs(0.5)),
        static_cast<unsigned long long>(after.RttQuantileUs(0.99)),
        static_cast<unsigned long long>(coverage.retries),
        results_match ? "true" : "false", recovery_ok ? "true" : "false",
        static_cast<unsigned long long>(with_checkpoint.retries),
        static_cast<unsigned long long>(with_checkpoint.replay_pairs_saved),
        static_cast<unsigned long long>(with_checkpoint.join_pairs),
        static_cast<unsigned long long>(full_replay.join_pairs),
        with_checkpoint.makespan, full_replay.makespan);
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return results_match && recovery_ok ? 0 : 1;
}
