// Figure 10 (a-c): progressive result generation of the four ProgXe
// variants — ProgXe, ProgXe+, ProgXe (No-Order), ProgXe+ (No-Order) — on
// correlated, independent and anti-correlated data.
//
// Paper setting: d = 4, sigma = 0.001, N = 500K (use --paper). CI default
// scales N down; the shapes under test:
//   * ordering produces earlier and faster results than random order on
//     independent and anti-correlated data;
//   * on correlated data the push-through variants converge on near-
//     identical curves (a handful of tuples dominates everything);
//   * ProgXe (no push-through) is the earliest producer on anti-correlated
//     data, where source-level pruning does not pay for itself.
#include "bench_common.h"

using namespace progxe;
using namespace progxe::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  const size_t n = args.ResolveN(12000);
  const int dims = args.ResolveDims(4);
  const double sigma = 0.001;

  std::printf("=== Figure 10(a-c): ProgXe variants, progressiveness ===\n");
  std::printf("d=%d sigma=%g N=%zu (paper: d=4 sigma=0.001 N=500K)\n\n",
              dims, sigma, n);

  const Algo variants[] = {Algo::kProgXe, Algo::kProgXePlus,
                           Algo::kProgXeNoOrder, Algo::kProgXePlusNoOrder};
  const Distribution dists[] = {Distribution::kCorrelated,
                                Distribution::kIndependent,
                                Distribution::kAntiCorrelated};
  const char* panel[] = {"10a", "10b", "10c"};

  for (int i = 0; i < 3; ++i) {
    WorkloadParams params;
    params.distribution = dists[i];
    params.cardinality = n;
    params.dims = dims;
    params.sigma = sigma;
    params.seed = args.seed;
    Workload workload = MustMakeWorkload(params);
    std::printf("--- Fig %s: %s ---\n", panel[i],
                DistributionName(dists[i]));
    for (Algo algo : variants) {
      RunAndPrint(algo, workload);
    }
    std::printf("\n");
  }
  return 0;
}
