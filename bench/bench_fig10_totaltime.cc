// Figure 10 (d-f): total execution time of the four ProgXe variants as a
// function of join selectivity sigma in [1e-4, 1e-1], per distribution.
//
// Paper setting: d = 4, N = 500K. Shapes under test:
//   * for sigma < 0.01 ordering overhead is negligible (ProgXe tracks
//     ProgXe (No-Order));
//   * for sigma >= 0.01 ordering *reduces* total time (early discards);
//   * the push-through variants pay a pre-pass that pays off on correlated
//     and independent data.
#include "bench_common.h"

using namespace progxe;
using namespace progxe::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  const size_t n = args.ResolveN(4000);
  const int dims = args.ResolveDims(4);
  const double sigmas[] = {0.0001, 0.001, 0.01, 0.1};

  std::printf("=== Figure 10(d-f): ProgXe variants, total time vs sigma ===\n");
  std::printf("d=%d N=%zu (paper: d=4 N=500K)\n\n", dims, n);

  const Algo variants[] = {Algo::kProgXe, Algo::kProgXePlus,
                           Algo::kProgXeNoOrder, Algo::kProgXePlusNoOrder};
  const Distribution dists[] = {Distribution::kCorrelated,
                                Distribution::kIndependent,
                                Distribution::kAntiCorrelated};
  const char* panel[] = {"10d", "10e", "10f"};

  for (int i = 0; i < 3; ++i) {
    std::printf("--- Fig %s: %s ---\n", panel[i],
                DistributionName(dists[i]));
    std::printf("  %-15s", "sigma");
    for (Algo algo : variants) std::printf(" %14s", ShortAlgoName(algo));
    std::printf("\n");
    for (double sigma : sigmas) {
      WorkloadParams params;
      params.distribution = dists[i];
      params.cardinality = n;
      params.dims = dims;
      params.sigma = sigma;
      params.seed = args.seed;
      Workload workload = MustMakeWorkload(params);
      std::printf("  %-15g", sigma);
      for (Algo algo : variants) {
        auto run = RunAlgorithm(algo, workload);
        if (!run.ok()) {
          std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
          return 1;
        }
        std::printf(" %13.4fs", run->metrics.total_time);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  return 0;
}
