// Figure 11 (a-f): progressiveness of ProgXe and ProgXe+ versus SSMJ at
// sigma = 0.01 and sigma = 0.1, per distribution (d = 4, N = 500K in the
// paper).
//
// Shapes under test:
//   * anti-correlated: ProgXe/ProgXe+ report results orders of magnitude
//     earlier than SSMJ (panels c and f);
//   * correlated: ProgXe+ roughly matches SSMJ (panels a and d);
//   * independent: ProgXe+ slightly ahead of SSMJ (panels b and e).
// SSMJ's curve is two vertical steps (its two output batches).
#include "bench_common.h"

using namespace progxe;
using namespace progxe::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  const size_t n = args.ResolveN(4000);
  const int dims = args.ResolveDims(4);
  const double sigmas[] = {0.01, 0.1};

  std::printf("=== Figure 11(a-f): ProgXe / ProgXe+ vs SSMJ ===\n");
  std::printf("d=%d N=%zu (paper: d=4 N=500K)\n\n", dims, n);

  const Algo algos[] = {Algo::kProgXe, Algo::kProgXePlus, Algo::kSsmj};
  const Distribution dists[] = {Distribution::kCorrelated,
                                Distribution::kIndependent,
                                Distribution::kAntiCorrelated};
  const char* panels[2][3] = {{"11a", "11b", "11c"}, {"11d", "11e", "11f"}};

  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < 3; ++i) {
      WorkloadParams params;
      params.distribution = dists[i];
      params.cardinality = n;
      params.dims = dims;
      params.sigma = sigmas[s];
      params.seed = args.seed;
      Workload workload = MustMakeWorkload(params);
      std::printf("--- Fig %s: %s sigma=%g ---\n", panels[s][i],
                  DistributionName(dists[i]), sigmas[s]);
      for (Algo algo : algos) {
        auto run = RunAndPrint(algo, workload);
        if (algo == Algo::kSsmj && run.early_false_positives > 0) {
          std::printf("    (SSMJ batch-1 false positives: %zu)\n",
                      run.early_false_positives);
        }
      }
      std::printf("\n");
    }
  }
  return 0;
}
