// Figure 12 (a-b): higher dimensionality d = 5 at sigma = 0.1.
//
// Shapes under test:
//   * independent (12a): SSMJ's first output is dramatically later than
//     ProgXe / ProgXe+ — push-through pruning power collapses as d grows,
//     so SSMJ's lists approach the full sources;
//   * anti-correlated (12b): the paper reports SSMJ returned nothing after
//     several hours. At CI scale SSMJ does finish, but its time-to-first
//     lags ProgXe by orders of magnitude and its pruning ratio goes to
//     ~zero (reported below).
#include "bench_common.h"

using namespace progxe;
using namespace progxe::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  const size_t n = args.ResolveN(2500);
  const int dims = args.ResolveDims(5);
  const double sigma = 0.1;

  std::printf("=== Figure 12(a-b): d=%d, sigma=%g ===\n", dims, sigma);
  std::printf("N=%zu (paper: N=500K; SSMJ starves on anti-correlated)\n\n",
              n);

  const Algo algos[] = {Algo::kProgXe, Algo::kProgXePlus, Algo::kSsmj};
  const Distribution dists[] = {Distribution::kIndependent,
                                Distribution::kAntiCorrelated};
  const char* panel[] = {"12a", "12b"};

  for (int i = 0; i < 2; ++i) {
    WorkloadParams params;
    params.distribution = dists[i];
    params.cardinality = n;
    params.dims = dims;
    params.sigma = sigma;
    params.seed = args.seed;
    Workload workload = MustMakeWorkload(params);
    std::printf("--- Fig %s: %s ---\n", panel[i],
                DistributionName(dists[i]));
    for (Algo algo : algos) {
      RunAndPrint(algo, workload);
    }
    std::printf("\n");
  }
  return 0;
}
