// Figure 13 (a-c): total execution time of ProgXe and ProgXe+ versus SSMJ
// as a function of join selectivity (d = 4, N = 500K in the paper).
//
// Shapes under test: ProgXe/ProgXe+ competitive with or ahead of SSMJ
// across selectivities, with the gap widening on anti-correlated data where
// SSMJ's source pruning prunes almost nothing yet costs a full pre-pass.
#include "bench_common.h"

using namespace progxe;
using namespace progxe::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  const size_t n = args.ResolveN(4000);
  const int dims = args.ResolveDims(4);
  const double sigmas[] = {0.0001, 0.001, 0.01, 0.1};

  std::printf("=== Figure 13(a-c): total time vs sigma, vs SSMJ ===\n");
  std::printf("d=%d N=%zu (paper: d=4 N=500K)\n\n", dims, n);

  const Algo algos[] = {Algo::kProgXe, Algo::kProgXePlus, Algo::kSsmj};
  const Distribution dists[] = {Distribution::kCorrelated,
                                Distribution::kIndependent,
                                Distribution::kAntiCorrelated};
  const char* panel[] = {"13a", "13b", "13c"};

  for (int i = 0; i < 3; ++i) {
    std::printf("--- Fig %s: %s ---\n", panel[i],
                DistributionName(dists[i]));
    std::printf("  %-10s %14s %14s %14s %16s\n", "sigma", "ProgXe",
                "ProgXe+", "SSMJ", "SSMJ-t_first");
    for (double sigma : sigmas) {
      WorkloadParams params;
      params.distribution = dists[i];
      params.cardinality = n;
      params.dims = dims;
      params.sigma = sigma;
      params.seed = args.seed;
      Workload workload = MustMakeWorkload(params);
      std::printf("  %-10g", sigma);
      double ssmj_first = -1;
      for (Algo algo : algos) {
        auto run = RunAlgorithm(algo, workload);
        if (!run.ok()) {
          std::fprintf(stderr, "error: %s\n",
                       run.status().ToString().c_str());
          return 1;
        }
        std::printf(" %13.4fs", run->metrics.total_time);
        if (algo == Algo::kSsmj) ssmj_first = run->metrics.time_to_first;
      }
      std::printf(" %15.4fs\n", ssmj_first);
    }
    std::printf("\n");
  }
  return 0;
}
