// Machine-readable bench summary: runs the Fig-10/13 total-time matrix
// (ProgXe variants + SSMJ across distributions and selectivities) and
// writes one JSON object per config to a file — the data source behind
// BENCH_progxe.json (see tools/run_bench.sh).
//
// Extra flag over bench_common: --out=<path> (default BENCH_progxe.json).
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace progxe;
using namespace progxe::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  std::string out_path = "BENCH_progxe.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  const size_t n = args.ResolveN(3000);
  const int dims = args.ResolveDims(4);

  const Algo algos[] = {Algo::kProgXe, Algo::kProgXePlus,
                        Algo::kProgXeNoOrder, Algo::kSsmj};
  const Distribution dists[] = {Distribution::kCorrelated,
                                Distribution::kIndependent,
                                Distribution::kAntiCorrelated};
  const double sigmas[] = {0.001, 0.01, 0.1};

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"progxe_totaltime\",\n");
  std::fprintf(out, "  \"n\": %zu,\n  \"dims\": %d,\n  \"seed\": %llu,\n",
               n, dims, static_cast<unsigned long long>(args.seed));
  std::fprintf(out, "  \"configs\": [\n");

  bool first = true;
  for (Distribution dist : dists) {
    for (double sigma : sigmas) {
      WorkloadParams params;
      params.distribution = dist;
      params.cardinality = n;
      params.dims = dims;
      params.sigma = sigma;
      params.seed = args.seed;
      Workload workload = MustMakeWorkload(params);
      for (Algo algo : algos) {
        auto run = RunAlgorithm(algo, workload);
        if (!run.ok()) {
          std::fprintf(stderr, "error running %s: %s\n", AlgoName(algo),
                       run.status().ToString().c_str());
          std::fclose(out);
          return 1;
        }
        if (!first) std::fprintf(out, ",\n");
        first = false;
        std::fprintf(out,
                     "    {\"dist\": \"%s\", \"sigma\": %g, \"algo\": "
                     "\"%s\", \"total_time_s\": %.6f, "
                     "\"time_to_first_s\": %.6f, \"time_to_50pct_s\": %.6f, "
                     "\"results\": %zu, \"dominance_comparisons\": %llu, "
                     "\"join_pairs\": %llu}",
                     DistributionName(dist), sigma, ShortAlgoName(algo),
                     run->metrics.total_time, run->metrics.time_to_first,
                     run->metrics.time_to_50pct, run->metrics.total_results,
                     static_cast<unsigned long long>(
                         run->dominance_comparisons),
                     static_cast<unsigned long long>(run->join_pairs));
        std::printf("%-15s %-15s sigma=%-7g total=%.4fs first=%.4fs\n",
                    DistributionName(dist), ShortAlgoName(algo), sigma,
                    run->metrics.total_time, run->metrics.time_to_first);
      }
    }
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
