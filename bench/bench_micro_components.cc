// google-benchmark micro-benchmarks for the library's building blocks:
// dominance tests, skyline algorithms, Bloom filters, grid geometry, joins
// and the OutputTable insert path.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "data/generator.h"
#include "grid/bloom_filter.h"
#include "grid/grid_geometry.h"
#include "join/hash_join.h"
#include "mapping/canonical.h"
#include "prefs/dominance.h"
#include "progxe/output_table.h"
#include "skyline/skyline.h"

namespace progxe {
namespace {

std::vector<double> RandomPoints(size_t n, int d, Distribution dist,
                                 uint64_t seed = 1) {
  GeneratorOptions opts;
  opts.distribution = dist;
  opts.cardinality = n;
  opts.num_attributes = d;
  opts.seed = seed;
  Relation rel = GenerateRelation(opts).MoveValue();
  std::vector<double> flat;
  flat.reserve(n * static_cast<size_t>(d));
  for (RowId i = 0; i < rel.size(); ++i) {
    auto span = rel.attrs(i);
    flat.insert(flat.end(), span.begin(), span.end());
  }
  return flat;
}

void BM_DominatesMin(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  std::vector<double> pts = RandomPoints(1024, d, Distribution::kIndependent);
  size_t i = 0;
  for (auto _ : state) {
    const double* a = pts.data() + (i % 1000) * static_cast<size_t>(d);
    const double* b = pts.data() + ((i + 13) % 1000) * static_cast<size_t>(d);
    benchmark::DoNotOptimize(DominatesMin(a, b, d));
    ++i;
  }
}
BENCHMARK(BM_DominatesMin)->Arg(2)->Arg(4)->Arg(8);

void BM_SkylineBNL(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto dist = static_cast<Distribution>(state.range(1));
  std::vector<double> pts = RandomPoints(n, 4, dist);
  PointView view{pts.data(), n, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(SkylineBNL(view));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SkylineBNL)
    ->Args({2000, static_cast<int>(Distribution::kCorrelated)})
    ->Args({2000, static_cast<int>(Distribution::kIndependent)})
    ->Args({2000, static_cast<int>(Distribution::kAntiCorrelated)});

void BM_SkylineSFS(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto dist = static_cast<Distribution>(state.range(1));
  std::vector<double> pts = RandomPoints(n, 4, dist);
  PointView view{pts.data(), n, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(SkylineSFS(view));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SkylineSFS)
    ->Args({2000, static_cast<int>(Distribution::kCorrelated)})
    ->Args({2000, static_cast<int>(Distribution::kIndependent)})
    ->Args({2000, static_cast<int>(Distribution::kAntiCorrelated)});

void BM_BloomFilterAdd(benchmark::State& state) {
  BloomFilter bloom(8192, 4);
  uint64_t k = 0;
  for (auto _ : state) {
    bloom.Add(k++);
  }
}
BENCHMARK(BM_BloomFilterAdd);

void BM_BloomFilterQuery(benchmark::State& state) {
  BloomFilter bloom(8192, 4);
  for (uint64_t k = 0; k < 500; ++k) bloom.Add(k * 3);
  uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bloom.MightContain(k++));
  }
}
BENCHMARK(BM_BloomFilterQuery);

void BM_GridCoordsOf(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  GridGeometry grid(std::vector<Interval>(static_cast<size_t>(d),
                                          Interval(0, 100)),
                    12);
  std::vector<double> pts = RandomPoints(1024, d, Distribution::kIndependent);
  std::vector<CellCoord> coords(static_cast<size_t>(d));
  size_t i = 0;
  for (auto _ : state) {
    grid.CoordsOf(pts.data() + (i % 1000) * static_cast<size_t>(d),
                  coords.data());
    benchmark::DoNotOptimize(grid.IndexOf(coords.data()));
    ++i;
  }
}
BENCHMARK(BM_GridCoordsOf)->Arg(2)->Arg(4)->Arg(5);

void BM_HashJoin(benchmark::State& state) {
  const double sigma = 1.0 / static_cast<double>(state.range(0));
  GeneratorOptions opts;
  opts.cardinality = 5000;
  opts.num_attributes = 2;
  opts.join_selectivity = sigma;
  opts.seed = 1;
  Relation r = GenerateRelation(opts).MoveValue();
  opts.seed = 2;
  Relation t = GenerateRelation(opts).MoveValue();
  for (auto _ : state) {
    size_t count = 0;
    HashJoin(r, t, [&count](RowId, RowId) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_HashJoin)->Arg(10)->Arg(1000);

void BM_OutputTableInsert(benchmark::State& state) {
  const int d = 4;
  std::vector<double> pts =
      RandomPoints(20000, d, Distribution::kAntiCorrelated);
  ProgXeStats stats;
  for (auto _ : state) {
    state.PauseTiming();
    GridGeometry grid(std::vector<Interval>(static_cast<size_t>(d),
                                            Interval(0, 100)),
                      10);
    OutputTable table(
        grid,
        std::vector<uint8_t>(static_cast<size_t>(grid.total_cells()), 0),
        &stats);
    state.ResumeTiming();
    for (size_t i = 0; i < 20000; ++i) {
      table.Insert(pts.data() + i * static_cast<size_t>(d),
                   static_cast<RowId>(i), 0);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 20000);
}
BENCHMARK(BM_OutputTableInsert);

void BM_OutputTableInsertBatch(benchmark::State& state) {
  const int d = 4;
  const size_t batch = static_cast<size_t>(state.range(0));
  std::vector<double> pts =
      RandomPoints(20000, d, Distribution::kAntiCorrelated);
  std::vector<RowIdPair> ids(20000);
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = RowIdPair{static_cast<RowId>(i), 0};
  }
  ProgXeStats stats;
  for (auto _ : state) {
    state.PauseTiming();
    GridGeometry grid(std::vector<Interval>(static_cast<size_t>(d),
                                            Interval(0, 100)),
                      10);
    OutputTable table(
        grid,
        std::vector<uint8_t>(static_cast<size_t>(grid.total_cells()), 0),
        &stats);
    state.ResumeTiming();
    for (size_t i = 0; i < 20000; i += batch) {
      const size_t m = std::min(batch, 20000 - i);
      table.InsertBatch(pts.data() + i * static_cast<size_t>(d),
                        ids.data() + i, m);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 20000);
}
BENCHMARK(BM_OutputTableInsertBatch)->Arg(64)->Arg(256)->Arg(1024);

void BM_CombineBatch(benchmark::State& state) {
  // The parallel pipeline's worker-side map stage: one CombineBatch call
  // per chunk. Transform arg 0 = identity pairwise sums, 1 = rotating
  // log1p/sqrt (realistic Q1-style expressions).
  //
  // Hoisting the transform dispatch out of the pair loop (one switch per
  // dimension driving a specialized inner loop, identity skipping the sign
  // folds outright) moved this machine from 9454 ns / 108.9M items/s (/0)
  // and 35516 ns / 29.8M items/s (/1) to 5052 ns / 207.8M items/s and
  // 30067 ns / 34.8M items/s respectively.
  const int d = 4;
  const bool transformed = state.range(0) != 0;
  const size_t n_rows = 4096;
  const size_t batch = 1024;

  std::vector<MapFunc> funcs;
  for (int j = 0; j < d; ++j) {
    const Transform tf = !transformed         ? Transform::kIdentity
                         : (j % 2 == 0)       ? Transform::kLog1p
                                              : Transform::kSqrt;
    funcs.push_back(MapFunc(
        {MapTerm{Side::kR, j, 1.0}, MapTerm{Side::kT, j, 1.0}}, 0.0, tf));
  }
  CanonicalMapper mapper(MapSpec(std::move(funcs)),
                         Preference::AllLowest(d));

  std::vector<double> r_flat =
      RandomPoints(n_rows, d, Distribution::kIndependent, 3);
  std::vector<double> t_flat =
      RandomPoints(n_rows, d, Distribution::kIndependent, 4);
  std::vector<RowIdPair> pairs(batch);
  Rng rng(99);
  for (size_t i = 0; i < batch; ++i) {
    pairs[i] = RowIdPair{static_cast<RowId>(rng.NextBelow(n_rows)),
                         static_cast<RowId>(rng.NextBelow(n_rows))};
  }
  std::vector<double> out(batch * static_cast<size_t>(d));
  for (auto _ : state) {
    mapper.CombineBatch(pairs.data(), batch, r_flat.data(), t_flat.data(),
                        out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_CombineBatch)->Arg(0)->Arg(1);

void BM_Generator(benchmark::State& state) {
  const auto dist = static_cast<Distribution>(state.range(0));
  GeneratorOptions opts;
  opts.distribution = dist;
  opts.cardinality = 10000;
  opts.num_attributes = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateRelation(opts));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_Generator)
    ->Arg(static_cast<int>(Distribution::kIndependent))
    ->Arg(static_cast<int>(Distribution::kCorrelated))
    ->Arg(static_cast<int>(Distribution::kAntiCorrelated));

}  // namespace
}  // namespace progxe

BENCHMARK_MAIN();
