// Multi-query serving bench: aggregate throughput and time-to-first-result
// for a mixed light/heavy workload served through the QueryScheduler.
//
// The workload is the serving-layer stress the paper's aggregator scenario
// implies: a few heavy analytical queries submitted first, then a burst of
// light interactive ones. The interesting numbers are the light queries'
// time-to-first-result under each scheduling configuration — with budget
// slicing off (budget=0, one flush per slice) a heavy region can hold a
// worker, with it on every query progresses every round — plus the
// aggregate makespan, which measures the scheduler's switching overhead.
//
// Every query's result count is checked against a solo session run; the
// full bit-level stream/counter equivalence lives in tests/service_test.cc.
//
// Extra flags over bench_common: --json=<path>, --workers=<n>.
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "progxe/session.h"
#include "service/scheduler.h"

using namespace progxe;
using namespace progxe::bench;

namespace {

struct QueryTiming {
  bool heavy = false;
  double t_first = 0.0;
  double t_done = 0.0;
  size_t results = 0;
};

class TimingSink : public QuerySink {
 public:
  void Reset(const Stopwatch* watch, bool heavy) {
    watch_ = watch;
    timing_ = QueryTiming{};
    timing_.heavy = heavy;
  }
  void OnBatch(const std::vector<ResultTuple>& batch) override {
    if (timing_.results == 0) timing_.t_first = watch_->ElapsedSeconds();
    timing_.results += batch.size();
  }
  void OnDone(QueryState state, const Status& status,
              const ProgXeStats&) override {
    timing_.t_done = watch_->ElapsedSeconds();
    if (state != QueryState::kFinished) {
      std::fprintf(stderr, "query ended %s: %s\n", QueryStateName(state),
                   status.ToString().c_str());
      std::exit(1);
    }
  }
  const QueryTiming& timing() const { return timing_; }

 private:
  const Stopwatch* watch_ = nullptr;
  QueryTiming timing_;
};

struct Scenario {
  const char* name;
  FairnessPolicy policy;
  size_t budget;
  int workers;
};

/// Sink for the refinement-burst runs: timing plus an order-insensitive
/// hash of the delivered id pairs, so cold and warm (cache + seeded) runs
/// can be checked for identical result sets.
class CollectSink : public QuerySink {
 public:
  void Reset(const Stopwatch* watch) {
    watch_ = watch;
    t_first_ = 0.0;
    pairs_.clear();
  }
  void OnBatch(const std::vector<ResultTuple>& batch) override {
    if (pairs_.empty()) t_first_ = watch_->ElapsedSeconds();
    for (const ResultTuple& res : batch) pairs_.emplace_back(res.r_id, res.t_id);
  }
  void OnDone(QueryState state, const Status& status,
              const ProgXeStats&) override {
    if (state != QueryState::kFinished) {
      std::fprintf(stderr, "reuse query ended %s: %s\n", QueryStateName(state),
                   status.ToString().c_str());
      std::exit(1);
    }
  }
  double t_first() const { return t_first_; }
  size_t results() const { return pairs_.size(); }
  /// FNV-1a over the sorted id pairs: equal iff the result *sets* match.
  uint64_t Hash() const {
    std::vector<std::pair<RowId, RowId>> sorted = pairs_;
    std::sort(sorted.begin(), sorted.end());
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
      for (int b = 0; b < 64; b += 8) {
        h = (h ^ ((v >> b) & 0xff)) * 1099511628211ull;
      }
    };
    for (const auto& [r, t] : sorted) {
      mix(static_cast<uint64_t>(r));
      mix(static_cast<uint64_t>(t));
    }
    return h;
  }

 private:
  const Stopwatch* watch_ = nullptr;
  double t_first_ = 0.0;
  std::vector<std::pair<RowId, RowId>> pairs_;
};

constexpr size_t kBurstChildren = 8;

struct BurstResult {
  double makespan = 0.0;
  double child_ttfr_mean = 0.0;
  std::vector<uint64_t> hashes;
  uint64_t prepare_hits = 0;
  uint64_t prepare_misses = 0;
};

/// One refinement burst: a parent query over `workload` runs to completion,
/// then kBurstChildren refinements of it are served concurrently. Warm runs
/// engage cross-query reuse (prepared-state cache + frontier seeding);
/// cold runs disable the cache and submit plain independent queries. The
/// children perturb serving-side parameters only (weight), so the result
/// sets must match the cold run's exactly.
BurstResult RunBurst(const Workload& workload, bool warm, int workers,
                     size_t budget) {
  ServiceOptions sopts;
  sopts.num_workers = workers;
  sopts.batch_budget = budget;
  if (!warm) sopts.prepare_cache_entries = 0;  // reuse fully disabled

  QueryScheduler scheduler(sopts);
  Stopwatch parent_watch;
  CollectSink parent_sink;
  parent_sink.Reset(&parent_watch);
  SubmitOptions parent_submit;
  parent_submit.retain_results = warm;
  auto parent = scheduler.Submit(workload.query(), ProgXeOptions(),
                                 &parent_sink, parent_submit);
  if (!parent.ok()) {
    std::fprintf(stderr, "parent submit: %s\n",
                 parent.status().ToString().c_str());
    std::exit(1);
  }
  parent->Wait();  // children refine a frozen frontier

  std::vector<CollectSink> sinks(kBurstChildren);
  Stopwatch watch;  // burst clock: child TTFR measured from here
  for (size_t i = 0; i < kBurstChildren; ++i) {
    sinks[i].Reset(&watch);
    SubmitOptions submit;
    submit.weight = 1.0 + static_cast<double>(i);  // perturbed serving knob
    if (warm) {
      submit.parent = *parent;
      submit.seed_from_parent = true;
    }
    auto handle = scheduler.Submit(workload.query(), ProgXeOptions(),
                                   &sinks[i], submit);
    if (!handle.ok()) {
      std::fprintf(stderr, "child submit: %s\n",
                   handle.status().ToString().c_str());
      std::exit(1);
    }
  }
  scheduler.Drain();

  BurstResult result;
  result.makespan = watch.ElapsedSeconds();
  for (const CollectSink& sink : sinks) {
    result.child_ttfr_mean += sink.t_first();
    result.hashes.push_back(sink.Hash());
  }
  result.child_ttfr_mean /= static_cast<double>(kBurstChildren);
  const SchedulerStats stats = scheduler.stats();
  result.prepare_hits = stats.prepare_hits;
  result.prepare_misses = stats.prepare_misses;
  return result;
}

struct ScenarioResult {
  Scenario scenario;
  double makespan = 0.0;
  double ttfr_p50 = 0.0;
  double ttfr_p99 = 0.0;
  double light_ttfr_p50 = 0.0;
  double light_ttfr_worst = 0.0;
  size_t results_total = 0;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  std::string json_path;
  int workers_override = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers_override = std::atoi(argv[i] + 10);
    }
  }

  const size_t heavy_n = args.ResolveN(args.quick ? 2500 : 12000);
  const size_t light_n = std::max<size_t>(heavy_n / 10, 200);
  const int dims = args.ResolveDims(4);
  const double sigma = args.quick ? 0.01 : 0.004;
  constexpr size_t kHeavy = 3;
  constexpr size_t kLight = 9;

  // Heavy queries first, then the light burst — the worst case for a
  // FIFO-ish server and the motivating one for budget slicing.
  std::vector<Workload> workloads;
  std::vector<bool> heavy_flags;
  for (size_t i = 0; i < kHeavy + kLight; ++i) {
    const bool heavy = i < kHeavy;
    WorkloadParams params;
    params.distribution = Distribution::kAntiCorrelated;
    params.cardinality = heavy ? heavy_n : light_n;
    params.dims = dims;
    params.sigma = sigma;
    params.seed = args.seed + i;
    workloads.push_back(MustMakeWorkload(params));
    heavy_flags.push_back(heavy);
  }

  // Solo reference result counts (also warms the page cache evenly).
  std::vector<size_t> solo_results;
  for (const Workload& workload : workloads) {
    auto session = ProgXeSession::Open(workload.query(), ProgXeOptions());
    if (!session.ok()) {
      std::fprintf(stderr, "open: %s\n", session.status().ToString().c_str());
      return 1;
    }
    size_t count = 0;
    std::vector<ResultTuple> batch;
    while ((*session)->NextBatch(0, &batch) > 0) count += batch.size();
    solo_results.push_back(count);
  }

  std::printf(
      "multiquery: %zu heavy (n=%zu) + %zu light (n=%zu), dims=%d sigma=%g\n",
      kHeavy, heavy_n, kLight, light_n, dims, sigma);

  const int workers = workers_override > 0 ? workers_override : 1;
  // The last scenario contrasts the base worker count with a 4x pool (the
  // JSON records the exact count per run).
  const Scenario scenarios[] = {
      {"rr_unsliced", FairnessPolicy::kRoundRobin, 0, workers},
      {"rr_sliced", FairnessPolicy::kRoundRobin, 4096, workers},
      {"wf_sliced", FairnessPolicy::kWeightedFair, 4096, workers},
      {"rr_sliced_mw", FairnessPolicy::kRoundRobin, 4096, workers * 4},
  };

  std::vector<ScenarioResult> results;
  std::vector<TimingSink> sinks(workloads.size());
  for (const Scenario& scenario : scenarios) {
    ServiceOptions sopts;
    sopts.num_workers = scenario.workers;
    sopts.batch_budget = scenario.budget;
    sopts.policy = scenario.policy;
    sopts.max_concurrent = 0;

    Stopwatch watch;
    {
      QueryScheduler scheduler(sopts);
      for (size_t i = 0; i < workloads.size(); ++i) {
        sinks[i].Reset(&watch, heavy_flags[i]);
        // Under weighted-fair, interactive queries get 4x the share.
        const double weight = heavy_flags[i] ? 1.0 : 4.0;
        auto handle = scheduler.Submit(workloads[i].query(), ProgXeOptions(),
                                       &sinks[i], weight);
        if (!handle.ok()) {
          std::fprintf(stderr, "submit: %s\n",
                       handle.status().ToString().c_str());
          return 1;
        }
      }
      scheduler.Drain();
    }

    ScenarioResult result;
    result.scenario = scenario;
    result.makespan = watch.ElapsedSeconds();
    std::vector<double> all_first;
    std::vector<double> light_first;
    for (size_t i = 0; i < sinks.size(); ++i) {
      const QueryTiming& timing = sinks[i].timing();
      if (timing.results != solo_results[i]) {
        std::fprintf(stderr,
                     "FATAL: query %zu served %zu results, solo %zu\n", i,
                     timing.results, solo_results[i]);
        return 1;
      }
      result.results_total += timing.results;
      all_first.push_back(timing.t_first);
      if (!timing.heavy) light_first.push_back(timing.t_first);
    }
    result.ttfr_p50 = Percentile(all_first, 0.50);
    result.ttfr_p99 = Percentile(all_first, 0.99);
    result.light_ttfr_p50 = Percentile(light_first, 0.50);
    result.light_ttfr_worst = Percentile(light_first, 1.0);
    results.push_back(result);

    std::printf(
        "  %-13s workers=%d budget=%-5zu makespan=%.4fs ttfr_p50=%.4fs "
        "ttfr_p99=%.4fs light_p50=%.4fs light_worst=%.4fs\n",
        scenario.name, scenario.workers, scenario.budget, result.makespan,
        result.ttfr_p50, result.ttfr_p99, result.light_ttfr_p50,
        result.light_ttfr_worst);
  }

  // Refinement burst: one parent + kBurstChildren refinements of the same
  // query, cold (reuse off) vs warm (prepared-state cache + frontier
  // seeding). The headline number is the mean per-child time-to-first-
  // result; identical result hashes are a hard correctness gate. The burst
  // workload is prepare-heavy (large correlated inputs: push-through and
  // the skyline leave little join work, so validation/sort/grid/look-ahead
  // dominate time-to-first-result) — the interactive-refinement shape
  // cross-query reuse exists for.
  WorkloadParams burst_params;
  burst_params.distribution = Distribution::kIndependent;
  burst_params.cardinality = heavy_n * 5;
  burst_params.dims = dims;
  burst_params.sigma = sigma / 40.0;  // sparse join: prepare-bound serving
  burst_params.seed = args.seed + 100;
  const Workload burst_workload = MustMakeWorkload(burst_params);
  const int burst_workers = std::max(workers, 4);
  const BurstResult cold =
      RunBurst(burst_workload, /*warm=*/false, burst_workers, 4096);
  const BurstResult warm =
      RunBurst(burst_workload, /*warm=*/true, burst_workers, 4096);
  bool reuse_match = cold.hashes == warm.hashes;
  const double ttfr_speedup =
      warm.child_ttfr_mean > 0.0 ? cold.child_ttfr_mean / warm.child_ttfr_mean
                                 : 0.0;
  std::printf(
      "  reuse_burst   workers=%d children=%zu cold_ttfr=%.4fs "
      "warm_ttfr=%.4fs speedup=%.2fx prepare_skipped=%llu match=%s\n",
      burst_workers, kBurstChildren, cold.child_ttfr_mean,
      warm.child_ttfr_mean, ttfr_speedup,
      static_cast<unsigned long long>(warm.prepare_hits),
      reuse_match ? "yes" : "NO");
  if (!reuse_match) {
    std::fprintf(stderr,
                 "FATAL: warm refinement burst served a different result set "
                 "than the cold run\n");
    return 1;
  }

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"bench\": \"multiquery\",\n  \"heavy_n\": %zu,\n"
                 "  \"light_n\": %zu,\n  \"num_heavy\": %zu,\n"
                 "  \"num_light\": %zu,\n  \"dims\": %d,\n  \"sigma\": %g,\n"
                 "  \"runs\": [\n",
                 heavy_n, light_n, kHeavy, kLight, dims, sigma);
    for (size_t i = 0; i < results.size(); ++i) {
      const ScenarioResult& r = results[i];
      std::fprintf(
          out,
          "    {\"scenario\": \"%s\", \"policy\": \"%s\", \"budget\": %zu, "
          "\"workers\": %d, \"makespan_s\": %.6f, \"ttfr_p50_s\": %.6f, "
          "\"ttfr_p99_s\": %.6f, \"light_ttfr_p50_s\": %.6f, "
          "\"light_ttfr_worst_s\": %.6f, \"results\": %zu}%s\n",
          r.scenario.name, FairnessPolicyName(r.scenario.policy),
          r.scenario.budget, r.scenario.workers, r.makespan, r.ttfr_p50,
          r.ttfr_p99, r.light_ttfr_p50, r.light_ttfr_worst, r.results_total,
          i + 1 == results.size() ? "" : ",");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(
        out,
        "  \"reuse\": {\"children\": %zu, \"workers\": %d, "
        "\"cold_makespan_s\": %.6f, \"warm_makespan_s\": %.6f, "
        "\"cold_child_ttfr_mean_s\": %.6f, \"warm_child_ttfr_mean_s\": %.6f, "
        "\"child_ttfr_speedup\": %.4f, \"prepare_skipped\": %llu, "
        "\"prepare_misses\": %llu, \"results_match\": %s}\n",
        kBurstChildren, burst_workers, cold.makespan, warm.makespan,
        cold.child_ttfr_mean, warm.child_ttfr_mean, ttfr_speedup,
        static_cast<unsigned long long>(warm.prepare_hits),
        static_cast<unsigned long long>(warm.prepare_misses),
        reuse_match ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
