// Cardinality scaling (the paper's N dimension, Section VI-A: "we vary the
// cardinality N [10K-500K]"). The figures in the paper fix N = 500K; this
// bench sweeps N to expose how the algorithms scale and where SSMJ's
// quadratic source-level skyline work starts to starve it on
// anti-correlated data.
#include "bench_common.h"

using namespace progxe;
using namespace progxe::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  const int dims = args.ResolveDims(4);
  const double sigma = 0.01;
  std::vector<size_t> cardinalities{1000, 2000, 4000, 8000};
  if (args.n != 0) cardinalities = {args.n};
  if (args.paper_scale) cardinalities = {10000, 50000, 100000, 500000};

  std::printf("=== Cardinality scaling: d=%d sigma=%g ===\n\n", dims, sigma);

  const Algo algos[] = {Algo::kProgXe, Algo::kProgXePlus, Algo::kSsmj,
                        Algo::kJfSl};
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAntiCorrelated}) {
    std::printf("--- %s ---\n", DistributionName(dist));
    std::printf("  %-8s", "N");
    for (Algo algo : algos) {
      std::printf(" %13s_t %13s_1st", ShortAlgoName(algo),
                  ShortAlgoName(algo));
    }
    std::printf("\n");
    for (size_t n : cardinalities) {
      WorkloadParams params;
      params.distribution = dist;
      params.cardinality = n;
      params.dims = dims;
      params.sigma = sigma;
      params.seed = args.seed;
      Workload workload = MustMakeWorkload(params);
      std::printf("  %-8zu", n);
      for (Algo algo : algos) {
        auto run = RunAlgorithm(algo, workload);
        if (!run.ok()) {
          std::fprintf(stderr, "error: %s\n",
                       run.status().ToString().c_str());
          return 1;
        }
        std::printf(" %14.4f %17.4f", run->metrics.total_time,
                    run->metrics.time_to_first);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  return 0;
}
