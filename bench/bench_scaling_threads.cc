// Thread-scaling bench for the parallel join->map pipeline: total time and
// time-to-first-result vs. ProgXeOptions::num_threads, on a workload whose
// mapping functions carry non-trivial transforms (the paper's Q1-style
// tCost/delay expressions use weighted sums; we add log1p/sqrt transforms so
// the map stage represents realistic per-tuple compute).
//
// Results and every ProgXeStats counter are bit-identical across thread
// counts (verified per run below); only wall-clock changes. With
// --json=<path> a machine-readable summary is written for
// tools/run_bench.sh to merge into BENCH_progxe.json.
//
// Extra flags over bench_common: --json=<path>, --threads=<comma list>.
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "progxe/session.h"

using namespace progxe;
using namespace progxe::bench;

namespace {

struct ThreadRun {
  int threads = 1;
  double total_s = 0.0;
  double first_s = 0.0;
  size_t results = 0;
  uint64_t join_pairs = 0;
  uint64_t comparisons = 0;
};

/// Weighted pairwise sums with rotating log1p/sqrt transforms: every output
/// dimension j is transform_j(w_r * R[j] + w_t * T[j]).
MapSpec TransformedMap(int dims) {
  std::vector<MapFunc> funcs;
  for (int j = 0; j < dims; ++j) {
    const Transform tf = j % 2 == 0 ? Transform::kLog1p : Transform::kSqrt;
    funcs.push_back(MapFunc({MapTerm{Side::kR, j, 1.0 + 0.25 * j},
                             MapTerm{Side::kT, j, 1.0}},
                            /*constant=*/0.0, tf));
  }
  return MapSpec(std::move(funcs));
}

ThreadRun RunWithThreads(const SkyMapJoinQuery& query, int threads) {
  ProgXeOptions options;
  options.num_threads = threads;
  // The watch starts before Open: total time includes the (serial, thread-
  // count-independent) PreparePhase, so speedups are honest end-to-end.
  Stopwatch watch;
  auto session = ProgXeSession::Open(query, options);
  if (!session.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 session.status().ToString().c_str());
    std::exit(1);
  }
  ThreadRun run;
  run.threads = threads;
  std::vector<ResultTuple> batch;
  while ((*session)->NextBatch(0, &batch) > 0) {
    if (run.results == 0) run.first_s = watch.ElapsedSeconds();
    run.results += batch.size();
  }
  run.total_s = watch.ElapsedSeconds();
  run.join_pairs = (*session)->stats().join_pairs_generated;
  run.comparisons = (*session)->stats().dominance_comparisons;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  std::string json_path;
  std::vector<int> thread_counts = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      thread_counts.clear();
      for (const char* p = argv[i] + 10; *p != '\0';) {
        thread_counts.push_back(std::atoi(p));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    }
  }
  const size_t n = args.ResolveN(args.quick ? 4000 : 30000);
  const int dims = args.ResolveDims(4);
  const double sigma = args.quick ? 0.01 : 0.002;

  GeneratorOptions gen;
  gen.distribution = Distribution::kAntiCorrelated;
  gen.cardinality = n;
  gen.num_attributes = dims;
  gen.join_selectivity = sigma;
  gen.seed = args.seed;
  Relation r = GenerateRelation(gen).MoveValue();
  gen.seed = args.seed + 1;
  Relation t = GenerateRelation(gen).MoveValue();

  SkyMapJoinQuery query;
  query.r = &r;
  query.t = &t;
  query.map = TransformedMap(dims);
  query.pref = Preference::AllLowest(dims);

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("thread scaling: n=%zu dims=%d sigma=%g hw_threads=%u\n", n,
              dims, sigma, hw);

  std::vector<ThreadRun> runs;
  for (int threads : thread_counts) {
    ThreadRun run = RunWithThreads(query, threads);
    runs.push_back(run);
    const double speedup = runs.front().total_s / run.total_s;
    std::printf(
        "  threads=%-2d total=%.4fs first=%.6fs speedup=%.2fx results=%zu "
        "pairs=%llu cmps=%llu\n",
        run.threads, run.total_s, run.first_s, speedup, run.results,
        static_cast<unsigned long long>(run.join_pairs),
        static_cast<unsigned long long>(run.comparisons));
    // Counter identity across thread counts is the whole contract; fail
    // loudly if this machine ever disagrees with the test suite.
    if (run.results != runs.front().results ||
        run.join_pairs != runs.front().join_pairs ||
        run.comparisons != runs.front().comparisons) {
      std::fprintf(stderr, "FATAL: thread count changed results/counters\n");
      return 1;
    }
  }

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"bench\": \"thread_scaling\",\n  \"n\": %zu,\n"
                 "  \"dims\": %d,\n  \"sigma\": %g,\n"
                 "  \"hardware_concurrency\": %u,\n  \"runs\": [\n",
                 n, dims, sigma, hw);
    for (size_t i = 0; i < runs.size(); ++i) {
      const ThreadRun& run = runs[i];
      std::fprintf(out,
                   "    {\"threads\": %d, \"total_time_s\": %.6f, "
                   "\"time_to_first_s\": %.6f, \"speedup_vs_1\": %.4f, "
                   "\"results\": %zu}%s\n",
                   run.threads, run.total_s, run.first_s,
                   runs.front().total_s / run.total_s, run.results,
                   i + 1 == runs.size() ? "" : ",");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
