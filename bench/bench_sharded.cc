// Sharded-execution bench: makespan and time-to-first-result of one query
// served through the ShardedStream, swept over the shard count K.
//
// Each K-run drives the identical workload through OpenProgXeStream with
// K ∈ {1, 2, 4, 8}: K = 1 is the plain session baseline, larger K measures
// the sharded executor's overheads (K PreparePhases over 1/K-sized slices,
// the merge sink's dominance filtering and finality checks) and its
// benefits (smaller per-shard grids; on a multi-core box, independent
// shards are the natural unit for parallel or multi-process execution —
// this single-process bench pumps them round-robin, so K > 1 here measures
// the coordination cost alone). The result *set* is checked identical to
// the K = 1 run on every configuration.
//
// Extra flags over bench_common: --json=<path>.
#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/fault_injection.h"
#include "common/stopwatch.h"
#include "obs/trace.h"
#include "progxe/stream.h"
#include "shard/sharded_stream.h"

using namespace progxe;
using namespace progxe::bench;

namespace {

struct ShardRun {
  int num_shards = 0;
  double makespan = 0.0;
  double t_first = 0.0;
  size_t results = 0;
  uint64_t join_pairs = 0;
  uint64_t comparisons = 0;        // per-shard engine counters, summed
  uint64_t merge_comparisons = 0;  // merge-sink filtering/finality checks
  size_t held_peak = 0;            // merge-sink held-queue high-water mark
  double merge_time = 0.0;         // seconds spent inside the merge sink
};

using IdSet = std::vector<std::pair<RowId, RowId>>;

/// ns/call of the *disabled* fault-injection hook — the price every
/// NextBatch/open site pays in a production (injector-free) build. The
/// contract is "one predicted branch": CI gates this number so a future
/// refactor can't silently put a rule-table scan on the hot path.
double MeasureDisabledHookNs() {
  constexpr int kCalls = 1 << 22;
  // Volatile load per call: real sites read the injector from options, so a
  // literal nullptr here would let the compiler fold the whole loop away.
  FaultInjector* volatile no_injector = nullptr;
  size_t ok = 0;
  Stopwatch watch;
  for (int i = 0; i < kCalls; ++i) {
    ok += MaybeInjectFault(no_injector, fault_sites::kShardNextBatch, i).ok();
  }
  const double elapsed = watch.ElapsedSeconds();
  if (ok != static_cast<size_t>(kCalls)) std::abort();  // keep the loop live
  return elapsed * 1e9 / static_cast<double>(kCalls);
}

/// ns/call of a *disabled* trace span — construct + destruct with tracing
/// off, the price every instrumented site pays when no trace is being
/// recorded. Same "one predicted branch" contract (and the same CI gate)
/// as the fault hook above.
double MeasureDisabledTraceHookNs() {
  constexpr int kCalls = 1 << 22;
  // Volatile name per call: a compile-time-constant argument would let the
  // whole span pair fold away instead of exercising the active() check.
  const char* volatile name = "bench.disabled";
  size_t live = 0;
  Stopwatch watch;
  for (int i = 0; i < kCalls; ++i) {
    TraceSpan span(trace_cats::kSched, name);
    live += name != nullptr;
  }
  const double elapsed = watch.ElapsedSeconds();
  if (live != static_cast<size_t>(kCalls)) std::abort();  // keep the loop live
  return elapsed * 1e9 / static_cast<double>(kCalls);
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  WorkloadParams params;
  params.distribution = Distribution::kAntiCorrelated;
  params.cardinality = args.ResolveN(args.quick ? 4000 : 20000);
  params.dims = args.ResolveDims(4);
  params.sigma = args.quick ? 0.01 : 0.004;
  params.seed = args.seed;
  const Workload workload = MustMakeWorkload(params);

  std::printf("sharded: %s\n", params.ToString().c_str());

  std::vector<ShardRun> runs;
  IdSet reference;
  for (int num_shards : {1, 2, 4, 8}) {
    ShardOptions shard_options;
    shard_options.num_shards = num_shards;

    Stopwatch watch;
    auto stream =
        OpenProgXeStream(workload.query(), ProgXeOptions(), shard_options);
    if (!stream.ok()) {
      std::fprintf(stderr, "open K=%d: %s\n", num_shards,
                   stream.status().ToString().c_str());
      return 1;
    }
    ShardRun run;
    run.num_shards = num_shards;
    IdSet ids;
    std::vector<ResultTuple> batch;
    while ((*stream)->NextBatch(0, &batch) > 0) {
      if (run.results == 0) run.t_first = watch.ElapsedSeconds();
      run.results += batch.size();
      for (const ResultTuple& res : batch) {
        ids.emplace_back(res.r_id, res.t_id);
      }
    }
    run.makespan = watch.ElapsedSeconds();
    run.join_pairs = (*stream)->stats().join_pairs_generated;
    run.comparisons = (*stream)->stats().dominance_comparisons;
    if (const auto* sharded =
            dynamic_cast<const ShardedStream*>(stream->get())) {
      run.merge_comparisons = sharded->merge_comparisons();
      run.held_peak = sharded->held_peak();
      run.merge_time = sharded->merge_seconds();
    }

    std::sort(ids.begin(), ids.end());
    if (num_shards == 1) {
      reference = std::move(ids);
    } else if (ids != reference) {
      std::fprintf(stderr,
                   "FATAL: K=%d delivered %zu results, K=1 delivered %zu "
                   "(sets differ)\n",
                   num_shards, ids.size(), reference.size());
      return 1;
    }
    runs.push_back(run);

    std::printf(
        "  K=%-2d makespan=%8.4fs t_first=%8.4fs results=%-7zu "
        "pairs=%-10llu cmps=%-10llu merge_cmps=%-9llu held_peak=%-6zu "
        "merge_t=%.4fs\n",
        run.num_shards, run.makespan, run.t_first, run.results,
        static_cast<unsigned long long>(run.join_pairs),
        static_cast<unsigned long long>(run.comparisons),
        static_cast<unsigned long long>(run.merge_comparisons),
        run.held_peak, run.merge_time);
  }

  const double hook_ns = MeasureDisabledHookNs();
  std::printf("  fault_hook(disabled)=%.3fns/call\n", hook_ns);
  const double trace_ns = MeasureDisabledTraceHookNs();
  std::printf("  trace_hook(disabled)=%.3fns/call\n", trace_ns);

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"bench\": \"sharded\",\n  \"n\": %zu,\n"
                 "  \"dims\": %d,\n  \"sigma\": %g,\n  \"seed\": %llu,\n"
                 "  \"fault_hook_ns_per_call\": %.3f,\n"
                 "  \"trace_hook_ns_per_call\": %.3f,\n"
                 "  \"runs\": [\n",
                 params.cardinality, params.dims, params.sigma,
                 static_cast<unsigned long long>(params.seed), hook_ns,
                 trace_ns);
    for (size_t i = 0; i < runs.size(); ++i) {
      const ShardRun& r = runs[i];
      std::fprintf(out,
                   "    {\"shards\": %d, \"makespan_s\": %.6f, "
                   "\"t_first_s\": %.6f, \"results\": %zu, "
                   "\"join_pairs\": %llu, \"comparisons\": %llu, "
                   "\"merge_comparisons\": %llu, \"held_peak\": %zu, "
                   "\"merge_time_s\": %.6f}%s\n",
                   r.num_shards, r.makespan, r.t_first, r.results,
                   static_cast<unsigned long long>(r.join_pairs),
                   static_cast<unsigned long long>(r.comparisons),
                   static_cast<unsigned long long>(r.merge_comparisons),
                   r.held_peak, r.merge_time,
                   i + 1 == runs.size() ? "" : ",");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
