// On-line search refinement (Section I-B, Example 2; Koudas et al.).
//
// A user's over-constrained apartment search returned nothing:
//
//   SELECT * FROM Listings L, Commutes C
//   WHERE  L.neighborhood = C.neighborhood
//          AND L.rent <= 1200 AND C.minutes <= 20
//
// Instead of an empty page, the system relaxes the predicates into *penalty
// dimensions* — how far each candidate violates the original constraints —
// and returns the skyline of relaxations: answers as close as possible to
// the original query. Because careless relaxation yields huge result sets,
// only the Pareto-optimal relaxations are shown, and they are shown
// progressively so the user can refine the query (e.g. "rent matters more
// than commute") before evaluation even finishes.
//
//   $ ./examples/query_refinement
#include <cstdio>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "data/relation.h"
#include "progxe/executor.h"

using namespace progxe;

namespace {

constexpr int kNeighborhoods = 30;
constexpr double kMaxRent = 1200.0;
constexpr double kMaxMinutes = 20.0;

// Listings: rentExcess = rent - 1200 — the relaxation penalty. In this
// market every rent exceeds the user's cap (which is why the original query
// came back empty).
Relation MakeListings(size_t n, Rng* rng) {
  Relation rel(Schema({"rentExcess"}, "neighborhood"));
  for (size_t i = 0; i < n; ++i) {
    const double rent = rng->Uniform(1250.0, 2600.0);
    const double attrs[] = {rent - kMaxRent};
    rel.Append(attrs, static_cast<JoinKey>(rng->NextBelow(kNeighborhoods)));
  }
  return rel;
}

// Commutes: minutesExcess = max(0, minutes - 20).
Relation MakeCommutes(size_t n, Rng* rng) {
  Relation rel(Schema({"minutesExcess"}, "neighborhood"));
  for (size_t i = 0; i < n; ++i) {
    const double minutes = rng->Uniform(22.0, 75.0);
    const double attrs[] = {minutes > kMaxMinutes ? minutes - kMaxMinutes
                                                  : 0.0};
    rel.Append(attrs, static_cast<JoinKey>(rng->NextBelow(kNeighborhoods)));
  }
  return rel;
}

}  // namespace

int main() {
  Rng rng(31);
  Relation listings = MakeListings(30000, &rng);
  Relation commutes = MakeCommutes(5000, &rng);
  std::printf("listings: %zu; commute profiles: %zu; relaxing "
              "rent<=%.0f and minutes<=%.0f into penalty dimensions\n\n",
              listings.size(), commutes.size(), kMaxRent, kMaxMinutes);

  SkyMapJoinQuery relaxed;
  relaxed.r = &listings;
  relaxed.t = &commutes;
  relaxed.map = MapSpec({
      MapFunc::Passthrough(Side::kR, 0, "rentExcess"),
      MapFunc::Passthrough(Side::kT, 0, "minutesExcess"),
  });
  relaxed.pref = Preference::AllLowest(2);

  ProgXeExecutor executor(relaxed, ProgXeOptions());
  Stopwatch watch;
  size_t count = 0;
  size_t exact = 0;
  Status status = executor.Run([&](const ResultTuple& hit) {
    ++count;
    const bool satisfies_original =
        hit.values[0] == 0.0 && hit.values[1] == 0.0;
    exact += satisfies_original ? 1 : 0;
    if (count <= 12) {
      std::printf("[%8.4fs] suggestion #%zu: listing %-6u commute %-5u "
                  "+%6.0f EUR rent, +%4.1f min%s\n",
                  watch.ElapsedSeconds(), count, hit.r_id, hit.t_id,
                  hit.values[0], hit.values[1],
                  satisfies_original ? "  <- satisfies original query" : "");
    }
  });
  if (!status.ok()) {
    std::fprintf(stderr, "refinement failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("\n%zu Pareto-optimal relaxations in %.4fs (%zu satisfy the "
              "original query%s)\n",
              count, watch.ElapsedSeconds(), exact,
              exact == 0 ? " -- original query is empty, as suspected" : "");
  return 0;
}
