// Quickstart: the smallest complete ProgXe program.
//
// Builds two tiny relations, declares a SkyMapJoin query (join + mapping
// functions + Pareto preference) and runs the progressive executor. Results
// stream through the callback as they are proven final — note the emission
// timestamps arriving before the run completes.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "common/stopwatch.h"
#include "data/generator.h"
#include "progxe/session.h"

using namespace progxe;

int main() {
  // 1. Two synthetic sources R and T: 4 skyline attributes in [1, 100],
  //    join keys drawn from ~1/sigma distinct values.
  GeneratorOptions gen;
  gen.distribution = Distribution::kAntiCorrelated;
  gen.cardinality = 5000;
  gen.num_attributes = 4;
  gen.join_selectivity = 0.005;
  gen.seed = 1;
  Relation r = GenerateRelation(gen).MoveValue();
  gen.seed = 2;
  Relation t = GenerateRelation(gen).MoveValue();

  // 2. The query: minimize every x_j = R.a_j + T.a_j over the join.
  SkyMapJoinQuery query;
  query.r = &r;
  query.t = &t;
  query.map = MapSpec::PairwiseSum(4);
  query.pref = Preference::AllLowest(4);

  // 3. Run progressively. Every emitted tuple is guaranteed final: no
  //    retraction will ever follow.
  ProgXeExecutor executor(query, ProgXeOptions());
  Stopwatch watch;
  size_t count = 0;
  Status status = executor.Run([&](const ResultTuple& result) {
    ++count;
    if (count <= 5 || count % 500 == 0) {
      std::printf("[%8.4fs] result #%zu: R#%u join T#%u -> (%.1f, %.1f, "
                  "%.1f, %.1f)\n",
                  watch.ElapsedSeconds(), count, result.r_id, result.t_id,
                  result.values[0], result.values[1], result.values[2],
                  result.values[3]);
    }
  });
  if (!status.ok()) {
    std::fprintf(stderr, "query failed: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("[%8.4fs] done: %zu Pareto-optimal results\n",
              watch.ElapsedSeconds(), count);
  std::printf("stats: %s\n", executor.stats().ToString().c_str());

  // 4. The same query through the pull-based session API: the caller asks
  //    for results when it wants them ("first page now"), and the engine
  //    runs only as far as needed. NextBatch(0, ...) would drain instead.
  auto session = ProgXeSession::Open(query, ProgXeOptions());
  if (!session.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  std::vector<ResultTuple> page;
  (*session)->NextBatch(5, &page);
  std::printf("session first page (%zu results):\n", page.size());
  for (const ResultTuple& result : page) {
    std::printf("  R#%u join T#%u -> (%.1f, %.1f, %.1f, %.1f)\n",
                result.r_id, result.t_id, result.values[0], result.values[1],
                result.values[2], result.values[3]);
  }
  std::printf("session finished=%s after one page (more results pending)\n",
              (*session)->Finished() ? "true" : "false");
  return 0;
}
