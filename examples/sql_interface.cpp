// Declarative interface: run the paper's query Q1 verbatim from its SQL +
// PREFERRING text against CSV data on disk.
//
// This example (1) generates supplier/transporter CSV files (standing in
// for real exports), (2) loads them with the CSV loader, (3) compiles the
// paper's Q1 text with the query parser, and (4) executes it progressively
// with ProgXe — the full path a downstream user would take.
//
//   $ ./examples/sql_interface
#include <cstdio>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "data/csv_loader.h"
#include "progxe/executor.h"
#include "query/parser.h"

using namespace progxe;

namespace {

constexpr const char* kSuppliersCsv = "/tmp/progxe_suppliers.csv";
constexpr const char* kTransportersCsv = "/tmp/progxe_transporters.csv";

Status WriteDemoData() {
  Rng rng(41);
  {
    Relation suppliers(Schema({"uPrice", "manTime"}, "country"));
    for (int i = 0; i < 8000; ++i) {
      const double attrs[] = {rng.Uniform(10, 90), rng.Uniform(1, 30)};
      suppliers.Append(attrs, static_cast<JoinKey>(rng.NextBelow(25)));
    }
    PROGXE_RETURN_NOT_OK(WriteRelationCsv(suppliers, kSuppliersCsv));
  }
  {
    Relation transporters(Schema({"uShipCost", "shipTime"}, "country"));
    for (int i = 0; i < 8000; ++i) {
      const double attrs[] = {rng.Uniform(1, 40), rng.Uniform(0.5, 20)};
      transporters.Append(attrs, static_cast<JoinKey>(rng.NextBelow(25)));
    }
    PROGXE_RETURN_NOT_OK(WriteRelationCsv(transporters, kTransportersCsv));
  }
  return Status::OK();
}

}  // namespace

int main() {
  if (Status st = WriteDemoData(); !st.ok()) {
    std::fprintf(stderr, "demo data: %s\n", st.ToString().c_str());
    return 1;
  }

  auto suppliers = LoadRelationCsv(kSuppliersCsv, "country");
  auto transporters = LoadRelationCsv(kTransportersCsv, "country");
  if (!suppliers.ok() || !transporters.ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  std::printf("loaded %zu suppliers, %zu transporters from CSV\n\n",
              suppliers->relation.size(), transporters->relation.size());

  const char* q1 =
      "SELECT R.id, T.id, "
      "       (R.uPrice + T.uShipCost)     AS tCost, "
      "       (2 * R.manTime + T.shipTime) AS delay "
      "FROM   Suppliers R, Transporters T "
      "WHERE  R.country = T.country "
      "PREFERRING LOWEST(tCost) AND LOWEST(delay)";
  std::printf("query:\n%s\n\n", q1);

  auto query = CompileSmjQuery(
      q1, {{"Suppliers", &suppliers->relation},
           {"Transporters", &transporters->relation}});
  if (!query.ok()) {
    std::fprintf(stderr, "compile: %s\n", query.status().ToString().c_str());
    return 1;
  }

  ProgXeExecutor executor(*query, ProgXeOptions());
  Stopwatch watch;
  size_t count = 0;
  Status st = executor.Run([&](const ResultTuple& plan) {
    ++count;
    std::printf("[%8.4fs] supplier %-5u transporter %-5u tCost=%6.2f "
                "delay=%5.2f\n",
                watch.ElapsedSeconds(), plan.r_id, plan.t_id,
                plan.values[0], plan.values[1]);
  });
  if (!st.ok()) {
    std::fprintf(stderr, "run: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\n%zu Pareto-optimal plans in %.4fs\n", count,
              watch.ElapsedSeconds());
  std::remove(kSuppliersCsv);
  std::remove(kTransportersCsv);
  return 0;
}
