// Supply-chain management: the paper's running example, query Q1.
//
//   Q1: SELECT R.id, T.id,
//              (R.uPrice + T.uShipCost)        AS tCost,
//              (2 * R.manTime + T.shipTime)    AS delay
//       FROM   Suppliers R, Transporters T
//       WHERE  R.country = T.country
//              AND 'P1' IN R.suppliedParts AND R.manCap >= 100K
//       PREFERRING LOWEST(tCost) AND LOWEST(delay)
//
// A manufacturer couples suppliers that can produce 100K units of part P1
// with transporters from the same country, minimizing total cost and delay.
// The WHERE filters are applied while loading Suppliers (ProgXe consumes
// filtered sources); the join, mapping and skyline run progressively.
//
//   $ ./examples/supply_chain
#include <cstdio>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "data/relation.h"
#include "progxe/executor.h"

using namespace progxe;

namespace {

constexpr int kCountries = 40;

// Suppliers: uPrice, manTime (+ filter columns manCap, makesP1 applied at
// load). Join key = country.
Relation MakeSuppliers(size_t n, Rng* rng, size_t* filtered_out) {
  Relation rel(Schema({"uPrice", "manTime"}, "country"));
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool makes_p1 = rng->Bernoulli(0.6);
    const double man_cap = rng->Uniform(10e3, 500e3);
    if (!makes_p1 || man_cap < 100e3) continue;  // WHERE clause
    const double attrs[] = {rng->Uniform(10.0, 90.0),   // uPrice
                            rng->Uniform(1.0, 30.0)};   // manTime (days)
    rel.Append(attrs, static_cast<JoinKey>(rng->NextBelow(kCountries)));
    ++kept;
  }
  *filtered_out = n - kept;
  return rel;
}

// Transporters: uShipCost, shipTime. Join key = country.
Relation MakeTransporters(size_t n, Rng* rng) {
  Relation rel(Schema({"uShipCost", "shipTime"}, "country"));
  for (size_t i = 0; i < n; ++i) {
    const double attrs[] = {rng->Uniform(1.0, 40.0),    // uShipCost
                            rng->Uniform(0.5, 20.0)};   // shipTime (days)
    rel.Append(attrs, static_cast<JoinKey>(rng->NextBelow(kCountries)));
  }
  return rel;
}

}  // namespace

int main() {
  Rng rng(2009);
  size_t filtered = 0;
  Relation suppliers = MakeSuppliers(20000, &rng, &filtered);
  Relation transporters = MakeTransporters(20000, &rng);
  std::printf("suppliers: %zu qualify (%zu filtered by part/capacity); "
              "transporters: %zu; %d countries\n",
              suppliers.size(), filtered, transporters.size(), kCountries);

  // Q1's mapping functions over the joined pair.
  const int kUPrice = 0, kManTime = 1;     // supplier attrs
  const int kUShipCost = 0, kShipTime = 1; // transporter attrs
  SkyMapJoinQuery q1;
  q1.r = &suppliers;
  q1.t = &transporters;
  q1.map = MapSpec({
      MapFunc::WeightedSum(1.0, kUPrice, 1.0, kUShipCost, 0.0, "tCost"),
      MapFunc::WeightedSum(2.0, kManTime, 1.0, kShipTime, 0.0, "delay"),
  });
  q1.pref = Preference::AllLowest(2);

  std::printf("\nQ1 plan: skyline{%s ; %s} over Suppliers |x| Transporters\n\n",
              q1.map.func(0).ToString().c_str(),
              q1.map.func(1).ToString().c_str());

  ProgXeOptions options;
  options.push_through = true;  // ProgXe+ — best for low dimensions
  ProgXeExecutor executor(q1, options);
  Stopwatch watch;
  size_t count = 0;
  Status status = executor.Run([&](const ResultTuple& result) {
    ++count;
    std::printf("[%8.4fs] plan #%zu: supplier %-6u + transporter %-6u "
                "tCost=%6.2f delay=%5.2f days\n",
                watch.ElapsedSeconds(), count, result.r_id, result.t_id,
                result.values[0], result.values[1]);
  });
  if (!status.ok()) {
    std::fprintf(stderr, "Q1 failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("\n%zu Pareto-optimal production plans (of %llu candidate "
              "pairings) in %.4fs\n",
              count,
              static_cast<unsigned long long>(
                  executor.stats().join_pairs_generated),
              watch.ElapsedSeconds());
  return 0;
}
