// Internet aggregator: the paper's Kayak-style example (Section I-B,
// Example 1). A user plans a Europe holiday visiting Rome and Paris,
// booking one hotel in each city for the same travel week:
//
//   * total trip cost is a cumulative goal (minimize Rome + Paris price);
//   * the user tolerates walking twice as far in Rome as in Paris
//     (minimize 2 * paris.walk + rome.walk — i.e. Paris walking weighs
//     double);
//   * service quality should be high (maximize summed review scores).
//
// This exercises weighted cross-source mapping functions and a *mixed*
// preference (two LOWEST, one HIGHEST). Results stream out progressively,
// which is exactly what an aggregator UI wants: the first page of
// Pareto-optimal packages renders while thousands of pairings are still
// being evaluated.
//
//   $ ./examples/travel_aggregator
#include <cstdio>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "data/relation.h"
#include "progxe/executor.h"

using namespace progxe;

namespace {

constexpr int kWeeks = 26;  // bookable travel weeks (the join attribute)

// Hotel attrs: price (EUR/night), walk (km to the sights), review [0-10].
Relation MakeHotels(size_t n, uint64_t seed) {
  Relation rel(Schema({"price", "walk", "review"}, "week"));
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    // Anti-correlate price and walking distance: central hotels cost more.
    const double walk = rng.Uniform(0.1, 8.0);
    const double price = rng.Uniform(40.0, 400.0) * (1.0 + 2.0 / walk);
    const double review = rng.Uniform(3.0, 10.0);
    const double attrs[] = {price, walk, review};
    rel.Append(attrs, static_cast<JoinKey>(rng.NextBelow(kWeeks)));
  }
  return rel;
}

}  // namespace

int main() {
  Relation rome = MakeHotels(15000, 7);
  Relation paris = MakeHotels(15000, 8);
  std::printf("rome: %zu hotel-week offers; paris: %zu; joining on travel "
              "week\n\n",
              rome.size(), paris.size());

  const int kPrice = 0, kWalk = 1, kReview = 2;
  SkyMapJoinQuery trip;
  trip.r = &rome;
  trip.t = &paris;
  trip.map = MapSpec({
      // Cumulative goal: total cost of the trip.
      MapFunc::WeightedSum(1.0, kPrice, 1.0, kPrice, 0.0, "totalCost"),
      // Rome walking tolerated 2x => Paris walking weighted 2x.
      MapFunc::WeightedSum(1.0, kWalk, 2.0, kWalk, 0.0, "walkBurden"),
      // Combined review score, to be maximized.
      MapFunc::WeightedSum(1.0, kReview, 1.0, kReview, 0.0, "quality"),
  });
  trip.pref = Preference({Direction::kLowest,    // totalCost
                          Direction::kLowest,    // walkBurden
                          Direction::kHighest})  // quality
      ;

  ProgXeExecutor executor(trip, ProgXeOptions());
  Stopwatch watch;
  size_t count = 0;
  size_t first_page = 0;
  double first_page_time = -1.0;
  Status status = executor.Run([&](const ResultTuple& pkg) {
    ++count;
    if (count <= 10) {
      std::printf("[%8.4fs] package #%zu: rome #%-5u paris #%-5u "
                  "cost=%7.0f EUR walk=%5.2f km-eq quality=%4.1f\n",
                  watch.ElapsedSeconds(), count, pkg.r_id, pkg.t_id,
                  pkg.values[0], pkg.values[1], pkg.values[2]);
    }
    if (count == 10) {
      first_page = count;
      first_page_time = watch.ElapsedSeconds();
    }
  });
  if (!status.ok()) {
    std::fprintf(stderr, "trip query failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("\n%zu Pareto-optimal packages in %.4fs", count,
              watch.ElapsedSeconds());
  if (first_page_time >= 0) {
    std::printf("; first page of %zu shown after %.4fs (%.0f%% of total "
                "runtime saved for the user)",
                first_page, first_page_time,
                100.0 * (1.0 - first_page_time / watch.ElapsedSeconds()));
  }
  std::printf("\n");
  return 0;
}
