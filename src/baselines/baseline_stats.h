// Shared statistics for the state-of-the-art baselines (Section VI-A).
#pragma once

#include <cstdint>
#include <string>

namespace progxe {

struct BaselineStats {
  /// Join pairs materialized.
  uint64_t join_pairs = 0;
  /// Pairwise dominance comparisons performed.
  uint64_t dominance_comparisons = 0;
  /// Source rows surviving any source-side pruning.
  size_t r_rows_used = 0;
  size_t t_rows_used = 0;
  /// Results reported.
  size_t results = 0;
  /// Distinct emission moments (JF-SL: 1; SSMJ: 2).
  size_t batches = 0;
  /// SSMJ only: results emitted in batch 1 that are *not* in the final
  /// skyline (the false positives the paper's Section VII criticism
  /// predicts once mapping functions are involved).
  size_t early_false_positives = 0;

  std::string ToString() const;
};

}  // namespace progxe
