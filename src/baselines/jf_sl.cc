#include "baselines/jf_sl.h"

#include <numeric>
#include <sstream>
#include <vector>

#include "common/macros.h"
#include "join/hash_join.h"
#include "skyline/group_skyline.h"
#include "skyline/skyline.h"

namespace progxe {

std::string BaselineStats::ToString() const {
  std::ostringstream os;
  os << "BaselineStats{join_pairs=" << join_pairs
     << " cmps=" << dominance_comparisons << " rows=" << r_rows_used << "x"
     << t_rows_used << " results=" << results << " batches=" << batches
     << " early_fp=" << early_false_positives << "}";
  return os.str();
}

namespace {

struct Candidate {
  RowId r;
  RowId t;
};

Status RunJfSlImpl(const SkyMapJoinQuery& query, const EmitFn& emit,
                   bool push_through, BaselineStats* stats) {
  BaselineStats local;
  BaselineStats& s = stats != nullptr ? *stats : local;
  s = BaselineStats();

  if (query.r == nullptr || query.t == nullptr) {
    return Status::InvalidArgument("query sources must be non-null");
  }
  if (query.pref.dimensions() != query.map.output_dimensions()) {
    return Status::InvalidArgument(
        "preference dimensionality must match the map output");
  }
  PROGXE_RETURN_NOT_OK(query.map.Validate(query.r->num_attributes(),
                                          query.t->num_attributes()));

  CanonicalMapper mapper(query.map, query.pref);
  const int k = mapper.output_dimensions();

  // Optional push-through pre-pass (JF-SL+).
  Relation r_pruned{Schema::Anonymous(0)};
  Relation t_pruned{Schema::Anonymous(0)};
  std::vector<RowId> r_ids;
  std::vector<RowId> t_ids;
  const Relation* r_rel = query.r;
  const Relation* t_rel = query.t;
  if (push_through) {
    DomCounter counter;
    ContributionTable r_contrib(*query.r, mapper, Side::kR);
    ContributionTable t_contrib(*query.t, mapper, Side::kT);
    r_pruned = query.r->Select(PushThroughPrune(*query.r, r_contrib, &counter),
                               &r_ids);
    t_pruned = query.t->Select(PushThroughPrune(*query.t, t_contrib, &counter),
                               &t_ids);
    s.dominance_comparisons += counter.comparisons;
    r_rel = &r_pruned;
    t_rel = &t_pruned;
  } else {
    r_ids.resize(query.r->size());
    std::iota(r_ids.begin(), r_ids.end(), 0u);
    t_ids.resize(query.t->size());
    std::iota(t_ids.begin(), t_ids.end(), 0u);
  }
  s.r_rows_used = r_rel->size();
  s.t_rows_used = t_rel->size();

  // Phase 1 (blocking): materialize and map every join result.
  ContributionTable r_contrib(*r_rel, mapper, Side::kR);
  ContributionTable t_contrib(*t_rel, mapper, Side::kT);
  std::vector<double> values;  // flat, k per candidate, canonical
  std::vector<Candidate> cands;
  std::vector<double> buf(static_cast<size_t>(k));
  HashJoin(*r_rel, *t_rel, [&](RowId r_id, RowId t_id) {
    ++s.join_pairs;
    mapper.Combine(r_contrib.vector(r_id), t_contrib.vector(t_id), buf.data());
    values.insert(values.end(), buf.begin(), buf.end());
    cands.push_back(Candidate{r_id, t_id});
  });

  // Phase 2 (blocking): one skyline pass over all candidates.
  DomCounter sky_counter;
  PointView view{values.data(), cands.size(), k};
  std::vector<uint32_t> sky = SkylineSFS(view, &sky_counter);
  s.dominance_comparisons += sky_counter.comparisons;

  // Single batch of output at the very end.
  s.batches = 1;
  ResultTuple result;
  result.values.resize(static_cast<size_t>(k));
  for (uint32_t idx : sky) {
    result.r_id = r_ids[cands[idx].r];
    result.t_id = t_ids[cands[idx].t];
    const double* v = view.point(idx);
    for (int j = 0; j < k; ++j) {
      result.values[static_cast<size_t>(j)] = mapper.Decanonicalize(j, v[j]);
    }
    emit(result);
    ++s.results;
  }
  return Status::OK();
}

}  // namespace

Status RunJfSl(const SkyMapJoinQuery& query, const EmitFn& emit,
               BaselineStats* stats) {
  return RunJfSlImpl(query, emit, /*push_through=*/false, stats);
}

Status RunJfSlPlus(const SkyMapJoinQuery& query, const EmitFn& emit,
                   BaselineStats* stats) {
  return RunJfSlImpl(query, emit, /*push_through=*/true, stats);
}

}  // namespace progxe
