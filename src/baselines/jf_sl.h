// JF-SL: the traditional "join first, skyline later" execution strategy
// (Figure 1.b; Koudas et al.). Fully blocking: every join result is
// materialized and mapped before a single skyline comparison is made, and
// all results are reported in one batch at the very end.
//
// JF-SL+ additionally applies skyline partial push-through to each source
// before the join (group-level skyline pruning on contribution vectors),
// which shrinks the join input but is itself a blocking pre-pass.
#pragma once

#include "baselines/baseline_stats.h"
#include "common/status.h"
#include "progxe/executor.h"

namespace progxe {

/// Runs JF-SL. Results are emitted (all at once) only after the full join +
/// skyline evaluation completes.
Status RunJfSl(const SkyMapJoinQuery& query, const EmitFn& emit,
               BaselineStats* stats = nullptr);

/// Runs JF-SL+ (push-through variant).
Status RunJfSlPlus(const SkyMapJoinQuery& query, const EmitFn& emit,
                   BaselineStats* stats = nullptr);

}  // namespace progxe
