#include "baselines/saj.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "skyline/group_skyline.h"
#include "skyline/skyline.h"

namespace progxe {

namespace {

/// One source's sorted-access stream state.
struct Stream {
  const Relation* rel = nullptr;
  const ContributionTable* contribs = nullptr;
  /// Row ids in ascending contribution-sum order.
  std::vector<RowId> order;
  /// suffix_min[p * k + j] = min contribution j over order[p..n).
  /// Row n holds +infinity sentinels.
  std::vector<double> suffix_min;
  /// Component-wise minimum over the whole source (== suffix_min at 0).
  std::vector<double> global_min;
  /// Next sorted position to access.
  size_t pos = 0;
  /// Join key -> seen row ids.
  std::unordered_map<JoinKey, std::vector<RowId>> seen;

  bool exhausted() const { return pos >= order.size(); }

  double next_score(int k) const {
    if (exhausted()) return std::numeric_limits<double>::infinity();
    const double* v = contribs->vector(order[pos]);
    double s = 0.0;
    for (int j = 0; j < k; ++j) s += v[j];
    return s;
  }
};

Stream MakeStream(const Relation& rel, const ContributionTable& contribs) {
  Stream stream;
  stream.rel = &rel;
  stream.contribs = &contribs;
  const int k = contribs.dimensions();
  const size_t n = rel.size();

  stream.order.resize(n);
  std::iota(stream.order.begin(), stream.order.end(), 0u);
  std::vector<double> sums(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* v = contribs.vector(static_cast<RowId>(i));
    for (int j = 0; j < k; ++j) sums[i] += v[j];
  }
  std::sort(stream.order.begin(), stream.order.end(),
            [&](RowId a, RowId b) {
              if (sums[a] != sums[b]) return sums[a] < sums[b];
              return a < b;
            });

  stream.suffix_min.assign((n + 1) * static_cast<size_t>(k),
                           std::numeric_limits<double>::infinity());
  for (size_t p = n; p-- > 0;) {
    const double* v = contribs.vector(stream.order[p]);
    for (int j = 0; j < k; ++j) {
      const size_t here = p * static_cast<size_t>(k) + static_cast<size_t>(j);
      const size_t next =
          (p + 1) * static_cast<size_t>(k) + static_cast<size_t>(j);
      stream.suffix_min[here] = std::min(v[j], stream.suffix_min[next]);
    }
  }
  stream.global_min.assign(stream.suffix_min.begin(),
                           stream.suffix_min.begin() + k);
  return stream;
}

/// True iff some window tuple is strictly below `bound` in every dimension
/// (so any output >= bound component-wise is strictly dominated).
bool WindowCovers(const SkylineWindow& window, const double* bound, int k) {
  for (size_t i = 0; i < window.size(); ++i) {
    const double* w = window.point(i);
    bool all_strict = true;
    for (int j = 0; j < k; ++j) {
      if (!(w[j] < bound[j])) {
        all_strict = false;
        break;
      }
    }
    if (all_strict) return true;
  }
  return false;
}

}  // namespace

Status RunSaj(const SkyMapJoinQuery& query, const EmitFn& emit,
              SajStats* stats) {
  SajStats local;
  SajStats& s = stats != nullptr ? *stats : local;
  s = SajStats();

  if (query.r == nullptr || query.t == nullptr) {
    return Status::InvalidArgument("query sources must be non-null");
  }
  if (query.pref.dimensions() != query.map.output_dimensions()) {
    return Status::InvalidArgument(
        "preference dimensionality must match the map output");
  }
  PROGXE_RETURN_NOT_OK(query.map.Validate(query.r->num_attributes(),
                                          query.t->num_attributes()));

  CanonicalMapper mapper(query.map, query.pref);
  const int k = mapper.output_dimensions();
  ContributionTable r_contrib(*query.r, mapper, Side::kR);
  ContributionTable t_contrib(*query.t, mapper, Side::kT);
  Stream r_stream = MakeStream(*query.r, r_contrib);
  Stream t_stream = MakeStream(*query.t, t_contrib);
  s.base.r_rows_used = query.r->size();
  s.base.t_rows_used = query.t->size();

  DomCounter counter;
  SkylineWindow window(k);
  std::vector<double> out(static_cast<size_t>(k));
  std::vector<double> bound_r(static_cast<size_t>(k));
  std::vector<double> bound_t(static_cast<size_t>(k));

  // One sorted access per round on the stream with the smaller next score;
  // the threshold test runs periodically (it scans the window).
  constexpr size_t kCheckEvery = 32;
  size_t rounds = 0;
  while (!r_stream.exhausted() || !t_stream.exhausted()) {
    const bool take_r = !r_stream.exhausted() &&
                        (t_stream.exhausted() ||
                         r_stream.next_score(k) <= t_stream.next_score(k));
    Stream& mine = take_r ? r_stream : t_stream;
    Stream& other = take_r ? t_stream : r_stream;
    const RowId row = mine.order[mine.pos++];
    (take_r ? s.rows_accessed_r : s.rows_accessed_t) += 1;

    // Ripple join against matching rows already seen on the other side.
    const JoinKey key = mine.rel->join_key(row);
    auto it = other.seen.find(key);
    if (it != other.seen.end()) {
      for (RowId partner : it->second) {
        const RowId r_id = take_r ? row : partner;
        const RowId t_id = take_r ? partner : row;
        mapper.Combine(r_contrib.vector(r_id), t_contrib.vector(t_id),
                       out.data());
        window.Insert(out.data(),
                      (static_cast<uint64_t>(r_id) << 32) | t_id, &counter);
        ++s.base.join_pairs;
      }
    }
    mine.seen[key].push_back(row);

    // Threshold termination (Fagin-style): any pair involving an unseen R
    // row maps at or above Combine(suffix_min_R, global_min_T)
    // component-wise, and symmetrically for unseen T rows. If existing
    // results strictly dominate both bounds, no future pair can survive.
    if (++rounds % kCheckEvery != 0 || window.size() == 0) continue;
    bool r_covered = r_stream.exhausted();
    if (!r_covered) {
      mapper.Combine(
          r_stream.suffix_min.data() +
              r_stream.pos * static_cast<size_t>(k),
          t_stream.global_min.data(), bound_r.data());
      r_covered = WindowCovers(window, bound_r.data(), k);
    }
    bool t_covered = t_stream.exhausted();
    if (r_covered && !t_covered) {
      mapper.Combine(r_stream.global_min.data(),
                     t_stream.suffix_min.data() +
                         t_stream.pos * static_cast<size_t>(k),
                     bound_t.data());
      t_covered = WindowCovers(window, bound_t.data(), k);
    }
    if (r_covered && t_covered) {
      s.stopped_early = true;
      break;
    }
  }

  // Single batch at termination (JF-SL paradigm).
  s.base.batches = 1;
  s.base.dominance_comparisons = counter.comparisons;
  ResultTuple result;
  result.values.resize(static_cast<size_t>(k));
  for (size_t i = 0; i < window.size(); ++i) {
    const uint64_t payload = window.payload(i);
    result.r_id = static_cast<RowId>(payload >> 32);
    result.t_id = static_cast<RowId>(payload & 0xffffffffu);
    const double* v = window.point(i);
    for (int j = 0; j < k; ++j) {
      result.values[static_cast<size_t>(j)] = mapper.Decanonicalize(j, v[j]);
    }
    emit(result);
    ++s.base.results;
  }
  return Status::OK();
}

}  // namespace progxe
