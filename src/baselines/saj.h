// SAJ: the Fagin-style skyline-over-join baseline (Section VI-A of the
// paper: "SAJ [Koudas et al.] extended the popular Fagin technique
// following the JF-SL paradigm").
//
// Both sources are accessed in ascending order of a monotone score of their
// canonical contribution vectors (the coordinate sum, as in Fagin's sorted
// access). A ripple join incrementally pairs each newly accessed row with
// all matching rows seen so far on the other source, feeding a skyline
// window. After every round the algorithm computes a *threshold vector* —
// a component-wise lower bound on the mapped output of any pair involving a
// still-unseen row — and terminates early once some window tuple is
// strictly below the threshold in every dimension (no future pair can be
// undominated).
//
// Like JF-SL, SAJ is blocking: it emits a single batch when it terminates.
// Its value is the Fagin-style early termination, which can stop long
// before exhausting the sources on skyline-friendly data; the
// `rows_accessed_*` stats expose how much sorted access it needed.
#pragma once

#include "baselines/baseline_stats.h"
#include "common/status.h"
#include "progxe/executor.h"

namespace progxe {

struct SajStats {
  BaselineStats base;
  /// Rows consumed from each sorted stream before termination.
  size_t rows_accessed_r = 0;
  size_t rows_accessed_t = 0;
  /// True iff the threshold test stopped the scan before exhausting input.
  bool stopped_early = false;
};

/// Runs SAJ. Results are emitted in one batch at termination.
Status RunSaj(const SkyMapJoinQuery& query, const EmitFn& emit,
              SajStats* stats = nullptr);

}  // namespace progxe
