#include "baselines/ssmj.h"

#include <unordered_set>
#include <vector>

#include "common/macros.h"
#include "join/sort_merge_join.h"
#include "skyline/group_skyline.h"
#include "skyline/skyline.h"

namespace progxe {

namespace {

struct Candidate {
  RowId r;
  RowId t;
};

inline uint64_t PairKey(RowId r, RowId t) {
  return (static_cast<uint64_t>(r) << 32) | static_cast<uint64_t>(t);
}

}  // namespace

Status RunSsmj(const SkyMapJoinQuery& query, const EmitFn& emit,
               BaselineStats* stats, SsmjResult* result,
               const BatchFn& on_batch) {
  BaselineStats local_stats;
  BaselineStats& s = stats != nullptr ? *stats : local_stats;
  s = BaselineStats();
  SsmjResult local_result;
  SsmjResult& res = result != nullptr ? *result : local_result;
  res = SsmjResult();

  if (query.r == nullptr || query.t == nullptr) {
    return Status::InvalidArgument("query sources must be non-null");
  }
  if (query.pref.dimensions() != query.map.output_dimensions()) {
    return Status::InvalidArgument(
        "preference dimensionality must match the map output");
  }
  PROGXE_RETURN_NOT_OK(query.map.Validate(query.r->num_attributes(),
                                          query.t->num_attributes()));

  const Relation& r_rel = *query.r;
  const Relation& t_rel = *query.t;
  CanonicalMapper mapper(query.map, query.pref);
  const int k = mapper.output_dimensions();

  // --- List construction (blocking pre-pass) --------------------------------
  ContributionTable r_contrib(r_rel, mapper, Side::kR);
  ContributionTable t_contrib(t_rel, mapper, Side::kT);
  DomCounter counter;
  SourceLists r_lists = ComputeSourceLists(r_rel, r_contrib, &counter);
  SourceLists t_lists = ComputeSourceLists(t_rel, t_contrib, &counter);

  // LS(N)' = group-level members that are not already in LS(S).
  std::vector<RowId> r_n_only;
  for (RowId id : r_lists.group_skyline) {
    if (!r_lists.in_source_skyline[id]) r_n_only.push_back(id);
  }
  std::vector<RowId> t_n_only;
  for (RowId id : t_lists.group_skyline) {
    if (!t_lists.in_source_skyline[id]) t_n_only.push_back(id);
  }
  s.r_rows_used = r_lists.group_skyline.size();
  s.t_rows_used = t_lists.group_skyline.size();

  std::vector<KeyedRow> r_s = SortByKey(r_rel, r_lists.source_skyline);
  std::vector<KeyedRow> r_n = SortByKey(r_rel, r_n_only);
  std::vector<KeyedRow> t_s = SortByKey(t_rel, t_lists.source_skyline);
  std::vector<KeyedRow> t_n = SortByKey(t_rel, t_n_only);

  std::vector<double> values;  // flat canonical vectors of all candidates
  std::vector<Candidate> cands;
  std::vector<double> buf(static_cast<size_t>(k));
  auto collect = [&](RowId r_id, RowId t_id) {
    ++s.join_pairs;
    mapper.Combine(r_contrib.vector(r_id), t_contrib.vector(t_id), buf.data());
    values.insert(values.end(), buf.begin(), buf.end());
    cands.push_back(Candidate{r_id, t_id});
  };

  auto make_result = [&](size_t cand_idx) {
    ResultTuple out;
    out.r_id = cands[cand_idx].r;
    out.t_id = cands[cand_idx].t;
    out.values.resize(static_cast<size_t>(k));
    const double* v = values.data() + cand_idx * static_cast<size_t>(k);
    for (int j = 0; j < k; ++j) {
      out.values[static_cast<size_t>(j)] = mapper.Decanonicalize(j, v[j]);
    }
    return out;
  };

  // --- Phase 1: LS(S) join LS(S) -> first output batch ----------------------
  MergeJoin(r_s, t_s, collect);
  const size_t phase1_count = cands.size();
  std::unordered_set<uint64_t> batch1_keys;
  {
    PointView view{values.data(), phase1_count, k};
    for (uint32_t idx : SkylineSFS(view, &counter)) {
      ResultTuple out = make_result(idx);
      batch1_keys.insert(PairKey(out.r_id, out.t_id));
      res.batch1.push_back(out);
      emit(out);
      ++s.results;
    }
  }
  s.batches = 1;
  if (on_batch) on_batch(1);

  // --- Phase 2: remaining LS combinations, final skyline at the end ---------
  MergeJoin(r_s, t_n, collect);
  MergeJoin(r_n, t_s, collect);
  MergeJoin(r_n, t_n, collect);

  {
    PointView view{values.data(), cands.size(), k};
    std::vector<uint32_t> final_sky = SkylineSFS(view, &counter);
    std::unordered_set<uint64_t> final_keys;
    for (uint32_t idx : final_sky) {
      ResultTuple out = make_result(idx);
      final_keys.insert(PairKey(out.r_id, out.t_id));
      res.final_results.push_back(out);
      if (batch1_keys.count(PairKey(out.r_id, out.t_id)) == 0) {
        emit(out);
        ++s.results;
      }
    }
    // Count batch-1 results that did not survive phase 2: the mapping-
    // induced false positives of SSMJ's early batch.
    for (uint64_t key : batch1_keys) {
      if (final_keys.count(key) == 0) ++s.early_false_positives;
    }
  }
  s.batches = 2;
  if (on_batch) on_batch(2);

  s.dominance_comparisons = counter.comparisons;
  return Status::OK();
}

}  // namespace progxe
