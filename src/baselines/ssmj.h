// SSMJ: Skyline-Sort-Merge-Join (Jin et al., "The multi-relational skyline
// operator", ICDE 2007), as characterized in Sections VI-A and VII of the
// ProgXe paper.
//
// SSMJ maintains two lists per source: LS(S), the source-level skyline that
// ignores the join attribute, and LS(N), the per-join-value group-level
// skylines. Evaluation is phased:
//
//   Phase 1: LS(S) join LS(S) — all pairs generated, mapped, skylined;
//            the surviving results are reported as the FIRST batch.
//   Phase 2: the remaining combinations (LS(S) x LS(N)', LS(N)' x LS(S),
//            LS(N)' x LS(N)' with LS(N)' = LS(N) \ LS(S)) are evaluated and
//            the final results are reported at the very end.
//
// So SSMJ "produces results at two distinct moments of time in batches".
// In the original (map-free) setting batch-1 results are provably final;
// with mapping functions that guarantee breaks (the paper's third criticism
// in Section VII). This implementation reproduces that behaviour faithfully
// and *counts* any batch-1 false positives in
// BaselineStats::early_false_positives; `final_results` always holds the
// correct complete skyline.
#pragma once

#include <vector>

#include "baselines/baseline_stats.h"
#include "common/status.h"
#include "progxe/executor.h"

namespace progxe {

/// Batch boundary notification: invoked once after batch 1 is emitted (so
/// progressiveness recorders can timestamp the two SSMJ output moments).
using BatchFn = std::function<void(int batch_number)>;

struct SsmjResult {
  /// Everything emitted in batch 1 (may contain false positives when the
  /// query has cross-source mapping functions).
  std::vector<ResultTuple> batch1;
  /// The correct, complete final skyline.
  std::vector<ResultTuple> final_results;
};

/// Runs SSMJ. `emit` receives batch-1 results as soon as phase 1 completes
/// and the remaining final results at the end; `on_batch` (optional) fires
/// after each batch. Batch-1 false positives are emitted (as the real SSMJ
/// would) but excluded from `result.final_results`.
Status RunSsmj(const SkyMapJoinQuery& query, const EmitFn& emit,
               BaselineStats* stats = nullptr, SsmjResult* result = nullptr,
               const BatchFn& on_batch = nullptr);

}  // namespace progxe
