// Stable in-place compaction over parallel arrays.
//
// Both incremental skyline structures — SkylineWindow (baselines) and
// OutputTable::CellData (ProgXe cells) — store points as a flat k-wide
// values array plus parallel per-point arrays, and periodically squeeze out
// evicted entries. This helper is the single implementation of that
// squeeze: one forward pass, each survivor moved at most once.
#pragma once

#include <algorithm>
#include <cstddef>

namespace progxe {

/// Compacts `n` logical entries in place: keeps entry i iff `keep(i)`,
/// moving survivors down with `move(from, to)` (called only when from !=
/// to, in ascending order). Returns the survivor count; the caller shrinks
/// its arrays to that size.
template <typename KeepFn, typename MoveFn>
inline size_t CompactParallel(size_t n, KeepFn&& keep, MoveFn&& move) {
  size_t w = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!keep(i)) continue;
    if (w != i) move(i, w);
    ++w;
  }
  return w;
}

/// Copies row `from` over row `to` of a flat array with `k` values per row.
inline void MoveFlatRow(double* data, size_t k, size_t from, size_t to) {
  std::copy(data + from * k, data + (from + 1) * k, data + to * k);
}

}  // namespace progxe
