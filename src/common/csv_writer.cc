#include "common/csv_writer.h"

namespace progxe {

Result<CsvWriter> CsvWriter::Open(const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open CSV file for writing: " + path);
  }
  return CsvWriter(std::move(out));
}

std::string CsvWriter::Escape(const std::string& value) {
  bool needs_quotes = value.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& values) {
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << Escape(values[i]);
  }
  out_ << '\n';
}

void CsvWriter::WriteRow(std::initializer_list<std::string> values) {
  WriteRow(std::vector<std::string>(values));
}

void CsvWriter::Close() {
  out_.flush();
  out_.close();
}

}  // namespace progxe
