// Tiny CSV emitter used by the benchmark harness to dump figure series in a
// gnuplot/pandas-friendly format.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/status.h"

namespace progxe {

/// Writes rows of comma-separated values to a file (or any ostream).
///
/// Values containing commas, quotes or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing, truncating any existing file.
  static Result<CsvWriter> Open(const std::string& path);

  /// Writes one row; each value is escaped as needed.
  void WriteRow(const std::vector<std::string>& values);
  void WriteRow(std::initializer_list<std::string> values);

  /// Convenience: formats arithmetic values with full precision.
  template <typename... Ts>
  void WriteValues(const Ts&... vals) {
    std::vector<std::string> row;
    row.reserve(sizeof...(vals));
    (row.push_back(FormatValue(vals)), ...);
    WriteRow(row);
  }

  /// Flushes and closes the underlying stream.
  void Close();

  static std::string Escape(const std::string& value);

 private:
  explicit CsvWriter(std::ofstream out) : out_(std::move(out)) {}

  template <typename T>
  static std::string FormatValue(const T& v) {
    if constexpr (std::is_arithmetic_v<T>) {
      return std::to_string(v);
    } else {
      return std::string(v);
    }
  }

  std::ofstream out_;
};

}  // namespace progxe
