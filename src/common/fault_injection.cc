#include "common/fault_injection.h"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace progxe {
namespace {

/// splitmix64 finalizer: the one-shot mixer used wherever the codebase
/// needs a stateless hash (shard_planner.h uses the same constants).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashString(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a, folded through Mix64
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

/// The per-call firing decision for probabilistic rules: a pure function of
/// (seed, site, instance, call number), so the schedule is reproducible
/// regardless of which thread asks.
bool Fires(uint64_t seed, uint64_t site_hash, int instance, uint64_t call,
           double probability) {
  if (probability >= 1.0) return true;
  if (probability <= 0.0) return false;
  const uint64_t h =
      Mix64(seed ^ site_hash ^ (static_cast<uint64_t>(instance) << 32) ^
            Mix64(call + 1));
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < probability;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);  // strtod needs NUL termination
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

Status BadSpec(std::string_view what, std::string_view fragment) {
  return Status::InvalidArgument("fault spec: " + std::string(what) + " in '" +
                                 std::string(fragment) + "'");
}

Status ParseRule(std::string_view entry, FaultRule* rule) {
  const size_t colon = entry.find(':');
  std::string_view site = entry.substr(0, colon);
  if (site.empty()) return BadSpec("empty site", entry);
  rule->site = std::string(site);
  if (colon == std::string_view::npos) return Status::OK();

  std::string_view fields = entry.substr(colon + 1);
  while (!fields.empty()) {
    const size_t comma = fields.find(',');
    std::string_view field = fields.substr(0, comma);
    fields = comma == std::string_view::npos ? std::string_view()
                                             : fields.substr(comma + 1);
    const size_t eq = field.find('=');
    if (eq == std::string_view::npos) return BadSpec("field without '='", field);
    const std::string_view key = field.substr(0, eq);
    const std::string_view value = field.substr(eq + 1);
    if (key == "p") {
      if (!ParseDouble(value, &rule->probability) || rule->probability < 0.0 ||
          rule->probability > 1.0) {
        return BadSpec("p must be a probability in [0,1]", field);
      }
    } else if (key == "max") {
      if (!ParseInt64(value, &rule->max_fires) || rule->max_fires < 0) {
        return BadSpec("max must be a non-negative integer", field);
      }
    } else if (key == "skip") {
      if (!ParseInt64(value, &rule->skip) || rule->skip < 0) {
        return BadSpec("skip must be a non-negative integer", field);
      }
    } else if (key == "shard") {
      int64_t v = 0;
      if (!ParseInt64(value, &v) || v < 0 || v > INT32_MAX) {
        return BadSpec("shard must be a non-negative integer", field);
      }
      rule->instance = static_cast<int>(v);
    } else if (key == "code") {
      StatusCode code = StatusCode::kOk;
      if (!StatusCodeFromName(value, &code) || code == StatusCode::kOk) {
        return BadSpec("unknown error code", field);
      }
      rule->code = code;
    } else {
      return BadSpec("unknown field", field);
    }
  }
  return Status::OK();
}

}  // namespace

std::string FaultRule::ToString() const {
  std::ostringstream os;
  os << site << ":p=" << probability;
  if (max_fires >= 0) os << ",max=" << max_fires;
  if (skip > 0) os << ",skip=" << skip;
  if (instance >= 0) os << ",shard=" << instance;
  if (code != StatusCode::kUnavailable) os << ",code=" << StatusCodeToken(code);
  return os.str();
}

FaultInjector::FaultInjector(std::vector<FaultRule> rules, uint64_t seed)
    : rules_(std::move(rules)),
      counters_(new Counters[rules_.size()]),
      seed_(seed) {}

Result<std::shared_ptr<FaultInjector>> FaultInjector::Parse(
    std::string_view spec, uint64_t seed) {
  std::vector<FaultRule> rules;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const size_t semi = rest.find(';');
    std::string_view entry = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view()
                                          : rest.substr(semi + 1);
    if (entry.empty()) continue;  // tolerate "a;;b" and trailing ';'
    FaultRule rule;
    PROGXE_RETURN_NOT_OK(ParseRule(entry, &rule));
    rules.push_back(std::move(rule));
  }
  if (rules.empty()) {
    return Status::InvalidArgument("fault spec: no rules in '" +
                                   std::string(spec) + "'");
  }
  return std::shared_ptr<FaultInjector>(
      new FaultInjector(std::move(rules), seed));
}

FaultInjector* FaultInjector::FromEnv() {
  // Read and parse the environment exactly once per process; the injector
  // (and its fire budgets) is deliberately shared across every stream and
  // scheduler created afterwards.
  static FaultInjector* const global = []() -> FaultInjector* {
    const char* spec = std::getenv("PROGXE_FAULT_SITES");
    if (spec == nullptr || spec[0] == '\0') return nullptr;
    uint64_t seed = 0;
    if (const char* s = std::getenv("PROGXE_FAULT_SEED")) {
      seed = std::strtoull(s, nullptr, 10);
    }
    auto parsed = Parse(spec, seed);
    if (!parsed.ok()) {
      // A soak run with a typo'd spec must fail the run, not silently test
      // the fault-free path.
      std::fprintf(stderr, "fatal: PROGXE_FAULT_SITES: %s\n",
                   parsed.status().ToString().c_str());
      std::abort();
    }
    std::fprintf(stderr, "progxe: fault injection armed (seed=%llu): %s\n",
                 static_cast<unsigned long long>(seed),
                 (*parsed)->ToString().c_str());
    // Leak one injector per process: FromEnv callers keep raw pointers.
    return new FaultInjector(std::move(**parsed));
  }();
  return global;
}

Status FaultInjector::Check(std::string_view site, int instance) {
  for (size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& rule = rules_[i];
    if (rule.site != site) continue;
    if (rule.instance >= 0 && rule.instance != instance) continue;
    Counters& counters = counters_[i];
    const uint64_t call =
        counters.calls.fetch_add(1, std::memory_order_relaxed);
    if (static_cast<int64_t>(call) < rule.skip) continue;
    if (!Fires(seed_, HashString(rule.site), instance, call,
               rule.probability)) {
      continue;
    }
    if (rule.max_fires >= 0) {
      // Reserve a fire slot; losing the race past the budget means no fault.
      if (counters.fired.fetch_add(1, std::memory_order_relaxed) >=
          rule.max_fires) {
        continue;
      }
    } else {
      counters.fired.fetch_add(1, std::memory_order_relaxed);
    }
    return Status(rule.code, "injected fault at " + rule.site + "#" +
                                 std::to_string(instance) + " (call " +
                                 std::to_string(call) + ")");
  }
  return Status::OK();
}

int64_t FaultInjector::fires() const {
  int64_t total = 0;
  for (size_t i = 0; i < rules_.size(); ++i) {
    int64_t fired = counters_[i].fired.load(std::memory_order_relaxed);
    // `fired` may overshoot max_fires by racing reservations; report the
    // number of faults actually delivered.
    if (rules_[i].max_fires >= 0) fired = std::min(fired, rules_[i].max_fires);
    total += fired;
  }
  return total;
}

std::string FaultInjector::ToString() const {
  std::string out;
  for (const FaultRule& rule : rules_) {
    if (!out.empty()) out += ';';
    out += rule.ToString();
  }
  return out;
}

}  // namespace progxe
