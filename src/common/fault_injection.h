// Deterministic, site-keyed fault injection.
//
// A FaultInjector is a small registry of rules, each bound to a named call
// site in the engine ("shard.open", "shard.next_batch", ...). Code on a
// fallible path asks the injector whether this particular call should fail:
//
//   PROGXE_RETURN_NOT_OK(MaybeInjectFault(faults, fault_sites::kShardOpen,
//                                         shard_index));
//
// and receives a non-OK Status (kUnavailable by default) when a rule fires.
// Firing decisions are a pure function of (seed, site, instance, per-rule
// call number), so a given spec + seed produces the same fault schedule on
// every run, at any thread count — which is what makes recovery testable:
// the suite can replay the exact same crash pattern and assert the repaired
// result set bit-identical to the fault-free one.
//
// Rules come from a spec string, either programmatic
// (ProgXeOptions::faults) or ambient (the PROGXE_FAULT_SITES environment
// variable, parsed once per process — see FromEnv):
//
//   spec    := rule (';' rule)*
//   rule    := site (':' field (',' field)*)?
//   field   := 'p=' probability   — fire chance per call, default 1
//            | 'max=' n           — stop after n fires, default unlimited
//            | 'skip=' n          — pass the first n calls, default 0
//            | 'shard=' i         — only this instance (shard/query id)
//            | 'code=' token      — StatusCodeToken to fire, default
//                                   unavailable
//
//   "shard.open:p=1,max=2"                        fail the first two opens
//   "shard.next_batch:p=0.05;shard.open:shard=1"  soak + one sick shard
//
// Disabled injection is free: MaybeInjectFault is an inline null-pointer
// test, no rule table is consulted (bench_sharded measures this and CI
// gates it).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace progxe {

/// Canonical site names. Keep docs/ARCHITECTURE.md's fault-site table in
/// sync when adding one.
namespace fault_sites {
/// ShardedStream (re-)opening one per-shard sub-session; instance = shard.
inline constexpr const char kShardOpen[] = "shard.open";
/// ShardedStream pumping one sub-session; instance = shard.
inline constexpr const char kShardNextBatch[] = "shard.next_batch";
/// ShardedStream's merge release pass; a fault here is not shard-local and
/// fails the whole stream (no retry).
inline constexpr const char kMergeRelease[] = "merge.release";
/// ProgXeSession::NextBatch, inside the engine; instance =
/// ProgXeOptions::fault_instance. Only fired by an explicit
/// ProgXeOptions::faults injector, never by the process-wide env one, so a
/// soak run perturbs the sharded/serving layers without failing every
/// plain-session test in the same process.
inline constexpr const char kSessionNextBatch[] = "session.next_batch";
/// QueryScheduler worker about to run a slice; instance = query id.
inline constexpr const char kSchedulerSlice[] = "scheduler.slice";
/// BuildPreparedInputs about to prepare a query (push-through, grids,
/// look-ahead); instance = ProgXeOptions::fault_instance, which is the
/// shard index inside a sharded stream — so a soak spec with `shard=N`
/// (N >= 1) exercises shard-open recovery without failing unsharded
/// sessions, whose instance is 0.
inline constexpr const char kPrepareBuild[] = "prepare.build";
/// RegionLoop about to drive the (possibly parallel) join->map->insert
/// pipeline for one region chunk; instance = ProgXeOptions::fault_instance
/// (same shard-targeting convention as prepare.build). Fires through the
/// session's error channel mid-stream, exactly where a worker-thread crash
/// would surface.
inline constexpr const char kPipelineChunk[] = "pipeline.chunk";
/// Transport chaos sites (net/socket.cc). Instance is always 0 — socket
/// calls have no shard identity — so chaos specs use p=/max= schedules.
/// kNetSend: SendFrame tears the write (partial frame header goes out, the
/// call fails, the peer sees EOF when the poisoned link is dropped).
inline constexpr const char kNetSend[] = "net.send";
/// kNetRecv: RecvFrame fails before reading (a short read / reset), leaving
/// whatever the peer sent undrained; the link is dropped by the caller.
inline constexpr const char kNetRecv[] = "net.recv";
/// kNetFrame: SendFrame corrupts the length prefix past kMaxFramePayload;
/// the frame is sent whole and the *receiver* detects the corrupt link.
inline constexpr const char kNetFrame[] = "net.frame";
}  // namespace fault_sites

/// One parsed spec rule. See the grammar above.
struct FaultRule {
  std::string site;
  double probability = 1.0;
  int64_t max_fires = -1;  ///< < 0: unlimited.
  int64_t skip = 0;
  int instance = -1;  ///< < 0: any instance.
  StatusCode code = StatusCode::kUnavailable;

  std::string ToString() const;
};

/// A compiled, thread-safe fault schedule. Immutable after Parse except for
/// the per-rule call/fire counters (atomics), so one injector may be shared
/// across sub-sessions, scheduler workers and option copies — sharing is
/// what makes `max=` a budget over the whole run rather than per copy.
class FaultInjector {
 public:
  /// Compiles `spec` (grammar above). Fails with InvalidArgument on any
  /// malformed rule, naming the offending fragment.
  static Result<std::shared_ptr<FaultInjector>> Parse(std::string_view spec,
                                                      uint64_t seed = 0);

  /// The process-wide injector from PROGXE_FAULT_SITES (seeded by
  /// PROGXE_FAULT_SEED), or nullptr when the variable is unset/empty. The
  /// environment is read and parsed exactly once, on first call; a
  /// malformed spec aborts loudly rather than silently soaking nothing.
  /// The returned pointer has process lifetime.
  static FaultInjector* FromEnv();

  /// Decides whether this call fails. Returns OK or the rule's Status.
  Status Check(std::string_view site, int instance = 0);

  /// Total faults fired so far, across all rules.
  int64_t fires() const;

  uint64_t seed() const { return seed_; }
  const std::vector<FaultRule>& rules() const { return rules_; }
  std::string ToString() const;

 private:
  FaultInjector(std::vector<FaultRule> rules, uint64_t seed);

  /// Counters live apart from the (immutable) rules, one slot per rule.
  struct Counters {
    std::atomic<uint64_t> calls{0};
    std::atomic<int64_t> fired{0};
  };

  std::vector<FaultRule> rules_;
  std::unique_ptr<Counters[]> counters_;
  uint64_t seed_ = 0;
};

/// The hot-path hook: free when no injector is installed (one predicted
/// branch, no Status allocation).
inline Status MaybeInjectFault(FaultInjector* injector, std::string_view site,
                               int instance = 0) {
  if (PROGXE_PREDICT_TRUE(injector == nullptr)) return Status::OK();
  return injector->Check(site, instance);
}

}  // namespace progxe
