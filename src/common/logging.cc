#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace progxe {

namespace {

int InitialLevel() {
  const char* env = std::getenv("PROGXE_LOG_LEVEL");
  LogLevel level = LogLevel::kInfo;
  if (env != nullptr && *env != '\0' && !ParseLogLevel(env, &level)) {
    std::fprintf(stderr,
                 "[WARN ] unrecognized PROGXE_LOG_LEVEL \"%s\" "
                 "(want debug|info|warn|error or 0-3); using info\n",
                 env);
  }
  return static_cast<int>(level);
}

std::atomic<int>& Level() {
  static std::atomic<int> level{InitialLevel()};
  return level;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

std::chrono::steady_clock::time_point ProcessStart() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return start;
}

// Touch the origin during static initialization so "process start" is as
// early as the first static initializer, not the first log line.
const std::chrono::steady_clock::time_point g_origin_init = ProcessStart();

}  // namespace

void SetLogLevel(LogLevel level) {
  Level().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(Level().load(std::memory_order_relaxed));
}

bool ParseLogLevel(std::string_view name, LogLevel* out) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "0") {
    *out = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning" || lower == "2") {
    *out = LogLevel::kWarn;
  } else if (lower == "error" || lower == "3") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

int LogThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

double LogMonotonicSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       ProcessStart())
      .count();
}

namespace internal {

std::string FormatLogPrefix(LogLevel level, const char* file, int line) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "[%s +%.6fs tid=%d %s:%d] ",
                LevelTag(level), LogMonotonicSeconds(), LogThreadId(),
                Basename(file), line);
  return std::string(buf);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               Level().load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) stream_ << FormatLogPrefix(level_, file, line);
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
}

}  // namespace internal
}  // namespace progxe
