// Minimal leveled logging. Benchmarks and examples log at INFO; the library
// itself logs at DEBUG (off by default) on query paths and at WARN/ERROR for
// state changes an operator should see (shard quarantine/abandonment,
// deadline expiry, stream failure).
//
// The minimum emitted level defaults to kInfo and can be set either
// programmatically (SetLogLevel) or via the PROGXE_LOG_LEVEL environment
// variable ("debug" | "info" | "warn" | "error", case-insensitive, or the
// numeric 0-3), read once on first use.
//
// One line per message, machine-grippable:
//
//   [WARN  +12.345678s tid=3 sharded_stream.cc:412] shard 2 quarantined ...
//
// `+seconds` is monotonic time since process start (steady clock — matches
// trace timestamps), `tid` is a small process-wide thread id shared with the
// span-tracing layer (obs/trace.h), so a log line can be correlated with
// the same thread's track in a trace.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace progxe {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the minimum level that is emitted (default kInfo, or
/// PROGXE_LOG_LEVEL when set).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug"/"info"/"warn"/"warning"/"error" (any case) or "0".."3".
/// Returns false (and leaves *out untouched) on anything else.
bool ParseLogLevel(std::string_view name, LogLevel* out);

/// Small dense id of the calling thread (0, 1, 2, ... in first-use order),
/// stable for the thread's lifetime. Shared by log lines and trace exports.
int LogThreadId();

/// Monotonic seconds since process start (steady clock), the time base of
/// every log line's `+seconds` field.
double LogMonotonicSeconds();

namespace internal {

/// The "[LEVEL +secs tid=N file:line] " line prefix; exposed for tests.
std::string FormatLogPrefix(LogLevel level, const char* file, int line);

/// Accumulates one log line and flushes it to stderr on destruction if the
/// level passes the global filter.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace progxe

#define PROGXE_LOG(level)                                        \
  ::progxe::internal::LogMessage(::progxe::LogLevel::k##level, \
                                 __FILE__, __LINE__)
