// Minimal leveled logging. Benchmarks and examples log at INFO; the library
// itself only logs at DEBUG (off by default) so query paths stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace progxe {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the minimum level that is emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and flushes it to stderr on destruction if the
/// level passes the global filter.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace progxe

#define PROGXE_LOG(level)                                        \
  ::progxe::internal::LogMessage(::progxe::LogLevel::k##level, \
                                 __FILE__, __LINE__)
