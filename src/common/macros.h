// Common preprocessor macros used across the ProgXe codebase.
#pragma once

// Marks a branch as unlikely; used on error paths so the hot path stays
// straight-line code.
#if defined(__GNUC__) || defined(__clang__)
#define PROGXE_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
#define PROGXE_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#else
#define PROGXE_PREDICT_FALSE(x) (x)
#define PROGXE_PREDICT_TRUE(x) (x)
#endif

// Propagates a non-OK Status out of the current function.
#define PROGXE_RETURN_NOT_OK(expr)                  \
  do {                                              \
    ::progxe::Status _st = (expr);                  \
    if (PROGXE_PREDICT_FALSE(!_st.ok())) return _st; \
  } while (false)

#define PROGXE_DISALLOW_COPY_AND_ASSIGN(T) \
  T(const T&) = delete;                    \
  T& operator=(const T&) = delete
