#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace progxe {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: expands a single seed into the four xoshiro words.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  // xoshiro must not be seeded with all zeros; splitmix64 of any seed makes
  // that astronomically unlikely, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Debiased modulo via rejection on the tail.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller in polar (Marsaglia) form.
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

}  // namespace progxe
