// Deterministic random number generation for data generators and tests.
//
// All randomized components of the library take an explicit Rng (or a seed)
// so that every experiment in EXPERIMENTS.md is exactly reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace progxe {

/// xoshiro256** pseudo-random generator (Blackman & Vigna).
///
/// Chosen over std::mt19937 for speed and for a stable, implementation-
/// independent stream: the C++ standard does not pin down distribution
/// outputs, so the distribution helpers here are hand-rolled too.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n), n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal variate (Box-Muller, cached pair).
  double Gaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace progxe
