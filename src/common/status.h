// Status / Result error handling in the style of Arrow and RocksDB: functions
// that can fail return a Status (or a Result<T> carrying either a value or a
// Status) instead of throwing. Exceptions are not used on query paths.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace progxe {

/// Machine-readable error category carried by a non-OK Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kInternal = 5,
  kNotImplemented = 6,
  kIOError = 7,
  kUnavailable = 8,        ///< Transient: the operation may succeed if retried.
  kResourceExhausted = 9,  ///< A quota/limit was hit; may clear over time.
  kCancelled = 10,         ///< The caller (or a scheduler) abandoned the work.
};

/// Returns a short human-readable name for a StatusCode ("OK",
/// "Invalid argument", ...).
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

/// Stable machine-readable token for a StatusCode ("ok", "invalid_argument",
/// ...), used by wire formats (fault specs, the server line protocol).
inline const char* StatusCodeToken(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kNotImplemented:
      return "not_implemented";
    case StatusCode::kIOError:
      return "io_error";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

/// Inverse of StatusCodeToken (also accepts the StatusCodeName display
/// forms). Round-trips every enumerator; returns false on an unknown name.
inline bool StatusCodeFromName(std::string_view name, StatusCode* out) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kInternal, StatusCode::kNotImplemented,
        StatusCode::kIOError, StatusCode::kUnavailable,
        StatusCode::kResourceExhausted, StatusCode::kCancelled}) {
    if (name == StatusCodeToken(code) || name == StatusCodeName(code)) {
      *out = code;
      return true;
    }
  }
  return false;
}

/// True for transient failure classes a caller may reasonably retry
/// (kUnavailable, kResourceExhausted, kIOError). Everything else — including
/// kCancelled, which records a *decision*, not a fault — is terminal.
inline bool IsRetryableStatusCode(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kIOError;
}

/// Outcome of an operation: either OK, or an error code plus message.
///
/// The OK state is represented by a null internal pointer so that returning
/// Status::OK() is free (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    assert(code != StatusCode::kOk);
    state_ = std::make_shared<State>(State{code, std::move(msg)});
  }

  /// Returns the singleton-like OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return state_ == nullptr; }

  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  /// The error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->msg;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(state_->code)) + ": " + state_->msg;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// True iff the code marks a transient failure (IsRetryableStatusCode).
  bool IsRetryable() const { return IsRetryableStatusCode(code()); }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // Shared so Status is cheap to copy; Status objects are immutable.
  std::shared_ptr<const State> state_;
};

/// Either a value of type T or a non-OK Status explaining why the value could
/// not be produced.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not be built from an OK Status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The failure Status, or OK if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// The held value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  /// Moves the value out; must only be called when ok().
  T MoveValue() {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace progxe

/// Assigns the value of a Result expression to `lhs`, or returns its Status.
#define PROGXE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (PROGXE_PREDICT_FALSE(!tmp.ok())) return tmp.status(); \
  lhs = std::move(tmp).MoveValue()

#define PROGXE_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define PROGXE_ASSIGN_OR_RETURN_NAME(x, y) PROGXE_ASSIGN_OR_RETURN_CONCAT(x, y)

#define PROGXE_ASSIGN_OR_RETURN(lhs, rexpr) \
  PROGXE_ASSIGN_OR_RETURN_IMPL(             \
      PROGXE_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, rexpr)
