// Wall-clock timing for the progressiveness harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace progxe {

/// Monotonic stopwatch; Start() resets the origin.
class Stopwatch {
 public:
  Stopwatch() { Start(); }

  /// Resets the origin to now.
  void Start() { start_ = Clock::now(); }

  /// Microseconds elapsed since the last Start().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Seconds elapsed since the last Start().
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) * 1e-6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace progxe
