#include "data/csv_loader.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace progxe {

namespace internal {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace internal

namespace {

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool ParseJoinKey(const std::string& s, JoinKey* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<JoinKey>(v);
  return true;
}

}  // namespace

Result<CsvLoadResult> LoadRelationCsv(const std::string& path,
                                      const std::string& join_column) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open CSV file: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("CSV file is empty: " + path);
  }
  const std::vector<std::string> header = internal::SplitCsvLine(line);
  int join_index = -1;
  std::vector<std::string> attr_names;
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == join_column) {
      if (join_index >= 0) {
        return Status::InvalidArgument("duplicate join column '" +
                                       join_column + "'");
      }
      join_index = static_cast<int>(i);
    } else {
      attr_names.push_back(header[i]);
    }
  }
  if (join_index < 0) {
    return Status::InvalidArgument("join column '" + join_column +
                                   "' not found in header");
  }
  if (attr_names.empty()) {
    return Status::InvalidArgument("CSV needs at least one value column");
  }

  CsvLoadResult result;
  result.relation = Relation(Schema(attr_names, join_column));
  std::unordered_map<std::string, JoinKey> dictionary;

  std::vector<double> attrs(attr_names.size());
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> fields = internal::SplitCsvLine(line);
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": expected " +
          std::to_string(header.size()) + " fields, got " +
          std::to_string(fields.size()));
    }
    size_t attr_pos = 0;
    JoinKey key = 0;
    for (size_t i = 0; i < fields.size(); ++i) {
      if (static_cast<int>(i) == join_index) {
        if (!ParseJoinKey(fields[i], &key)) {
          // Dictionary-encode string keys.
          auto [it, inserted] = dictionary.try_emplace(
              fields[i], static_cast<JoinKey>(dictionary.size()));
          if (inserted) result.join_dictionary.push_back(fields[i]);
          key = it->second;
        }
        continue;
      }
      if (!ParseDouble(fields[i], &attrs[attr_pos])) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) + ": column '" +
            header[i] + "' is not numeric: '" + fields[i] + "'");
      }
      ++attr_pos;
    }
    result.relation.Append(attrs, key);
  }
  return result;
}

Status WriteRelationCsv(const Relation& rel, const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open CSV file for writing: " + path);
  }
  const Schema& schema = rel.schema();
  for (int i = 0; i < schema.num_attributes(); ++i) {
    out << schema.attribute_names()[static_cast<size_t>(i)] << ',';
  }
  out << schema.join_name() << '\n';
  std::ostringstream row;
  for (RowId id = 0; id < rel.size(); ++id) {
    row.str("");
    for (int i = 0; i < schema.num_attributes(); ++i) {
      row << rel.attr(id, i) << ',';
    }
    row << rel.join_key(id) << '\n';
    out << row.str();
  }
  out.flush();
  return out.good() ? Status::OK() : Status::IOError("write failed: " + path);
}

}  // namespace progxe
