// CSV import/export for relations, so the library runs on real data as
// well as the synthetic benchmark generator.
//
// Expected layout: a header row naming every column; one designated join
// column (integer keys, or arbitrary strings which are dictionary-encoded
// in order of first appearance); every other column numeric.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/relation.h"

namespace progxe {

struct CsvLoadResult {
  Relation relation{Schema::Anonymous(0)};
  /// Populated when the join column held non-numeric values:
  /// dictionary-encoded key -> original string.
  std::vector<std::string> join_dictionary;
};

/// Loads `path` into a relation, treating `join_column` as the join key and
/// all remaining columns as real-valued skyline attributes.
Result<CsvLoadResult> LoadRelationCsv(const std::string& path,
                                      const std::string& join_column);

/// Writes a relation (header + rows) to `path`.
Status WriteRelationCsv(const Relation& rel, const std::string& path);

namespace internal {
/// Splits one CSV line on commas, honouring RFC-4180 double quotes.
std::vector<std::string> SplitCsvLine(const std::string& line);
}  // namespace internal

}  // namespace progxe
