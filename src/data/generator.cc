#include "data/generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace progxe {

Result<Distribution> ParseDistribution(const std::string& name) {
  if (name == "independent" || name == "indep" || name == "ind") {
    return Distribution::kIndependent;
  }
  if (name == "correlated" || name == "corr") {
    return Distribution::kCorrelated;
  }
  if (name == "anticorrelated" || name == "anti-correlated" ||
      name == "anti") {
    return Distribution::kAntiCorrelated;
  }
  return Status::InvalidArgument("unknown distribution: " + name);
}

const char* DistributionName(Distribution dist) {
  switch (dist) {
    case Distribution::kIndependent:
      return "independent";
    case Distribution::kCorrelated:
      return "correlated";
    case Distribution::kAntiCorrelated:
      return "anticorrelated";
  }
  return "unknown";
}

size_t JoinDomainSize(double join_selectivity) {
  double j = std::round(1.0 / join_selectivity);
  return static_cast<size_t>(std::max(1.0, j));
}

namespace internal {
namespace {

constexpr int kMaxRejectionRounds = 10000;

// "random_peak" of the original randdataset tool: mean of `n` uniforms,
// peaked around 0.5 with variance shrinking in n.
double RandomPeak(Rng* rng, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng->NextDouble();
  return sum / static_cast<double>(n);
}

bool InUnitCube(const double* x, int d) {
  for (int i = 0; i < d; ++i) {
    if (x[i] < 0.0 || x[i] > 1.0) return false;
  }
  return true;
}

// Correlated: pick a diagonal position `v` (peaked around 0.5 with variance
// shrinking in d, like randdataset's random_peak), then jitter each
// dimension with *small* sum-preserving normal offsets so the point stays
// close to the main diagonal. Attributes end up strongly positively
// correlated; skylines are tiny.
void GenerateCorrelated(int d, Rng* rng, double* x) {
  for (int round = 0; round < kMaxRejectionRounds; ++round) {
    double v = RandomPeak(rng, d);
    double l = v <= 0.5 ? v : 1.0 - v;
    for (int i = 0; i < d; ++i) x[i] = v;
    for (int i = 0; i < d; ++i) {
      // Small spread relative to the diagonal variance => strong positive
      // pairwise correlation at every d.
      double h = rng->Gaussian(0.0, l / 8.0);
      x[i] += h;
      x[(i + 1) % d] -= h;
    }
    if (InUnitCube(x, d)) return;
  }
  // Fall back to the diagonal point itself; always valid.
  double v = RandomPeak(rng, d);
  for (int i = 0; i < d; ++i) x[i] = v;
}

// Anti-correlated: pin the point to a hyperplane sum(x) ~ d/2 (tight normal
// around 0.5) and spread attribute mass with *large* uniform sum-preserving
// offsets, so a tuple that is good in one dimension is bad in another.
// Plane variance << spread variance => strong negative pairwise
// correlation; skylines are huge.
void GenerateAntiCorrelated(int d, Rng* rng, double* x) {
  for (int round = 0; round < kMaxRejectionRounds; ++round) {
    double v = rng->Gaussian(0.5, 0.05);
    if (v < 0.0 || v > 1.0) continue;
    double l = v <= 0.5 ? v : 1.0 - v;
    for (int i = 0; i < d; ++i) x[i] = v;
    for (int i = 0; i < d; ++i) {
      double h = rng->Uniform(-l, l);
      x[i] += h;
      x[(i + 1) % d] -= h;
    }
    if (InUnitCube(x, d)) return;
  }
  for (int i = 0; i < d; ++i) x[i] = 0.5;
}

void GenerateIndependent(int d, Rng* rng, double* x) {
  for (int i = 0; i < d; ++i) x[i] = rng->NextDouble();
}

}  // namespace

void GenerateUnitVector(Distribution dist, int d, Rng* rng, double* out) {
  switch (dist) {
    case Distribution::kIndependent:
      GenerateIndependent(d, rng, out);
      return;
    case Distribution::kCorrelated:
      GenerateCorrelated(d, rng, out);
      return;
    case Distribution::kAntiCorrelated:
      GenerateAntiCorrelated(d, rng, out);
      return;
  }
}

}  // namespace internal

Result<Relation> GenerateRelation(const GeneratorOptions& options) {
  if (options.num_attributes < 1) {
    return Status::InvalidArgument("num_attributes must be >= 1");
  }
  if (options.attr_lo >= options.attr_hi) {
    return Status::InvalidArgument("attr_lo must be < attr_hi");
  }
  if (options.join_selectivity <= 0.0 || options.join_selectivity > 1.0) {
    return Status::InvalidArgument("join_selectivity must be in (0, 1]");
  }

  const int d = options.num_attributes;
  const size_t join_domain = JoinDomainSize(options.join_selectivity);
  Rng rng(options.seed);

  Relation rel(Schema::Anonymous(d));
  rel.Reserve(options.cardinality);

  std::vector<double> unit(static_cast<size_t>(d));
  std::vector<double> scaled(static_cast<size_t>(d));
  const double span = options.attr_hi - options.attr_lo;
  for (size_t i = 0; i < options.cardinality; ++i) {
    internal::GenerateUnitVector(options.distribution, d, &rng, unit.data());
    for (int k = 0; k < d; ++k) {
      scaled[static_cast<size_t>(k)] =
          options.attr_lo + span * unit[static_cast<size_t>(k)];
    }
    JoinKey key = static_cast<JoinKey>(rng.NextBelow(join_domain));
    rel.Append(scaled, key);
  }
  return rel;
}

}  // namespace progxe
