// Synthetic data generator reproducing the de-facto standard skyline
// benchmark distributions of Börzsönyi, Kossmann & Stocker (ICDE 2001):
// independent, correlated and anti-correlated attribute vectors.
//
// The paper's experiments (Section VI-A) use exactly these three extreme
// correlations, attribute values in [1, 100], cardinalities 10K-500K and a
// join selectivity sigma in [1e-4, 1e-1]. Join keys here are drawn uniformly
// from a domain of round(1/sigma) distinct values, which yields an expected
// pairwise join selectivity of sigma.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "data/relation.h"

namespace progxe {

/// The three benchmark attribute correlations.
enum class Distribution { kIndependent, kCorrelated, kAntiCorrelated };

/// Parses "independent" / "correlated" / "anticorrelated" (and common
/// abbreviations "indep", "corr", "anti").
Result<Distribution> ParseDistribution(const std::string& name);

/// Short name for a distribution ("independent", ...).
const char* DistributionName(Distribution dist);

/// Parameters for one generated source relation.
struct GeneratorOptions {
  Distribution distribution = Distribution::kIndependent;
  /// Number of tuples N.
  size_t cardinality = 10000;
  /// Number of skyline-relevant attributes d.
  int num_attributes = 4;
  /// Attribute range [lo, hi] (paper: [1, 100]).
  double attr_lo = 1.0;
  double attr_hi = 100.0;
  /// Expected join selectivity sigma: join keys are uniform over
  /// round(1/sigma) distinct values. Must be in (0, 1].
  double join_selectivity = 0.001;
  /// RNG seed; every run with the same options is identical.
  uint64_t seed = 42;
};

/// Generates one source relation per the options.
Result<Relation> GenerateRelation(const GeneratorOptions& options);

/// Number of distinct join-domain values implied by a selectivity.
size_t JoinDomainSize(double join_selectivity);

namespace internal {

/// Fills `out[0..d)` with one unit-cube vector of the given correlation.
/// Exposed for distribution-shape tests.
void GenerateUnitVector(Distribution dist, int d, Rng* rng, double* out);

}  // namespace internal
}  // namespace progxe
