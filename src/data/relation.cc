#include "data/relation.h"

namespace progxe {

Relation Relation::Select(const std::vector<RowId>& rows,
                          std::vector<RowId>* original_ids) const {
  Relation out(schema_);
  out.Reserve(rows.size());
  if (original_ids != nullptr) {
    original_ids->clear();
    original_ids->reserve(rows.size());
  }
  for (RowId id : rows) {
    out.Append(attrs(id), join_key(id));
    if (original_ids != nullptr) original_ids->push_back(id);
  }
  return out;
}

}  // namespace progxe
