// In-memory source relation: row-major value storage plus a join-key column.
//
// Tuples are identified by their dense 0-based row id; all downstream
// machinery (grids, joins, skylines) refers to tuples by id and reads
// attribute vectors through spans into the relation's arena, so no per-tuple
// allocation happens on query paths.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "data/schema.h"

namespace progxe {

/// Integer join key type (dictionary-encoded join domain).
using JoinKey = int64_t;

/// Dense row id within one relation.
using RowId = uint32_t;

/// One joined (R, T) row-id pair, the unit of the batched tuple pipeline.
struct RowIdPair {
  RowId r;
  RowId t;
};

/// A mutable in-memory relation with fixed schema.
class Relation {
 public:
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  /// Appends a tuple; `attrs.size()` must equal the schema width.
  /// Returns the new row id.
  RowId Append(std::span<const double> attrs, JoinKey key) {
    assert(static_cast<int>(attrs.size()) == schema_.num_attributes());
    values_.insert(values_.end(), attrs.begin(), attrs.end());
    join_keys_.push_back(key);
    return static_cast<RowId>(join_keys_.size() - 1);
  }

  /// Number of tuples.
  size_t size() const { return join_keys_.size(); }
  bool empty() const { return join_keys_.empty(); }

  int num_attributes() const { return schema_.num_attributes(); }
  const Schema& schema() const { return schema_; }

  /// Attribute vector of row `id` (valid until the relation is mutated).
  std::span<const double> attrs(RowId id) const {
    const size_t w = static_cast<size_t>(schema_.num_attributes());
    assert(static_cast<size_t>(id) < join_keys_.size());
    return {values_.data() + static_cast<size_t>(id) * w, w};
  }

  /// One attribute value.
  double attr(RowId id, int k) const {
    assert(k >= 0 && k < schema_.num_attributes());
    return values_[static_cast<size_t>(id) *
                       static_cast<size_t>(schema_.num_attributes()) +
                   static_cast<size_t>(k)];
  }

  JoinKey join_key(RowId id) const {
    assert(static_cast<size_t>(id) < join_keys_.size());
    return join_keys_[id];
  }

  const std::vector<JoinKey>& join_keys() const { return join_keys_; }

  void Reserve(size_t n) {
    values_.reserve(n * static_cast<size_t>(schema_.num_attributes()));
    join_keys_.reserve(n);
  }

  /// Returns a new relation containing only the given rows (in order).
  /// Row ids in the result are renumbered; `original_ids` (optional out)
  /// receives the mapping new-id -> old-id.
  Relation Select(const std::vector<RowId>& rows,
                  std::vector<RowId>* original_ids = nullptr) const;

 private:
  Schema schema_;
  std::vector<double> values_;  // row-major, width = num_attributes()
  std::vector<JoinKey> join_keys_;
};

}  // namespace progxe
