#include "data/schema.h"

#include <sstream>

namespace progxe {

Schema Schema::Anonymous(int num_attributes) {
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(num_attributes));
  for (int i = 0; i < num_attributes; ++i) {
    names.push_back("a" + std::to_string(i));
  }
  return Schema(std::move(names), "jk");
}

Result<int> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attribute_names_.size(); ++i) {
    if (attribute_names_[i] == name) return static_cast<int>(i);
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "Schema(";
  for (size_t i = 0; i < attribute_names_.size(); ++i) {
    if (i > 0) os << ", ";
    os << attribute_names_[i];
  }
  os << " | " << join_name_ << ")";
  return os.str();
}

}  // namespace progxe
