// Relational schema for the in-memory sources consumed by SkyMapJoin queries.
//
// A source (Section II of the paper) is a set of d-dimensional tuples plus a
// join attribute. Skyline-relevant attributes are real-valued; the join
// attribute is an integer key (e.g. `country` dictionary-encoded).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace progxe {

/// Describes the attributes of one source relation.
///
/// Attribute positions are stable: `attribute_names()[i]` names the value
/// found at index `i` of every tuple's attribute vector.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema with the given value attributes and a named join key.
  Schema(std::vector<std::string> attribute_names, std::string join_name)
      : attribute_names_(std::move(attribute_names)),
        join_name_(std::move(join_name)) {}

  /// Convenience: d anonymous attributes "a0".."a{d-1}" plus join key "jk".
  static Schema Anonymous(int num_attributes);

  /// Number of real-valued attributes (excludes the join key).
  int num_attributes() const {
    return static_cast<int>(attribute_names_.size());
  }

  const std::vector<std::string>& attribute_names() const {
    return attribute_names_;
  }
  const std::string& join_name() const { return join_name_; }

  /// Index of the named attribute, or NotFound.
  Result<int> IndexOf(const std::string& name) const;

  /// "Schema(a0, a1, ... | jk)"
  std::string ToString() const;

 private:
  std::vector<std::string> attribute_names_;
  std::string join_name_ = "jk";
};

}  // namespace progxe
