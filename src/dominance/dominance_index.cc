#include "dominance/dominance_index.h"

#include <algorithm>
#include <cstddef>

#include "common/compact.h"

namespace progxe {

DominanceIndex::DominanceIndex(int k, int cells_per_dim)
    : k_(k), cells_per_dim_(cells_per_dim) {
  sweep_ptrs_.resize(static_cast<size_t>(k_));
  le_bits_.resize(static_cast<size_t>(k_));
  ge_bits_.resize(static_cast<size_t>(k_));
  for (int d = 0; d < k_; ++d) {
    le_bits_[static_cast<size_t>(d)].resize(
        static_cast<size_t>(cells_per_dim_));
    ge_bits_[static_cast<size_t>(d)].resize(
        static_cast<size_t>(cells_per_dim_));
  }
}

int32_t DominanceIndex::Add(const CellCoord* coords, int32_t payload) {
  const int32_t pos = static_cast<int32_t>(payloads_.size());
  coords_.insert(coords_.end(), coords, coords + k_);
  payloads_.push_back(payload);
  SetBits(static_cast<size_t>(pos), coords, true);
  return pos;
}

void DominanceIndex::Remove(int32_t pos) {
  SetBits(static_cast<size_t>(pos), entry_coords(static_cast<size_t>(pos)),
          false);
  payloads_[static_cast<size_t>(pos)] = -1;
  ++tombstones_;
}

void DominanceIndex::SetBits(size_t i, const CellCoord* coords, bool value) {
  const size_t word = i >> 6;
  const uint64_t bit = uint64_t{1} << (i & 63);
  for (int d = 0; d < k_; ++d) {
    auto& le = le_bits_[static_cast<size_t>(d)];
    auto& ge = ge_bits_[static_cast<size_t>(d)];
    for (CellCoord v = coords[d]; v < cells_per_dim_; ++v) {
      auto& w = le[static_cast<size_t>(v)];
      if (w.size() <= word) {
        if (!value) continue;  // an unset bit needs no storage
        w.resize(word + 1, 0);
      }
      if (value) {
        w[word] |= bit;
      } else {
        w[word] &= ~bit;
      }
    }
    for (CellCoord v = 0; v <= coords[d]; ++v) {
      auto& w = ge[static_cast<size_t>(v)];
      if (w.size() <= word) {
        if (!value) continue;
        w.resize(word + 1, 0);
      }
      if (value) {
        w[word] |= bit;
      } else {
        w[word] &= ~bit;
      }
    }
  }
}

size_t DominanceIndex::GatherSweep(bool ge, const CellCoord* coords,
                                   CellCoord offset) const {
  size_t min_words = SIZE_MAX;
  for (int d = 0; d < k_; ++d) {
    const CellCoord v = coords[d] + offset;
    if (v < 0 || v >= cells_per_dim_) return 0;  // empty candidate set
    const auto& bits = (ge ? ge_bits_ : le_bits_)[static_cast<size_t>(d)]
                                                 [static_cast<size_t>(v)];
    sweep_ptrs_[static_cast<size_t>(d)] = bits.data();
    min_words = std::min(min_words, bits.size());
  }
  return min_words == SIZE_MAX ? 0 : min_words;
}

void DominanceIndex::Compact() {
  const size_t kk = static_cast<size_t>(k_);
  const size_t w = CompactParallel(
      payloads_.size(), [this](size_t i) { return payloads_[i] >= 0; },
      [this, kk](size_t from, size_t to) {
        std::copy(coords_.begin() + static_cast<ptrdiff_t>(from * kk),
                  coords_.begin() + static_cast<ptrdiff_t>((from + 1) * kk),
                  coords_.begin() + static_cast<ptrdiff_t>(to * kk));
        payloads_[to] = payloads_[from];
      });
  coords_.resize(w * kk);
  payloads_.resize(w);
  tombstones_ = 0;
  RebuildBits();
}

void DominanceIndex::RebuildBits() {
  const size_t kk = static_cast<size_t>(k_);
  const size_t words = (payloads_.size() + 63) >> 6;
  for (int d = 0; d < k_; ++d) {
    for (auto& bits : le_bits_[static_cast<size_t>(d)]) {
      bits.assign(words, 0);
    }
    for (auto& bits : ge_bits_[static_cast<size_t>(d)]) {
      bits.assign(words, 0);
    }
  }
  for (size_t i = 0; i < payloads_.size(); ++i) {
    SetBits(i, coords_.data() + i * kk, true);
  }
}

void DominanceIndex::NoteFrontier(const CellCoord* coords) {
  const size_t kk = static_cast<size_t>(k_);
  // Redundant if an existing frontier entry is <= coords everywhere.
  for (size_t f = 0; f + kk <= frontier_.size(); f += kk) {
    if (CoordsLeq(frontier_.data() + f, coords, k_)) return;
  }
  // Remove frontier entries that the new coordinates cover.
  const size_t w = CompactParallel(
      frontier_.size() / kk,
      [this, coords, kk](size_t f) {
        return !CoordsLeq(coords, frontier_.data() + f * kk, k_);
      },
      [this, kk](size_t from, size_t to) {
        std::copy(frontier_.begin() + static_cast<ptrdiff_t>(from * kk),
                  frontier_.begin() + static_cast<ptrdiff_t>((from + 1) * kk),
                  frontier_.begin() + static_cast<ptrdiff_t>(to * kk));
      });
  frontier_.resize(w * kk);
  frontier_.insert(frontier_.end(), coords, coords + k_);
  frontier_log_.insert(frontier_log_.end(), coords, coords + k_);
  ++frontier_epoch_;
}

bool DominanceIndex::FrontierStrictlyDominates(const CellCoord* coords) const {
  const size_t kk = static_cast<size_t>(k_);
  for (size_t f = 0; f + kk <= frontier_.size(); f += kk) {
    if (CoordsStrictlyBelow(frontier_.data() + f, coords, k_)) return true;
  }
  return false;
}

bool DominanceIndex::FrontierDominatesSince(const CellCoord* coords,
                                            uint64_t since_epoch) const {
  const size_t kk = static_cast<size_t>(k_);
  for (size_t f = static_cast<size_t>(since_epoch) * kk;
       f + kk <= frontier_log_.size(); f += kk) {
    if (CoordsStrictlyBelow(frontier_log_.data() + f, coords, k_)) {
      return true;
    }
  }
  return false;
}

}  // namespace progxe
