// DominanceIndex: a bitmap-indexed set of grid-cell coordinate vectors
// supporting the dominance-cone sweeps both Pareto hot paths in this repo
// need. It is the machinery that made OutputTable inserts ~6x faster in the
// batched-pipeline PR, extracted so the engine's output grid and the
// sharded merge sink share one implementation and cannot drift:
//
//   * OutputTable (progxe/output_table.h) indexes its populated output
//     cells here and runs the comparable-slice, eviction and eager-kill
//     scans through SweepLe/SweepGe.
//   * ShardedStream (shard/sharded_stream.cc) indexes the accepted global
//     skyline candidates by canonical cell and filters dominated arrivals /
//     disproved held candidates through the same sweeps, instead of a flat
//     O(|accepted|) scan per arrival.
//
// Layout: entries are a structure of arrays — flat coordinates (k per
// entry) plus a parallel int32 payload (the caller's back-reference; -1
// marks a tombstone). For each dimension d and coordinate v, bit i of
// le_bits_[d][v] is set iff entry i is live with coord[d] <= v (ge_bits_
// for >=), so a cone sweep ANDs k bitmap rows word by word and touches
// only real candidates: cost O(live/64) words plus the true cone members.
// Removals tombstone; once tombstones dominate, MaybeCompact squeezes the
// arrays and tells the owner every entry's new position.
//
// Sweeps rely only on the *monotonicity* of the caller's point-to-cell
// quantization (a <= b componentwise implies coord(a) <= coord(b)), so the
// cone is a sound superset filter even when points clamp at the grid edge;
// exact point comparisons stay with the caller.
//
// The index also tracks the Pareto-minimal frontier of coordinates passed
// to NoteFrontier, with the append-only epoch log consumed by the region
// discard path (see FrontierDominatesSince). Frontier entries survive the
// removal of their entry: a removed entry was either strictly dominated (its
// dominator covers at least as much) or, for OutputTable, killed *because*
// of a strictly lower cell — either way the log never loses dominators.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/grid_geometry.h"

namespace progxe {

class DominanceIndex {
 public:
  DominanceIndex() = default;

  /// An index over k-dimensional cell coordinates in [0, cells_per_dim).
  DominanceIndex(int k, int cells_per_dim);

  int dims() const { return k_; }
  int cells_per_dim() const { return cells_per_dim_; }

  /// Entry positions handed out so far, tombstones included.
  size_t size() const { return payloads_.size(); }
  /// Live (non-tombstoned) entries.
  size_t live_size() const { return payloads_.size() - tombstones_; }
  size_t tombstones() const { return tombstones_; }

  /// The caller's payload of entry `pos`; -1 iff tombstoned.
  int32_t payload(size_t pos) const { return payloads_[pos]; }
  /// Coordinates of entry `pos` (k values; valid for tombstones too).
  const CellCoord* entry_coords(size_t pos) const {
    return coords_.data() + pos * static_cast<size_t>(k_);
  }

  /// Adds a live entry; returns its position. Positions are stable until
  /// MaybeCompact actually compacts (which remaps them via its callback).
  int32_t Add(const CellCoord* coords, int32_t payload);

  /// Tombstones entry `pos`: its bits clear and sweeps skip it. The
  /// position stays allocated until the next compaction.
  void Remove(int32_t pos);

  /// Enumerates live entries whose coordinates are <= `coords` in every
  /// dimension (the dominator cone), in ascending position order.
  /// `fn(pos)` returns false to stop early. Entries removed by `fn` during
  /// the sweep are skipped from that point on.
  template <typename Fn>
  void SweepLe(const CellCoord* coords, Fn&& fn) const {
    SweepWords(GatherSweep(/*ge=*/false, coords, 0), fn);
  }

  /// Enumerates live entries with coordinates >= `coords[d] + offset` in
  /// every dimension: offset 0 is the dominated cone, offset 1 the strictly
  /// -above cone (OutputTable's eager kill).
  template <typename Fn>
  void SweepGe(const CellCoord* coords, CellCoord offset, Fn&& fn) const {
    SweepWords(GatherSweep(/*ge=*/true, coords, offset), fn);
  }

  /// Compacts once tombstones outnumber live entries (and the index is big
  /// enough to care), rebuilding the bitmaps and reporting every surviving
  /// entry's new position as `remap(payload, new_pos)`. Must not run inside
  /// a sweep.
  template <typename Fn>
  void MaybeCompact(Fn&& remap) {
    if (tombstones_ * 2 <= payloads_.size() || payloads_.size() < 64) return;
    Compact();
    for (size_t i = 0; i < payloads_.size(); ++i) {
      remap(payloads_[i], static_cast<int32_t>(i));
    }
  }

  // --- Pareto-minimal frontier + append-only epoch log ---------------------

  /// Folds `coords` into the frontier: dropped if an existing entry is <=
  /// everywhere, otherwise added (evicting entries it covers) and appended
  /// to the epoch log.
  void NoteFrontier(const CellCoord* coords);

  /// True iff some frontier entry is strictly below `coords` in every
  /// dimension. O(|frontier|) scan; see AnyLiveStrictlyBelow for the O(1)
  /// bitmap form callers should prefer when its precondition holds.
  bool FrontierStrictlyDominates(const CellCoord* coords) const;

  /// True iff some *live entry* is strictly below `coords` in every
  /// dimension — one bitmap AND with early exit. For an owner that (a)
  /// notes every added entry to the frontier and (b) removes an entry only
  /// when a strictly-lower live entry exists at removal time (OutputTable's
  /// eager kill / frontier kill), this is exactly FrontierStrictlyDominates:
  /// every removed entry's killer chain descends strictly in all
  /// coordinates and terminates at a live entry. Owners that remove on
  /// *point*-level dominance (the sharded merge sink) must not substitute
  /// one for the other.
  bool AnyLiveStrictlyBelow(const CellCoord* coords) const {
    const size_t words = GatherSweep(/*ge=*/false, coords, -1);
    for (size_t w = 0; w < words; ++w) {
      uint64_t m = sweep_ptrs_[0][w];
      for (int d = 1; d < k_; ++d) {
        m &= sweep_ptrs_[static_cast<size_t>(d)][w];
      }
      if (m != 0) return true;  // any set bit is a live entry (Remove clears)
    }
    return false;
  }

  /// True iff a frontier entry logged at epoch >= `since_epoch` strictly
  /// dominates `coords`; with the epoch of the last surviving check this is
  /// equivalent to FrontierStrictlyDominates (the log never loses
  /// dominators).
  bool FrontierDominatesSince(const CellCoord* coords,
                              uint64_t since_epoch) const;

  /// Number of frontier insertions so far (== log length).
  uint64_t frontier_epoch() const { return frontier_epoch_; }

  /// Current frontier entries (flat, k per entry; diagnostics/tests).
  const std::vector<CellCoord>& frontier() const { return frontier_; }

  // --- Coordinate predicates shared with callers ---------------------------

  /// a <= b in every dimension.
  static bool CoordsLeq(const CellCoord* a, const CellCoord* b, int k) {
    for (int i = 0; i < k; ++i) {
      if (a[i] > b[i]) return false;
    }
    return true;
  }

  /// a < b in every dimension.
  static bool CoordsStrictlyBelow(const CellCoord* a, const CellCoord* b,
                                  int k) {
    for (int i = 0; i < k; ++i) {
      if (a[i] >= b[i]) return false;
    }
    return true;
  }

 private:
  /// Sets/clears entry i's bit across the cumulative rows of every
  /// dimension.
  void SetBits(size_t i, const CellCoord* coords, bool value);

  /// Fills sweep_ptrs_ with the per-dimension bitmap rows at coordinate
  /// `coords[d] + offset` (ge_bits_ when `ge`, le_bits_ otherwise) and
  /// returns the common sweepable word count — 0 when any dimension's
  /// candidate set is empty or the offset leaves the grid.
  size_t GatherSweep(bool ge, const CellCoord* coords, CellCoord offset) const;

  /// Enumerates ascending live entry positions in the AND of the gathered
  /// rows.
  template <typename Fn>
  void SweepWords(size_t min_words, Fn&& fn) const {
    for (size_t w = 0; w < min_words; ++w) {
      uint64_t m = sweep_ptrs_[0][w];
      for (int d = 1; d < k_; ++d) m &= sweep_ptrs_[static_cast<size_t>(d)][w];
      while (m != 0) {
        const size_t p =
            (w << 6) + static_cast<size_t>(__builtin_ctzll(m));
        m &= m - 1;
        // Tombstoned after this word was captured (an fn-driven removal):
        // the cleared bit is stale within `m`.
        if (payloads_[p] < 0) continue;
        if (!fn(p)) return;
      }
    }
  }

  void Compact();
  void RebuildBits();

  int k_ = 0;
  int cells_per_dim_ = 0;

  std::vector<CellCoord> coords_;  // flat, k_ per entry
  std::vector<int32_t> payloads_;  // parallel; -1 = tombstone
  size_t tombstones_ = 0;

  // Cumulative coordinate bitmaps: [dim][coord][word]; rows grow lazily as
  // entries are added.
  std::vector<std::vector<std::vector<uint64_t>>> le_bits_;
  std::vector<std::vector<std::vector<uint64_t>>> ge_bits_;

  // Pareto-minimal frontier (flat, k_ per entry) + append-only log.
  std::vector<CellCoord> frontier_;
  std::vector<CellCoord> frontier_log_;
  uint64_t frontier_epoch_ = 0;

  // Reusable per-sweep row pointers (sweeps are logically const).
  mutable std::vector<const uint64_t*> sweep_ptrs_;
};

}  // namespace progxe
