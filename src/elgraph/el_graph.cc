#include "elgraph/el_graph.h"

#include <cassert>

namespace progxe {

ElGraph::ElGraph(const std::vector<Region>& regions, size_t max_regions) {
  indegree_.assign(regions.size(), 0);
  removed_.assign(regions.size(), 0);

  size_t active = 0;
  for (const Region& region : regions) {
    if (region.Active()) {
      ++active;
    } else {
      removed_[static_cast<size_t>(region.id)] = 1;
    }
  }
  if (active > max_regions) {
    disabled_ = true;
    return;
  }

  for (const Region& u : regions) {
    if (!u.Active()) continue;
    for (const Region& v : regions) {
      if (!v.Active() || u.id == v.id) continue;
      if (CanEliminate(u, v)) {
        ++indegree_[static_cast<size_t>(v.id)];
      }
    }
  }
}

std::vector<int32_t> ElGraph::InitialRoots(
    const std::vector<Region>& regions) const {
  std::vector<int32_t> roots;
  for (const Region& region : regions) {
    if (!region.Active()) continue;
    if (disabled_ || indegree_[static_cast<size_t>(region.id)] == 0) {
      roots.push_back(region.id);
    }
  }
  return roots;
}

std::vector<int32_t> ElGraph::OnRegionRemoved(
    int32_t removed_id, const std::vector<Region>& regions) {
  std::vector<int32_t> new_roots;
  assert(static_cast<size_t>(removed_id) < removed_.size());
  if (removed_[static_cast<size_t>(removed_id)]) return new_roots;
  removed_[static_cast<size_t>(removed_id)] = 1;
  if (disabled_) return new_roots;

  const Region& u = regions[static_cast<size_t>(removed_id)];
  for (const Region& v : regions) {
    if (v.id == removed_id || removed_[static_cast<size_t>(v.id)]) continue;
    if (CanEliminate(u, v)) {
      int64_t& deg = indegree_[static_cast<size_t>(v.id)];
      assert(deg > 0);
      if (--deg == 0) new_roots.push_back(v.id);
    }
  }
  return new_roots;
}

size_t ElGraph::NonRootCount(const std::vector<Region>& regions) const {
  if (disabled_) return 0;
  size_t count = 0;
  for (const Region& region : regions) {
    if (removed_[static_cast<size_t>(region.id)]) continue;
    if (indegree_[static_cast<size_t>(region.id)] > 0) ++count;
  }
  return count;
}

}  // namespace progxe
