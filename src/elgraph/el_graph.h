// Elimination graph (EL-Graph, Section IV-B).
//
// Vertices are the active output regions; a directed edge u -> v exists iff
// some output partition of u, once populated, could partially or completely
// dominate v (cell-level predicate CanEliminate in outputspace/region.h).
// Roots — regions no other region can eliminate — are the candidates
// ProgOrder considers for tuple-level processing.
//
// Edges are not materialized: for the dense-overlap workloads the paper
// targets (anti-correlated data) the edge set is Theta(m^2). Instead the
// graph keeps per-vertex in-degrees and recomputes the O(d) edge predicate
// during removal, which preserves Algorithm 1's asymptotics (O(n^2) worst
// case, Section IV-D) without the memory blow-up.
//
// The paper's model assumes elimination is irreflexive between distinct
// regions; mutual partial elimination (cycles) is possible in practice, so
// ExtractCycleFallback lets the executor break a rootless deadlock.
#pragma once

#include <cstdint>
#include <vector>

#include "outputspace/region.h"

namespace progxe {

class ElGraph {
 public:
  /// Builds in-degrees over all regions with Active() == true.
  /// If the active count exceeds `max_regions`, the graph disables itself
  /// (every region reports as a root) to bound setup cost; disabled() tells
  /// callers ordering quality is degraded.
  ElGraph(const std::vector<Region>& regions, size_t max_regions = 8000);

  bool disabled() const { return disabled_; }

  /// Current roots: active regions with in-degree zero (all active regions
  /// when disabled).
  std::vector<int32_t> InitialRoots(const std::vector<Region>& regions) const;

  /// Removes `removed_id` from the graph (it was processed or discarded) and
  /// returns the ids of regions that *newly* became roots.
  std::vector<int32_t> OnRegionRemoved(int32_t removed_id,
                                       const std::vector<Region>& regions);

  /// Number of active non-root regions left (diagnostic).
  size_t NonRootCount(const std::vector<Region>& regions) const;

  int64_t indegree(int32_t id) const {
    return indegree_[static_cast<size_t>(id)];
  }

 private:
  bool disabled_ = false;
  std::vector<int64_t> indegree_;
  std::vector<uint8_t> removed_;
};

}  // namespace progxe
