#include "grid/bloom_filter.h"

#include <bit>
#include <cassert>
#include <cmath>

namespace progxe {

BloomFilter::BloomFilter(size_t bits, int num_hashes)
    : words_((bits + 63) / 64, 0), num_hashes_(num_hashes) {
  assert(num_hashes >= 1);
  if (words_.empty()) words_.resize(1, 0);
}

uint64_t BloomFilter::Mix(uint64_t key, uint64_t salt) {
  // splitmix64-style finalizer with a salt per probe.
  uint64_t z = key + salt * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void BloomFilter::Add(uint64_t key) {
  const size_t bits = words_.size() * 64;
  for (int h = 0; h < num_hashes_; ++h) {
    const size_t bit = static_cast<size_t>(
        Mix(key, static_cast<uint64_t>(h) + 1) % bits);
    words_[bit / 64] |= (1ULL << (bit % 64));
  }
}

bool BloomFilter::MightContain(uint64_t key) const {
  const size_t bits = words_.size() * 64;
  for (int h = 0; h < num_hashes_; ++h) {
    const size_t bit = static_cast<size_t>(
        Mix(key, static_cast<uint64_t>(h) + 1) % bits);
    if ((words_[bit / 64] & (1ULL << (bit % 64))) == 0) return false;
  }
  return true;
}

bool BloomFilter::MightIntersect(const BloomFilter& other) const {
  assert(words_.size() == other.words_.size() &&
         num_hashes_ == other.num_hashes_);
  // If some key k is in both filters, all of its probe bits are set in both
  // filters, so the AND of the two bit arrays is non-zero. A zero AND is
  // therefore a proof of disjointness.
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

size_t BloomFilter::popcount() const {
  size_t total = 0;
  for (uint64_t w : words_) total += static_cast<size_t>(std::popcount(w));
  return total;
}

double BloomFilter::EstimatedFpRate(size_t n) const {
  const double m = static_cast<double>(bit_count());
  const double k = static_cast<double>(num_hashes_);
  const double exponent = -k * static_cast<double>(n) / m;
  return std::pow(1.0 - std::exp(exponent), k);
}

}  // namespace progxe
