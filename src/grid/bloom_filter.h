// Bloom filter over join-key values (Section III-A: partition signatures
// "efficiently maintained by either Bloom Filter or a bit vector").
//
// A Bloom signature can only prove that two partitions do NOT share a join
// value (no false negatives); a positive intersection test is "maybe". The
// engine therefore uses Bloom signatures to skip partition pairs, but only
// exact signatures to establish the guaranteed-populated property that
// region- and partition-level pruning require.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace progxe {

class BloomFilter {
 public:
  /// `bits` is rounded up to a multiple of 64; `num_hashes` probes per key.
  explicit BloomFilter(size_t bits = 1024, int num_hashes = 4);

  void Add(uint64_t key);
  bool MightContain(uint64_t key) const;

  /// True iff this and `other` might share at least one added key.
  /// Sound skip test: returns false only when provably disjoint, under the
  /// (checked) precondition that both filters have identical geometry.
  bool MightIntersect(const BloomFilter& other) const;

  size_t bit_count() const { return words_.size() * 64; }
  int num_hashes() const { return num_hashes_; }
  size_t popcount() const;

  /// Estimated false-positive rate after `n` insertions.
  double EstimatedFpRate(size_t n) const;

 private:
  static uint64_t Mix(uint64_t key, uint64_t salt);

  std::vector<uint64_t> words_;
  int num_hashes_;
};

}  // namespace progxe
