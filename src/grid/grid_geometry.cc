#include "grid/grid_geometry.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace progxe {

namespace {
constexpr double kMinWidth = 1e-9;
}

GridGeometry::GridGeometry(std::vector<Interval> bounds, int cells_per_dim)
    : bounds_(std::move(bounds)), cells_per_dim_(cells_per_dim) {
  assert(cells_per_dim_ >= 1);
  inv_width_.reserve(bounds_.size());
  total_cells_ = 1;
  for (auto& b : bounds_) {
    if (b.width() < kMinWidth) {
      b = Interval(b.lo, b.lo + kMinWidth);
    }
    inv_width_.push_back(static_cast<double>(cells_per_dim_) / b.width());
    total_cells_ *= cells_per_dim_;
  }
  stride_.resize(bounds_.size());
  CellIndex s = 1;
  for (size_t d = bounds_.size(); d-- > 0;) {
    stride_[d] = s;
    s *= cells_per_dim_;
  }
}

int AutoCellsPerDim(int k, double budget, int lo, int hi) {
  const double per_dim = std::pow(budget, 1.0 / static_cast<double>(k));
  return std::clamp(static_cast<int>(per_dim), lo, hi);
}

CellCoord GridGeometry::CoordOf(int dim, double value) const {
  const Interval& b = bounds_[static_cast<size_t>(dim)];
  double rel = (value - b.lo) * inv_width_[static_cast<size_t>(dim)];
  CellCoord c = static_cast<CellCoord>(std::floor(rel));
  // Clamp: points at (or numerically beyond) the top land in the last cell.
  return std::clamp<CellCoord>(c, 0, cells_per_dim_ - 1);
}

void GridGeometry::CoordsOf(const double* point, CellCoord* coords) const {
  for (int i = 0; i < dimensions(); ++i) coords[i] = CoordOf(i, point[i]);
}

CellIndex GridGeometry::IndexOf(const CellCoord* coords) const {
  CellIndex idx = 0;
  for (int i = 0; i < dimensions(); ++i) {
    assert(coords[i] >= 0 && coords[i] < cells_per_dim_);
    idx = idx * cells_per_dim_ + coords[i];
  }
  return idx;
}

void GridGeometry::CoordsOfIndex(CellIndex index, CellCoord* coords) const {
  for (int i = dimensions() - 1; i >= 0; --i) {
    coords[i] = static_cast<CellCoord>(index % cells_per_dim_);
    index /= cells_per_dim_;
  }
}

double GridGeometry::CellLower(int dim, CellCoord c) const {
  const Interval& b = bounds_[static_cast<size_t>(dim)];
  return b.lo + b.width() * static_cast<double>(c) /
                    static_cast<double>(cells_per_dim_);
}

double GridGeometry::CellUpper(int dim, CellCoord c) const {
  return CellLower(dim, c + 1);
}

void GridGeometry::CoordRange(int dim, const Interval& iv, CellCoord* lo_out,
                              CellCoord* hi_out) const {
  *lo_out = CoordOf(dim, iv.lo);
  *hi_out = CoordOf(dim, iv.hi);
}

std::string GridGeometry::ToString() const {
  std::ostringstream os;
  os << "Grid(" << dimensions() << "d x " << cells_per_dim_ << " cells:";
  for (const auto& b : bounds_) os << " " << b.ToString();
  os << ")";
  return os.str();
}

}  // namespace progxe
