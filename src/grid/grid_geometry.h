// Uniform multi-dimensional grid geometry, shared by the input-space and
// output-space grids.
//
// Cells are half-open boxes [lo_i, hi_i) per dimension, except the last cell
// of each dimension which is closed on top so the whole domain is covered.
// Half-openness matters for soundness: a tuple in a cell is strictly below
// the cell's upper bound in every dimension (unless it lies in a top cell),
// which is what lets cell-coordinate comparisons imply strict Pareto
// dominance (see outputspace/README notes in DESIGN.md Section 2).
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "mapping/interval.h"

namespace progxe {

/// Cell coordinate along one dimension.
using CellCoord = int32_t;

/// Dense linear index of a cell.
using CellIndex = int64_t;

class GridGeometry {
 public:
  GridGeometry() = default;

  /// A grid over the box `bounds` (one interval per dimension) with
  /// `cells_per_dim` cells along every dimension. Zero-width dimensions are
  /// widened by a tiny epsilon so every point falls into a valid cell.
  GridGeometry(std::vector<Interval> bounds, int cells_per_dim);

  int dimensions() const { return static_cast<int>(bounds_.size()); }
  int cells_per_dim() const { return cells_per_dim_; }

  /// Total number of cells (cells_per_dim ^ dimensions).
  CellIndex total_cells() const { return total_cells_; }

  const Interval& domain(int dim) const {
    return bounds_[static_cast<size_t>(dim)];
  }

  /// Coordinate of `value` along `dim`, clamped into [0, cells_per_dim).
  CellCoord CoordOf(int dim, double value) const;

  /// Fills `coords[0..dims)` for a point.
  void CoordsOf(const double* point, CellCoord* coords) const;

  /// Linearizes coordinates (row-major, dimension 0 slowest).
  CellIndex IndexOf(const CellCoord* coords) const;

  /// Inverse of IndexOf.
  void CoordsOfIndex(CellIndex index, CellCoord* coords) const;

  /// Lower bound of a cell along `dim`.
  double CellLower(int dim, CellCoord c) const;

  /// Upper bound of a cell along `dim`.
  double CellUpper(int dim, CellCoord c) const;

  /// The coordinate range [lo_out, hi_out] (inclusive) of cells that a real
  /// interval overlaps along `dim`, clamped to the grid.
  void CoordRange(int dim, const Interval& iv, CellCoord* lo_out,
                  CellCoord* hi_out) const;

  /// Iterates every cell index in the inclusive coordinate box
  /// [lo, hi] (per dimension), invoking fn(CellIndex) in row-major order.
  /// The linear index is maintained incrementally by the per-dimension
  /// strides instead of re-linearizing every cell (this sits under every
  /// coverage box walk, so the per-cell IndexOf was a top-two profile
  /// entry).
  template <typename Fn>
  void ForEachCellInBox(const CellCoord* lo, const CellCoord* hi,
                        Fn&& fn) const {
    const int dims = dimensions();
    assert(dims > 0);
    std::vector<CellCoord> cur(static_cast<size_t>(dims));
    for (int i = 0; i < dims; ++i) {
      assert(lo[i] <= hi[i]);
      cur[static_cast<size_t>(i)] = lo[i];
    }
    CellIndex idx = IndexOf(lo);
    for (;;) {
      fn(idx);
      int dim = dims - 1;
      while (dim >= 0) {
        const CellIndex st = stride_[static_cast<size_t>(dim)];
        if (++cur[static_cast<size_t>(dim)] <= hi[dim]) {
          idx += st;
          break;
        }
        idx -= st * (hi[dim] - lo[dim]);
        cur[static_cast<size_t>(dim)] = lo[dim];
        --dim;
      }
      if (dim < 0) break;
    }
  }

  /// Volume (cell count) of an inclusive coordinate box.
  int64_t BoxVolume(const CellCoord* lo, const CellCoord* hi) const {
    int64_t v = 1;
    for (int i = 0; i < dimensions(); ++i) {
      v *= static_cast<int64_t>(hi[i] - lo[i] + 1);
    }
    return v;
  }

  std::string ToString() const;

 private:
  std::vector<Interval> bounds_;
  std::vector<double> inv_width_;  // cells_per_dim / domain width, per dim
  // Row-major linearization factor per dimension (dimension 0 slowest):
  // stride_[d] = cells_per_dim ^ (dims - 1 - d).
  std::vector<CellIndex> stride_;
  int cells_per_dim_ = 0;
  CellIndex total_cells_ = 0;
};

/// Picks the largest per-dimension cell count whose k-dimensional total
/// stays under `budget`, clamped to [lo, hi] — the auto-sizing rule shared
/// by the engine's grids (progxe/prepare.cc) and the sharded merge sink's
/// canonical-cell index, so the two cannot drift apart.
int AutoCellsPerDim(int k, double budget, int lo, int hi);

}  // namespace progxe
