#include "grid/input_grid.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace progxe {

InputGrid::InputGrid(const Relation& rel, const ContributionTable& contribs,
                     const InputGridOptions& options) {
  const int k = contribs.dimensions();
  const size_t n = rel.size();

  // Global contribution bounds.
  global_bounds_.assign(static_cast<size_t>(k),
                        Interval(std::numeric_limits<double>::max(),
                                 std::numeric_limits<double>::max()));
  if (n > 0) {
    const double* first = contribs.vector(0);
    for (int j = 0; j < k; ++j) {
      global_bounds_[static_cast<size_t>(j)] = Interval::Point(first[j]);
    }
    for (size_t i = 1; i < n; ++i) {
      const double* v = contribs.vector(static_cast<RowId>(i));
      for (int j = 0; j < k; ++j) {
        auto& b = global_bounds_[static_cast<size_t>(j)];
        b = Interval(std::min(b.lo, v[j]), std::max(b.hi, v[j]));
      }
    }
  } else {
    global_bounds_.assign(static_cast<size_t>(k), Interval(0.0, 0.0));
  }

  geometry_ = GridGeometry(global_bounds_, options.cells_per_dim);

  // Bucket rows by cell.
  std::unordered_map<CellIndex, std::vector<RowId>> cells;
  std::vector<CellCoord> coords(static_cast<size_t>(k));
  for (size_t i = 0; i < n; ++i) {
    geometry_.CoordsOf(contribs.vector(static_cast<RowId>(i)), coords.data());
    cells[geometry_.IndexOf(coords.data())].push_back(static_cast<RowId>(i));
  }

  // Materialize partitions in deterministic (cell index) order.
  std::vector<CellIndex> order;
  order.reserve(cells.size());
  for (const auto& [idx, rows] : cells) {
    (void)rows;
    order.push_back(idx);
  }
  std::sort(order.begin(), order.end());

  partitions_.reserve(order.size());
  for (CellIndex idx : order) {
    InputPartition part;
    part.rows = std::move(cells[idx]);
    part.coords.resize(static_cast<size_t>(k));
    geometry_.CoordsOfIndex(idx, part.coords.data());

    // Tight observed bounds.
    part.bounds.assign(static_cast<size_t>(k), Interval());
    const double* v0 = contribs.vector(part.rows.front());
    for (int j = 0; j < k; ++j) {
      part.bounds[static_cast<size_t>(j)] = Interval::Point(v0[j]);
    }
    for (RowId id : part.rows) {
      const double* v = contribs.vector(id);
      for (int j = 0; j < k; ++j) {
        auto& b = part.bounds[static_cast<size_t>(j)];
        b = Interval(std::min(b.lo, v[j]), std::max(b.hi, v[j]));
      }
    }

    part.key_index = KeyIndex(rel, part.rows);
    part.signature =
        Signature::Build(rel, part.rows, options.signature_mode,
                         options.bloom_bits, options.bloom_hashes);
    partitions_.push_back(std::move(part));
  }
}

}  // namespace progxe
