// Uniform-grid input partitioning of one source relation (Section III of
// the paper: "we assume the input data sets are partitioned into a
// multi-dimensional grid structure").
//
// Partitioning is done in *contribution space*: each tuple's canonical
// k-dimensional contribution vector (see mapping/canonical.h) determines its
// cell. Partition bounds are the tight (observed) min/max contribution per
// dimension, which subsumes "apply the mapping functions to the partition
// bounds" (Example 1) and gives strictly tighter output regions than raw
// cell bounds.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "grid/partitioning.h"
#include "mapping/canonical.h"
#include "skyline/group_skyline.h"

namespace progxe {

/// Options controlling uniform-grid input partitioning.
struct InputGridOptions {
  int cells_per_dim = 3;
  SignatureMode signature_mode = SignatureMode::kExact;
  size_t bloom_bits = 2048;
  int bloom_hashes = 4;
};

/// The gridded view of one source.
class InputGrid : public InputPartitioning {
 public:
  /// Builds the grid for `rel`. `contribs` must have been computed with the
  /// same mapper/side.
  InputGrid(const Relation& rel, const ContributionTable& contribs,
            const InputGridOptions& options);

  /// Non-empty partitions only.
  const std::vector<InputPartition>& partitions() const override {
    return partitions_;
  }

  const GridGeometry& geometry() const { return geometry_; }

  /// Hull of all partition bounds: the source's contribution bounding box.
  const std::vector<Interval>& global_bounds() const { return global_bounds_; }

 private:
  GridGeometry geometry_;
  std::vector<InputPartition> partitions_;
  std::vector<Interval> global_bounds_;
};

}  // namespace progxe
