#include "grid/kd_partitioner.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace progxe {

KdPartitioner::KdPartitioner(const Relation& rel,
                             const ContributionTable& contribs,
                             const KdPartitionerOptions& options)
    : options_(options) {
  if (rel.empty()) return;
  size_t target = options_.max_rows_per_partition;
  if (target == 0) {
    target = std::max<size_t>(
        1, rel.size() / std::max<size_t>(1, options_.max_partitions));
  }
  std::vector<RowId> rows(rel.size());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<RowId>(i);
  Split(rel, contribs, &rows, target,
        std::max<size_t>(1, options_.max_partitions), /*depth=*/0);
}

void KdPartitioner::Split(const Relation& rel,
                          const ContributionTable& contribs,
                          std::vector<RowId>* rows, size_t target_rows,
                          size_t leaf_budget, int depth) {
  // Leaf conditions: small enough, out of leaf budget, or a depth backstop
  // against degenerate (all-equal) splits. The budget halves down each
  // branch, capping total leaves at max_partitions exactly.
  constexpr int kMaxDepth = 40;
  if (rows->size() <= target_rows || leaf_budget <= 1 || depth >= kMaxDepth) {
    EmitLeaf(rel, contribs, std::move(*rows));
    return;
  }

  // Split the dimension with the widest observed contribution range.
  const int k = contribs.dimensions();
  int best_dim = 0;
  double best_spread = -1.0;
  for (int j = 0; j < k; ++j) {
    double lo = std::numeric_limits<double>::max();
    double hi = std::numeric_limits<double>::lowest();
    for (RowId id : *rows) {
      const double v = contribs.vector(id)[j];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_dim = j;
    }
  }
  if (best_spread <= 0.0) {
    // All contribution vectors identical; splitting cannot help.
    EmitLeaf(rel, contribs, std::move(*rows));
    return;
  }

  const size_t mid = rows->size() / 2;
  std::nth_element(rows->begin(), rows->begin() + static_cast<ptrdiff_t>(mid),
                   rows->end(), [&](RowId a, RowId b) {
                     const double va = contribs.vector(a)[best_dim];
                     const double vb = contribs.vector(b)[best_dim];
                     if (va != vb) return va < vb;
                     return a < b;
                   });
  std::vector<RowId> left(rows->begin(),
                          rows->begin() + static_cast<ptrdiff_t>(mid));
  std::vector<RowId> right(rows->begin() + static_cast<ptrdiff_t>(mid),
                           rows->end());
  rows->clear();
  rows->shrink_to_fit();
  const size_t left_budget = leaf_budget / 2;
  Split(rel, contribs, &left, target_rows, left_budget, depth + 1);
  Split(rel, contribs, &right, target_rows, leaf_budget - left_budget,
        depth + 1);
}

void KdPartitioner::EmitLeaf(const Relation& rel,
                             const ContributionTable& contribs,
                             std::vector<RowId> rows) {
  assert(!rows.empty());
  InputPartition part;
  const int k = contribs.dimensions();
  part.bounds.assign(static_cast<size_t>(k), Interval());
  const double* v0 = contribs.vector(rows.front());
  for (int j = 0; j < k; ++j) {
    part.bounds[static_cast<size_t>(j)] = Interval::Point(v0[j]);
  }
  for (RowId id : rows) {
    const double* v = contribs.vector(id);
    for (int j = 0; j < k; ++j) {
      auto& b = part.bounds[static_cast<size_t>(j)];
      b = Interval(std::min(b.lo, v[j]), std::max(b.hi, v[j]));
    }
  }
  part.key_index = KeyIndex(rel, rows);
  part.signature = Signature::Build(rel, rows, options_.signature_mode,
                                    options_.bloom_bits, options_.bloom_hashes);
  part.coords.assign(static_cast<size_t>(k), 0);  // not grid-aligned
  part.rows = std::move(rows);
  partitions_.push_back(std::move(part));
}

}  // namespace progxe
