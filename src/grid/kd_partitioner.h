// Adaptive kd-style partitioner over contribution space.
//
// Unlike the uniform grid, which wastes cells on empty space and produces
// wildly unbalanced partitions on skewed (correlated / anti-correlated)
// data, this partitioner recursively splits the rows at the *median* of the
// dimension with the widest contribution spread. Partitions are balanced in
// cardinality and tight in volume, which makes region bounds tighter and
// the ProgOrder cost model's n_a * n_b terms uniform.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/partitioning.h"
#include "skyline/group_skyline.h"

namespace progxe {

struct KdPartitionerOptions {
  /// Stop splitting below this many rows; 0 = derive from max_partitions.
  size_t max_rows_per_partition = 0;
  /// Upper bound on the number of leaves produced.
  size_t max_partitions = 128;
  SignatureMode signature_mode = SignatureMode::kExact;
  size_t bloom_bits = 2048;
  int bloom_hashes = 4;
};

class KdPartitioner : public InputPartitioning {
 public:
  KdPartitioner(const Relation& rel, const ContributionTable& contribs,
                const KdPartitionerOptions& options);

  const std::vector<InputPartition>& partitions() const override {
    return partitions_;
  }

 private:
  void Split(const Relation& rel, const ContributionTable& contribs,
             std::vector<RowId>* rows, size_t target_rows, size_t leaf_budget,
             int depth);
  void EmitLeaf(const Relation& rel, const ContributionTable& contribs,
                std::vector<RowId> rows);

  KdPartitionerOptions options_;
  std::vector<InputPartition> partitions_;
};

}  // namespace progxe
