// Input-space partitions and the abstract partitioning interface.
//
// Section III of the paper assumes a multi-dimensional grid but notes that
// "other space-partitioning methodologies such as quad-tree and R-tree
// structures can also be utilized". Everything downstream (look-ahead,
// ProgOrder, tuple-level processing) only needs the partition list, so the
// executor works against this interface; InputGrid (uniform grid) and
// KdPartitioner (adaptive median splits) are the two realizations.
#pragma once

#include <vector>

#include "data/relation.h"
#include "grid/grid_geometry.h"
#include "grid/signature.h"
#include "join/key_index.h"
#include "mapping/interval.h"

namespace progxe {

/// One non-empty input partition I_a of a source.
struct InputPartition {
  /// Rows of the source relation in this partition.
  std::vector<RowId> rows;
  /// Tight contribution bounds per output dimension (canonical space).
  std::vector<Interval> bounds;
  /// Join-key hash index over `rows`.
  KeyIndex key_index;
  /// Join-domain signature over `rows`.
  Signature signature;
  /// Cell coordinates for grid-aligned partitioners (diagnostic only;
  /// all-zero for adaptive partitioners).
  std::vector<CellCoord> coords;

  size_t size() const { return rows.size(); }
};

/// Abstract partitioned view of one source.
class InputPartitioning {
 public:
  virtual ~InputPartitioning() = default;

  /// Non-empty partitions covering every source row exactly once.
  virtual const std::vector<InputPartition>& partitions() const = 0;

  size_t num_partitions() const { return partitions().size(); }
};

}  // namespace progxe
