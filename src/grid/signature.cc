#include "grid/signature.h"

namespace progxe {

Signature Signature::Build(const Relation& rel, const std::vector<RowId>& rows,
                           SignatureMode mode, size_t bloom_bits,
                           int bloom_hashes) {
  Signature sig;
  sig.mode_ = mode;
  if (mode == SignatureMode::kExact) {
    sig.keys_.reserve(rows.size());
    for (RowId id : rows) sig.keys_.push_back(rel.join_key(id));
    std::sort(sig.keys_.begin(), sig.keys_.end());
    sig.keys_.erase(std::unique(sig.keys_.begin(), sig.keys_.end()),
                    sig.keys_.end());
  } else {
    sig.bloom_ = BloomFilter(bloom_bits, bloom_hashes);
    for (RowId id : rows) {
      sig.bloom_.Add(static_cast<uint64_t>(rel.join_key(id)));
    }
  }
  return sig;
}

bool Signature::MightIntersect(const Signature& other) const {
  if (mode_ == SignatureMode::kExact &&
      other.mode_ == SignatureMode::kExact) {
    // Sorted-merge intersection test.
    size_t i = 0;
    size_t j = 0;
    while (i < keys_.size() && j < other.keys_.size()) {
      if (keys_[i] < other.keys_[j]) {
        ++i;
      } else if (other.keys_[j] < keys_[i]) {
        ++j;
      } else {
        return true;
      }
    }
    return false;
  }
  if (mode_ == SignatureMode::kBloom &&
      other.mode_ == SignatureMode::kBloom) {
    return bloom_.MightIntersect(other.bloom_);
  }
  // Mixed modes cannot prove anything; be conservative.
  return true;
}

}  // namespace progxe
