// Join-domain signatures for input partitions (Section III-A).
//
// Partition pairs whose signatures are provably disjoint cannot produce any
// join result and are skipped wholesale. With the exact signature, a
// non-empty intersection additionally *guarantees* at least one join result
// (the partitions both contain a tuple with the shared value), which is the
// "guaranteed to be populated" property that region/partition-level
// domination pruning relies on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "data/relation.h"
#include "grid/bloom_filter.h"

namespace progxe {

/// Which signature realization partitions carry.
enum class SignatureMode : uint8_t { kExact, kBloom };

/// A partition's join-value signature.
class Signature {
 public:
  Signature() = default;

  /// Builds a signature over the join keys of `rows`.
  static Signature Build(const Relation& rel, const std::vector<RowId>& rows,
                         SignatureMode mode, size_t bloom_bits = 1024,
                         int bloom_hashes = 4);

  /// Exact mode: true iff the partitions share >= 1 join value.
  /// Bloom mode: false means provably disjoint; true means "maybe".
  bool MightIntersect(const Signature& other) const;

  /// True iff a positive MightIntersect is a guarantee (exact mode).
  bool exact() const { return mode_ == SignatureMode::kExact; }

  SignatureMode mode() const { return mode_; }
  size_t distinct_keys() const { return keys_.size(); }

 private:
  SignatureMode mode_ = SignatureMode::kExact;
  std::vector<JoinKey> keys_;  // sorted distinct keys (exact mode)
  BloomFilter bloom_{64, 1};   // bloom mode
};

}  // namespace progxe
