#include "harness/experiment.h"

#include <algorithm>
#include <memory>

#include "common/macros.h"

#include "baselines/jf_sl.h"
#include "baselines/saj.h"
#include "baselines/ssmj.h"
#include "progxe/stream.h"

namespace progxe {

const char* AlgoName(Algo algo) {
  switch (algo) {
    case Algo::kProgXe:
      return "ProgXe";
    case Algo::kProgXePlus:
      return "ProgXe+";
    case Algo::kProgXeNoOrder:
      return "ProgXe (No-Order)";
    case Algo::kProgXePlusNoOrder:
      return "ProgXe+ (No-Order)";
    case Algo::kJfSl:
      return "JF-SL";
    case Algo::kJfSlPlus:
      return "JF-SL+";
    case Algo::kSsmj:
      return "SSMJ";
    case Algo::kSaj:
      return "SAJ";
  }
  return "?";
}

bool AlgoFromName(const std::string& name, Algo* out) {
  for (Algo algo : AllAlgos()) {
    if (name == AlgoName(algo)) {
      *out = algo;
      return true;
    }
  }
  // Hyphenated CLI-friendly aliases (no spaces or parentheses to quote).
  struct Alias {
    const char* name;
    Algo algo;
  };
  static const Alias kAliases[] = {
      {"ProgXe-NoOrder", Algo::kProgXeNoOrder},
      {"ProgXe+-NoOrder", Algo::kProgXePlusNoOrder},
  };
  for (const Alias& alias : kAliases) {
    if (name == alias.name) {
      *out = alias.algo;
      return true;
    }
  }
  return false;
}

bool IsProgXeVariant(Algo algo) {
  return algo == Algo::kProgXe || algo == Algo::kProgXePlus ||
         algo == Algo::kProgXeNoOrder || algo == Algo::kProgXePlusNoOrder;
}

std::vector<Algo> AllAlgos() {
  return {Algo::kProgXe,     Algo::kProgXePlus,        Algo::kProgXeNoOrder,
          Algo::kProgXePlusNoOrder, Algo::kJfSl,       Algo::kJfSlPlus,
          Algo::kSsmj,       Algo::kSaj};
}

ProgXeOptions OptionsForAlgo(Algo algo, ProgXeOptions tuning) {
  switch (algo) {
    case Algo::kProgXe:
      tuning.ordering = OrderingMode::kProgOrder;
      tuning.push_through = false;
      break;
    case Algo::kProgXePlus:
      tuning.ordering = OrderingMode::kProgOrder;
      tuning.push_through = true;
      break;
    case Algo::kProgXeNoOrder:
      tuning.ordering = OrderingMode::kRandom;
      tuning.push_through = false;
      break;
    case Algo::kProgXePlusNoOrder:
      tuning.ordering = OrderingMode::kRandom;
      tuning.push_through = true;
      break;
    default:
      break;
  }
  return tuning;
}

std::vector<std::pair<RowId, RowId>> CanonicalIdPairs(
    const std::vector<ResultTuple>& results) {
  std::vector<std::pair<RowId, RowId>> pairs;
  pairs.reserve(results.size());
  for (const ResultTuple& r : results) pairs.emplace_back(r.r_id, r.t_id);
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

Result<ExperimentRun> RunAlgorithm(Algo algo, const Workload& workload,
                                   ProgXeOptions tuning,
                                   const ShardOptions& shards) {
  ExperimentRun run;
  run.algo = algo;
  ProgressiveRecorder recorder;
  SkyMapJoinQuery query = workload.query();

  auto emit = [&](const ResultTuple& r) {
    recorder.OnResult();
    run.results.push_back(r);
  };

  switch (algo) {
    case Algo::kProgXe:
    case Algo::kProgXePlus:
    case Algo::kProgXeNoOrder:
    case Algo::kProgXePlusNoOrder: {
      // Driven through the pull-based stream (same results and counters as
      // ProgXeExecutor::Run): tuning carries num_threads and batch size
      // straight into the pipeline, so benches can sweep thread counts, and
      // `shards` selects the sharded executor behind the same interface.
      // Reset precedes Open so the timed window covers PreparePhase, like
      // the baselines' end-to-end timing.
      recorder.Reset();
      PROGXE_ASSIGN_OR_RETURN(
          std::unique_ptr<ProgXeStream> stream,
          OpenProgXeStream(query, OptionsForAlgo(algo, tuning), shards));
      std::vector<ResultTuple> batch;
      while (stream->NextBatch(0, &batch) > 0) {
        for (const ResultTuple& r : batch) emit(r);
      }
      PROGXE_RETURN_NOT_OK(stream->last_status());
      recorder.OnFinish();
      run.coverage = stream->coverage();
      run.dominance_comparisons = stream->stats().dominance_comparisons;
      run.join_pairs = stream->stats().join_pairs_generated;
      break;
    }
    case Algo::kJfSl:
    case Algo::kJfSlPlus: {
      BaselineStats stats;
      recorder.Reset();
      if (algo == Algo::kJfSl) {
        PROGXE_RETURN_NOT_OK(RunJfSl(query, emit, &stats));
      } else {
        PROGXE_RETURN_NOT_OK(RunJfSlPlus(query, emit, &stats));
      }
      recorder.OnFinish();
      run.dominance_comparisons = stats.dominance_comparisons;
      run.join_pairs = stats.join_pairs;
      break;
    }
    case Algo::kSsmj: {
      BaselineStats stats;
      SsmjResult ssmj;
      recorder.Reset();
      PROGXE_RETURN_NOT_OK(RunSsmj(query, emit, &stats, &ssmj));
      recorder.OnFinish();
      run.dominance_comparisons = stats.dominance_comparisons;
      run.join_pairs = stats.join_pairs;
      run.early_false_positives = stats.early_false_positives;
      // Replace the raw emission log with the correct final set so callers
      // comparing answers are not tripped by SSMJ's early false positives.
      run.results = ssmj.final_results;
      break;
    }
    case Algo::kSaj: {
      SajStats stats;
      recorder.Reset();
      PROGXE_RETURN_NOT_OK(RunSaj(query, emit, &stats));
      recorder.OnFinish();
      run.dominance_comparisons = stats.base.dominance_comparisons;
      run.join_pairs = stats.base.join_pairs;
      break;
    }
  }

  run.metrics = SummarizeRecorder(recorder);
  run.series = recorder.points();
  return run;
}

}  // namespace progxe
