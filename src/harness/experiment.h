// Experiment driver: runs any of the paper's seven algorithms on a workload
// and returns the progressiveness series plus work counters. Shared by every
// figure bench and by the integration tests.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "harness/series.h"
#include "harness/workload.h"
#include "progxe/config.h"
#include "progxe/stream.h"

namespace progxe {

/// The algorithms compared in Section VI.
enum class Algo {
  kProgXe,             // ProgOrder + ProgDetermine
  kProgXePlus,         // + skyline partial push-through
  kProgXeNoOrder,      // random region order, ProgDetermine on
  kProgXePlusNoOrder,  // push-through + random order
  kJfSl,               // blocking join-first skyline-later
  kJfSlPlus,           // JF-SL + push-through
  kSsmj,               // two-batch skyline-sort-merge-join
  kSaj,                // Fagin-style sorted access, threshold termination
};

const char* AlgoName(Algo algo);

/// Inverse of AlgoName. Returns false on an unknown name.
bool AlgoFromName(const std::string& name, Algo* out);

/// True for the four ProgXe variants (the algorithms a ProgXeStream — and
/// hence the multi-query serving layer and the sharded executor — can
/// drive).
bool IsProgXeVariant(Algo algo);

/// All progressive + blocking algorithms, in presentation order.
std::vector<Algo> AllAlgos();

/// Outcome of one algorithm run on one workload.
struct ExperimentRun {
  Algo algo = Algo::kProgXe;
  ProgressivenessMetrics metrics;
  std::vector<SeriesPoint> series;
  uint64_t dominance_comparisons = 0;
  uint64_t join_pairs = 0;
  /// SSMJ only: early batch-1 results later found dominated.
  size_t early_false_positives = 0;
  /// ProgXe stream path only: per-shard coverage of the delivered set —
  /// `!complete()` when ShardOptions::allow_partial let a run finish with
  /// abandoned shards. Default-complete for the baselines.
  ShardCoverage coverage;
  /// The emitted results (final skyline; SSMJ false positives excluded).
  std::vector<ResultTuple> results;
};

/// Runs `algo` on `workload`. `tuning` seeds the ProgXe variants' grid
/// parameters (ordering/push-through fields are overridden per algo);
/// `shards` with num_shards > 1 drives the variant through a ShardedStream
/// (ProgXe variants only — baselines ignore it).
Result<ExperimentRun> RunAlgorithm(Algo algo, const Workload& workload,
                                   ProgXeOptions tuning = ProgXeOptions(),
                                   const ShardOptions& shards = {});

/// ProgXe options corresponding to a variant (exposed for tests).
ProgXeOptions OptionsForAlgo(Algo algo, ProgXeOptions tuning);

/// Sorts results into a canonical order and returns (r_id, t_id) pairs —
/// used to compare algorithms' final answers.
std::vector<std::pair<RowId, RowId>> CanonicalIdPairs(
    const std::vector<ResultTuple>& results);

}  // namespace progxe
