#include "harness/series.h"

#include <algorithm>
#include <sstream>

namespace progxe {

double ProgressiveRecorder::TimeToFraction(double fraction) const {
  if (count_ == 0) return -1.0;
  const size_t target = static_cast<size_t>(
      std::max(1.0, fraction * static_cast<double>(count_)));
  for (const SeriesPoint& p : points_) {
    if (p.count >= target) return p.t_sec;
  }
  return -1.0;
}

double ProgressiveRecorder::TimeToFirst() const {
  return points_.empty() ? -1.0 : points_.front().t_sec;
}

std::vector<SeriesPoint> ProgressiveRecorder::Downsample(
    size_t max_points) const {
  if (points_.size() <= max_points || max_points < 2) return points_;
  std::vector<SeriesPoint> out;
  out.reserve(max_points);
  const double step = static_cast<double>(points_.size() - 1) /
                      static_cast<double>(max_points - 1);
  for (size_t i = 0; i < max_points; ++i) {
    const size_t idx = static_cast<size_t>(step * static_cast<double>(i));
    out.push_back(points_[std::min(idx, points_.size() - 1)]);
  }
  out.back() = points_.back();
  return out;
}

ProgressivenessMetrics SummarizeRecorder(const ProgressiveRecorder& recorder) {
  ProgressivenessMetrics m;
  m.time_to_first = recorder.TimeToFirst();
  m.time_to_25pct = recorder.TimeToFraction(0.25);
  m.time_to_50pct = recorder.TimeToFraction(0.50);
  m.time_to_75pct = recorder.TimeToFraction(0.75);
  m.total_time = recorder.total_seconds();
  m.total_results = recorder.total_results();
  return m;
}

std::string FormatSeries(const std::vector<SeriesPoint>& points,
                         const std::string& label, size_t max_points) {
  std::ostringstream os;
  std::vector<SeriesPoint> shown = points;
  if (shown.size() > max_points && max_points >= 2) {
    std::vector<SeriesPoint> sampled;
    const double step = static_cast<double>(shown.size() - 1) /
                        static_cast<double>(max_points - 1);
    for (size_t i = 0; i < max_points; ++i) {
      const size_t idx = static_cast<size_t>(step * static_cast<double>(i));
      sampled.push_back(shown[std::min(idx, shown.size() - 1)]);
    }
    sampled.back() = shown.back();
    shown = std::move(sampled);
  }
  for (const SeriesPoint& p : shown) {
    os << label << " t=" << p.t_sec << "s n=" << p.count << "\n";
  }
  return os.str();
}

}  // namespace progxe
