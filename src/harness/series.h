// Progressiveness series: (elapsed time, cumulative results) samples, the
// quantity plotted on the y-axis of Figures 10-12 of the paper.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/stopwatch.h"

namespace progxe {

/// One emission event.
struct SeriesPoint {
  double t_sec = 0.0;
  size_t count = 0;
};

/// Records cumulative result counts against a stopwatch.
class ProgressiveRecorder {
 public:
  ProgressiveRecorder() { Reset(); }

  /// Restarts the clock and clears all samples.
  void Reset() {
    points_.clear();
    count_ = 0;
    finished_ = false;
    total_sec_ = 0.0;
    watch_.Start();
  }

  /// Call once per emitted result.
  void OnResult() {
    ++count_;
    points_.push_back(SeriesPoint{watch_.ElapsedSeconds(), count_});
  }

  /// Call when the algorithm finishes.
  void OnFinish() {
    finished_ = true;
    total_sec_ = watch_.ElapsedSeconds();
  }

  size_t total_results() const { return count_; }
  double total_seconds() const { return total_sec_; }
  bool finished() const { return finished_; }
  const std::vector<SeriesPoint>& points() const { return points_; }

  /// Time at which the cumulative count first reached `fraction` of the
  /// final total (0 < fraction <= 1); -1 if never.
  double TimeToFraction(double fraction) const;

  /// Time of the first emission; -1 if none.
  double TimeToFirst() const;

  /// Downsamples to at most `max_points` evenly spaced emission events
  /// (always keeping the first and last).
  std::vector<SeriesPoint> Downsample(size_t max_points) const;

 private:
  Stopwatch watch_;
  std::vector<SeriesPoint> points_;
  size_t count_ = 0;
  bool finished_ = false;
  double total_sec_ = 0.0;
};

/// Summary metrics used in EXPERIMENTS.md tables.
struct ProgressivenessMetrics {
  double time_to_first = -1.0;
  double time_to_25pct = -1.0;
  double time_to_50pct = -1.0;
  double time_to_75pct = -1.0;
  double total_time = 0.0;
  size_t total_results = 0;
};

ProgressivenessMetrics SummarizeRecorder(const ProgressiveRecorder& recorder);

/// "t=0.0123s n=45" rows, gnuplot-style, with an optional label prefix.
std::string FormatSeries(const std::vector<SeriesPoint>& points,
                         const std::string& label, size_t max_points = 20);

}  // namespace progxe
