#include "harness/workload.h"

#include <sstream>

namespace progxe {

std::string WorkloadParams::ToString() const {
  std::ostringstream os;
  os << DistributionName(distribution) << " N=" << cardinality
     << " d=" << dims << " sigma=" << sigma << " seed=" << seed;
  return os.str();
}

Result<Workload> Workload::Make(const WorkloadParams& params) {
  GeneratorOptions options;
  options.distribution = params.distribution;
  options.cardinality = params.cardinality;
  options.num_attributes = params.dims;
  options.join_selectivity = params.sigma;

  options.seed = params.seed;
  PROGXE_ASSIGN_OR_RETURN(Relation r, GenerateRelation(options));
  options.seed = params.seed ^ 0x9e3779b97f4a7c15ULL;
  PROGXE_ASSIGN_OR_RETURN(Relation t, GenerateRelation(options));
  return Workload(params, std::move(r), std::move(t));
}

SkyMapJoinQuery Workload::query() const {
  SkyMapJoinQuery q;
  q.r = &r_;
  q.t = &t_;
  q.map = MapSpec::PairwiseSum(params_.dims);
  q.pref = Preference::AllLowest(params_.dims);
  return q;
}

}  // namespace progxe
