// Benchmark workload construction matching the paper's experimental setup
// (Section VI-A): two synthetic sources R and T of the same distribution and
// cardinality, pairwise-sum mapping functions, all-LOWEST preferences.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "data/generator.h"
#include "data/relation.h"
#include "progxe/executor.h"

namespace progxe {

/// Parameters of one experiment workload.
struct WorkloadParams {
  Distribution distribution = Distribution::kIndependent;
  /// |R| = |T| = cardinality.
  size_t cardinality = 10000;
  /// Number of skyline dimensions d (source attributes and output dims).
  int dims = 4;
  /// Join selectivity sigma.
  double sigma = 0.001;
  uint64_t seed = 42;

  std::string ToString() const;
};

/// A generated workload: owns both sources and exposes the SMJ query.
class Workload {
 public:
  static Result<Workload> Make(const WorkloadParams& params);

  const WorkloadParams& params() const { return params_; }
  const Relation& r() const { return r_; }
  const Relation& t() const { return t_; }

  /// The SkyMapJoin query over this workload (sources point into *this).
  SkyMapJoinQuery query() const;

 private:
  Workload(WorkloadParams params, Relation r, Relation t)
      : params_(params), r_(std::move(r)), t_(std::move(t)) {}

  WorkloadParams params_;
  Relation r_;
  Relation t_;
};

}  // namespace progxe
