#include "join/hash_join.h"

namespace progxe {

size_t HashJoinCount(const Relation& r, const Relation& t) {
  size_t count = 0;
  HashJoin(r, t, [&count](RowId, RowId) { ++count; });
  return count;
}

double MeasuredJoinSelectivity(const Relation& r, const Relation& t) {
  if (r.empty() || t.empty()) return 0.0;
  const double pairs = static_cast<double>(HashJoinCount(r, t));
  return pairs /
         (static_cast<double>(r.size()) * static_cast<double>(t.size()));
}

}  // namespace progxe
