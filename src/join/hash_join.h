// Hash equi-join over whole relations; the join used by the blocking
// JF-SL / JF-SL+ baselines (Figure 1.b of the paper).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "data/relation.h"
#include "join/key_index.h"

namespace progxe {

/// Statistics of one join execution.
struct JoinStats {
  size_t build_rows = 0;
  size_t probe_rows = 0;
  size_t output_pairs = 0;
};

/// Streams every matching (r, t) pair to `emit`. Builds on the smaller side.
template <typename Fn>
JoinStats HashJoin(const Relation& r, const Relation& t, Fn&& emit) {
  JoinStats stats;
  // Build on the smaller input, probe with the larger, but always emit in
  // (r, t) order.
  if (r.size() <= t.size()) {
    stats.build_rows = r.size();
    stats.probe_rows = t.size();
    KeyIndex index(r);
    for (size_t i = 0; i < t.size(); ++i) {
      const RowId t_id = static_cast<RowId>(i);
      const std::vector<RowId>* matches = index.Find(t.join_key(t_id));
      if (matches == nullptr) continue;
      for (RowId r_id : *matches) {
        emit(r_id, t_id);
        ++stats.output_pairs;
      }
    }
  } else {
    stats.build_rows = t.size();
    stats.probe_rows = r.size();
    KeyIndex index(t);
    for (size_t i = 0; i < r.size(); ++i) {
      const RowId r_id = static_cast<RowId>(i);
      const std::vector<RowId>* matches = index.Find(r.join_key(r_id));
      if (matches == nullptr) continue;
      for (RowId t_id : *matches) {
        emit(r_id, t_id);
        ++stats.output_pairs;
      }
    }
  }
  return stats;
}

/// Counts matching pairs without materializing them.
size_t HashJoinCount(const Relation& r, const Relation& t);

/// Measured join selectivity |R join T| / (|R| * |T|).
double MeasuredJoinSelectivity(const Relation& r, const Relation& t);

}  // namespace progxe
