// Join-key hash index over a subset of a relation's rows.
//
// Input partitions keep one of these so that tuple-level processing of a
// region (Section III-B) joins two partitions in time proportional to the
// matching groups rather than |I_a| * |I_b|.
#pragma once

#include <cassert>
#include <unordered_map>
#include <vector>

#include "data/relation.h"

namespace progxe {

/// Maps each distinct join key to the row ids bearing it.
class KeyIndex {
 public:
  KeyIndex() = default;

  /// Indexes the given rows of `rel`.
  KeyIndex(const Relation& rel, const std::vector<RowId>& rows) {
    buckets_.reserve(rows.size());
    for (RowId id : rows) {
      buckets_[rel.join_key(id)].push_back(id);
    }
  }

  /// Indexes every row of `rel`.
  explicit KeyIndex(const Relation& rel) {
    buckets_.reserve(rel.size());
    for (size_t i = 0; i < rel.size(); ++i) {
      buckets_[rel.join_key(static_cast<RowId>(i))].push_back(
          static_cast<RowId>(i));
    }
  }

  /// Rows with the given key, or nullptr if none.
  const std::vector<RowId>* Find(JoinKey key) const {
    auto it = buckets_.find(key);
    return it == buckets_.end() ? nullptr : &it->second;
  }

  size_t distinct_keys() const { return buckets_.size(); }

  /// Iterates (key, rows) pairs.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [key, rows] : buckets_) fn(key, rows);
  }

  /// True iff this index and `other` share at least one key. Iterates the
  /// smaller index.
  bool SharesKeyWith(const KeyIndex& other) const {
    const KeyIndex* small = this;
    const KeyIndex* large = &other;
    if (small->buckets_.size() > large->buckets_.size()) {
      std::swap(small, large);
    }
    for (const auto& [key, rows] : small->buckets_) {
      (void)rows;
      if (large->buckets_.count(key) != 0) return true;
    }
    return false;
  }

 private:
  std::unordered_map<JoinKey, std::vector<RowId>> buckets_;
};

/// Joins two key indexes, invoking `emit(r_id, t_id)` for every matching
/// pair. Returns the number of pairs emitted.
template <typename Fn>
size_t JoinIndexes(const KeyIndex& r_index, const KeyIndex& t_index,
                   Fn&& emit) {
  size_t count = 0;
  r_index.ForEach([&](JoinKey key, const std::vector<RowId>& r_rows) {
    const std::vector<RowId>* t_rows = t_index.Find(key);
    if (t_rows == nullptr) return;
    for (RowId r : r_rows) {
      for (RowId t : *t_rows) {
        emit(r, t);
        ++count;
      }
    }
  });
  return count;
}

/// Batched form of JoinIndexes: fills the caller-owned buffer `buf`
/// (capacity `cap` pairs) and invokes `flush(buf, n)` whenever it fills,
/// plus once for the tail. Pair order is identical to JoinIndexes, so the
/// two forms drive downstream consumers through the same state sequence.
/// Returns the number of pairs emitted.
template <typename FlushFn>
size_t JoinIndexesBatched(const KeyIndex& r_index, const KeyIndex& t_index,
                          RowIdPair* buf, size_t cap, FlushFn&& flush) {
  assert(cap > 0);
  size_t count = 0;
  size_t n = 0;
  r_index.ForEach([&](JoinKey key, const std::vector<RowId>& r_rows) {
    const std::vector<RowId>* t_rows = t_index.Find(key);
    if (t_rows == nullptr) return;
    for (RowId r : r_rows) {
      for (RowId t : *t_rows) {
        buf[n++] = RowIdPair{r, t};
        if (n == cap) {
          flush(buf, n);
          count += n;
          n = 0;
        }
      }
    }
  });
  if (n > 0) {
    flush(buf, n);
    count += n;
  }
  return count;
}

}  // namespace progxe
