#include "join/sort_merge_join.h"

namespace progxe {

std::vector<KeyedRow> SortByKey(const Relation& rel,
                                const std::vector<RowId>& rows) {
  std::vector<KeyedRow> out;
  out.reserve(rows.size());
  for (RowId id : rows) {
    out.push_back(KeyedRow{rel.join_key(id), id});
  }
  std::sort(out.begin(), out.end(), [](const KeyedRow& a, const KeyedRow& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  });
  return out;
}

}  // namespace progxe
