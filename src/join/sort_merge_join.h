// Sort-merge equi-join used by the SSMJ baseline's phased evaluation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "data/relation.h"

namespace progxe {

/// A (row id, join key) pair sorted by key.
struct KeyedRow {
  JoinKey key;
  RowId id;
};

/// Extracts and sorts the given rows by join key.
std::vector<KeyedRow> SortByKey(const Relation& rel,
                                const std::vector<RowId>& rows);

/// Merge-joins two key-sorted row lists, streaming every matching (r, t)
/// pair. Returns the number of pairs emitted.
template <typename Fn>
size_t MergeJoin(const std::vector<KeyedRow>& r_sorted,
                 const std::vector<KeyedRow>& t_sorted, Fn&& emit) {
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < r_sorted.size() && j < t_sorted.size()) {
    const JoinKey rk = r_sorted[i].key;
    const JoinKey tk = t_sorted[j].key;
    if (rk < tk) {
      ++i;
    } else if (tk < rk) {
      ++j;
    } else {
      // Find both runs of the equal key and emit the cross product.
      size_t i_end = i;
      while (i_end < r_sorted.size() && r_sorted[i_end].key == rk) ++i_end;
      size_t j_end = j;
      while (j_end < t_sorted.size() && t_sorted[j_end].key == rk) ++j_end;
      for (size_t a = i; a < i_end; ++a) {
        for (size_t b = j; b < j_end; ++b) {
          emit(r_sorted[a].id, t_sorted[b].id);
          ++count;
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return count;
}

}  // namespace progxe
