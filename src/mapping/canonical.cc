#include "mapping/canonical.h"

#include <cassert>

namespace progxe {

CanonicalMapper::CanonicalMapper(MapSpec spec, Preference pref)
    : spec_(std::move(spec)), pref_(std::move(pref)) {
  assert(pref_.dimensions() == spec_.output_dimensions());
  sign_.reserve(static_cast<size_t>(pref_.dimensions()));
  for (int j = 0; j < pref_.dimensions(); ++j) {
    sign_.push_back(pref_.direction(j) == Direction::kLowest ? 1.0 : -1.0);
  }
}

void CanonicalMapper::ContributionVector(Side side,
                                         std::span<const double> attrs,
                                         double* out) const {
  for (int j = 0; j < spec_.output_dimensions(); ++j) {
    out[j] = sign_[static_cast<size_t>(j)] *
             spec_.func(j).Contribution(side, attrs);
  }
}

void CanonicalMapper::ContributionBounds(Side side,
                                         std::span<const Interval> attr_bounds,
                                         Interval* out) const {
  for (int j = 0; j < spec_.output_dimensions(); ++j) {
    out[j] = spec_.func(j).ContributionBounds(side, attr_bounds) *
             sign_[static_cast<size_t>(j)];
  }
}

void CanonicalMapper::Combine(const double* r_contrib, const double* t_contrib,
                              double* out) const {
  for (int j = 0; j < spec_.output_dimensions(); ++j) {
    const double s = sign_[static_cast<size_t>(j)];
    // Undo the sign folding to evaluate the transform on the raw linear
    // value, then refold. Monotone increasing in each contribution for
    // either sign.
    const double raw = s * (r_contrib[j] + t_contrib[j]);
    out[j] = s * ApplyTransform(spec_.func(j).transform(), raw);
  }
}

void CanonicalMapper::CombineBatch(const RowIdPair* pairs, size_t n,
                                   const double* r_flat, const double* t_flat,
                                   double* out) const {
  const int k = spec_.output_dimensions();
  const size_t kk = static_cast<size_t>(k);
  // Dimension-outer: sign and transform are loop invariants, and the inner
  // loop is a strided gather-map-store over the whole block.
  for (int j = 0; j < k; ++j) {
    const double s = sign_[static_cast<size_t>(j)];
    const Transform tf = spec_.func(j).transform();
    const size_t jj = static_cast<size_t>(j);
    for (size_t i = 0; i < n; ++i) {
      const double rc = r_flat[static_cast<size_t>(pairs[i].r) * kk + jj];
      const double tc = t_flat[static_cast<size_t>(pairs[i].t) * kk + jj];
      // Same un-fold / re-fold as Combine (see above).
      const double raw = s * (rc + tc);
      out[i * kk + jj] = s * ApplyTransform(tf, raw);
    }
  }
}

void CanonicalMapper::CombineBounds(const Interval* r_contrib,
                                    const Interval* t_contrib,
                                    Interval* out) const {
  for (int j = 0; j < spec_.output_dimensions(); ++j) {
    const double s = sign_[static_cast<size_t>(j)];
    const Interval sum = r_contrib[j] + t_contrib[j];
    const Interval raw = sum * s;  // un-fold (flips bounds when s = -1)
    const Interval mapped = ApplyTransform(spec_.func(j).transform(), raw);
    out[j] = mapped * s;  // re-fold
  }
}

}  // namespace progxe
