#include "mapping/canonical.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace progxe {

namespace {

/// Compile-time specialization of ApplyTransform: the same arithmetic as
/// the runtime switch in map_expr.cc (bit-identical results), with the
/// dispatch resolved at template-instantiation time so the per-element
/// call/switch disappears from CombineBatch's inner loop.
template <Transform kTf>
inline double ApplyTransformFast(double v) {
  if constexpr (kTf == Transform::kIdentity) {
    return v;
  } else if constexpr (kTf == Transform::kLog1p) {
    return std::log1p(std::max(v, 0.0));
  } else if constexpr (kTf == Transform::kSqrt) {
    return std::sqrt(std::max(v, 0.0));
  } else {
    static_assert(kTf == Transform::kSaturating);
    const double nn = std::max(v, 0.0);
    return nn / (1.0 + nn);
  }
}

/// One dimension of CombineBatch with the transform fixed at compile time.
/// The identity case also skips the sign un-fold/re-fold: s * (s * x) == x
/// exactly for s = ±1, so `rc + tc` is bit-identical to the folded form.
template <Transform kTf>
void CombineDimension(const RowIdPair* pairs, size_t n, const double* r_flat,
                      const double* t_flat, double s, size_t kk, size_t jj,
                      double* out) {
  for (size_t i = 0; i < n; ++i) {
    const double rc = r_flat[static_cast<size_t>(pairs[i].r) * kk + jj];
    const double tc = t_flat[static_cast<size_t>(pairs[i].t) * kk + jj];
    if constexpr (kTf == Transform::kIdentity) {
      out[i * kk + jj] = rc + tc;
    } else {
      const double raw = s * (rc + tc);
      out[i * kk + jj] = s * ApplyTransformFast<kTf>(raw);
    }
  }
}

}  // namespace

CanonicalMapper::CanonicalMapper(MapSpec spec, Preference pref)
    : spec_(std::move(spec)), pref_(std::move(pref)) {
  assert(pref_.dimensions() == spec_.output_dimensions());
  sign_.reserve(static_cast<size_t>(pref_.dimensions()));
  for (int j = 0; j < pref_.dimensions(); ++j) {
    sign_.push_back(pref_.direction(j) == Direction::kLowest ? 1.0 : -1.0);
  }
}

void CanonicalMapper::ContributionVector(Side side,
                                         std::span<const double> attrs,
                                         double* out) const {
  for (int j = 0; j < spec_.output_dimensions(); ++j) {
    out[j] = sign_[static_cast<size_t>(j)] *
             spec_.func(j).Contribution(side, attrs);
  }
}

void CanonicalMapper::ContributionBounds(Side side,
                                         std::span<const Interval> attr_bounds,
                                         Interval* out) const {
  for (int j = 0; j < spec_.output_dimensions(); ++j) {
    out[j] = spec_.func(j).ContributionBounds(side, attr_bounds) *
             sign_[static_cast<size_t>(j)];
  }
}

void CanonicalMapper::Combine(const double* r_contrib, const double* t_contrib,
                              double* out) const {
  for (int j = 0; j < spec_.output_dimensions(); ++j) {
    const double s = sign_[static_cast<size_t>(j)];
    // Undo the sign folding to evaluate the transform on the raw linear
    // value, then refold. Monotone increasing in each contribution for
    // either sign.
    const double raw = s * (r_contrib[j] + t_contrib[j]);
    out[j] = s * ApplyTransform(spec_.func(j).transform(), raw);
  }
}

void CanonicalMapper::CombineBatch(const RowIdPair* pairs, size_t n,
                                   const double* r_flat, const double* t_flat,
                                   double* out) const {
  const int k = spec_.output_dimensions();
  const size_t kk = static_cast<size_t>(k);
  // Dimension-outer: sign and transform are loop invariants. The transform
  // dispatch is a single switch per dimension (not per element), and each
  // arm runs a specialized inner loop — same un-fold / re-fold arithmetic
  // as Combine, bit-identical to the per-element dispatch it replaces.
  for (int j = 0; j < k; ++j) {
    const double s = sign_[static_cast<size_t>(j)];
    const size_t jj = static_cast<size_t>(j);
    switch (spec_.func(j).transform()) {
      case Transform::kIdentity:
        CombineDimension<Transform::kIdentity>(pairs, n, r_flat, t_flat, s,
                                               kk, jj, out);
        break;
      case Transform::kLog1p:
        CombineDimension<Transform::kLog1p>(pairs, n, r_flat, t_flat, s, kk,
                                            jj, out);
        break;
      case Transform::kSqrt:
        CombineDimension<Transform::kSqrt>(pairs, n, r_flat, t_flat, s, kk,
                                           jj, out);
        break;
      case Transform::kSaturating:
        CombineDimension<Transform::kSaturating>(pairs, n, r_flat, t_flat, s,
                                                 kk, jj, out);
        break;
    }
  }
}

void CanonicalMapper::CombineBounds(const Interval* r_contrib,
                                    const Interval* t_contrib,
                                    Interval* out) const {
  for (int j = 0; j < spec_.output_dimensions(); ++j) {
    const double s = sign_[static_cast<size_t>(j)];
    const Interval sum = r_contrib[j] + t_contrib[j];
    const Interval raw = sum * s;  // un-fold (flips bounds when s = -1)
    const Interval mapped = ApplyTransform(spec_.func(j).transform(), raw);
    out[j] = mapped * s;  // re-fold
  }
}

}  // namespace progxe
