// Canonical (minimize-all) view of a MapSpec + Preference pair.
//
// The ProgXe engine, the push-through rewrite and SSMJ all reason about a
// totally uniform "smaller is better" output space: grid coordinates,
// dominance cones and region bounds assume every dimension is minimized.
// CanonicalMapper folds the preference directions into the mapping so that
//
//   canonical_output[j] = s_j * f_j(r, t),   s_j = +1 (LOWEST) / -1 (HIGHEST)
//
// and source contributions are likewise sign-folded, keeping the canonical
// output monotone increasing in each canonical contribution. True output
// values are recovered with Decanonicalize when a result is emitted.
#pragma once

#include <span>
#include <vector>

#include "data/relation.h"
#include "mapping/interval.h"
#include "mapping/map_expr.h"
#include "prefs/preference.h"

namespace progxe {

class CanonicalMapper {
 public:
  CanonicalMapper() = default;

  /// `pref.dimensions()` must equal `spec.output_dimensions()`.
  CanonicalMapper(MapSpec spec, Preference pref);

  int output_dimensions() const { return spec_.output_dimensions(); }
  const MapSpec& spec() const { return spec_; }
  const Preference& preference() const { return pref_; }

  /// Canonical contribution vector of a source tuple into `out[0..k)`.
  void ContributionVector(Side side, std::span<const double> attrs,
                          double* out) const;

  /// Canonical contribution bounds over an attribute box.
  void ContributionBounds(Side side, std::span<const Interval> attr_bounds,
                          Interval* out) const;

  /// Combines canonical contributions into the canonical output vector.
  void Combine(const double* r_contrib, const double* t_contrib,
               double* out) const;

  /// Batched Combine: maps `n` joined pairs into the contiguous buffer
  /// `out[0..n*k)` (k doubles per pair, pair-major). `r_flat`/`t_flat` are
  /// the sources' flat contribution tables (k doubles per row, indexed by
  /// the pairs' row ids). Equivalent to n calls to Combine, but hoists the
  /// per-dimension sign and transform lookups out of the pair loop.
  void CombineBatch(const RowIdPair* pairs, size_t n, const double* r_flat,
                    const double* t_flat, double* out) const;

  /// Combines canonical contribution intervals into canonical output bounds.
  void CombineBounds(const Interval* r_contrib, const Interval* t_contrib,
                     Interval* out) const;

  /// Recovers the true (user-facing) output value for dimension j.
  double Decanonicalize(int j, double canonical) const {
    return sign_[static_cast<size_t>(j)] * canonical;
  }

  /// Folds a user-facing output value back into the canonical minimize-all
  /// space (the sign fold is its own inverse).
  double Canonicalize(int j, double user_value) const {
    return sign_[static_cast<size_t>(j)] * user_value;
  }

 private:
  MapSpec spec_;
  Preference pref_;
  std::vector<double> sign_;  // +1 / -1 per output dimension
};

}  // namespace progxe
