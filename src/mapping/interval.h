// Closed real intervals used to propagate input-partition bounds through
// mapping functions into output-space regions (Section III-A, Example 1).
#pragma once

#include <algorithm>
#include <cassert>
#include <string>

namespace progxe {

/// Closed interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  Interval() = default;
  Interval(double lo_in, double hi_in) : lo(lo_in), hi(hi_in) {
    assert(lo_in <= hi_in);
  }

  /// Degenerate point interval.
  static Interval Point(double v) { return Interval(v, v); }

  double width() const { return hi - lo; }
  bool Contains(double v) const { return lo <= v && v <= hi; }
  bool Intersects(const Interval& o) const { return lo <= o.hi && o.lo <= hi; }

  /// Smallest interval covering both.
  Interval Hull(const Interval& o) const {
    return Interval(std::min(lo, o.lo), std::max(hi, o.hi));
  }

  Interval operator+(const Interval& o) const {
    return Interval(lo + o.lo, hi + o.hi);
  }

  /// Scaling; a negative factor flips the bounds.
  Interval operator*(double w) const {
    if (w >= 0) return Interval(lo * w, hi * w);
    return Interval(hi * w, lo * w);
  }

  Interval operator+(double c) const { return Interval(lo + c, hi + c); }

  bool operator==(const Interval& o) const { return lo == o.lo && hi == o.hi; }

  std::string ToString() const {
    return "[" + std::to_string(lo) + ", " + std::to_string(hi) + "]";
  }
};

}  // namespace progxe
