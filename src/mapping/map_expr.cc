#include "mapping/map_expr.h"

#include "common/macros.h"

#include <cassert>
#include <cmath>
#include <sstream>

namespace progxe {

double ApplyTransform(Transform t, double v) {
  switch (t) {
    case Transform::kIdentity:
      return v;
    case Transform::kLog1p:
      // Strictly increasing on (-1, inf); inputs in this codebase are
      // non-negative attribute combinations.
      return std::log1p(std::max(v, 0.0));
    case Transform::kSqrt:
      return std::sqrt(std::max(v, 0.0));
    case Transform::kSaturating: {
      // v / (1 + v): strictly increasing, saturating utility curve that
      // stays strictly increasing in floating point (unlike 1 - e^-v,
      // which rounds to exactly 1.0 for v > ~37).
      const double nn = std::max(v, 0.0);
      return nn / (1.0 + nn);
    }
  }
  return v;
}

Interval ApplyTransform(Transform t, const Interval& iv) {
  // All supported transforms are non-decreasing, so the image of [lo, hi]
  // is [T(lo), T(hi)].
  return Interval(ApplyTransform(t, iv.lo), ApplyTransform(t, iv.hi));
}

double MapFunc::Eval(std::span<const double> r_attrs,
                     std::span<const double> t_attrs) const {
  double acc = constant_;
  for (const MapTerm& term : terms_) {
    const std::span<const double>& attrs =
        term.side == Side::kR ? r_attrs : t_attrs;
    acc += term.weight * attrs[static_cast<size_t>(term.attr_index)];
  }
  return ApplyTransform(transform_, acc);
}

double MapFunc::Contribution(Side side, std::span<const double> attrs) const {
  double acc = side == Side::kR ? constant_ : 0.0;
  for (const MapTerm& term : terms_) {
    if (term.side != side) continue;
    acc += term.weight * attrs[static_cast<size_t>(term.attr_index)];
  }
  return acc;
}

Interval MapFunc::ContributionBounds(
    Side side, std::span<const Interval> attr_bounds) const {
  Interval acc = Interval::Point(side == Side::kR ? constant_ : 0.0);
  for (const MapTerm& term : terms_) {
    if (term.side != side) continue;
    acc = acc + attr_bounds[static_cast<size_t>(term.attr_index)] * term.weight;
  }
  return acc;
}

Status MapFunc::Validate(int r_width, int t_width) const {
  for (const MapTerm& term : terms_) {
    const int width = term.side == Side::kR ? r_width : t_width;
    if (term.attr_index < 0 || term.attr_index >= width) {
      return Status::InvalidArgument(
          "map term attribute index " + std::to_string(term.attr_index) +
          " out of range for source of width " + std::to_string(width));
    }
  }
  return Status::OK();
}

std::string MapFunc::ToString() const {
  std::ostringstream os;
  if (!name_.empty()) os << name_ << " = ";
  bool first = true;
  for (const MapTerm& term : terms_) {
    if (!first) os << " + ";
    first = false;
    if (term.weight != 1.0) os << term.weight << "*";
    os << (term.side == Side::kR ? "R" : "T") << ".a" << term.attr_index;
  }
  if (constant_ != 0.0) os << " + " << constant_;
  if (first) os << constant_;
  switch (transform_) {
    case Transform::kIdentity:
      break;
    case Transform::kLog1p:
      return "log1p(" + os.str() + ")";
    case Transform::kSqrt:
      return "sqrt(" + os.str() + ")";
    case Transform::kSaturating:
      return "sat(" + os.str() + ")";
  }
  return os.str();
}

MapFunc MapFunc::Sum(int r_attr, int t_attr, std::string name) {
  return MapFunc({{Side::kR, r_attr, 1.0}, {Side::kT, t_attr, 1.0}}, 0.0,
                 Transform::kIdentity, std::move(name));
}

MapFunc MapFunc::WeightedSum(double wr, int r_attr, double wt, int t_attr,
                             double c, std::string name) {
  return MapFunc({{Side::kR, r_attr, wr}, {Side::kT, t_attr, wt}}, c,
                 Transform::kIdentity, std::move(name));
}

MapFunc MapFunc::Passthrough(Side side, int attr, std::string name) {
  return MapFunc({{side, attr, 1.0}}, 0.0, Transform::kIdentity,
                 std::move(name));
}

MapSpec MapSpec::PairwiseSum(int dims) {
  std::vector<MapFunc> funcs;
  funcs.reserve(static_cast<size_t>(dims));
  for (int j = 0; j < dims; ++j) {
    funcs.push_back(MapFunc::Sum(j, j, "x" + std::to_string(j)));
  }
  return MapSpec(std::move(funcs));
}

void MapSpec::Eval(std::span<const double> r_attrs,
                   std::span<const double> t_attrs, double* out) const {
  for (size_t j = 0; j < funcs_.size(); ++j) {
    out[j] = funcs_[j].Eval(r_attrs, t_attrs);
  }
}

void MapSpec::ContributionVector(Side side, std::span<const double> attrs,
                                 double* out) const {
  for (size_t j = 0; j < funcs_.size(); ++j) {
    out[j] = funcs_[j].Contribution(side, attrs);
  }
}

void MapSpec::Combine(const double* r_contrib, const double* t_contrib,
                      double* out) const {
  for (size_t j = 0; j < funcs_.size(); ++j) {
    out[j] = funcs_[j].Combine(r_contrib[j], t_contrib[j]);
  }
}

Status MapSpec::Validate(int r_width, int t_width) const {
  if (funcs_.empty()) {
    return Status::InvalidArgument("MapSpec must have at least one function");
  }
  for (const MapFunc& f : funcs_) {
    PROGXE_RETURN_NOT_OK(f.Validate(r_width, t_width));
  }
  return Status::OK();
}

}  // namespace progxe
