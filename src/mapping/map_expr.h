// Mapping-function framework (Section II-B).
//
// The Map operator mu[F, X] applies k mapping functions to each join result,
// producing a k-dimensional output object. The paper's mapping functions
// combine attributes *across* the two sources (e.g. Q1's
// tCost = R.uPrice + T.uShipCost, delay = 2*R.manTime + T.shipTime), so each
// function here is a *separable* expression
//
//     f_j(r, t) = transform( g_j(r) + h_j(t) + c_j )
//
// where g_j and h_j are linear combinations of the R-side and T-side
// attributes and `transform` is a strictly increasing unary function.
// Separability gives each source tuple a well-defined per-function
// *contribution* value, which is what makes output-space look-ahead,
// push-through pruning and SSMJ's source-level reasoning sound in the
// presence of mapping functions.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "mapping/interval.h"

namespace progxe {

/// Which source a term reads from.
enum class Side : uint8_t { kR, kT };

/// One weighted attribute reference: weight * side.attrs[attr_index].
struct MapTerm {
  Side side = Side::kR;
  int attr_index = 0;
  double weight = 1.0;
};

/// Strictly increasing unary transform applied after the linear combination.
/// Strict monotonicity preserves dominance relationships, which the engine
/// relies on for all bound propagation — and it must hold *in floating
/// point* over the attribute range, not just mathematically: a transform
/// that saturates to a constant (e.g. 1 - e^-v for large v) would collapse
/// distinct inputs to equal outputs and make source-side pruning unsound.
/// kSaturating therefore uses the rational curve v / (1 + v), whose doubles
/// remain distinguishable across realistic value spreads.
enum class Transform : uint8_t { kIdentity, kLog1p, kSqrt, kSaturating };

/// Applies a transform to a scalar.
double ApplyTransform(Transform t, double v);

/// Applies a transform to an interval (monotone image).
Interval ApplyTransform(Transform t, const Interval& iv);

/// One mapping function f_j.
class MapFunc {
 public:
  MapFunc() = default;
  MapFunc(std::vector<MapTerm> terms, double constant = 0.0,
          Transform transform = Transform::kIdentity, std::string name = "")
      : terms_(std::move(terms)),
        constant_(constant),
        transform_(transform),
        name_(std::move(name)) {}

  /// f(r, t) for concrete attribute vectors.
  double Eval(std::span<const double> r_attrs,
              std::span<const double> t_attrs) const;

  /// The source-side partial contribution g(r) (or h(t)): the linear part
  /// restricted to `side`'s terms. The R side also absorbs the constant so
  /// that Eval == transform(RContribution + TContribution).
  double Contribution(Side side, std::span<const double> attrs) const;

  /// Interval image of the side contribution over an attribute box.
  Interval ContributionBounds(Side side,
                              std::span<const Interval> attr_bounds) const;

  /// Combines two side-contribution values into the final output value.
  double Combine(double r_contrib, double t_contrib) const {
    return ApplyTransform(transform_, r_contrib + t_contrib);
  }

  /// Combines contribution intervals into an output-value interval.
  Interval CombineBounds(const Interval& r_contrib,
                         const Interval& t_contrib) const {
    return ApplyTransform(transform_, r_contrib + t_contrib);
  }

  const std::vector<MapTerm>& terms() const { return terms_; }
  double constant() const { return constant_; }
  Transform transform() const { return transform_; }
  const std::string& name() const { return name_; }

  /// Validates attribute indices against the source widths.
  Status Validate(int r_width, int t_width) const;

  std::string ToString() const;

  // --- Convenience builders -------------------------------------------------

  /// side.attrs[i] + other_side.attrs[j] (the paper's canonical map).
  static MapFunc Sum(int r_attr, int t_attr, std::string name = "");

  /// wr * R[i] + wt * T[j] + c.
  static MapFunc WeightedSum(double wr, int r_attr, double wt, int t_attr,
                             double c = 0.0, std::string name = "");

  /// Pass-through of a single source attribute.
  static MapFunc Passthrough(Side side, int attr, std::string name = "");

 private:
  std::vector<MapTerm> terms_;
  double constant_ = 0.0;
  Transform transform_ = Transform::kIdentity;
  std::string name_;
};

/// The full map specification F = {f_1 ... f_k}.
class MapSpec {
 public:
  MapSpec() = default;
  explicit MapSpec(std::vector<MapFunc> funcs) : funcs_(std::move(funcs)) {}

  int output_dimensions() const { return static_cast<int>(funcs_.size()); }
  const MapFunc& func(int j) const { return funcs_[static_cast<size_t>(j)]; }
  const std::vector<MapFunc>& funcs() const { return funcs_; }

  /// d-dimensional identity-style spec: output j = R[j] + T[j]
  /// (the paper's experimental mapping, Section VI-A).
  static MapSpec PairwiseSum(int dims);

  /// Evaluates all functions into `out[0..k)`.
  void Eval(std::span<const double> r_attrs, std::span<const double> t_attrs,
            double* out) const;

  /// Computes a source tuple's k-dimensional contribution vector.
  void ContributionVector(Side side, std::span<const double> attrs,
                          double* out) const;

  /// Combines two contribution vectors into the mapped output vector.
  void Combine(const double* r_contrib, const double* t_contrib,
               double* out) const;

  Status Validate(int r_width, int t_width) const;

 private:
  std::vector<MapFunc> funcs_;
};

}  // namespace progxe
