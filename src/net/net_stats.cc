#include "net/net_stats.h"

#include <atomic>
#include <vector>

#include "obs/metrics.h"

namespace progxe {

namespace {

struct NetTotals {
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> bytes_received{0};
  std::atomic<uint64_t> frames_sent{0};
  std::atomic<uint64_t> frames_received{0};
  std::atomic<uint64_t> rtt_count{0};
  std::atomic<uint64_t> rtt_sum_us{0};
  std::atomic<uint64_t> circuits_opened{0};
  std::atomic<int64_t> open_circuits{0};
  std::atomic<uint64_t> rtt_us_log2[kNetRttBuckets]{};
};

NetTotals& Totals() {
  static NetTotals* totals = new NetTotals();  // never destroyed
  return *totals;
}

}  // namespace

size_t NetRttBucket(uint64_t us) {
  size_t bucket = 0;
  while (bucket + 1 < kNetRttBuckets && us >= (uint64_t{1} << bucket)) {
    ++bucket;
  }
  return bucket;
}

void NetRecordSend(uint64_t bytes) {
  NetTotals& t = Totals();
  t.bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
  t.frames_sent.fetch_add(1, std::memory_order_relaxed);
}

void NetRecordRecv(uint64_t bytes) {
  NetTotals& t = Totals();
  t.bytes_received.fetch_add(bytes, std::memory_order_relaxed);
  t.frames_received.fetch_add(1, std::memory_order_relaxed);
}

void NetRecordRtt(uint64_t us) {
  NetTotals& t = Totals();
  t.rtt_count.fetch_add(1, std::memory_order_relaxed);
  t.rtt_sum_us.fetch_add(us, std::memory_order_relaxed);
  t.rtt_us_log2[NetRttBucket(us)].fetch_add(1, std::memory_order_relaxed);
}

void NetRecordCircuitOpened() {
  NetTotals& t = Totals();
  t.circuits_opened.fetch_add(1, std::memory_order_relaxed);
  t.open_circuits.fetch_add(1, std::memory_order_relaxed);
}

void NetRecordCircuitClosed() {
  Totals().open_circuits.fetch_sub(1, std::memory_order_relaxed);
}

NetStatsSnapshot SnapshotNetStats() {
  const NetTotals& t = Totals();
  NetStatsSnapshot s;
  s.bytes_sent = t.bytes_sent.load(std::memory_order_relaxed);
  s.bytes_received = t.bytes_received.load(std::memory_order_relaxed);
  s.frames_sent = t.frames_sent.load(std::memory_order_relaxed);
  s.frames_received = t.frames_received.load(std::memory_order_relaxed);
  s.rtt_count = t.rtt_count.load(std::memory_order_relaxed);
  s.rtt_sum_us =
      static_cast<double>(t.rtt_sum_us.load(std::memory_order_relaxed));
  s.circuits_opened = t.circuits_opened.load(std::memory_order_relaxed);
  s.open_circuits = t.open_circuits.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kNetRttBuckets; ++i) {
    s.rtt_us_log2[i] = t.rtt_us_log2[i].load(std::memory_order_relaxed);
  }
  return s;
}

uint64_t NetStatsSnapshot::RttQuantileUs(double q) const {
  if (rtt_count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(rtt_count - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNetRttBuckets; ++i) {
    seen += rtt_us_log2[i];
    if (seen > rank) return uint64_t{1} << i;
  }
  return uint64_t{1} << (kNetRttBuckets - 1);
}

void FoldNetStats(MetricsRegistry* reg) {
  const NetStatsSnapshot s = SnapshotNetStats();
  reg->GetCounter("progxe_net_bytes_sent_total",
                  "Transport bytes sent (frame headers + payloads)")
      ->Set(static_cast<double>(s.bytes_sent));
  reg->GetCounter("progxe_net_bytes_received_total",
                  "Transport bytes received (frame headers + payloads)")
      ->Set(static_cast<double>(s.bytes_received));
  reg->GetCounter("progxe_net_frames_sent_total", "Wire frames sent")
      ->Set(static_cast<double>(s.frames_sent));
  reg->GetCounter("progxe_net_frames_received_total", "Wire frames received")
      ->Set(static_cast<double>(s.frames_received));
  reg->GetCounter("progxe_net_circuit_opened_total",
                  "Endpoint circuit-breaker open episodes")
      ->Set(static_cast<double>(s.circuits_opened));
  reg->GetGauge("progxe_net_endpoint_open_circuits",
                "Worker endpoints currently sidelined by the circuit breaker")
      ->Set(static_cast<double>(s.open_circuits));
  // Upper bucket edges in seconds: 1us, 2us, ... 2^17us; the last
  // (open-ended) histogram slot becomes the implicit +Inf bucket.
  std::vector<double> bounds;
  bounds.reserve(kNetRttBuckets - 1);
  for (size_t i = 0; i + 1 < kNetRttBuckets; ++i) {
    bounds.push_back(static_cast<double>(uint64_t{1} << i) * 1e-6);
  }
  HistogramMetric* rtt = reg->GetHistogram(
      "progxe_net_rtt_seconds", "Coordinator RPC round-trip time",
      std::move(bounds));
  std::vector<uint64_t> counts(s.rtt_us_log2.begin(), s.rtt_us_log2.end());
  rtt->SetCounts(counts, s.rtt_sum_us * 1e-6);
}

}  // namespace progxe
