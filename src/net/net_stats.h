// Process-wide transport counters for the distributed shard layer.
//
// Every frame the coordinator or a worker sends/receives is tallied here
// (bytes + frames, relaxed atomics), and every coordinator RPC records its
// round-trip time into a log2-microsecond histogram — the same bucket
// scheme as the scheduler's slice-latency histogram, so both read the same
// way. SnapshotNetStats() takes a consistent-enough point-in-time copy for
// SchedulerStats and the server's `stats` line; FoldNetStats() folds the
// snapshot into the MetricsRegistry as `progxe_net_*` Prometheus metrics.
//
// The totals are process-wide by design: a coordinator process reports its
// client-side traffic, a worker process its serving-side traffic, and a
// loopback test both — which is exactly what its operator wants on a
// per-process scrape.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace progxe {

class MetricsRegistry;  // obs/metrics.h

/// RTT histogram resolution: bucket 0 counts sub-microsecond round trips,
/// bucket i (i >= 1) counts RTTs in [2^(i-1), 2^i) microseconds, and the
/// last bucket is open-ended from 2^17 us (~0.13 s) up.
inline constexpr std::size_t kNetRttBuckets = 19;

/// Histogram bucket for an RTT in microseconds.
std::size_t NetRttBucket(uint64_t us);

/// Tallies one sent frame (header + payload bytes on the wire).
void NetRecordSend(uint64_t bytes);
/// Tallies one received frame.
void NetRecordRecv(uint64_t bytes);
/// Records one coordinator RPC round trip.
void NetRecordRtt(uint64_t us);
/// Endpoint circuit-breaker transitions (net/worker_pool.h): Opened bumps
/// the open-circuits gauge and the opened-total counter; Closed drops the
/// gauge (a pool closes its still-open circuits on destruction).
void NetRecordCircuitOpened();
void NetRecordCircuitClosed();

/// Point-in-time copy of the process totals.
struct NetStatsSnapshot {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
  uint64_t rtt_count = 0;
  double rtt_sum_us = 0.0;
  uint64_t circuits_opened = 0;  ///< Circuit-open episodes (monotone).
  int64_t open_circuits = 0;     ///< Currently open endpoint circuits.
  std::array<uint64_t, kNetRttBuckets> rtt_us_log2{};

  /// Upper edge (exclusive, microseconds) of the bucket holding the
  /// q-quantile RTT — a conservative p50/p99 readout at log2 resolution.
  /// Returns 0 when no RPC completed yet.
  uint64_t RttQuantileUs(double q) const;
};

NetStatsSnapshot SnapshotNetStats();

/// Folds the current totals into `progxe_net_bytes_sent_total`,
/// `progxe_net_bytes_received_total`, `progxe_net_frames_*_total` and the
/// `progxe_net_rtt_seconds` histogram.
void FoldNetStats(MetricsRegistry* reg);

}  // namespace progxe
