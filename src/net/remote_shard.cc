#include "net/remote_shard.h"

#include <utility>

#include "common/macros.h"
#include "obs/trace.h"

namespace progxe {

RemoteShardStream::RemoteShardStream(std::shared_ptr<WorkerPool> pool,
                                     std::string endpoint, int shard_index)
    : pool_(std::move(pool)),
      endpoint_(std::move(endpoint)),
      shard_index_(shard_index) {}

Result<std::unique_ptr<RemoteShardStream>> RemoteShardStream::Open(
    std::shared_ptr<WorkerPool> pool, const std::string& endpoint,
    int shard_index, const Relation& r, const Relation& t,
    const MapSpec& map, const Preference& pref,
    const ProgXeOptions& options) {
  std::unique_ptr<RemoteShardStream> stream(
      new RemoteShardStream(pool, endpoint, shard_index));
  PROGXE_ASSIGN_OR_RETURN(stream->conn_, pool->Checkout(endpoint));

  std::string payload;
  WireWriter w(&payload);
  w.PutU32(static_cast<uint32_t>(shard_index));
  WriteOptions(options, &w);
  WriteMapSpec(map, &w);
  WritePreference(pref, &w);
  WriteRelation(r, &w);
  WriteRelation(t, &w);

  std::string reply;
  PROGXE_RETURN_NOT_OK(stream->conn_->Call(MsgType::kOpenShard, payload,
                                           MsgType::kOpenResult, &reply,
                                           pool->options().open_timeout));
  WireReader reader(reply);
  Status remote;
  PROGXE_RETURN_NOT_OK(ReadStatusPayload(&reader, &remote));
  if (!remote.ok()) {
    // Semantic open failure on the worker (validation / injected fault):
    // the link itself is fine, hand it back for reuse.
    pool->Return(std::move(stream->conn_));
    return remote;
  }
  PROGXE_RETURN_NOT_OK(
      ReadWatermark(&reader, &stream->has_bound_, &stream->bound_));
  PROGXE_RETURN_NOT_OK(ReadStats(&reader, &stream->stats_));
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in open_result payload");
  }
  return stream;
}

RemoteShardStream::~RemoteShardStream() { Close(); }

size_t RemoteShardStream::NextBatch(size_t max_results, size_t max_pairs,
                                    std::vector<ResultTuple>* out) {
  out->clear();
  if (closed_ || !status_.ok()) return 0;

  std::string payload;
  WireWriter w(&payload);
  w.PutU64(static_cast<uint64_t>(max_results));
  w.PutU64(static_cast<uint64_t>(max_pairs));

  std::string reply;
  {
    // The merge is blocked on this shard's candidates + watermark advance
    // for the whole round trip — the distributed analogue of a local pump.
    TraceSpan span(trace_cats::kNet, "net.wait_watermark");
    span.arg("shard", shard_index_);
    status_ = conn_->Call(MsgType::kPump, payload, MsgType::kPumpResult,
                          &reply, pool_->options().pump_timeout);
  }
  if (!status_.ok()) return 0;

  WireReader reader(reply);
  Status remote;
  status_ = ReadStatusPayload(&reader, &remote);
  if (!status_.ok()) return 0;
  if (!remote.ok()) {
    // The worker's session failed (e.g. an injected fault fired remotely).
    // Same observable as a local engine fault: no results this pump, error
    // in last_status(), pre-failure watermark and stats stay frozen.
    status_ = remote;
    return 0;
  }
  status_ = ReadResultBatch(&reader, out);
  if (!status_.ok()) return 0;
  status_ = ReadWatermark(&reader, &has_bound_, &bound_);
  if (!status_.ok()) return 0;
  status_ = ReadStats(&reader, &stats_);
  if (!status_.ok()) return 0;
  if (!reader.AtEnd()) {
    status_ =
        Status::InvalidArgument("trailing bytes in pump_result payload");
    out->clear();
    return 0;
  }
  return out->size();
}

void RemoteShardStream::Close() {
  if (closed_) return;
  closed_ = true;
  if (conn_ == nullptr) return;
  if (status_.ok() && conn_->healthy()) {
    std::string reply;
    Status st = conn_->Call(MsgType::kClose, {}, MsgType::kCloseAck, &reply,
                            pool_->options().pump_timeout);
    if (st.ok()) pool_->Return(std::move(conn_));
  }
  conn_.reset();  // broken links die here instead of rejoining the pool
}

bool RemoteShardStream::RemainingLowerBound(std::vector<double>* lo) const {
  if (!has_bound_) return false;
  *lo = bound_;
  return true;
}

}  // namespace progxe
