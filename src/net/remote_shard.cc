#include "net/remote_shard.h"

#include <utility>

#include "common/macros.h"
#include "obs/trace.h"

namespace progxe {

RemoteShardStream::RemoteShardStream(std::shared_ptr<WorkerPool> pool,
                                     std::string endpoint, int shard_index)
    : pool_(std::move(pool)),
      endpoint_(std::move(endpoint)),
      shard_index_(shard_index) {}

Result<std::unique_ptr<RemoteShardStream>> RemoteShardStream::Open(
    std::shared_ptr<WorkerPool> pool, const std::string& endpoint,
    int shard_index, const Relation& r, const Relation& t,
    const MapSpec& map, const Preference& pref,
    const ProgXeOptions& options, const SessionCheckpoint* resume) {
  std::unique_ptr<RemoteShardStream> stream(
      new RemoteShardStream(pool, endpoint, shard_index));
  PROGXE_ASSIGN_OR_RETURN(stream->conn_, pool->Checkout(endpoint));
  const bool v2 = stream->conn_->wire_version() >= 2;

  std::string payload;
  WireWriter w(&payload);
  w.PutU32(static_cast<uint32_t>(shard_index));
  WriteOptions(options, &w);
  WriteMapSpec(map, &w);
  WritePreference(pref, &w);
  WriteRelation(r, &w);
  WriteRelation(t, &w);
  if (v2) {
    // v2 resume group. On a v1 link (old worker) the checkpoint is dropped
    // and the retry degrades to the PR 6 full replay — same delivered set.
    w.PutU8(resume != nullptr ? 1 : 0);
    if (resume != nullptr) WriteCheckpoint(*resume, &w);
  }

  std::string reply;
  Status st = stream->conn_->Call(MsgType::kOpenShard, payload,
                                  MsgType::kOpenResult, &reply,
                                  pool->options().open_timeout);
  if (!st.ok()) {
    pool->ReportFailure(endpoint);
    return st;
  }
  WireReader reader(reply);
  Status remote;
  PROGXE_RETURN_NOT_OK(ReadStatusPayload(&reader, &remote));
  if (!remote.ok()) {
    // Semantic open failure on the worker (validation / injected fault):
    // the link itself is fine, hand it back for reuse.
    pool->Return(std::move(stream->conn_));
    return remote;
  }
  PROGXE_RETURN_NOT_OK(
      ReadWatermark(&reader, &stream->has_bound_, &stream->bound_));
  PROGXE_RETURN_NOT_OK(ReadStats(&reader, &stream->stats_));
  if (v2) {
    uint8_t resumed = 0;
    uint32_t regions_skipped = 0;
    uint64_t pairs_saved = 0;
    if (!reader.GetU8(&resumed) || !reader.GetU32(&regions_skipped) ||
        !reader.GetU64(&pairs_saved)) {
      return reader.status();
    }
    stream->resumed_ = resumed != 0;
    stream->replay_pairs_saved_ = stream->resumed_ ? pairs_saved : 0;
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in open_result payload");
  }
  pool->ReportSuccess(endpoint);
  return stream;
}

RemoteShardStream::~RemoteShardStream() { Close(); }

size_t RemoteShardStream::NextBatch(size_t max_results, size_t max_pairs,
                                    std::vector<ResultTuple>* out) {
  out->clear();
  if (closed_ || !status_.ok()) return 0;

  std::string payload;
  WireWriter w(&payload);
  w.PutU64(static_cast<uint64_t>(max_results));
  w.PutU64(static_cast<uint64_t>(max_pairs));

  std::string reply;
  {
    // The merge is blocked on this shard's candidates + watermark advance
    // for the whole round trip — the distributed analogue of a local pump.
    TraceSpan span(trace_cats::kNet, "net.wait_watermark");
    span.arg("shard", shard_index_);
    status_ = conn_->Call(MsgType::kPump, payload, MsgType::kPumpResult,
                          &reply, pool_->options().pump_timeout);
  }
  if (!status_.ok()) {
    pool_->ReportFailure(endpoint_);
    return 0;
  }

  WireReader reader(reply);
  Status remote;
  status_ = ReadStatusPayload(&reader, &remote);
  if (!status_.ok()) return 0;
  if (!remote.ok()) {
    // The worker's session failed (e.g. an injected fault fired remotely).
    // Same observable as a local engine fault: no results this pump, error
    // in last_status(), pre-failure watermark and stats stay frozen.
    status_ = remote;
    return 0;
  }
  status_ = ReadResultBatch(&reader, out);
  if (!status_.ok()) return 0;
  status_ = ReadWatermark(&reader, &has_bound_, &bound_);
  if (!status_.ok()) return 0;
  status_ = ReadStats(&reader, &stats_);
  if (!status_.ok()) return 0;
  if (conn_->wire_version() >= 2) {
    uint8_t has_checkpoint = 0;
    if (!reader.GetU8(&has_checkpoint)) {
      status_ = reader.status();
      out->clear();
      return 0;
    }
    if (has_checkpoint != 0) {
      status_ = ReadCheckpoint(&reader, &last_checkpoint_);
      if (!status_.ok()) {
        out->clear();
        return 0;
      }
      has_checkpoint_ = true;
    }
    // No checkpoint this pump (mid-region budget cut, result cap, or
    // exhaustion): keep the previous one — it is still a valid, if less
    // advanced, resume point.
  }
  if (!reader.AtEnd()) {
    status_ =
        Status::InvalidArgument("trailing bytes in pump_result payload");
    out->clear();
    return 0;
  }
  return out->size();
}

bool RemoteShardStream::ExportCheckpoint(SessionCheckpoint* out) {
  if (!has_checkpoint_) return false;
  *out = last_checkpoint_;
  return true;
}

void RemoteShardStream::Close() {
  if (closed_) return;
  closed_ = true;
  if (conn_ == nullptr) return;
  if (status_.ok() && conn_->healthy()) {
    std::string reply;
    Status st = conn_->Call(MsgType::kClose, {}, MsgType::kCloseAck, &reply,
                            pool_->options().pump_timeout);
    if (st.ok()) pool_->Return(std::move(conn_));
  }
  conn_.reset();  // broken links die here instead of rejoining the pool
}

bool RemoteShardStream::RemainingLowerBound(std::vector<double>* lo) const {
  if (!has_bound_) return false;
  *lo = bound_;
  return true;
}

}  // namespace progxe
