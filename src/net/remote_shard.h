// RemoteShardStream: a ShardEngine whose session runs in a shard-worker
// process.
//
// Open ships the shard assignment (options + map + preference + both
// relation slices) to a worker over a pooled connection; each NextBatch is
// one kPump RPC whose reply carries the worker's locally-final candidates,
// its RemainingLowerBound watermark and a full ProgXeStats snapshot. The
// coordinator caches the last watermark and stats, so the merge's release
// check and before/after pump deltas read exactly as they do for a local
// ProgXeSession — the seam is invisible above ShardEngine.
//
// Failures unify with the in-process fault model: a heartbeat-timeout or
// severed connection surfaces through last_status() as a retryable
// kUnavailable, which ShardedStream's quarantine/backoff/idempotent-replay
// machinery handles identically to an injected shard.next_batch fault. The
// retry re-opens on a (typically different) worker and re-ships the slice;
// prepared_inputs() is deliberately null for remote shards.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/worker_pool.h"
#include "shard/shard_engine.h"

namespace progxe {

class RemoteShardStream : public ShardEngine {
 public:
  /// Ships the assignment to the worker at `endpoint` and opens the remote
  /// session (the reply carries the prepare-phase stats + initial
  /// watermark). `options` must already carry the shard's fault_instance /
  /// seed; its coordinator-local pointers (faults, prepare_cache) do not
  /// travel. With `resume` set and a v2 link, the checkpoint travels in
  /// kOpenShard and the worker resumes past its skip-safe regions; on a v1
  /// link (old worker) the checkpoint is silently dropped — full replay,
  /// same delivered set. A worker that rejects the checkpoint as
  /// stale/corrupt also falls back to full replay and reports
  /// resumed() == false.
  static Result<std::unique_ptr<RemoteShardStream>> Open(
      std::shared_ptr<WorkerPool> pool, const std::string& endpoint,
      int shard_index, const Relation& r, const Relation& t,
      const MapSpec& map, const Preference& pref,
      const ProgXeOptions& options,
      const SessionCheckpoint* resume = nullptr);

  ~RemoteShardStream() override;

  size_t NextBatch(size_t max_results, size_t max_pairs,
                   std::vector<ResultTuple>* out) override;
  /// Clean close returns the connection to the pool for reuse; a failed
  /// link is dropped. Idempotent.
  void Close() override;
  const ProgXeStats& stats() const override { return stats_; }
  Status last_status() const override { return status_; }
  bool RemainingLowerBound(std::vector<double>* lo) const override;

  /// Answered from the checkpoint streamed with the last kPumpResult
  /// (v2 links only; v1 workers never send one).
  bool ExportCheckpoint(SessionCheckpoint* out) override;
  bool resumed() const override { return resumed_; }
  uint64_t replay_pairs_saved() const override { return replay_pairs_saved_; }

  const std::string& endpoint() const { return endpoint_; }

 private:
  RemoteShardStream(std::shared_ptr<WorkerPool> pool, std::string endpoint,
                    int shard_index);

  std::shared_ptr<WorkerPool> pool_;
  std::string endpoint_;
  int shard_index_;
  std::unique_ptr<WorkerConnection> conn_;

  ProgXeStats stats_;        ///< last snapshot streamed from the worker
  Status status_;            ///< engine/transport health
  bool has_bound_ = false;   ///< last watermark: shard can still emit
  std::vector<double> bound_;
  bool closed_ = false;

  // Resume state (v2): whether the worker actually resumed from the
  // shipped checkpoint, the pairs that saved, and the freshest checkpoint
  // it streamed back.
  bool resumed_ = false;
  uint64_t replay_pairs_saved_ = 0;
  bool has_checkpoint_ = false;
  SessionCheckpoint last_checkpoint_;
};

}  // namespace progxe
