#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <charconv>
#include <cstring>

#include "common/fault_injection.h"
#include "common/macros.h"
#include "net/net_stats.h"
#include "obs/trace.h"

namespace progxe {

namespace {

/// Test override for the transport chaos sites; null falls through to the
/// ambient PROGXE_FAULT_SITES injector.
std::atomic<FaultInjector*> g_net_faults{nullptr};

FaultInjector* NetFaults() {
  FaultInjector* injector = g_net_faults.load(std::memory_order_acquire);
  return injector != nullptr ? injector : FaultInjector::FromEnv();
}

Status Errno(const char* what) {
  return Status::Unavailable(std::string(what) + ": " +
                             std::strerror(errno));
}

/// Remaining milliseconds until `deadline` (clamped at 0); the poll()
/// timeout argument.
int MsUntil(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > 1'000'000'000) return 1'000'000'000;
  return static_cast<int>(left.count());
}

/// Reads exactly `n` bytes or fails; `deadline` bounds the whole read.
Status RecvAll(int fd, char* buf, size_t n,
               std::chrono::steady_clock::time_point deadline) {
  size_t done = 0;
  while (done < n) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int timeout = MsUntil(deadline);
    if (timeout == 0) {
      return Status::Unavailable("net recv deadline missed (peer silent)");
    }
    const int rv = ::poll(&pfd, 1, timeout);
    if (rv < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (rv == 0) {
      return Status::Unavailable("net recv deadline missed (peer silent)");
    }
    const ssize_t got = ::recv(fd, buf + done, n - done, 0);
    if (got == 0) return Status::Unavailable("connection closed by peer");
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    done += static_cast<size_t>(got);
  }
  return Status::OK();
}

Status SendAll(int fd, const char* buf, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t sent =
        ::send(fd, buf + done, n - done, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    done += static_cast<size_t>(sent);
  }
  return Status::OK();
}

}  // namespace

Status ParseEndpoint(std::string_view endpoint, std::string* host,
                     int* port) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string_view::npos) {
    return Status::InvalidArgument("worker endpoint must be host:port, got '" +
                                   std::string(endpoint) + "'");
  }
  const std::string_view port_sv = endpoint.substr(colon + 1);
  int p = 0;
  const auto [ptr, ec] =
      std::from_chars(port_sv.data(), port_sv.data() + port_sv.size(), p);
  if (ec != std::errc() || ptr != port_sv.data() + port_sv.size() || p <= 0 ||
      p > 65535) {
    return Status::InvalidArgument("invalid worker port in '" +
                                   std::string(endpoint) + "'");
  }
  *host = std::string(endpoint.substr(0, colon));
  if (host->empty()) *host = "127.0.0.1";
  *port = p;
  return Status::OK();
}

namespace {

/// One non-blocking connect attempt against a resolved address, bounded by
/// `deadline`: connect in O_NONBLOCK, poll for writability, then read
/// SO_ERROR for the real outcome. Returns the connected fd (restored to
/// blocking — frame I/O does its own poll-based deadlines) or a Status.
Result<int> ConnectOne(const struct addrinfo& ai, const std::string& endpoint,
                       std::chrono::steady_clock::time_point deadline) {
  const int fd = ::socket(ai.ai_family, ai.ai_socktype, ai.ai_protocol);
  if (fd < 0) return Errno("socket");
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    Status st = Errno("fcntl");
    CloseFd(fd);
    return st;
  }
  if (::connect(fd, ai.ai_addr, ai.ai_addrlen) != 0) {
    if (errno != EINPROGRESS) {
      Status st = Status::Unavailable("connect to " + endpoint + " failed: " +
                                      std::strerror(errno));
      CloseFd(fd);
      return st;
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    while (true) {
      const int timeout = MsUntil(deadline);
      const int rv = timeout == 0 ? 0 : ::poll(&pfd, 1, timeout);
      if (rv < 0) {
        if (errno == EINTR) continue;
        Status st = Errno("poll");
        CloseFd(fd);
        return st;
      }
      if (rv == 0) {
        CloseFd(fd);
        return Status::Unavailable("connect to " + endpoint + " timed out");
      }
      break;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      Status st = Status::Unavailable("connect to " + endpoint + " failed: " +
                                      std::strerror(err != 0 ? err : errno));
      CloseFd(fd);
      return st;
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) {
    Status st = Errno("fcntl");
    CloseFd(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Result<int> DialTcp(const std::string& endpoint,
                    std::chrono::milliseconds timeout) {
  std::string host;
  int port = 0;
  PROGXE_RETURN_NOT_OK(ParseEndpoint(endpoint, &host, &port));
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  // getaddrinfo accepts numeric IPv4 literals and resolves hostnames, so
  // "worker-3:9000" works as well as "10.0.0.3:9000".
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0) {
    return Status::Unavailable("cannot resolve worker host '" + host +
                               "': " + ::gai_strerror(rc));
  }
  Status last = Status::Unavailable("no usable address for '" + host + "'");
  for (const struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Result<int> fd = ConnectOne(*ai, endpoint, deadline);
    if (fd.ok()) {
      ::freeaddrinfo(res);
      return fd;
    }
    last = fd.status();
  }
  ::freeaddrinfo(res);
  return last;
}

Result<ListenSocket> ListenTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Errno("bind");
    CloseFd(fd);
    return st;
  }
  if (::listen(fd, 64) != 0) {
    Status st = Errno("listen");
    CloseFd(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    Status st = Errno("getsockname");
    CloseFd(fd);
    return st;
  }
  ListenSocket out;
  out.fd = fd;
  out.port = static_cast<int>(ntohs(addr.sin_port));
  return out;
}

Result<int> AcceptTcp(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

void SetNetFaultInjectorForTest(FaultInjector* injector) {
  g_net_faults.store(injector, std::memory_order_release);
}

Status SendFrame(int fd, MsgType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds kMaxFramePayload");
  }
  TraceSpan span(trace_cats::kNet, "net.send");
  span.arg("bytes", static_cast<int64_t>(payload.size() + 5));
  char header[5];
  uint32_t len = static_cast<uint32_t>(payload.size());
  FaultInjector* faults = NetFaults();
  // net.frame: corrupt the length prefix past kMaxFramePayload. The frame
  // still goes out whole — it is the *receiver* that detects the corrupt
  // link (oversized prefix -> kUnavailable) and drops it.
  const Status frame_fault = MaybeInjectFault(faults, fault_sites::kNetFrame);
  if (PROGXE_PREDICT_FALSE(!frame_fault.ok())) {
    len |= 0x7f000000u;
  }
  header[0] = static_cast<char>(len & 0xff);
  header[1] = static_cast<char>((len >> 8) & 0xff);
  header[2] = static_cast<char>((len >> 16) & 0xff);
  header[3] = static_cast<char>((len >> 24) & 0xff);
  header[4] = static_cast<char>(type);
  // net.send: torn write — a partial header goes out, then the call fails
  // as if the connection reset mid-send. The caller poisons and drops the
  // link; the peer sees a short read followed by EOF.
  Status send_fault = MaybeInjectFault(faults, fault_sites::kNetSend);
  if (PROGXE_PREDICT_FALSE(!send_fault.ok())) {
    (void)SendAll(fd, header, 3);
    return send_fault;
  }
  PROGXE_RETURN_NOT_OK(SendAll(fd, header, sizeof(header)));
  if (!payload.empty()) {
    PROGXE_RETURN_NOT_OK(SendAll(fd, payload.data(), payload.size()));
  }
  NetRecordSend(payload.size() + sizeof(header));
  return Status::OK();
}

Status RecvFrame(int fd, MsgType* type, std::string* payload,
                 std::chrono::milliseconds deadline) {
  TraceSpan span(trace_cats::kNet, "net.recv");
  // net.recv: the read fails before draining the peer's frame, as a reset
  // or short read would. The caller drops the link (undrained bytes make it
  // unusable for further framing either way).
  Status recv_fault = MaybeInjectFault(NetFaults(), fault_sites::kNetRecv);
  if (PROGXE_PREDICT_FALSE(!recv_fault.ok())) return recv_fault;
  const auto until = std::chrono::steady_clock::now() + deadline;
  char header[5];
  PROGXE_RETURN_NOT_OK(RecvAll(fd, header, sizeof(header), until));
  const uint32_t len = static_cast<uint32_t>(static_cast<uint8_t>(header[0])) |
                       static_cast<uint32_t>(static_cast<uint8_t>(header[1]))
                           << 8 |
                       static_cast<uint32_t>(static_cast<uint8_t>(header[2]))
                           << 16 |
                       static_cast<uint32_t>(static_cast<uint8_t>(header[3]))
                           << 24;
  if (len > kMaxFramePayload) {
    // A corrupt link, not a caller bug: kUnavailable so the failure rides
    // the quarantine/retry path like any other transport fault (the caller
    // still drops the link — it cannot be re-framed).
    return Status::Unavailable(
        "frame length prefix exceeds kMaxFramePayload (corrupt link)");
  }
  *type = static_cast<MsgType>(static_cast<uint8_t>(header[4]));
  payload->resize(len);
  if (len > 0) {
    PROGXE_RETURN_NOT_OK(RecvAll(fd, payload->data(), len, until));
  }
  NetRecordRecv(static_cast<uint64_t>(len) + sizeof(header));
  span.arg("bytes", static_cast<int64_t>(len + 5));
  return Status::OK();
}

}  // namespace progxe
