// Blocking TCP helpers under the wire protocol: dial/listen plus deadline-
// bounded frame I/O.
//
// Everything here is plain POSIX sockets — no event loop, no extra threads.
// Frame reads honor a wall-clock deadline via poll(), so a vanished peer
// surfaces as Status::Unavailable ("deadline missed") instead of a hang;
// that synthesized kUnavailable is precisely what rides the sharded
// stream's existing quarantine/retry recovery path. All frame traffic is
// tallied into the process-wide net totals (net/net_stats.h) and wrapped in
// `net.send` / `net.recv` trace spans.
#pragma once

#include <chrono>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/wire.h"

namespace progxe {

/// Splits "host:port"; fails on a missing/invalid port. A missing host
/// ("":port form) dials loopback.
Status ParseEndpoint(std::string_view endpoint, std::string* host, int* port);

/// Connects to "host:port" with a bounded connect timeout (non-blocking
/// connect + poll, so the bound holds on every platform). The host may be
/// an IPv4 literal or a hostname (resolved via getaddrinfo). Returns the
/// connected fd (blocking mode, TCP_NODELAY set).
Result<int> DialTcp(const std::string& endpoint,
                    std::chrono::milliseconds timeout);

/// A bound, listening TCP socket on loopback-reachable INADDR_ANY.
struct ListenSocket {
  int fd = -1;
  int port = 0;  ///< The actually-bound port (resolves a requested port 0).
};

/// Listens on `port` (0 = kernel-assigned ephemeral port, reported back).
Result<ListenSocket> ListenTcp(int port);

/// Accepts one connection; blocks until a peer arrives or the listen fd is
/// shut down (then kUnavailable).
Result<int> AcceptTcp(int listen_fd);

/// Closes an fd if open (idempotent on -1).
void CloseFd(int fd);

/// Sends one complete frame ([u32 len][u8 type][payload]).
Status SendFrame(int fd, MsgType type, std::string_view payload);

/// Receives one complete frame into `*payload` within `deadline` from now.
/// Deadline expiry, peer EOF, connection errors and an oversized length
/// prefix (a corrupt link) all return kUnavailable — every transport-level
/// failure is retryable through the quarantine path; the caller must drop
/// the link either way.
Status RecvFrame(int fd, MsgType* type, std::string* payload,
                 std::chrono::milliseconds deadline);

class FaultInjector;

/// Overrides the ambient (PROGXE_FAULT_SITES) injector consulted by the
/// `net.send` / `net.recv` / `net.frame` chaos sites inside
/// SendFrame/RecvFrame. Tests install a seeded injector, run a loopback
/// exchange under chaos, then reset with nullptr. The pointer must outlive
/// its installation; process-wide, not thread-local.
void SetNetFaultInjectorForTest(FaultInjector* injector);

}  // namespace progxe
