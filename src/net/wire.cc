#include "net/wire.h"

#include <cstdint>
#include <cstring>
#include <utility>

#include "common/macros.h"

namespace progxe {

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kHello:
      return "hello";
    case MsgType::kHelloAck:
      return "hello_ack";
    case MsgType::kOpenShard:
      return "open_shard";
    case MsgType::kOpenResult:
      return "open_result";
    case MsgType::kPump:
      return "pump";
    case MsgType::kPumpResult:
      return "pump_result";
    case MsgType::kHeartbeat:
      return "heartbeat";
    case MsgType::kClose:
      return "close";
    case MsgType::kCloseAck:
      return "close_ack";
    case MsgType::kPing:
      return "ping";
    case MsgType::kPong:
      return "pong";
    case MsgType::kError:
      return "error";
  }
  return "unknown";
}

// --- WireWriter ------------------------------------------------------------

void WireWriter::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v & 0xff));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void WireWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    PutU8(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    PutU8(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_->append(s.data(), s.size());
}

void WireWriter::PutDoubles(const std::vector<double>& v) {
  PutU32(static_cast<uint32_t>(v.size()));
  for (double d : v) PutDouble(d);
}

// --- WireReader ------------------------------------------------------------

bool WireReader::Need(size_t n) {
  if (!status_.ok()) return false;
  if (data_.size() - pos_ < n) {
    status_ = Status::InvalidArgument("wire payload truncated");
    return false;
  }
  return true;
}

void WireReader::Fail(std::string msg) {
  if (status_.ok()) status_ = Status::InvalidArgument(std::move(msg));
}

bool WireReader::GetU8(uint8_t* v) {
  if (!Need(1)) return false;
  *v = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool WireReader::GetU16(uint16_t* v) {
  if (!Need(2)) return false;
  uint16_t x = 0;
  for (int i = 0; i < 2; ++i) {
    x |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  *v = x;
  return true;
}

bool WireReader::GetU32(uint32_t* v) {
  if (!Need(4)) return false;
  uint32_t x = 0;
  for (int i = 0; i < 4; ++i) {
    x |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  *v = x;
  return true;
}

bool WireReader::GetU64(uint64_t* v) {
  if (!Need(8)) return false;
  uint64_t x = 0;
  for (int i = 0; i < 8; ++i) {
    x |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  *v = x;
  return true;
}

bool WireReader::GetI64(int64_t* v) {
  uint64_t u;
  if (!GetU64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool WireReader::GetDouble(double* v) {
  uint64_t bits;
  if (!GetU64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool WireReader::GetString(std::string* s) {
  uint32_t len;
  if (!GetU32(&len)) return false;
  if (!Need(len)) return false;
  s->assign(data_.data() + pos_, len);
  pos_ += len;
  return true;
}

bool WireReader::GetDoubles(std::vector<double>* v) {
  uint32_t count;
  if (!GetU32(&count)) return false;
  // The claimed count must fit the bytes actually present before any
  // allocation happens — a corrupted count otherwise drives a huge resize.
  if (!Need(static_cast<size_t>(count) * 8)) return false;
  v->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!GetDouble(&(*v)[i])) return false;
  }
  return true;
}

// --- Status ----------------------------------------------------------------

void WriteStatusPayload(const Status& status, WireWriter* w) {
  w->PutU8(static_cast<uint8_t>(status.code()));
  w->PutString(status.message());
}

Status ReadStatusPayload(WireReader* r, Status* out) {
  uint8_t code;
  std::string msg;
  if (!r->GetU8(&code) || !r->GetString(&msg)) return r->status();
  if (code > static_cast<uint8_t>(StatusCode::kCancelled)) {
    r->Fail("wire status carries an unknown code");
    return r->status();
  }
  *out = code == 0 ? Status::OK()
                   : Status(static_cast<StatusCode>(code), std::move(msg));
  return Status::OK();
}

// --- Relation --------------------------------------------------------------

namespace {
/// Keeps a corrupted attribute count from multiplying into a huge per-row
/// width; real schemas are a handful of attributes.
constexpr uint32_t kMaxWireAttributes = 4096;
}  // namespace

void WriteRelation(const Relation& rel, WireWriter* w) {
  const Schema& schema = rel.schema();
  w->PutU32(static_cast<uint32_t>(schema.num_attributes()));
  for (const std::string& name : schema.attribute_names()) w->PutString(name);
  w->PutString(schema.join_name());
  const size_t rows = rel.size();
  w->PutU64(rows);
  for (size_t i = 0; i < rows; ++i) {
    for (double v : rel.attrs(static_cast<RowId>(i))) w->PutDouble(v);
  }
  for (JoinKey key : rel.join_keys()) w->PutI64(key);
}

Status ReadRelation(WireReader* r, Relation* out) {
  uint32_t width;
  if (!r->GetU32(&width)) return r->status();
  if (width > kMaxWireAttributes) {
    r->Fail("wire relation claims an absurd attribute count");
    return r->status();
  }
  std::vector<std::string> names(width);
  for (uint32_t a = 0; a < width; ++a) {
    if (!r->GetString(&names[a])) return r->status();
  }
  std::string join_name;
  if (!r->GetString(&join_name)) return r->status();
  uint64_t rows;
  if (!r->GetU64(&rows)) return r->status();
  // Each row costs width doubles plus one join key: validate the claim
  // against the bytes present before reserving anything. Divide instead of
  // multiplying — `rows` is peer-controlled and rows * per_row can wrap
  // uint64, which would let an absurd count slip past the check.
  const uint64_t per_row = (static_cast<uint64_t>(width) + 1) * 8;
  if (rows > r->remaining() / per_row) {
    r->Fail("wire relation truncated (row count exceeds payload)");
    return r->status();
  }
  Relation rel(Schema(std::move(names), std::move(join_name)));
  rel.Reserve(rows);
  std::vector<double> attrs(width);
  std::vector<double> values;
  values.resize(static_cast<size_t>(rows) * width);
  for (size_t i = 0; i < values.size(); ++i) {
    if (!r->GetDouble(&values[i])) return r->status();
  }
  std::vector<JoinKey> keys(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    int64_t key;
    if (!r->GetI64(&key)) return r->status();
    keys[i] = key;
  }
  for (uint64_t i = 0; i < rows; ++i) {
    std::memcpy(attrs.data(), values.data() + i * width,
                width * sizeof(double));
    rel.Append(attrs, keys[i]);
  }
  *out = std::move(rel);
  return Status::OK();
}

// --- MapSpec ---------------------------------------------------------------

void WriteMapSpec(const MapSpec& spec, WireWriter* w) {
  w->PutU32(static_cast<uint32_t>(spec.funcs().size()));
  for (const MapFunc& f : spec.funcs()) {
    w->PutU32(static_cast<uint32_t>(f.terms().size()));
    for (const MapTerm& t : f.terms()) {
      w->PutU8(static_cast<uint8_t>(t.side));
      w->PutI64(t.attr_index);
      w->PutDouble(t.weight);
    }
    w->PutDouble(f.constant());
    w->PutU8(static_cast<uint8_t>(f.transform()));
    w->PutString(f.name());
  }
}

Status ReadMapSpec(WireReader* r, MapSpec* out) {
  uint32_t nfuncs;
  if (!r->GetU32(&nfuncs)) return r->status();
  if (nfuncs > kMaxWireAttributes) {
    r->Fail("wire map spec claims an absurd function count");
    return r->status();
  }
  std::vector<MapFunc> funcs;
  funcs.reserve(nfuncs);
  for (uint32_t j = 0; j < nfuncs; ++j) {
    uint32_t nterms;
    if (!r->GetU32(&nterms)) return r->status();
    if (nterms > kMaxWireAttributes) {
      r->Fail("wire map func claims an absurd term count");
      return r->status();
    }
    std::vector<MapTerm> terms(nterms);
    for (uint32_t i = 0; i < nterms; ++i) {
      uint8_t side;
      int64_t attr;
      if (!r->GetU8(&side) || !r->GetI64(&attr) ||
          !r->GetDouble(&terms[i].weight)) {
        return r->status();
      }
      if (side > static_cast<uint8_t>(Side::kT)) {
        r->Fail("wire map term carries an unknown side");
        return r->status();
      }
      terms[i].side = static_cast<Side>(side);
      terms[i].attr_index = static_cast<int>(attr);
    }
    double constant;
    uint8_t transform;
    std::string name;
    if (!r->GetDouble(&constant) || !r->GetU8(&transform) ||
        !r->GetString(&name)) {
      return r->status();
    }
    if (transform > static_cast<uint8_t>(Transform::kSaturating)) {
      r->Fail("wire map func carries an unknown transform");
      return r->status();
    }
    funcs.emplace_back(std::move(terms), constant,
                       static_cast<Transform>(transform), std::move(name));
  }
  *out = MapSpec(std::move(funcs));
  return Status::OK();
}

// --- Preference ------------------------------------------------------------

void WritePreference(const Preference& pref, WireWriter* w) {
  w->PutU32(static_cast<uint32_t>(pref.dimensions()));
  for (Direction d : pref.directions()) w->PutU8(static_cast<uint8_t>(d));
}

Status ReadPreference(WireReader* r, Preference* out) {
  uint32_t k;
  if (!r->GetU32(&k)) return r->status();
  if (k > kMaxWireAttributes) {
    r->Fail("wire preference claims an absurd dimensionality");
    return r->status();
  }
  std::vector<Direction> dirs(k);
  for (uint32_t i = 0; i < k; ++i) {
    uint8_t d;
    if (!r->GetU8(&d)) return r->status();
    if (d > static_cast<uint8_t>(Direction::kHighest)) {
      r->Fail("wire preference carries an unknown direction");
      return r->status();
    }
    dirs[i] = static_cast<Direction>(d);
  }
  *out = Preference(std::move(dirs));
  return Status::OK();
}

// --- ProgXeOptions ---------------------------------------------------------

void WriteOptions(const ProgXeOptions& options, WireWriter* w) {
  w->PutU8(static_cast<uint8_t>(options.ordering));
  w->PutU8(options.push_through ? 1 : 0);
  w->PutU8(static_cast<uint8_t>(options.partitioning));
  w->PutI64(options.input_cells_per_dim);
  w->PutI64(options.output_cells_per_dim);
  w->PutU8(static_cast<uint8_t>(options.signature_mode));
  w->PutU64(options.bloom_bits);
  w->PutI64(options.bloom_hashes);
  w->PutDouble(options.sigma_hint);
  w->PutU64(options.insert_batch_size);
  w->PutI64(options.num_threads);
  w->PutU64(options.seed);
  w->PutU64(options.max_regions_for_elgraph);
  w->PutI64(options.max_output_cells);
  w->PutI64(options.fault_instance);
  w->PutU64(options.max_results);
  // Refinement seed travels inline: it affects the regions_discarded_seed
  // counter, which the bit-identity contract covers.
  if (options.refinement_seed != nullptr) {
    w->PutU8(1);
    w->PutI64(options.refinement_seed->k);
    w->PutDoubles(options.refinement_seed->canonical);
  } else {
    w->PutU8(0);
  }
}

Status ReadOptions(WireReader* r, ProgXeOptions* out) {
  ProgXeOptions o;
  uint8_t ordering, push_through, partitioning, signature_mode;
  int64_t in_cpd, out_cpd, bloom_hashes, num_threads, max_output_cells,
      fault_instance;
  uint64_t bloom_bits, insert_batch, seed, max_regions, max_results;
  if (!r->GetU8(&ordering) || !r->GetU8(&push_through) ||
      !r->GetU8(&partitioning) || !r->GetI64(&in_cpd) ||
      !r->GetI64(&out_cpd) || !r->GetU8(&signature_mode) ||
      !r->GetU64(&bloom_bits) || !r->GetI64(&bloom_hashes) ||
      !r->GetDouble(&o.sigma_hint) || !r->GetU64(&insert_batch) ||
      !r->GetI64(&num_threads) || !r->GetU64(&seed) ||
      !r->GetU64(&max_regions) || !r->GetI64(&max_output_cells) ||
      !r->GetI64(&fault_instance) || !r->GetU64(&max_results)) {
    return r->status();
  }
  if (ordering > static_cast<uint8_t>(OrderingMode::kSequential) ||
      partitioning > static_cast<uint8_t>(PartitioningScheme::kKdTree) ||
      signature_mode > static_cast<uint8_t>(SignatureMode::kBloom)) {
    r->Fail("wire options carry an unknown enum value");
    return r->status();
  }
  o.ordering = static_cast<OrderingMode>(ordering);
  o.push_through = push_through != 0;
  o.partitioning = static_cast<PartitioningScheme>(partitioning);
  o.input_cells_per_dim = static_cast<int>(in_cpd);
  o.output_cells_per_dim = static_cast<int>(out_cpd);
  o.signature_mode = static_cast<SignatureMode>(signature_mode);
  o.bloom_bits = bloom_bits;
  o.bloom_hashes = static_cast<int>(bloom_hashes);
  o.insert_batch_size = insert_batch;
  o.num_threads = static_cast<int>(num_threads);
  o.seed = seed;
  o.max_regions_for_elgraph = max_regions;
  o.max_output_cells = max_output_cells;
  o.fault_instance = static_cast<int>(fault_instance);
  o.max_results = max_results;
  uint8_t has_seed;
  if (!r->GetU8(&has_seed)) return r->status();
  if (has_seed != 0) {
    auto refinement = std::make_shared<RefinementSeed>();
    int64_t k;
    if (!r->GetI64(&k) || !r->GetDoubles(&refinement->canonical)) {
      return r->status();
    }
    refinement->k = static_cast<int>(k);
    o.refinement_seed = std::move(refinement);
  }
  *out = std::move(o);
  return Status::OK();
}

// --- ProgXeStats -----------------------------------------------------------

void WriteStats(const ProgXeStats& s, WireWriter* w) {
  w->PutU64(s.r_rows);
  w->PutU64(s.t_rows);
  w->PutU64(s.r_rows_after_push_through);
  w->PutU64(s.t_rows_after_push_through);
  w->PutDouble(s.sigma_used);
  w->PutU64(s.partition_pairs_total);
  w->PutU64(s.partition_pairs_skipped);
  w->PutU64(s.regions_created);
  w->PutU64(s.regions_pruned_lookahead);
  w->PutU64(s.cells_marked_lookahead);
  w->PutU8(s.elgraph_disabled ? 1 : 0);
  w->PutU64(s.regions_processed);
  w->PutU64(s.regions_discarded_runtime);
  w->PutU64(s.regions_discarded_seed);
  w->PutU64(s.pq_reorderings);
  w->PutU64(s.join_pairs_generated);
  w->PutU64(s.tuples_discarded_marked);
  w->PutU64(s.tuples_discarded_frontier);
  w->PutU64(s.tuples_dominated_on_insert);
  w->PutU64(s.tuples_evicted);
  w->PutU64(s.dominance_comparisons);
  w->PutU64(s.results_emitted);
  w->PutU64(s.cells_flushed);
  w->PutU64(s.results_emitted_early);
}

Status ReadStats(WireReader* r, ProgXeStats* out) {
  ProgXeStats s;
  uint64_t u;
  uint8_t b;
  auto get_size = [&](size_t* field) {
    if (!r->GetU64(&u)) return false;
    *field = static_cast<size_t>(u);
    return true;
  };
  if (!get_size(&s.r_rows) || !get_size(&s.t_rows) ||
      !get_size(&s.r_rows_after_push_through) ||
      !get_size(&s.t_rows_after_push_through) ||
      !r->GetDouble(&s.sigma_used) || !get_size(&s.partition_pairs_total) ||
      !get_size(&s.partition_pairs_skipped) ||
      !get_size(&s.regions_created) ||
      !get_size(&s.regions_pruned_lookahead) ||
      !get_size(&s.cells_marked_lookahead) || !r->GetU8(&b)) {
    return r->status();
  }
  s.elgraph_disabled = b != 0;
  if (!get_size(&s.regions_processed) ||
      !get_size(&s.regions_discarded_runtime) ||
      !get_size(&s.regions_discarded_seed) || !get_size(&s.pq_reorderings) ||
      !r->GetU64(&s.join_pairs_generated) ||
      !r->GetU64(&s.tuples_discarded_marked) ||
      !r->GetU64(&s.tuples_discarded_frontier) ||
      !r->GetU64(&s.tuples_dominated_on_insert) ||
      !r->GetU64(&s.tuples_evicted) || !r->GetU64(&s.dominance_comparisons) ||
      !get_size(&s.results_emitted) || !get_size(&s.cells_flushed) ||
      !get_size(&s.results_emitted_early)) {
    return r->status();
  }
  *out = s;
  return Status::OK();
}

// --- Result batches --------------------------------------------------------

void WriteResultBatch(const std::vector<ResultTuple>& batch, int k,
                      WireWriter* w) {
  w->PutU32(static_cast<uint32_t>(k));
  w->PutU32(static_cast<uint32_t>(batch.size()));
  for (const ResultTuple& t : batch) {
    w->PutU32(t.r_id);
    w->PutU32(t.t_id);
    for (double v : t.values) w->PutDouble(v);
  }
}

Status ReadResultBatch(WireReader* r, std::vector<ResultTuple>* out) {
  uint32_t k, count;
  if (!r->GetU32(&k) || !r->GetU32(&count)) return r->status();
  if (k > kMaxWireAttributes) {
    r->Fail("wire result batch claims an absurd dimensionality");
    return r->status();
  }
  const uint64_t per_tuple = 8 + static_cast<uint64_t>(k) * 8;
  if (static_cast<uint64_t>(count) * per_tuple > r->remaining()) {
    r->Fail("wire result batch truncated (count exceeds payload)");
    return r->status();
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ResultTuple t;
    if (!r->GetU32(&t.r_id) || !r->GetU32(&t.t_id)) return r->status();
    t.values.resize(k);
    for (uint32_t j = 0; j < k; ++j) {
      if (!r->GetDouble(&t.values[j])) return r->status();
    }
    out->push_back(std::move(t));
  }
  return Status::OK();
}

// --- Watermarks ------------------------------------------------------------

void WriteWatermark(bool has_bound, const std::vector<double>& bound,
                    WireWriter* w) {
  w->PutU8(has_bound ? 1 : 0);
  if (has_bound) w->PutDoubles(bound);
}

Status ReadWatermark(WireReader* r, bool* has_bound,
                     std::vector<double>* bound) {
  uint8_t has;
  if (!r->GetU8(&has)) return r->status();
  *has_bound = has != 0;
  bound->clear();
  if (*has_bound && !r->GetDoubles(bound)) return r->status();
  return Status::OK();
}

// --- Resume checkpoints (v2) -----------------------------------------------

void WriteCheckpoint(const SessionCheckpoint& checkpoint, WireWriter* w) {
  w->PutU32(checkpoint.k);
  w->PutU64(checkpoint.frontier_epoch);
  w->PutU64(checkpoint.delivered);
  w->PutU64(checkpoint.region_count);
  w->PutU64(checkpoint.replay_pairs_saved);
  w->PutU32(static_cast<uint32_t>(checkpoint.skip_regions.size()));
  for (int32_t id : checkpoint.skip_regions) {
    w->PutU32(static_cast<uint32_t>(id));
  }
  WriteStats(checkpoint.stats, w);
}

Status ReadCheckpoint(WireReader* r, SessionCheckpoint* out) {
  SessionCheckpoint cp;
  uint32_t count = 0;
  if (!r->GetU32(&cp.k) || !r->GetU64(&cp.frontier_epoch) ||
      !r->GetU64(&cp.delivered) || !r->GetU64(&cp.region_count) ||
      !r->GetU64(&cp.replay_pairs_saved) || !r->GetU32(&count)) {
    return r->status();
  }
  if (static_cast<uint64_t>(count) * 4 > r->remaining()) {
    r->Fail("wire checkpoint truncated (skip count exceeds payload)");
    return r->status();
  }
  if (static_cast<uint64_t>(count) > cp.region_count) {
    r->Fail("wire checkpoint skip count exceeds its region count");
    return r->status();
  }
  cp.skip_regions.reserve(count);
  uint32_t prev = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t id;
    if (!r->GetU32(&id)) return r->status();
    if (id > static_cast<uint32_t>(INT32_MAX) || (i > 0 && id <= prev)) {
      r->Fail("wire checkpoint skip ids not strictly increasing");
      return r->status();
    }
    prev = id;
    cp.skip_regions.push_back(static_cast<int32_t>(id));
  }
  PROGXE_RETURN_NOT_OK(ReadStats(r, &cp.stats));
  *out = std::move(cp);
  return Status::OK();
}

}  // namespace progxe
