// Wire protocol of the distributed shard transport.
//
// Coordinator and shard workers speak a compact length-prefixed binary
// protocol over TCP: every message is one *frame*
//
//   [u32 payload_len][u8 type][payload bytes]        (little-endian)
//
// whose payload is a flat field sequence encoded by WireWriter and decoded
// by WireReader. Integers are fixed-width little-endian; doubles travel as
// their raw IEEE-754 bit pattern (bit-lossless, so a distributed run can be
// *bit-identical* to an in-process one); strings and vectors carry a u32
// length prefix. Decoding is fully bounds-checked: a truncated, oversized
// or corrupted payload yields a non-OK Status, never a crash or an
// allocation proportional to an attacker-controlled count (claimed element
// counts are validated against the bytes actually present first).
//
// Frame types (the session protocol is documented in
// docs/worker_protocol.md; keep it in sync):
//
//   kHello / kHelloAck     magic + version handshake, once per connection
//   kOpenShard             shard assignment: options + map + preference +
//                          both relation slices (-> one ProgXeSession)
//   kOpenResult            Status + initial watermark + prepare-phase stats
//   kPump                  budgeted NextBatch request (max_results/max_pairs)
//   kPumpResult            Status + candidate batch + watermark + stats
//   kHeartbeat             liveness signal during a long pump/open
//   kClose / kCloseAck     tear down the connection's session, keep the link
//   kPing / kPong          pool liveness probe
//   kError                 protocol-level failure (Status payload), link dies
//
// The watermark is the shard's RemainingLowerBound frontier corner: a u8
// has_bound flag plus k canonical doubles. has_bound == 0 means the shard
// is exhausted (nothing it may still emit), which is exactly the
// session-side RemainingLowerBound() == false condition the merge's
// release check consumes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "data/relation.h"
#include "mapping/map_expr.h"
#include "prefs/preference.h"
#include "progxe/checkpoint.h"
#include "progxe/config.h"

namespace progxe {

/// Connection handshake constants. Since v2 the handshake *negotiates*: the
/// client offers its version, the worker acks min(offer, own), and both
/// sides speak the acked version on that connection — so a v2 coordinator
/// interoperates with a v1 worker (and vice versa) by simply omitting the
/// v2-only field groups. A magic mismatch, or a version outside [1, offer],
/// still closes the connection before any other frame is parsed.
///
/// v1 -> v2: kOpenShard may carry a resume SessionCheckpoint (u8
/// has_checkpoint + checkpoint group), kOpenResult appends resume info
/// (u8 resumed, u32 regions_skipped, u64 replay_pairs_saved) and
/// kPumpResult appends u8 has_checkpoint + checkpoint group. v1 payloads
/// are byte-identical to before.
inline constexpr uint32_t kWireMagic = 0x50584531;  // "PXE1"
inline constexpr uint16_t kWireVersion = 2;
inline constexpr uint16_t kWireVersionMin = 1;

/// Hard ceiling on one frame's payload. Large enough for a full relation
/// slice of any workload this engine targets; small enough that a corrupted
/// length prefix cannot drive a multi-gigabyte allocation.
inline constexpr uint32_t kMaxFramePayload = 256u * 1024 * 1024;

enum class MsgType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kOpenShard = 3,
  kOpenResult = 4,
  kPump = 5,
  kPumpResult = 6,
  kHeartbeat = 7,
  kClose = 8,
  kCloseAck = 9,
  kPing = 10,
  kPong = 11,
  kError = 12,
};

const char* MsgTypeName(MsgType type);

/// Appends fixed-width little-endian fields to a payload buffer. The
/// buffer is a plain std::string so a finished payload hands straight to
/// SendFrame without a copy.
class WireWriter {
 public:
  explicit WireWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  /// Raw IEEE-754 bits: lossless for every value including NaN payloads,
  /// infinities and signed zero.
  void PutDouble(double v);
  /// u32 length + bytes.
  void PutString(std::string_view s);
  /// u32 count + raw bit patterns.
  void PutDoubles(const std::vector<double>& v);

 private:
  std::string* out_;
};

/// Bounds-checked reader over one received payload. Every accessor returns
/// false once the payload is exhausted or malformed; the first failure is
/// latched and detailed by status(). Reads after a failure are no-ops, so
/// decode functions can run a straight-line field sequence and check once.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v);
  bool GetU16(uint16_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetI64(int64_t* v);
  bool GetDouble(double* v);
  bool GetString(std::string* s);
  bool GetDoubles(std::vector<double>* v);

  /// True while no read has failed.
  bool ok() const { return status_.ok(); }
  /// OK, or the first decode failure (kInvalidArgument with context).
  Status status() const { return status_; }
  /// Fails the reader explicitly (semantic validation inside a decoder).
  void Fail(std::string msg);

  size_t remaining() const { return data_.size() - pos_; }
  /// True once every payload byte was consumed — decoders call this last so
  /// trailing garbage is rejected, not silently ignored.
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  bool Need(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
  Status status_;
};

// --- Field-group serializers -----------------------------------------------
// Each Write* appends one self-delimiting field group; the matching Read*
// consumes exactly that group and reports malformed input through the
// reader (checked via reader.status() or the returned Status).

void WriteStatusPayload(const Status& status, WireWriter* w);
Status ReadStatusPayload(WireReader* r, Status* out);

void WriteRelation(const Relation& rel, WireWriter* w);
Status ReadRelation(WireReader* r, Relation* out);

void WriteMapSpec(const MapSpec& spec, WireWriter* w);
Status ReadMapSpec(WireReader* r, MapSpec* out);

void WritePreference(const Preference& pref, WireWriter* w);
Status ReadPreference(WireReader* r, Preference* out);

/// Serializes every *value* field of ProgXeOptions (including an inline
/// refinement seed) — everything that affects results or counters. The
/// pointer fields (faults, prepare_cache) are coordinator-local by design
/// and decode as null.
void WriteOptions(const ProgXeOptions& options, WireWriter* w);
Status ReadOptions(WireReader* r, ProgXeOptions* out);

void WriteStats(const ProgXeStats& stats, WireWriter* w);
Status ReadStats(WireReader* r, ProgXeStats* out);

/// Candidate batch: u32 k, u32 count, then per tuple (u32 r_id, u32 t_id,
/// k doubles). `k` may be 0 only for an empty batch.
void WriteResultBatch(const std::vector<ResultTuple>& batch, int k,
                      WireWriter* w);
Status ReadResultBatch(WireReader* r, std::vector<ResultTuple>* out);

/// RemainingLowerBound watermark: u8 has_bound + k doubles when present.
/// `has_bound == false` <=> the shard is exhausted.
void WriteWatermark(bool has_bound, const std::vector<double>& bound,
                    WireWriter* w);
Status ReadWatermark(WireReader* r, bool* has_bound,
                     std::vector<double>* bound);

/// Resume checkpoint (progxe/checkpoint.h), v2-only: u32 k, u64
/// frontier_epoch, u64 delivered, u64 region_count, u64 replay_pairs_saved,
/// u32 skip_count + skip_count u32 region ids (validated against the bytes
/// present and required strictly increasing), then WriteStats. Decode
/// failures surface through the reader; semantic staleness (wrong prepared
/// inputs) is caught later by RegionLoop::RestoreCheckpoint.
void WriteCheckpoint(const SessionCheckpoint& checkpoint, WireWriter* w);
Status ReadCheckpoint(WireReader* r, SessionCheckpoint* out);

}  // namespace progxe
