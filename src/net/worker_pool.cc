#include "net/worker_pool.h"

#include <poll.h>

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "net/net_stats.h"
#include "net/socket.h"

namespace progxe {

namespace {

/// Cached connections kept per endpoint; more are simply closed on Return.
constexpr size_t kMaxCachedPerEndpoint = 8;

/// True if an *idle* cached link shows any activity. A quiescent
/// coordinator->worker link should be silent between RPCs, so pending
/// bytes, hangup or error all mean the peer died or desynced.
bool IdleLinkDead(int fd) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  const int rc = ::poll(&pfd, 1, 0);
  if (rc < 0) return true;
  return rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL));
}

}  // namespace

Result<std::vector<std::string>> ParseWorkerList(std::string_view list) {
  std::vector<std::string> endpoints;
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string_view::npos) comma = list.size();
    std::string_view item = list.substr(start, comma - start);
    // Trim surrounding spaces so "a:1, b:2" parses.
    while (!item.empty() && item.front() == ' ') item.remove_prefix(1);
    while (!item.empty() && item.back() == ' ') item.remove_suffix(1);
    if (!item.empty()) {
      std::string host;
      int port = 0;
      PROGXE_RETURN_NOT_OK(ParseEndpoint(item, &host, &port));
      endpoints.emplace_back(item);
    }
    if (comma == list.size()) break;
    start = comma + 1;
  }
  return endpoints;
}

WorkerConnection::~WorkerConnection() { CloseFd(fd_); }

Status WorkerConnection::Call(MsgType request, const std::string& payload,
                              MsgType expected, std::string* reply,
                              std::chrono::milliseconds deadline) {
  if (!healthy_) {
    return Status::Unavailable("worker connection already failed (" +
                               endpoint_ + ")");
  }
  const auto rpc_start = std::chrono::steady_clock::now();
  Status st = SendFrame(fd_, request, payload);
  MsgType got;
  while (st.ok()) {
    st = RecvFrame(fd_, &got, reply, deadline);
    if (!st.ok()) break;
    if (got == MsgType::kHeartbeat) continue;  // alive; deadline restarts
    if (got == MsgType::kError) {
      Status remote;
      WireReader r(*reply);
      st = ReadStatusPayload(&r, &remote);
      if (st.ok()) st = remote.ok() ? Status::InvalidArgument(
                                          "worker sent kError with OK status")
                                    : remote;
      break;
    }
    if (got != expected) {
      st = Status::InvalidArgument(
          std::string("unexpected reply frame: got ") + MsgTypeName(got) +
          ", want " + MsgTypeName(expected));
      break;
    }
    NetRecordRtt(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - rpc_start)
            .count()));
    return Status::OK();
  }
  healthy_ = false;
  return st;
}

WorkerPool::WorkerPool(NetOptions options) : options_(options) {}

WorkerPool::~WorkerPool() {
  // Keep the process-wide open-circuits gauge honest across pool teardown.
  std::lock_guard<std::mutex> lock(mtx_);
  for (const auto& [endpoint, h] : health_) {
    if (h.open) NetRecordCircuitClosed();
  }
}

Result<std::unique_ptr<WorkerConnection>> WorkerPool::Checkout(
    const std::string& endpoint) {
  {
    std::lock_guard<std::mutex> lock(mtx_);
    auto it = cache_.find(endpoint);
    while (it != cache_.end() && !it->second.empty()) {
      std::unique_ptr<WorkerConnection> conn = std::move(it->second.back());
      it->second.pop_back();
      if (!IdleLinkDead(conn->fd_)) {
        ++reuses_;
        return conn;
      }
      // Stale link (worker restarted / died while cached): drop and keep
      // looking.
    }
  }

  auto dialed = DialTcp(endpoint, options_.connect_timeout);
  if (!dialed.ok()) {
    ReportFailure(endpoint);
    return dialed.status();
  }
  std::unique_ptr<WorkerConnection> conn(
      new WorkerConnection(*dialed, endpoint));
  // Offer the newest version this coordinator is willing to speak; the
  // worker acks min(offer, its own version) and both sides hold to the ack.
  const uint16_t offer =
      std::min(kWireVersion, std::max(options_.max_wire_version,
                                      kWireVersionMin));
  std::string hello;
  WireWriter w(&hello);
  w.PutU32(kWireMagic);
  w.PutU16(offer);
  std::string ack;
  Status st = conn->Call(MsgType::kHello, hello, MsgType::kHelloAck, &ack,
                         options_.connect_timeout);
  if (!st.ok()) {
    ReportFailure(endpoint);
    return st;
  }
  WireReader r(ack);
  uint32_t magic = 0;
  uint16_t version = 0;
  if (!r.GetU32(&magic) || !r.GetU16(&version) || magic != kWireMagic ||
      version < kWireVersionMin || version > offer) {
    ReportFailure(endpoint);
    return Status::InvalidArgument("worker handshake mismatch (" + endpoint +
                                   ")");
  }
  conn->wire_version_ = version;
  ReportSuccess(endpoint);
  std::lock_guard<std::mutex> lock(mtx_);
  ++created_;
  return conn;
}

void WorkerPool::ReportFailure(const std::string& endpoint) {
  if (options_.circuit_failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(mtx_);
  EndpointHealth& h = health_[endpoint];
  ++h.consecutive_failures;
  if (h.consecutive_failures < options_.circuit_failure_threshold) return;
  // (Re-)open the circuit with a cooldown that doubles per episode.
  const int shift = std::min(h.opens, 5);
  const auto cooldown = options_.circuit_cooldown * (1 << shift);
  if (!h.open) NetRecordCircuitOpened();
  h.open = true;
  h.open_until = std::chrono::steady_clock::now() + cooldown;
  ++h.opens;
  // The episode consumed this failure run; the next run counts afresh
  // (a half-open probe failure re-opens after one more threshold run is
  // too slow — so re-arm at threshold-1, making a single probe failure
  // re-open immediately).
  h.consecutive_failures = options_.circuit_failure_threshold - 1;
}

void WorkerPool::ReportSuccess(const std::string& endpoint) {
  if (options_.circuit_failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(mtx_);
  auto it = health_.find(endpoint);
  if (it == health_.end()) return;
  if (it->second.open) NetRecordCircuitClosed();
  it->second = EndpointHealth{};
}

bool WorkerPool::IsOpen(const std::string& endpoint) const {
  std::lock_guard<std::mutex> lock(mtx_);
  auto it = health_.find(endpoint);
  if (it == health_.end() || !it->second.open) return false;
  // Past the cooldown the circuit is half-open: report closed so exactly
  // the callers that would have skipped it probe it instead.
  return std::chrono::steady_clock::now() < it->second.open_until;
}

int WorkerPool::open_circuits() const {
  std::lock_guard<std::mutex> lock(mtx_);
  int n = 0;
  for (const auto& [endpoint, h] : health_) {
    if (h.open) ++n;
  }
  return n;
}

void WorkerPool::Return(std::unique_ptr<WorkerConnection> conn) {
  if (conn == nullptr || !conn->healthy()) return;
  std::lock_guard<std::mutex> lock(mtx_);
  std::vector<std::unique_ptr<WorkerConnection>>& slot =
      cache_[conn->endpoint()];
  if (slot.size() < kMaxCachedPerEndpoint) slot.push_back(std::move(conn));
}

uint64_t WorkerPool::connections_created() const {
  std::lock_guard<std::mutex> lock(mtx_);
  return created_;
}

uint64_t WorkerPool::reuses() const {
  std::lock_guard<std::mutex> lock(mtx_);
  return reuses_;
}

}  // namespace progxe
