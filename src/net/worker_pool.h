// WorkerPool: cached, handshake-verified coordinator connections to shard
// workers.
//
// The coordinator side of distribution checks a connection out of the pool
// per shard open, speaks the session protocol over it (open/pump/close) and
// returns it on a clean close so the next query reuses the warm link —
// the postgres_fdw model of one long-lived connection per remote, not one
// dial per RPC. A checkout liveness-probes cached links (a severed worker
// is detected before any RPC is risked on it) and dials fresh when the
// cache is dry. Broken connections are simply dropped, never returned.
//
// Failure detection is deadline-based: WorkerConnection::Call bounds the
// reply wait, and a missed deadline synthesizes a retryable kUnavailable.
// kHeartbeat frames from a busy worker reset the clock, so the deadline
// measures peer *liveness*, not RPC duration. Every completed RPC records
// its round-trip time into the process-wide net stats histogram.
#pragma once

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/wire.h"

namespace progxe {

/// Transport tunables, carried alongside the worker endpoint list.
struct NetOptions {
  /// Dial + handshake budget for one connection attempt.
  std::chrono::milliseconds connect_timeout{2000};
  /// Reply budget for kOpenShard (covers slice deserialization + the whole
  /// prepare phase; heartbeats reset it).
  std::chrono::milliseconds open_timeout{30000};
  /// Reply budget for kPump/kClose (heartbeats reset it). This is the
  /// worker-failure detection horizon: a worker silent for this long is
  /// declared dead (kUnavailable) and the shard retries elsewhere.
  std::chrono::milliseconds pump_timeout{10000};

  /// Highest wire version the coordinator offers in its kHello; the worker
  /// acks min(offer, own version). Defaults to the newest this build
  /// speaks; tests pin 1 to exercise the downlevel path.
  uint16_t max_wire_version = kWireVersion;

  /// Per-endpoint circuit breaker: this many *consecutive* transport
  /// failures (dial, handshake, open or pump) open the endpoint's circuit
  /// and shard placement routes around it for a cooldown. <= 0 disables
  /// the breaker.
  int circuit_failure_threshold = 3;
  /// Cooldown after the circuit first opens; doubles on every re-open
  /// (capped at 32x) and a success closes the circuit and resets the
  /// decay — a flapping worker is sidelined progressively longer, a
  /// recovered one rejoins after a single successful probe.
  std::chrono::milliseconds circuit_cooldown{1000};
};

/// Splits a comma-separated "host:port,host:port,..." worker list,
/// validating each endpoint. Empty input yields an empty list (meaning
/// in-process execution).
Result<std::vector<std::string>> ParseWorkerList(std::string_view list);

/// One handshaken coordinator->worker link. Not thread-safe: a connection
/// serves one shard stream at a time (the pool hands out exclusive
/// ownership).
class WorkerConnection {
 public:
  ~WorkerConnection();

  /// One request/reply exchange: sends `payload` as a `request` frame, then
  /// waits for an `expected` reply within `deadline` of the last sign of
  /// life (kHeartbeat frames reset the clock). A kError reply surfaces as
  /// its decoded Status; a missed deadline or connection failure as
  /// kUnavailable. After any failure the link is poisoned (healthy() turns
  /// false) and must be dropped, not returned to the pool.
  Status Call(MsgType request, const std::string& payload, MsgType expected,
              std::string* reply, std::chrono::milliseconds deadline);

  const std::string& endpoint() const { return endpoint_; }
  /// False once any exchange on this link failed or desynced.
  bool healthy() const { return healthy_; }
  /// The version negotiated during this connection's kHello handshake;
  /// v2-only field groups are written/expected only when >= 2.
  uint16_t wire_version() const { return wire_version_; }

  WorkerConnection(const WorkerConnection&) = delete;
  WorkerConnection& operator=(const WorkerConnection&) = delete;

 private:
  friend class WorkerPool;
  WorkerConnection(int fd, std::string endpoint)
      : fd_(fd), endpoint_(std::move(endpoint)) {}

  int fd_;
  std::string endpoint_;
  bool healthy_ = true;
  uint16_t wire_version_ = kWireVersionMin;
};

class WorkerPool {
 public:
  explicit WorkerPool(NetOptions options = {});
  ~WorkerPool();

  /// A ready-to-use connection to `endpoint`: a liveness-checked cached one
  /// when available, else a fresh dial + kHello handshake.
  Result<std::unique_ptr<WorkerConnection>> Checkout(
      const std::string& endpoint);

  /// Returns a healthy connection to the cache for reuse. Unhealthy
  /// connections are closed and dropped.
  void Return(std::unique_ptr<WorkerConnection> conn);

  const NetOptions& options() const { return options_; }

  /// Endpoint health tracking (circuit breaker). Checkout reports dial and
  /// handshake outcomes itself; RPC users (RemoteShardStream) report
  /// transport-level open/pump outcomes. A run of
  /// `circuit_failure_threshold` consecutive failures opens the endpoint's
  /// circuit for a cooldown that doubles per re-open; any success closes it
  /// and resets the decay.
  void ReportFailure(const std::string& endpoint);
  void ReportSuccess(const std::string& endpoint);
  /// True while the endpoint's circuit is open *and* inside its cooldown —
  /// shard placement (ShardedStream::OpenShard) routes around such
  /// endpoints. Past the cooldown this returns false (half-open): the next
  /// caller probes the endpoint and its success or failure settles the
  /// circuit.
  bool IsOpen(const std::string& endpoint) const;
  /// Endpoints currently in the open state (including half-open ones not
  /// yet probed) — the progxe_net_endpoint_open_circuits gauge.
  int open_circuits() const;

  /// Fresh dials over the pool's lifetime (diagnostic).
  uint64_t connections_created() const;
  /// Checkouts served from cache (diagnostic).
  uint64_t reuses() const;

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

 private:
  struct EndpointHealth {
    int consecutive_failures = 0;
    int opens = 0;  ///< Circuit-open episodes since the last success.
    bool open = false;
    std::chrono::steady_clock::time_point open_until{};
  };

  NetOptions options_;
  mutable std::mutex mtx_;
  std::unordered_map<std::string,
                     std::vector<std::unique_ptr<WorkerConnection>>>
      cache_;
  std::unordered_map<std::string, EndpointHealth> health_;
  uint64_t created_ = 0;
  uint64_t reuses_ = 0;
};

}  // namespace progxe
