// WorkerPool: cached, handshake-verified coordinator connections to shard
// workers.
//
// The coordinator side of distribution checks a connection out of the pool
// per shard open, speaks the session protocol over it (open/pump/close) and
// returns it on a clean close so the next query reuses the warm link —
// the postgres_fdw model of one long-lived connection per remote, not one
// dial per RPC. A checkout liveness-probes cached links (a severed worker
// is detected before any RPC is risked on it) and dials fresh when the
// cache is dry. Broken connections are simply dropped, never returned.
//
// Failure detection is deadline-based: WorkerConnection::Call bounds the
// reply wait, and a missed deadline synthesizes a retryable kUnavailable.
// kHeartbeat frames from a busy worker reset the clock, so the deadline
// measures peer *liveness*, not RPC duration. Every completed RPC records
// its round-trip time into the process-wide net stats histogram.
#pragma once

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/wire.h"

namespace progxe {

/// Transport tunables, carried alongside the worker endpoint list.
struct NetOptions {
  /// Dial + handshake budget for one connection attempt.
  std::chrono::milliseconds connect_timeout{2000};
  /// Reply budget for kOpenShard (covers slice deserialization + the whole
  /// prepare phase; heartbeats reset it).
  std::chrono::milliseconds open_timeout{30000};
  /// Reply budget for kPump/kClose (heartbeats reset it). This is the
  /// worker-failure detection horizon: a worker silent for this long is
  /// declared dead (kUnavailable) and the shard retries elsewhere.
  std::chrono::milliseconds pump_timeout{10000};
};

/// Splits a comma-separated "host:port,host:port,..." worker list,
/// validating each endpoint. Empty input yields an empty list (meaning
/// in-process execution).
Result<std::vector<std::string>> ParseWorkerList(std::string_view list);

/// One handshaken coordinator->worker link. Not thread-safe: a connection
/// serves one shard stream at a time (the pool hands out exclusive
/// ownership).
class WorkerConnection {
 public:
  ~WorkerConnection();

  /// One request/reply exchange: sends `payload` as a `request` frame, then
  /// waits for an `expected` reply within `deadline` of the last sign of
  /// life (kHeartbeat frames reset the clock). A kError reply surfaces as
  /// its decoded Status; a missed deadline or connection failure as
  /// kUnavailable. After any failure the link is poisoned (healthy() turns
  /// false) and must be dropped, not returned to the pool.
  Status Call(MsgType request, const std::string& payload, MsgType expected,
              std::string* reply, std::chrono::milliseconds deadline);

  const std::string& endpoint() const { return endpoint_; }
  /// False once any exchange on this link failed or desynced.
  bool healthy() const { return healthy_; }

  WorkerConnection(const WorkerConnection&) = delete;
  WorkerConnection& operator=(const WorkerConnection&) = delete;

 private:
  friend class WorkerPool;
  WorkerConnection(int fd, std::string endpoint)
      : fd_(fd), endpoint_(std::move(endpoint)) {}

  int fd_;
  std::string endpoint_;
  bool healthy_ = true;
};

class WorkerPool {
 public:
  explicit WorkerPool(NetOptions options = {});
  ~WorkerPool();

  /// A ready-to-use connection to `endpoint`: a liveness-checked cached one
  /// when available, else a fresh dial + kHello handshake.
  Result<std::unique_ptr<WorkerConnection>> Checkout(
      const std::string& endpoint);

  /// Returns a healthy connection to the cache for reuse. Unhealthy
  /// connections are closed and dropped.
  void Return(std::unique_ptr<WorkerConnection> conn);

  const NetOptions& options() const { return options_; }

  /// Fresh dials over the pool's lifetime (diagnostic).
  uint64_t connections_created() const;
  /// Checkouts served from cache (diagnostic).
  uint64_t reuses() const;

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

 private:
  NetOptions options_;
  mutable std::mutex mtx_;
  std::unordered_map<std::string,
                     std::vector<std::unique_ptr<WorkerConnection>>>
      cache_;
  uint64_t created_ = 0;
  uint64_t reuses_ = 0;
};

}  // namespace progxe
