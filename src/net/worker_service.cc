#include "net/worker_service.h"

#include <sys/socket.h>

#include <algorithm>
#include <condition_variable>
#include <string>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "data/relation.h"
#include "mapping/map_expr.h"
#include "net/socket.h"
#include "net/wire.h"
#include "prefs/preference.h"
#include "progxe/session.h"

namespace progxe {

namespace {

/// Receive deadline for an idle coordinator link. Connections are severed
/// by Stop() (fd shutdown), not by timing out, so this is effectively
/// "forever" while staying poll()-representable.
constexpr std::chrono::milliseconds kIdleRecvDeadline{24 * 3600 * 1000};

/// One connection's open shard assignment. The session's query points into
/// the deserialized relations, so both live and die together.
struct OpenState {
  Relation r{Schema::Anonymous(0)};
  Relation t{Schema::Anonymous(0)};
  MapSpec map;
  Preference pref;
  std::unique_ptr<ProgXeSession> session;
  int shard_index = 0;
};

Status SendError(int fd, const Status& status) {
  std::string payload;
  WireWriter w(&payload);
  WriteStatusPayload(status, &w);
  return SendFrame(fd, MsgType::kError, payload);
}

/// Emits kHeartbeat frames on `fd` every `interval` for as long as the
/// scope lives. Used around kOpenShard handling, whose prepare phase can
/// exceed the coordinator's open_timeout: the coordinator's deadline must
/// keep measuring liveness, not prepare duration (worker_pool.h contract).
/// The owning scope must not send any frame while the ticker is live —
/// concurrent writers would interleave mid-frame.
class HeartbeatTicker {
 public:
  HeartbeatTicker(int fd, std::chrono::milliseconds interval)
      : fd_(fd), interval_(interval), thread_([this] { Run(); }) {}

  ~HeartbeatTicker() {
    {
      std::lock_guard<std::mutex> lock(mtx_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void Run() {
    std::unique_lock<std::mutex> lock(mtx_);
    while (!stop_) {
      if (cv_.wait_for(lock, interval_, [this] { return stop_; })) return;
      lock.unlock();
      const bool sent = SendFrame(fd_, MsgType::kHeartbeat, {}).ok();
      lock.lock();
      // Peer gone: stop ticking; the result send will surface the failure.
      if (!sent) return;
    }
  }

  const int fd_;
  const std::chrono::milliseconds interval_;
  std::mutex mtx_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

Result<std::unique_ptr<WorkerServer>> WorkerServer::Start(
    WorkerServerOptions options) {
  std::unique_ptr<WorkerServer> server(new WorkerServer());
  server->options_ = options;
  PROGXE_ASSIGN_OR_RETURN(ListenSocket listener, ListenTcp(options.port));
  server->listen_fd_ = listener.fd;
  server->port_ = listener.port;
  server->accept_thread_ = std::thread(&WorkerServer::AcceptLoop, server.get());
  PROGXE_LOG(Info) << "shard worker listening on port " << server->port_;
  return server;
}

WorkerServer::~WorkerServer() { Stop(); }

uint64_t WorkerServer::connections_accepted() const {
  std::lock_guard<std::mutex> lock(mtx_);
  return accepted_;
}

void WorkerServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mtx_);
    if (stopping_) return;
    stopping_ = true;
    // Sever every live link: coordinators mid-pump observe a retryable
    // kUnavailable — the worker-kill signal their recovery path expects.
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  CloseFd(listen_fd_);
  listen_fd_ = -1;
  // Handlers run detached; the severed fds above make each one exit its
  // recv promptly, and the count tracks the last touch of `this`.
  std::unique_lock<std::mutex> lock(mtx_);
  handlers_done_.wait(lock, [this] { return active_handlers_ == 0; });
}

bool WorkerServer::Drain(std::chrono::milliseconds timeout) {
  {
    std::lock_guard<std::mutex> lock(mtx_);
    if (stopping_ || draining_) return true;
    draining_ = true;
    // Idle links (no open session) have nothing in flight worth finishing;
    // sever them now so their handlers exit instead of blocking the drain
    // on the day-long idle deadline.
    for (int fd : live_fds_) {
      if (session_fds_.count(fd) == 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  bool clean = false;
  {
    std::unique_lock<std::mutex> lock(mtx_);
    clean = handlers_done_.wait_for(lock, timeout,
                                    [this] { return active_handlers_ == 0; });
  }
  if (!clean) {
    PROGXE_LOG(Warn) << "drain timeout: severing in-flight sessions";
  }
  Stop();  // force-sever stragglers (no-op when the drain finished clean)
  return clean;
}

void WorkerServer::AcceptLoop() {
  while (true) {
    Result<int> accepted = AcceptTcp(listen_fd_);
    {
      std::lock_guard<std::mutex> lock(mtx_);
      if (stopping_ || draining_) {
        if (accepted.ok()) CloseFd(*accepted);
        return;
      }
      if (accepted.ok()) {
        ++accepted_;
        live_fds_.push_back(*accepted);
        ++active_handlers_;
      }
    }
    if (!accepted.ok()) {
      // A persistent accept errno (EMFILE, ENFILE, ...) must not busy-spin
      // this thread; back off before retrying.
      PROGXE_LOG(Warn) << "worker accept failed (retrying): "
                       << accepted.status().ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    std::thread(&WorkerServer::HandleConnection, this, *accepted).detach();
  }
}

void WorkerServer::HandleConnection(int fd) {
  std::string payload;
  std::string reply;
  MsgType type;
  std::unique_ptr<OpenState> state;

  // Handshake: the very first frame must be a matching kHello. The client
  // offers the newest version it speaks; we ack min(offer, ours) and both
  // sides hold to the ack for the life of the connection.
  Status st = RecvFrame(fd, &type, &payload, options_.heartbeat_interval * 50);
  bool ok = st.ok() && type == MsgType::kHello;
  uint16_t wire_version = kWireVersionMin;
  if (ok) {
    WireReader r(payload);
    uint32_t magic = 0;
    uint16_t offer = 0;
    ok = r.GetU32(&magic) && r.GetU16(&offer) && magic == kWireMagic &&
         offer >= kWireVersionMin;
    if (!ok) {
      SendError(fd, Status::InvalidArgument(
                        "wire handshake rejected (magic/version mismatch)"));
    } else {
      wire_version = std::min(offer, kWireVersion);
    }
  }
  if (ok) {
    reply.clear();
    WireWriter w(&reply);
    w.PutU32(kWireMagic);
    w.PutU16(wire_version);
    ok = SendFrame(fd, MsgType::kHelloAck, reply).ok();
  }

  while (ok) {
    st = RecvFrame(fd, &type, &payload, kIdleRecvDeadline);
    if (!st.ok()) break;  // peer gone or server stopping
    switch (type) {
      case MsgType::kPing: {
        ok = SendFrame(fd, MsgType::kPong, {}).ok();
        break;
      }
      case MsgType::kOpenShard: {
        {
          std::lock_guard<std::mutex> lock(mtx_);
          if (draining_) {
            // Refuse new sessions with a retryable status so the
            // coordinator's recovery path re-opens elsewhere.
            SendError(fd, Status::Unavailable("worker draining"));
            ok = false;
            break;
          }
        }
        auto next = std::make_unique<OpenState>();
        Status parse_error;
        Result<std::unique_ptr<ProgXeSession>> opened =
            Status::Internal("open_shard never ran");
        {
          // Slice deserialization plus the whole prepare phase can outlast
          // the coordinator's open_timeout; tick heartbeats so its deadline
          // measures liveness. No other frame may be sent in this scope.
          HeartbeatTicker ticker(fd, options_.heartbeat_interval);
          WireReader r(payload);
          uint32_t shard_index = 0;
          ProgXeOptions options;
          r.GetU32(&shard_index);
          ReadOptions(&r, &options);
          ReadMapSpec(&r, &next->map);
          ReadPreference(&r, &next->pref);
          ReadRelation(&r, &next->r);
          ReadRelation(&r, &next->t);
          SessionCheckpoint resume;
          bool has_resume = false;
          if (r.ok() && wire_version >= 2) {
            uint8_t flag = 0;
            if (r.GetU8(&flag) && flag != 0) {
              if (ReadCheckpoint(&r, &resume).ok()) has_resume = true;
            }
          }
          if (!r.ok() || !r.AtEnd()) {
            if (r.ok()) r.Fail("trailing bytes after open_shard payload");
            parse_error = r.status();
          } else {
            next->shard_index = static_cast<int>(shard_index);
            SkyMapJoinQuery query;
            query.r = &next->r;
            query.t = &next->t;
            query.map = next->map;
            query.pref = next->pref;
            if (has_resume) {
              opened = ProgXeSession::Open(query, options, &resume);
              if (!opened.ok() && opened.status().IsInvalidArgument()) {
                // Stale/corrupt checkpoint (wrong k, region mismatch, bad
                // ids): the assignment itself is still good, so fall back
                // to a from-scratch replay rather than failing the open.
                PROGXE_LOG(Warn)
                    << "shard " << next->shard_index
                    << " resume checkpoint rejected, replaying from scratch: "
                    << opened.status().ToString();
                opened = ProgXeSession::Open(query, std::move(options));
              }
            } else {
              opened = ProgXeSession::Open(query, std::move(options));
            }
          }
        }
        if (!parse_error.ok()) {
          // A malformed assignment means the link itself can't be trusted.
          SendError(fd, parse_error);
          ok = false;
          break;
        }
        reply.clear();
        WireWriter w(&reply);
        if (!opened.ok()) {
          // Semantic failure (validation, injected fault): report it in
          // kOpenResult and keep the link serving.
          WriteStatusPayload(opened.status(), &w);
          state.reset();
          std::lock_guard<std::mutex> lock(mtx_);
          session_fds_.erase(fd);
        } else {
          next->session = std::move(opened).MoveValue();
          WriteStatusPayload(Status::OK(), &w);
          std::vector<double> bound;
          const bool has_bound = next->session->RemainingLowerBound(&bound);
          WriteWatermark(has_bound, bound, &w);
          WriteStats(next->session->stats(), &w);
          if (wire_version >= 2) {
            w.PutU8(next->session->resumed() ? 1 : 0);
            w.PutU32(next->session->resumed_regions_skipped());
            w.PutU64(next->session->replay_pairs_saved());
          }
          state = std::move(next);
          PROGXE_LOG(Info) << "worker opened shard " << state->shard_index
                           << " (r=" << state->r.size()
                           << " t=" << state->t.size()
                           << (state->session->resumed() ? ", resumed" : "")
                           << ")";
          std::lock_guard<std::mutex> lock(mtx_);
          session_fds_.insert(fd);
        }
        ok = SendFrame(fd, MsgType::kOpenResult, reply).ok();
        break;
      }
      case MsgType::kPump: {
        if (state == nullptr || state->session == nullptr) {
          SendError(fd, Status::InvalidArgument("pump without an open shard"));
          ok = false;
          break;
        }
        WireReader r(payload);
        uint64_t max_results = 0;
        uint64_t max_pairs = 0;
        if (!r.GetU64(&max_results) || !r.GetU64(&max_pairs) || !r.AtEnd()) {
          SendError(fd, Status::InvalidArgument("malformed pump payload"));
          ok = false;
          break;
        }
        ProgXeSession& session = *state->session;
        std::vector<ResultTuple> results;
        std::vector<ResultTuple> batch;
        // Internal slicing: pump in bounded sub-slices so heartbeats flow
        // during a long quiet stretch. Slice boundaries never change the
        // delivered stream or the counters (the session contract), so the
        // reply is bit-identical to a single NextBatch of the full budget.
        auto last_beat = std::chrono::steady_clock::now();
        size_t remaining = static_cast<size_t>(max_pairs);
        while (results.empty() && !session.Finished() &&
               session.last_status().ok()) {
          size_t slice = options_.pump_slice_pairs;
          if (max_pairs != 0) {
            slice = std::min(remaining, slice);
            if (slice == 0) break;
          }
          const uint64_t before = session.stats().join_pairs_generated;
          session.NextBatch(/*max_results=*/0, slice, &batch);
          results.insert(results.end(),
                         std::make_move_iterator(batch.begin()),
                         std::make_move_iterator(batch.end()));
          if (max_pairs != 0) {
            const uint64_t used =
                session.stats().join_pairs_generated - before;
            remaining = used >= remaining
                            ? 0
                            : remaining - static_cast<size_t>(used);
            if (remaining == 0) break;
          }
          const auto now = std::chrono::steady_clock::now();
          if (now - last_beat >= options_.heartbeat_interval) {
            if (!SendFrame(fd, MsgType::kHeartbeat, {}).ok()) break;
            last_beat = now;
          }
        }
        reply.clear();
        WireWriter w(&reply);
        const Status session_status = session.last_status();
        WriteStatusPayload(session_status, &w);
        if (session_status.ok()) {
          WriteResultBatch(results, state->map.output_dimensions(), &w);
          std::vector<double> bound;
          const bool has_bound = session.RemainingLowerBound(&bound);
          WriteWatermark(has_bound, bound, &w);
          WriteStats(session.stats(), &w);
          if (wire_version >= 2) {
            // Stream the freshest resume point back with every healthy
            // pump; at a mid-region budget cut there is none — the
            // coordinator keeps the previous one.
            SessionCheckpoint checkpoint;
            const bool has_checkpoint = session.ExportCheckpoint(&checkpoint);
            w.PutU8(has_checkpoint ? 1 : 0);
            if (has_checkpoint) WriteCheckpoint(checkpoint, &w);
          }
        }
        ok = SendFrame(fd, MsgType::kPumpResult, reply).ok();
        break;
      }
      case MsgType::kClose: {
        state.reset();
        {
          std::lock_guard<std::mutex> lock(mtx_);
          session_fds_.erase(fd);
          // A draining worker serves the session to its close, then lets
          // the link go instead of idling for the next assignment.
          if (draining_) ok = false;
        }
        const bool acked = SendFrame(fd, MsgType::kCloseAck, {}).ok();
        ok = ok && acked;
        break;
      }
      default: {
        SendError(fd, Status::InvalidArgument(
                          std::string("unexpected frame: ") +
                          MsgTypeName(type)));
        ok = false;
        break;
      }
    }
  }

  CloseFd(fd);
  std::lock_guard<std::mutex> lock(mtx_);
  live_fds_.erase(std::remove(live_fds_.begin(), live_fds_.end(), fd),
                  live_fds_.end());
  session_fds_.erase(fd);
  // Last touch of `this`: notify while holding the lock so Stop() cannot
  // observe the zero and destroy the server before the notify happens.
  --active_handlers_;
  handlers_done_.notify_all();
}

}  // namespace progxe
