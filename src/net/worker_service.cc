#include "net/worker_service.h"

#include <sys/socket.h>

#include <algorithm>
#include <condition_variable>
#include <string>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "data/relation.h"
#include "mapping/map_expr.h"
#include "net/socket.h"
#include "net/wire.h"
#include "prefs/preference.h"
#include "progxe/session.h"

namespace progxe {

namespace {

/// Receive deadline for an idle coordinator link. Connections are severed
/// by Stop() (fd shutdown), not by timing out, so this is effectively
/// "forever" while staying poll()-representable.
constexpr std::chrono::milliseconds kIdleRecvDeadline{24 * 3600 * 1000};

/// One connection's open shard assignment. The session's query points into
/// the deserialized relations, so both live and die together.
struct OpenState {
  Relation r{Schema::Anonymous(0)};
  Relation t{Schema::Anonymous(0)};
  MapSpec map;
  Preference pref;
  std::unique_ptr<ProgXeSession> session;
  int shard_index = 0;
};

Status SendError(int fd, const Status& status) {
  std::string payload;
  WireWriter w(&payload);
  WriteStatusPayload(status, &w);
  return SendFrame(fd, MsgType::kError, payload);
}

/// Emits kHeartbeat frames on `fd` every `interval` for as long as the
/// scope lives. Used around kOpenShard handling, whose prepare phase can
/// exceed the coordinator's open_timeout: the coordinator's deadline must
/// keep measuring liveness, not prepare duration (worker_pool.h contract).
/// The owning scope must not send any frame while the ticker is live —
/// concurrent writers would interleave mid-frame.
class HeartbeatTicker {
 public:
  HeartbeatTicker(int fd, std::chrono::milliseconds interval)
      : fd_(fd), interval_(interval), thread_([this] { Run(); }) {}

  ~HeartbeatTicker() {
    {
      std::lock_guard<std::mutex> lock(mtx_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void Run() {
    std::unique_lock<std::mutex> lock(mtx_);
    while (!stop_) {
      if (cv_.wait_for(lock, interval_, [this] { return stop_; })) return;
      lock.unlock();
      const bool sent = SendFrame(fd_, MsgType::kHeartbeat, {}).ok();
      lock.lock();
      // Peer gone: stop ticking; the result send will surface the failure.
      if (!sent) return;
    }
  }

  const int fd_;
  const std::chrono::milliseconds interval_;
  std::mutex mtx_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

Result<std::unique_ptr<WorkerServer>> WorkerServer::Start(
    WorkerServerOptions options) {
  std::unique_ptr<WorkerServer> server(new WorkerServer());
  server->options_ = options;
  PROGXE_ASSIGN_OR_RETURN(ListenSocket listener, ListenTcp(options.port));
  server->listen_fd_ = listener.fd;
  server->port_ = listener.port;
  server->accept_thread_ = std::thread(&WorkerServer::AcceptLoop, server.get());
  PROGXE_LOG(Info) << "shard worker listening on port " << server->port_;
  return server;
}

WorkerServer::~WorkerServer() { Stop(); }

uint64_t WorkerServer::connections_accepted() const {
  std::lock_guard<std::mutex> lock(mtx_);
  return accepted_;
}

void WorkerServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mtx_);
    if (stopping_) return;
    stopping_ = true;
    // Sever every live link: coordinators mid-pump observe a retryable
    // kUnavailable — the worker-kill signal their recovery path expects.
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  CloseFd(listen_fd_);
  listen_fd_ = -1;
  // Handlers run detached; the severed fds above make each one exit its
  // recv promptly, and the count tracks the last touch of `this`.
  std::unique_lock<std::mutex> lock(mtx_);
  handlers_done_.wait(lock, [this] { return active_handlers_ == 0; });
}

void WorkerServer::AcceptLoop() {
  while (true) {
    Result<int> accepted = AcceptTcp(listen_fd_);
    {
      std::lock_guard<std::mutex> lock(mtx_);
      if (stopping_) {
        if (accepted.ok()) CloseFd(*accepted);
        return;
      }
      if (accepted.ok()) {
        ++accepted_;
        live_fds_.push_back(*accepted);
        ++active_handlers_;
      }
    }
    if (!accepted.ok()) {
      // A persistent accept errno (EMFILE, ENFILE, ...) must not busy-spin
      // this thread; back off before retrying.
      PROGXE_LOG(Warn) << "worker accept failed (retrying): "
                       << accepted.status().ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    std::thread(&WorkerServer::HandleConnection, this, *accepted).detach();
  }
}

void WorkerServer::HandleConnection(int fd) {
  std::string payload;
  std::string reply;
  MsgType type;
  std::unique_ptr<OpenState> state;

  // Handshake: the very first frame must be a matching kHello.
  Status st = RecvFrame(fd, &type, &payload, options_.heartbeat_interval * 50);
  bool ok = st.ok() && type == MsgType::kHello;
  if (ok) {
    WireReader r(payload);
    uint32_t magic = 0;
    uint16_t version = 0;
    ok = r.GetU32(&magic) && r.GetU16(&version) && magic == kWireMagic &&
         version == kWireVersion;
    if (!ok) {
      SendError(fd, Status::InvalidArgument(
                        "wire handshake rejected (magic/version mismatch)"));
    }
  }
  if (ok) {
    reply.clear();
    WireWriter w(&reply);
    w.PutU32(kWireMagic);
    w.PutU16(kWireVersion);
    ok = SendFrame(fd, MsgType::kHelloAck, reply).ok();
  }

  while (ok) {
    st = RecvFrame(fd, &type, &payload, kIdleRecvDeadline);
    if (!st.ok()) break;  // peer gone or server stopping
    switch (type) {
      case MsgType::kPing: {
        ok = SendFrame(fd, MsgType::kPong, {}).ok();
        break;
      }
      case MsgType::kOpenShard: {
        auto next = std::make_unique<OpenState>();
        Status parse_error;
        Result<std::unique_ptr<ProgXeSession>> opened =
            Status::Internal("open_shard never ran");
        {
          // Slice deserialization plus the whole prepare phase can outlast
          // the coordinator's open_timeout; tick heartbeats so its deadline
          // measures liveness. No other frame may be sent in this scope.
          HeartbeatTicker ticker(fd, options_.heartbeat_interval);
          WireReader r(payload);
          uint32_t shard_index = 0;
          ProgXeOptions options;
          r.GetU32(&shard_index);
          ReadOptions(&r, &options);
          ReadMapSpec(&r, &next->map);
          ReadPreference(&r, &next->pref);
          ReadRelation(&r, &next->r);
          ReadRelation(&r, &next->t);
          if (!r.ok() || !r.AtEnd()) {
            if (r.ok()) r.Fail("trailing bytes after open_shard payload");
            parse_error = r.status();
          } else {
            next->shard_index = static_cast<int>(shard_index);
            SkyMapJoinQuery query;
            query.r = &next->r;
            query.t = &next->t;
            query.map = next->map;
            query.pref = next->pref;
            opened = ProgXeSession::Open(query, std::move(options));
          }
        }
        if (!parse_error.ok()) {
          // A malformed assignment means the link itself can't be trusted.
          SendError(fd, parse_error);
          ok = false;
          break;
        }
        reply.clear();
        WireWriter w(&reply);
        if (!opened.ok()) {
          // Semantic failure (validation, injected fault): report it in
          // kOpenResult and keep the link serving.
          WriteStatusPayload(opened.status(), &w);
          state.reset();
        } else {
          next->session = std::move(opened).MoveValue();
          WriteStatusPayload(Status::OK(), &w);
          std::vector<double> bound;
          const bool has_bound = next->session->RemainingLowerBound(&bound);
          WriteWatermark(has_bound, bound, &w);
          WriteStats(next->session->stats(), &w);
          state = std::move(next);
          PROGXE_LOG(Info) << "worker opened shard " << state->shard_index
                           << " (r=" << state->r.size()
                           << " t=" << state->t.size() << ")";
        }
        ok = SendFrame(fd, MsgType::kOpenResult, reply).ok();
        break;
      }
      case MsgType::kPump: {
        if (state == nullptr || state->session == nullptr) {
          SendError(fd, Status::InvalidArgument("pump without an open shard"));
          ok = false;
          break;
        }
        WireReader r(payload);
        uint64_t max_results = 0;
        uint64_t max_pairs = 0;
        if (!r.GetU64(&max_results) || !r.GetU64(&max_pairs) || !r.AtEnd()) {
          SendError(fd, Status::InvalidArgument("malformed pump payload"));
          ok = false;
          break;
        }
        ProgXeSession& session = *state->session;
        std::vector<ResultTuple> results;
        std::vector<ResultTuple> batch;
        // Internal slicing: pump in bounded sub-slices so heartbeats flow
        // during a long quiet stretch. Slice boundaries never change the
        // delivered stream or the counters (the session contract), so the
        // reply is bit-identical to a single NextBatch of the full budget.
        auto last_beat = std::chrono::steady_clock::now();
        size_t remaining = static_cast<size_t>(max_pairs);
        while (results.empty() && !session.Finished() &&
               session.last_status().ok()) {
          size_t slice = options_.pump_slice_pairs;
          if (max_pairs != 0) {
            slice = std::min(remaining, slice);
            if (slice == 0) break;
          }
          const uint64_t before = session.stats().join_pairs_generated;
          session.NextBatch(/*max_results=*/0, slice, &batch);
          results.insert(results.end(),
                         std::make_move_iterator(batch.begin()),
                         std::make_move_iterator(batch.end()));
          if (max_pairs != 0) {
            const uint64_t used =
                session.stats().join_pairs_generated - before;
            remaining = used >= remaining
                            ? 0
                            : remaining - static_cast<size_t>(used);
            if (remaining == 0) break;
          }
          const auto now = std::chrono::steady_clock::now();
          if (now - last_beat >= options_.heartbeat_interval) {
            if (!SendFrame(fd, MsgType::kHeartbeat, {}).ok()) break;
            last_beat = now;
          }
        }
        reply.clear();
        WireWriter w(&reply);
        const Status session_status = session.last_status();
        WriteStatusPayload(session_status, &w);
        if (session_status.ok()) {
          WriteResultBatch(results, state->map.output_dimensions(), &w);
          std::vector<double> bound;
          const bool has_bound = session.RemainingLowerBound(&bound);
          WriteWatermark(has_bound, bound, &w);
          WriteStats(session.stats(), &w);
        }
        ok = SendFrame(fd, MsgType::kPumpResult, reply).ok();
        break;
      }
      case MsgType::kClose: {
        state.reset();
        ok = SendFrame(fd, MsgType::kCloseAck, {}).ok();
        break;
      }
      default: {
        SendError(fd, Status::InvalidArgument(
                          std::string("unexpected frame: ") +
                          MsgTypeName(type)));
        ok = false;
        break;
      }
    }
  }

  CloseFd(fd);
  std::lock_guard<std::mutex> lock(mtx_);
  live_fds_.erase(std::remove(live_fds_.begin(), live_fds_.end(), fd),
                  live_fds_.end());
  // Last touch of `this`: notify while holding the lock so Stop() cannot
  // observe the zero and destroy the server before the notify happens.
  --active_handlers_;
  handlers_done_.notify_all();
}

}  // namespace progxe
