// WorkerServer: the shard-worker daemon behind `progxe_server --worker`.
//
// A worker accepts coordinator connections and serves the wire protocol's
// session frames: kOpenShard deserializes a shard assignment (options, map,
// preference, both relation slices) into a connection-owned ProgXeSession;
// each kPump advances that session under the requested pair budget and
// streams back the locally-final candidates, the RemainingLowerBound
// watermark and a full ProgXeStats snapshot; kClose tears the session down
// but keeps the link for reuse (the coordinator's WorkerPool caches
// connections across queries).
//
// Long pumps and opens stay observable: during a pump the handler emits
// kHeartbeat frames between internal pump slices whenever
// `heartbeat_interval` elapses, and during an open (slice deserialization +
// the whole prepare phase) a background ticker does the same, so the
// coordinator's receive deadline measures *liveness*, not total pump or
// prepare duration. Internal slicing is invisible by contract — slice
// boundaries never change a session's delivered results or counters —
// which is what keeps a distributed run bit-identical to the in-process
// one.
//
// One connection serves one shard session at a time; concurrent shards come
// from concurrent connections (one handler thread each). In-process use
// (tests, benches, the loopback smoke) starts a WorkerServer on port 0 and
// reads the bound port back.
#pragma once

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/status.h"

namespace progxe {

struct WorkerServerOptions {
  /// TCP port to listen on; 0 picks a free ephemeral port (see port()).
  int port = 0;
  /// Heartbeat cadence during long pumps; also the worker's internal pump
  /// slice granularity trigger.
  std::chrono::milliseconds heartbeat_interval{200};
  /// Pair budget of one internal pump slice between heartbeat checks.
  size_t pump_slice_pairs = 65536;
};

class WorkerServer {
 public:
  /// Binds, listens and starts the accept loop. The returned server is
  /// serving as soon as this returns.
  static Result<std::unique_ptr<WorkerServer>> Start(
      WorkerServerOptions options);

  /// Stops accepting, severs every live connection (coordinators observe a
  /// retryable kUnavailable — the worker-kill path) and waits for every
  /// handler thread to finish. Idempotent; the destructor calls it.
  void Stop();

  /// Graceful shutdown: stops accepting, severs idle session-less links,
  /// refuses new kOpenShard frames with a retryable error, lets connections
  /// with an open session run to their kClose, and waits up to `timeout`
  /// before falling back to Stop() for any straggler. Returns true if every
  /// handler finished within the timeout (no in-flight session was severed).
  bool Drain(std::chrono::milliseconds timeout);

  ~WorkerServer();

  /// The actually-bound listen port.
  int port() const { return port_; }

  /// Connections accepted over the server's lifetime (diagnostic).
  uint64_t connections_accepted() const;

  WorkerServer(const WorkerServer&) = delete;
  WorkerServer& operator=(const WorkerServer&) = delete;

 private:
  WorkerServer() = default;

  void AcceptLoop();
  void HandleConnection(int fd);

  WorkerServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;

  mutable std::mutex mtx_;
  bool stopping_ = false;
  bool draining_ = false;
  std::vector<int> live_fds_;
  /// Connections currently holding an open shard session; during a drain
  /// these are the links allowed to finish (everything else is severed).
  std::unordered_set<int> session_fds_;
  /// Handler threads run detached so finished connections release their
  /// thread resources immediately; this count (with handlers_done_) is how
  /// Stop() waits for the stragglers it severed.
  size_t active_handlers_ = 0;
  std::condition_variable handlers_done_;
  uint64_t accepted_ = 0;
};

}  // namespace progxe
