#include "obs/metrics.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/fault_injection.h"
#include "obs/trace.h"
#include "progxe/config.h"
#include "progxe/stream.h"
#include "service/scheduler.h"

namespace progxe {

namespace {

void AppendDouble(double v, std::string* out) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  out->append(buf);
}

}  // namespace

void HistogramMetric::Observe(double v) {
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

void HistogramMetric::SetCounts(const std::vector<uint64_t>& counts,
                                double sum) {
  const size_t slots = bounds_.size() + 1;
  for (size_t i = 0; i < slots; ++i) {
    buckets_[i].store(i < counts.size() ? counts[i] : 0,
                      std::memory_order_relaxed);
  }
  sum_.store(sum, std::memory_order_relaxed);
}

uint64_t HistogramMetric::count() const {
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

HistogramMetric::HistogramMetric(std::string name, std::string help,
                                 std::vector<double> bounds)
    : name_(std::move(name)),
      help_(std::move(help)),
      bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

struct MetricsRegistry::Entry {
  MetricType type;
  std::unique_ptr<Metric> scalar;        // counter / gauge
  std::unique_ptr<HistogramMetric> histogram;
  const std::string& name() const {
    return scalar != nullptr ? scalar->name_ : histogram->name_;
  }
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

Metric* MetricsRegistry::GetCounter(const std::string& name,
                                    const std::string& help) {
  std::lock_guard<std::mutex> lock(mtx_);
  for (const auto& e : entries_) {
    if (e->name() == name) {
      if (e->type != MetricType::kCounter) {
        std::fprintf(stderr, "metric %s re-registered with a different type\n",
                     name.c_str());
        std::abort();
      }
      return e->scalar.get();
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->type = MetricType::kCounter;
  entry->scalar.reset(new Metric(name, help, MetricType::kCounter));
  Metric* out = entry->scalar.get();
  entries_.push_back(std::move(entry));
  return out;
}

Metric* MetricsRegistry::GetGauge(const std::string& name,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mtx_);
  for (const auto& e : entries_) {
    if (e->name() == name) {
      if (e->type != MetricType::kGauge) {
        std::fprintf(stderr, "metric %s re-registered with a different type\n",
                     name.c_str());
        std::abort();
      }
      return e->scalar.get();
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->type = MetricType::kGauge;
  entry->scalar.reset(new Metric(name, help, MetricType::kGauge));
  Metric* out = entry->scalar.get();
  entries_.push_back(std::move(entry));
  return out;
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name,
                                               const std::string& help,
                                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mtx_);
  for (const auto& e : entries_) {
    if (e->name() == name) {
      if (e->type != MetricType::kHistogram) {
        std::fprintf(stderr, "metric %s re-registered with a different type\n",
                     name.c_str());
        std::abort();
      }
      return e->histogram.get();
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->type = MetricType::kHistogram;
  entry->histogram.reset(
      new HistogramMetric(name, help, std::move(bounds)));
  HistogramMetric* out = entry->histogram.get();
  entries_.push_back(std::move(entry));
  return out;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mtx_);
  return entries_.size();
}

void MetricsRegistry::RenderPrometheus(std::string* out) const {
  std::lock_guard<std::mutex> lock(mtx_);
  for (const auto& e : entries_) {
    const std::string& name = e->name();
    const std::string& help =
        e->scalar != nullptr ? e->scalar->help_ : e->histogram->help_;
    out->append("# HELP ").append(name).append(" ").append(help).append("\n");
    out->append("# TYPE ").append(name).append(" ");
    switch (e->type) {
      case MetricType::kCounter:
        out->append("counter\n");
        break;
      case MetricType::kGauge:
        out->append("gauge\n");
        break;
      case MetricType::kHistogram:
        out->append("histogram\n");
        break;
    }
    if (e->type == MetricType::kHistogram) {
      const HistogramMetric& h = *e->histogram;
      uint64_t cumulative = 0;
      char buf[64];
      for (size_t i = 0; i <= h.bounds_.size(); ++i) {
        cumulative += h.buckets_[i].load(std::memory_order_relaxed);
        out->append(name).append("_bucket{le=\"");
        if (i < h.bounds_.size()) {
          AppendDouble(h.bounds_[i], out);
        } else {
          out->append("+Inf");
        }
        std::snprintf(buf, sizeof(buf), "\"} %llu\n",
                      static_cast<unsigned long long>(cumulative));
        out->append(buf);
      }
      out->append(name).append("_sum ");
      AppendDouble(h.sum_.load(std::memory_order_relaxed), out);
      out->push_back('\n');
      out->append(name).append("_count ");
      std::snprintf(buf, sizeof(buf), "%llu\n",
                    static_cast<unsigned long long>(cumulative));
      out->append(buf);
    } else {
      out->append(name).append(" ");
      AppendDouble(e->scalar->value(), out);
      out->push_back('\n');
    }
  }
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* reg = new MetricsRegistry();  // process lifetime
  return *reg;
}

void FoldProgXeStats(const ProgXeStats& s, MetricsRegistry* reg) {
  struct Row {
    const char* name;
    const char* help;
    double value;
  };
  const Row rows[] = {
      {"progxe_executor_r_rows", "Left-source rows of folded runs",
       static_cast<double>(s.r_rows)},
      {"progxe_executor_t_rows", "Right-source rows of folded runs",
       static_cast<double>(s.t_rows)},
      {"progxe_executor_regions_created_total",
       "Output regions created by the look-ahead phase",
       static_cast<double>(s.regions_created)},
      {"progxe_executor_regions_processed_total",
       "Regions fully joined by the region loop",
       static_cast<double>(s.regions_processed)},
      {"progxe_executor_regions_discarded_total",
       "Regions discarded at runtime, by seed, or pruned by look-ahead",
       static_cast<double>(s.regions_discarded_runtime +
                           s.regions_discarded_seed +
                           s.regions_pruned_lookahead)},
      {"progxe_executor_join_pairs_total",
       "Join pairs expanded through the tuple pipeline",
       static_cast<double>(s.join_pairs_generated)},
      {"progxe_executor_dominance_comparisons_total",
       "Point dominance comparisons performed",
       static_cast<double>(s.dominance_comparisons)},
      {"progxe_executor_tuples_dominated_on_insert_total",
       "Tuples rejected at insert by an existing dominator",
       static_cast<double>(s.tuples_dominated_on_insert)},
      {"progxe_executor_tuples_evicted_total",
       "Resident tuples evicted by a later dominator",
       static_cast<double>(s.tuples_evicted)},
      {"progxe_executor_results_emitted_total",
       "Final skyline results emitted",
       static_cast<double>(s.results_emitted)},
      {"progxe_executor_results_emitted_early_total",
       "Results emitted before the last region finished",
       static_cast<double>(s.results_emitted_early)},
      {"progxe_executor_cells_flushed_total",
       "Output cells flushed as final by ProgDetermine",
       static_cast<double>(s.cells_flushed)},
  };
  for (const Row& row : rows) {
    reg->GetCounter(row.name, row.help)->Set(row.value);
  }
}

void FoldSchedulerStats(const SchedulerStats& s, MetricsRegistry* reg) {
  reg->GetGauge("progxe_scheduler_queued", "Queries waiting for admission")
      ->Set(static_cast<double>(s.queued));
  reg->GetGauge("progxe_scheduler_running", "Admitted queries holding a slot")
      ->Set(static_cast<double>(s.running));
  struct Row {
    const char* name;
    const char* help;
    double value;
  };
  const Row rows[] = {
      {"progxe_scheduler_submitted_total", "Accepted Submit calls",
       static_cast<double>(s.submitted)},
      {"progxe_scheduler_finished_total", "Queries ended kFinished",
       static_cast<double>(s.finished)},
      {"progxe_scheduler_cancelled_total", "Queries ended kCancelled",
       static_cast<double>(s.cancelled)},
      {"progxe_scheduler_failed_total", "Queries ended kFailed",
       static_cast<double>(s.failed)},
      {"progxe_scheduler_deadline_exceeded_total",
       "Queries ended kDeadlineExceeded",
       static_cast<double>(s.deadline_exceeded)},
      {"progxe_scheduler_partial_total", "Queries ended kPartial",
       static_cast<double>(s.partial)},
      {"progxe_scheduler_slices_total", "NextBatch slices served",
       static_cast<double>(s.slices)},
      {"progxe_scheduler_sliced_pairs_total",
       "Join pairs processed across slices",
       static_cast<double>(s.sliced_pairs)},
      {"progxe_scheduler_batches_total", "Non-empty OnBatch deliveries",
       static_cast<double>(s.batches)},
      {"progxe_scheduler_results_total", "Result tuples delivered to sinks",
       static_cast<double>(s.results)},
      {"progxe_shard_retries_total",
       "Shard re-opens across terminal queries",
       static_cast<double>(s.shard_retries)},
      {"progxe_shard_abandoned_total",
       "Shards dropped after retry exhaustion across terminal queries",
       static_cast<double>(s.shards_abandoned)},
      {"progxe_prepare_cache_hits_total",
       "Stream opens that reused cached prepared state",
       static_cast<double>(s.prepare_hits)},
      {"progxe_prepare_cache_misses_total",
       "Stream opens that built prepared state anew",
       static_cast<double>(s.prepare_misses)},
      {"progxe_prepare_cache_evictions_total",
       "Prepared-state entries LRU-evicted past a budget",
       static_cast<double>(s.prepare_evictions)},
  };
  for (const Row& row : rows) {
    reg->GetCounter(row.name, row.help)->Set(row.value);
  }
  reg->GetGauge("progxe_prepare_cache_entries",
                "Prepared-state cache entries resident now")
      ->Set(static_cast<double>(s.prepare_cache_entries));
  reg->GetGauge("progxe_prepare_cache_bytes",
                "Approximate prepared-state cache bytes resident now")
      ->Set(static_cast<double>(s.prepare_cache_bytes));

  // The scheduler's log2-µs slice-latency histogram, re-based to seconds:
  // bucket 0 is < 1 µs, bucket i covers [2^(i-1), 2^i) µs, the last bucket
  // is open-ended and maps onto +Inf.
  std::vector<double> bounds;
  bounds.reserve(SchedulerStats::kSliceLatencyBuckets - 1);
  double approx_sum = 0.0;
  std::vector<uint64_t> counts(SchedulerStats::kSliceLatencyBuckets, 0);
  for (size_t i = 0; i < SchedulerStats::kSliceLatencyBuckets; ++i) {
    counts[i] = s.slice_latency_us_log2[i];
    const double upper_us =
        i + 1 < SchedulerStats::kSliceLatencyBuckets
            ? static_cast<double>(uint64_t{1} << i)
            : static_cast<double>(uint64_t{1}
                                  << (SchedulerStats::kSliceLatencyBuckets - 1));
    if (i + 1 < SchedulerStats::kSliceLatencyBuckets) {
      bounds.push_back(upper_us * 1e-6);
    }
    approx_sum += static_cast<double>(counts[i]) * upper_us * 1e-6;
  }
  HistogramMetric* h = reg->GetHistogram(
      "progxe_scheduler_slice_latency_seconds",
      "Wall-clock latency of served NextBatch slices (log2 buckets; sum is "
      "an upper-edge approximation)",
      std::move(bounds));
  h->SetCounts(counts, approx_sum);
}

void FoldShardCoverage(const ShardCoverage& c, MetricsRegistry* reg) {
  reg->GetGauge("progxe_shard_coverage_shards",
                "Sub-streams planned by the most recent folded stream")
      ->Set(static_cast<double>(c.shards));
  reg->GetGauge("progxe_shard_coverage_completed",
                "Shards that delivered everything")
      ->Set(static_cast<double>(c.completed));
  reg->GetGauge("progxe_shard_coverage_abandoned",
                "Shards dropped after retry exhaustion")
      ->Set(static_cast<double>(c.abandoned));
  reg->GetCounter("progxe_shard_coverage_retries_total",
                  "Shard re-opens over the folded stream's life")
      ->Set(static_cast<double>(c.retries));
  reg->GetCounter("progxe_retry_replay_pairs_saved",
                  "Join pairs checkpointed retries skipped re-generating")
      ->Set(static_cast<double>(c.replay_pairs_saved));
}

void FoldObservability(MetricsRegistry* reg) {
  reg->GetCounter("progxe_trace_dropped_events_total",
                  "Trace events dropped to ring-buffer overflow")
      ->Set(static_cast<double>(Tracing::dropped()));
  reg->GetGauge("progxe_trace_buffered_events",
                "Trace events currently buffered across threads")
      ->Set(static_cast<double>(Tracing::buffered()));
  FaultInjector* env = FaultInjector::FromEnv();
  reg->GetCounter("progxe_fault_fires_total",
                  "Faults fired by the ambient PROGXE_FAULT_SITES injector")
      ->Set(env != nullptr ? static_cast<double>(env->fires()) : 0.0);
}

}  // namespace progxe
