// Unified metrics registry with Prometheus text exposition.
//
// One process-wide MetricsRegistry (GlobalMetrics()) holds named counters,
// gauges and histograms. The engine's snapshot structs stay the source of
// truth — ProgXeStats, SchedulerStats and ShardCoverage are folded into the
// registry at export time by the Fold* helpers below, so a scrape always
// reflects a consistent point-in-time snapshot and the hot path never pays
// for a registry update:
//
//   MetricsRegistry& reg = GlobalMetrics();
//   FoldSchedulerStats(scheduler.stats(), &reg);   // sched + cache + shard
//   FoldProgXeStats(terminal_totals, &reg);        // executor counters
//   FoldObservability(&reg);                       // trace drops, fault fires
//   std::string text;
//   reg.RenderPrometheus(&text);                   // # HELP/# TYPE/samples
//
// `progxe_server` exposes exactly this via its `metrics` command. Metric
// names follow the Prometheus convention `progxe_<subsystem>_<what>[_total]`
// and are listed in docs/ARCHITECTURE.md's observability section.
//
// Registration is mutex-guarded and idempotent (same name returns the same
// metric; a type mismatch aborts loudly). Value updates are relaxed atomics,
// safe from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"

namespace progxe {

struct ProgXeStats;    // progxe/config.h
struct SchedulerStats; // service/scheduler.h
struct ShardCoverage;  // progxe/stream.h

enum class MetricType : uint8_t { kCounter, kGauge, kHistogram };

/// A scalar metric (counter or gauge). Counters are exposed cumulatively;
/// `Set` overwrites (snapshot folding), `Add` accumulates (live updates).
class Metric {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  void Increment() { Add(1.0); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Metric(std::string name, std::string help, MetricType type)
      : name_(std::move(name)), help_(std::move(help)), type_(type) {}

  std::string name_, help_;
  MetricType type_;
  std::atomic<double> value_{0.0};

  PROGXE_DISALLOW_COPY_AND_ASSIGN(Metric);
};

/// A histogram with fixed upper bucket bounds (exclusive of the implicit
/// +Inf bucket). Exposed in the cumulative `_bucket{le=...}` form.
class HistogramMetric {
 public:
  /// Records one observation into the matching bucket.
  void Observe(double v);

  /// Overwrites all per-bucket counts (snapshot folding). `counts` are
  /// *non*-cumulative per-bucket tallies, one per bound plus the +Inf
  /// bucket; `sum` is the (possibly approximate) sum of observations.
  void SetCounts(const std::vector<uint64_t>& counts, double sum);

  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t count() const;

 private:
  friend class MetricsRegistry;
  HistogramMetric(std::string name, std::string help,
                  std::vector<double> bounds);

  std::string name_, help_;
  std::vector<double> bounds_;
  /// One slot per bound, plus the trailing +Inf slot.
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<double> sum_{0.0};

  PROGXE_DISALLOW_COPY_AND_ASSIGN(HistogramMetric);
};

class MetricsRegistry {
 public:
  MetricsRegistry();  // out-of-line: Entry is incomplete here
  ~MetricsRegistry();

  /// Returns the metric registered under `name`, creating it on first use.
  /// Aborts if `name` is already registered with a different type.
  Metric* GetCounter(const std::string& name, const std::string& help);
  Metric* GetGauge(const std::string& name, const std::string& help);
  HistogramMetric* GetHistogram(const std::string& name,
                                const std::string& help,
                                std::vector<double> bounds);

  /// Appends the Prometheus text exposition (# HELP, # TYPE, samples) of
  /// every registered metric, in registration order.
  void RenderPrometheus(std::string* out) const;

  size_t size() const;

  PROGXE_DISALLOW_COPY_AND_ASSIGN(MetricsRegistry);

 private:
  struct Entry;
  mutable std::mutex mtx_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// The process-wide registry (never destroyed).
MetricsRegistry& GlobalMetrics();

/// Folds one engine-run counter snapshot into `progxe_executor_*` metrics.
/// Pass a sum over runs (e.g. all terminal queries) for process totals.
void FoldProgXeStats(const ProgXeStats& stats, MetricsRegistry* reg);

/// Folds a scheduler snapshot into `progxe_scheduler_*` (incl. the
/// slice-latency histogram as progxe_scheduler_slice_latency_seconds),
/// `progxe_prepare_cache_*` and `progxe_shard_*` metrics.
void FoldSchedulerStats(const SchedulerStats& stats, MetricsRegistry* reg);

/// Folds shard coverage of one stream into `progxe_shard_coverage_*`.
void FoldShardCoverage(const ShardCoverage& coverage, MetricsRegistry* reg);

/// Folds the observability layer's own counters (trace events dropped and
/// buffered) plus the ambient fault injector's fire count.
void FoldObservability(MetricsRegistry* reg);

}  // namespace progxe
