#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "common/logging.h"

namespace progxe {
namespace internal_trace {

std::atomic<bool> g_trace_active{false};

namespace {

using Clock = std::chrono::steady_clock;

/// One thread's ring of events. The owning thread is the only writer; the
/// per-buffer mutex only contends when an exporter snapshots a live trace.
struct ThreadBuffer {
  std::mutex mtx;
  std::vector<TraceEvent> ring;
  size_t cap = 0;       ///< fixed ring size; ring never grows past this
  uint64_t pushed = 0;  ///< total events ever pushed (dropped = pushed - kept)
  uint32_t tid = 0;     ///< small per-session thread id, stable in the export
};

struct Registry {
  std::mutex mtx;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  /// Bumped by Start(); a thread holding a buffer from an older generation
  /// re-registers on its next Record.
  std::atomic<uint64_t> generation{0};
  size_t capacity = 1 << 16;  ///< ring slots per thread, power of two
  Clock::time_point origin = Clock::now();
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // leaked: threads may outlive main
  return *r;
}

/// Thread-local handle onto this thread's buffer for the current session.
struct TlsSlot {
  std::shared_ptr<ThreadBuffer> buffer;
  uint64_t generation = ~uint64_t{0};
};

thread_local TlsSlot tls_slot;

ThreadBuffer* CurrentBuffer() {
  Registry& reg = GetRegistry();
  if (tls_slot.buffer == nullptr ||
      tls_slot.generation != reg.generation.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(reg.mtx);
    auto buf = std::make_shared<ThreadBuffer>();
    buf->cap = reg.capacity;
    buf->ring.reserve(reg.capacity);
    // The same small id log lines carry (`tid=N`), so a trace track and the
    // log stream correlate by eyeball.
    buf->tid = static_cast<uint32_t>(LogThreadId());
    reg.buffers.push_back(buf);
    tls_slot.buffer = std::move(buf);
    tls_slot.generation = reg.generation.load(std::memory_order_relaxed);
  }
  return tls_slot.buffer.get();
}

size_t RoundUpPow2(size_t v) {
  size_t p = 8;
  while (p < v) p <<= 1;
  return p;
}

void AppendJsonEscaped(const char* s, std::string* out) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

void AppendEvent(const TraceEvent& ev, uint32_t tid, std::string* out) {
  char buf[96];
  out->append("{\"name\":\"");
  AppendJsonEscaped(ev.name, out);
  out->append("\",\"cat\":\"");
  AppendJsonEscaped(ev.cat, out);
  out->append("\",\"ph\":\"");
  out->push_back(ev.phase);
  out->push_back('"');
  // Chrome trace timestamps are microseconds; emit fractional µs to keep
  // full ns resolution.
  std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f", ev.ts_ns / 1000.0);
  out->append(buf);
  if (ev.phase == 'X') {
    std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", ev.dur_ns / 1000.0);
    out->append(buf);
  } else {
    out->append(",\"s\":\"t\"");  // instant scope: thread
  }
  std::snprintf(buf, sizeof(buf), ",\"pid\":1,\"tid\":%u", tid);
  out->append(buf);
  if (ev.num_args > 0) {
    out->append(",\"args\":{");
    for (uint8_t a = 0; a < ev.num_args; ++a) {
      if (a > 0) out->push_back(',');
      out->push_back('"');
      AppendJsonEscaped(ev.arg_names[a], out);
      std::snprintf(buf, sizeof(buf), "\":%lld",
                    static_cast<long long>(ev.arg_vals[a]));
      out->append(buf);
    }
    out->push_back('}');
  }
  out->push_back('}');
}

}  // namespace

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now() - GetRegistry().origin)
          .count());
}

void Record(const TraceEvent& ev) {
  ThreadBuffer* buf = CurrentBuffer();
  std::lock_guard<std::mutex> lock(buf->mtx);
  if (buf->ring.size() < buf->cap) {
    buf->ring.push_back(ev);
  } else {
    // Drop-oldest: overwrite the ring slot the oldest event occupies.
    buf->ring[buf->pushed % buf->cap] = ev;
  }
  ++buf->pushed;
}

}  // namespace internal_trace

using internal_trace::GetRegistry;
using internal_trace::Registry;
using internal_trace::RoundUpPow2;

void Tracing::Start(size_t events_per_thread) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mtx);
  reg.buffers.clear();
  reg.capacity = RoundUpPow2(events_per_thread);
  reg.origin = std::chrono::steady_clock::now();
  reg.generation.fetch_add(1, std::memory_order_release);
  internal_trace::g_trace_active.store(true, std::memory_order_release);
}

void Tracing::Stop() {
  internal_trace::g_trace_active.store(false, std::memory_order_release);
}

uint64_t Tracing::dropped() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mtx);
  uint64_t total = 0;
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mtx);
    total += buf->pushed - buf->ring.size();
  }
  return total;
}

uint64_t Tracing::buffered() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mtx);
  uint64_t total = 0;
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mtx);
    total += buf->ring.size();
  }
  return total;
}

void Tracing::RenderJson(std::string* out) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mtx);
  out->clear();
  uint64_t dropped_total = 0;
  out->append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  bool first = true;
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mtx);
    // Thread-name metadata row so Perfetto labels tracks.
    if (!first) out->push_back(',');
    first = false;
    char meta[128];
    std::snprintf(meta, sizeof(meta),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"progxe-t%u\"}}",
                  buf->tid, buf->tid);
    out->append(meta);
    const size_t n = buf->ring.size();
    dropped_total += buf->pushed - n;
    // Oldest-first ring order: once wrapped, the slot at pushed % cap is
    // the oldest surviving event.
    const size_t start = buf->pushed > n ? buf->pushed % n : 0;
    for (size_t i = 0; i < n; ++i) {
      out->push_back(',');
      internal_trace::AppendEvent(buf->ring[(start + i) % n], buf->tid, out);
    }
  }
  out->append("],\"otherData\":{\"dropped_events\":");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(dropped_total));
  out->append(buf);
  out->append("}}");
}

Status Tracing::WriteJson(const std::string& path) {
  std::string json;
  RenderJson(&json);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace output file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IOError("short write to trace output file: " + path);
  }
  PROGXE_LOG(Debug) << "trace written to " << path << " (" << json.size()
                    << " bytes)";
  return Status::OK();
}

}  // namespace progxe
