// Low-overhead span tracing for the ProgXe stack.
//
// A process-wide trace session is armed with Tracing::Start() and drained
// with Tracing::WriteJson()/RenderJson(), which emit Chrome `trace_event`
// JSON loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Between
// Start and Stop, RAII spans and instant events record into *thread-local*
// ring buffers:
//
//   {
//     TraceSpan span(trace_cats::kShard, "shard.pump");
//     span.arg("shard", shard_index);
//     ... work ...
//   }                      // duration recorded at scope exit
//   TraceInstant(trace_cats::kCache, "cache.hit", "entries", n);
//
// Each recording thread owns one fixed-capacity ring; on overflow the
// oldest events are dropped and counted (Tracing::dropped()), so tracing
// never blocks or allocates on the hot path after the ring warms up.
// Name/category/arg-name strings must be string literals (or otherwise
// outlive the trace session): only the pointer is stored.
//
// Tracing disabled is free by contract: TraceSpan's constructor is one
// predicted-not-taken branch on a relaxed atomic flag (bench_sharded
// measures `trace_hook_ns_per_call`; tools/check_merge_budget.py gates it,
// same as the disabled fault-injection hook). Tracing is observation only:
// it never touches ProgXeStats/SchedulerStats counters or result order, so
// every equivalence suite is bit-identical with tracing on and off.
//
// Span taxonomy (keep docs/ARCHITECTURE.md's observability table in sync):
//   prepare   prepare.build + per-stage sub-spans (push_through, sigma,
//             partition, lookahead)
//   region    region.pick / region.pipeline / region.flush / region.discard
//   pipeline  pipeline.chunk — one per parallel join->map worker chunk
//   sched     sched.slice (args: query, pairs) + admit/done instants
//   shard     shard.pump / shard.merge / shard.release spans,
//             shard.retry_backoff / shard.abandon instants
//   cache     cache.hit / cache.miss instants
//   net       net.send / net.recv frame I/O spans,
//             net.wait_watermark — coordinator blocked on a pump reply
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/macros.h"
#include "common/status.h"

namespace progxe {

namespace trace_cats {
inline constexpr const char kPrepare[] = "prepare";
inline constexpr const char kRegion[] = "region";
inline constexpr const char kPipeline[] = "pipeline";
inline constexpr const char kSched[] = "sched";
inline constexpr const char kShard[] = "shard";
inline constexpr const char kCache[] = "cache";
inline constexpr const char kNet[] = "net";
}  // namespace trace_cats

namespace internal_trace {

/// Armed/disarmed flag, read on every hook. Relaxed is sound: arming
/// happens-before the traced work in every supported usage (Start precedes
/// thread launch or is separated by the registry mutex), and a racy read
/// merely records or skips one boundary event.
extern std::atomic<bool> g_trace_active;

/// One recorded event. POD so ring slots recycle without destructor work.
struct TraceEvent {
  const char* name;
  const char* cat;
  uint64_t ts_ns;   ///< monotonic, relative to the session's Start()
  uint64_t dur_ns;  ///< 0 for instants
  char phase;       ///< 'X' complete span, 'i' instant
  uint8_t num_args;
  const char* arg_names[2];
  int64_t arg_vals[2];
};

/// Nanoseconds on the monotonic clock since Tracing::Start().
uint64_t NowNs();

/// Appends one event to the calling thread's ring buffer (registering the
/// buffer on first use). Only called with tracing active.
void Record(const TraceEvent& ev);

}  // namespace internal_trace

/// Process-wide trace session control. All methods are thread-safe; Start
/// and Stop are expected from a driver thread (tool main / test body).
class Tracing {
 public:
  /// Arms tracing: clears any previous session's buffers, resets the time
  /// origin and dropped-count, and sets the per-thread ring capacity
  /// (rounded up to a power of two, minimum 8).
  static void Start(size_t events_per_thread = size_t{1} << 16);

  /// Disarms tracing. Recorded events stay buffered for export.
  static void Stop();

  /// True between Start and Stop. The disabled path is one predicted
  /// branch on a relaxed atomic load.
  static bool active() {
    return PROGXE_PREDICT_FALSE(
        internal_trace::g_trace_active.load(std::memory_order_relaxed));
  }

  /// Events dropped (oldest-first ring overflow) since Start, summed over
  /// all thread buffers.
  static uint64_t dropped();

  /// Events currently buffered, summed over all thread buffers.
  static uint64_t buffered();

  /// Renders the buffered events as a Chrome trace_event JSON object
  /// ({"traceEvents": [...], ...}). Safe while tracing is still active
  /// (concurrent writers are excluded per-buffer).
  static void RenderJson(std::string* out);

  /// RenderJson to a file. Fails with kIoError if the file can't be
  /// written.
  static Status WriteJson(const std::string& path);
};

/// RAII complete-span recorder ("ph":"X"). Constructed disabled when
/// tracing is off: one predicted branch, nothing stored.
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name) {
    if (PROGXE_PREDICT_TRUE(!Tracing::active())) {
      ev_.name = nullptr;
      return;
    }
    ev_.name = name;
    ev_.cat = cat;
    ev_.num_args = 0;
    ev_.ts_ns = internal_trace::NowNs();
  }

  /// Attaches a numeric argument (up to two; extras are dropped). No-op on
  /// a disabled span. `name` must outlive the trace session.
  void arg(const char* name, int64_t value) {
    if (PROGXE_PREDICT_TRUE(ev_.name == nullptr)) return;
    if (ev_.num_args < 2) {
      ev_.arg_names[ev_.num_args] = name;
      ev_.arg_vals[ev_.num_args] = value;
      ++ev_.num_args;
    }
  }

  ~TraceSpan() {
    if (PROGXE_PREDICT_TRUE(ev_.name == nullptr)) return;
    ev_.dur_ns = internal_trace::NowNs() - ev_.ts_ns;
    ev_.phase = 'X';
    internal_trace::Record(ev_);
  }

  PROGXE_DISALLOW_COPY_AND_ASSIGN(TraceSpan);

 private:
  internal_trace::TraceEvent ev_;
};

/// Records an instant event ("ph":"i"). Free when tracing is off.
inline void TraceInstant(const char* cat, const char* name) {
  if (PROGXE_PREDICT_TRUE(!Tracing::active())) return;
  internal_trace::TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_ns = internal_trace::NowNs();
  ev.dur_ns = 0;
  ev.phase = 'i';
  ev.num_args = 0;
  internal_trace::Record(ev);
}

inline void TraceInstant(const char* cat, const char* name, const char* arg0,
                         int64_t val0) {
  if (PROGXE_PREDICT_TRUE(!Tracing::active())) return;
  internal_trace::TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_ns = internal_trace::NowNs();
  ev.dur_ns = 0;
  ev.phase = 'i';
  ev.num_args = 1;
  ev.arg_names[0] = arg0;
  ev.arg_vals[0] = val0;
  internal_trace::Record(ev);
}

inline void TraceInstant(const char* cat, const char* name, const char* arg0,
                         int64_t val0, const char* arg1, int64_t val1) {
  if (PROGXE_PREDICT_TRUE(!Tracing::active())) return;
  internal_trace::TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_ns = internal_trace::NowNs();
  ev.dur_ns = 0;
  ev.phase = 'i';
  ev.num_args = 2;
  ev.arg_names[0] = arg0;
  ev.arg_vals[0] = val0;
  ev.arg_names[1] = arg1;
  ev.arg_vals[1] = val1;
  internal_trace::Record(ev);
}

}  // namespace progxe
