#include "outputspace/lookahead.h"

#include <algorithm>
#include <limits>

#include "skyline/skyline.h"

namespace progxe {

namespace {

/// True iff point u Pareto-dominates point v (minimize-all, strict).
bool PointDominates(const double* u, const double* v, int k) {
  bool strict = false;
  for (int i = 0; i < k; ++i) {
    if (u[i] > v[i]) return false;
    if (u[i] < v[i]) strict = true;
  }
  return strict;
}

}  // namespace

Result<LookaheadResult> OutputSpaceLookahead(const InputPartitioning& r_grid,
                                             const InputPartitioning& t_grid,
                                             const CanonicalMapper& mapper,
                                             const LookaheadOptions& options) {
  LookaheadResult out;
  const int k = mapper.output_dimensions();

  // --- Step 1: viable partition pairs -> regions ---------------------------
  const auto& r_parts = r_grid.partitions();
  const auto& t_parts = t_grid.partitions();
  out.stats.pairs_total = r_parts.size() * t_parts.size();

  std::vector<Interval> bounds(static_cast<size_t>(k));
  for (size_t a = 0; a < r_parts.size(); ++a) {
    for (size_t b = 0; b < t_parts.size(); ++b) {
      const InputPartition& pa = r_parts[a];
      const InputPartition& pb = t_parts[b];
      if (!pa.signature.MightIntersect(pb.signature)) {
        ++out.stats.pairs_skipped_signature;
        continue;
      }
      Region region;
      region.id = static_cast<int32_t>(out.regions.size());
      region.a = static_cast<int32_t>(a);
      region.b = static_cast<int32_t>(b);
      mapper.CombineBounds(pa.bounds.data(), pb.bounds.data(), bounds.data());
      region.bounds = bounds;
      // A positive exact-signature intersection guarantees >= 1 join result.
      region.guaranteed =
          pa.signature.exact() && pb.signature.exact();
      out.regions.push_back(std::move(region));
    }
  }
  out.stats.regions_created = out.regions.size();

  // --- Step 2: output grid over the hull of all region bounds --------------
  std::vector<Interval> hull(static_cast<size_t>(k), Interval(0.0, 0.0));
  if (!out.regions.empty()) {
    hull = out.regions.front().bounds;
    for (const Region& region : out.regions) {
      for (int j = 0; j < k; ++j) {
        hull[static_cast<size_t>(j)] =
            hull[static_cast<size_t>(j)].Hull(region.bounds[static_cast<size_t>(j)]);
      }
    }
  }
  out.output_grid = GridGeometry(hull, options.output_cells_per_dim);
  if (out.output_grid.total_cells() > options.max_output_cells) {
    return Status::InvalidArgument(
        "output grid would have " +
        std::to_string(out.output_grid.total_cells()) +
        " cells; lower output_cells_per_dim or the output dimensionality");
  }

  // Cell boxes per region.
  for (Region& region : out.regions) {
    region.lo_cell.resize(static_cast<size_t>(k));
    region.hi_cell.resize(static_cast<size_t>(k));
    for (int j = 0; j < k; ++j) {
      out.output_grid.CoordRange(j, region.bounds[static_cast<size_t>(j)],
                                 &region.lo_cell[static_cast<size_t>(j)],
                                 &region.hi_cell[static_cast<size_t>(j)]);
    }
  }

  // --- Step 3: region-level domination pruning (Example 2) -----------------
  // Pareto frontier (minimize) of guaranteed regions' upper corners; any
  // region whose lower corner is dominated by a frontier point can never
  // contribute and is pruned before any join work.
  std::vector<double> uppers;
  for (const Region& region : out.regions) {
    if (!region.guaranteed) continue;
    for (int j = 0; j < k; ++j) {
      uppers.push_back(region.bounds[static_cast<size_t>(j)].hi);
    }
  }
  if (!uppers.empty()) {
    PointView upper_view{uppers.data(), uppers.size() / static_cast<size_t>(k),
                         k};
    std::vector<uint32_t> frontier_idx = SkylineSFS(upper_view);
    for (uint32_t fi : frontier_idx) {
      const double* p = upper_view.point(fi);
      out.guaranteed_upper_frontier.insert(out.guaranteed_upper_frontier.end(),
                                           p, p + k);
    }
  }
  const size_t frontier_n =
      out.guaranteed_upper_frontier.size() / static_cast<size_t>(k);

  std::vector<double> lower(static_cast<size_t>(k));
  for (Region& region : out.regions) {
    for (int j = 0; j < k; ++j) {
      lower[static_cast<size_t>(j)] = region.bounds[static_cast<size_t>(j)].lo;
    }
    for (size_t f = 0; f < frontier_n; ++f) {
      const double* u =
          out.guaranteed_upper_frontier.data() + f * static_cast<size_t>(k);
      if (PointDominates(u, lower.data(), k)) {
        region.pruned = true;
        ++out.stats.regions_pruned;
        break;
      }
    }
  }

  // --- Step 4: partition-level marking (Example 3) -------------------------
  // A cell is non-contributing when some guaranteed region's upper corner
  // dominates the cell's lower corner: the guaranteed tuple (<= upper in
  // every dimension) then dominates every tuple that could map there.
  out.marked.assign(static_cast<size_t>(out.output_grid.total_cells()), 0);
  if (frontier_n > 0) {
    std::vector<CellCoord> coords(static_cast<size_t>(k));
    std::vector<double> cell_lo(static_cast<size_t>(k));
    const CellIndex total = out.output_grid.total_cells();
    for (CellIndex c = 0; c < total; ++c) {
      out.output_grid.CoordsOfIndex(c, coords.data());
      for (int j = 0; j < k; ++j) {
        cell_lo[static_cast<size_t>(j)] =
            out.output_grid.CellLower(j, coords[static_cast<size_t>(j)]);
      }
      for (size_t f = 0; f < frontier_n; ++f) {
        const double* u =
            out.guaranteed_upper_frontier.data() + f * static_cast<size_t>(k);
        if (PointDominates(u, cell_lo.data(), k)) {
          out.marked[static_cast<size_t>(c)] = 1;
          ++out.stats.cells_marked;
          break;
        }
      }
    }
  }

  return out;
}

}  // namespace progxe
