// Output-space look-ahead (Section III-A): build all viable output regions,
// prune dominated regions, and mark dominated output partitions — all
// before a single tuple is joined.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "grid/input_grid.h"
#include "grid/partitioning.h"
#include "mapping/canonical.h"
#include "outputspace/region.h"

namespace progxe {

/// Statistics of one look-ahead pass.
struct LookaheadStats {
  /// All partition pairs considered (|IR| * |IT|).
  size_t pairs_total = 0;
  /// Pairs skipped because signatures are provably disjoint.
  size_t pairs_skipped_signature = 0;
  /// Viable regions created.
  size_t regions_created = 0;
  /// Regions pruned by region-level domination (Example 2).
  size_t regions_pruned = 0;
  /// Output cells marked non-contributing (Example 3).
  size_t cells_marked = 0;
};

/// Result of look-ahead: the output grid, the region collection and the
/// per-cell non-contributing marks.
struct LookaheadResult {
  GridGeometry output_grid;
  std::vector<Region> regions;
  /// marked[cell] == 1 => every tuple mapping there is dominated by a
  /// guaranteed region's output and can be discarded unseen.
  std::vector<uint8_t> marked;
  /// The Pareto frontier (canonical-minimal) of guaranteed regions' upper
  /// corners; flat array of k-dim points. Used for soundness tests.
  std::vector<double> guaranteed_upper_frontier;
  LookaheadStats stats;
};

struct LookaheadOptions {
  int output_cells_per_dim = 10;
  /// Hard cap on the dense output-cell table; exceeded => InvalidArgument.
  int64_t max_output_cells = 8 * 1000 * 1000;
};

/// Runs look-ahead over the two gridded sources.
Result<LookaheadResult> OutputSpaceLookahead(const InputPartitioning& r_grid,
                                             const InputPartitioning& t_grid,
                                             const CanonicalMapper& mapper,
                                             const LookaheadOptions& options);

}  // namespace progxe
