#include "outputspace/region.h"

#include <sstream>

namespace progxe {

std::string Region::ToString() const {
  std::ostringstream os;
  os << "R(" << a << "," << b << ")[";
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (i > 0) os << " x ";
    os << bounds[i].ToString();
  }
  os << "]";
  if (guaranteed) os << " guaranteed";
  if (pruned) os << " pruned";
  if (processed) os << " processed";
  if (discarded) os << " discarded";
  return os.str();
}

}  // namespace progxe
