// Output-space regions R_{a,b} (Section III-A, Table I).
//
// A region is the rectangular box of the canonical output space into which
// every join result of input-partition pair (I^R_a, I^T_b) must fall, as
// determined by pushing the partitions' contribution bounds through the
// mapping functions. Regions carry the ordering state used by ProgOrder.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grid/grid_geometry.h"
#include "mapping/interval.h"

namespace progxe {

struct Region {
  /// Dense region id (index into the region collection).
  int32_t id = -1;
  /// Input partition indices: a into R's grid, b into T's grid.
  int32_t a = -1;
  int32_t b = -1;

  /// Real-valued canonical output bounds, one interval per output dimension.
  std::vector<Interval> bounds;

  /// Inclusive output-grid cell box covered by `bounds`.
  std::vector<CellCoord> lo_cell;
  std::vector<CellCoord> hi_cell;

  /// True iff at least one join result is guaranteed to exist (exact
  /// signatures sharing a value). Only guaranteed regions may prune others.
  bool guaranteed = false;

  /// Eliminated during output-space look-ahead (Example 2): every tuple this
  /// region could produce is dominated by a guaranteed region's results.
  bool pruned = false;

  /// Set when tuple-level processing of this region has completed.
  bool processed = false;

  /// Discarded at runtime: dominated by actually-generated tuples
  /// (Algorithm 1, line 9).
  bool discarded = false;

  // --- ProgOrder state (Section IV) ---------------------------------------
  /// Estimated number of skyline results (Equation 1).
  double cardinality_est = 0.0;
  /// Estimated tuple-level processing cost (Equation 3/7).
  double cost_est = 1.0;
  /// Progressive partition count (Definition 2), refreshed incrementally.
  int64_t prog_count = 0;
  /// rank = Benefit / Cost (Equation 8).
  double rank = 0.0;
  /// Bumped whenever rank changes; stale priority-queue entries are skipped.
  uint32_t rank_version = 0;
  /// Number of unprocessed regions that could (partially or completely)
  /// eliminate this one: the EL-Graph in-degree. Roots have 0.
  int64_t elim_indegree = 0;

  /// True iff the region still awaits tuple-level processing.
  bool Active() const { return !pruned && !processed && !discarded; }

  int64_t BoxVolume() const {
    int64_t v = 1;
    for (size_t i = 0; i < lo_cell.size(); ++i) {
      v *= static_cast<int64_t>(hi_cell[i] - lo_cell[i] + 1);
    }
    return v;
  }

  std::string ToString() const;
};

/// True iff there exist cells p in box(u), q in box(v) with p strictly
/// below q in every dimension — i.e. u could (at least partially) eliminate
/// v once populated. This is the EL-Graph edge predicate u -> v.
inline bool CanEliminate(const Region& u, const Region& v) {
  for (size_t i = 0; i < u.lo_cell.size(); ++i) {
    if (!(u.lo_cell[i] < v.hi_cell[i])) return false;
  }
  return true;
}

/// True iff u completely eliminates v at the cell level: every cell of v has
/// some cell of u strictly below it in all dimensions.
inline bool CompletelyEliminates(const Region& u, const Region& v) {
  for (size_t i = 0; i < u.lo_cell.size(); ++i) {
    if (!(u.lo_cell[i] < v.lo_cell[i])) return false;
  }
  return true;
}

}  // namespace progxe
