#include "prefs/dominance.h"

#include <cassert>

namespace progxe {

namespace {

// Per-dimension outcome folded into two bits: better-anywhere /
// worse-anywhere.
struct Fold {
  bool a_better = false;
  bool a_worse = false;
};

inline Fold FoldCompare(std::span<const double> a, std::span<const double> b,
                        const Preference& pref) {
  assert(a.size() == b.size());
  assert(static_cast<int>(a.size()) == pref.dimensions());
  Fold f;
  for (size_t i = 0; i < a.size(); ++i) {
    const double av = pref.Canonicalize(static_cast<int>(i), a[i]);
    const double bv = pref.Canonicalize(static_cast<int>(i), b[i]);
    if (av < bv) {
      f.a_better = true;
    } else if (av > bv) {
      f.a_worse = true;
    }
    if (f.a_better && f.a_worse) break;  // incomparable; stop early
  }
  return f;
}

}  // namespace

DomResult Compare(std::span<const double> a, std::span<const double> b,
                  const Preference& pref, DomCounter* counter) {
  if (counter != nullptr) ++counter->comparisons;
  Fold f = FoldCompare(a, b, pref);
  if (f.a_better && !f.a_worse) return DomResult::kLeftDominates;
  if (!f.a_better && f.a_worse) return DomResult::kRightDominates;
  if (!f.a_better && !f.a_worse) return DomResult::kEqual;
  return DomResult::kIncomparable;
}

bool Dominates(std::span<const double> a, std::span<const double> b,
               const Preference& pref, DomCounter* counter) {
  if (counter != nullptr) ++counter->comparisons;
  Fold f = FoldCompare(a, b, pref);
  return f.a_better && !f.a_worse;
}

bool WeaklyDominates(std::span<const double> a, std::span<const double> b,
                     const Preference& pref, DomCounter* counter) {
  if (counter != nullptr) ++counter->comparisons;
  for (size_t i = 0; i < a.size(); ++i) {
    const double av = pref.Canonicalize(static_cast<int>(i), a[i]);
    const double bv = pref.Canonicalize(static_cast<int>(i), b[i]);
    if (av > bv) return false;
  }
  return true;
}

bool DominatesMin(const double* a, const double* b, int k,
                  DomCounter* counter) {
  if (counter != nullptr) ++counter->comparisons;
  bool strict = false;
  for (int i = 0; i < k; ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strict = true;
  }
  return strict;
}

DomResult CompareMin(const double* a, const double* b, int k,
                     DomCounter* counter) {
  if (counter != nullptr) ++counter->comparisons;
  bool a_better = false;
  bool a_worse = false;
  for (int i = 0; i < k; ++i) {
    if (a[i] < b[i]) {
      a_better = true;
    } else if (a[i] > b[i]) {
      a_worse = true;
    }
    if (a_better && a_worse) return DomResult::kIncomparable;
  }
  if (a_better) return DomResult::kLeftDominates;
  if (a_worse) return DomResult::kRightDominates;
  return DomResult::kEqual;
}

}  // namespace progxe
