// Pairwise Pareto dominance tests with optional comparison-count
// instrumentation.
//
// Dominance comparisons are the unit of work the paper's optimizations try
// to minimize (Sections III-B, IV-C), so every algorithm in this repo routes
// its comparisons through a DomCounter to make savings measurable
// independently of wall-clock noise.
#pragma once

#include <cstdint>
#include <span>

#include "prefs/preference.h"

namespace progxe {

/// Counts dominance comparisons performed by an algorithm run.
struct DomCounter {
  uint64_t comparisons = 0;

  void Reset() { comparisons = 0; }
};

/// Full four-way comparison of two k-vectors under a preference.
DomResult Compare(std::span<const double> a, std::span<const double> b,
                  const Preference& pref, DomCounter* counter = nullptr);

/// True iff `a` strictly dominates `b` under `pref` (Definition 1).
bool Dominates(std::span<const double> a, std::span<const double> b,
               const Preference& pref, DomCounter* counter = nullptr);

/// True iff `a` is at least as good as `b` on every dimension
/// (dominates-or-equal; no strictness requirement).
bool WeaklyDominates(std::span<const double> a, std::span<const double> b,
                     const Preference& pref, DomCounter* counter = nullptr);

/// Minimize-all fast path used by the ProgXe engine on canonicalized
/// vectors: `a` dominates `b` iff a[i] <= b[i] for all i and < for some i.
bool DominatesMin(const double* a, const double* b, int k,
                  DomCounter* counter = nullptr);

/// Minimize-all four-way comparison on canonicalized vectors.
DomResult CompareMin(const double* a, const double* b, int k,
                     DomCounter* counter = nullptr);

}  // namespace progxe
