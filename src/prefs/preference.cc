#include "prefs/preference.h"

namespace progxe {

std::string Preference::ToString() const {
  std::string out;
  for (size_t i = 0; i < dirs_.size(); ++i) {
    if (i > 0) out += ",";
    out += dirs_[i] == Direction::kLowest ? "LOWEST" : "HIGHEST";
  }
  return out;
}

}  // namespace progxe
