// Pareto preference model (Section II-A of the paper).
//
// A preference is a set of equally important per-dimension orders; each
// dimension is minimized (LOWEST) or maximized (HIGHEST). Definition 1:
// tuple r dominates tuple s iff r is at least as good on every preferred
// dimension and strictly better on at least one.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace progxe {

/// Per-dimension preference direction.
enum class Direction : uint8_t { kLowest, kHighest };

/// A combined Pareto preference over k output dimensions.
class Preference {
 public:
  Preference() = default;
  explicit Preference(std::vector<Direction> dirs) : dirs_(std::move(dirs)) {}

  /// All-LOWEST preference over k dimensions (the common MCDS case).
  static Preference AllLowest(int k) {
    return Preference(std::vector<Direction>(static_cast<size_t>(k),
                                             Direction::kLowest));
  }

  /// All-HIGHEST preference over k dimensions.
  static Preference AllHighest(int k) {
    return Preference(std::vector<Direction>(static_cast<size_t>(k),
                                             Direction::kHighest));
  }

  int dimensions() const { return static_cast<int>(dirs_.size()); }
  Direction direction(int i) const { return dirs_[static_cast<size_t>(i)]; }
  const std::vector<Direction>& directions() const { return dirs_; }

  /// True iff every dimension is minimized (the canonical internal form).
  bool IsAllLowest() const {
    for (Direction d : dirs_) {
      if (d != Direction::kLowest) return false;
    }
    return true;
  }

  /// Canonicalizes a value for internal minimize-all processing:
  /// LOWEST dims pass through, HIGHEST dims are negated.
  double Canonicalize(int dim, double v) const {
    return dirs_[static_cast<size_t>(dim)] == Direction::kLowest ? v : -v;
  }

  /// Inverse of Canonicalize.
  double Decanonicalize(int dim, double v) const {
    return Canonicalize(dim, v);  // negation is an involution
  }

  /// "LOWEST,HIGHEST,..." for logging.
  std::string ToString() const;

 private:
  std::vector<Direction> dirs_;
};

/// Outcome of a pairwise dominance comparison.
enum class DomResult : uint8_t {
  kLeftDominates,
  kRightDominates,
  kEqual,
  kIncomparable,
};

}  // namespace progxe
