#include "progxe/cardinality.h"

#include <algorithm>
#include <cmath>

namespace progxe {

double FactorialD(int d_minus_1) {
  double f = 1.0;
  for (int i = 2; i <= d_minus_1; ++i) f *= static_cast<double>(i);
  return f;
}

double ExpectedSkylineSize(double n, int d) {
  if (n <= 0.0) return 0.0;
  if (d <= 1) return 1.0;
  const double logn = std::log(std::max(n, 1.0));
  const double est = std::pow(logn, static_cast<double>(d - 1)) /
                     FactorialD(d - 1);
  return std::max(est, 1.0);
}

double RegionCardinalityEstimate(double sigma, double n_a, double n_b, int d) {
  const double join_card = sigma * n_a * n_b;
  if (join_card <= 0.0) return 0.0;
  return ExpectedSkylineSize(join_card, d);
}

}  // namespace progxe
