// Skyline cardinality estimation (Equation 1).
//
// Bentley et al. and Buchta showed the expected number of maxima of n
// independently distributed d-dimensional vectors is
// Theta(ln(n)^{d-1} / (d-1)!). ProgOrder estimates the number of results a
// region can produce by applying that formula to the region's expected join
// cardinality sigma * n_a * n_b.
#pragma once

#include <cstdint>

namespace progxe {

/// (d-1)! as a double; d >= 1.
double FactorialD(int d_minus_1);

/// Expected skyline size of `n` independent d-dimensional points:
/// ln(n)^{d-1} / (d-1)!, floored at 1 for any non-empty input.
double ExpectedSkylineSize(double n, int d);

/// Equation 1: estimated result capacity of a region whose input partitions
/// hold n_a and n_b tuples under join selectivity sigma.
double RegionCardinalityEstimate(double sigma, double n_a, double n_b, int d);

}  // namespace progxe
