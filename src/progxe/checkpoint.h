// SessionCheckpoint: a compact, resumable snapshot of a ProgXeSession's
// region cursor, exported at region boundaries and consumed by a re-opened
// incarnation of the same prepared inputs (PR 10).
//
// The checkpoint does NOT carry tuples or table state — regeneration is the
// recovery mechanism, the checkpoint only bounds it. `skip_regions` lists
// region ids that are *skip-safe*: re-processing them in a fresh incarnation
// cannot produce any undelivered local-skyline member, so the resumed loop
// pre-removes them before its first Step and never re-generates their join
// pairs. A region is skip-safe iff
//
//   (a) it was discarded without processing (its would-be tuples are
//       strictly dominated by frontier points that are themselves delivered
//       or regenerated), or
//   (b) it was processed and every output cell in its coverage box is
//       !populated || emitted || marked — i.e. every live tuple it could
//       have contributed is already flushed (delivered) or dead.
//
// Both conditions are permanent once true (emitted/marked never un-set), so
// positive verdicts are cached across exports. A resumed incarnation may
// still emit tuples *outside* the true local skyline (a suppressor from a
// skipped region is absent); the sharded merge compensates by keeping the
// resumed shard's own watermark in the release check (see
// shard/sharded_stream.h) and by its per-shard dedup set, so the merged
// delivered set stays bit-identical.
//
// Checkpoints travel over the wire (v2 `kOpenShard` field group) to resume
// remote shards; all fields are validated on restore and a stale or corrupt
// checkpoint is rejected with kInvalidArgument, which callers treat as
// "fall back to full replay".
#pragma once

#include <cstdint>
#include <vector>

#include "progxe/config.h"

namespace progxe {

struct SessionCheckpoint {
  /// Output dimensionality of the capturing session (validation).
  uint32_t k = 0;
  /// Output-table frontier epoch at capture (observability/validation).
  uint64_t frontier_epoch = 0;
  /// Results the capturing incarnation had delivered when the checkpoint
  /// was taken (cross-checked against the coordinator's dedup set).
  uint64_t delivered = 0;
  /// Total region count of the prepared lookahead (validation: a checkpoint
  /// only resumes the exact same PreparedInputs).
  uint64_t region_count = 0;
  /// Join pairs the listed processed regions generated in the capturing
  /// incarnation — the pairs a resumed incarnation will not re-generate.
  uint64_t replay_pairs_saved = 0;
  /// Skip-safe region ids, sorted strictly increasing.
  std::vector<int32_t> skip_regions;
  /// Stats snapshot at capture (auditing; not folded into the resumed
  /// session's own counters).
  ProgXeStats stats;
};

}  // namespace progxe
