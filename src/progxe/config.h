// Public configuration, result and statistics types of the ProgXe engine.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/relation.h"
#include "grid/signature.h"

namespace progxe {

class FaultInjector;  // common/fault_injection.h
class PrepareCache;   // progxe/prepare_cache.h

/// Accepted output points of a finished (or partially finished) query,
/// canonicalized under the *consuming* query's mapper. Used to seed a
/// refined query's region loop: any genuine output point of the same
/// (sources, mapping) pair is a sound discard witness — if it strictly
/// dominates a region's best corner, some skyline member dominates every
/// output that region could produce, so the region holds no skyline
/// members and can be dropped before any join work (see region_loop.cc).
struct RefinementSeed {
  /// Output dimensionality; `canonical` holds points() rows of k values.
  int k = 0;
  std::vector<double> canonical;

  size_t points() const {
    return k > 0 ? canonical.size() / static_cast<size_t>(k) : 0;
  }
};

/// Input-space partitioning scheme (Section III: grid by default; the
/// paper notes other space partitionings apply "with some modifications").
enum class PartitioningScheme : uint8_t {
  /// Uniform grid over contribution space.
  kUniformGrid,
  /// Adaptive kd-style median splits: balanced partition cardinalities,
  /// tight bounds on skewed data.
  kKdTree,
};

/// How ProgOrder sequences regions for tuple-level processing.
enum class OrderingMode : uint8_t {
  /// Benefit/cost ranking over EL-Graph roots (Algorithm 1).
  kProgOrder,
  /// Uniform random order: the paper's ProgXe (No-Order) variant.
  kRandom,
  /// Region-id order (deterministic baseline for tests).
  kSequential,
};

/// The four ProgXe variants evaluated in Section VI-B.
struct ProgXeOptions {
  OrderingMode ordering = OrderingMode::kProgOrder;
  /// Apply skyline partial push-through to each source first (the "+"
  /// variants: ProgXe+ and ProgXe+ (No-Order)).
  bool push_through = false;

  /// Input-space partitioning realization.
  PartitioningScheme partitioning = PartitioningScheme::kUniformGrid;
  /// Input grid cells per (output) dimension for each source; 0 = choose
  /// automatically from the dimensionality (bounded partition count).
  /// For kKdTree this bounds leaves at input_cells_per_dim ^ dims.
  int input_cells_per_dim = 0;
  /// Output grid cells per dimension (the paper's partition size delta);
  /// 0 = choose automatically (bounded total cell count).
  int output_cells_per_dim = 0;
  /// Join-signature realization for input partitions.
  SignatureMode signature_mode = SignatureMode::kExact;
  size_t bloom_bits = 2048;
  int bloom_hashes = 4;

  /// Join selectivity hint for the benefit/cost models; <= 0 means measure
  /// it exactly from the key histograms (O(N)).
  double sigma_hint = 0.0;

  /// Tuple-pipeline block size: join pairs are buffered, mapped and
  /// inserted in blocks of this many tuples (amortizing per-tuple call and
  /// lookup overhead). Values <= 1 select the per-tuple legacy path. Both
  /// paths produce identical results *and* identical ProgXeStats counters.
  size_t insert_batch_size = 256;

  /// Worker threads for the region-level join->map stage. Each region's
  /// matching join groups are split into contiguous chunks; workers expand,
  /// map and pre-grid their chunks in parallel, and a deterministic ordered
  /// merge feeds the single-threaded OutputTable insert in exactly the
  /// sequential pair order — so results *and* all ProgXeStats counters are
  /// bit-identical at any thread count. Values <= 1 run fully inline.
  int num_threads = 1;

  /// Seed for the kRandom ordering shuffle.
  uint64_t seed = 0x5eed;

  /// EL-Graph is bypassed above this many active regions (see ElGraph).
  size_t max_regions_for_elgraph = 8000;

  /// Hard cap on dense output-cell state.
  int64_t max_output_cells = 8 * 1000 * 1000;

  /// Programmatic fault injection (common/fault_injection.h). When set,
  /// engine call sites consult this injector; when null, they fall back to
  /// the process-wide PROGXE_FAULT_SITES injector for the shard/service
  /// sites (the in-engine "session.next_batch" site fires only from here).
  /// Shared, not owned: per-shard option copies keep one schedule and one
  /// set of fire budgets.
  std::shared_ptr<FaultInjector> faults;

  /// Instance id reported to the injector by in-engine sites — the sharded
  /// stream stamps each sub-session with its shard index so a rule can
  /// target one sick shard (`shard=i`).
  int fault_instance = 0;

  /// Cross-query prepared-state cache (progxe/prepare_cache.h). When set,
  /// ProgXeSession::Open fingerprints the query and reuses a cached
  /// PreparedInputs on hit (skipping the prepare phase) or populates the
  /// cache on miss. Shared, not owned: the service layer hands every
  /// submitted query the scheduler-wide cache, and the sharded stream
  /// passes it through so per-shard slices cache independently.
  std::shared_ptr<PrepareCache> prepare_cache;

  /// Refinement seeding (see RefinementSeed). When set, the region loop
  /// discards up front every region whose best corner a seed point
  /// strictly dominates — the parent's frontier re-proves those regions
  /// empty without a single join pair. Pick order stays ProgOrder's.
  /// Changes cost only (discard timing), never the result set.
  std::shared_ptr<const RefinementSeed> refinement_seed;

  /// Stop after emitting this many results (0 = run to completion). The
  /// progressive pipeline makes this an *early-termination* feature: the
  /// emitted prefix is a set of guaranteed final-skyline members and the
  /// remaining join/skyline work is skipped — the "first page now" mode of
  /// the paper's aggregator and query-refinement applications.
  size_t max_results = 0;
};

/// One emitted SkyMapJoin result: original row ids plus the user-space
/// mapped output values x_1..x_k.
struct ResultTuple {
  RowId r_id = 0;
  RowId t_id = 0;
  std::vector<double> values;
};

/// Progressive emission callback. Invoked zero or more times *during*
/// execution; every emitted tuple is guaranteed to belong to the final
/// skyline (no retractions).
using EmitFn = std::function<void(const ResultTuple&)>;

/// Counters describing one ProgXe run.
struct ProgXeStats {
  // Input / pruning.
  size_t r_rows = 0;
  size_t t_rows = 0;
  size_t r_rows_after_push_through = 0;
  size_t t_rows_after_push_through = 0;
  double sigma_used = 0.0;

  // Look-ahead.
  size_t partition_pairs_total = 0;
  size_t partition_pairs_skipped = 0;
  size_t regions_created = 0;
  size_t regions_pruned_lookahead = 0;
  size_t cells_marked_lookahead = 0;

  // Ordering.
  bool elgraph_disabled = false;
  size_t regions_processed = 0;
  size_t regions_discarded_runtime = 0;
  /// Regions dropped up front because a refinement seed point strictly
  /// dominates their best corner (zero unless refinement_seed is set).
  size_t regions_discarded_seed = 0;
  size_t pq_reorderings = 0;

  // Tuple-level processing.
  uint64_t join_pairs_generated = 0;
  uint64_t tuples_discarded_marked = 0;
  uint64_t tuples_discarded_frontier = 0;
  uint64_t tuples_dominated_on_insert = 0;
  uint64_t tuples_evicted = 0;
  uint64_t dominance_comparisons = 0;

  // Progressive output.
  size_t results_emitted = 0;
  size_t cells_flushed = 0;
  /// Results emitted strictly before the last region finished processing.
  size_t results_emitted_early = 0;

  /// Elementwise counter sum (booleans OR, sigma adds) — the one aggregation
  /// used everywhere stats from multiple runs combine: the sharded stream's
  /// per-shard rollup, the server's process totals, the metrics export.
  void Accumulate(const ProgXeStats& other);

  std::string ToString() const;
};

}  // namespace progxe
