#include "progxe/cost_model.h"

#include <algorithm>
#include <cmath>

namespace progxe {

double KungAlpha(int d) {
  if (d <= 3) return 1.0;
  return static_cast<double>(d - 2);
}

double ComparablePartitionsAvg(const CostModelParams& params) {
  return static_cast<double>(params.cells_per_dim) *
         static_cast<double>(params.dims);
}

double RegionCost(const CostModelParams& params, double n_a, double n_b,
                  double box_volume) {
  const double c_join = n_a * n_b;
  const double join_card = params.sigma * n_a * n_b;
  const double c_map = join_card;

  // Average tuples per populated partition if join results spread over the
  // region's cell box.
  const double s_avg = join_card / std::max(box_volume, 1.0);
  const double cp_s = std::max(ComparablePartitionsAvg(params) * s_avg, 1.0);
  const double alpha = KungAlpha(params.dims);
  const double log_term = std::pow(std::max(std::log2(cp_s), 1.0), alpha);
  const double c_sky = join_card * cp_s * log_term;

  return std::max(c_join + c_map + c_sky, 1.0);
}

}  // namespace progxe
