// Tuple-level processing cost model (Section IV-C, Equations 3-7).
//
// Cost(R_{a,b}) = C_join + C_map + C_sky with
//   C_join = n_a * n_b                                   (Eq. 4)
//   C_map  = sigma * n_a * n_b                           (Eq. 5)
//   C_sky  = sigma * n_a * n_b * (CP*s) * log^alpha(CP*s) (Eq. 6)
// where CP is the average number of comparable output partitions per tuple
// (bounded by k*d, Section III-B), s the average tuples per populated
// partition, and alpha follows Kung et al.: 1 for d in {2,3}, d-2 for d>=4.
#pragma once

namespace progxe {

struct CostModelParams {
  /// Join selectivity between the sources.
  double sigma = 0.001;
  /// Output grid cells per dimension (k in the paper's k*d bound).
  int cells_per_dim = 10;
  /// Output dimensionality d.
  int dims = 4;
};

/// Kung et al. exponent: 1 for d = 2 or 3, d-2 for d >= 4.
double KungAlpha(int d);

/// Average comparable partitions CP_avg = k * d (Section IV-C).
double ComparablePartitionsAvg(const CostModelParams& params);

/// Equation 7: amortized cost of tuple-level processing of a region with
/// input partition sizes n_a, n_b whose output box spans `box_volume` cells.
double RegionCost(const CostModelParams& params, double n_a, double n_b,
                  double box_volume);

}  // namespace progxe
