#include "progxe/executor.h"

#include <sstream>

#include "common/macros.h"
#include "progxe/stream.h"

namespace progxe {

std::string ProgXeStats::ToString() const {
  std::ostringstream os;
  os << "ProgXeStats{rows=" << r_rows << "x" << t_rows
     << " pushed=" << r_rows_after_push_through << "x"
     << t_rows_after_push_through << " sigma=" << sigma_used
     << " pairs=" << partition_pairs_total << " skipped="
     << partition_pairs_skipped << " regions=" << regions_created
     << " pruned=" << regions_pruned_lookahead
     << " discarded=" << regions_discarded_runtime
     << " seed_discarded=" << regions_discarded_seed
     << " processed=" << regions_processed
     << " cells_marked=" << cells_marked_lookahead
     << " join_pairs=" << join_pairs_generated
     << " disc_marked=" << tuples_discarded_marked
     << " disc_frontier=" << tuples_discarded_frontier
     << " dominated=" << tuples_dominated_on_insert
     << " evicted=" << tuples_evicted
     << " cmps=" << dominance_comparisons
     << " emitted=" << results_emitted << " early=" << results_emitted_early
     << " flushes=" << cells_flushed << "}";
  return os.str();
}

void ProgXeStats::Accumulate(const ProgXeStats& s) {
  r_rows += s.r_rows;
  t_rows += s.t_rows;
  r_rows_after_push_through += s.r_rows_after_push_through;
  t_rows_after_push_through += s.t_rows_after_push_through;
  sigma_used += s.sigma_used;
  partition_pairs_total += s.partition_pairs_total;
  partition_pairs_skipped += s.partition_pairs_skipped;
  regions_created += s.regions_created;
  regions_pruned_lookahead += s.regions_pruned_lookahead;
  cells_marked_lookahead += s.cells_marked_lookahead;
  elgraph_disabled = elgraph_disabled || s.elgraph_disabled;
  regions_processed += s.regions_processed;
  regions_discarded_runtime += s.regions_discarded_runtime;
  regions_discarded_seed += s.regions_discarded_seed;
  pq_reorderings += s.pq_reorderings;
  join_pairs_generated += s.join_pairs_generated;
  tuples_discarded_marked += s.tuples_discarded_marked;
  tuples_discarded_frontier += s.tuples_discarded_frontier;
  tuples_dominated_on_insert += s.tuples_dominated_on_insert;
  tuples_evicted += s.tuples_evicted;
  dominance_comparisons += s.dominance_comparisons;
  results_emitted += s.results_emitted;
  cells_flushed += s.cells_flushed;
  results_emitted_early += s.results_emitted_early;
}

ProgXeExecutor::ProgXeExecutor(SkyMapJoinQuery query, ProgXeOptions options)
    : query_(std::move(query)), options_(std::move(options)) {}

ProgXeExecutor::~ProgXeExecutor() = default;

Status ProgXeExecutor::Run(const EmitFn& emit) {
  // Reusable: each Run opens a fresh stream over the same query object and
  // starts from zeroed counters.
  stats_ = ProgXeStats{};
  auto stream = OpenProgXeStream(query_, options_);
  if (!stream.ok()) {
    return stream.status();
  }
  std::vector<ResultTuple> batch;
  while ((*stream)->NextBatch(0, &batch) > 0) {
    stats_ = (*stream)->stats();  // keep stats() live for emit callbacks
    for (const ResultTuple& result : batch) emit(result);
  }
  stats_ = (*stream)->stats();
  // A stream that died (injected fault, retry exhaustion) drains to empty
  // just like a completed one; the error channel is the only difference.
  return (*stream)->last_status();
}

Result<std::vector<ResultTuple>> RunProgXe(const SkyMapJoinQuery& query,
                                           const ProgXeOptions& options,
                                           ProgXeStats* stats_out) {
  ProgXeExecutor executor(query, options);
  std::vector<ResultTuple> results;
  Status st = executor.Run(
      [&results](const ResultTuple& r) { results.push_back(r); });
  if (!st.ok()) return st;
  if (stats_out != nullptr) *stats_out = executor.stats();
  return results;
}

}  // namespace progxe
