#include "progxe/executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>
#include <unordered_map>

#include "common/logging.h"
#include "common/macros.h"
#include "elgraph/el_graph.h"
#include "grid/input_grid.h"
#include "grid/kd_partitioner.h"
#include "join/key_index.h"
#include "outputspace/lookahead.h"
#include "progxe/output_table.h"
#include "progxe/prog_determine.h"
#include "progxe/prog_order.h"
#include "skyline/group_skyline.h"

namespace progxe {

std::string ProgXeStats::ToString() const {
  std::ostringstream os;
  os << "ProgXeStats{rows=" << r_rows << "x" << t_rows
     << " pushed=" << r_rows_after_push_through << "x"
     << t_rows_after_push_through << " sigma=" << sigma_used
     << " pairs=" << partition_pairs_total << " skipped="
     << partition_pairs_skipped << " regions=" << regions_created
     << " pruned=" << regions_pruned_lookahead
     << " discarded=" << regions_discarded_runtime
     << " processed=" << regions_processed
     << " cells_marked=" << cells_marked_lookahead
     << " join_pairs=" << join_pairs_generated
     << " disc_marked=" << tuples_discarded_marked
     << " disc_frontier=" << tuples_discarded_frontier
     << " dominated=" << tuples_dominated_on_insert
     << " evicted=" << tuples_evicted
     << " cmps=" << dominance_comparisons
     << " emitted=" << results_emitted << " early=" << results_emitted_early
     << " flushes=" << cells_flushed << "}";
  return os.str();
}

ProgXeExecutor::ProgXeExecutor(SkyMapJoinQuery query, ProgXeOptions options)
    : query_(std::move(query)), options_(std::move(options)) {}

ProgXeExecutor::~ProgXeExecutor() = default;

namespace {

/// Picks the largest per-dimension cell count whose k-dim total stays under
/// `budget`, clamped to [lo, hi]. Used when options leave grid sizes to the
/// engine: the paper tunes its partition size delta per dimensionality
/// (Section VI-B) and so do we.
int AutoCellsPerDim(int k, double budget, int lo, int hi) {
  const double per_dim = std::pow(budget, 1.0 / static_cast<double>(k));
  const int cells = static_cast<int>(per_dim);
  return std::clamp(cells, lo, hi);
}

/// Measured join selectivity via key histograms: sum over shared keys of
/// cnt_R(k) * cnt_T(k), divided by |R| * |T|.
double MeasureSigma(const Relation& r, const Relation& t) {
  if (r.empty() || t.empty()) return 0.0;
  std::unordered_map<JoinKey, size_t> r_hist;
  r_hist.reserve(r.size());
  for (size_t i = 0; i < r.size(); ++i) {
    ++r_hist[r.join_key(static_cast<RowId>(i))];
  }
  double pairs = 0.0;
  for (size_t i = 0; i < t.size(); ++i) {
    auto it = r_hist.find(t.join_key(static_cast<RowId>(i)));
    if (it != r_hist.end()) pairs += static_cast<double>(it->second);
  }
  return pairs /
         (static_cast<double>(r.size()) * static_cast<double>(t.size()));
}

}  // namespace

Status ProgXeExecutor::Run(const EmitFn& emit) {
  if (ran_) {
    return Status::InvalidArgument("ProgXeExecutor::Run is single-shot");
  }
  ran_ = true;

  if (query_.r == nullptr || query_.t == nullptr) {
    return Status::InvalidArgument("query sources must be non-null");
  }
  if (query_.pref.dimensions() != query_.map.output_dimensions()) {
    return Status::InvalidArgument(
        "preference dimensionality must match the map output");
  }
  PROGXE_RETURN_NOT_OK(
      query_.map.Validate(query_.r->num_attributes(),
                          query_.t->num_attributes()));
  if (options_.input_cells_per_dim < 0 || options_.output_cells_per_dim < 0) {
    return Status::InvalidArgument("grid cell counts must be >= 0");
  }
  if (options_.output_cells_per_dim == 0) {
    const int k_out = query_.map.output_dimensions();
    // ~60K output cells keeps the dense per-cell state cache-resident.
    options_.output_cells_per_dim = AutoCellsPerDim(k_out, 60000.0, 4, 24);
  }

  const Relation& r_full = *query_.r;
  const Relation& t_full = *query_.t;
  stats_.r_rows = r_full.size();
  stats_.t_rows = t_full.size();
  if (r_full.empty() || t_full.empty()) return Status::OK();

  CanonicalMapper mapper(query_.map, query_.pref);
  const int k = mapper.output_dimensions();

  // --- Optional skyline partial push-through (the "+" variants) -----------
  // Pruning each source to its group-level skyline is result-preserving for
  // separable monotone maps (see skyline/group_skyline.h).
  Relation r_pruned{Schema::Anonymous(0)};
  Relation t_pruned{Schema::Anonymous(0)};
  std::vector<RowId> r_orig_ids;
  std::vector<RowId> t_orig_ids;
  const Relation* r_rel = &r_full;
  const Relation* t_rel = &t_full;
  if (options_.push_through) {
    ContributionTable r_full_contrib(r_full, mapper, Side::kR);
    ContributionTable t_full_contrib(t_full, mapper, Side::kT);
    DomCounter push_counter;
    std::vector<RowId> r_keep =
        PushThroughPrune(r_full, r_full_contrib, &push_counter);
    std::vector<RowId> t_keep =
        PushThroughPrune(t_full, t_full_contrib, &push_counter);
    stats_.dominance_comparisons += push_counter.comparisons;
    r_pruned = r_full.Select(r_keep, &r_orig_ids);
    t_pruned = t_full.Select(t_keep, &t_orig_ids);
    r_rel = &r_pruned;
    t_rel = &t_pruned;
  } else {
    r_orig_ids.resize(r_full.size());
    std::iota(r_orig_ids.begin(), r_orig_ids.end(), 0u);
    t_orig_ids.resize(t_full.size());
    std::iota(t_orig_ids.begin(), t_orig_ids.end(), 0u);
  }
  stats_.r_rows_after_push_through = r_rel->size();
  stats_.t_rows_after_push_through = t_rel->size();

  // --- Sigma for the benefit/cost models -----------------------------------
  double sigma = options_.sigma_hint;
  if (sigma <= 0.0) sigma = MeasureSigma(*r_rel, *t_rel);
  if (sigma <= 0.0) return Status::OK();  // provably empty join
  stats_.sigma_used = sigma;

  if (options_.input_cells_per_dim == 0) {
    // Pick the input resolution so each region's expected join work
    // amortizes its bookkeeping (EL-Graph edge, coverage box, discard
    // checks): aim for >= ~200 join pairs per region, i.e. at most
    // P = N * sqrt(sigma / 200) partitions per source, within an absolute
    // budget of ~120 partitions (~14K candidate pairs).
    const double n_min = static_cast<double>(
        std::min(r_rel->size(), t_rel->size()));
    const double work_cap = n_min * std::sqrt(sigma / 200.0);
    const double budget = std::clamp(work_cap, 4.0, 120.0);
    options_.input_cells_per_dim =
        AutoCellsPerDim(query_.map.output_dimensions(), budget, 2, 8);
  }

  // --- Contribution tables and input partitioning --------------------------
  ContributionTable r_contrib(*r_rel, mapper, Side::kR);
  ContributionTable t_contrib(*t_rel, mapper, Side::kT);
  std::unique_ptr<InputPartitioning> r_grid;
  std::unique_ptr<InputPartitioning> t_grid;
  if (options_.partitioning == PartitioningScheme::kUniformGrid) {
    InputGridOptions grid_options;
    grid_options.cells_per_dim = options_.input_cells_per_dim;
    grid_options.signature_mode = options_.signature_mode;
    grid_options.bloom_bits = options_.bloom_bits;
    grid_options.bloom_hashes = options_.bloom_hashes;
    r_grid = std::make_unique<InputGrid>(*r_rel, r_contrib, grid_options);
    t_grid = std::make_unique<InputGrid>(*t_rel, t_contrib, grid_options);
  } else {
    KdPartitionerOptions kd_options;
    // Same partition budget the uniform grid would get.
    double leaves = 1.0;
    for (int j = 0; j < k; ++j) {
      leaves *= static_cast<double>(options_.input_cells_per_dim);
    }
    kd_options.max_partitions =
        static_cast<size_t>(std::clamp(leaves, 1.0, 4096.0));
    kd_options.signature_mode = options_.signature_mode;
    kd_options.bloom_bits = options_.bloom_bits;
    kd_options.bloom_hashes = options_.bloom_hashes;
    r_grid = std::make_unique<KdPartitioner>(*r_rel, r_contrib, kd_options);
    t_grid = std::make_unique<KdPartitioner>(*t_rel, t_contrib, kd_options);
  }

  // --- Output-space look-ahead ---------------------------------------------
  LookaheadOptions la_options;
  la_options.output_cells_per_dim = options_.output_cells_per_dim;
  la_options.max_output_cells = options_.max_output_cells;
  PROGXE_ASSIGN_OR_RETURN(
      LookaheadResult la,
      OutputSpaceLookahead(*r_grid, *t_grid, mapper, la_options));
  stats_.partition_pairs_total = la.stats.pairs_total;
  stats_.partition_pairs_skipped = la.stats.pairs_skipped_signature;
  stats_.regions_created = la.stats.regions_created;
  stats_.regions_pruned_lookahead = la.stats.regions_pruned;
  stats_.cells_marked_lookahead = la.stats.cells_marked;

  std::vector<Region>& regions = la.regions;

  // --- Runtime structures ---------------------------------------------------
  OutputTable table(la.output_grid, std::move(la.marked), &stats_);
  table.InitCoverage(regions);
  ProgDetermine determine(&table);

  std::unique_ptr<ElGraph> el_graph;
  if (options_.ordering == OrderingMode::kProgOrder) {
    el_graph = std::make_unique<ElGraph>(regions,
                                         options_.max_regions_for_elgraph);
    stats_.elgraph_disabled = el_graph->disabled();
  }

  CostModelParams cost_params;
  cost_params.sigma = sigma;
  cost_params.cells_per_dim = options_.output_cells_per_dim;
  cost_params.dims = k;

  std::vector<size_t> r_sizes;
  for (const auto& p : r_grid->partitions()) r_sizes.push_back(p.size());
  std::vector<size_t> t_sizes;
  for (const auto& p : t_grid->partitions()) t_sizes.push_back(p.size());

  ProgOrder order(&regions, el_graph.get(), &table, cost_params,
                  std::move(r_sizes), std::move(t_sizes), options_.ordering,
                  options_.seed, &stats_);

  // --- Emission helper -------------------------------------------------------
  size_t active_regions = 0;
  for (const Region& region : regions) {
    if (region.Active()) ++active_regions;
  }
  // All emit-path buffers live outside the loops: the steady-state flush
  // path performs no allocations.
  std::vector<double> flush_values;
  std::vector<CellTupleIds> flush_ids;
  ResultTuple result;
  result.values.resize(static_cast<size_t>(k));
  auto reached_limit = [&]() {
    return options_.max_results != 0 &&
           stats_.results_emitted >= options_.max_results;
  };
  auto emit_cells = [&](const std::vector<CellIndex>& cells) {
    for (CellIndex c : cells) {
      if (reached_limit()) return;
      flush_values.clear();
      flush_ids.clear();
      table.FlushCell(c, &flush_values, &flush_ids);
      ++stats_.cells_flushed;
      for (size_t i = 0; i < flush_ids.size(); ++i) {
        result.r_id = r_orig_ids[flush_ids[i].r];
        result.t_id = t_orig_ids[flush_ids[i].t];
        for (int j = 0; j < k; ++j) {
          result.values[static_cast<size_t>(j)] = mapper.Decanonicalize(
              j, flush_values[i * static_cast<size_t>(k) +
                              static_cast<size_t>(j)]);
        }
        emit(result);
        ++stats_.results_emitted;
        if (active_regions > 0) ++stats_.results_emitted_early;
        if (reached_limit()) return;
      }
    }
  };

  // Marks a region removed exactly once across all paths.
  std::vector<uint8_t> removed(regions.size(), 0);
  std::vector<CellIndex> settled_scratch;
  std::vector<CellIndex> marked_scratch;
  std::vector<CellIndex> flush_scratch;
  auto remove_region = [&](Region& region) {
    if (removed[static_cast<size_t>(region.id)]) return;
    removed[static_cast<size_t>(region.id)] = 1;
    assert(active_regions > 0);
    --active_regions;
    table.ReleaseRegionCoverage(region, &settled_scratch);
    table.DrainMarkedEvents(&marked_scratch);
    determine.OnCellsMarked(marked_scratch);
    determine.OnCellsSettled(settled_scratch, &flush_scratch);
    order.OnRegionRemoved(region.id);
    emit_cells(flush_scratch);
  };

  // --- Incremental runtime region discard ------------------------------------
  // The discard test (Algorithm 1, line 9) depends only on a region's
  // lo_cell and the dominance frontier, so active regions are bucketed by
  // lo_cell — one test covers every region of a bucket — and a bucket is
  // re-tested only against frontier entries logged after the epoch at which
  // it last survived (see OutputTable::FrontierDominatesSince). The sweep
  // runs only when the frontier actually advanced.
  struct DiscardBucket {
    std::vector<CellCoord> lo;        // shared lo_cell coordinates
    std::vector<int32_t> region_ids;  // regions with this lo_cell
    uint64_t survived_epoch = 0;      // frontier epoch last tested clean
  };
  std::vector<DiscardBucket> discard_buckets;
  {
    std::unordered_map<CellIndex, size_t> bucket_of;
    for (const Region& region : regions) {
      if (!region.Active()) continue;
      const CellIndex lo_index = table.geometry().IndexOf(region.lo_cell.data());
      auto [it, inserted] =
          bucket_of.try_emplace(lo_index, discard_buckets.size());
      if (inserted) {
        discard_buckets.emplace_back();
        discard_buckets.back().lo = region.lo_cell;
      }
      discard_buckets[it->second].region_ids.push_back(region.id);
    }
  }
  std::vector<int32_t> discard_scratch;
  uint64_t last_sweep_epoch = 0;

  // --- Main loop (Algorithm 1) ----------------------------------------------
  std::vector<double> out_values(static_cast<size_t>(k));
  const size_t batch_cap =
      options_.insert_batch_size > 1 ? options_.insert_batch_size : 0;
  std::vector<RowIdPair> pair_buf(batch_cap);
  std::vector<double> batch_values(batch_cap * static_cast<size_t>(k));
  const auto& r_parts = r_grid->partitions();
  const auto& t_parts = t_grid->partitions();

  for (;;) {
    if (reached_limit()) break;  // early termination (max_results)
    const int32_t next = order.PopNext();
    if (next < 0) break;
    Region& region = regions[static_cast<size_t>(next)];
    if (!region.Active()) continue;

    // Tuple-level processing: join the partition pair, map, insert — in
    // blocks when batching is enabled, per tuple otherwise. The batched
    // pipeline visits pairs in the same order and produces identical
    // results and counters (see OutputTable::InsertBatch).
    const InputPartition& pa = r_parts[static_cast<size_t>(region.a)];
    const InputPartition& pb = t_parts[static_cast<size_t>(region.b)];
    if (batch_cap > 0) {
      stats_.join_pairs_generated += JoinIndexesBatched(
          pa.key_index, pb.key_index, pair_buf.data(), batch_cap,
          [&](const RowIdPair* pairs, size_t m) {
            mapper.CombineBatch(pairs, m, r_contrib.flat().data(),
                                t_contrib.flat().data(), batch_values.data());
            table.InsertBatch(batch_values.data(), pairs, m);
          });
    } else {
      JoinIndexes(pa.key_index, pb.key_index, [&](RowId r_id, RowId t_id) {
        ++stats_.join_pairs_generated;
        mapper.Combine(r_contrib.vector(r_id), t_contrib.vector(t_id),
                       out_values.data());
        table.Insert(out_values.data(), r_id, t_id);
      });
    }
    region.processed = true;
    ++stats_.regions_processed;

    // Kill events produced during insertion must reach ProgDetermine before
    // settle processing.
    table.DrainMarkedEvents(&marked_scratch);
    determine.OnCellsMarked(marked_scratch);
    remove_region(region);

    // Runtime region discard (Algorithm 1, line 9): regions now wholly
    // dominated by generated tuples. Only runs when the frontier advanced
    // since the last sweep; each bucket is tested against the frontier
    // entries logged since it last survived.
    const uint64_t epoch = table.frontier_epoch();
    if (epoch != last_sweep_epoch) {
      discard_scratch.clear();
      for (size_t bi = 0; bi < discard_buckets.size();) {
        DiscardBucket& bucket = discard_buckets[bi];
        // Lazily drop regions that completed or were discarded meanwhile.
        std::erase_if(bucket.region_ids, [&](int32_t id) {
          return !regions[static_cast<size_t>(id)].Active();
        });
        if (bucket.region_ids.empty()) {
          // Permanently dead: swap-pop so later sweeps skip it entirely.
          if (bi + 1 != discard_buckets.size()) {
            discard_buckets[bi] = std::move(discard_buckets.back());
          }
          discard_buckets.pop_back();
          continue;
        }
        if (table.FrontierDominatesSince(bucket.lo.data(),
                                         bucket.survived_epoch)) {
          discard_scratch.insert(discard_scratch.end(),
                                 bucket.region_ids.begin(),
                                 bucket.region_ids.end());
          if (bi + 1 != discard_buckets.size()) {
            discard_buckets[bi] = std::move(discard_buckets.back());
          }
          discard_buckets.pop_back();
          continue;
        }
        bucket.survived_epoch = epoch;
        ++bi;
      }
      // Discard in ascending region id — the order the full rescan used —
      // so flush/emission order is byte-for-byte stable.
      std::sort(discard_scratch.begin(), discard_scratch.end());
      for (int32_t id : discard_scratch) {
        Region& other = regions[static_cast<size_t>(id)];
        if (!other.Active()) continue;
        other.discarded = true;
        ++stats_.regions_discarded_runtime;
        remove_region(other);
      }
      last_sweep_epoch = epoch;
    }
  }

  stats_.dominance_comparisons += table.dom_counter()->comparisons;

  if (reached_limit()) return Status::OK();  // prefix delivered; stop here

  // Completeness sweep: every populated unmarked cell must have flushed.
  for (CellIndex c : table.PopulatedCells()) {
    if (!table.emitted(c) && !table.marked(c)) {
      // Unreachable by construction; fail loudly in debug, recover in
      // release so no result is ever lost.
      assert(false && "cell missed by progressive determination");
      std::vector<CellIndex> one{c};
      emit_cells(one);
    }
  }
  return Status::OK();
}

Result<std::vector<ResultTuple>> RunProgXe(const SkyMapJoinQuery& query,
                                           const ProgXeOptions& options,
                                           ProgXeStats* stats_out) {
  ProgXeExecutor executor(query, options);
  std::vector<ResultTuple> results;
  Status st = executor.Run(
      [&results](const ResultTuple& r) { results.push_back(r); });
  if (!st.ok()) return st;
  if (stats_out != nullptr) *stats_out = executor.stats();
  return results;
}

}  // namespace progxe
