// The ProgXe progressive SkyMapJoin executor (Figure 2 of the paper).
//
// Pipeline per query:
//   1. (optional, "+" variants) skyline partial push-through on each source
//   2. contribution tables + input grids with join signatures
//   3. output-space look-ahead: regions, region pruning, cell marking
//   4. iterated tuple-level processing, region order chosen by ProgOrder,
//      with ProgDetermine flushing safe partitions after every region
//
// Every tuple handed to the emit callback is guaranteed to be in the final
// skyline (no retractions), and the union of all emissions is exactly the
// skyline of the mapped join (completeness).
#pragma once

#include <memory>

#include "common/status.h"
#include "data/relation.h"
#include "mapping/canonical.h"
#include "mapping/map_expr.h"
#include "prefs/preference.h"
#include "progxe/config.h"

namespace progxe {

/// A SkyMapJoin query: skyline of `pref` over `map` applied to R join T.
struct SkyMapJoinQuery {
  const Relation* r = nullptr;
  const Relation* t = nullptr;
  MapSpec map;
  Preference pref;
};

class ProgXeExecutor {
 public:
  ProgXeExecutor(SkyMapJoinQuery query, ProgXeOptions options);
  ~ProgXeExecutor();

  ProgXeExecutor(const ProgXeExecutor&) = delete;
  ProgXeExecutor& operator=(const ProgXeExecutor&) = delete;

  /// Runs the query to completion, invoking `emit` progressively.
  /// Single-shot: a second call returns an error.
  Status Run(const EmitFn& emit);

  const ProgXeStats& stats() const { return stats_; }

 private:
  SkyMapJoinQuery query_;
  ProgXeOptions options_;
  ProgXeStats stats_;
  bool ran_ = false;
};

/// Convenience wrapper: runs a ProgXe query and returns all results.
Result<std::vector<ResultTuple>> RunProgXe(const SkyMapJoinQuery& query,
                                           const ProgXeOptions& options,
                                           ProgXeStats* stats_out = nullptr);

}  // namespace progxe
