// The ProgXe progressive SkyMapJoin executor (Figure 2 of the paper).
//
// Pipeline per query:
//   1. (optional, "+" variants) skyline partial push-through on each source
//   2. contribution tables + input grids with join signatures
//   3. output-space look-ahead: regions, region pruning, cell marking
//   4. iterated tuple-level processing, region order chosen by ProgOrder,
//      with ProgDetermine flushing safe partitions after every region
//
// Every tuple handed to the emit callback is guaranteed to be in the final
// skyline (no retractions), and the union of all emissions is exactly the
// skyline of the mapped join (completeness).
//
// Stages 1-3 live in progxe/prepare.h (PreparePhase) and stage 4 in
// progxe/region_loop.h (RegionLoop); ProgXeExecutor::Run is a thin loop
// over the pull-based ProgXeStream (progxe/stream.h) that composes them.
#pragma once

#include <memory>

#include "common/status.h"
#include "data/relation.h"
#include "mapping/canonical.h"
#include "mapping/map_expr.h"
#include "prefs/preference.h"
#include "progxe/config.h"

namespace progxe {

/// A SkyMapJoin query: skyline of `pref` over `map` applied to R join T.
struct SkyMapJoinQuery {
  const Relation* r = nullptr;
  const Relation* t = nullptr;
  MapSpec map;
  Preference pref;
};

class ProgXeExecutor {
 public:
  ProgXeExecutor(SkyMapJoinQuery query, ProgXeOptions options);
  ~ProgXeExecutor();

  ProgXeExecutor(const ProgXeExecutor&) = delete;
  ProgXeExecutor& operator=(const ProgXeExecutor&) = delete;

  /// Runs the query to completion, invoking `emit` progressively. Reusable:
  /// each call starts a fresh run with zeroed counters over the same query,
  /// and identical runs produce identical results and stats.
  Status Run(const EmitFn& emit);

  /// Counters of the most recent Run (live during a Run's emit callbacks).
  const ProgXeStats& stats() const { return stats_; }

 private:
  SkyMapJoinQuery query_;
  ProgXeOptions options_;
  ProgXeStats stats_;
};

/// Convenience wrapper: runs a ProgXe query and returns all results.
Result<std::vector<ResultTuple>> RunProgXe(const SkyMapJoinQuery& query,
                                           const ProgXeOptions& options,
                                           ProgXeStats* stats_out = nullptr);

}  // namespace progxe
