#include "progxe/output_table.h"

#include <algorithm>
#include <cassert>

namespace progxe {

namespace {

/// coords a <= b in every dimension.
inline bool CoordsLeq(const CellCoord* a, const CellCoord* b, int k) {
  for (int i = 0; i < k; ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

/// coords a < b in every dimension.
inline bool CoordsStrictlyBelow(const CellCoord* a, const CellCoord* b,
                                int k) {
  for (int i = 0; i < k; ++i) {
    if (a[i] >= b[i]) return false;
  }
  return true;
}

}  // namespace

void OutputTable::CellData::Compact(int k) {
  if (dead_count == 0) return;
  size_t w = 0;
  const size_t kk = static_cast<size_t>(k);
  for (size_t i = 0; i < ids.size(); ++i) {
    if (!alive[i]) continue;
    if (w != i) {
      std::copy(values.begin() + static_cast<ptrdiff_t>(i * kk),
                values.begin() + static_cast<ptrdiff_t>((i + 1) * kk),
                values.begin() + static_cast<ptrdiff_t>(w * kk));
      ids[w] = ids[i];
    }
    alive[w] = 1;
    ++w;
  }
  values.resize(w * kk);
  ids.resize(w);
  alive.resize(w);
  dead_count = 0;
  assert(alive_count == w);
}

OutputTable::OutputTable(GridGeometry geometry, std::vector<uint8_t> marked,
                         ProgXeStats* stats)
    : geometry_(std::move(geometry)),
      k_(geometry_.dimensions()),
      stats_(stats),
      marked_(std::move(marked)) {
  const size_t total = static_cast<size_t>(geometry_.total_cells());
  assert(marked_.size() == total);
  reg_count_.assign(total, 0);
  emitted_.assign(total, 0);
  cell_slot_.assign(total, -1);
  visit_stamp_.assign(total, 0);
  slabs_.resize(static_cast<size_t>(k_));
  for (auto& dim_slabs : slabs_) {
    dim_slabs.resize(static_cast<size_t>(geometry_.cells_per_dim()));
  }
}

void OutputTable::InitCoverage(const std::vector<Region>& regions) {
  for (const Region& region : regions) {
    if (!region.Active()) continue;
    geometry_.ForEachCellInBox(
        region.lo_cell.data(), region.hi_cell.data(),
        [this](CellIndex c) { ++reg_count_[static_cast<size_t>(c)]; });
  }
}

std::vector<CellIndex> OutputTable::ReleaseRegionCoverage(
    const Region& region) {
  std::vector<CellIndex> settled;
  geometry_.ForEachCellInBox(region.lo_cell.data(), region.hi_cell.data(),
                             [this, &settled](CellIndex c) {
                               int32_t& rc = reg_count_[static_cast<size_t>(c)];
                               assert(rc > 0);
                               if (--rc == 0) settled.push_back(c);
                             });
  return settled;
}

bool OutputTable::populated(CellIndex c) const {
  const int32_t s = slot(c);
  return s >= 0 && cells_[static_cast<size_t>(s)].alive_count > 0;
}

size_t OutputTable::AliveCount(CellIndex c) const {
  const int32_t s = slot(c);
  return s < 0 ? 0 : cells_[static_cast<size_t>(s)].alive_count;
}

bool OutputTable::FrontierStrictlyDominates(const CellCoord* coords) const {
  const size_t kk = static_cast<size_t>(k_);
  for (size_t f = 0; f + kk <= frontier_.size(); f += kk) {
    if (CoordsStrictlyBelow(frontier_.data() + f, coords, k_)) return true;
  }
  return false;
}

bool OutputTable::RegionDominatedByFrontier(const Region& region) const {
  return FrontierStrictlyDominates(region.lo_cell.data());
}

void OutputTable::UpdateFrontier(const CellCoord* coords) {
  const size_t kk = static_cast<size_t>(k_);
  // Redundant if an existing frontier cell is <= coords everywhere.
  for (size_t f = 0; f + kk <= frontier_.size(); f += kk) {
    if (CoordsLeq(frontier_.data() + f, coords, k_)) return;
  }
  // Remove frontier entries that the new cell covers.
  size_t w = 0;
  for (size_t f = 0; f + kk <= frontier_.size(); f += kk) {
    if (!CoordsLeq(coords, frontier_.data() + f, k_)) {
      if (w != f) {
        std::copy(frontier_.begin() + static_cast<ptrdiff_t>(f),
                  frontier_.begin() + static_cast<ptrdiff_t>(f + kk),
                  frontier_.begin() + static_cast<ptrdiff_t>(w));
      }
      w += kk;
    }
  }
  frontier_.resize(w);
  frontier_.insert(frontier_.end(), coords, coords + k_);
}

OutputTable::CellData* OutputTable::EnsureCell(CellIndex c,
                                               const CellCoord* coords) {
  int32_t s = slot(c);
  if (s >= 0) return &cells_[static_cast<size_t>(s)];
  s = static_cast<int32_t>(cells_.size());
  cells_.emplace_back();
  cells_.back().coords.assign(coords, coords + k_);
  cell_slot_[static_cast<size_t>(c)] = s;
  return &cells_.back();
}

void OutputTable::KillCell(CellIndex c) {
  if (marked_[static_cast<size_t>(c)]) return;
  marked_[static_cast<size_t>(c)] = 1;
  marked_events_.push_back(c);
  const int32_t s = slot(c);
  if (s >= 0) {
    CellData& cell = cells_[static_cast<size_t>(s)];
    stats_->tuples_evicted += cell.alive_count;
    cell.values.clear();
    cell.ids.clear();
    cell.alive.clear();
    cell.alive_count = 0;
    cell.dead_count = 0;
  }
}

void OutputTable::OnCellPopulated(CellIndex c, const CellCoord* coords) {
  for (int dim = 0; dim < k_; ++dim) {
    slabs_[static_cast<size_t>(dim)][static_cast<size_t>(coords[dim])]
        .push_back(c);
  }
  UpdateFrontier(coords);
  // Eager kill: every populated cell strictly above `coords` is now wholly
  // dominated (any tuple here dominates all of its tuples, half-open cells).
  for (size_t s = 0; s < cells_.size(); ++s) {
    CellData& other = cells_[s];
    if (other.alive_count == 0) continue;
    const CellIndex oc = geometry_.IndexOf(other.coords.data());
    if (oc == c) continue;
    if (emitted_[static_cast<size_t>(oc)]) continue;  // final; see header
    if (CoordsStrictlyBelow(coords, other.coords.data(), k_)) {
      KillCell(oc);
    }
  }
}

InsertOutcome OutputTable::Insert(const double* values, RowId r_id,
                                  RowId t_id) {
  std::vector<CellCoord> coords(static_cast<size_t>(k_));
  geometry_.CoordsOf(values, coords.data());
  const CellIndex c = geometry_.IndexOf(coords.data());

  assert(!emitted_[static_cast<size_t>(c)] &&
         "tuple arrived in an already-flushed cell");

  if (marked_[static_cast<size_t>(c)]) {
    ++stats_->tuples_discarded_marked;
    return InsertOutcome::kDiscardedMarked;
  }
  if (FrontierStrictlyDominates(coords.data())) {
    KillCell(c);
    ++stats_->tuples_discarded_frontier;
    return InsertOutcome::kDiscardedFrontier;
  }

  // Dominance check against live tuples in the comparable dominator slice:
  // populated cells p with p <= coords in every dimension (cells strictly
  // below in all dimensions were handled by the frontier test above, so any
  // survivor here shares at least one coordinate — the paper's slice).
  //
  // Tie fast-path: if an *alive* tuple exactly equals the newcomer, nothing
  // generated so far dominates either (or the incumbent would be dead), and
  // anything the newcomer would evict is already evicted — so both scans can
  // stop. This keeps heavily-tied workloads (e.g. all-zero penalty
  // dimensions in query relaxation) linear instead of quadratic.
  bool found_equal_alive = false;
  ++current_stamp_;
  for (int dim = 0; dim < k_ && !found_equal_alive; ++dim) {
    const auto& slab =
        slabs_[static_cast<size_t>(dim)][static_cast<size_t>(coords[dim])];
    for (CellIndex pc : slab) {
      if (visit_stamp_[static_cast<size_t>(pc)] == current_stamp_) continue;
      visit_stamp_[static_cast<size_t>(pc)] = current_stamp_;
      const int32_t s = slot(pc);
      if (s < 0) continue;
      const CellData& cell = cells_[static_cast<size_t>(s)];
      if (cell.alive_count == 0) continue;
      if (!CoordsLeq(cell.coords.data(), coords.data(), k_)) continue;
      const bool own_cell = pc == c;
      const size_t kk = static_cast<size_t>(k_);
      for (size_t i = 0; i < cell.ids.size(); ++i) {
        if (!cell.alive[i]) continue;
        if (own_cell) {
          DomResult r = CompareMin(cell.values.data() + i * kk, values, k_,
                                   &dom_counter_);
          if (r == DomResult::kLeftDominates) {
            ++stats_->tuples_dominated_on_insert;
            return InsertOutcome::kDominated;
          }
          if (r == DomResult::kEqual) {
            found_equal_alive = true;
            break;
          }
        } else if (DominatesMin(cell.values.data() + i * kk, values, k_,
                                &dom_counter_)) {
          ++stats_->tuples_dominated_on_insert;
          return InsertOutcome::kDominated;
        }
      }
      if (found_equal_alive) break;
    }
  }

  // Evict live tuples the new one dominates: populated cells p with
  // p >= coords in every dimension (again, sharing a coordinate; strictly
  // greater cells are killed wholesale when this cell first populates).
  if (!found_equal_alive) {
    ++current_stamp_;
    for (int dim = 0; dim < k_; ++dim) {
      const auto& slab =
          slabs_[static_cast<size_t>(dim)][static_cast<size_t>(coords[dim])];
      for (CellIndex pc : slab) {
        if (visit_stamp_[static_cast<size_t>(pc)] == current_stamp_) continue;
        visit_stamp_[static_cast<size_t>(pc)] = current_stamp_;
        const int32_t s = slot(pc);
        if (s < 0) continue;
        CellData& cell = cells_[static_cast<size_t>(s)];
        if (cell.alive_count == 0) continue;
        if (emitted_[static_cast<size_t>(pc)]) continue;
        if (!CoordsLeq(coords.data(), cell.coords.data(), k_)) continue;
        const size_t kk = static_cast<size_t>(k_);
        for (size_t i = 0; i < cell.ids.size(); ++i) {
          if (!cell.alive[i]) continue;
          if (DominatesMin(values, cell.values.data() + i * kk, k_,
                           &dom_counter_)) {
            cell.alive[i] = 0;
            --cell.alive_count;
            ++cell.dead_count;
            ++stats_->tuples_evicted;
          }
        }
        if (cell.dead_count > cell.ids.size() / 2) cell.Compact(k_);
      }
    }
  }

  // Insert.
  CellData* cell = EnsureCell(c, coords.data());
  const bool newly_populated = cell->alive_count == 0 && cell->ids.empty();
  cell->values.insert(cell->values.end(), values, values + k_);
  cell->ids.push_back(CellTupleIds{r_id, t_id});
  cell->alive.push_back(1);
  ++cell->alive_count;
  if (newly_populated) OnCellPopulated(c, coords.data());
  return InsertOutcome::kInserted;
}

void OutputTable::FlushCell(CellIndex c, std::vector<double>* values_out,
                            std::vector<CellTupleIds>* ids_out) {
  assert(!emitted_[static_cast<size_t>(c)]);
  assert(!marked_[static_cast<size_t>(c)]);
  emitted_[static_cast<size_t>(c)] = 1;
  const int32_t s = slot(c);
  if (s < 0) return;
  CellData& cell = cells_[static_cast<size_t>(s)];
  const size_t kk = static_cast<size_t>(k_);
  for (size_t i = 0; i < cell.ids.size(); ++i) {
    if (!cell.alive[i]) continue;
    values_out->insert(values_out->end(),
                       cell.values.begin() + static_cast<ptrdiff_t>(i * kk),
                       cell.values.begin() + static_cast<ptrdiff_t>((i + 1) * kk));
    ids_out->push_back(cell.ids[i]);
  }
}

std::vector<CellIndex> OutputTable::DrainMarkedEvents() {
  std::vector<CellIndex> out;
  out.swap(marked_events_);
  return out;
}

std::vector<CellIndex> OutputTable::PopulatedCells() const {
  std::vector<CellIndex> out;
  for (const CellData& cell : cells_) {
    if (cell.alive_count == 0) continue;
    out.push_back(geometry_.IndexOf(cell.coords.data()));
  }
  return out;
}

}  // namespace progxe
