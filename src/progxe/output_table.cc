#include "progxe/output_table.h"

#include <algorithm>
#include <cassert>

#include "common/compact.h"

namespace progxe {

void OutputTable::CellData::Compact(int k) {
  if (dead_count == 0) return;
  const size_t kk = static_cast<size_t>(k);
  const size_t w = CompactParallel(
      ids.size(), [this](size_t i) { return alive[i] != 0; },
      [this, kk](size_t from, size_t to) {
        MoveFlatRow(values.data(), kk, from, to);
        ids[to] = ids[from];
      });
  values.resize(w * kk);
  ids.resize(w);
  alive.assign(w, 1);
  dead_count = 0;
  assert(alive_count == w);
}

OutputTable::OutputTable(GridGeometry geometry, std::vector<uint8_t> marked,
                         ProgXeStats* stats)
    : geometry_(std::move(geometry)),
      k_(geometry_.dimensions()),
      stats_(stats),
      marked_(std::move(marked)) {
  const size_t total = static_cast<size_t>(geometry_.total_cells());
  assert(marked_.size() == total);
  reg_count_.assign(total, 0);
  emitted_.assign(total, 0);
  cell_slot_.assign(total, -1);
  scratch_coords_.resize(static_cast<size_t>(k_));
  pop_index_ = DominanceIndex(k_, geometry_.cells_per_dim());
}

void OutputTable::InitCoverage(const std::vector<Region>& regions) {
  for (const Region& region : regions) {
    if (!region.Active()) continue;
    geometry_.ForEachCellInBox(
        region.lo_cell.data(), region.hi_cell.data(),
        [this](CellIndex c) { ++reg_count_[static_cast<size_t>(c)]; });
  }
}

void OutputTable::ReleaseRegionCoverage(const Region& region,
                                        std::vector<CellIndex>* settled_out) {
  settled_out->clear();
  geometry_.ForEachCellInBox(
      region.lo_cell.data(), region.hi_cell.data(),
      [this, settled_out](CellIndex c) {
        int32_t& rc = reg_count_[static_cast<size_t>(c)];
        assert(rc > 0);
        if (--rc == 0) settled_out->push_back(c);
      });
}

std::vector<CellIndex> OutputTable::ReleaseRegionCoverage(
    const Region& region) {
  std::vector<CellIndex> settled;
  ReleaseRegionCoverage(region, &settled);
  return settled;
}

bool OutputTable::populated(CellIndex c) const {
  const int32_t s = slot(c);
  return s >= 0 && cells_[static_cast<size_t>(s)].alive_count > 0;
}

size_t OutputTable::AliveCount(CellIndex c) const {
  const int32_t s = slot(c);
  return s < 0 ? 0 : cells_[static_cast<size_t>(s)].alive_count;
}

bool OutputTable::FrontierStrictlyDominates(const CellCoord* coords) const {
  // Equivalent to scanning the frontier: a populated cell's index entry is
  // removed only when a strictly-lower populated cell exists (eager kill /
  // frontier kill), so a frontier dominator always implies a live one.
  return pop_index_.AnyLiveStrictlyBelow(coords);
}

bool OutputTable::RegionDominatedByFrontier(const Region& region) const {
  return FrontierStrictlyDominates(region.lo_cell.data());
}

bool OutputTable::FrontierDominatesSince(const CellCoord* coords,
                                         uint64_t since_epoch) const {
  return pop_index_.FrontierDominatesSince(coords, since_epoch);
}

OutputTable::CellData* OutputTable::EnsureCell(CellIndex c,
                                               const CellCoord* coords) {
  int32_t s = slot(c);
  if (s >= 0) return &cells_[static_cast<size_t>(s)];
  s = static_cast<int32_t>(cells_.size());
  cells_.emplace_back();
  cells_.back().coords.assign(coords, coords + k_);
  cells_.back().index = c;
  cell_slot_[static_cast<size_t>(c)] = s;
  return &cells_.back();
}

void OutputTable::KillCell(CellIndex c) {
  if (marked_[static_cast<size_t>(c)]) return;
  marked_[static_cast<size_t>(c)] = 1;
  marked_events_.push_back(c);
  const int32_t s = slot(c);
  if (s >= 0) {
    CellData& cell = cells_[static_cast<size_t>(s)];
    stats_->tuples_evicted += cell.alive_count;
    cell.values.clear();
    cell.ids.clear();
    cell.alive.clear();
    cell.alive_count = 0;
    cell.dead_count = 0;
    // Tombstone the populated-cell index entry: a marked cell never
    // receives tuples again, so it can never re-populate.
    if (cell.pop_pos >= 0) {
      pop_index_.Remove(cell.pop_pos);
      cell.pop_pos = -1;
    }
  }
}

void OutputTable::MaybeCompactPopulated() {
  pop_index_.MaybeCompact([this](int32_t cell_slot, int32_t pos) {
    cells_[static_cast<size_t>(cell_slot)].pop_pos = pos;
  });
}

void OutputTable::OnCellPopulated(CellIndex c, const CellCoord* coords) {
  CellData& self = cells_[static_cast<size_t>(slot(c))];
  if (self.pop_pos < 0) {
    self.pop_pos = pop_index_.Add(coords, slot(c));
  }
  pop_index_.NoteFrontier(coords);
  // Eager kill: every populated cell strictly above `coords` is now wholly
  // dominated (any tuple here dominates all of its tuples, half-open
  // cells). Candidates have coord[d] >= coords[d] + 1 in every dimension.
  pop_index_.SweepGe(coords, 1, [this](size_t p) {
    CellData& other = cells_[static_cast<size_t>(pop_index_.payload(p))];
    const CellIndex oc = other.index;
    if (other.alive_count != 0 && !emitted_[static_cast<size_t>(oc)]) {
      KillCell(oc);
    }
    return true;
  });
}

InsertOutcome OutputTable::Insert(const double* values, RowId r_id,
                                  RowId t_id) {
  CellCoord* coords = scratch_coords_.data();
  geometry_.CoordsOf(values, coords);
  const CellIndex c = geometry_.IndexOf(coords);

  assert(!emitted_[static_cast<size_t>(c)] &&
         "tuple arrived in an already-flushed cell");

  if (marked_[static_cast<size_t>(c)]) {
    ++stats_->tuples_discarded_marked;
    return InsertOutcome::kDiscardedMarked;
  }
  if (FrontierStrictlyDominates(coords)) {
    KillCell(c);
    ++stats_->tuples_discarded_frontier;
    return InsertOutcome::kDiscardedFrontier;
  }
  MaybeCompactPopulated();
  return InsertAlive(values, r_id, t_id, coords, c);
}

void OutputTable::InsertBatch(const double* values, const RowIdPair* ids,
                              size_t n) {
  const size_t kk = static_cast<size_t>(k_);
  if (batch_coords_.size() < n * kk) batch_coords_.resize(n * kk);
  if (batch_cells_.size() < n) batch_cells_.resize(n);

  // Pass 1: coordinates and cell indices for the whole block, one tight
  // loop over the geometry.
  for (size_t i = 0; i < n; ++i) {
    CellCoord* coords = batch_coords_.data() + i * kk;
    geometry_.CoordsOf(values + i * kk, coords);
    batch_cells_[i] = geometry_.IndexOf(coords);
  }
  InsertRuns(values, ids, n, batch_coords_.data(), batch_cells_.data());
}

void OutputTable::InsertBatchPrebinned(const double* values,
                                       const RowIdPair* ids, size_t n,
                                       const CellCoord* coords,
                                       const CellIndex* cells) {
  InsertRuns(values, ids, n, coords, cells);
}

void OutputTable::InsertRuns(const double* values, const RowIdPair* ids,
                             size_t n, const CellCoord* coords_flat,
                             const CellIndex* cells) {
  const size_t kk = static_cast<size_t>(k_);
  // Pass 2: process runs of consecutive same-cell tuples. Processing order
  // is exactly the input order, so counters match the per-tuple path. The
  // run-level shortcut is sound because within a run neither check can
  // flip: inserting into cell c never marks c (the eager kill skips cells
  // the new tuple does not strictly dominate, c included), and never makes
  // the frontier strictly dominate c (the only entry added is c's own
  // coordinates, and entries it evicts are covered by it).
  size_t i = 0;
  while (i < n) {
    const CellIndex c = cells[i];
    size_t run_end = i + 1;
    while (run_end < n && cells[run_end] == c) ++run_end;
    const size_t run_len = run_end - i;
    const CellCoord* coords = coords_flat + i * kk;

    assert(!emitted_[static_cast<size_t>(c)] &&
           "tuple arrived in an already-flushed cell");

    if (marked_[static_cast<size_t>(c)]) {
      stats_->tuples_discarded_marked += run_len;
      i = run_end;
      continue;
    }
    if (FrontierStrictlyDominates(coords)) {
      // Per-tuple equivalence: the first tuple takes the frontier hit and
      // kills the cell; the rest would then see the cell marked.
      KillCell(c);
      ++stats_->tuples_discarded_frontier;
      stats_->tuples_discarded_marked += run_len - 1;
      i = run_end;
      continue;
    }
    MaybeCompactPopulated();
    for (size_t t = i; t < run_end; ++t) {
      InsertAlive(values + t * kk, ids[t].r, ids[t].t, coords, c);
    }
    i = run_end;
  }
}

InsertOutcome OutputTable::InsertAlive(const double* values, RowId r_id,
                                       RowId t_id, const CellCoord* coords,
                                       CellIndex c) {
  const size_t kk = static_cast<size_t>(k_);

  // Dominance check against live tuples in the comparable dominator slice:
  // populated cells p with p <= coords in every dimension (cells strictly
  // below in all dimensions were handled by the frontier test above, so any
  // survivor here shares at least one coordinate — the paper's slice).
  // Candidates are enumerated by ANDing the per-dimension <= bitmaps.
  //
  // Tie fast-path: if an *alive* tuple exactly equals the newcomer, nothing
  // generated so far dominates either (or the incumbent would be dead), and
  // anything the newcomer would evict is already evicted — so both scans can
  // stop. This keeps heavily-tied workloads (e.g. all-zero penalty
  // dimensions in query relaxation) linear instead of quadratic.
  bool found_equal_alive = false;
  bool dominated = false;
  pop_index_.SweepLe(coords, [&](size_t p) {
    const CellCoord* pc = pop_index_.entry_coords(p);
    // Strictly-below populated cells cannot exist here (the frontier
    // test ran first); skipping them keeps the slice identical to the
    // paper's.
    if (DominanceIndex::CoordsStrictlyBelow(pc, coords, k_)) return true;
    const CellData& cell =
        cells_[static_cast<size_t>(pop_index_.payload(p))];
    if (cell.alive_count == 0) return true;
    const bool own_cell = cell.index == c;
    for (size_t i = 0; i < cell.ids.size(); ++i) {
      if (!cell.alive[i]) continue;
      if (own_cell) {
        DomResult r = CompareMin(cell.values.data() + i * kk, values, k_,
                                 &dom_counter_);
        if (r == DomResult::kLeftDominates) {
          dominated = true;
          return false;
        }
        if (r == DomResult::kEqual) {
          found_equal_alive = true;
          return false;
        }
      } else if (DominatesMin(cell.values.data() + i * kk, values, k_,
                              &dom_counter_)) {
        dominated = true;
        return false;
      }
    }
    return true;
  });
  if (dominated) {
    ++stats_->tuples_dominated_on_insert;
    return InsertOutcome::kDominated;
  }

  // Evict live tuples the new one dominates: populated cells p with
  // p >= coords in every dimension (again, sharing a coordinate; strictly
  // greater cells are killed wholesale when this cell first populates).
  if (!found_equal_alive) {
    pop_index_.SweepGe(coords, 0, [&](size_t p) {
      const CellCoord* pc = pop_index_.entry_coords(p);
      // Strictly-above cells are killed wholesale (and marked) when this
      // cell first populates; evicting their tuples here instead would
      // leave them unmarked and still accepting arrivals.
      if (DominanceIndex::CoordsStrictlyBelow(coords, pc, k_)) return true;
      CellData& cell = cells_[static_cast<size_t>(pop_index_.payload(p))];
      if (cell.alive_count == 0) return true;
      if (emitted_[static_cast<size_t>(cell.index)]) return true;
      for (size_t i = 0; i < cell.ids.size(); ++i) {
        if (!cell.alive[i]) continue;
        if (DominatesMin(values, cell.values.data() + i * kk, k_,
                         &dom_counter_)) {
          cell.alive[i] = 0;
          --cell.alive_count;
          ++cell.dead_count;
          ++stats_->tuples_evicted;
        }
      }
      if (cell.dead_count > cell.ids.size() / 2) cell.Compact(k_);
      return true;
    });
  }

  // Insert.
  CellData* cell = EnsureCell(c, coords);
  const bool newly_populated = cell->alive_count == 0 && cell->ids.empty();
  cell->values.insert(cell->values.end(), values, values + k_);
  cell->ids.push_back(CellTupleIds{r_id, t_id});
  cell->alive.push_back(1);
  ++cell->alive_count;
  if (newly_populated) OnCellPopulated(c, coords);
  return InsertOutcome::kInserted;
}

void OutputTable::FlushCell(CellIndex c, std::vector<double>* values_out,
                            std::vector<CellTupleIds>* ids_out) {
  assert(!emitted_[static_cast<size_t>(c)]);
  assert(!marked_[static_cast<size_t>(c)]);
  emitted_[static_cast<size_t>(c)] = 1;
  const int32_t s = slot(c);
  if (s < 0) return;
  CellData& cell = cells_[static_cast<size_t>(s)];
  const size_t kk = static_cast<size_t>(k_);
  for (size_t i = 0; i < cell.ids.size(); ++i) {
    if (!cell.alive[i]) continue;
    values_out->insert(values_out->end(),
                       cell.values.begin() + static_cast<ptrdiff_t>(i * kk),
                       cell.values.begin() + static_cast<ptrdiff_t>((i + 1) * kk));
    ids_out->push_back(cell.ids[i]);
  }
}

void OutputTable::DrainMarkedEvents(std::vector<CellIndex>* out) {
  out->assign(marked_events_.begin(), marked_events_.end());
  marked_events_.clear();
}

std::vector<CellIndex> OutputTable::DrainMarkedEvents() {
  std::vector<CellIndex> out;
  out.swap(marked_events_);
  return out;
}

std::vector<CellIndex> OutputTable::PopulatedCells() const {
  std::vector<CellIndex> out;
  for (const CellData& cell : cells_) {
    if (cell.alive_count == 0) continue;
    out.push_back(cell.index);
  }
  return out;
}

}  // namespace progxe
