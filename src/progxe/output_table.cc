#include "progxe/output_table.h"

#include <algorithm>
#include <cassert>

#include "common/compact.h"

namespace progxe {

namespace {

/// coords a <= b in every dimension.
inline bool CoordsLeq(const CellCoord* a, const CellCoord* b, int k) {
  for (int i = 0; i < k; ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

/// coords a < b in every dimension.
inline bool CoordsStrictlyBelow(const CellCoord* a, const CellCoord* b,
                                int k) {
  for (int i = 0; i < k; ++i) {
    if (a[i] >= b[i]) return false;
  }
  return true;
}

/// Enumerates ascending entry indices whose bit is set in the AND of the
/// `k` bitmaps in `ptrs` (each at least `min_words` words). `fn(p)`
/// returns false to stop the sweep early.
template <typename Fn>
inline void SweepAnd(const uint64_t* const* ptrs, int k, size_t min_words,
                     Fn&& fn) {
  for (size_t w = 0; w < min_words; ++w) {
    uint64_t m = ptrs[0][w];
    for (int d = 1; d < k; ++d) m &= ptrs[d][w];
    while (m != 0) {
      const size_t p = (w << 6) + static_cast<size_t>(__builtin_ctzll(m));
      m &= m - 1;
      if (!fn(p)) return;
    }
  }
}

}  // namespace

void OutputTable::CellData::Compact(int k) {
  if (dead_count == 0) return;
  const size_t kk = static_cast<size_t>(k);
  const size_t w = CompactParallel(
      ids.size(), [this](size_t i) { return alive[i] != 0; },
      [this, kk](size_t from, size_t to) {
        MoveFlatRow(values.data(), kk, from, to);
        ids[to] = ids[from];
      });
  values.resize(w * kk);
  ids.resize(w);
  alive.assign(w, 1);
  dead_count = 0;
  assert(alive_count == w);
}

OutputTable::OutputTable(GridGeometry geometry, std::vector<uint8_t> marked,
                         ProgXeStats* stats)
    : geometry_(std::move(geometry)),
      k_(geometry_.dimensions()),
      stats_(stats),
      marked_(std::move(marked)) {
  const size_t total = static_cast<size_t>(geometry_.total_cells());
  assert(marked_.size() == total);
  reg_count_.assign(total, 0);
  emitted_.assign(total, 0);
  cell_slot_.assign(total, -1);
  scratch_coords_.resize(static_cast<size_t>(k_));
  sweep_ptrs_.resize(static_cast<size_t>(k_));
  le_bits_.resize(static_cast<size_t>(k_));
  ge_bits_.resize(static_cast<size_t>(k_));
  for (int d = 0; d < k_; ++d) {
    le_bits_[static_cast<size_t>(d)].resize(
        static_cast<size_t>(geometry_.cells_per_dim()));
    ge_bits_[static_cast<size_t>(d)].resize(
        static_cast<size_t>(geometry_.cells_per_dim()));
  }
}

void OutputTable::SetPopBits(size_t i, const CellCoord* coords, bool value) {
  const size_t word = i >> 6;
  const uint64_t bit = uint64_t{1} << (i & 63);
  const int cpd = geometry_.cells_per_dim();
  for (int d = 0; d < k_; ++d) {
    auto& le = le_bits_[static_cast<size_t>(d)];
    auto& ge = ge_bits_[static_cast<size_t>(d)];
    for (CellCoord v = coords[d]; v < cpd; ++v) {
      auto& w = le[static_cast<size_t>(v)];
      if (w.size() <= word) {
        if (!value) continue;  // an unset bit needs no storage
        w.resize(word + 1, 0);
      }
      if (value) {
        w[word] |= bit;
      } else {
        w[word] &= ~bit;
      }
    }
    for (CellCoord v = 0; v <= coords[d]; ++v) {
      auto& w = ge[static_cast<size_t>(v)];
      if (w.size() <= word) {
        if (!value) continue;
        w.resize(word + 1, 0);
      }
      if (value) {
        w[word] |= bit;
      } else {
        w[word] &= ~bit;
      }
    }
  }
}

size_t OutputTable::GatherSweep(bool ge, const CellCoord* coords,
                                CellCoord offset) {
  const int cpd = geometry_.cells_per_dim();
  size_t min_words = SIZE_MAX;
  for (int d = 0; d < k_; ++d) {
    const CellCoord v = coords[d] + offset;
    if (v < 0 || v >= cpd) return 0;  // empty candidate set
    const auto& bits = (ge ? ge_bits_ : le_bits_)[static_cast<size_t>(d)]
                                                 [static_cast<size_t>(v)];
    sweep_ptrs_[static_cast<size_t>(d)] = bits.data();
    min_words = std::min(min_words, bits.size());
  }
  return min_words == SIZE_MAX ? 0 : min_words;
}

void OutputTable::InitCoverage(const std::vector<Region>& regions) {
  for (const Region& region : regions) {
    if (!region.Active()) continue;
    geometry_.ForEachCellInBox(
        region.lo_cell.data(), region.hi_cell.data(),
        [this](CellIndex c) { ++reg_count_[static_cast<size_t>(c)]; });
  }
}

void OutputTable::ReleaseRegionCoverage(const Region& region,
                                        std::vector<CellIndex>* settled_out) {
  settled_out->clear();
  geometry_.ForEachCellInBox(
      region.lo_cell.data(), region.hi_cell.data(),
      [this, settled_out](CellIndex c) {
        int32_t& rc = reg_count_[static_cast<size_t>(c)];
        assert(rc > 0);
        if (--rc == 0) settled_out->push_back(c);
      });
}

std::vector<CellIndex> OutputTable::ReleaseRegionCoverage(
    const Region& region) {
  std::vector<CellIndex> settled;
  ReleaseRegionCoverage(region, &settled);
  return settled;
}

bool OutputTable::populated(CellIndex c) const {
  const int32_t s = slot(c);
  return s >= 0 && cells_[static_cast<size_t>(s)].alive_count > 0;
}

size_t OutputTable::AliveCount(CellIndex c) const {
  const int32_t s = slot(c);
  return s < 0 ? 0 : cells_[static_cast<size_t>(s)].alive_count;
}

bool OutputTable::FrontierStrictlyDominates(const CellCoord* coords) const {
  const size_t kk = static_cast<size_t>(k_);
  for (size_t f = 0; f + kk <= frontier_.size(); f += kk) {
    if (CoordsStrictlyBelow(frontier_.data() + f, coords, k_)) return true;
  }
  return false;
}

bool OutputTable::RegionDominatedByFrontier(const Region& region) const {
  return FrontierStrictlyDominates(region.lo_cell.data());
}

bool OutputTable::FrontierDominatesSince(const CellCoord* coords,
                                         uint64_t since_epoch) const {
  const size_t kk = static_cast<size_t>(k_);
  for (size_t f = static_cast<size_t>(since_epoch) * kk;
       f + kk <= frontier_log_.size(); f += kk) {
    if (CoordsStrictlyBelow(frontier_log_.data() + f, coords, k_)) {
      return true;
    }
  }
  return false;
}

void OutputTable::UpdateFrontier(const CellCoord* coords) {
  const size_t kk = static_cast<size_t>(k_);
  // Redundant if an existing frontier cell is <= coords everywhere.
  for (size_t f = 0; f + kk <= frontier_.size(); f += kk) {
    if (CoordsLeq(frontier_.data() + f, coords, k_)) return;
  }
  // Remove frontier entries that the new cell covers.
  const size_t w = CompactParallel(
      frontier_.size() / kk,
      [this, coords, kk](size_t f) {
        return !CoordsLeq(coords, frontier_.data() + f * kk, k_);
      },
      [this, kk](size_t from, size_t to) {
        std::copy(frontier_.begin() + static_cast<ptrdiff_t>(from * kk),
                  frontier_.begin() + static_cast<ptrdiff_t>((from + 1) * kk),
                  frontier_.begin() + static_cast<ptrdiff_t>(to * kk));
      });
  frontier_.resize(w * kk);
  frontier_.insert(frontier_.end(), coords, coords + k_);
  frontier_log_.insert(frontier_log_.end(), coords, coords + k_);
  ++frontier_epoch_;
}

OutputTable::CellData* OutputTable::EnsureCell(CellIndex c,
                                               const CellCoord* coords) {
  int32_t s = slot(c);
  if (s >= 0) return &cells_[static_cast<size_t>(s)];
  s = static_cast<int32_t>(cells_.size());
  cells_.emplace_back();
  cells_.back().coords.assign(coords, coords + k_);
  cells_.back().index = c;
  cell_slot_[static_cast<size_t>(c)] = s;
  return &cells_.back();
}

void OutputTable::KillCell(CellIndex c) {
  if (marked_[static_cast<size_t>(c)]) return;
  marked_[static_cast<size_t>(c)] = 1;
  marked_events_.push_back(c);
  const int32_t s = slot(c);
  if (s >= 0) {
    CellData& cell = cells_[static_cast<size_t>(s)];
    stats_->tuples_evicted += cell.alive_count;
    cell.values.clear();
    cell.ids.clear();
    cell.alive.clear();
    cell.alive_count = 0;
    cell.dead_count = 0;
    // Tombstone the populated-cell index entry: a marked cell never
    // receives tuples again, so it can never re-populate.
    if (cell.pop_pos >= 0) {
      SetPopBits(static_cast<size_t>(cell.pop_pos), cell.coords.data(),
                 false);
      pop_slots_[static_cast<size_t>(cell.pop_pos)] = -1;
      cell.pop_pos = -1;
      ++pop_tombstones_;
    }
  }
}

void OutputTable::MaybeCompactPopulated() {
  if (pop_tombstones_ * 2 <= pop_slots_.size() || pop_slots_.size() < 64) {
    return;
  }
  const size_t kk = static_cast<size_t>(k_);
  const size_t w = CompactParallel(
      pop_slots_.size(), [this](size_t i) { return pop_slots_[i] >= 0; },
      [this, kk](size_t from, size_t to) {
        std::copy(pop_coords_.begin() + static_cast<ptrdiff_t>(from * kk),
                  pop_coords_.begin() + static_cast<ptrdiff_t>((from + 1) * kk),
                  pop_coords_.begin() + static_cast<ptrdiff_t>(to * kk));
        pop_slots_[to] = pop_slots_[from];
      });
  for (size_t i = 0; i < w; ++i) {
    cells_[static_cast<size_t>(pop_slots_[i])].pop_pos =
        static_cast<int32_t>(i);
  }
  pop_coords_.resize(w * kk);
  pop_slots_.resize(w);
  pop_tombstones_ = 0;
  // Rebuild the coordinate bitmaps for the compacted index.
  const size_t words = (w + 63) >> 6;
  for (int d = 0; d < k_; ++d) {
    for (auto& bits : le_bits_[static_cast<size_t>(d)]) {
      bits.assign(words, 0);
    }
    for (auto& bits : ge_bits_[static_cast<size_t>(d)]) {
      bits.assign(words, 0);
    }
  }
  for (size_t i = 0; i < w; ++i) {
    SetPopBits(i, pop_coords_.data() + i * kk, true);
  }
}

void OutputTable::OnCellPopulated(CellIndex c, const CellCoord* coords) {
  CellData& self = cells_[static_cast<size_t>(slot(c))];
  if (self.pop_pos < 0) {
    self.pop_pos = static_cast<int32_t>(pop_slots_.size());
    pop_coords_.insert(pop_coords_.end(), coords, coords + k_);
    pop_slots_.push_back(slot(c));
    SetPopBits(static_cast<size_t>(self.pop_pos), coords, true);
  }
  UpdateFrontier(coords);
  // Eager kill: every populated cell strictly above `coords` is now wholly
  // dominated (any tuple here dominates all of its tuples, half-open
  // cells). Candidates have coord[d] >= coords[d] + 1 in every dimension.
  const size_t words = GatherSweep(/*ge=*/true, coords, 1);
  SweepAnd(sweep_ptrs_.data(), k_, words, [this](size_t p) {
    const int32_t s = pop_slots_[p];
    if (s >= 0) {  // else: tombstone (stale bit within this word)
      CellData& other = cells_[static_cast<size_t>(s)];
      const CellIndex oc = other.index;
      if (other.alive_count != 0 && !emitted_[static_cast<size_t>(oc)]) {
        KillCell(oc);
      }
    }
    return true;
  });
}

InsertOutcome OutputTable::Insert(const double* values, RowId r_id,
                                  RowId t_id) {
  CellCoord* coords = scratch_coords_.data();
  geometry_.CoordsOf(values, coords);
  const CellIndex c = geometry_.IndexOf(coords);

  assert(!emitted_[static_cast<size_t>(c)] &&
         "tuple arrived in an already-flushed cell");

  if (marked_[static_cast<size_t>(c)]) {
    ++stats_->tuples_discarded_marked;
    return InsertOutcome::kDiscardedMarked;
  }
  if (FrontierStrictlyDominates(coords)) {
    KillCell(c);
    ++stats_->tuples_discarded_frontier;
    return InsertOutcome::kDiscardedFrontier;
  }
  MaybeCompactPopulated();
  return InsertAlive(values, r_id, t_id, coords, c);
}

void OutputTable::InsertBatch(const double* values, const RowIdPair* ids,
                              size_t n) {
  const size_t kk = static_cast<size_t>(k_);
  if (batch_coords_.size() < n * kk) batch_coords_.resize(n * kk);
  if (batch_cells_.size() < n) batch_cells_.resize(n);

  // Pass 1: coordinates and cell indices for the whole block, one tight
  // loop over the geometry.
  for (size_t i = 0; i < n; ++i) {
    CellCoord* coords = batch_coords_.data() + i * kk;
    geometry_.CoordsOf(values + i * kk, coords);
    batch_cells_[i] = geometry_.IndexOf(coords);
  }
  InsertRuns(values, ids, n, batch_coords_.data(), batch_cells_.data());
}

void OutputTable::InsertBatchPrebinned(const double* values,
                                       const RowIdPair* ids, size_t n,
                                       const CellCoord* coords,
                                       const CellIndex* cells) {
  InsertRuns(values, ids, n, coords, cells);
}

void OutputTable::InsertRuns(const double* values, const RowIdPair* ids,
                             size_t n, const CellCoord* coords_flat,
                             const CellIndex* cells) {
  const size_t kk = static_cast<size_t>(k_);
  // Pass 2: process runs of consecutive same-cell tuples. Processing order
  // is exactly the input order, so counters match the per-tuple path. The
  // run-level shortcut is sound because within a run neither check can
  // flip: inserting into cell c never marks c (the eager kill skips cells
  // the new tuple does not strictly dominate, c included), and never makes
  // the frontier strictly dominate c (the only entry added is c's own
  // coordinates, and entries it evicts are covered by it).
  size_t i = 0;
  while (i < n) {
    const CellIndex c = cells[i];
    size_t run_end = i + 1;
    while (run_end < n && cells[run_end] == c) ++run_end;
    const size_t run_len = run_end - i;
    const CellCoord* coords = coords_flat + i * kk;

    assert(!emitted_[static_cast<size_t>(c)] &&
           "tuple arrived in an already-flushed cell");

    if (marked_[static_cast<size_t>(c)]) {
      stats_->tuples_discarded_marked += run_len;
      i = run_end;
      continue;
    }
    if (FrontierStrictlyDominates(coords)) {
      // Per-tuple equivalence: the first tuple takes the frontier hit and
      // kills the cell; the rest would then see the cell marked.
      KillCell(c);
      ++stats_->tuples_discarded_frontier;
      stats_->tuples_discarded_marked += run_len - 1;
      i = run_end;
      continue;
    }
    MaybeCompactPopulated();
    for (size_t t = i; t < run_end; ++t) {
      InsertAlive(values + t * kk, ids[t].r, ids[t].t, coords, c);
    }
    i = run_end;
  }
}

InsertOutcome OutputTable::InsertAlive(const double* values, RowId r_id,
                                       RowId t_id, const CellCoord* coords,
                                       CellIndex c) {
  const size_t kk = static_cast<size_t>(k_);

  // Dominance check against live tuples in the comparable dominator slice:
  // populated cells p with p <= coords in every dimension (cells strictly
  // below in all dimensions were handled by the frontier test above, so any
  // survivor here shares at least one coordinate — the paper's slice).
  // Candidates are enumerated by ANDing the per-dimension <= bitmaps.
  //
  // Tie fast-path: if an *alive* tuple exactly equals the newcomer, nothing
  // generated so far dominates either (or the incumbent would be dead), and
  // anything the newcomer would evict is already evicted — so both scans can
  // stop. This keeps heavily-tied workloads (e.g. all-zero penalty
  // dimensions in query relaxation) linear instead of quadratic.
  bool found_equal_alive = false;
  bool dominated = false;
  size_t words = GatherSweep(/*ge=*/false, coords, 0);
  SweepAnd(sweep_ptrs_.data(), k_, words, [&](size_t p) {
    const CellCoord* pc = pop_coords_.data() + p * kk;
    // Strictly-below populated cells cannot exist here (the frontier
    // test ran first); skipping them keeps the slice identical to the
    // paper's.
    if (CoordsStrictlyBelow(pc, coords, k_)) return true;
    const int32_t s = pop_slots_[p];
    if (s < 0) return true;  // tombstone (stale bit within this word)
    const CellData& cell = cells_[static_cast<size_t>(s)];
    if (cell.alive_count == 0) return true;
    const bool own_cell = cell.index == c;
    for (size_t i = 0; i < cell.ids.size(); ++i) {
      if (!cell.alive[i]) continue;
      if (own_cell) {
        DomResult r = CompareMin(cell.values.data() + i * kk, values, k_,
                                 &dom_counter_);
        if (r == DomResult::kLeftDominates) {
          dominated = true;
          return false;
        }
        if (r == DomResult::kEqual) {
          found_equal_alive = true;
          return false;
        }
      } else if (DominatesMin(cell.values.data() + i * kk, values, k_,
                              &dom_counter_)) {
        dominated = true;
        return false;
      }
    }
    return true;
  });
  if (dominated) {
    ++stats_->tuples_dominated_on_insert;
    return InsertOutcome::kDominated;
  }

  // Evict live tuples the new one dominates: populated cells p with
  // p >= coords in every dimension (again, sharing a coordinate; strictly
  // greater cells are killed wholesale when this cell first populates).
  if (!found_equal_alive) {
    words = GatherSweep(/*ge=*/true, coords, 0);
    SweepAnd(sweep_ptrs_.data(), k_, words, [&](size_t p) {
      const CellCoord* pc = pop_coords_.data() + p * kk;
      // Strictly-above cells are killed wholesale (and marked) when this
      // cell first populates; evicting their tuples here instead would
      // leave them unmarked and still accepting arrivals.
      if (CoordsStrictlyBelow(coords, pc, k_)) return true;
      const int32_t s = pop_slots_[p];
      if (s < 0) return true;  // tombstone (stale bit within this word)
      CellData& cell = cells_[static_cast<size_t>(s)];
      if (cell.alive_count == 0) return true;
      if (emitted_[static_cast<size_t>(cell.index)]) return true;
      for (size_t i = 0; i < cell.ids.size(); ++i) {
        if (!cell.alive[i]) continue;
        if (DominatesMin(values, cell.values.data() + i * kk, k_,
                         &dom_counter_)) {
          cell.alive[i] = 0;
          --cell.alive_count;
          ++cell.dead_count;
          ++stats_->tuples_evicted;
        }
      }
      if (cell.dead_count > cell.ids.size() / 2) cell.Compact(k_);
      return true;
    });
  }

  // Insert.
  CellData* cell = EnsureCell(c, coords);
  const bool newly_populated = cell->alive_count == 0 && cell->ids.empty();
  cell->values.insert(cell->values.end(), values, values + k_);
  cell->ids.push_back(CellTupleIds{r_id, t_id});
  cell->alive.push_back(1);
  ++cell->alive_count;
  if (newly_populated) OnCellPopulated(c, coords);
  return InsertOutcome::kInserted;
}

void OutputTable::FlushCell(CellIndex c, std::vector<double>* values_out,
                            std::vector<CellTupleIds>* ids_out) {
  assert(!emitted_[static_cast<size_t>(c)]);
  assert(!marked_[static_cast<size_t>(c)]);
  emitted_[static_cast<size_t>(c)] = 1;
  const int32_t s = slot(c);
  if (s < 0) return;
  CellData& cell = cells_[static_cast<size_t>(s)];
  const size_t kk = static_cast<size_t>(k_);
  for (size_t i = 0; i < cell.ids.size(); ++i) {
    if (!cell.alive[i]) continue;
    values_out->insert(values_out->end(),
                       cell.values.begin() + static_cast<ptrdiff_t>(i * kk),
                       cell.values.begin() + static_cast<ptrdiff_t>((i + 1) * kk));
    ids_out->push_back(cell.ids[i]);
  }
}

void OutputTable::DrainMarkedEvents(std::vector<CellIndex>* out) {
  out->assign(marked_events_.begin(), marked_events_.end());
  marked_events_.clear();
}

std::vector<CellIndex> OutputTable::DrainMarkedEvents() {
  std::vector<CellIndex> out;
  out.swap(marked_events_);
  return out;
}

std::vector<CellIndex> OutputTable::PopulatedCells() const {
  std::vector<CellIndex> out;
  for (const CellData& cell : cells_) {
    if (cell.alive_count == 0) continue;
    out.push_back(cell.index);
  }
  return out;
}

}  // namespace progxe
