// Runtime state of the output partition grid: per-cell region coverage,
// non-contributing marks, live intermediate tuples, and the populated-cell
// frontier. Implements tuple-level processing (Section III-B): join results
// fight only tuples mapped to their *comparable slice* of partitions, and
// whole partitions are discarded by cell-level domination.
//
// Cell-level soundness relies on half-open grid cells (see
// grid/grid_geometry.h): a populated cell strictly below another cell in
// every coordinate dominates *all* of that cell's present and future tuples.
//
// Hot-path layout: populated cells live in a shared DominanceIndex
// (dominance/dominance_index.h — flat coordinates plus a parallel slot
// payload, with per-dimension cumulative bitmaps) so the comparable-slice
// and eager-kill scans are word-wise cone sweeps over contiguous memory;
// killed cells leave tombstones that are compacted once they outnumber the
// live entries. The insert path is allocation-free
// in steady state — per-call coordinate buffers are member scratch — and
// the batched entry point (InsertBatch) amortizes coordinate computation
// and cell-level checks over runs of same-cell tuples while remaining
// result- and counter-identical to per-tuple Insert calls in the same
// order.
#pragma once

#include <cstdint>
#include <vector>

#include "dominance/dominance_index.h"
#include "grid/grid_geometry.h"
#include "outputspace/region.h"
#include "prefs/dominance.h"
#include "progxe/config.h"

namespace progxe {

/// Outcome of inserting one join result.
enum class InsertOutcome : uint8_t {
  /// Discarded: mapped to a cell marked non-contributing at look-ahead or
  /// killed at runtime.
  kDiscardedMarked,
  /// Discarded: cell strictly dominated by a populated cell (frontier).
  kDiscardedFrontier,
  /// Discarded: dominated by a live tuple in the comparable slice.
  kDominated,
  /// Inserted and currently alive.
  kInserted,
};

/// A live intermediate result within a cell.
struct CellTupleIds {
  RowId r;
  RowId t;
};

class OutputTable {
 public:
  /// `marked` is the look-ahead marking (moved in); `k` output dims.
  OutputTable(GridGeometry geometry, std::vector<uint8_t> marked,
              ProgXeStats* stats);

  const GridGeometry& geometry() const { return geometry_; }
  int dims() const { return geometry_.dimensions(); }

  // --- Region coverage (RegCount of Algorithm 2) ---------------------------

  /// Adds every active region's box to the coverage counts.
  void InitCoverage(const std::vector<Region>& regions);

  /// Removes a region's box from coverage (it completed or was discarded).
  /// Assigns the cells whose count reached zero ("settled" cells) to
  /// `*settled_out` (reusing its capacity).
  void ReleaseRegionCoverage(const Region& region,
                             std::vector<CellIndex>* settled_out);

  /// Allocating convenience overload (tests).
  std::vector<CellIndex> ReleaseRegionCoverage(const Region& region);

  int32_t reg_count(CellIndex c) const {
    return reg_count_[static_cast<size_t>(c)];
  }

  // --- Tuple-level processing ----------------------------------------------

  /// Inserts one join result with canonical output vector `values[0..k)`.
  InsertOutcome Insert(const double* values, RowId r_id, RowId t_id);

  /// Inserts a block of `n` join results (`values` holds k doubles per
  /// tuple, pair-major; `ids` is parallel). Exactly equivalent — stats
  /// counters included — to calling Insert per tuple in order, but bins the
  /// block into runs of same-cell tuples: coordinates are computed in one
  /// tight pass and the marked/frontier cell checks run once per run
  /// (sound because an insert into a cell can neither mark that cell nor
  /// make the frontier dominate it; see output_table.cc).
  void InsertBatch(const double* values, const RowIdPair* ids, size_t n);

  /// InsertBatch for callers that already binned the block: `coords` holds
  /// k cell coordinates per tuple and `cells` the matching linear indices,
  /// exactly as GridGeometry would compute them from `values`. Used by the
  /// parallel pipeline, whose workers pre-grid their chunks off-thread.
  void InsertBatchPrebinned(const double* values, const RowIdPair* ids,
                            size_t n, const CellCoord* coords,
                            const CellIndex* cells);

  // --- Cell predicates -----------------------------------------------------

  bool marked(CellIndex c) const { return marked_[static_cast<size_t>(c)] != 0; }
  bool emitted(CellIndex c) const {
    return emitted_[static_cast<size_t>(c)] != 0;
  }
  /// True iff the cell holds at least one live tuple.
  bool populated(CellIndex c) const;
  /// Number of live tuples in the cell.
  size_t AliveCount(CellIndex c) const;

  /// True iff some populated cell is strictly below `coords` in every
  /// dimension (i.e. every tuple of this cell is dominated).
  bool FrontierStrictlyDominates(const CellCoord* coords) const;

  /// True iff some populated cell is strictly below the given region's
  /// lower cell in every dimension — the runtime region-discard test
  /// (Algorithm 1, line 9).
  bool RegionDominatedByFrontier(const Region& region) const;

  // --- Incremental frontier tracking ---------------------------------------
  //
  // Every coordinate vector ever added to the frontier is appended to an
  // append-only log; the epoch is the number of log entries. A consumer
  // that verified "no frontier entry strictly dominates coords" at epoch e
  // only needs to test log entries [e, frontier_epoch()) later: entries
  // evicted from the frontier in between are always covered by a newer
  // entry that dominates at least as much, so the log never loses
  // dominators.

  /// Number of frontier insertions so far. Advances only when a new cell
  /// populates in a frontier-relevant position.
  uint64_t frontier_epoch() const { return pop_index_.frontier_epoch(); }

  /// True iff a frontier entry logged at epoch >= `since_epoch` strictly
  /// dominates `coords`. With `since_epoch` equal to the epoch of the last
  /// surviving check, this is equivalent to FrontierStrictlyDominates.
  bool FrontierDominatesSince(const CellCoord* coords,
                              uint64_t since_epoch) const;

  // --- Flushing ------------------------------------------------------------

  /// Marks the cell emitted and appends its live tuples (canonical values +
  /// ids) to the output vectors. Tuples stay resident afterwards: emitted
  /// tuples are final skyline members and still serve as dominators for
  /// later arrivals.
  void FlushCell(CellIndex c, std::vector<double>* values_out,
                 std::vector<CellTupleIds>* ids_out);

  /// Cells killed (marked) at runtime since the last drain; the caller
  /// (ProgDetermine) must drop them from its pending set. Assigns into
  /// `*out`, reusing its capacity.
  void DrainMarkedEvents(std::vector<CellIndex>* out);

  /// Allocating convenience overload (tests).
  std::vector<CellIndex> DrainMarkedEvents();

  /// All cells currently holding live tuples (diagnostic / final sweep).
  std::vector<CellIndex> PopulatedCells() const;

  DomCounter* dom_counter() { return &dom_counter_; }

 private:
  struct CellData {
    std::vector<double> values;     // flat, k per tuple
    std::vector<CellTupleIds> ids;  // parallel to values
    std::vector<uint8_t> alive;     // parallel
    std::vector<CellCoord> coords;  // this cell's grid coordinates
    CellIndex index = -1;           // cached geometry_.IndexOf(coords)
    int32_t pop_pos = -1;           // position in the populated-cell index
    size_t alive_count = 0;
    size_t dead_count = 0;

    void Compact(int k);
  };

  /// Slot of a cell in cells_, or -1.
  int32_t slot(CellIndex c) const { return cell_slot_[static_cast<size_t>(c)]; }

  /// Ensures a CellData exists for the (about-to-be-populated) cell.
  CellData* EnsureCell(CellIndex c, const CellCoord* coords);

  /// Registers a newly populated cell: populated-cell index, frontier
  /// update, and eager kill of populated cells strictly above it.
  void OnCellPopulated(CellIndex c, const CellCoord* coords);

  /// Kills a cell: drops its live tuples and marks it non-contributing.
  void KillCell(CellIndex c);

  /// Squeezes tombstones out of the populated-cell index once they
  /// dominate it. Must only run outside the index sweeps.
  void MaybeCompactPopulated();

  /// Insert continuation once the cell-level marked/frontier checks have
  /// passed: slice dominance scan, eviction scan, and the append.
  InsertOutcome InsertAlive(const double* values, RowId r_id, RowId t_id,
                            const CellCoord* coords, CellIndex c);

  /// Shared pass 2 of the batch entry points: processes runs of
  /// consecutive same-cell tuples over pre-binned coordinates.
  void InsertRuns(const double* values, const RowIdPair* ids, size_t n,
                  const CellCoord* coords_flat, const CellIndex* cells);

  GridGeometry geometry_;
  int k_;
  ProgXeStats* stats_;
  DomCounter dom_counter_;

  std::vector<int32_t> reg_count_;
  std::vector<uint8_t> marked_;
  std::vector<uint8_t> emitted_;
  std::vector<int32_t> cell_slot_;
  std::vector<CellData> cells_;

  // Populated-cell index + cell frontier, shared machinery with the
  // sharded merge sink (dominance/dominance_index.h): entry payload is the
  // slot into cells_, entry position is cached in CellData::pop_pos. The
  // dominance-slice and eager-kill scans run as cone sweeps over this
  // index; the Pareto-minimal frontier and its append-only epoch log back
  // FrontierStrictlyDominates / FrontierDominatesSince.
  DominanceIndex pop_index_;

  std::vector<CellIndex> marked_events_;

  // Reusable scratch: single-insert coordinates and the batch pipeline's
  // per-block coordinate / cell-index buffers.
  std::vector<CellCoord> scratch_coords_;
  std::vector<CellCoord> batch_coords_;
  std::vector<CellIndex> batch_cells_;
};

}  // namespace progxe
