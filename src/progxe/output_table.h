// Runtime state of the output partition grid: per-cell region coverage,
// non-contributing marks, live intermediate tuples, and the populated-cell
// frontier. Implements tuple-level processing (Section III-B): join results
// fight only tuples mapped to their *comparable slice* of partitions, and
// whole partitions are discarded by cell-level domination.
//
// Cell-level soundness relies on half-open grid cells (see
// grid/grid_geometry.h): a populated cell strictly below another cell in
// every coordinate dominates *all* of that cell's present and future tuples.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/grid_geometry.h"
#include "outputspace/region.h"
#include "prefs/dominance.h"
#include "progxe/config.h"

namespace progxe {

/// Outcome of inserting one join result.
enum class InsertOutcome : uint8_t {
  /// Discarded: mapped to a cell marked non-contributing at look-ahead or
  /// killed at runtime.
  kDiscardedMarked,
  /// Discarded: cell strictly dominated by a populated cell (frontier).
  kDiscardedFrontier,
  /// Discarded: dominated by a live tuple in the comparable slice.
  kDominated,
  /// Inserted and currently alive.
  kInserted,
};

/// A live intermediate result within a cell.
struct CellTupleIds {
  RowId r;
  RowId t;
};

class OutputTable {
 public:
  /// `marked` is the look-ahead marking (moved in); `k` output dims.
  OutputTable(GridGeometry geometry, std::vector<uint8_t> marked,
              ProgXeStats* stats);

  const GridGeometry& geometry() const { return geometry_; }
  int dims() const { return geometry_.dimensions(); }

  // --- Region coverage (RegCount of Algorithm 2) ---------------------------

  /// Adds every active region's box to the coverage counts.
  void InitCoverage(const std::vector<Region>& regions);

  /// Removes a region's box from coverage (it completed or was discarded).
  /// Returns the cells whose count reached zero ("settled" cells).
  std::vector<CellIndex> ReleaseRegionCoverage(const Region& region);

  int32_t reg_count(CellIndex c) const {
    return reg_count_[static_cast<size_t>(c)];
  }

  // --- Tuple-level processing ----------------------------------------------

  /// Inserts one join result with canonical output vector `values[0..k)`.
  InsertOutcome Insert(const double* values, RowId r_id, RowId t_id);

  // --- Cell predicates -----------------------------------------------------

  bool marked(CellIndex c) const { return marked_[static_cast<size_t>(c)] != 0; }
  bool emitted(CellIndex c) const {
    return emitted_[static_cast<size_t>(c)] != 0;
  }
  /// True iff the cell holds at least one live tuple.
  bool populated(CellIndex c) const;
  /// Number of live tuples in the cell.
  size_t AliveCount(CellIndex c) const;

  /// True iff some populated cell is strictly below `coords` in every
  /// dimension (i.e. every tuple of this cell is dominated).
  bool FrontierStrictlyDominates(const CellCoord* coords) const;

  /// True iff some populated cell is strictly below the given region's
  /// lower cell in every dimension — the runtime region-discard test
  /// (Algorithm 1, line 9).
  bool RegionDominatedByFrontier(const Region& region) const;

  // --- Flushing ------------------------------------------------------------

  /// Marks the cell emitted and appends its live tuples (canonical values +
  /// ids) to the output vectors. Tuples stay resident afterwards: emitted
  /// tuples are final skyline members and still serve as dominators for
  /// later arrivals.
  void FlushCell(CellIndex c, std::vector<double>* values_out,
                 std::vector<CellTupleIds>* ids_out);

  /// Cells killed (marked) at runtime since the last drain; the caller
  /// (ProgDetermine) must drop them from its pending set.
  std::vector<CellIndex> DrainMarkedEvents();

  /// All cells currently holding live tuples (diagnostic / final sweep).
  std::vector<CellIndex> PopulatedCells() const;

  DomCounter* dom_counter() { return &dom_counter_; }

 private:
  struct CellData {
    std::vector<double> values;     // flat, k per tuple
    std::vector<CellTupleIds> ids;  // parallel to values
    std::vector<uint8_t> alive;     // parallel
    std::vector<CellCoord> coords;  // this cell's grid coordinates
    size_t alive_count = 0;
    size_t dead_count = 0;

    void Compact(int k);
  };

  /// Slot of a cell in cells_, or -1.
  int32_t slot(CellIndex c) const { return cell_slot_[static_cast<size_t>(c)]; }

  /// Ensures a CellData exists for the (about-to-be-populated) cell.
  CellData* EnsureCell(CellIndex c, const CellCoord* coords);

  /// Registers a newly populated cell: slab lists, frontier update, and
  /// eager kill of populated cells strictly above it.
  void OnCellPopulated(CellIndex c, const CellCoord* coords);

  /// Kills a cell: drops its live tuples and marks it non-contributing.
  void KillCell(CellIndex c);

  void UpdateFrontier(const CellCoord* coords);

  GridGeometry geometry_;
  int k_;
  ProgXeStats* stats_;
  DomCounter dom_counter_;

  std::vector<int32_t> reg_count_;
  std::vector<uint8_t> marked_;
  std::vector<uint8_t> emitted_;
  std::vector<int32_t> cell_slot_;
  std::vector<CellData> cells_;

  // slabs_[dim][coord]: indices of populated cells with coords[dim]==coord.
  std::vector<std::vector<std::vector<CellIndex>>> slabs_;

  // Pareto-minimal coordinates of populated cells (flat, k_ per entry).
  std::vector<CellCoord> frontier_;

  // Per-scan visit de-duplication stamps.
  std::vector<uint32_t> visit_stamp_;
  uint32_t current_stamp_ = 0;

  std::vector<CellIndex> marked_events_;
};

}  // namespace progxe
