#include "progxe/pipeline.h"

#include <algorithm>

#include "obs/trace.h"

namespace progxe {

RegionJoinPipeline::RegionJoinPipeline(const CanonicalMapper* mapper,
                                       const double* r_flat,
                                       const double* t_flat,
                                       const GridGeometry* geometry,
                                       size_t insert_batch_size,
                                       int num_threads)
    : mapper_(mapper),
      r_flat_(r_flat),
      t_flat_(t_flat),
      geometry_(geometry),
      batch_cap_(insert_batch_size > 1 ? insert_batch_size : 0),
      num_threads_(num_threads),
      k_(mapper->output_dimensions()) {
  seq_pairs_.resize(batch_cap_);
  seq_values_.resize(batch_cap_ * static_cast<size_t>(k_));
  tuple_values_.resize(static_cast<size_t>(k_));
  if (num_threads_ > 1) {
    slots_.resize(2 * static_cast<size_t>(num_threads_));
    workers_.reserve(static_cast<size_t>(num_threads_));
    for (int i = 0; i < num_threads_; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

RegionJoinPipeline::~RegionJoinPipeline() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mtx_);
      shutdown_ = true;
    }
    cv_workers_.notify_all();
    for (std::thread& w : workers_) w.join();
  }
}

uint64_t RegionJoinPipeline::ProcessRegion(const InputPartition& pa,
                                           const InputPartition& pb,
                                           OutputTable* table) {
  // The whole-region path is the resumable path run to exhaustion, so both
  // share one implementation and the equivalence suites cover them
  // together.
  BeginRegion(pa, pb);
  return ProcessSome(/*max_pairs=*/0, table);
}

void RegionJoinPipeline::FillChunk(size_t task_begin, size_t task_end,
                                   ChunkSlot* slot) const {
  const size_t kk = static_cast<size_t>(k_);
  size_t n = 0;
  for (size_t i = task_begin; i < task_end; ++i) {
    n += tasks_[i].t_rows->size();
  }
  if (slot->pairs.size() < n) slot->pairs.resize(n);
  if (slot->values.size() < n * kk) slot->values.resize(n * kk);
  if (slot->coords.size() < n * kk) slot->coords.resize(n * kk);
  if (slot->cells.size() < n) slot->cells.resize(n);

  size_t p = 0;
  for (size_t i = task_begin; i < task_end; ++i) {
    const RowId r = tasks_[i].r;
    for (RowId t : *tasks_[i].t_rows) {
      slot->pairs[p++] = RowIdPair{r, t};
    }
  }
  mapper_->CombineBatch(slot->pairs.data(), n, r_flat_, t_flat_,
                        slot->values.data());
  for (size_t i = 0; i < n; ++i) {
    CellCoord* coords = slot->coords.data() + i * kk;
    geometry_->CoordsOf(slot->values.data() + i * kk, coords);
    slot->cells[i] = geometry_->IndexOf(coords);
  }
  slot->n = n;
}

uint64_t RegionJoinPipeline::BuildTasks(const InputPartition& pa,
                                        const InputPartition& pb) {
  // Task list in the exact JoinIndexes enumeration order. Workers are idle
  // here (no chunks outstanding), so the shared vectors are safe to write;
  // a parallel publish hands them over under the mutex.
  tasks_.clear();
  uint64_t total_pairs = 0;
  pa.key_index.ForEach([&](JoinKey key, const std::vector<RowId>& r_rows) {
    const std::vector<RowId>* t_rows = pb.key_index.Find(key);
    if (t_rows == nullptr) return;
    for (RowId r : r_rows) tasks_.push_back(Task{r, t_rows});
    total_pairs +=
        static_cast<uint64_t>(r_rows.size()) * t_rows->size();
  });
  return total_pairs;
}

size_t RegionJoinPipeline::BuildChunks(uint64_t total_pairs) {
  // Chunk sizing: enough chunks to keep every worker busy, each chunk big
  // enough to amortize a slot handshake, capped to bound ring memory.
  const size_t floor_pairs = std::max<size_t>(batch_cap_, 1024);
  size_t target = static_cast<size_t>(
      total_pairs / (static_cast<uint64_t>(num_threads_) * 4));
  target = std::clamp(target, floor_pairs, size_t{32768});

  chunk_task_end_.clear();
  size_t acc = 0;
  for (size_t i = 0; i < tasks_.size(); ++i) {
    acc += tasks_[i].t_rows->size();
    if (acc >= target) {
      chunk_task_end_.push_back(i + 1);
      acc = 0;
    }
  }
  if (acc > 0) chunk_task_end_.push_back(tasks_.size());
  return chunk_task_end_.size();
}

void RegionJoinPipeline::BeginRegion(const InputPartition& pa,
                                     const InputPartition& pb) {
  const uint64_t total_pairs = BuildTasks(pa, pb);
  cursor_task_ = 0;
  cursor_offset_ = 0;
  resumable_parallel_ = false;
  region_open_ = !tasks_.empty();
  if (!region_open_) return;

  // Parallel mode pays off only when there is more than one chunk; a
  // single chunk (or no pool) walks the sequential cursor instead.
  if (!workers_.empty() && BuildChunks(total_pairs) > 1) {
    resumable_parallel_ = true;
    merge_chunk_ = 0;
    const size_t ring = slots_.size();
    {
      std::lock_guard<std::mutex> lock(mtx_);
      for (size_t s = 0; s < ring; ++s) {
        slots_[s].expected = s;
        slots_[s].filled = false;
      }
      next_chunk_ = 0;
      num_chunks_ = chunk_task_end_.size();
    }
    cv_workers_.notify_all();
  }
}

uint64_t RegionJoinPipeline::ProcessSome(size_t max_pairs,
                                         OutputTable* table) {
  if (!region_open_) return 0;
  return resumable_parallel_ ? ProcessSomeParallel(max_pairs, table)
                             : ProcessSomeSequential(max_pairs, table);
}

uint64_t RegionJoinPipeline::ProcessSomeSequential(size_t max_pairs,
                                                   OutputTable* table) {
  const size_t kk = static_cast<size_t>(k_);
  uint64_t done = 0;
  if (batch_cap_ > 0) {
    while (cursor_task_ < tasks_.size()) {
      // Fill one insert block from the cursor, spanning tasks exactly like
      // JoinIndexesBatched spans join groups.
      size_t n = 0;
      while (n < batch_cap_ && cursor_task_ < tasks_.size()) {
        const Task& task = tasks_[cursor_task_];
        const std::vector<RowId>& t_rows = *task.t_rows;
        while (cursor_offset_ < t_rows.size() && n < batch_cap_) {
          seq_pairs_[n++] = RowIdPair{task.r, t_rows[cursor_offset_++]};
        }
        if (cursor_offset_ == t_rows.size()) {
          ++cursor_task_;
          cursor_offset_ = 0;
        }
      }
      mapper_->CombineBatch(seq_pairs_.data(), n, r_flat_, t_flat_,
                            seq_values_.data());
      table->InsertBatch(seq_values_.data(), seq_pairs_.data(), n);
      done += n;
      if (max_pairs != 0 && done >= max_pairs) break;
    }
  } else {
    // Per-tuple legacy path, sliced at pair granularity.
    bool stop = false;
    while (!stop && cursor_task_ < tasks_.size()) {
      const Task& task = tasks_[cursor_task_];
      const std::vector<RowId>& t_rows = *task.t_rows;
      while (cursor_offset_ < t_rows.size()) {
        const RowId t = t_rows[cursor_offset_++];
        mapper_->Combine(r_flat_ + static_cast<size_t>(task.r) * kk,
                         t_flat_ + static_cast<size_t>(t) * kk,
                         tuple_values_.data());
        table->Insert(tuple_values_.data(), task.r, t);
        ++done;
        if (max_pairs != 0 && done >= max_pairs) {
          stop = true;
          break;
        }
      }
      if (cursor_offset_ >= t_rows.size()) {
        ++cursor_task_;
        cursor_offset_ = 0;
      }
    }
  }
  if (cursor_task_ >= tasks_.size()) region_open_ = false;
  return done;
}

uint64_t RegionJoinPipeline::ProcessSomeParallel(size_t max_pairs,
                                                 OutputTable* table) {
  // Same ordered merge as ProcessParallel, pausable between chunks. During
  // a pause workers fill the remaining ring slots and then block, so the
  // yielded region holds no CPU.
  const size_t ring = slots_.size();
  const size_t num_chunks = chunk_task_end_.size();
  uint64_t done = 0;
  while (merge_chunk_ < num_chunks) {
    ChunkSlot& slot = slots_[merge_chunk_ % ring];
    {
      std::unique_lock<std::mutex> lock(mtx_);
      cv_driver_.wait(lock, [&] { return slot.filled; });
    }
    table->InsertBatchPrebinned(slot.values.data(), slot.pairs.data(), slot.n,
                                slot.coords.data(), slot.cells.data());
    done += slot.n;
    {
      std::lock_guard<std::mutex> lock(mtx_);
      slot.filled = false;
      slot.expected = merge_chunk_ + ring;
    }
    cv_workers_.notify_all();
    ++merge_chunk_;
    if (max_pairs != 0 && done >= max_pairs) break;
  }
  if (merge_chunk_ >= num_chunks) region_open_ = false;
  return done;
}

void RegionJoinPipeline::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mtx_);
  for (;;) {
    cv_workers_.wait(
        lock, [&] { return shutdown_ || next_chunk_ < num_chunks_; });
    if (shutdown_) return;
    const size_t c = next_chunk_++;
    ChunkSlot& slot = slots_[c % slots_.size()];
    // The slot may still hold chunk c - ring: wait for the merge to drain
    // it. Claims are ordered, so the merge can always make progress and
    // this wait is bounded.
    cv_workers_.wait(lock, [&] {
      return shutdown_ || (!slot.filled && slot.expected == c);
    });
    if (shutdown_) return;
    const size_t begin = c == 0 ? 0 : chunk_task_end_[c - 1];
    const size_t end = chunk_task_end_[c];
    lock.unlock();
    {
      TraceSpan span(trace_cats::kPipeline, "pipeline.chunk");
      span.arg("chunk", static_cast<int64_t>(c));
      FillChunk(begin, end, &slot);
      span.arg("pairs", static_cast<int64_t>(slot.n));
    }
    lock.lock();
    slot.filled = true;
    cv_driver_.notify_one();
  }
}

}  // namespace progxe
