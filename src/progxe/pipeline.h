// The region-level tuple pipeline: join a region's partition pair, map the
// pairs through CanonicalMapper, and insert into the OutputTable — either
// inline (num_threads <= 1, the PR-1 batched path or the per-tuple legacy
// path) or across a fixed worker pool.
//
// Parallel mode decomposes a region's join into *tasks* (one R-side row of
// one matching join group, paired with that group's T rows) enumerated in
// exactly the order JoinIndexes visits pairs. Contiguous task ranges form
// chunks; workers claim chunks in order, expand the pairs, run
// CanonicalMapper::CombineBatch and pre-compute output-grid coordinates
// into a per-chunk buffer from a fixed ring. The driver merges chunks back
// *in chunk order*, handing each to the single-threaded
// OutputTable::InsertBatch — so the table observes exactly the sequential
// pair order and every ProgXeStats counter is bit-identical at any thread
// count (enforced by tests/batched_equivalence_test.cc).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "grid/partitioning.h"
#include "mapping/canonical.h"
#include "progxe/output_table.h"

namespace progxe {

class RegionJoinPipeline {
 public:
  /// `mapper`, `r_flat`/`t_flat` (flat contribution tables) and `geometry`
  /// must outlive the pipeline. `num_threads <= 1` spawns no threads.
  RegionJoinPipeline(const CanonicalMapper* mapper, const double* r_flat,
                     const double* t_flat, const GridGeometry* geometry,
                     size_t insert_batch_size, int num_threads);
  ~RegionJoinPipeline();

  RegionJoinPipeline(const RegionJoinPipeline&) = delete;
  RegionJoinPipeline& operator=(const RegionJoinPipeline&) = delete;

  /// Joins `pa` x `pb`, maps every pair and inserts into `*table` in the
  /// sequential pair order. Returns the number of join pairs generated.
  uint64_t ProcessRegion(const InputPartition& pa, const InputPartition& pb,
                         OutputTable* table);

  /// Resumable mode — the serving layer's yield point. BeginRegion
  /// enumerates the region's tasks (and, in parallel mode, publishes its
  /// chunks to the pool); each ProcessSome call then advances at least one
  /// block of join pairs and at most ~`max_pairs` (0 = all remaining),
  /// returning the pairs it inserted. Slices visit pairs in exactly the
  /// ProcessRegion order, so results and every ProgXeStats counter are
  /// bit-identical no matter where the slice boundaries fall. A region is
  /// complete once RegionExhausted(); abandoning one mid-way is only safe
  /// through the destructor (which shuts the pool down).
  void BeginRegion(const InputPartition& pa, const InputPartition& pb);
  uint64_t ProcessSome(size_t max_pairs, OutputTable* table);
  bool RegionExhausted() const { return !region_open_; }

  int num_threads() const { return num_threads_; }

 private:
  /// One R row joined against its group's T rows: |t_rows| consecutive
  /// pairs of the sequential order.
  struct Task {
    RowId r;
    const std::vector<RowId>* t_rows;
  };

  /// A chunk's output buffers plus its slot-handshake state.
  struct ChunkSlot {
    std::vector<RowIdPair> pairs;
    std::vector<double> values;    // k per pair
    std::vector<CellCoord> coords; // k per pair
    std::vector<CellIndex> cells;  // one per pair
    size_t n = 0;
    /// The next chunk index this slot will carry; a worker may fill the
    /// slot only when `filled == false && expected == its chunk`.
    size_t expected = 0;
    bool filled = false;
  };

  /// Builds tasks_ (and total pair count) for `pa` x `pb` in the exact
  /// JoinIndexes enumeration order. Workers must be idle.
  uint64_t BuildTasks(const InputPartition& pa, const InputPartition& pb);
  /// Splits tasks_ into chunk_task_end_ and returns the chunk count.
  size_t BuildChunks(uint64_t total_pairs);
  uint64_t ProcessSomeSequential(size_t max_pairs, OutputTable* table);
  uint64_t ProcessSomeParallel(size_t max_pairs, OutputTable* table);

  /// Expands tasks [begin, end) into `slot` (pairs, mapped values, grid
  /// coordinates and cell indices). Runs on workers; touches only
  /// read-only shared state and the slot.
  void FillChunk(size_t task_begin, size_t task_end, ChunkSlot* slot) const;

  void WorkerLoop();

  const CanonicalMapper* mapper_;
  const double* r_flat_;
  const double* t_flat_;
  const GridGeometry* geometry_;
  size_t batch_cap_;  // insert_batch_size; <= 1 selects the per-tuple path
  int num_threads_;
  int k_;

  // Sequential-path scratch (also the per-tuple path's value buffer).
  std::vector<RowIdPair> seq_pairs_;
  std::vector<double> seq_values_;
  std::vector<double> tuple_values_;

  // Resumable-mode cursor. In sequential mode the cursor walks tasks_
  // directly; in parallel mode it tracks the next chunk to merge while the
  // pool keeps filling slots ahead (workers block on the ring during a
  // pause, so a yielded region costs no CPU).
  bool region_open_ = false;
  bool resumable_parallel_ = false;
  size_t cursor_task_ = 0;    // sequential: next task to expand
  size_t cursor_offset_ = 0;  // sequential: offset into that task's t_rows
  size_t merge_chunk_ = 0;    // parallel: next chunk to merge

  // --- Parallel state (guarded by mtx_ unless noted) -----------------------
  std::vector<std::thread> workers_;
  std::mutex mtx_;
  std::condition_variable cv_workers_;  // slot freed / new region / shutdown
  std::condition_variable cv_driver_;   // slot filled
  bool shutdown_ = false;
  size_t next_chunk_ = 0;
  size_t num_chunks_ = 0;

  // Shared per-region inputs, written by the driver while workers are idle
  // (between region epochs), read-only to workers during an epoch.
  std::vector<Task> tasks_;
  std::vector<size_t> chunk_task_end_;  // chunk i covers tasks
                                        // [chunk_task_end_[i-1], chunk_task_end_[i])
  std::vector<ChunkSlot> slots_;        // ring, 2 * num_threads_ entries
};

}  // namespace progxe
