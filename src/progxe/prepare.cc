#include "progxe/prepare.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "common/fault_injection.h"
#include "common/macros.h"
#include "grid/input_grid.h"
#include "grid/kd_partitioner.h"
#include "obs/trace.h"

namespace progxe {

namespace {

/// Measured join selectivity via key histograms: sum over shared keys of
/// cnt_R(k) * cnt_T(k), divided by |R| * |T|.
double MeasureSigma(const Relation& r, const Relation& t) {
  if (r.empty() || t.empty()) return 0.0;
  std::unordered_map<JoinKey, size_t> r_hist;
  r_hist.reserve(r.size());
  for (size_t i = 0; i < r.size(); ++i) {
    ++r_hist[r.join_key(static_cast<RowId>(i))];
  }
  double pairs = 0.0;
  for (size_t i = 0; i < t.size(); ++i) {
    auto it = r_hist.find(t.join_key(static_cast<RowId>(i)));
    if (it != r_hist.end()) pairs += static_cast<double>(it->second);
  }
  return pairs /
         (static_cast<double>(r.size()) * static_cast<double>(t.size()));
}

size_t RelationBytes(const Relation& rel) {
  return rel.size() * (rel.num_attributes() * sizeof(double) +
                       sizeof(JoinKey));
}

size_t PartitioningBytes(const InputPartitioning* grid) {
  if (grid == nullptr) return 0;
  size_t bytes = 0;
  for (const InputPartition& p : grid->partitions()) {
    bytes += p.rows.capacity() * sizeof(RowId);
    bytes += p.bounds.capacity() * sizeof(Interval);
    bytes += p.coords.capacity() * sizeof(CellCoord);
    bytes += sizeof(InputPartition);
  }
  return bytes;
}

}  // namespace

size_t PreparedInputs::ApproxBytes() const {
  size_t bytes = sizeof(PreparedInputs);
  bytes += RelationBytes(r_store) + RelationBytes(t_store);
  bytes += (r_orig_ids.capacity() + t_orig_ids.capacity()) * sizeof(RowId);
  if (r_contrib) bytes += r_contrib->flat().size() * sizeof(double);
  if (t_contrib) bytes += t_contrib->flat().size() * sizeof(double);
  bytes += PartitioningBytes(r_grid.get()) + PartitioningBytes(t_grid.get());
  bytes += lookahead.regions.capacity() * sizeof(Region);
  for (const Region& region : lookahead.regions) {
    bytes += region.bounds.capacity() * sizeof(Interval);
    bytes += (region.lo_cell.capacity() + region.hi_cell.capacity()) *
             sizeof(CellCoord);
  }
  bytes += lookahead.marked.capacity() * sizeof(uint8_t);
  bytes += lookahead.guaranteed_upper_frontier.capacity() * sizeof(double);
  return bytes;
}

Status BuildPreparedInputs(const SkyMapJoinQuery& query,
                           const ProgXeOptions& options, bool own_sources,
                           PreparedInputs* out) {
  if (query.r == nullptr || query.t == nullptr) {
    return Status::InvalidArgument("query sources must be non-null");
  }
  if (query.pref.dimensions() != query.map.output_dimensions()) {
    return Status::InvalidArgument(
        "preference dimensionality must match the map output");
  }
  // The prepare-phase fault site: a failure here surfaces through
  // ProgXeSession::Open / OpenShard and rides the sharded stream's
  // open-retry path (or a remote worker's kOpenResult status).
  PROGXE_RETURN_NOT_OK(MaybeInjectFault(
      options.faults != nullptr ? options.faults.get()
                                : FaultInjector::FromEnv(),
      fault_sites::kPrepareBuild, options.fault_instance));
  TraceSpan prepare_span(trace_cats::kPrepare, "prepare.build");
  PROGXE_RETURN_NOT_OK(
      query.map.Validate(query.r->num_attributes(),
                         query.t->num_attributes()));
  if (options.input_cells_per_dim < 0 || options.output_cells_per_dim < 0) {
    return Status::InvalidArgument("grid cell counts must be >= 0");
  }
  ProgXeStats* stats = &out->prepare_stats;
  out->resolved_input_cells_per_dim = options.input_cells_per_dim;
  out->resolved_output_cells_per_dim = options.output_cells_per_dim;
  if (out->resolved_output_cells_per_dim == 0) {
    const int k_out = query.map.output_dimensions();
    // ~60K output cells keeps the dense per-cell state cache-resident.
    out->resolved_output_cells_per_dim = AutoCellsPerDim(k_out, 60000.0, 4, 24);
  }

  const Relation& r_full = *query.r;
  const Relation& t_full = *query.t;
  stats->r_rows = r_full.size();
  stats->t_rows = t_full.size();
  if (r_full.empty() || t_full.empty()) {
    out->trivially_empty = true;
    return Status::OK();
  }

  out->mapper = CanonicalMapper(query.map, query.pref);
  out->k = out->mapper.output_dimensions();

  // --- Optional skyline partial push-through -----------------------------
  // Pruning each source to its group-level skyline is result-preserving for
  // separable monotone maps (see skyline/group_skyline.h).
  out->r_rel = &r_full;
  out->t_rel = &t_full;
  if (options.push_through) {
    TraceSpan span(trace_cats::kPrepare, "prepare.push_through");
    ContributionTable r_full_contrib(r_full, out->mapper, Side::kR);
    ContributionTable t_full_contrib(t_full, out->mapper, Side::kT);
    DomCounter push_counter;
    std::vector<RowId> r_keep =
        PushThroughPrune(r_full, r_full_contrib, &push_counter);
    std::vector<RowId> t_keep =
        PushThroughPrune(t_full, t_full_contrib, &push_counter);
    stats->dominance_comparisons += push_counter.comparisons;
    out->r_store = r_full.Select(r_keep, &out->r_orig_ids);
    out->t_store = t_full.Select(t_keep, &out->t_orig_ids);
    out->r_rel = &out->r_store;
    out->t_rel = &out->t_store;
  } else {
    out->r_orig_ids.resize(r_full.size());
    std::iota(out->r_orig_ids.begin(), out->r_orig_ids.end(), 0u);
    out->t_orig_ids.resize(t_full.size());
    std::iota(out->t_orig_ids.begin(), out->t_orig_ids.end(), 0u);
    if (own_sources) {
      // Cache entries outlive the submitter's relations: take full copies.
      out->r_store = r_full;
      out->t_store = t_full;
      out->r_rel = &out->r_store;
      out->t_rel = &out->t_store;
    }
  }
  stats->r_rows_after_push_through = out->r_rel->size();
  stats->t_rows_after_push_through = out->t_rel->size();

  // --- Sigma for the benefit/cost models ---------------------------------
  out->sigma = options.sigma_hint;
  if (out->sigma <= 0.0) {
    TraceSpan span(trace_cats::kPrepare, "prepare.sigma");
    out->sigma = MeasureSigma(*out->r_rel, *out->t_rel);
  }
  if (out->sigma <= 0.0) {  // provably empty join
    out->trivially_empty = true;
    return Status::OK();
  }
  stats->sigma_used = out->sigma;

  if (out->resolved_input_cells_per_dim == 0) {
    // Pick the input resolution so each region's expected join work
    // amortizes its bookkeeping (EL-Graph edge, coverage box, discard
    // checks): aim for >= ~200 join pairs per region, i.e. at most
    // P = N * sqrt(sigma / 200) partitions per source, within an absolute
    // budget of ~120 partitions (~14K candidate pairs).
    const double n_min = static_cast<double>(
        std::min(out->r_rel->size(), out->t_rel->size()));
    const double work_cap = n_min * std::sqrt(out->sigma / 200.0);
    const double budget = std::clamp(work_cap, 4.0, 120.0);
    out->resolved_input_cells_per_dim =
        AutoCellsPerDim(query.map.output_dimensions(), budget, 2, 8);
  }

  // --- Contribution tables and input partitioning ------------------------
  {
    TraceSpan span(trace_cats::kPrepare, "prepare.partition");
    out->r_contrib = std::make_unique<ContributionTable>(*out->r_rel,
                                                         out->mapper,
                                                         Side::kR);
    out->t_contrib = std::make_unique<ContributionTable>(*out->t_rel,
                                                         out->mapper,
                                                         Side::kT);
    if (options.partitioning == PartitioningScheme::kUniformGrid) {
      InputGridOptions grid_options;
      grid_options.cells_per_dim = out->resolved_input_cells_per_dim;
      grid_options.signature_mode = options.signature_mode;
      grid_options.bloom_bits = options.bloom_bits;
      grid_options.bloom_hashes = options.bloom_hashes;
      out->r_grid = std::make_unique<InputGrid>(*out->r_rel, *out->r_contrib,
                                                grid_options);
      out->t_grid = std::make_unique<InputGrid>(*out->t_rel, *out->t_contrib,
                                                grid_options);
    } else {
      KdPartitionerOptions kd_options;
      // Same partition budget the uniform grid would get.
      double leaves = 1.0;
      for (int j = 0; j < out->k; ++j) {
        leaves *= static_cast<double>(out->resolved_input_cells_per_dim);
      }
      kd_options.max_partitions =
          static_cast<size_t>(std::clamp(leaves, 1.0, 4096.0));
      kd_options.signature_mode = options.signature_mode;
      kd_options.bloom_bits = options.bloom_bits;
      kd_options.bloom_hashes = options.bloom_hashes;
      out->r_grid = std::make_unique<KdPartitioner>(*out->r_rel,
                                                    *out->r_contrib,
                                                    kd_options);
      out->t_grid = std::make_unique<KdPartitioner>(*out->t_rel,
                                                    *out->t_contrib,
                                                    kd_options);
    }
  }

  // --- Output-space look-ahead -------------------------------------------
  TraceSpan lookahead_span(trace_cats::kPrepare, "prepare.lookahead");
  LookaheadOptions la_options;
  la_options.output_cells_per_dim = out->resolved_output_cells_per_dim;
  la_options.max_output_cells = options.max_output_cells;
  PROGXE_ASSIGN_OR_RETURN(
      out->lookahead,
      OutputSpaceLookahead(*out->r_grid, *out->t_grid, out->mapper,
                           la_options));
  stats->partition_pairs_total = out->lookahead.stats.pairs_total;
  stats->partition_pairs_skipped =
      out->lookahead.stats.pairs_skipped_signature;
  stats->regions_created = out->lookahead.stats.regions_created;
  stats->regions_pruned_lookahead = out->lookahead.stats.regions_pruned;
  stats->cells_marked_lookahead = out->lookahead.stats.cells_marked;
  prepare_span.arg("regions",
                   static_cast<int64_t>(stats->regions_created));
  return Status::OK();
}

void AdoptPreparedInputs(std::shared_ptr<const PreparedInputs> inputs,
                         ProgXeOptions* options, ProgXeStats* stats,
                         PreparedQuery* out) {
  // Replay the prepare-side counters exactly as the cold build wrote them:
  // the session's stats are zeroed at open, so += reproduces the original
  // assignments bit for bit (dominance_comparisons genuinely accumulates —
  // push-through runs before any runtime comparison).
  const ProgXeStats& p = inputs->prepare_stats;
  stats->r_rows = p.r_rows;
  stats->t_rows = p.t_rows;
  stats->r_rows_after_push_through = p.r_rows_after_push_through;
  stats->t_rows_after_push_through = p.t_rows_after_push_through;
  stats->sigma_used = p.sigma_used;
  stats->dominance_comparisons += p.dominance_comparisons;
  stats->partition_pairs_total = p.partition_pairs_total;
  stats->partition_pairs_skipped = p.partition_pairs_skipped;
  stats->regions_created = p.regions_created;
  stats->regions_pruned_lookahead = p.regions_pruned_lookahead;
  stats->cells_marked_lookahead = p.cells_marked_lookahead;
  // Mirror the grid resolutions the build resolved, so cost models and any
  // caller inspecting the options see the same values as on the cold path.
  if (inputs->resolved_input_cells_per_dim > 0) {
    options->input_cells_per_dim = inputs->resolved_input_cells_per_dim;
  }
  if (inputs->resolved_output_cells_per_dim > 0) {
    options->output_cells_per_dim = inputs->resolved_output_cells_per_dim;
  }
  out->trivially_empty = inputs->trivially_empty;
  out->lookahead = inputs->lookahead;  // private mutable copy
  out->inputs = std::move(inputs);
}

Status PreparePhase(const SkyMapJoinQuery& query, ProgXeOptions* options,
                    ProgXeStats* stats, PreparedQuery* out) {
  auto inputs = std::make_shared<PreparedInputs>();
  PROGXE_RETURN_NOT_OK(
      BuildPreparedInputs(query, *options, /*own_sources=*/false,
                          inputs.get()));
  AdoptPreparedInputs(std::move(inputs), options, stats, out);
  return Status::OK();
}

}  // namespace progxe
