// PreparePhase: everything the ProgXe executor does before the first join
// pair is generated — query validation, optional skyline push-through,
// sigma measurement, contribution tables, input partitioning and the
// output-space look-ahead. Separated from the region loop so the two stages
// are independently testable and so a pull-based session can hold the
// prepared state across incremental NextBatch calls.
//
// The prepared state is split along the mutability line:
//
//   * PreparedInputs is *immutable* once built — it depends only on the
//     sources, the join key, the canonical mapping and the prepare-affecting
//     options, never on how the query is consumed. A single PreparedInputs
//     can therefore back any number of concurrent sessions (it is held as
//     shared_ptr<const>): that is what the PrepareCache (prepare_cache.h)
//     shares across queries and what a sharded stream reuses when it
//     re-opens a quarantined shard.
//   * PreparedQuery is the thin per-query view: the shared inputs plus a
//     private copy of the look-ahead result, which the region loop consumes
//     (region flags and the marked table move into the runtime structures).
#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "grid/partitioning.h"
#include "outputspace/lookahead.h"
#include "progxe/executor.h"
#include "skyline/group_skyline.h"

namespace progxe {

/// The immutable output of the prepare stage. Self-referential (r_rel/t_rel
/// may point at the owned copies), hence neither copyable nor movable —
/// always built in place behind a shared_ptr.
struct PreparedInputs {
  PreparedInputs() = default;
  PreparedInputs(const PreparedInputs&) = delete;
  PreparedInputs& operator=(const PreparedInputs&) = delete;

  CanonicalMapper mapper;
  int k = 0;

  /// Owned working copies. Populated when push-through pruned the sources,
  /// or when the inputs were built with own_sources (cache entries must not
  /// dangle when the submitter frees its relations); empty when r_rel/t_rel
  /// alias the caller's relations directly.
  Relation r_store{Schema::Anonymous(0)};
  Relation t_store{Schema::Anonymous(0)};
  /// Maps working row ids back to the caller's original row ids.
  std::vector<RowId> r_orig_ids;
  std::vector<RowId> t_orig_ids;
  /// The working sources: the originals, or the owned copies above.
  const Relation* r_rel = nullptr;
  const Relation* t_rel = nullptr;

  double sigma = 0.0;

  std::unique_ptr<ContributionTable> r_contrib;
  std::unique_ptr<ContributionTable> t_contrib;
  std::unique_ptr<InputPartitioning> r_grid;
  std::unique_ptr<InputPartitioning> t_grid;

  /// Pristine look-ahead template; every session copies it (the region loop
  /// mutates region flags and moves the marked table out).
  LookaheadResult lookahead;

  /// True when the query provably produces nothing (an empty source or a
  /// measured-empty join): the region loop is skipped entirely.
  bool trivially_empty = false;

  /// The prepare-side counter deltas (rows, push-through sizes, sigma,
  /// look-ahead stats). Replayed into the consuming session's stats so a
  /// cache hit reports counters bit-identical to a cold build.
  ProgXeStats prepare_stats;

  /// Grid resolutions as resolved during the build (the caller's explicit
  /// values, or the auto-chosen ones). Written back into the consuming
  /// session's options so downstream cost models see identical values on
  /// cold and cached paths.
  int resolved_input_cells_per_dim = 0;
  int resolved_output_cells_per_dim = 0;

  /// Rough retained-heap estimate for the PrepareCache byte budget.
  size_t ApproxBytes() const;
};

/// Per-query prepared state: the shared immutable inputs plus this query's
/// private (mutable) look-ahead copy.
struct PreparedQuery {
  PreparedQuery() = default;
  PreparedQuery(const PreparedQuery&) = delete;
  PreparedQuery& operator=(const PreparedQuery&) = delete;

  std::shared_ptr<const PreparedInputs> inputs;
  /// This query's mutable copy of inputs->lookahead; consumed by RegionLoop.
  LookaheadResult lookahead;
  bool trivially_empty = false;
};

/// Validates `query`/`options` and builds the immutable prepared state.
/// Never mutates `options`; the resolved grid resolutions and prepare-side
/// stats are recorded on `*out` and applied by AdoptPreparedInputs. With
/// `own_sources`, `*out` copies the (unpruned) sources so it stays valid
/// after the caller frees its relations — required for cache entries;
/// direct opens pass false and alias the caller's relations.
Status BuildPreparedInputs(const SkyMapJoinQuery& query,
                           const ProgXeOptions& options, bool own_sources,
                           PreparedInputs* out);

/// Binds previously built inputs to one query: copies the look-ahead
/// template, replays the prepare-side stats into `*stats` and writes the
/// resolved grid resolutions back into `*options`. Cold builds and cache
/// hits both go through here, so the two paths are identical by
/// construction.
void AdoptPreparedInputs(std::shared_ptr<const PreparedInputs> inputs,
                         ProgXeOptions* options, ProgXeStats* stats,
                         PreparedQuery* out);

/// The classic cold path: BuildPreparedInputs (aliasing the caller's
/// relations) + AdoptPreparedInputs. Resolves auto-chosen grid resolutions
/// into `*options` and fills the prepare-side counters of `*stats`.
Status PreparePhase(const SkyMapJoinQuery& query, ProgXeOptions* options,
                    ProgXeStats* stats, PreparedQuery* out);

}  // namespace progxe
