// PreparePhase: everything the ProgXe executor does before the first join
// pair is generated — query validation, optional skyline push-through,
// sigma measurement, contribution tables, input partitioning and the
// output-space look-ahead. Separated from the region loop so the two stages
// are independently testable and so a pull-based session can hold the
// prepared state across incremental NextBatch calls.
#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "grid/partitioning.h"
#include "outputspace/lookahead.h"
#include "progxe/executor.h"
#include "skyline/group_skyline.h"

namespace progxe {

/// Output of PreparePhase: the immutable per-query state the region loop
/// runs against. Self-referential (r_rel/t_rel may point at the owned
/// pruned copies), hence neither copyable nor movable — hold it behind a
/// unique_ptr.
struct PreparedQuery {
  PreparedQuery() = default;
  PreparedQuery(const PreparedQuery&) = delete;
  PreparedQuery& operator=(const PreparedQuery&) = delete;

  CanonicalMapper mapper;
  int k = 0;

  /// Owned pruned copies (push_through only; empty otherwise).
  Relation r_pruned{Schema::Anonymous(0)};
  Relation t_pruned{Schema::Anonymous(0)};
  /// Maps working row ids back to the caller's original row ids.
  std::vector<RowId> r_orig_ids;
  std::vector<RowId> t_orig_ids;
  /// The working sources: the originals, or the pruned copies above.
  const Relation* r_rel = nullptr;
  const Relation* t_rel = nullptr;

  double sigma = 0.0;

  std::unique_ptr<ContributionTable> r_contrib;
  std::unique_ptr<ContributionTable> t_contrib;
  std::unique_ptr<InputPartitioning> r_grid;
  std::unique_ptr<InputPartitioning> t_grid;

  LookaheadResult lookahead;

  /// True when the query provably produces nothing (an empty source or a
  /// measured-empty join): the region loop is skipped entirely.
  bool trivially_empty = false;
};

/// Validates `query`/`*options`, resolves auto-chosen grid resolutions into
/// `*options`, and fills `*out` plus the prepare-side counters of `*stats`
/// (rows, push-through sizes, sigma, look-ahead stats).
Status PreparePhase(const SkyMapJoinQuery& query, ProgXeOptions* options,
                    ProgXeStats* stats, PreparedQuery* out);

}  // namespace progxe
