#include "progxe/prepare_cache.h"

#include <cstdio>
#include <cstring>

namespace progxe {

namespace {

/// splitmix64 finalizer — the repo's standard cheap mixer (shard_planner.h).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Streaming word hasher: absorbs one 64-bit word per call.
class Hasher {
 public:
  explicit Hasher(uint64_t seed) : state_(Mix64(seed)) {}

  void U64(uint64_t v) { state_ = Mix64(state_ ^ v); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }

  uint64_t digest() const { return state_; }

 private:
  uint64_t state_;
};

void AbsorbRelation(Hasher* h, const Relation& rel) {
  h->U64(rel.size());
  h->U64(static_cast<uint64_t>(rel.num_attributes()));
  for (size_t i = 0; i < rel.size(); ++i) {
    const RowId id = static_cast<RowId>(i);
    for (double v : rel.attrs(id)) h->F64(v);
    h->I64(rel.join_key(id));
  }
}

void AbsorbQuery(Hasher* h, const SkyMapJoinQuery& query,
                 const ProgXeOptions& options) {
  AbsorbRelation(h, *query.r);
  AbsorbRelation(h, *query.t);

  h->U64(static_cast<uint64_t>(query.map.output_dimensions()));
  for (const MapFunc& f : query.map.funcs()) {
    h->U64(f.terms().size());
    for (const MapTerm& term : f.terms()) {
      h->U64(static_cast<uint64_t>(term.side));
      h->U64(static_cast<uint64_t>(term.attr_index));
      h->F64(term.weight);
    }
    h->F64(f.constant());
    h->U64(static_cast<uint64_t>(f.transform()));
  }

  h->U64(static_cast<uint64_t>(query.pref.dimensions()));
  for (Direction d : query.pref.directions()) {
    h->U64(static_cast<uint64_t>(d));
  }

  // Prepare-affecting options only; grid resolutions as *requested* (0 =
  // auto resolves deterministically from the same sources, so raw values
  // fingerprint correctly).
  h->U64(options.push_through ? 1 : 0);
  h->U64(static_cast<uint64_t>(options.partitioning));
  h->U64(static_cast<uint64_t>(options.input_cells_per_dim));
  h->U64(static_cast<uint64_t>(options.output_cells_per_dim));
  h->U64(static_cast<uint64_t>(options.signature_mode));
  h->U64(options.bloom_bits);
  h->U64(static_cast<uint64_t>(options.bloom_hashes));
  h->F64(options.sigma_hint);
  h->I64(options.max_output_cells);
}

}  // namespace

std::string PrepareCache::Fingerprint(const SkyMapJoinQuery& query,
                                      const ProgXeOptions& options) {
  // Two independently-seeded passes -> a 128-bit key; collisions across
  // distinct prepared states are negligible.
  Hasher lo(0x70726570ULL);  // "prep"
  Hasher hi(0x63616368ULL);  // "cach"
  AbsorbQuery(&lo, query, options);
  AbsorbQuery(&hi, query, options);
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(lo.digest()),
                static_cast<unsigned long long>(hi.digest()));
  return std::string(buf, 32);
}

std::shared_ptr<const PreparedInputs> PrepareCache::Lookup(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mtx_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->inputs;
}

std::shared_ptr<const PreparedInputs> PrepareCache::Insert(
    const std::string& key, std::shared_ptr<const PreparedInputs> inputs) {
  std::lock_guard<std::mutex> lock(mtx_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Insert race: the first writer's entry is canonical so concurrent
    // submitters end up sharing one instance.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->inputs;
  }
  const size_t bytes = inputs->ApproxBytes();
  if (max_bytes_ > 0 && bytes > max_bytes_) {
    return inputs;  // would evict the whole cache; serve it uncached
  }
  lru_.push_front(Entry{key, inputs, bytes});
  index_.emplace(key, lru_.begin());
  bytes_ += bytes;
  while (!lru_.empty() &&
         ((max_entries_ > 0 && lru_.size() > max_entries_) ||
          (max_bytes_ > 0 && bytes_ > max_bytes_))) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
  return inputs;
}

PrepareCache::Stats PrepareCache::stats() const {
  std::lock_guard<std::mutex> lock(mtx_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  return s;
}

}  // namespace progxe
