// Cross-query prepared-state cache.
//
// A serving workload sees overlapping queries: the same join under perturbed
// preferences, budgets or serving parameters. Everything the prepare phase
// builds (push-through, contribution tables, input grids, look-ahead) is a
// pure function of the sources, the canonical mapping and a handful of
// prepare-affecting options — so it can be built once and shared, read-only,
// by any number of concurrent sessions. PrepareCache keys immutable
// PreparedInputs by a content fingerprint and serves them under an LRU
// byte/entry budget; ProgXeSession::Open consults it when
// ProgXeOptions::prepare_cache is set, and the QueryScheduler hands every
// submitted query its scheduler-wide instance.
//
// The fingerprint covers, bit-exactly: both relations' contents (attribute
// values, join keys, widths, sizes), the MapSpec (terms, constants,
// transforms), the preference directions (they fold into the canonical
// mapper's signs, which the contribution tables bake in), and the
// prepare-affecting options (push_through, partitioning scheme, raw
// input/output grid resolutions, signature mode, bloom parameters,
// sigma_hint, max_output_cells). Consumption-side options — ordering,
// batch size, thread count, seed, budgets, faults, seeding — are
// deliberately excluded: they never change what the prepare phase builds.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "progxe/prepare.h"

namespace progxe {

/// Thread-safe LRU cache of immutable PreparedInputs. Shared via
/// shared_ptr across the scheduler, sessions and sharded sub-sessions.
class PrepareCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
  };

  /// `max_entries` / `max_bytes`: 0 = unbounded on that axis.
  explicit PrepareCache(size_t max_entries, size_t max_bytes)
      : max_entries_(max_entries), max_bytes_(max_bytes) {}

  /// Content fingerprint of everything PreparedInputs depends on. Stable
  /// across Relation object identities: equal contents hash equal (sound,
  /// because cached inputs own copies of their sources).
  static std::string Fingerprint(const SkyMapJoinQuery& query,
                                 const ProgXeOptions& options);

  /// Returns the cached inputs for `key` (bumping recency and the hit
  /// counter), or nullptr on miss.
  std::shared_ptr<const PreparedInputs> Lookup(const std::string& key);

  /// Inserts `inputs` under `key`, evicting LRU entries past the budgets.
  /// Returns the canonical entry for `key`: on an insert race the first
  /// writer wins and its entry is returned, so concurrent submitters
  /// converge on one shared instance. Entries larger than the whole byte
  /// budget are served back uncached.
  std::shared_ptr<const PreparedInputs> Insert(
      const std::string& key, std::shared_ptr<const PreparedInputs> inputs);

  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const PreparedInputs> inputs;
    size_t bytes = 0;
  };

  const size_t max_entries_;
  const size_t max_bytes_;

  mutable std::mutex mtx_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  size_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace progxe
