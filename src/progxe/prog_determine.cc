#include "progxe/prog_determine.h"

#include <algorithm>
#include <cassert>

namespace progxe {

ProgDetermine::ProgDetermine(OutputTable* table)
    : table_(table), k_(table->dims()) {
  pending_slot_.assign(static_cast<size_t>(table_->geometry().total_cells()),
                       -1);
}

int64_t ProgDetermine::CountBlockers(const CellCoord* coords) const {
  // Down-cone scan [0..coords] inclusive; the cell itself has RegCount == 0
  // by the time this runs, so no self-exclusion is needed.
  std::vector<CellCoord> zero(static_cast<size_t>(k_), 0);
  int64_t blockers = 0;
  table_->geometry().ForEachCellInBox(zero.data(), coords,
                                      [&](CellIndex c) {
                                        if (table_->reg_count(c) > 0) {
                                          ++blockers;
                                        }
                                      });
  return blockers;
}

void ProgDetermine::OnCellsSettled(const std::vector<CellIndex>& settled,
                                   std::vector<CellIndex>* flush_out) {
  std::vector<CellIndex>& flush = *flush_out;
  flush.clear();

  // Phase 1: cascade this batch over previously pending cells. A settled
  // cell s unblocks pending q iff s lies in q's dominator cone.
  if (!settled.empty()) {
    const size_t kk = static_cast<size_t>(k_);
    settled_coords_scratch_.resize(settled.size() * kk);
    for (size_t si = 0; si < settled.size(); ++si) {
      table_->geometry().CoordsOfIndex(settled[si],
                                       settled_coords_scratch_.data() +
                                           si * kk);
    }
    for (Pending& p : pending_) {
      if (p.dropped) continue;
      for (size_t si = 0; si < settled.size(); ++si) {
        if (settled[si] == p.cell) continue;
        const CellCoord* sc = settled_coords_scratch_.data() + si * kk;
        bool in_cone = true;
        for (int d = 0; d < k_; ++d) {
          if (sc[d] > p.coords[static_cast<size_t>(d)]) {
            in_cone = false;
            break;
          }
        }
        if (in_cone) {
          assert(p.blockers > 0);
          --p.blockers;
        }
      }
      if (p.blockers == 0) {
        p.dropped = true;
        --pending_live_;
        pending_slot_[static_cast<size_t>(p.cell)] = -1;
        if (!table_->marked(p.cell) && !table_->emitted(p.cell)) {
          flush.push_back(p.cell);
        }
      }
    }
    // Compact dropped entries occasionally.
    if (pending_.size() > 2 * pending_live_ + 16) {
      std::vector<Pending> live;
      live.reserve(pending_live_);
      for (Pending& p : pending_) {
        if (!p.dropped) {
          pending_slot_[static_cast<size_t>(p.cell)] =
              static_cast<int32_t>(live.size());
          live.push_back(std::move(p));
        }
      }
      pending_ = std::move(live);
    }
  }

  // Phase 2: admit the newly settled cells themselves. Their blocker count
  // is computed against the *post-release* RegCounts, so the current batch
  // is already accounted for.
  coords_scratch_.resize(static_cast<size_t>(k_));
  std::vector<CellCoord>& coords = coords_scratch_;
  for (CellIndex s : settled) {
    if (table_->emitted(s) || table_->marked(s) || !table_->populated(s)) {
      continue;  // nothing will ever need flushing here
    }
    table_->geometry().CoordsOfIndex(s, coords.data());
    const int64_t blockers = CountBlockers(coords.data());
    if (blockers == 0) {
      flush.push_back(s);
    } else {
      assert(pending_slot_[static_cast<size_t>(s)] < 0);
      pending_slot_[static_cast<size_t>(s)] =
          static_cast<int32_t>(pending_.size());
      pending_.push_back(Pending{s, blockers, false, coords});
      ++pending_live_;
    }
  }

  std::sort(flush.begin(), flush.end());
  flush.erase(std::unique(flush.begin(), flush.end()), flush.end());
}

std::vector<CellIndex> ProgDetermine::OnCellsSettled(
    const std::vector<CellIndex>& settled) {
  std::vector<CellIndex> flush;
  OnCellsSettled(settled, &flush);
  return flush;
}

void ProgDetermine::OnCellsMarked(const std::vector<CellIndex>& marked) {
  for (CellIndex c : marked) {
    int32_t s = pending_slot_[static_cast<size_t>(c)];
    if (s < 0) continue;
    Pending& p = pending_[static_cast<size_t>(s)];
    if (!p.dropped) {
      p.dropped = true;
      --pending_live_;
    }
    pending_slot_[static_cast<size_t>(c)] = -1;
  }
}

}  // namespace progxe
