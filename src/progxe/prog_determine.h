// ProgDetermine (Section V, Algorithm 2): decides which output partitions
// can be flushed early while guaranteeing no false positives and no false
// negatives (Correctness Principle 1).
//
// Count-based realization, exactly as the paper suggests ("we instead
// utilize a count-based realization"): for every populated, unmarked cell
// whose RegCount reached zero we keep a single `blockers` count — the number
// of cells in its dominator cone (all coordinates <=, excluding itself) that
// can still receive future tuples (RegCount > 0). This fuses the paper's
// Dom / Dependent lists: both kinds of threats live in the cone, and
// populated-now threats are already handled by cell marking, so only
// future-arrival threats remain. A cell flushes when RegCount == 0 and
// blockers == 0.
#pragma once

#include <cstdint>
#include <vector>

#include "progxe/output_table.h"

namespace progxe {

class ProgDetermine {
 public:
  explicit ProgDetermine(OutputTable* table);

  /// Processes the settled cells of a just-completed (or discarded) region:
  /// admits newly pending cells, cascades blocker decrements, and assigns
  /// every cell that is now safe to flush to `*flush_out` (reusing its
  /// capacity), in deterministic order.
  void OnCellsSettled(const std::vector<CellIndex>& settled,
                      std::vector<CellIndex>* flush_out);

  /// Allocating convenience overload (tests).
  std::vector<CellIndex> OnCellsSettled(const std::vector<CellIndex>& settled);

  /// Drops cells that were killed (marked) at runtime from the pending set.
  void OnCellsMarked(const std::vector<CellIndex>& marked);

  /// Number of cells still awaiting flush clearance (diagnostic).
  size_t PendingCount() const { return pending_live_; }

 private:
  struct Pending {
    CellIndex cell;
    int64_t blockers;
    bool dropped;
    std::vector<CellCoord> coords;
  };

  /// Counts cells with RegCount > 0 in the dominator cone of `coords`.
  int64_t CountBlockers(const CellCoord* coords) const;

  OutputTable* table_;
  int k_;
  std::vector<Pending> pending_;
  /// pending slot per cell, or -1.
  std::vector<int32_t> pending_slot_;
  size_t pending_live_ = 0;

  /// Reusable scratch: coordinates of the current settled batch (flat, k_
  /// per cell) and a single coordinate buffer.
  std::vector<CellCoord> settled_coords_scratch_;
  std::vector<CellCoord> coords_scratch_;
};

}  // namespace progxe
