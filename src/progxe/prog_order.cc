#include "progxe/prog_order.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "progxe/cardinality.h"

namespace progxe {

ProgOrder::ProgOrder(std::vector<Region>* regions, ElGraph* el_graph,
                     OutputTable* table, CostModelParams cost_params,
                     std::vector<size_t> r_sizes, std::vector<size_t> t_sizes,
                     OrderingMode mode, uint64_t seed, ProgXeStats* stats)
    : regions_(regions),
      el_graph_(el_graph),
      table_(table),
      cost_params_(cost_params),
      r_sizes_(std::move(r_sizes)),
      t_sizes_(std::move(t_sizes)),
      mode_(mode),
      stats_(stats) {
  if (mode_ != OrderingMode::kProgOrder) {
    for (Region& region : *regions_) {
      if (region.Active()) static_order_.push_back(region.id);
    }
    if (mode_ == OrderingMode::kRandom) {
      Rng rng(seed);
      rng.Shuffle(&static_order_);
    }
    return;
  }

  // Dense up-set coverage for ProgCount.
  cover_lo_.assign(static_cast<size_t>(table_->geometry().total_cells()), 0);
  in_queue_.assign(regions_->size(), 0);
  for (Region& region : *regions_) {
    if (!region.Active()) continue;
    AddUpSetCoverage(region, +1);

    // Static per-region estimates (Equations 1 and 3-7).
    const double n_a = static_cast<double>(r_sizes_[static_cast<size_t>(region.a)]);
    const double n_b = static_cast<double>(t_sizes_[static_cast<size_t>(region.b)]);
    region.cardinality_est = RegionCardinalityEstimate(
        cost_params_.sigma, n_a, n_b, cost_params_.dims);
    region.cost_est = RegionCost(cost_params_, n_a, n_b,
                                 static_cast<double>(region.BoxVolume()));
  }

  for (int32_t id : el_graph_->InitialRoots(*regions_)) {
    PushRegion(id);
  }
}

void ProgOrder::AddUpSetCoverage(const Region& region, int32_t delta) {
  // Up-set of region.lo_cell: the box [lo_cell, cells-1]^d.
  const int k = table_->dims();
  std::vector<CellCoord> hi(static_cast<size_t>(k),
                            table_->geometry().cells_per_dim() - 1);
  table_->geometry().ForEachCellInBox(
      region.lo_cell.data(), hi.data(),
      [this, delta](CellIndex c) { cover_lo_[static_cast<size_t>(c)] += delta; });
}

int64_t ProgOrder::ComputeProgCount(const Region& region) const {
  // Cells of the region's box that are unmarked and that no other active
  // region covers-or-threatens. For q in box(region), region's own lower
  // cell is <= q in every dimension, so "no other" means cover_lo_ == 1.
  int64_t count = 0;
  table_->geometry().ForEachCellInBox(
      region.lo_cell.data(), region.hi_cell.data(), [&](CellIndex c) {
        if (!table_->marked(c) && cover_lo_[static_cast<size_t>(c)] == 1) {
          ++count;
        }
      });
  return count;
}

double ProgOrder::ComputeRank(const Region& region) const {
  const int64_t prog_count = ComputeProgCount(region);
  const double volume = static_cast<double>(region.BoxVolume());
  const double benefit = (static_cast<double>(prog_count) / volume) *
                         region.cardinality_est;
  return benefit / region.cost_est;
}

void ProgOrder::PushRegion(int32_t id) {
  Region& region = (*regions_)[static_cast<size_t>(id)];
  if (!region.Active()) return;
  region.prog_count = ComputeProgCount(region);
  const double volume = static_cast<double>(region.BoxVolume());
  const double benefit = (static_cast<double>(region.prog_count) / volume) *
                         region.cardinality_est;
  region.rank = benefit / region.cost_est;
  ++region.rank_version;
  in_queue_[static_cast<size_t>(id)] = 1;
  queue_.push(Entry{region.rank, region.rank_version, id});
}

int32_t ProgOrder::PopNext() {
  if (mode_ != OrderingMode::kProgOrder) {
    while (static_pos_ < static_order_.size()) {
      const int32_t id = static_order_[static_pos_++];
      if ((*regions_)[static_cast<size_t>(id)].Active()) return id;
    }
    return -1;
  }

  // Ranks go stale as regions complete (ProgCount can grow) or cells get
  // marked (ProgCount can shrink). Rather than rescanning every affected
  // region's box after each removal — quadratic in dense-overlap workloads —
  // ranks are refreshed lazily when a region reaches the top of the queue,
  // with a freshen budget per pick to bound worst-case churn.
  constexpr int kMaxFreshenPerPick = 64;
  int freshened = 0;
  for (;;) {
    while (!queue_.empty()) {
      Entry top = queue_.top();
      queue_.pop();
      Region& region = (*regions_)[static_cast<size_t>(top.id)];
      if (top.version != region.rank_version) continue;  // stale entry
      if (!region.Active()) continue;                    // discarded
      const double fresh_rank = ComputeRank(region);
      if (fresh_rank != region.rank) {
        region.rank = fresh_rank;
        ++region.rank_version;
        ++stats_->pq_reorderings;
        if (++freshened < kMaxFreshenPerPick && !queue_.empty() &&
            fresh_rank < queue_.top().rank) {
          // A queued region may now outrank this one; re-queue and retry.
          queue_.push(Entry{fresh_rank, region.rank_version, top.id});
          continue;
        }
      }
      in_queue_[static_cast<size_t>(top.id)] = 0;
      return top.id;
    }
    // Queue empty. Any active region left is part of a mutual-elimination
    // cycle in the EL-Graph; force-root them all once.
    if (cycle_fallback_done_) return -1;
    cycle_fallback_done_ = true;
    bool pushed = false;
    for (Region& region : *regions_) {
      if (region.Active() && in_queue_[static_cast<size_t>(region.id)] == 0) {
        PushRegion(region.id);
        pushed = true;
      }
    }
    if (!pushed) return -1;
  }
}

void ProgOrder::OnRegionRemoved(int32_t id) {
  if (mode_ != OrderingMode::kProgOrder) {
    return;
  }
  AddUpSetCoverage((*regions_)[static_cast<size_t>(id)], -1);

  // Admit regions that became EL-Graph roots. Benefit refresh of queued
  // regions (Algorithm 1, line 13) happens lazily inside PopNext.
  for (int32_t new_root : el_graph_->OnRegionRemoved(id, *regions_)) {
    PushRegion(new_root);
  }
}

}  // namespace progxe
