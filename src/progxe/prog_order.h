// ProgOrder (Section IV, Algorithm 1): chooses the next region for
// tuple-level processing by ranking current EL-Graph roots with
// rank = Benefit / Cost (Equation 8).
//
// Benefit(R) = ProgCount(R) / PartitionCount(R) * Cardinality(R)  (Eq. 2)
// where ProgCount (Definition 2) counts the cells of R's box that no
// *other* unprocessed region covers-or-threatens — maintained with a dense
// up-set coverage array so each update is O(box volume) instead of a global
// rescan. Rank updates are event-driven (the paper's line 13): when a
// region is removed, every region whose benefit may change is re-ranked and
// re-pushed; stale priority-queue entries are version-skipped.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "elgraph/el_graph.h"
#include "outputspace/region.h"
#include "progxe/config.h"
#include "progxe/cost_model.h"
#include "progxe/output_table.h"

namespace progxe {

class ProgOrder {
 public:
  /// `regions` outlives this object and is mutated (rank fields) through it.
  /// `r_sizes` / `t_sizes` give |I^R_a| / |I^T_b| per partition index.
  ProgOrder(std::vector<Region>* regions, ElGraph* el_graph,
            OutputTable* table, CostModelParams cost_params,
            std::vector<size_t> r_sizes, std::vector<size_t> t_sizes,
            OrderingMode mode, uint64_t seed, ProgXeStats* stats);

  /// Next region to process, or -1 when none remain. Regions discarded
  /// after being queued are skipped. If the EL-Graph deadlocks on a cycle
  /// of mutual partial elimination, all remaining regions are force-rooted.
  int32_t PopNext();

  /// Must be called after a region completes or is discarded: updates the
  /// EL-Graph, admits new roots, and re-ranks affected queued regions.
  void OnRegionRemoved(int32_t id);

  /// Recomputes and stores rank for one region (exposed for tests).
  double ComputeRank(const Region& region) const;

  /// ProgCount per Definition 2 (exposed for tests).
  int64_t ComputeProgCount(const Region& region) const;

 private:
  struct Entry {
    double rank;
    uint32_t version;
    int32_t id;
    bool operator<(const Entry& o) const {
      if (rank != o.rank) return rank < o.rank;  // max-heap by rank
      return id > o.id;  // deterministic tiebreak: lower id first
    }
  };

  void PushRegion(int32_t id);
  void AddUpSetCoverage(const Region& region, int32_t delta);

  std::vector<Region>* regions_;
  ElGraph* el_graph_;
  OutputTable* table_;
  CostModelParams cost_params_;
  std::vector<size_t> r_sizes_;
  std::vector<size_t> t_sizes_;
  OrderingMode mode_;
  ProgXeStats* stats_;

  // kProgOrder state.
  std::priority_queue<Entry> queue_;
  /// cover_lo_[c] = #active regions whose lower cell is <= c in every dim.
  std::vector<int32_t> cover_lo_;
  std::vector<uint8_t> in_queue_;  // region currently admitted as root
  bool cycle_fallback_done_ = false;

  // kRandom / kSequential state.
  std::vector<int32_t> static_order_;
  size_t static_pos_ = 0;
};

}  // namespace progxe
