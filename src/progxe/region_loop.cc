#include "progxe/region_loop.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "obs/trace.h"

namespace progxe {

RegionLoop::RegionLoop(PreparedQuery* prep, const ProgXeOptions& options,
                       ProgXeStats* stats)
    : prep_(prep),
      options_(options),
      stats_(stats),
      regions_(&prep->lookahead.regions),
      faults_(options.faults != nullptr ? options.faults.get()
                                        : FaultInjector::FromEnv()),
      table_(prep->lookahead.output_grid, std::move(prep->lookahead.marked),
             stats),
      determine_(&table_),
      pipeline_(&prep->inputs->mapper, prep->inputs->r_contrib->flat().data(),
                prep->inputs->t_contrib->flat().data(), &table_.geometry(),
                options.insert_batch_size, options.num_threads) {
  const PreparedInputs& inputs = *prep->inputs;
  table_.InitCoverage(*regions_);

  if (options_.ordering == OrderingMode::kProgOrder) {
    el_graph_ = std::make_unique<ElGraph>(*regions_,
                                          options_.max_regions_for_elgraph);
    stats_->elgraph_disabled = el_graph_->disabled();
  }

  CostModelParams cost_params;
  cost_params.sigma = inputs.sigma;
  cost_params.cells_per_dim = options_.output_cells_per_dim;
  cost_params.dims = inputs.k;

  std::vector<size_t> r_sizes;
  for (const auto& p : inputs.r_grid->partitions()) r_sizes.push_back(p.size());
  std::vector<size_t> t_sizes;
  for (const auto& p : inputs.t_grid->partitions()) t_sizes.push_back(p.size());

  order_ = std::make_unique<ProgOrder>(
      regions_, el_graph_.get(), &table_, cost_params, std::move(r_sizes),
      std::move(t_sizes), options_.ordering, options_.seed, stats_);

  for (const Region& region : *regions_) {
    if (region.Active()) ++active_regions_;
  }
  removed_.assign(regions_->size(), 0);
  result_.values.resize(static_cast<size_t>(inputs.k));

  // Classify regions against the refinement seed (if any): a region whose
  // best corner a seed point strictly dominates on *every* dimension can
  // emit no skyline member (the seed point is a genuine output of the same
  // sources+mapping, so some skyline member is at least as good as it —
  // and strictly better than everything the region could produce). The
  // strict all-dims test means a point never discards its own containing
  // region. Seeding only *removes* regions; the pick order stays
  // ProgOrder's, whose cost model is what progressiveness is tuned on.
  const RefinementSeed* seed = options_.refinement_seed.get();
  if (seed != nullptr && seed->k == inputs.k && seed->points() > 0) {
    const GridGeometry& geom = table_.geometry();
    const size_t kd = static_cast<size_t>(inputs.k);
    std::vector<double> lower(kd);
    for (const Region& region : *regions_) {
      if (!region.Active()) continue;
      for (size_t j = 0; j < kd; ++j) {
        lower[j] =
            geom.CellLower(static_cast<int>(j), region.lo_cell[j]);
      }
      for (size_t p = 0; p < seed->points(); ++p) {
        const double* pt = seed->canonical.data() + p * kd;
        bool dom = true;
        for (size_t j = 0; j < kd; ++j) {
          if (!(pt[j] < lower[j])) {
            dom = false;
            break;
          }
        }
        if (dom) {
          seed_discard_.push_back(region.id);  // ascending region id
          break;
        }
      }
    }
  }
  seed_applied_ = seed_discard_.empty();

  // Bucket the active regions by lo_cell for the runtime discard sweep.
  std::unordered_map<CellIndex, size_t> bucket_of;
  for (const Region& region : *regions_) {
    if (!region.Active()) continue;
    const CellIndex lo_index = table_.geometry().IndexOf(region.lo_cell.data());
    auto [it, inserted] =
        bucket_of.try_emplace(lo_index, discard_buckets_.size());
    if (inserted) {
      discard_buckets_.emplace_back();
      discard_buckets_.back().lo = region.lo_cell;
    }
    discard_buckets_[it->second].region_ids.push_back(region.id);
  }
}

bool RegionLoop::ReachedLimit() const {
  return options_.max_results != 0 &&
         stats_->results_emitted >= options_.max_results;
}

void RegionLoop::EmitCells(const std::vector<CellIndex>& cells,
                           std::vector<ResultTuple>* pending) {
  const int k = prep_->inputs->k;
  for (CellIndex c : cells) {
    if (ReachedLimit()) return;
    flush_values_.clear();
    flush_ids_.clear();
    table_.FlushCell(c, &flush_values_, &flush_ids_);
    ++stats_->cells_flushed;
    for (size_t i = 0; i < flush_ids_.size(); ++i) {
      result_.r_id = prep_->inputs->r_orig_ids[flush_ids_[i].r];
      result_.t_id = prep_->inputs->t_orig_ids[flush_ids_[i].t];
      for (int j = 0; j < k; ++j) {
        result_.values[static_cast<size_t>(j)] =
            prep_->inputs->mapper.Decanonicalize(
            j, flush_values_[i * static_cast<size_t>(k) +
                             static_cast<size_t>(j)]);
      }
      pending->push_back(result_);
      ++stats_->results_emitted;
      if (active_regions_ > 0) ++stats_->results_emitted_early;
      if (ReachedLimit()) return;
    }
  }
}

void RegionLoop::RemoveRegion(Region& region,
                              std::vector<ResultTuple>* pending) {
  if (removed_[static_cast<size_t>(region.id)]) return;
  removed_[static_cast<size_t>(region.id)] = 1;
  assert(active_regions_ > 0);
  --active_regions_;
  table_.ReleaseRegionCoverage(region, &settled_scratch_);
  table_.DrainMarkedEvents(&marked_scratch_);
  determine_.OnCellsMarked(marked_scratch_);
  determine_.OnCellsSettled(settled_scratch_, &flush_scratch_);
  order_->OnRegionRemoved(region.id);
  EmitCells(flush_scratch_, pending);
}

void RegionLoop::DiscardSweep(std::vector<ResultTuple>* pending) {
  // Only runs when the frontier advanced since the last sweep; each bucket
  // is tested against the frontier entries logged since it last survived.
  const uint64_t epoch = table_.frontier_epoch();
  if (epoch == last_sweep_epoch_) return;
  TraceSpan span(trace_cats::kRegion, "region.discard");
  discard_scratch_.clear();
  for (size_t bi = 0; bi < discard_buckets_.size();) {
    DiscardBucket& bucket = discard_buckets_[bi];
    // Lazily drop regions that completed or were discarded meanwhile.
    std::erase_if(bucket.region_ids, [&](int32_t id) {
      return !(*regions_)[static_cast<size_t>(id)].Active();
    });
    if (bucket.region_ids.empty()) {
      // Permanently dead: swap-pop so later sweeps skip it entirely.
      if (bi + 1 != discard_buckets_.size()) {
        discard_buckets_[bi] = std::move(discard_buckets_.back());
      }
      discard_buckets_.pop_back();
      continue;
    }
    if (table_.FrontierDominatesSince(bucket.lo.data(),
                                      bucket.survived_epoch)) {
      discard_scratch_.insert(discard_scratch_.end(),
                              bucket.region_ids.begin(),
                              bucket.region_ids.end());
      if (bi + 1 != discard_buckets_.size()) {
        discard_buckets_[bi] = std::move(discard_buckets_.back());
      }
      discard_buckets_.pop_back();
      continue;
    }
    bucket.survived_epoch = epoch;
    ++bi;
  }
  // Discard in ascending region id — the order the full rescan used — so
  // flush/emission order is byte-for-byte stable.
  std::sort(discard_scratch_.begin(), discard_scratch_.end());
  for (int32_t id : discard_scratch_) {
    Region& other = (*regions_)[static_cast<size_t>(id)];
    if (!other.Active()) continue;
    other.discarded = true;
    ++stats_->regions_discarded_runtime;
    RemoveRegion(other, pending);
  }
  last_sweep_epoch_ = epoch;
}

void RegionLoop::CompletenessSweep(std::vector<ResultTuple>* pending) {
  // Every populated unmarked cell must have flushed by now.
  for (CellIndex c : table_.PopulatedCells()) {
    if (!table_.emitted(c) && !table_.marked(c)) {
      // Unreachable by construction; fail loudly in debug, recover in
      // release so no result is ever lost.
      assert(false && "cell missed by progressive determination");
      std::vector<CellIndex> one{c};
      EmitCells(one, pending);
    }
  }
}

void RegionLoop::FinishRegion(Region& region,
                              std::vector<ResultTuple>* pending) {
  region.processed = true;
  ++stats_->regions_processed;

  {
    TraceSpan span(trace_cats::kRegion, "region.flush");
    span.arg("region", region.id);
    // Kill events produced during insertion must reach ProgDetermine
    // before settle processing.
    table_.DrainMarkedEvents(&marked_scratch_);
    determine_.OnCellsMarked(marked_scratch_);
    RemoveRegion(region, pending);
  }

  DiscardSweep(pending);
}

void RegionLoop::RemainingLowerBound(std::vector<double>* lo) const {
  if (done_) return;
  const GridGeometry& geom = table_.geometry();
  const int k = geom.dimensions();
  for (const Region& region : *regions_) {
    if (!region.Active()) continue;
    for (int d = 0; d < k; ++d) {
      const double edge = geom.CellLower(d, region.lo_cell[static_cast<size_t>(d)]);
      double& slot = (*lo)[static_cast<size_t>(d)];
      if (edge < slot) slot = edge;
    }
  }
}

void RegionLoop::ApplySeedDiscards(std::vector<ResultTuple>* pending) {
  // Ascending region id (seed_discard_ is built in region order), mirroring
  // the runtime discard sweep so flush/emission order is deterministic.
  seed_applied_ = true;
  for (int32_t id : seed_discard_) {
    Region& region = (*regions_)[static_cast<size_t>(id)];
    if (!region.Active()) continue;
    region.discarded = true;
    ++stats_->regions_discarded_seed;
    RemoveRegion(region, pending);
  }
  seed_discard_.clear();
  seed_discard_.shrink_to_fit();
}

bool RegionLoop::ExportCheckpoint(SessionCheckpoint* out) {
  // Only at a region boundary on a healthy, unfinished loop, and only when
  // no result cap is in play: with max_results set, EmitCells may truncate
  // a flush mid-cell, so "emitted" would no longer imply "delivered".
  if (done_ || current_region_ >= 0 || !status_.ok() ||
      options_.max_results != 0) {
    return false;
  }
  const GridGeometry& geom = table_.geometry();
  out->k = static_cast<uint32_t>(prep_->inputs->k);
  out->frontier_epoch = table_.frontier_epoch();
  out->region_count = regions_->size();
  out->replay_pairs_saved = 0;
  out->skip_regions.clear();
  if (skip_safe_.size() != regions_->size()) {
    skip_safe_.assign(regions_->size(), 0);
  }
  const auto& r_parts = prep_->inputs->r_grid->partitions();
  const auto& t_parts = prep_->inputs->t_grid->partitions();
  for (size_t id = 0; id < regions_->size(); ++id) {
    if (!removed_[id]) continue;
    const Region& region = (*regions_)[id];
    if (!skip_safe_[id]) {
      bool safe = false;
      if (region.discarded && !region.processed) {
        // Discarded without processing: every would-be tuple is strictly
        // dominated by frontier points that are themselves delivered or
        // regenerated by the resumed incarnation.
        safe = true;
      } else if (region.processed) {
        // Processed: safe iff no live tuple it could have contributed is
        // still waiting to flush — every populated cell in its coverage box
        // must be emitted (delivered) or marked (dead).
        safe = true;
        geom.ForEachCellInBox(
            region.lo_cell.data(), region.hi_cell.data(), [&](CellIndex c) {
              if (safe && table_.populated(c) && !table_.emitted(c) &&
                  !table_.marked(c)) {
                safe = false;
              }
            });
      }
      if (!safe) continue;
      skip_safe_[id] = 1;
    }
    out->skip_regions.push_back(static_cast<int32_t>(id));
    if (region.processed) {
      out->replay_pairs_saved +=
          static_cast<uint64_t>(
              r_parts[static_cast<size_t>(region.a)].size()) *
          static_cast<uint64_t>(t_parts[static_cast<size_t>(region.b)].size());
    }
  }
  return true;
}

Status RegionLoop::RestoreCheckpoint(const SessionCheckpoint& checkpoint) {
  if (resumed_ || current_region_ >= 0 || done_ || !status_.ok()) {
    return Status::InvalidArgument(
        "RestoreCheckpoint: loop is not freshly constructed");
  }
  if (checkpoint.k != static_cast<uint32_t>(prep_->inputs->k)) {
    return Status::InvalidArgument("checkpoint dimensionality mismatch");
  }
  if (checkpoint.region_count != regions_->size()) {
    return Status::InvalidArgument("checkpoint region count mismatch");
  }
  int32_t prev = -1;
  for (int32_t id : checkpoint.skip_regions) {
    if (id <= prev || static_cast<size_t>(id) >= regions_->size()) {
      return Status::InvalidArgument("checkpoint skip list malformed");
    }
    if (!(*regions_)[static_cast<size_t>(id)].Active()) {
      return Status::InvalidArgument("checkpoint skips an inactive region");
    }
    prev = id;
  }
  // Mirror RemoveRegion, minus emission and stats: on the fresh table the
  // settled cells are empty, so ProgDetermine never offers them for flush
  // (and they can never repopulate — no active region covers them). The
  // dead incarnation's counters travel separately (shard lost_stats).
  for (int32_t id : checkpoint.skip_regions) {
    Region& region = (*regions_)[static_cast<size_t>(id)];
    region.discarded = true;
    removed_[static_cast<size_t>(id)] = 1;
    assert(active_regions_ > 0);
    --active_regions_;
    table_.ReleaseRegionCoverage(region, &settled_scratch_);
    table_.DrainMarkedEvents(&marked_scratch_);
    determine_.OnCellsMarked(marked_scratch_);
    determine_.OnCellsSettled(settled_scratch_, &flush_scratch_);
    order_->OnRegionRemoved(region.id);
  }
  resumed_ = !checkpoint.skip_regions.empty();
  replay_pairs_saved_ = resumed_ ? checkpoint.replay_pairs_saved : 0;
  resumed_regions_skipped_ =
      static_cast<uint32_t>(checkpoint.skip_regions.size());
  return Status::OK();
}

bool RegionLoop::Step(std::vector<ResultTuple>* pending, size_t max_pairs) {
  if (done_) return false;
  // Seed discards apply lazily on the first Step so their flushed results
  // land in a caller-visible pending vector.
  if (!seed_applied_) ApplySeedDiscards(pending);
  for (;;) {
    if (current_region_ < 0) {
      if (ReachedLimit()) {  // early termination (max_results)
        stats_->dominance_comparisons += table_.dom_counter()->comparisons;
        table_.dom_counter()->comparisons = 0;
        done_ = true;
        return false;
      }
      int32_t next;
      {
        TraceSpan span(trace_cats::kRegion, "region.pick");
        next = order_->PopNext();
        span.arg("region", next);
      }
      if (next < 0) {
        stats_->dominance_comparisons += table_.dom_counter()->comparisons;
        table_.dom_counter()->comparisons = 0;
        CompletenessSweep(pending);
        done_ = true;
        return false;
      }
      Region& picked = (*regions_)[static_cast<size_t>(next)];
      if (!picked.Active()) continue;

      const InputPartition& pa =
          prep_->inputs->r_grid->partitions()[static_cast<size_t>(picked.a)];
      const InputPartition& pb =
          prep_->inputs->t_grid->partitions()[static_cast<size_t>(picked.b)];
      if (max_pairs == 0) {
        // Whole-region fast path: join the partition pair, map, insert —
        // via the (optionally parallel) pipeline, which preserves the
        // sequential pair order and hence every counter.
        Status fault = MaybeInjectFault(faults_, fault_sites::kPipelineChunk,
                                        options_.fault_instance);
        if (PROGXE_PREDICT_FALSE(!fault.ok())) {
          status_ = std::move(fault);
          done_ = true;
          return false;
        }
        {
          TraceSpan span(trace_cats::kRegion, "region.pipeline");
          span.arg("region", next);
          const uint64_t pairs = pipeline_.ProcessRegion(pa, pb, &table_);
          stats_->join_pairs_generated += pairs;
          span.arg("pairs", static_cast<int64_t>(pairs));
        }
        FinishRegion(picked, pending);
        return true;
      }
      pipeline_.BeginRegion(pa, pb);
      current_region_ = next;
    }

    // Sliced path: advance the open region by ~max_pairs pairs; flush only
    // once it is exhausted, so the table sees the identical insert stream.
    Region& region = (*regions_)[static_cast<size_t>(current_region_)];
    if (!pipeline_.RegionExhausted()) {
      Status fault = MaybeInjectFault(faults_, fault_sites::kPipelineChunk,
                                      options_.fault_instance);
      if (PROGXE_PREDICT_FALSE(!fault.ok())) {
        status_ = std::move(fault);
        done_ = true;
        return false;
      }
      TraceSpan span(trace_cats::kRegion, "region.pipeline");
      span.arg("region", current_region_);
      const uint64_t pairs = pipeline_.ProcessSome(max_pairs, &table_);
      stats_->join_pairs_generated += pairs;
      span.arg("pairs", static_cast<int64_t>(pairs));
      if (!pipeline_.RegionExhausted()) return true;  // yielded mid-region
    }
    current_region_ = -1;
    FinishRegion(region, pending);
    return true;
  }
}

}  // namespace progxe
