// RegionLoop: the incremental driver of ProgXe's main loop (Algorithm 1).
// One Step() = one iteration — ProgOrder picks a region, the tuple pipeline
// joins/maps/inserts it (optionally across worker threads), ProgDetermine
// flushes settled cells, and the epoch-gated runtime discard sweep removes
// regions the new frontier wholly dominates. Emitted results are appended
// to the caller's pending vector, which is what lets ProgXeSession expose a
// pull-based NextBatch on top while ProgXeExecutor::Run stays a thin loop.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/fault_injection.h"
#include "common/status.h"
#include "elgraph/el_graph.h"
#include "progxe/checkpoint.h"
#include "progxe/output_table.h"
#include "progxe/pipeline.h"
#include "progxe/prepare.h"
#include "progxe/prog_determine.h"
#include "progxe/prog_order.h"

namespace progxe {

class RegionLoop {
 public:
  /// `prep` must outlive the loop and is consumed by it (region flags and
  /// the look-ahead marking move into the runtime structures): one
  /// PreparedQuery drives exactly one RegionLoop.
  RegionLoop(PreparedQuery* prep, const ProgXeOptions& options,
             ProgXeStats* stats);

  /// Runs one bounded slice of the main loop, appending any results it
  /// proves final to `*pending`. `max_pairs` caps the join pairs processed
  /// in this call: 0 drives the picked region all the way to its flush (the
  /// legacy one-region step); otherwise the call may yield mid-region after
  /// ~max_pairs pairs (producing no results) and the next call resumes at
  /// the same pair without redoing work — the serving layer's preemption
  /// point. Slice boundaries never change results, emission order or any
  /// ProgXeStats counter. Returns false — without processing anything
  /// further — once no active regions remain or options.max_results has
  /// been reached; the final completeness sweep has run by then.
  bool Step(std::vector<ResultTuple>* pending, size_t max_pairs = 0);

  /// True once Step() has nothing left to do.
  bool done() const { return done_; }

  /// OK while healthy. The "pipeline.chunk" fault site (a stand-in for a
  /// parallel join->map worker crash) lands here; the loop is done()
  /// afterwards and the session surfaces the failure through its own error
  /// channel.
  const Status& status() const { return status_; }

  /// Min-merges into `lo[0..k)` the canonical lower cell edges of every
  /// active region's lo_cell. Sound as a bound on anything the loop may
  /// still emit: future join results land inside some active region's box,
  /// and a populated unflushed cell always has reg_count > 0 (its tuples
  /// came from a region whose box covers it, and cells flush the moment
  /// their coverage drops to zero), so its tuples too sit above some active
  /// region's lower cell edge.
  void RemainingLowerBound(std::vector<double>* lo) const;

  /// Fills `*out` with a resumable snapshot of the loop's region cursor.
  /// Only valid at a region boundary (no region open in the pipeline) on a
  /// healthy, unfinished loop — returns false otherwise. Skip-safety
  /// verdicts (see progxe/checkpoint.h) are computed lazily per removed
  /// region and cached: once safe, always safe.
  bool ExportCheckpoint(SessionCheckpoint* out);

  /// Pre-removes the checkpoint's skip-safe regions from a freshly
  /// constructed loop (call before the first Step). Validates the
  /// checkpoint against this loop's prepared inputs — dimension, region
  /// count, id range/ordering, region still active — and returns
  /// kInvalidArgument on any mismatch (caller falls back to full replay;
  /// the loop must be discarded, it may have been partially restored).
  /// Nothing is emitted and no stats counters are bumped: the dead
  /// incarnation's accounting is carried separately by the caller.
  Status RestoreCheckpoint(const SessionCheckpoint& checkpoint);

  /// Join pairs RestoreCheckpoint avoided re-generating (0 when not
  /// resumed), and the number of regions it pre-removed.
  uint64_t replay_pairs_saved() const { return replay_pairs_saved_; }
  uint32_t resumed_regions_skipped() const { return resumed_regions_skipped_; }
  bool resumed() const { return resumed_; }

 private:
  bool ReachedLimit() const;
  /// First-Step application of options.refinement_seed: removes the regions
  /// whose best corner a seed point strictly dominates (they provably hold
  /// no skyline members), in ascending region id.
  void ApplySeedDiscards(std::vector<ResultTuple>* pending);
  /// Post-join bookkeeping shared by the whole-region and sliced paths:
  /// marked-event drain, region removal, discard sweep.
  void FinishRegion(Region& region, std::vector<ResultTuple>* pending);
  void EmitCells(const std::vector<CellIndex>& cells,
                 std::vector<ResultTuple>* pending);
  void RemoveRegion(Region& region, std::vector<ResultTuple>* pending);
  void DiscardSweep(std::vector<ResultTuple>* pending);
  /// Recovery net behind the progressive guarantees: flushes any populated
  /// unmarked cell ProgDetermine somehow missed (unreachable by
  /// construction; see executor completeness notes).
  void CompletenessSweep(std::vector<ResultTuple>* pending);

  PreparedQuery* prep_;
  const ProgXeOptions& options_;
  ProgXeStats* stats_;
  std::vector<Region>* regions_;
  /// Effective injector for the pipeline.chunk site (programmatic when set,
  /// else ambient); not owned.
  FaultInjector* faults_ = nullptr;
  Status status_;

  OutputTable table_;
  ProgDetermine determine_;
  std::unique_ptr<ElGraph> el_graph_;
  std::unique_ptr<ProgOrder> order_;
  RegionJoinPipeline pipeline_;

  bool done_ = false;
  size_t active_regions_ = 0;
  /// Region currently open in the pipeline (budgeted Step yielded inside
  /// it); -1 when the next Step picks a fresh region.
  int32_t current_region_ = -1;

  /// Marks a region removed exactly once across all removal paths.
  std::vector<uint8_t> removed_;

  /// Cached positive skip-safety verdicts per region (monotone: emitted and
  /// marked are never un-set, so a region that is skip-safe stays so).
  /// Sized lazily by the first ExportCheckpoint.
  std::vector<uint8_t> skip_safe_;

  // Resume bookkeeping (RestoreCheckpoint).
  bool resumed_ = false;
  uint64_t replay_pairs_saved_ = 0;
  uint32_t resumed_regions_skipped_ = 0;

  // Refinement seeding (options.refinement_seed): regions a seed point
  // strictly dominates, discarded up front — lazily on the first Step so
  // their flushes land in that Step's pending vector. Cost-only: the
  // result set is unchanged, like an ordering-mode change.
  std::vector<int32_t> seed_discard_;
  bool seed_applied_ = false;

  // Incremental runtime region discard (Algorithm 1, line 9): active
  // regions bucketed by lo_cell — the discard test depends only on it — and
  // re-tested only against frontier entries logged after the epoch at which
  // the bucket last survived (see OutputTable::FrontierDominatesSince).
  struct DiscardBucket {
    std::vector<CellCoord> lo;        // shared lo_cell coordinates
    std::vector<int32_t> region_ids;  // regions with this lo_cell
    uint64_t survived_epoch = 0;      // frontier epoch last tested clean
  };
  std::vector<DiscardBucket> discard_buckets_;
  uint64_t last_sweep_epoch_ = 0;

  // Emit-path scratch, reused across steps: the steady-state flush path
  // performs no allocations.
  std::vector<double> flush_values_;
  std::vector<CellTupleIds> flush_ids_;
  ResultTuple result_;
  std::vector<CellIndex> settled_scratch_;
  std::vector<CellIndex> marked_scratch_;
  std::vector<CellIndex> flush_scratch_;
  std::vector<int32_t> discard_scratch_;
};

}  // namespace progxe
