#include "progxe/session.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/fault_injection.h"
#include "common/macros.h"
#include "obs/trace.h"
#include "progxe/prepare_cache.h"

namespace progxe {

namespace {

// Applies a resume checkpoint to a freshly opened session. A trivially
// empty session has no loop: only an equally empty checkpoint matches.
Status ApplyResume(ProgXeSession* session, RegionLoop* loop,
                   const SessionCheckpoint& resume) {
  (void)session;
  if (loop == nullptr) {
    if (resume.region_count == 0 && resume.skip_regions.empty()) {
      return Status::OK();
    }
    return Status::InvalidArgument(
        "checkpoint does not match a trivially-empty session");
  }
  return loop->RestoreCheckpoint(resume);
}

}  // namespace

Result<std::unique_ptr<ProgXeSession>> ProgXeSession::Open(
    const SkyMapJoinQuery& query, ProgXeOptions options,
    const SessionCheckpoint* resume) {
  // make_unique needs a public constructor; the session is handed out
  // fully-opened only.
  std::unique_ptr<ProgXeSession> session(new ProgXeSession());
  session->options_ = std::move(options);
  session->prep_ = std::make_unique<PreparedQuery>();
  if (session->options_.prepare_cache != nullptr) {
    PrepareCache& cache = *session->options_.prepare_cache;
    const std::string key =
        PrepareCache::Fingerprint(query, session->options_);
    std::shared_ptr<const PreparedInputs> inputs = cache.Lookup(key);
    if (inputs != nullptr) {
      TraceInstant(trace_cats::kCache, "cache.hit", "instance",
                   session->options_.fault_instance);
    } else {
      TraceInstant(trace_cats::kCache, "cache.miss", "instance",
                   session->options_.fault_instance);
    }
    if (inputs == nullptr) {
      // Cold miss: build a self-contained entry (owns source copies, so it
      // stays valid after the submitter frees its relations) and publish
      // it. On an insert race the first writer's entry wins for the cache,
      // but *this* session keeps the inputs it just built — both are
      // equivalent by construction.
      auto built = std::make_shared<PreparedInputs>();
      PROGXE_RETURN_NOT_OK(BuildPreparedInputs(
          query, session->options_, /*own_sources=*/true, built.get()));
      cache.Insert(key, built);
      inputs = std::move(built);
    }
    AdoptPreparedInputs(std::move(inputs), &session->options_,
                        &session->stats_, session->prep_.get());
  } else {
    PROGXE_RETURN_NOT_OK(PreparePhase(query, &session->options_,
                                      &session->stats_, session->prep_.get()));
  }
  session->StartLoop();
  if (resume != nullptr) {
    PROGXE_RETURN_NOT_OK(
        ApplyResume(session.get(), session->loop_.get(), *resume));
  }
  return session;
}

Result<std::unique_ptr<ProgXeSession>> ProgXeSession::OpenPrepared(
    std::shared_ptr<const PreparedInputs> inputs, ProgXeOptions options,
    const SessionCheckpoint* resume) {
  if (inputs == nullptr) {
    return Status::InvalidArgument("OpenPrepared requires prepared inputs");
  }
  std::unique_ptr<ProgXeSession> session(new ProgXeSession());
  session->options_ = std::move(options);
  session->prep_ = std::make_unique<PreparedQuery>();
  AdoptPreparedInputs(std::move(inputs), &session->options_,
                      &session->stats_, session->prep_.get());
  session->StartLoop();
  if (resume != nullptr) {
    PROGXE_RETURN_NOT_OK(
        ApplyResume(session.get(), session->loop_.get(), *resume));
  }
  return session;
}

void ProgXeSession::StartLoop() {
  if (!prep_->trivially_empty) {
    loop_ = std::make_unique<RegionLoop>(prep_.get(), options_, &stats_);
  }
}

ProgXeSession::~ProgXeSession() { Close(); }

size_t ProgXeSession::NextBatch(size_t max_results, size_t max_pairs,
                                std::vector<ResultTuple>* out) {
  out->clear();
  // The in-engine fault site. Deliberately scoped to the programmatic
  // injector only (never the PROGXE_FAULT_SITES one): an ambient soak spec
  // targets the recovery layers above, not every plain session in the
  // process. Fires only while work remains — a drained session cannot fail.
  if (options_.faults != nullptr && !closed_ && !Finished()) {
    Status fault = options_.faults->Check(fault_sites::kSessionNextBatch,
                                          options_.fault_instance);
    if (PROGXE_PREDICT_FALSE(!fault.ok())) {
      Fail(std::move(fault));
      return 0;
    }
  }
  size_t budget = max_pairs;
  while (pending_pos_ >= pending_.size() && loop_ != nullptr &&
         !loop_->done()) {
    pending_.clear();
    pending_pos_ = 0;
    const uint64_t before = stats_.join_pairs_generated;
    loop_->Step(&pending_, budget);
    if (PROGXE_PREDICT_FALSE(!loop_->status().ok())) {
      // A pipeline.chunk fault killed the loop mid-stream: same observable
      // as any in-engine failure (error in last_status, nothing delivered
      // this call, already-delivered results stand).
      Fail(loop_->status());
      return 0;
    }
    if (max_pairs != 0) {
      // Charge the slice for the pairs it actually processed; Step may
      // overshoot by one insert block, never undershoot while yielding.
      const uint64_t used = stats_.join_pairs_generated - before;
      budget = used >= budget ? 0 : budget - static_cast<size_t>(used);
      if (budget == 0) break;
    }
  }
  size_t n = pending_.size() - pending_pos_;
  if (max_results != 0) n = std::min(n, max_results);
  out->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out->push_back(std::move(pending_[pending_pos_ + i]));
  }
  pending_pos_ += n;
  return n;
}

void ProgXeSession::Fail(Status status) {
  assert(!status.ok());
  status_ = std::move(status);
  // Same teardown as Close (workers joined, undelivered results dropped)
  // but the session stays "open": closed() remains false, the caller
  // distinguishes death from completion through last_status().
  loop_.reset();
  prep_.reset();
  pending_.clear();
  pending_.shrink_to_fit();
  pending_pos_ = 0;
}

void ProgXeSession::Close() {
  if (closed_) return;
  closed_ = true;
  // The loop references the prepared state: destroy it first. Its pipeline
  // destructor joins any worker threads, even mid-region.
  loop_.reset();
  prep_.reset();
  pending_.clear();
  pending_.shrink_to_fit();
  pending_pos_ = 0;
}

bool ProgXeSession::ExportCheckpoint(SessionCheckpoint* out) {
  // Every flushed result must have been delivered: skip-safety treats an
  // emitted cell as "its tuples reached the consumer", which is only true
  // once the pending buffer is drained.
  if (closed_ || !status_.ok() || loop_ == nullptr ||
      pending_pos_ < pending_.size()) {
    return false;
  }
  if (!loop_->ExportCheckpoint(out)) return false;
  out->delivered = stats_.results_emitted;
  out->stats = stats_;
  return true;
}

bool ProgXeSession::Finished() const {
  return pending_pos_ >= pending_.size() &&
         (loop_ == nullptr || loop_->done());
}

bool ProgXeSession::RemainingLowerBound(std::vector<double>* lo) const {
  if (Finished()) return false;
  const size_t k = static_cast<size_t>(prep_->inputs->k);
  lo->assign(k, std::numeric_limits<double>::infinity());
  // Flushed-but-undelivered results, recanonicalized (the sign fold is an
  // involution, so Canonicalize undoes what EmitCells applied).
  for (size_t i = pending_pos_; i < pending_.size(); ++i) {
    for (size_t j = 0; j < k; ++j) {
      (*lo)[j] = std::min(
          (*lo)[j], prep_->inputs->mapper.Canonicalize(static_cast<int>(j),
                                                       pending_[i].values[j]));
    }
  }
  // Everything the engine itself may still flush: live tuples in unsettled
  // cells and all unprocessed regions, both covered by the active regions'
  // cell boxes (an unsettled populated cell always has an active covering
  // region — that is what keeps it unsettled).
  if (loop_ != nullptr) loop_->RemainingLowerBound(lo);
  return true;
}

}  // namespace progxe
