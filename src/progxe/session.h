// ProgXeSession: the pull-based incremental consumption API over the
// staged executor (PreparePhase + RegionLoop).
//
//   auto session = ProgXeSession::Open(query, options);   // validates, prepares
//   std::vector<ResultTuple> batch;
//   while ((*session)->NextBatch(100, &batch) > 0) {
//     ...  // every tuple is already guaranteed final — consume, render, ship
//   }
//
// NextBatch runs the engine only as far as needed to produce the next
// results, so a caller can interleave consumption with its own work, stop
// early at any point, or drive many sessions from one scheduler — while the
// result stream and every ProgXeStats counter stay bit-identical to a
// one-shot ProgXeExecutor::Run (which is itself a thin loop over a session).
#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "progxe/executor.h"
#include "progxe/prepare.h"
#include "progxe/region_loop.h"

namespace progxe {

class ProgXeSession {
 public:
  /// Validates the query and runs PreparePhase (push-through, contribution
  /// tables, grids, look-ahead). No join pair is generated yet. The
  /// relations behind `query` must outlive the session.
  static Result<std::unique_ptr<ProgXeSession>> Open(
      const SkyMapJoinQuery& query, ProgXeOptions options);

  ProgXeSession(const ProgXeSession&) = delete;
  ProgXeSession& operator=(const ProgXeSession&) = delete;

  /// Advances the engine until at least one result is available (or the run
  /// finishes), then fills `*out` (cleared first) with up to `max_results`
  /// results — 0 means no per-call cap. Returns the number delivered;
  /// 0 iff Finished(). Results beyond the cap stay buffered for the next
  /// call, so the delivered stream is exactly the Run emission stream.
  size_t NextBatch(size_t max_results, std::vector<ResultTuple>* out);

  /// True once every result has been delivered (the run completed, hit
  /// options.max_results, or the query was provably empty).
  bool Finished() const;

  /// Live counters; final once Finished() is true.
  const ProgXeStats& stats() const { return stats_; }

  const ProgXeOptions& options() const { return options_; }

 private:
  ProgXeSession() = default;

  ProgXeOptions options_;
  ProgXeStats stats_;
  std::unique_ptr<PreparedQuery> prep_;
  std::unique_ptr<RegionLoop> loop_;  // null for trivially-empty queries

  /// Flushed-but-undelivered results: [pending_pos_, pending_.size()).
  std::vector<ResultTuple> pending_;
  size_t pending_pos_ = 0;
};

}  // namespace progxe
