// ProgXeSession: the pull-based incremental consumption API over the
// staged executor (PreparePhase + RegionLoop).
//
//   auto session = ProgXeSession::Open(query, options);   // validates, prepares
//   std::vector<ResultTuple> batch;
//   while ((*session)->NextBatch(100, &batch) > 0) {
//     ...  // every tuple is already guaranteed final — consume, render, ship
//   }
//
// NextBatch runs the engine only as far as needed to produce the next
// results, so a caller can interleave consumption with its own work, stop
// early at any point, or drive many sessions from one scheduler — while the
// result stream and every ProgXeStats counter stay bit-identical to a
// one-shot ProgXeExecutor::Run (which is itself a thin loop over a session).
//
// ProgXeSession is the single-process implementation of the abstract
// ProgXeStream interface (progxe/stream.h); consumers above the engine hold
// a ProgXeStream and never name this type.
#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "progxe/executor.h"
#include "progxe/prepare.h"
#include "progxe/region_loop.h"
#include "progxe/stream.h"

namespace progxe {

class ProgXeSession : public ProgXeStream {
 public:
  /// Validates the query and runs PreparePhase (push-through, contribution
  /// tables, grids, look-ahead). No join pair is generated yet. The
  /// relations behind `query` must outlive the session — unless the
  /// prepared state came from options.prepare_cache, whose entries own
  /// source copies. With a cache set, Open fingerprints the query first: a
  /// hit skips the prepare phase entirely (stats and resolved options are
  /// replayed bit-identically from the cached build), a miss builds a
  /// self-contained entry and publishes it.
  /// With `resume` set, the freshly built region loop is restored from the
  /// checkpoint (skip-safe regions pre-removed) before the first pump; a
  /// stale or corrupt checkpoint fails the open with kInvalidArgument, which
  /// callers treat as "re-open without the checkpoint" (full replay).
  static Result<std::unique_ptr<ProgXeSession>> Open(
      const SkyMapJoinQuery& query, ProgXeOptions options,
      const SessionCheckpoint* resume = nullptr);

  /// Opens directly over previously built prepared state, skipping the
  /// prepare phase. Used by the sharded stream to re-open a quarantined
  /// shard without re-running push-through/grids/look-ahead, and by anyone
  /// holding a cache entry. The inputs' sources must stay alive for the
  /// session's lifetime (guaranteed when `inputs` owns its copies).
  /// `resume` behaves as in Open.
  static Result<std::unique_ptr<ProgXeSession>> OpenPrepared(
      std::shared_ptr<const PreparedInputs> inputs, ProgXeOptions options,
      const SessionCheckpoint* resume = nullptr);

  ProgXeSession(const ProgXeSession&) = delete;
  ProgXeSession& operator=(const ProgXeSession&) = delete;

  /// Closes the session, then destroys it (workers joined, state freed).
  ~ProgXeSession() override;

  /// The unbudgeted base-class form advances the engine until at least one
  /// result is available (or the run finishes); delivery returns 0 iff
  /// Finished(). Results beyond the `max_results` cap stay buffered for the
  /// next call, so the delivered stream is exactly the Run emission stream.
  using ProgXeStream::NextBatch;

  /// Budget-aware NextBatch — the scheduler's time slice. Advances the
  /// engine by at most ~`max_pairs` join pairs (0 = unbudgeted) and returns
  /// whatever results that work produced, up to `max_results`. A budgeted
  /// call may return 0 while !Finished(): the slice ended mid-region (a
  /// *yield*) — the next call resumes at the same join pair without redoing
  /// work. Concatenating delivered batches over any sequence of budgets
  /// reproduces the Run emission stream and all ProgXeStats counters
  /// bit-identically.
  size_t NextBatch(size_t max_results, size_t max_pairs,
                   std::vector<ResultTuple>* out) override;

  /// Cooperatively tears the session down: joins any RegionJoinPipeline
  /// workers, releases the prepared query state and scratch buffers, and
  /// drops undelivered results. Finished() is true afterwards and further
  /// NextBatch calls deliver nothing. Idempotent; the destructor delegates
  /// here, so an explicit Close is only needed to reclaim resources (or
  /// worker threads) before the session object itself goes away.
  void Close() override;

  /// True once every result has been delivered (the run completed, hit
  /// options.max_results, or the query was provably empty), the session
  /// failed, or it was closed.
  bool Finished() const override;

  /// Live counters; final once Finished() is true.
  const ProgXeStats& stats() const override { return stats_; }

  /// OK while healthy. A NextBatch failure (today: an injected
  /// "session.next_batch" fault from ProgXeOptions::faults) tears the
  /// engine state down, drops undelivered results and parks the session in
  /// a terminal error state — Finished() true, stats() readable, every
  /// further NextBatch empty — with the failure held here.
  Status last_status() const override { return status_; }

  /// The session's remaining-output frontier: fills `lo[0..k)` (resized)
  /// with a canonical-space componentwise lower bound on every result this
  /// session may still deliver. Returns false — leaving `*lo` unspecified —
  /// iff nothing remains (Finished()). The bound covers undelivered flushed
  /// results, live tuples in unflushed cells and every unprocessed region,
  /// so a merge layer may treat any point the bound cannot dominate as
  /// globally final (the cross-shard finality check in
  /// shard/sharded_stream.cc).
  bool RemainingLowerBound(std::vector<double>* lo) const;

  const ProgXeOptions& options() const { return options_; }

  /// The immutable prepared state backing this session (null after Close or
  /// failure). Capture it to re-open an equivalent session via OpenPrepared
  /// without paying the prepare phase again.
  std::shared_ptr<const PreparedInputs> prepared_inputs() const {
    return prep_ != nullptr ? prep_->inputs : nullptr;
  }

  /// True iff Close() has run (explicitly or via early teardown).
  bool closed() const { return closed_; }

  /// Fills `*out` with a resumable snapshot of the region cursor (see
  /// progxe/checkpoint.h). Only valid on a healthy, open session at a
  /// region boundary with all flushed results delivered — returns false
  /// otherwise. `out->delivered` counts this incarnation's deliveries.
  bool ExportCheckpoint(SessionCheckpoint* out);

  /// True iff this session was opened from a checkpoint that actually
  /// skipped regions; such a session may deliver tuples outside its true
  /// local skyline (a suppressor from a skipped region is absent), so a
  /// merge layer must keep this session's own watermark in its release
  /// check instead of exempting it.
  bool resumed() const { return loop_ != nullptr && loop_->resumed(); }

  /// Join pairs the resume skipped re-generating / regions pre-removed
  /// (both 0 when not resumed).
  uint64_t replay_pairs_saved() const {
    return loop_ != nullptr ? loop_->replay_pairs_saved() : 0;
  }
  uint32_t resumed_regions_skipped() const {
    return loop_ != nullptr ? loop_->resumed_regions_skipped() : 0;
  }

 private:
  ProgXeSession() = default;

  /// Shared tail of Open/OpenPrepared: builds the region loop over the
  /// adopted prepared state.
  void StartLoop();

  /// Moves to the terminal error state: engine state freed (workers
  /// joined), undelivered results dropped, `status_` set.
  void Fail(Status status);

  ProgXeOptions options_;
  ProgXeStats stats_;
  std::unique_ptr<PreparedQuery> prep_;
  std::unique_ptr<RegionLoop> loop_;  // null for trivially-empty queries
  bool closed_ = false;
  Status status_;  // non-OK once failed

  /// Flushed-but-undelivered results: [pending_pos_, pending_.size()).
  std::vector<ResultTuple> pending_;
  size_t pending_pos_ = 0;
};

}  // namespace progxe
