// ProgXeSession: the pull-based incremental consumption API over the
// staged executor (PreparePhase + RegionLoop).
//
//   auto session = ProgXeSession::Open(query, options);   // validates, prepares
//   std::vector<ResultTuple> batch;
//   while ((*session)->NextBatch(100, &batch) > 0) {
//     ...  // every tuple is already guaranteed final — consume, render, ship
//   }
//
// NextBatch runs the engine only as far as needed to produce the next
// results, so a caller can interleave consumption with its own work, stop
// early at any point, or drive many sessions from one scheduler — while the
// result stream and every ProgXeStats counter stay bit-identical to a
// one-shot ProgXeExecutor::Run (which is itself a thin loop over a session).
#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "progxe/executor.h"
#include "progxe/prepare.h"
#include "progxe/region_loop.h"

namespace progxe {

class ProgXeSession {
 public:
  /// Validates the query and runs PreparePhase (push-through, contribution
  /// tables, grids, look-ahead). No join pair is generated yet. The
  /// relations behind `query` must outlive the session.
  static Result<std::unique_ptr<ProgXeSession>> Open(
      const SkyMapJoinQuery& query, ProgXeOptions options);

  ProgXeSession(const ProgXeSession&) = delete;
  ProgXeSession& operator=(const ProgXeSession&) = delete;

  /// Closes the session, then destroys it (workers joined, state freed).
  ~ProgXeSession();

  /// Advances the engine until at least one result is available (or the run
  /// finishes), then fills `*out` (cleared first) with up to `max_results`
  /// results — 0 means no per-call cap. Returns the number delivered;
  /// 0 iff Finished(). Results beyond the cap stay buffered for the next
  /// call, so the delivered stream is exactly the Run emission stream.
  size_t NextBatch(size_t max_results, std::vector<ResultTuple>* out);

  /// Budget-aware NextBatch — the scheduler's time slice. Advances the
  /// engine by at most ~`max_pairs` join pairs (0 = unbudgeted, identical
  /// to the two-argument form) and returns whatever results that work
  /// produced, up to `max_results`. Unlike the unbudgeted form it may
  /// return 0 while !Finished(): the slice ended mid-region (a *yield*) —
  /// the next call resumes at the same join pair without redoing work.
  /// Concatenating delivered batches over any sequence of budgets
  /// reproduces the Run emission stream and all ProgXeStats counters
  /// bit-identically.
  size_t NextBatch(size_t max_results, size_t max_pairs,
                   std::vector<ResultTuple>* out);

  /// Cooperatively tears the session down: joins any RegionJoinPipeline
  /// workers, releases the prepared query state and scratch buffers, and
  /// drops undelivered results. Finished() is true afterwards and further
  /// NextBatch calls deliver nothing. Idempotent; the destructor delegates
  /// here, so an explicit Close is only needed to reclaim resources (or
  /// worker threads) before the session object itself goes away.
  void Close();

  /// True once every result has been delivered (the run completed, hit
  /// options.max_results, or the query was provably empty) or the session
  /// was closed.
  bool Finished() const;

  /// Live counters; final once Finished() is true.
  const ProgXeStats& stats() const { return stats_; }

  const ProgXeOptions& options() const { return options_; }

  /// True iff Close() has run (explicitly or via early teardown).
  bool closed() const { return closed_; }

 private:
  ProgXeSession() = default;

  ProgXeOptions options_;
  ProgXeStats stats_;
  std::unique_ptr<PreparedQuery> prep_;
  std::unique_ptr<RegionLoop> loop_;  // null for trivially-empty queries
  bool closed_ = false;

  /// Flushed-but-undelivered results: [pending_pos_, pending_.size()).
  std::vector<ResultTuple> pending_;
  size_t pending_pos_ = 0;
};

}  // namespace progxe
