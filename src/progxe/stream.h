// ProgXeStream: the abstract consumption API of the ProgXe engine.
//
// Everything above the engine — QueryScheduler workers, ProgXeExecutor::Run,
// the harness, the CLI tools — drives queries through this budgeted pull
// interface and never names a concrete implementation. Two implementations
// exist today:
//
//   * ProgXeSession (progxe/session.h): one single-process engine instance,
//     the original pull API.
//   * ShardedStream (shard/sharded_stream.h): hash-partitions both sources
//     by join key into K disjoint shards, runs one sub-session per shard and
//     merges their locally-final outputs through a global finality check —
//     behind exactly this interface, so a sharded query is just another
//     stream behind a QueryHandle.
//
// The contract both implementations honor: every tuple delivered by
// NextBatch is guaranteed to belong to the query's final skyline (no
// retractions), the union of all deliveries is exactly that skyline, and
// slice boundaries (any sequence of budgets) never change the delivered
// result set.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "progxe/config.h"
#include "progxe/executor.h"

namespace progxe {

class WorkerPool;  // net/worker_pool.h

/// How a query is split across engine instances. `num_shards <= 1` selects
/// the single unsharded session; otherwise both sources are hash-partitioned
/// by join key into `num_shards` disjoint shards (an equi-join pair always
/// lands whole in one shard), each served by its own sub-session.
struct ShardOptions {
  int num_shards = 1;

  /// Fault containment (sharded stream only). A retryable sub-session
  /// failure quarantines just that shard; the stream re-opens it after an
  /// exponential backoff and replays it from scratch — safe because shards
  /// are deterministic and the merge sink deduplicates replayed deliveries,
  /// so the delivered set stays bit-identical to a fault-free run. This is
  /// the number of *consecutive* failures tolerated per shard before the
  /// retry budget is exhausted (a successful pump resets it); 0 disables
  /// retry. The PROGXE_FAULT_RETRIES environment variable, when set,
  /// overrides this — the CI soak uses it to make random fault schedules
  /// survivable without touching per-test options.
  int max_retries = 2;

  /// Backoff before the first re-open; doubles per consecutive failure
  /// (capped at 64x). During backoff a budgeted NextBatch yields (returns
  /// 0) so a scheduler can keep checking cancel/deadline; an unbudgeted
  /// call sleeps.
  std::chrono::milliseconds retry_backoff{1};

  /// Seeded jitter applied to each backoff as a ±fraction (0.25 = ±25%),
  /// derived deterministically from (options.seed, shard, failure count) so
  /// K simultaneously-sick shards spread their re-opens instead of
  /// synchronizing — and so a given seed always reproduces the same
  /// schedule. 0 disables jitter (exact exponential backoff).
  double retry_jitter = 0.25;

  /// Stream-wide retry budget: the total number of shard re-opens the
  /// stream may *commit to* across all shards and incarnations (each
  /// quarantine decision consumes one). Once spent, further failures are
  /// treated as retry exhaustion (abandon under allow_partial, else fail
  /// the stream) even if the per-shard max_retries budget remains.
  /// 0 = unlimited (per-shard budgets only).
  uint64_t max_total_retries = 0;

  /// What retry exhaustion means: false (default) fails the whole stream
  /// with the shard's error; true abandons the shard and lets the stream
  /// finish with partial coverage — the delivered set is then exactly the
  /// skyline of the *covered* shards' data (see ProgXeStream::coverage).
  bool allow_partial = false;

  /// Remote execution: shard-worker endpoints ("host:port"). Empty (the
  /// default) runs every sub-session in process. Non-empty runs each shard
  /// on a worker daemon (progxe_server --worker) behind the same per-shard
  /// seam: shard i's incarnation n dials workers[(i + n) % size], so a
  /// retry after a worker failure lands on a *different* engine. Transport
  /// failures (connection reset, heartbeat timeout) surface as retryable
  /// kUnavailable and ride the quarantine/retry machinery above; the
  /// delivered set stays bit-identical to the in-process run either way.
  std::vector<std::string> workers;

  /// Connection pool shared across streams (cached worker links survive
  /// query teardown). Null makes the stream create a private pool; the
  /// scheduler passes its process-wide one.
  std::shared_ptr<WorkerPool> worker_pool;

  /// Checkpointed retry (PR 10). When true (default) the stream captures a
  /// resumable SessionCheckpoint from each shard after every healthy pump
  /// and hands it to the re-opened incarnation, which pre-removes the
  /// checkpoint's skip-safe regions instead of replaying the whole
  /// sub-session — bounding replay pairs (and re-shipped bytes for remote
  /// shards on v2 links). The delivered set is bit-identical either way;
  /// the dedup set remains the safety net. False restores the PR 6
  /// from-scratch replay behavior.
  bool checkpoint_retry = true;
};

/// Which shards of a (possibly sharded) stream actually contributed to the
/// delivered result set. `complete()` on a healthy run; `abandoned > 0`
/// only under ShardOptions::allow_partial after a shard exhausted retries.
struct ShardCoverage {
  int shards = 1;      ///< Sub-streams planned.
  int completed = 0;   ///< Delivered everything.
  int abandoned = 0;   ///< Dropped after retry exhaustion (allow_partial).
  int remote = 0;      ///< Sub-streams served by remote shard workers.
  uint64_t retries = 0;  ///< Shard re-opens performed over the stream's life.
  /// Join pairs that checkpointed resumes skipped re-generating, summed
  /// over all re-opens (0 without ShardOptions::checkpoint_retry).
  uint64_t replay_pairs_saved = 0;
  std::vector<int> abandoned_shards;  ///< Indices of the dropped shards.

  bool complete() const { return abandoned == 0; }
  /// "completed/shards" plus retry and abandonment detail.
  std::string ToString() const;
};

/// Abstract budgeted pull stream over one SkyMapJoin query.
class ProgXeStream {
 public:
  virtual ~ProgXeStream();

  /// Advances the engine by at most ~`max_pairs` join pairs (0 = unbudgeted:
  /// run until at least one result is available or the query finishes) and
  /// fills `*out` (cleared first) with up to `max_results` guaranteed-final
  /// results (0 = no per-call cap). Returns the number delivered. A budgeted
  /// call may return 0 while !Finished(): the slice ended without anything
  /// becoming final (a *yield*) — the next call resumes without redoing
  /// work.
  virtual size_t NextBatch(size_t max_results, size_t max_pairs,
                           std::vector<ResultTuple>* out) = 0;

  /// Unbudgeted convenience form.
  size_t NextBatch(size_t max_results, std::vector<ResultTuple>* out) {
    return NextBatch(max_results, /*max_pairs=*/0, out);
  }

  /// Cooperatively tears the stream down: joins any worker threads and
  /// releases engine state; stats() stays readable. Finished() is true
  /// afterwards and further NextBatch calls deliver nothing. Idempotent.
  virtual void Close() = 0;

  /// True once every result has been delivered or the stream was closed.
  virtual bool Finished() const = 0;

  /// Live counters; final once Finished() is true. For a sharded stream
  /// these are the per-shard engine counters summed elementwise.
  virtual const ProgXeStats& stats() const = 0;

  /// The stream's error channel. OK while healthy; once a failure is not
  /// containable (a session fault, or a sharded stream out of retries
  /// without allow_partial) the stream moves to a *terminal error state*:
  /// Finished() is true, NextBatch delivers nothing more, and this returns
  /// the real failure — NextBatch's size_t alone cannot distinguish "done"
  /// from "died". Everything delivered before the failure remains valid
  /// (final results are final).
  virtual Status last_status() const = 0;

  /// Per-shard coverage of the delivered set. The base implementation
  /// (single session) reports one sub-stream, completed iff the stream
  /// finished healthy; ShardedStream reports real per-shard accounting.
  /// `!complete()` is exactly the partial-results case.
  virtual ShardCoverage coverage() const;
};

/// Opens the stream implementation `shards` selects: a plain ProgXeSession
/// for `num_shards <= 1` with no workers, a ShardedStream otherwise (a
/// worker list distributes even a single shard). This is the only
/// constructor the serving layer and tools use.
Result<std::unique_ptr<ProgXeStream>> OpenProgXeStream(
    const SkyMapJoinQuery& query, ProgXeOptions options,
    const ShardOptions& shards = {});

}  // namespace progxe
