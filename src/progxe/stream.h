// ProgXeStream: the abstract consumption API of the ProgXe engine.
//
// Everything above the engine — QueryScheduler workers, ProgXeExecutor::Run,
// the harness, the CLI tools — drives queries through this budgeted pull
// interface and never names a concrete implementation. Two implementations
// exist today:
//
//   * ProgXeSession (progxe/session.h): one single-process engine instance,
//     the original pull API.
//   * ShardedStream (shard/sharded_stream.h): hash-partitions both sources
//     by join key into K disjoint shards, runs one sub-session per shard and
//     merges their locally-final outputs through a global finality check —
//     behind exactly this interface, so a sharded query is just another
//     stream behind a QueryHandle.
//
// The contract both implementations honor: every tuple delivered by
// NextBatch is guaranteed to belong to the query's final skyline (no
// retractions), the union of all deliveries is exactly that skyline, and
// slice boundaries (any sequence of budgets) never change the delivered
// result set.
#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "progxe/config.h"
#include "progxe/executor.h"

namespace progxe {

/// How a query is split across engine instances. `num_shards <= 1` selects
/// the single unsharded session; otherwise both sources are hash-partitioned
/// by join key into `num_shards` disjoint shards (an equi-join pair always
/// lands whole in one shard), each served by its own sub-session.
struct ShardOptions {
  int num_shards = 1;
};

/// Abstract budgeted pull stream over one SkyMapJoin query.
class ProgXeStream {
 public:
  virtual ~ProgXeStream();

  /// Advances the engine by at most ~`max_pairs` join pairs (0 = unbudgeted:
  /// run until at least one result is available or the query finishes) and
  /// fills `*out` (cleared first) with up to `max_results` guaranteed-final
  /// results (0 = no per-call cap). Returns the number delivered. A budgeted
  /// call may return 0 while !Finished(): the slice ended without anything
  /// becoming final (a *yield*) — the next call resumes without redoing
  /// work.
  virtual size_t NextBatch(size_t max_results, size_t max_pairs,
                           std::vector<ResultTuple>* out) = 0;

  /// Unbudgeted convenience form.
  size_t NextBatch(size_t max_results, std::vector<ResultTuple>* out) {
    return NextBatch(max_results, /*max_pairs=*/0, out);
  }

  /// Cooperatively tears the stream down: joins any worker threads and
  /// releases engine state; stats() stays readable. Finished() is true
  /// afterwards and further NextBatch calls deliver nothing. Idempotent.
  virtual void Close() = 0;

  /// True once every result has been delivered or the stream was closed.
  virtual bool Finished() const = 0;

  /// Live counters; final once Finished() is true. For a sharded stream
  /// these are the per-shard engine counters summed elementwise.
  virtual const ProgXeStats& stats() const = 0;
};

/// Opens the stream implementation `shards` selects: a plain ProgXeSession
/// for `num_shards <= 1`, a ShardedStream otherwise. This is the only
/// constructor the serving layer and tools use.
Result<std::unique_ptr<ProgXeStream>> OpenProgXeStream(
    const SkyMapJoinQuery& query, ProgXeOptions options,
    const ShardOptions& shards = {});

}  // namespace progxe
