#include "query/parser.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/macros.h"

namespace progxe {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind {
  kIdent,
  kNumber,
  kComma,
  kDot,
  kStar,
  kPlus,
  kMinus,
  kEquals,
  kLParen,
  kRParen,
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // identifier (upper-cased copy in `upper`)
  std::string upper;  // for keyword checks
  double number = 0.0;
  size_t offset = 0;  // for error messages
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { Advance(); }

  const Token& Peek() const { return current_; }

  Token Take() {
    Token t = current_;
    Advance();
    return t;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " (near offset " +
                                   std::to_string(current_.offset) + ")");
  }

 private:
  void Advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    current_ = Token();
    current_.offset = pos_;
    if (pos_ >= text_.size()) {
      current_.kind = TokKind::kEnd;
      return;
    }
    const char c = text_[pos_];
    switch (c) {
      case ',':
        current_.kind = TokKind::kComma;
        ++pos_;
        return;
      case '.':
        current_.kind = TokKind::kDot;
        ++pos_;
        return;
      case '*':
        current_.kind = TokKind::kStar;
        ++pos_;
        return;
      case '+':
        current_.kind = TokKind::kPlus;
        ++pos_;
        return;
      case '-':
        current_.kind = TokKind::kMinus;
        ++pos_;
        return;
      case '=':
        current_.kind = TokKind::kEquals;
        ++pos_;
        return;
      case '(':
        current_.kind = TokKind::kLParen;
        ++pos_;
        return;
      case ')':
        current_.kind = TokKind::kRParen;
        ++pos_;
        return;
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t end = pos_;
      while (end < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[end])) ||
              text_[end] == '.' || text_[end] == 'e' || text_[end] == 'E' ||
              ((text_[end] == '+' || text_[end] == '-') && end > pos_ &&
               (text_[end - 1] == 'e' || text_[end - 1] == 'E')))) {
        ++end;
      }
      current_.kind = TokKind::kNumber;
      current_.number = std::atof(text_.substr(pos_, end - pos_).c_str());
      pos_ = end;
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t end = pos_;
      while (end < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[end])) ||
              text_[end] == '_')) {
        ++end;
      }
      current_.kind = TokKind::kIdent;
      current_.text = text_.substr(pos_, end - pos_);
      current_.upper = current_.text;
      std::transform(current_.upper.begin(), current_.upper.end(),
                     current_.upper.begin(),
                     [](unsigned char ch) { return std::toupper(ch); });
      pos_ = end;
      return;
    }
    // Unknown character; represent as end so the parser reports an error.
    current_.kind = TokKind::kEnd;
  }

  const std::string& text_;
  size_t pos_ = 0;
  Token current_;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  Parser(const std::string& text,
         const std::map<std::string, const Schema*>& catalog)
      : lexer_(text), catalog_(catalog) {}

  Result<ParsedQuery> Parse() {
    PROGXE_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    // FROM must be parsed before select expressions can resolve aliases, so
    // scan ahead is avoided by parsing select items into an untyped form?
    // Simpler: the grammar is LL(1) if we parse select items lazily — but
    // alias resolution needs FROM. We instead parse the select list
    // *syntactically* first, then FROM, then resolve.
    PROGXE_RETURN_NOT_OK(ParseSelectListSyntax());
    PROGXE_RETURN_NOT_OK(ExpectKeyword("FROM"));
    PROGXE_RETURN_NOT_OK(ParseFromList());
    PROGXE_RETURN_NOT_OK(ExpectKeyword("WHERE"));
    PROGXE_RETURN_NOT_OK(ParseJoinCondition());
    PROGXE_RETURN_NOT_OK(ExpectKeyword("PREFERRING"));
    PROGXE_RETURN_NOT_OK(ParsePreferences());
    if (lexer_.Peek().kind != TokKind::kEnd) {
      return lexer_.Error("unexpected trailing input");
    }
    PROGXE_RETURN_NOT_OK(ResolveSelectList());
    PROGXE_RETURN_NOT_OK(ResolvePreferences());
    return std::move(query_);
  }

 private:
  // --- Syntactic select-list capture ---------------------------------------

  struct RawTerm {
    double weight = 1.0;
    std::string alias;  // empty => constant
    std::string attr;
  };
  struct RawExpr {
    std::vector<RawTerm> terms;
    double constant = 0.0;
    Transform transform = Transform::kIdentity;
  };
  struct RawSelectItem {
    bool is_id = false;
    std::string alias;  // for is_id items
    RawExpr expr;
    std::string name;  // AS name
  };

  Status ExpectKeyword(const std::string& kw) {
    const Token& t = lexer_.Peek();
    if (t.kind != TokKind::kIdent || t.upper != kw) {
      return lexer_.Error("expected keyword " + kw);
    }
    lexer_.Take();
    return Status::OK();
  }

  bool PeekKeyword(const std::string& kw) const {
    const Token& t = lexer_.Peek();
    return t.kind == TokKind::kIdent && t.upper == kw;
  }

  Status ParseSelectListSyntax() {
    for (;;) {
      RawSelectItem item;
      PROGXE_RETURN_NOT_OK(ParseSelectItem(&item));
      select_items_.push_back(std::move(item));
      if (lexer_.Peek().kind == TokKind::kComma) {
        lexer_.Take();
        continue;
      }
      break;
    }
    if (select_items_.empty()) {
      return Status::InvalidArgument("empty select list");
    }
    return Status::OK();
  }

  Status ParseSelectItem(RawSelectItem* item) {
    // alias '.' id  — peek two tokens ahead is awkward; parse an expr and
    // detect the id special case: a bare `alias . id` with no AS clause.
    const Token& t = lexer_.Peek();
    if (t.kind == TokKind::kIdent && !IsTransformName(t.upper) &&
        t.upper != "AS") {
      // Could be `alias.id` or the first term of an expression.
      Token ident = lexer_.Take();
      if (lexer_.Peek().kind == TokKind::kDot) {
        lexer_.Take();
        const Token attr = lexer_.Take();
        if (attr.kind != TokKind::kIdent) {
          return lexer_.Error("expected attribute after '.'");
        }
        if (attr.upper == "ID" && !PeekKeyword("AS") &&
            lexer_.Peek().kind != TokKind::kPlus &&
            lexer_.Peek().kind != TokKind::kMinus) {
          item->is_id = true;
          item->alias = ident.text;
          return Status::OK();
        }
        // Not an id passthrough: it is the first term `alias.attr ...`.
        RawExpr expr;
        expr.terms.push_back(RawTerm{1.0, ident.text, attr.text});
        PROGXE_RETURN_NOT_OK(ParseExprTail(&expr));
        return FinishSelectExpr(std::move(expr), item);
      }
      return lexer_.Error("expected '.' after identifier in select list");
    }
    RawExpr expr;
    PROGXE_RETURN_NOT_OK(ParseExpr(&expr));
    return FinishSelectExpr(std::move(expr), item);
  }

  Status FinishSelectExpr(RawExpr expr, RawSelectItem* item) {
    PROGXE_RETURN_NOT_OK(ExpectKeyword("AS"));
    const Token name = lexer_.Take();
    if (name.kind != TokKind::kIdent) {
      return lexer_.Error("expected output name after AS");
    }
    item->is_id = false;
    item->expr = std::move(expr);
    item->name = name.text;
    return Status::OK();
  }

  static bool IsTransformName(const std::string& upper) {
    return upper == "LOG1P" || upper == "SQRT" || upper == "SAT";
  }

  Status ParseExpr(RawExpr* expr) {
    const Token& t = lexer_.Peek();
    if (t.kind == TokKind::kIdent && IsTransformName(t.upper)) {
      const Token fn = lexer_.Take();
      if (lexer_.Take().kind != TokKind::kLParen) {
        return lexer_.Error("expected '(' after " + fn.text);
      }
      PROGXE_RETURN_NOT_OK(ParseExpr(expr));
      if (lexer_.Take().kind != TokKind::kRParen) {
        return lexer_.Error("expected ')' closing " + fn.text);
      }
      if (fn.upper == "LOG1P") expr->transform = Transform::kLog1p;
      if (fn.upper == "SQRT") expr->transform = Transform::kSqrt;
      if (fn.upper == "SAT") expr->transform = Transform::kSaturating;
      return Status::OK();
    }
    const bool parenthesized = t.kind == TokKind::kLParen;
    if (parenthesized) lexer_.Take();
    PROGXE_RETURN_NOT_OK(ParseTerm(expr, /*negate=*/false));
    PROGXE_RETURN_NOT_OK(ParseExprTail(expr));
    if (parenthesized) {
      if (lexer_.Take().kind != TokKind::kRParen) {
        return lexer_.Error("expected ')'");
      }
    }
    return Status::OK();
  }

  Status ParseExprTail(RawExpr* expr) {
    for (;;) {
      const TokKind kind = lexer_.Peek().kind;
      if (kind == TokKind::kPlus) {
        lexer_.Take();
        PROGXE_RETURN_NOT_OK(ParseTerm(expr, /*negate=*/false));
      } else if (kind == TokKind::kMinus) {
        lexer_.Take();
        PROGXE_RETURN_NOT_OK(ParseTerm(expr, /*negate=*/true));
      } else {
        return Status::OK();
      }
    }
  }

  Status ParseTerm(RawExpr* expr, bool negate) {
    const double sign = negate ? -1.0 : 1.0;
    Token t = lexer_.Take();
    if (t.kind == TokKind::kNumber) {
      if (lexer_.Peek().kind == TokKind::kStar) {
        lexer_.Take();
        const Token alias = lexer_.Take();
        if (alias.kind != TokKind::kIdent ||
            lexer_.Take().kind != TokKind::kDot) {
          return lexer_.Error("expected alias.attr after '*'");
        }
        const Token attr = lexer_.Take();
        if (attr.kind != TokKind::kIdent) {
          return lexer_.Error("expected attribute after '.'");
        }
        expr->terms.push_back(
            RawTerm{sign * t.number, alias.text, attr.text});
        return Status::OK();
      }
      expr->constant += sign * t.number;
      return Status::OK();
    }
    if (t.kind == TokKind::kIdent) {
      if (lexer_.Take().kind != TokKind::kDot) {
        return lexer_.Error("expected '.' after alias " + t.text);
      }
      const Token attr = lexer_.Take();
      if (attr.kind != TokKind::kIdent) {
        return lexer_.Error("expected attribute after '.'");
      }
      expr->terms.push_back(RawTerm{sign, t.text, attr.text});
      return Status::OK();
    }
    return lexer_.Error("expected term");
  }

  // --- FROM / WHERE / PREFERRING -------------------------------------------

  Status ParseFromList() {
    auto one = [&](std::string* table, std::string* alias) -> Status {
      const Token t = lexer_.Take();
      if (t.kind != TokKind::kIdent) return lexer_.Error("expected table");
      *table = t.text;
      const Token a = lexer_.Take();
      if (a.kind != TokKind::kIdent) return lexer_.Error("expected alias");
      *alias = a.text;
      return Status::OK();
    };
    PROGXE_RETURN_NOT_OK(one(&query_.r_table, &query_.r_alias));
    if (lexer_.Take().kind != TokKind::kComma) {
      return lexer_.Error("SkyMapJoin queries take exactly two sources");
    }
    PROGXE_RETURN_NOT_OK(one(&query_.t_table, &query_.t_alias));
    if (query_.r_alias == query_.t_alias) {
      return Status::InvalidArgument("source aliases must differ");
    }
    return Status::OK();
  }

  Status ParseJoinCondition() {
    auto side = [&](std::string* alias, std::string* attr) -> Status {
      const Token a = lexer_.Take();
      if (a.kind != TokKind::kIdent || lexer_.Take().kind != TokKind::kDot) {
        return lexer_.Error("expected alias.attr in join condition");
      }
      const Token at = lexer_.Take();
      if (at.kind != TokKind::kIdent) {
        return lexer_.Error("expected attribute in join condition");
      }
      *alias = a.text;
      *attr = at.text;
      return Status::OK();
    };
    std::string la, lattr, ra, rattr;
    PROGXE_RETURN_NOT_OK(side(&la, &lattr));
    if (lexer_.Take().kind != TokKind::kEquals) {
      return lexer_.Error("expected '=' in join condition");
    }
    PROGXE_RETURN_NOT_OK(side(&ra, &rattr));
    if (la == query_.r_alias && ra == query_.t_alias) {
      query_.r_join_attr = lattr;
      query_.t_join_attr = rattr;
    } else if (la == query_.t_alias && ra == query_.r_alias) {
      query_.r_join_attr = rattr;
      query_.t_join_attr = lattr;
    } else {
      return Status::InvalidArgument(
          "join condition must reference both source aliases");
    }
    return Status::OK();
  }

  Status ParsePreferences() {
    for (;;) {
      const Token dir = lexer_.Take();
      if (dir.kind != TokKind::kIdent ||
          (dir.upper != "LOWEST" && dir.upper != "HIGHEST")) {
        return lexer_.Error("expected LOWEST or HIGHEST");
      }
      if (lexer_.Take().kind != TokKind::kLParen) {
        return lexer_.Error("expected '(' after preference direction");
      }
      const Token name = lexer_.Take();
      if (name.kind != TokKind::kIdent) {
        return lexer_.Error("expected output name in preference");
      }
      if (lexer_.Take().kind != TokKind::kRParen) {
        return lexer_.Error("expected ')' in preference");
      }
      pref_names_.push_back(name.text);
      pref_dirs_.push_back(dir.upper == "LOWEST" ? Direction::kLowest
                                                 : Direction::kHighest);
      if (PeekKeyword("AND")) {
        lexer_.Take();
        continue;
      }
      break;
    }
    return Status::OK();
  }

  // --- Resolution ------------------------------------------------------------

  Result<const Schema*> SchemaFor(const std::string& table) const {
    auto it = catalog_.find(table);
    if (it == catalog_.end()) {
      return Status::NotFound("table '" + table + "' not in catalog");
    }
    return it->second;
  }

  Status ResolveSelectList() {
    PROGXE_ASSIGN_OR_RETURN(const Schema* r_schema,
                            SchemaFor(query_.r_table));
    PROGXE_ASSIGN_OR_RETURN(const Schema* t_schema,
                            SchemaFor(query_.t_table));
    std::vector<MapFunc> funcs;
    for (const RawSelectItem& item : select_items_) {
      if (item.is_id) {
        if (item.alias == query_.r_alias) {
          query_.select_r_id = true;
        } else if (item.alias == query_.t_alias) {
          query_.select_t_id = true;
        } else {
          return Status::InvalidArgument("unknown alias '" + item.alias +
                                         "' in select list");
        }
        continue;
      }
      std::vector<MapTerm> terms;
      for (const RawTerm& raw : item.expr.terms) {
        Side side;
        const Schema* schema;
        if (raw.alias == query_.r_alias) {
          side = Side::kR;
          schema = r_schema;
        } else if (raw.alias == query_.t_alias) {
          side = Side::kT;
          schema = t_schema;
        } else {
          return Status::InvalidArgument("unknown alias '" + raw.alias +
                                         "' in expression");
        }
        PROGXE_ASSIGN_OR_RETURN(int index, schema->IndexOf(raw.attr));
        terms.push_back(MapTerm{side, index, raw.weight});
      }
      funcs.push_back(MapFunc(std::move(terms), item.expr.constant,
                              item.expr.transform, item.name));
      query_.output_names.push_back(item.name);
    }
    if (funcs.empty()) {
      return Status::InvalidArgument(
          "select list has no mapped outputs (nothing to prefer over)");
    }
    query_.map = MapSpec(std::move(funcs));
    return Status::OK();
  }

  Status ResolvePreferences() {
    // PREFERRING must name exactly the mapped outputs; reorder directions
    // into select-list order.
    if (pref_names_.size() != query_.output_names.size()) {
      return Status::InvalidArgument(
          "PREFERRING must name every mapped output exactly once");
    }
    std::vector<Direction> dirs(query_.output_names.size());
    std::vector<bool> used(pref_names_.size(), false);
    for (size_t out = 0; out < query_.output_names.size(); ++out) {
      bool found = false;
      for (size_t p = 0; p < pref_names_.size(); ++p) {
        if (!used[p] && pref_names_[p] == query_.output_names[out]) {
          dirs[out] = pref_dirs_[p];
          used[p] = true;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument("output '" +
                                       query_.output_names[out] +
                                       "' missing from PREFERRING");
      }
    }
    query_.pref = Preference(std::move(dirs));
    return Status::OK();
  }

  Lexer lexer_;
  const std::map<std::string, const Schema*>& catalog_;
  ParsedQuery query_;
  std::vector<RawSelectItem> select_items_;
  std::vector<std::string> pref_names_;
  std::vector<Direction> pref_dirs_;
};

}  // namespace

Result<ParsedQuery> ParseSmjQuery(
    const std::string& text,
    const std::map<std::string, const Schema*>& catalog) {
  Parser parser(text, catalog);
  return parser.Parse();
}

Result<SkyMapJoinQuery> BindQuery(
    const ParsedQuery& parsed,
    const std::map<std::string, const Relation*>& tables) {
  auto find = [&](const std::string& name) -> Result<const Relation*> {
    auto it = tables.find(name);
    if (it == tables.end()) {
      return Status::NotFound("relation '" + name + "' not bound");
    }
    return it->second;
  };
  PROGXE_ASSIGN_OR_RETURN(const Relation* r, find(parsed.r_table));
  PROGXE_ASSIGN_OR_RETURN(const Relation* t, find(parsed.t_table));

  // The join condition must use each relation's join attribute: tuples only
  // carry one join key column.
  if (parsed.r_join_attr != r->schema().join_name()) {
    return Status::InvalidArgument(
        "join attribute '" + parsed.r_join_attr + "' is not " +
        parsed.r_table + "'s join column ('" + r->schema().join_name() +
        "')");
  }
  if (parsed.t_join_attr != t->schema().join_name()) {
    return Status::InvalidArgument(
        "join attribute '" + parsed.t_join_attr + "' is not " +
        parsed.t_table + "'s join column ('" + t->schema().join_name() +
        "')");
  }

  SkyMapJoinQuery query;
  query.r = r;
  query.t = t;
  query.map = parsed.map;
  query.pref = parsed.pref;
  PROGXE_RETURN_NOT_OK(
      query.map.Validate(r->num_attributes(), t->num_attributes()));
  return query;
}

Result<SkyMapJoinQuery> CompileSmjQuery(
    const std::string& text,
    const std::map<std::string, const Relation*>& tables) {
  std::map<std::string, const Schema*> catalog;
  for (const auto& [name, rel] : tables) {
    catalog[name] = &rel->schema();
  }
  PROGXE_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseSmjQuery(text, catalog));
  return BindQuery(parsed, tables);
}

}  // namespace progxe
