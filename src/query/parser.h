// Textual interface for SkyMapJoin queries, in the paper's own syntax
// (Figure 1.a / query Q1):
//
//   SELECT R.id, T.id,
//          (R.uPrice + T.uShipCost)     AS tCost,
//          (2 * R.manTime + T.shipTime) AS delay
//   FROM   Suppliers R, Transporters T
//   WHERE  R.country = T.country
//   PREFERRING LOWEST(tCost) AND LOWEST(delay)
//
// Supported grammar (case-insensitive keywords):
//
//   query      := SELECT select_list FROM from_list WHERE join_cond
//                 PREFERRING pref_list
//   select_list:= select_item (',' select_item)*
//   select_item:= alias '.' 'id'                    -- id passthrough
//               | expr AS ident                     -- mapped output
//   expr       := ['('] term (('+'|'-') term)* [')']
//               | func '(' expr ')'                 -- LOG1P, SQRT, SAT
//   term       := [number '*'] alias '.' ident | number
//   from_list  := table alias ',' table alias
//   join_cond  := alias '.' ident '=' alias '.' ident
//   pref_list  := pref (AND pref)*
//   pref       := (LOWEST | HIGHEST) '(' ident ')'
//
// Expressions must be *separable* (linear in the two sources' attributes,
// optionally wrapped in one monotone function) — exactly the MapFunc class
// of mapping/map_expr.h. Every output named in PREFERRING must be a
// select-list alias and vice versa.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/relation.h"
#include "mapping/map_expr.h"
#include "prefs/preference.h"
#include "progxe/executor.h"

namespace progxe {

/// A parsed (but not yet bound) SMJ query.
struct ParsedQuery {
  /// FROM entries, in order: (table name, alias).
  std::string r_table;
  std::string r_alias;
  std::string t_table;
  std::string t_alias;
  /// Join condition attribute names, per side.
  std::string r_join_attr;
  std::string t_join_attr;
  /// Mapped outputs in select-list order (names match `pref` order).
  std::vector<std::string> output_names;
  MapSpec map;
  Preference pref;
  /// True iff "alias.id" appeared in the select list for each side.
  bool select_r_id = false;
  bool select_t_id = false;
};

/// Parses query text. Attribute indices inside the MapSpec refer to the
/// catalog schemas, which must therefore be supplied here.
Result<ParsedQuery> ParseSmjQuery(
    const std::string& text,
    const std::map<std::string, const Schema*>& catalog);

/// Binds a parsed query against concrete relations (keyed by *table name*)
/// into an executable SkyMapJoinQuery. Validates that the join condition
/// uses each relation's join attribute.
Result<SkyMapJoinQuery> BindQuery(
    const ParsedQuery& parsed,
    const std::map<std::string, const Relation*>& tables);

/// One-call convenience: parse + bind.
Result<SkyMapJoinQuery> CompileSmjQuery(
    const std::string& text,
    const std::map<std::string, const Relation*>& tables);

}  // namespace progxe
