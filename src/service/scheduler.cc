#include "service/scheduler.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "common/fault_injection.h"
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "mapping/canonical.h"
#include "net/net_stats.h"
#include "net/worker_pool.h"
#include "obs/trace.h"
#include "progxe/prepare_cache.h"

namespace progxe {

const char* FairnessPolicyName(FairnessPolicy policy) {
  switch (policy) {
    case FairnessPolicy::kRoundRobin:
      return "round_robin";
    case FairnessPolicy::kWeightedFair:
      return "weighted_fair";
  }
  return "?";
}

bool FairnessPolicyFromName(std::string_view name, FairnessPolicy* out) {
  if (name == "rr" || name == "round_robin") {
    *out = FairnessPolicy::kRoundRobin;
    return true;
  }
  if (name == "wf" || name == "weighted_fair") {
    *out = FairnessPolicy::kWeightedFair;
    return true;
  }
  return false;
}

const char* QueryStateName(QueryState state) {
  switch (state) {
    case QueryState::kQueued:
      return "queued";
    case QueryState::kRunning:
      return "running";
    case QueryState::kFinished:
      return "finished";
    case QueryState::kCancelled:
      return "cancelled";
    case QueryState::kFailed:
      return "failed";
    case QueryState::kDeadlineExceeded:
      return "deadline_exceeded";
    case QueryState::kPartial:
      return "partial";
  }
  return "?";
}

bool QueryStateFromName(std::string_view name, QueryState* out) {
  for (QueryState state :
       {QueryState::kQueued, QueryState::kRunning, QueryState::kFinished,
        QueryState::kCancelled, QueryState::kFailed,
        QueryState::kDeadlineExceeded, QueryState::kPartial}) {
    if (name == QueryStateName(state)) {
      *out = state;
      return true;
    }
  }
  return false;
}

size_t SchedulerStats::SliceLatencyBucket(uint64_t us) {
  size_t bucket = 0;
  while (us != 0 && bucket + 1 < kSliceLatencyBuckets) {
    us >>= 1;
    ++bucket;
  }
  return bucket;
}

uint64_t SchedulerStats::SliceLatencyQuantileUs(double q) const {
  uint64_t total = 0;
  for (uint64_t c : slice_latency_us_log2) total += c;
  if (total == 0) return 0;
  const double rank = q * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t b = 0; b < kSliceLatencyBuckets; ++b) {
    seen += slice_latency_us_log2[b];
    if (static_cast<double>(seen) >= rank) {
      return uint64_t{1} << b;  // exclusive upper edge of bucket b
    }
  }
  return uint64_t{1} << (kSliceLatencyBuckets - 1);
}

std::string SchedulerStats::FormatFields() const {
  std::ostringstream os;
  os << "queued=" << queued << " running=" << running
     << " submitted=" << submitted << " finished=" << finished
     << " cancelled=" << cancelled << " failed=" << failed
     << " deadline_exceeded=" << deadline_exceeded << " partial=" << partial
     << " slices=" << slices
     << " sliced_pairs=" << sliced_pairs << " batches=" << batches
     << " results=" << results << " shard_retries=" << shard_retries
     << " shards_abandoned=" << shards_abandoned
     << " prepare_hits=" << prepare_hits
     << " prepare_misses=" << prepare_misses
     << " prepare_evictions=" << prepare_evictions
     << " prepare_cache_entries=" << prepare_cache_entries
     << " prepare_cache_bytes=" << prepare_cache_bytes
     << " net_bytes_sent=" << net_bytes_sent
     << " net_bytes_received=" << net_bytes_received
     << " net_frames_sent=" << net_frames_sent
     << " net_frames_received=" << net_frames_received
     << " net_rtt_count=" << net_rtt_count
     << " net_rtt_p50_us<" << net_rtt_p50_us
     << " net_rtt_p99_us<" << net_rtt_p99_us
     << " slice_p50_us<" << SliceLatencyQuantileUs(0.5)
     << " slice_p99_us<" << SliceLatencyQuantileUs(0.99)
     << " slice_lat_us_log2=[";
  for (size_t b = 0; b < kSliceLatencyBuckets; ++b) {
    os << (b == 0 ? "" : ",") << slice_latency_us_log2[b];
  }
  os << "]";
  return os.str();
}

std::string SchedulerStats::ToString() const {
  return "SchedulerStats{" + FormatFields() + "}";
}

std::string QueryProgress::ToString() const {
  std::ostringstream os;
  os << "QueryProgress{state=" << QueryStateName(state) << " phase=" << phase
     << " regions=" << regions_done << "/" << regions_total
     << " pairs=" << pairs_processed << " delivered=" << results_delivered
     << " ttfr_s=";
  if (ttfr_seconds < 0.0) {
    os << "-";
  } else {
    os << ttfr_seconds;
  }
  os << " coverage=" << shards_completed << "/" << shards;
  if (shards_remote > 0) os << " remote=" << shards_remote;
  if (shards_abandoned > 0) os << " abandoned=" << shards_abandoned;
  os << "}";
  return os.str();
}

QuerySink::~QuerySink() = default;

namespace service_internal {

using Clock = std::chrono::steady_clock;

/// Virtual-time granularity of the stride scheduler: a weight-1 query's
/// pass advances by this much per slice.
constexpr uint64_t kStrideScale = 1 << 16;

struct QueryRecord {
  uint64_t id = 0;
  SkyMapJoinQuery spec;
  ProgXeOptions options;
  ShardOptions shards;
  QuerySink* sink = nullptr;

  /// Stride-scheduling state (kWeightedFair): pass advances by stride per
  /// slice; the smallest pass runs next.
  uint64_t stride = kStrideScale;
  uint64_t pass = 0;

  /// Wall-clock expiry; only meaningful when `has_deadline`.
  bool has_deadline = false;
  Clock::time_point deadline;

  std::atomic<QueryState> state{QueryState::kQueued};
  std::atomic<bool> cancel{false};
  /// True while the record sits in SchedulerCore::waiting. Guarded by the
  /// core mutex; together with `cancel` (only ever set under that mutex)
  /// it keeps SchedulerCore::cancelled_waiting exact.
  bool in_waiting = false;

  /// Terminal outputs; written by the finishing thread before the terminal
  /// state is published (release), read by handles after observing it
  /// (acquire).
  Status status;
  ProgXeStats final_stats;
  ShardCoverage final_coverage;

  /// Cross-query reuse: when `retain_results`, every delivered batch is
  /// also appended to `retained` so later submissions can seed from this
  /// query's accepted frontier. Written only by the slicing worker; a
  /// child's admission reads it only after observing this record's
  /// terminal state (acquire), pairing with the release in FinishQuery.
  bool retain_results = false;
  std::vector<ResultTuple> retained;
  /// Frontier donor; set iff `seed_from_parent`, dropped at admission.
  std::shared_ptr<QueryRecord> parent;
  bool seed_from_parent = false;

  std::unique_ptr<ProgXeStream> stream;  // open while kRunning

  /// Progress introspection (QueryHandle::progress()): relaxed snapshots
  /// written only by the worker currently holding this record — at
  /// admission, after every slice, and once more before the terminal state
  /// publishes — and read concurrently by any handle thread.
  Clock::time_point submit_time;
  std::atomic<bool> preparing{false};  // admission open in flight
  std::atomic<size_t> progress_regions_total{0};
  std::atomic<size_t> progress_regions_done{0};
  std::atomic<uint64_t> progress_pairs{0};
  std::atomic<uint64_t> progress_results{0};
  std::atomic<double> ttfr_seconds{-1.0};
  std::atomic<size_t> progress_shards{0};
  std::atomic<size_t> progress_shards_completed{0};
  std::atomic<size_t> progress_shards_abandoned{0};
  std::atomic<size_t> progress_shards_remote{0};

  /// Refreshes the snapshot from live stream counters; the caller must be
  /// the worker that owns the stream right now.
  void UpdateProgress(const ProgXeStats& s, const ShardCoverage& cov) {
    progress_regions_total.store(s.regions_created - s.regions_pruned_lookahead,
                                 std::memory_order_relaxed);
    progress_regions_done.store(s.regions_processed +
                                    s.regions_discarded_runtime +
                                    s.regions_discarded_seed,
                                std::memory_order_relaxed);
    progress_pairs.store(s.join_pairs_generated, std::memory_order_relaxed);
    progress_shards.store(static_cast<size_t>(cov.shards),
                          std::memory_order_relaxed);
    progress_shards_completed.store(static_cast<size_t>(cov.completed),
                                    std::memory_order_relaxed);
    progress_shards_abandoned.store(static_cast<size_t>(cov.abandoned),
                                    std::memory_order_relaxed);
    progress_shards_remote.store(static_cast<size_t>(cov.remote),
                                 std::memory_order_relaxed);
  }

  bool Expired(Clock::time_point now) const {
    return has_deadline && now >= deadline;
  }
};

using RecordPtr = std::shared_ptr<QueryRecord>;

struct SchedulerCore {
  ServiceOptions options;
  /// Cross-query prepared-state cache; null when either budget is 0.
  /// Internally synchronized — never touched under `mtx` except stats().
  std::shared_ptr<PrepareCache> prepare_cache;
  /// Process-wide worker connection pool, created lazily at the first
  /// Submit carrying worker endpoints (under `mtx`) and stamped onto every
  /// remote query — cached worker links outlive any one query, the
  /// cross-query reuse the transport is built for. Internally synchronized.
  std::shared_ptr<WorkerPool> worker_pool;

  std::mutex mtx;
  std::condition_variable work_cv;  // workers: new work / freed slot / stop
  std::condition_variable done_cv;  // Wait()/Drain(): a query went terminal
  bool stop = false;

  uint64_t next_id = 1;
  size_t live = 0;    // submitted, not yet terminal
  size_t active = 0;  // admitted (slot held), not yet terminal
  uint64_t virtual_time = 0;  // pass floor for newly admitted queries

  std::deque<RecordPtr> waiting;  // admission queue, FIFO
  std::deque<RecordPtr> ready;    // runnable; deque for RR, min-heap for WF
  /// Number of `waiting` entries with `cancel` set — an O(1) stand-in for
  /// scanning the queue in the worker wake predicate.
  size_t cancelled_waiting = 0;
  /// Number of `waiting` entries carrying a deadline: when positive,
  /// sleeping workers use a timed wait so waiting-room expiry is noticed
  /// without any other activity.
  size_t deadlined_waiting = 0;

  // SchedulerStats counters (monotonic; guarded by mtx).
  uint64_t submitted = 0;
  uint64_t finished = 0;
  uint64_t cancelled = 0;
  uint64_t failed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t partial = 0;
  uint64_t slices = 0;
  uint64_t sliced_pairs = 0;
  uint64_t batches = 0;
  uint64_t results = 0;
  uint64_t shard_retries = 0;
  uint64_t shards_abandoned = 0;
  std::array<uint64_t, SchedulerStats::kSliceLatencyBuckets>
      slice_latency_us_log2{};
};

namespace {

/// Min-heap order on (pass, id): ties resolve to the earlier submission so
/// the weighted-fair pick is deterministic.
bool PassGreater(const RecordPtr& a, const RecordPtr& b) {
  return a->pass != b->pass ? a->pass > b->pass : a->id > b->id;
}

/// Structural equality of two map specs: same output dimensionality and,
/// per dimension, the same constant, transform and ordered term list.
/// Pointer-identical sources plus this check are what make a parent's
/// accepted frontier a set of genuine output points of the child query —
/// and therefore sound discard witnesses (preference directions may
/// differ; the seed is folded with the child's own mapper).
bool SameMapSpec(const MapSpec& a, const MapSpec& b) {
  if (a.output_dimensions() != b.output_dimensions()) return false;
  for (int j = 0; j < a.output_dimensions(); ++j) {
    const MapFunc& fa = a.func(j);
    const MapFunc& fb = b.func(j);
    if (fa.constant() != fb.constant() || fa.transform() != fb.transform() ||
        fa.terms().size() != fb.terms().size()) {
      return false;
    }
    for (size_t i = 0; i < fa.terms().size(); ++i) {
      const MapTerm& ta = fa.terms()[i];
      const MapTerm& tb = fb.terms()[i];
      if (ta.side != tb.side || ta.attr_index != tb.attr_index ||
          ta.weight != tb.weight) {
        return false;
      }
    }
  }
  return true;
}

/// Classifying regions against the seed costs O(regions x points) at the
/// child's open; past a few hundred witnesses the extra discard power is
/// negligible while the scan cost keeps growing, so large frontiers are
/// thinned by an even deterministic stride (any subset of genuine outputs
/// is equally sound).
constexpr size_t kMaxSeedPoints = 256;

/// Folds a donor query's retained (user-space) results into the child's
/// canonical space for region seeding.
std::shared_ptr<const RefinementSeed> BuildRefinementSeed(
    const SkyMapJoinQuery& spec, const std::vector<ResultTuple>& retained) {
  const CanonicalMapper mapper(spec.map, spec.pref);
  const int k = mapper.output_dimensions();
  auto seed = std::make_shared<RefinementSeed>();
  seed->k = k;
  const size_t stride =
      retained.size() > kMaxSeedPoints
          ? (retained.size() + kMaxSeedPoints - 1) / kMaxSeedPoints
          : 1;
  seed->canonical.reserve((retained.size() / stride + 1) *
                          static_cast<size_t>(k));
  for (size_t i = 0; i < retained.size(); i += stride) {
    const ResultTuple& tuple = retained[i];
    for (int j = 0; j < k; ++j) {
      seed->canonical.push_back(
          mapper.Canonicalize(j, tuple.values[static_cast<size_t>(j)]));
    }
  }
  return seed;
}

bool HasFreeSlot(const SchedulerCore& core) {
  return core.options.max_concurrent == 0 ||
         core.active < core.options.max_concurrent;
}

void EnqueueReady(SchedulerCore* core, RecordPtr rec) {
  core->ready.push_back(std::move(rec));
  if (core->options.policy == FairnessPolicy::kWeightedFair) {
    std::push_heap(core->ready.begin(), core->ready.end(), PassGreater);
  }
}

RecordPtr PopReady(SchedulerCore* core) {
  if (core->options.policy == FairnessPolicy::kWeightedFair) {
    std::pop_heap(core->ready.begin(), core->ready.end(), PassGreater);
  }
  RecordPtr rec;
  if (core->options.policy == FairnessPolicy::kWeightedFair) {
    rec = std::move(core->ready.back());
    core->ready.pop_back();
    core->virtual_time = rec->pass;
  } else {
    rec = std::move(core->ready.front());
    core->ready.pop_front();
  }
  return rec;
}

/// Bumps the terminal-outcome counter matching `state`. Caller holds mtx.
void CountTerminal(SchedulerCore* core, QueryState state) {
  switch (state) {
    case QueryState::kFinished:
      ++core->finished;
      break;
    case QueryState::kCancelled:
      ++core->cancelled;
      break;
    case QueryState::kFailed:
      ++core->failed;
      break;
    case QueryState::kDeadlineExceeded:
      ++core->deadline_exceeded;
      break;
    case QueryState::kPartial:
      ++core->partial;
      break;
    default:
      assert(false && "non-terminal state");
  }
}

/// Publishes a terminal state: copies the final stats, tears the stream
/// down (joining its workers), fires OnDone, then marks the record terminal
/// and wakes waiters. Runs with `lock` held on entry and exit; the
/// callback and stream teardown happen unlocked.
void FinishQuery(SchedulerCore* core, const RecordPtr& rec, QueryState state,
                 Status status, std::unique_lock<std::mutex>* lock) {
  assert(IsTerminal(state));
  CountTerminal(core, state);
  lock->unlock();
  if (rec->stream != nullptr) {
    rec->final_stats = rec->stream->stats();
    rec->final_coverage = rec->stream->coverage();
    rec->stream->Close();
    rec->stream.reset();
  }
  // Freeze the progress snapshot on the final counters so progress() and
  // stats()/coverage() agree once the terminal state publishes.
  rec->UpdateProgress(rec->final_stats, rec->final_coverage);
  TraceInstant(trace_cats::kSched, "sched.done", "query",
               static_cast<int64_t>(rec->id));
  rec->status = std::move(status);
  if (rec->sink != nullptr) {
    rec->sink->OnDone(state, rec->status, rec->final_stats);
  }
  rec->state.store(state, std::memory_order_release);
  lock->lock();
  core->shard_retries += rec->final_coverage.retries;
  core->shards_abandoned +=
      static_cast<uint64_t>(rec->final_coverage.abandoned);
  assert(core->live > 0);
  --core->live;
  core->done_cv.notify_all();
  // A freed admission slot may unblock a waiting query.
  core->work_cv.notify_all();
}

/// Runs one slice of `rec` (unlocked). Returns the terminal state, or
/// kRunning if the query should be requeued. `*pairs`/`*delivered` receive
/// the slice's join-pair and result counts for the scheduler counters;
/// `*failure` the stream's error when the returned state is kFailed.
QueryState RunSlice(SchedulerCore* core, const RecordPtr& rec,
                    std::vector<ResultTuple>* batch, uint64_t* pairs,
                    uint64_t* delivered, Status* failure) {
  *pairs = 0;
  *delivered = 0;
  if (rec->cancel.load(std::memory_order_acquire)) {
    return QueryState::kCancelled;
  }
  if (rec->Expired(Clock::now())) {
    return QueryState::kDeadlineExceeded;
  }
  // The serving-layer fault site: a worker failing to serve this slice at
  // all (instance = query id). Not shard-local, so it fails the query.
  FaultInjector* injector = rec->options.faults != nullptr
                                ? rec->options.faults.get()
                                : FaultInjector::FromEnv();
  Status fault = MaybeInjectFault(injector, fault_sites::kSchedulerSlice,
                                  static_cast<int>(rec->id));
  if (PROGXE_PREDICT_FALSE(!fault.ok())) {
    *failure = std::move(fault);
    return QueryState::kFailed;
  }
  const uint64_t before = rec->stream->stats().join_pairs_generated;
  rec->stream->NextBatch(core->options.max_batch_results,
                         core->options.batch_budget, batch);
  *pairs = rec->stream->stats().join_pairs_generated - before;
  *delivered = batch->size();
  if (!batch->empty()) {
    rec->sink->OnBatch(*batch);
    if (rec->retain_results) {
      rec->retained.insert(rec->retained.end(), batch->begin(), batch->end());
    }
  }
  // The stream's error channel: a dead stream also reports Finished(), so
  // check the status first — kFailed must carry the real error, not
  // masquerade as completion.
  Status stream_status = rec->stream->last_status();
  if (PROGXE_PREDICT_FALSE(!stream_status.ok())) {
    *failure = std::move(stream_status);
    return QueryState::kFailed;
  }
  if (!rec->stream->Finished()) return QueryState::kRunning;
  return rec->stream->coverage().complete() ? QueryState::kFinished
                                            : QueryState::kPartial;
}

/// Pulls every cancelled or deadline-expired record out of the waiting
/// room and finish-notifies it: such entries hold no slot, so their OnDone
/// must not wait for one (and they must stop occupying max_queue
/// capacity). Caller holds `lock`; FinishQuery drops it per record, so all
/// targets are collected before the first callback.
void ReapWaiting(SchedulerCore* core, std::unique_lock<std::mutex>* lock) {
  const Clock::time_point now = Clock::now();
  std::vector<std::pair<RecordPtr, QueryState>> reaped;
  for (auto it = core->waiting.begin(); it != core->waiting.end();) {
    RecordPtr& rec = *it;
    const bool cancelled = rec->cancel.load(std::memory_order_acquire);
    const bool expired = !cancelled && rec->Expired(now);
    if (!cancelled && !expired) {
      ++it;
      continue;
    }
    rec->in_waiting = false;
    if (cancelled) --core->cancelled_waiting;
    if (rec->has_deadline) --core->deadlined_waiting;
    reaped.emplace_back(std::move(rec), cancelled
                                            ? QueryState::kCancelled
                                            : QueryState::kDeadlineExceeded);
    it = core->waiting.erase(it);
  }
  for (const auto& [rec, state] : reaped) {
    FinishQuery(core, rec, state, Status::OK(), lock);
  }
}

/// Earliest deadline among waiting-room entries, or time_point::max().
/// Ready/running entries need no timer: they are sliced continuously and
/// expiry is checked at every slice boundary.
Clock::time_point NextWaitingDeadline(const SchedulerCore& core) {
  Clock::time_point next = Clock::time_point::max();
  for (const RecordPtr& rec : core.waiting) {
    if (rec->has_deadline && rec->deadline < next) next = rec->deadline;
  }
  return next;
}

void WorkerLoop(const std::shared_ptr<SchedulerCore>& core) {
  std::vector<ResultTuple> batch;
  std::unique_lock<std::mutex> lock(core->mtx);
  for (;;) {
    const auto wake = [&] {
      return core->stop || !core->ready.empty() ||
             core->cancelled_waiting > 0 ||
             (!core->waiting.empty() && HasFreeSlot(*core));
    };
    // Hand-rolled predicate wait: the sleep mode (timed vs not) must be
    // re-decided on *every* wake, so a Submit that enqueues the first
    // deadlined query converts an already-parked worker's untimed wait
    // into a timed one instead of leaving it asleep past the deadline.
    bool deadline_fired = false;
    while (!wake()) {
      if (core->deadlined_waiting > 0) {
        if (core->work_cv.wait_until(lock, NextWaitingDeadline(*core)) ==
            std::cv_status::timeout) {
          deadline_fired = true;  // fall through to the reap pass
          break;
        }
      } else {
        core->work_cv.wait(lock);
      }
    }
    if (core->stop) return;

    // Reap dead waiting-room entries first (cancelled, or woken by the
    // deadline timer above; an expiry that races other runnable work is
    // picked up at the next timed wait).
    if (core->cancelled_waiting > 0 || deadline_fired) {
      ReapWaiting(core.get(), &lock);
      continue;
    }
    if (core->ready.empty() &&
        (core->waiting.empty() || !HasFreeSlot(*core))) {
      continue;  // spurious wake with nothing to do yet
    }

    // Admission next: it is what creates runnable work.
    if (!core->waiting.empty() && HasFreeSlot(*core)) {
      RecordPtr rec = std::move(core->waiting.front());
      core->waiting.pop_front();
      rec->in_waiting = false;
      if (rec->has_deadline) --core->deadlined_waiting;
      if (rec->Expired(Clock::now())) {
        // Never opens a stream: the deadline already passed in the queue.
        FinishQuery(core.get(), rec, QueryState::kDeadlineExceeded,
                    Status::OK(), &lock);
        continue;
      }
      ++core->active;  // hold the slot while PreparePhase runs
      rec->preparing.store(true, std::memory_order_relaxed);
      lock.unlock();
      TraceInstant(trace_cats::kSched, "sched.admit", "query",
                   static_cast<int64_t>(rec->id));
      // Refinement seeding: if the donor is already terminal, its retained
      // frontier is frozen (the terminal acquire pairs with FinishQuery's
      // release, which follows the last retained append). A parent still
      // in flight — or retained-empty — yields a plain unseeded run.
      if (rec->seed_from_parent && rec->parent != nullptr &&
          IsTerminal(rec->parent->state.load(std::memory_order_acquire)) &&
          !rec->parent->retained.empty()) {
        rec->options.refinement_seed =
            BuildRefinementSeed(rec->spec, rec->parent->retained);
      }
      rec->parent.reset();  // drop the donor either way
      auto stream = OpenProgXeStream(rec->spec, rec->options, rec->shards);
      rec->preparing.store(false, std::memory_order_relaxed);
      lock.lock();
      if (!stream.ok()) {
        --core->active;
        FinishQuery(core.get(), rec, QueryState::kFailed, stream.status(),
                    &lock);
        continue;
      }
      rec->stream = std::move(stream).MoveValue();
      rec->state.store(QueryState::kRunning, std::memory_order_release);
      // Start at the current virtual time: a late arrival competes fairly
      // instead of monopolizing workers to catch up.
      rec->pass = core->virtual_time;
      EnqueueReady(core.get(), std::move(rec));
      core->work_cv.notify_one();
      continue;
    }

    RecordPtr rec = PopReady(core.get());
    lock.unlock();
    uint64_t pairs = 0;
    uint64_t delivered = 0;
    Status failure;
    const Clock::time_point slice_start = Clock::now();
    QueryState outcome;
    {
      TraceSpan span(trace_cats::kSched, "sched.slice");
      span.arg("query", static_cast<int64_t>(rec->id));
      outcome = RunSlice(core.get(), rec, &batch, &pairs, &delivered, &failure);
      span.arg("pairs", static_cast<int64_t>(pairs));
    }
    const Clock::time_point slice_end = Clock::now();
    const uint64_t slice_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(slice_end -
                                                              slice_start)
            .count());
    // Refresh the live progress snapshot while this worker still owns the
    // stream (FinishQuery re-freezes it from the final counters for
    // terminal outcomes).
    if (delivered > 0) {
      rec->progress_results.fetch_add(delivered, std::memory_order_relaxed);
      if (rec->ttfr_seconds.load(std::memory_order_relaxed) < 0.0) {
        rec->ttfr_seconds.store(
            std::chrono::duration<double>(slice_end - rec->submit_time).count(),
            std::memory_order_relaxed);
      }
    }
    if (rec->stream != nullptr) {
      rec->UpdateProgress(rec->stream->stats(), rec->stream->coverage());
    }
    lock.lock();
    // Cancel/deadline short-circuits never advanced the stream: not a
    // served slice.
    if (outcome == QueryState::kRunning || outcome == QueryState::kFinished ||
        outcome == QueryState::kPartial) {
      ++core->slices;
      core->sliced_pairs += pairs;
      ++core->slice_latency_us_log2[SchedulerStats::SliceLatencyBucket(
          slice_us)];
    }
    if (delivered > 0) {
      ++core->batches;
      core->results += delivered;
    }
    if (outcome == QueryState::kRunning) {
      rec->pass += rec->stride;
      EnqueueReady(core.get(), std::move(rec));
    } else {
      --core->active;
      FinishQuery(core.get(), rec, outcome, std::move(failure), &lock);
    }
  }
}

}  // namespace
}  // namespace service_internal

using service_internal::QueryRecord;
using service_internal::RecordPtr;
using service_internal::SchedulerCore;

uint64_t QueryHandle::id() const { return query_ == nullptr ? 0 : query_->id; }

QueryState QueryHandle::state() const {
  assert(query_ != nullptr);
  return query_->state.load(std::memory_order_acquire);
}

void QueryHandle::Cancel() {
  assert(query_ != nullptr);
  // Setting `cancel` under the core mutex keeps `cancelled_waiting` exact:
  // a worker holding the lock can rely on "counter == 0 implies no waiting
  // entry is cancelled".
  std::lock_guard<std::mutex> lock(core_->mtx);
  const bool first = !query_->cancel.exchange(true, std::memory_order_acq_rel);
  if (first && query_->in_waiting) ++core_->cancelled_waiting;
  core_->work_cv.notify_all();
}

void QueryHandle::Wait() {
  assert(query_ != nullptr);
  std::unique_lock<std::mutex> lock(core_->mtx);
  core_->done_cv.wait(lock, [&] {
    return IsTerminal(query_->state.load(std::memory_order_acquire));
  });
}

const ProgXeStats& QueryHandle::stats() const {
  assert(query_ != nullptr && IsTerminal(state()));
  return query_->final_stats;
}

Status QueryHandle::status() const {
  assert(query_ != nullptr && IsTerminal(state()));
  return query_->status;
}

const ShardCoverage& QueryHandle::coverage() const {
  assert(query_ != nullptr && IsTerminal(state()));
  return query_->final_coverage;
}

QueryProgress QueryHandle::progress() const {
  assert(query_ != nullptr);
  QueryProgress p;
  p.state = query_->state.load(std::memory_order_acquire);
  if (IsTerminal(p.state)) {
    p.phase = QueryStateName(p.state);
  } else if (p.state == QueryState::kRunning) {
    p.phase = "running";
  } else {
    p.phase = query_->preparing.load(std::memory_order_relaxed) ? "prepare"
                                                                : "queued";
  }
  p.regions_total =
      query_->progress_regions_total.load(std::memory_order_relaxed);
  p.regions_done =
      query_->progress_regions_done.load(std::memory_order_relaxed);
  p.pairs_processed = query_->progress_pairs.load(std::memory_order_relaxed);
  p.results_delivered =
      query_->progress_results.load(std::memory_order_relaxed);
  p.ttfr_seconds = query_->ttfr_seconds.load(std::memory_order_relaxed);
  p.shards = query_->progress_shards.load(std::memory_order_relaxed);
  p.shards_completed =
      query_->progress_shards_completed.load(std::memory_order_relaxed);
  p.shards_abandoned =
      query_->progress_shards_abandoned.load(std::memory_order_relaxed);
  p.shards_remote =
      query_->progress_shards_remote.load(std::memory_order_relaxed);
  return p;
}

QueryScheduler::QueryScheduler(ServiceOptions options)
    : options_(options), core_(std::make_shared<SchedulerCore>()) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  core_->options = options_;
  if (options_.prepare_cache_entries > 0 && options_.prepare_cache_bytes > 0) {
    core_->prepare_cache = std::make_shared<PrepareCache>(
        options_.prepare_cache_entries, options_.prepare_cache_bytes);
  }
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(service_internal::WorkerLoop, core_);
  }
}

QueryScheduler::~QueryScheduler() {
  {
    std::lock_guard<std::mutex> lock(core_->mtx);
    core_->stop = true;
  }
  core_->work_cv.notify_all();
  for (std::thread& worker : workers_) worker.join();

  // Workers are gone, so this thread owns the queues: cancel-finish every
  // query still queued or runnable so each sink gets its OnDone.
  std::unique_lock<std::mutex> lock(core_->mtx);
  while (!core_->waiting.empty() || !core_->ready.empty()) {
    RecordPtr rec;
    if (!core_->waiting.empty()) {
      rec = std::move(core_->waiting.front());
      core_->waiting.pop_front();
    } else {
      rec = std::move(core_->ready.front());
      core_->ready.pop_front();
      --core_->active;
    }
    service_internal::FinishQuery(core_.get(), rec, QueryState::kCancelled,
                                  Status::OK(), &lock);
  }
}

Result<QueryHandle> QueryScheduler::Submit(const SkyMapJoinQuery& query,
                                           ProgXeOptions options,
                                           QuerySink* sink,
                                           const SubmitOptions& submit) {
  if (sink == nullptr) {
    return Status::InvalidArgument("Submit: sink must not be null");
  }
  if (!(submit.weight > 0.0)) {
    return Status::InvalidArgument("Submit: weight must be positive");
  }
  if (submit.seed_from_parent) {
    if (submit.parent.query_ == nullptr) {
      return Status::InvalidArgument(
          "Submit: seed_from_parent requires a parent handle");
    }
    if (submit.parent.core_ != core_) {
      return Status::InvalidArgument(
          "Submit: parent handle was issued by a different scheduler");
    }
    if (submit.parent.query_->spec.r != query.r ||
        submit.parent.query_->spec.t != query.t) {
      return Status::InvalidArgument(
          "Submit: seed_from_parent requires the parent's exact source "
          "relations");
    }
    if (!service_internal::SameMapSpec(submit.parent.query_->spec.map,
                                       query.map)) {
      return Status::InvalidArgument(
          "Submit: seed_from_parent requires an identical mapping");
    }
    if (!submit.parent.query_->retain_results) {
      return Status::InvalidArgument(
          "Submit: parent was not submitted with retain_results");
    }
  }
  auto rec = std::make_shared<QueryRecord>();
  rec->submit_time = service_internal::Clock::now();
  rec->spec = query;
  rec->options = std::move(options);
  rec->shards = submit.shards;
  if (submit.allow_partial) rec->shards.allow_partial = true;
  if (!submit.workers.empty()) {
    if (!rec->shards.workers.empty()) {
      return Status::InvalidArgument(
          "Submit: workers set both directly and via shards.workers");
    }
    rec->shards.workers = submit.workers;
  }
  rec->sink = sink;
  rec->retain_results = submit.retain_results;
  if (submit.seed_from_parent) {
    rec->parent = submit.parent.query_;
    rec->seed_from_parent = true;
  }
  // Stamp the service-wide prepared-state cache unless the caller brought
  // their own (or the cache is disabled — stamping null is a no-op).
  if (rec->options.prepare_cache == nullptr) {
    rec->options.prepare_cache = core_->prepare_cache;
  }
  const double w = std::clamp(submit.weight, 1.0 / 16.0, 1024.0);
  rec->stride = std::max<uint64_t>(
      1, static_cast<uint64_t>(service_internal::kStrideScale / w));
  const std::chrono::milliseconds deadline =
      submit.deadline.count() != 0 ? submit.deadline
                                   : options_.default_deadline;
  if (deadline.count() > 0) {
    rec->has_deadline = true;
    // Saturate: a huge requested deadline must mean "far future", not
    // overflow past it into an instantly-expired one.
    const auto now = service_internal::Clock::now();
    const auto headroom = std::chrono::duration_cast<std::chrono::milliseconds>(
        service_internal::Clock::time_point::max() - now);
    rec->deadline = deadline < headroom
                        ? now + deadline
                        : service_internal::Clock::time_point::max();
  }

  std::lock_guard<std::mutex> lock(core_->mtx);
  if (core_->stop) {
    return Status::Internal("Submit: scheduler is shutting down");
  }
  if (core_->options.max_queue != 0 &&
      core_->waiting.size() >= core_->options.max_queue) {
    return Status::OutOfRange("Submit: admission queue full (max_queue=" +
                              std::to_string(core_->options.max_queue) + ")");
  }
  if (!rec->shards.workers.empty()) {
    if (core_->worker_pool == nullptr) {
      core_->worker_pool = std::make_shared<WorkerPool>();
    }
    if (rec->shards.worker_pool == nullptr) {
      rec->shards.worker_pool = core_->worker_pool;
    }
  }
  rec->id = core_->next_id++;
  ++core_->live;
  ++core_->submitted;
  rec->in_waiting = true;
  if (rec->has_deadline) ++core_->deadlined_waiting;
  core_->waiting.push_back(rec);
  core_->work_cv.notify_one();

  QueryHandle handle;
  handle.core_ = core_;
  handle.query_ = std::move(rec);
  return handle;
}

void QueryScheduler::Drain() {
  std::unique_lock<std::mutex> lock(core_->mtx);
  core_->done_cv.wait(lock, [&] { return core_->live == 0; });
}

SchedulerStats QueryScheduler::stats() const {
  SchedulerStats stats;
  std::lock_guard<std::mutex> lock(core_->mtx);
  stats.queued = core_->waiting.size();
  stats.running = core_->active;
  stats.submitted = core_->submitted;
  stats.finished = core_->finished;
  stats.cancelled = core_->cancelled;
  stats.failed = core_->failed;
  stats.deadline_exceeded = core_->deadline_exceeded;
  stats.partial = core_->partial;
  stats.slices = core_->slices;
  stats.sliced_pairs = core_->sliced_pairs;
  stats.batches = core_->batches;
  stats.results = core_->results;
  stats.shard_retries = core_->shard_retries;
  stats.shards_abandoned = core_->shards_abandoned;
  stats.slice_latency_us_log2 = core_->slice_latency_us_log2;
  const NetStatsSnapshot net = SnapshotNetStats();
  stats.net_bytes_sent = net.bytes_sent;
  stats.net_bytes_received = net.bytes_received;
  stats.net_frames_sent = net.frames_sent;
  stats.net_frames_received = net.frames_received;
  stats.net_rtt_count = net.rtt_count;
  stats.net_rtt_p50_us = net.RttQuantileUs(0.5);
  stats.net_rtt_p99_us = net.RttQuantileUs(0.99);
  if (core_->prepare_cache != nullptr) {
    const PrepareCache::Stats cache = core_->prepare_cache->stats();
    stats.prepare_hits = cache.hits;
    stats.prepare_misses = cache.misses;
    stats.prepare_evictions = cache.evictions;
    stats.prepare_cache_entries = cache.entries;
    stats.prepare_cache_bytes = cache.bytes;
  }
  return stats;
}

}  // namespace progxe
