#include "service/scheduler.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "progxe/session.h"

namespace progxe {

const char* FairnessPolicyName(FairnessPolicy policy) {
  switch (policy) {
    case FairnessPolicy::kRoundRobin:
      return "round_robin";
    case FairnessPolicy::kWeightedFair:
      return "weighted_fair";
  }
  return "?";
}

bool FairnessPolicyFromName(const char* name, FairnessPolicy* out) {
  if (std::strcmp(name, "rr") == 0 || std::strcmp(name, "round_robin") == 0) {
    *out = FairnessPolicy::kRoundRobin;
    return true;
  }
  if (std::strcmp(name, "wf") == 0 ||
      std::strcmp(name, "weighted_fair") == 0) {
    *out = FairnessPolicy::kWeightedFair;
    return true;
  }
  return false;
}

const char* QueryStateName(QueryState state) {
  switch (state) {
    case QueryState::kQueued:
      return "queued";
    case QueryState::kRunning:
      return "running";
    case QueryState::kFinished:
      return "finished";
    case QueryState::kCancelled:
      return "cancelled";
    case QueryState::kFailed:
      return "failed";
  }
  return "?";
}

QuerySink::~QuerySink() = default;

namespace service_internal {

/// Virtual-time granularity of the stride scheduler: a weight-1 query's
/// pass advances by this much per slice.
constexpr uint64_t kStrideScale = 1 << 16;

struct QueryRecord {
  uint64_t id = 0;
  SkyMapJoinQuery spec;
  ProgXeOptions options;
  QuerySink* sink = nullptr;

  /// Stride-scheduling state (kWeightedFair): pass advances by stride per
  /// slice; the smallest pass runs next.
  uint64_t stride = kStrideScale;
  uint64_t pass = 0;

  std::atomic<QueryState> state{QueryState::kQueued};
  std::atomic<bool> cancel{false};
  /// True while the record sits in SchedulerCore::waiting. Guarded by the
  /// core mutex; together with `cancel` (only ever set under that mutex)
  /// it keeps SchedulerCore::cancelled_waiting exact.
  bool in_waiting = false;

  /// Terminal outputs; written by the finishing thread before the terminal
  /// state is published (release), read by handles after observing it
  /// (acquire).
  Status status;
  ProgXeStats final_stats;

  std::unique_ptr<ProgXeSession> session;  // open while kRunning
};

using RecordPtr = std::shared_ptr<QueryRecord>;

struct SchedulerCore {
  ServiceOptions options;

  std::mutex mtx;
  std::condition_variable work_cv;  // workers: new work / freed slot / stop
  std::condition_variable done_cv;  // Wait()/Drain(): a query went terminal
  bool stop = false;

  uint64_t next_id = 1;
  size_t live = 0;    // submitted, not yet terminal
  size_t active = 0;  // admitted (slot held), not yet terminal
  uint64_t virtual_time = 0;  // pass floor for newly admitted queries

  std::deque<RecordPtr> waiting;  // admission queue, FIFO
  std::deque<RecordPtr> ready;    // runnable; deque for RR, min-heap for WF
  /// Number of `waiting` entries with `cancel` set — an O(1) stand-in for
  /// scanning the queue in the worker wake predicate.
  size_t cancelled_waiting = 0;
};

namespace {

/// Min-heap order on (pass, id): ties resolve to the earlier submission so
/// the weighted-fair pick is deterministic.
bool PassGreater(const RecordPtr& a, const RecordPtr& b) {
  return a->pass != b->pass ? a->pass > b->pass : a->id > b->id;
}

bool HasFreeSlot(const SchedulerCore& core) {
  return core.options.max_concurrent == 0 ||
         core.active < core.options.max_concurrent;
}

void EnqueueReady(SchedulerCore* core, RecordPtr rec) {
  core->ready.push_back(std::move(rec));
  if (core->options.policy == FairnessPolicy::kWeightedFair) {
    std::push_heap(core->ready.begin(), core->ready.end(), PassGreater);
  }
}

RecordPtr PopReady(SchedulerCore* core) {
  if (core->options.policy == FairnessPolicy::kWeightedFair) {
    std::pop_heap(core->ready.begin(), core->ready.end(), PassGreater);
  }
  RecordPtr rec;
  if (core->options.policy == FairnessPolicy::kWeightedFair) {
    rec = std::move(core->ready.back());
    core->ready.pop_back();
    core->virtual_time = rec->pass;
  } else {
    rec = std::move(core->ready.front());
    core->ready.pop_front();
  }
  return rec;
}

/// Publishes a terminal state: copies the final stats, tears the session
/// down (joining its workers), fires OnDone, then marks the record terminal
/// and wakes waiters. Runs with `lock` held on entry and exit; the
/// callback and session teardown happen unlocked.
void FinishQuery(SchedulerCore* core, const RecordPtr& rec, QueryState state,
                 Status status, std::unique_lock<std::mutex>* lock) {
  assert(IsTerminal(state));
  lock->unlock();
  if (rec->session != nullptr) {
    rec->final_stats = rec->session->stats();
    rec->session->Close();
    rec->session.reset();
  }
  rec->status = std::move(status);
  if (rec->sink != nullptr) {
    rec->sink->OnDone(state, rec->status, rec->final_stats);
  }
  rec->state.store(state, std::memory_order_release);
  lock->lock();
  assert(core->live > 0);
  --core->live;
  core->done_cv.notify_all();
  // A freed admission slot may unblock a waiting query.
  core->work_cv.notify_all();
}

/// Runs one slice of `rec` (unlocked). Returns the terminal state, or
/// kRunning if the query should be requeued.
QueryState RunSlice(SchedulerCore* core, const RecordPtr& rec,
                    std::vector<ResultTuple>* batch) {
  if (rec->cancel.load(std::memory_order_acquire)) {
    return QueryState::kCancelled;
  }
  rec->session->NextBatch(core->options.max_batch_results,
                          core->options.batch_budget, batch);
  if (!batch->empty()) rec->sink->OnBatch(*batch);
  return rec->session->Finished() ? QueryState::kFinished
                                  : QueryState::kRunning;
}

void WorkerLoop(const std::shared_ptr<SchedulerCore>& core) {
  std::vector<ResultTuple> batch;
  std::unique_lock<std::mutex> lock(core->mtx);
  for (;;) {
    core->work_cv.wait(lock, [&] {
      return core->stop || !core->ready.empty() ||
             core->cancelled_waiting > 0 ||
             (!core->waiting.empty() && HasFreeSlot(*core));
    });
    if (core->stop) return;

    // Reap cancelled waiting-room entries first: they hold no slot, so
    // their OnDone must not wait for one (and they must stop occupying
    // max_queue capacity). Pull them all out before unlocking — FinishQuery
    // drops the lock, during which other workers may mutate the deque.
    if (core->cancelled_waiting > 0) {
      std::vector<RecordPtr> reaped;
      for (auto it = core->waiting.begin(); it != core->waiting.end();) {
        if ((*it)->cancel.load(std::memory_order_acquire)) {
          (*it)->in_waiting = false;
          --core->cancelled_waiting;
          reaped.push_back(std::move(*it));
          it = core->waiting.erase(it);
        } else {
          ++it;
        }
      }
      for (const RecordPtr& rec : reaped) {
        FinishQuery(core.get(), rec, QueryState::kCancelled, Status::OK(),
                    &lock);
      }
      continue;
    }

    // Admission next: it is what creates runnable work.
    if (!core->waiting.empty() && HasFreeSlot(*core)) {
      RecordPtr rec = std::move(core->waiting.front());
      core->waiting.pop_front();
      rec->in_waiting = false;
      ++core->active;  // hold the slot while PreparePhase runs
      lock.unlock();
      auto session = ProgXeSession::Open(rec->spec, rec->options);
      lock.lock();
      if (!session.ok()) {
        --core->active;
        FinishQuery(core.get(), rec, QueryState::kFailed, session.status(),
                    &lock);
        continue;
      }
      rec->session = std::move(session).MoveValue();
      rec->state.store(QueryState::kRunning, std::memory_order_release);
      // Start at the current virtual time: a late arrival competes fairly
      // instead of monopolizing workers to catch up.
      rec->pass = core->virtual_time;
      EnqueueReady(core.get(), std::move(rec));
      core->work_cv.notify_one();
      continue;
    }

    RecordPtr rec = PopReady(core.get());
    lock.unlock();
    const QueryState outcome = RunSlice(core.get(), rec, &batch);
    lock.lock();
    if (outcome == QueryState::kRunning) {
      rec->pass += rec->stride;
      EnqueueReady(core.get(), std::move(rec));
    } else {
      --core->active;
      FinishQuery(core.get(), rec, outcome, Status::OK(), &lock);
    }
  }
}

}  // namespace
}  // namespace service_internal

using service_internal::QueryRecord;
using service_internal::RecordPtr;
using service_internal::SchedulerCore;

uint64_t QueryHandle::id() const { return query_ == nullptr ? 0 : query_->id; }

QueryState QueryHandle::state() const {
  assert(query_ != nullptr);
  return query_->state.load(std::memory_order_acquire);
}

void QueryHandle::Cancel() {
  assert(query_ != nullptr);
  // Setting `cancel` under the core mutex keeps `cancelled_waiting` exact:
  // a worker holding the lock can rely on "counter == 0 implies no waiting
  // entry is cancelled".
  std::lock_guard<std::mutex> lock(core_->mtx);
  const bool first = !query_->cancel.exchange(true, std::memory_order_acq_rel);
  if (first && query_->in_waiting) ++core_->cancelled_waiting;
  core_->work_cv.notify_all();
}

void QueryHandle::Wait() {
  assert(query_ != nullptr);
  std::unique_lock<std::mutex> lock(core_->mtx);
  core_->done_cv.wait(lock, [&] {
    return IsTerminal(query_->state.load(std::memory_order_acquire));
  });
}

const ProgXeStats& QueryHandle::stats() const {
  assert(query_ != nullptr && IsTerminal(state()));
  return query_->final_stats;
}

Status QueryHandle::status() const {
  assert(query_ != nullptr && IsTerminal(state()));
  return query_->status;
}

QueryScheduler::QueryScheduler(ServiceOptions options)
    : options_(options), core_(std::make_shared<SchedulerCore>()) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  core_->options = options_;
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(service_internal::WorkerLoop, core_);
  }
}

QueryScheduler::~QueryScheduler() {
  {
    std::lock_guard<std::mutex> lock(core_->mtx);
    core_->stop = true;
  }
  core_->work_cv.notify_all();
  for (std::thread& worker : workers_) worker.join();

  // Workers are gone, so this thread owns the queues: cancel-finish every
  // query still queued or runnable so each sink gets its OnDone.
  std::unique_lock<std::mutex> lock(core_->mtx);
  while (!core_->waiting.empty() || !core_->ready.empty()) {
    RecordPtr rec;
    if (!core_->waiting.empty()) {
      rec = std::move(core_->waiting.front());
      core_->waiting.pop_front();
    } else {
      rec = std::move(core_->ready.front());
      core_->ready.pop_front();
      --core_->active;
    }
    service_internal::FinishQuery(core_.get(), rec, QueryState::kCancelled,
                                  Status::OK(), &lock);
  }
}

Result<QueryHandle> QueryScheduler::Submit(const SkyMapJoinQuery& query,
                                           ProgXeOptions options,
                                           QuerySink* sink, double weight) {
  if (sink == nullptr) {
    return Status::InvalidArgument("Submit: sink must not be null");
  }
  if (!(weight > 0.0)) {
    return Status::InvalidArgument("Submit: weight must be positive");
  }
  auto rec = std::make_shared<QueryRecord>();
  rec->spec = query;
  rec->options = std::move(options);
  rec->sink = sink;
  const double w = std::clamp(weight, 1.0 / 16.0, 1024.0);
  rec->stride = std::max<uint64_t>(
      1, static_cast<uint64_t>(service_internal::kStrideScale / w));

  std::lock_guard<std::mutex> lock(core_->mtx);
  if (core_->stop) {
    return Status::Internal("Submit: scheduler is shutting down");
  }
  if (core_->options.max_queue != 0 &&
      core_->waiting.size() >= core_->options.max_queue) {
    return Status::OutOfRange("Submit: admission queue full (max_queue=" +
                              std::to_string(core_->options.max_queue) + ")");
  }
  rec->id = core_->next_id++;
  ++core_->live;
  rec->in_waiting = true;
  core_->waiting.push_back(rec);
  core_->work_cv.notify_one();

  QueryHandle handle;
  handle.core_ = core_;
  handle.query_ = std::move(rec);
  return handle;
}

void QueryScheduler::Drain() {
  std::unique_lock<std::mutex> lock(core_->mtx);
  core_->done_cv.wait(lock, [&] { return core_->live == 0; });
}

}  // namespace progxe
