// QueryScheduler: the multi-query serving layer over ProgXeStream.
//
// Many concurrent SkyMapJoin queries share one pool of scheduler workers.
// Each worker repeatedly picks a runnable query and advances its stream by
// one *slice* — a budget-aware NextBatch bounded by
// ServiceOptions::batch_budget join pairs — delivering any progressive
// results to the query's QuerySink before requeueing it. Because a stream
// can yield mid-region and resume without redoing work, a heavy query
// cannot starve light ones: with budget slicing on, every admitted query
// makes progress every scheduler round.
//
// The scheduler drives only the abstract ProgXeStream interface
// (progxe/stream.h): a query sharded across K engine instances
// (SubmitOptions::shards) is served through the same slicing, fairness,
// deadline and cancellation machinery as a plain session — one sub-session
// per shard behind a single QueryHandle, with budget accounting summed
// across shards by the stream itself.
//
//   QueryScheduler scheduler({.num_workers = 4, .batch_budget = 4096});
//   auto handle = scheduler.Submit(query, options, &sink);   // non-blocking
//   ...                      // sink.OnBatch fires as results become final
//   handle->Cancel();        // optional, cooperative
//   scheduler.Drain();       // or handle.Wait()
//
// Guarantees:
//   * Per query, OnBatch calls arrive in emission order from one worker at
//     a time, and the concatenated batches plus the final ProgXeStats are
//     bit-identical to draining that query's stream alone — for any
//     interleaving, budget, worker count and fairness policy (enforced by
//     tests/service_test.cc).
//   * Exactly one OnDone per submitted query, after its last OnBatch —
//     including on cancellation, deadline expiry, failure and scheduler
//     destruction.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "progxe/config.h"
#include "progxe/executor.h"
#include "progxe/stream.h"

namespace progxe {

/// How the scheduler picks the next runnable query.
enum class FairnessPolicy : uint8_t {
  /// FIFO cycle over runnable queries: every query gets one slice per round.
  kRoundRobin,
  /// Stride scheduling: each query consumes virtual time at stride/weight;
  /// the smallest pass value runs next, so a weight-2 query receives twice
  /// the slices of a weight-1 query under contention.
  kWeightedFair,
};

const char* FairnessPolicyName(FairnessPolicy policy);

/// Inverse of FairnessPolicyName, also accepting the CLI short forms
/// "rr" and "wf". Round-trips every enumerator; returns false on an
/// unknown name.
bool FairnessPolicyFromName(std::string_view name, FairnessPolicy* out);

/// Serving-layer configuration.
struct ServiceOptions {
  /// Scheduler worker threads (>= 1). Workers run PreparePhase on
  /// admission and NextBatch slices; a query's own
  /// ProgXeOptions::num_threads pool, if any, is layered underneath.
  int num_workers = 1;

  /// Join-pair budget per NextBatch slice. 0 disables slicing: each slice
  /// then drives the session to its next flush, so one huge region can
  /// hold a worker for its full join. Small budgets sharpen fairness and
  /// time-to-first-result at a small switching cost.
  size_t batch_budget = 4096;

  /// Per-OnBatch result cap (0 = deliver everything a slice produced).
  size_t max_batch_results = 0;

  /// Admission control: at most this many queries hold an open stream at
  /// once (0 = unbounded). Further submissions wait in FIFO order.
  size_t max_concurrent = 8;

  /// Bound on the not-yet-admitted queue; Submit fails with OutOfRange
  /// once full (0 = unbounded).
  size_t max_queue = 0;

  FairnessPolicy policy = FairnessPolicy::kRoundRobin;

  /// Wall-clock deadline applied to every query that does not carry its own
  /// SubmitOptions::deadline, measured from Submit. Zero = none. An expired
  /// query terminates with QueryState::kDeadlineExceeded at its next slice
  /// boundary (or in the waiting room, without ever opening a stream) and
  /// its sink still receives exactly one OnDone.
  std::chrono::milliseconds default_deadline{0};

  /// Cross-query prepared-state cache (progxe/prepare_cache.h) budgets.
  /// Every submitted query whose options carry no cache of their own is
  /// stamped with the scheduler-wide instance: repeated submissions of the
  /// same (sources, mapping, quantization) skip the prepare phase entirely
  /// on a hit. Entries are LRU-evicted past either budget; setting either
  /// to 0 disables the cache.
  size_t prepare_cache_entries = 8;
  size_t prepare_cache_bytes = 64ull * 1024 * 1024;
};

/// Lifecycle of a submitted query.
enum class QueryState : uint8_t {
  kQueued,            ///< Waiting for an admission slot.
  kRunning,           ///< Stream open; receiving slices.
  kFinished,          ///< All results delivered.
  kCancelled,         ///< Cancel() (or scheduler teardown) took effect.
  kFailed,            ///< Open, validation or the stream itself failed; see
                      ///< QueryHandle::status() for the real error.
  kDeadlineExceeded,  ///< Per-query deadline expired before completion.
  kPartial,           ///< Completed with shards abandoned after retry
                      ///< exhaustion (SubmitOptions::allow_partial); the
                      ///< delivered set covers QueryHandle::coverage().
};

const char* QueryStateName(QueryState state);

/// Inverse of QueryStateName; round-trips every enumerator. Returns false
/// on an unknown name.
bool QueryStateFromName(std::string_view name, QueryState* out);

inline bool IsTerminal(QueryState state) {
  return state == QueryState::kFinished || state == QueryState::kCancelled ||
         state == QueryState::kFailed ||
         state == QueryState::kDeadlineExceeded ||
         state == QueryState::kPartial;
}

/// A point-in-time snapshot of scheduler-wide counters
/// (QueryScheduler::stats()).
struct SchedulerStats {
  /// Slice-latency histogram resolution: fixed log-scale buckets where
  /// bucket 0 counts sub-microsecond slices and bucket i (i >= 1) counts
  /// slices with wall-clock latency in [2^(i-1), 2^i) microseconds; the
  /// last bucket is open-ended, absorbing everything from 2^17 us
  /// (~0.13 s) up.
  static constexpr size_t kSliceLatencyBuckets = 19;

  // Gauges (instantaneous).
  size_t queued = 0;   ///< Waiting-room depth.
  size_t running = 0;  ///< Admitted queries holding a slot.

  // Monotonic counters (since construction).
  uint64_t submitted = 0;          ///< Accepted Submit calls.
  uint64_t finished = 0;           ///< Queries ended kFinished.
  uint64_t cancelled = 0;          ///< Queries ended kCancelled.
  uint64_t failed = 0;             ///< Queries ended kFailed.
  uint64_t deadline_exceeded = 0;  ///< Queries ended kDeadlineExceeded.
  uint64_t partial = 0;            ///< Queries ended kPartial.
  uint64_t slices = 0;             ///< NextBatch slices served.
  uint64_t sliced_pairs = 0;       ///< Join pairs processed across slices.
  uint64_t batches = 0;            ///< Non-empty OnBatch deliveries.
  uint64_t results = 0;            ///< Result tuples delivered to sinks.
  uint64_t shard_retries = 0;      ///< Shard re-opens across terminal queries.
  uint64_t shards_abandoned = 0;   ///< Shards dropped across terminal queries.

  // Distributed transport (process-wide totals from net/net_stats.h;
  // nonzero only when queries ran with SubmitOptions::workers).
  uint64_t net_bytes_sent = 0;      ///< Wire bytes sent (frames + headers).
  uint64_t net_bytes_received = 0;  ///< Wire bytes received.
  uint64_t net_frames_sent = 0;     ///< Frames sent.
  uint64_t net_frames_received = 0; ///< Frames received.
  uint64_t net_rtt_count = 0;       ///< Coordinator RPCs completed.
  uint64_t net_rtt_p50_us = 0;      ///< Median RPC round trip (log2 edge).
  uint64_t net_rtt_p99_us = 0;      ///< p99 RPC round trip (log2 edge).

  // Prepared-state cache (zeroes when ServiceOptions disabled the cache).
  uint64_t prepare_hits = 0;       ///< Opens that skipped the prepare phase.
  uint64_t prepare_misses = 0;     ///< Opens that built (and cached) anew.
  uint64_t prepare_evictions = 0;  ///< Entries LRU-evicted past a budget.
  size_t prepare_cache_entries = 0;  ///< Gauge: entries resident now.
  size_t prepare_cache_bytes = 0;    ///< Gauge: approx bytes resident now.

  /// Wall-clock latency distribution of served slices (one entry per
  /// NextBatch counted in `slices`). Sum of all buckets == slices.
  std::array<uint64_t, kSliceLatencyBuckets> slice_latency_us_log2{};

  /// Histogram bucket index for a slice latency in microseconds.
  static size_t SliceLatencyBucket(uint64_t us);

  /// Upper edge (exclusive, microseconds) of the bucket holding the
  /// q-quantile slice, for q in [0, 1] — a conservative p50/p99 readout at
  /// log2 resolution, except when the quantile lands in the open-ended
  /// last bucket, whose returned edge (2^18 us) understates slices slower
  /// than that. Returns 0 when no slice was served.
  uint64_t SliceLatencyQuantileUs(double q) const;

  /// Space-separated `name=value` rendering of every field, histogram
  /// included — the one formatter behind ToString() and the server's
  /// `stats` line.
  std::string FormatFields() const;

  std::string ToString() const;
};

/// Point-in-time progress of one submitted query
/// (QueryHandle::progress()). Readable at any moment from any thread —
/// fields are relaxed snapshots updated by the slicing worker at slice
/// boundaries, so mid-slice reads may lag by up to one slice. Once the
/// query is terminal the snapshot is final and exact.
struct QueryProgress {
  QueryState state = QueryState::kQueued;
  /// Coarse lifecycle phase: "queued", "prepare" (admission is running the
  /// prepare phase / opening the stream), "running", or the terminal state
  /// name ("finished", "cancelled", ...).
  const char* phase = "queued";
  /// Regions surviving look-ahead, summed across shards. 0 until the first
  /// slice (the totals come from the stream's own counters).
  size_t regions_total = 0;
  /// Regions retired so far: processed + discarded at runtime + discarded
  /// by refinement seeding.
  size_t regions_done = 0;
  uint64_t pairs_processed = 0;    ///< Join pairs generated so far.
  uint64_t results_delivered = 0;  ///< Tuples delivered to the sink so far.
  /// Submit-to-first-delivered-result wall clock; negative until the first
  /// result lands.
  double ttfr_seconds = -1.0;
  // Shard coverage of the delivered set (1/1 for unsharded queries).
  size_t shards = 0;
  size_t shards_completed = 0;
  size_t shards_abandoned = 0;
  /// Shards served by remote worker daemons (0 for in-process queries) —
  /// what distinguishes a distributed query in `progxe_server list`.
  size_t shards_remote = 0;

  std::string ToString() const;
};

/// Receives one query's progressive output. Callbacks fire on scheduler
/// worker threads, but never concurrently for the same query; a sink
/// shared across queries must synchronize itself. Callbacks must not block
/// on the scheduler (no Wait/Drain from inside a callback).
class QuerySink {
 public:
  virtual ~QuerySink();
  /// Zero or more calls, each a non-empty run of guaranteed-final results
  /// in emission order.
  virtual void OnBatch(const std::vector<ResultTuple>& batch) = 0;
  /// Exactly once, after the last OnBatch. `stats` holds the query's final
  /// counters (zero-valued if the stream never opened).
  virtual void OnDone(QueryState state, const Status& status,
                      const ProgXeStats& stats) = 0;
};

namespace service_internal {
struct SchedulerCore;
struct QueryRecord;
}  // namespace service_internal

/// Caller's view of one submitted query. Copyable; all methods are
/// thread-safe. Handles keep the scheduler core alive, so outliving the
/// scheduler is safe (the query is cancelled at scheduler destruction).
class QueryHandle {
 public:
  QueryHandle() = default;

  uint64_t id() const;
  QueryState state() const;
  /// Requests cooperative cancellation: the query stops at its next slice
  /// boundary (or before admission) and its sink receives
  /// OnDone(kCancelled). No-op once terminal.
  void Cancel();
  /// Blocks until the query is terminal (its OnDone has returned).
  void Wait();
  /// Final counters; valid once state() is terminal.
  const ProgXeStats& stats() const;
  /// Failure status for kFailed — the stream's real error (open failure,
  /// injected fault, retry exhaustion); OK otherwise.
  Status status() const;
  /// Per-shard coverage of the delivered set; valid once state() is
  /// terminal. `!complete()` exactly for kPartial.
  const ShardCoverage& coverage() const;
  /// Live progress snapshot; callable in any state (see QueryProgress).
  QueryProgress progress() const;

 private:
  friend class QueryScheduler;
  std::shared_ptr<service_internal::SchedulerCore> core_;
  std::shared_ptr<service_internal::QueryRecord> query_;
};

/// Per-submission knobs beyond the engine options.
struct SubmitOptions {
  /// Relative slice share under kWeightedFair (clamped to [1/16, 1024]);
  /// ignored by kRoundRobin.
  double weight = 1.0;
  /// Wall-clock deadline measured from Submit; zero inherits
  /// ServiceOptions::default_deadline, negative opts out of the deadline
  /// even when a default exists.
  std::chrono::milliseconds deadline{0};
  /// Engine sharding: num_shards > 1 serves the query through a
  /// ShardedStream (one sub-session per shard behind this one handle).
  /// `shards.max_retries` / `shards.retry_backoff` bound the per-shard
  /// fault recovery.
  ShardOptions shards;

  /// Graceful degradation: when a shard exhausts its retries, `false`
  /// (default) fails the query (kFailed, real Status), `true` lets it
  /// complete as kPartial with the per-shard coverage report on the handle.
  /// Convenience alias for shards.allow_partial — either being true
  /// enables it.
  bool allow_partial = false;

  /// Remote execution: shard-worker endpoints ("host:port"). Convenience
  /// alias for shards.workers (used when either is non-empty; setting both
  /// is rejected at Submit). Remote queries share the scheduler's
  /// process-wide connection pool, so worker links outlive any one query.
  std::vector<std::string> workers;

  /// Retain this query's delivered results on its record so later
  /// submissions can seed from them (`parent`/`seed_from_parent`). Costs
  /// one extra copy of every delivered tuple for the record's lifetime;
  /// required on any query named as a refinement parent.
  bool retain_results = false;

  /// Refinement parent: a handle from a previous Submit on this same
  /// scheduler, over pointer-identical sources and an identical mapping
  /// (preference/serving knobs may differ). Only consulted when
  /// `seed_from_parent` is true.
  QueryHandle parent;

  /// Seed this query's region ordering and up-front discards from the
  /// parent's retained results (see ProgXeOptions::refinement_seed).
  /// Validated at Submit: the parent must come from this scheduler, share
  /// sources and mapping, and have been submitted with retain_results. If
  /// the parent is not yet terminal when this query is admitted, the query
  /// simply runs unseeded — seeding changes cost, never results.
  bool seed_from_parent = false;
};

class QueryScheduler {
 public:
  explicit QueryScheduler(ServiceOptions options);
  /// Cancels every query still queued or running (each sink gets its
  /// OnDone), then joins the workers.
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Enqueues a query. The relations behind `query` and the sink must stay
  /// valid until the sink's OnDone returns. Fails with OutOfRange when the
  /// admission queue is full.
  Result<QueryHandle> Submit(const SkyMapJoinQuery& query,
                             ProgXeOptions options, QuerySink* sink,
                             const SubmitOptions& submit);

  /// Weight-only convenience overload (the pre-SubmitOptions signature).
  Result<QueryHandle> Submit(const SkyMapJoinQuery& query,
                             ProgXeOptions options, QuerySink* sink,
                             double weight = 1.0) {
    SubmitOptions submit;
    submit.weight = weight;
    return Submit(query, std::move(options), sink, submit);
  }

  /// Blocks until every query submitted so far is terminal.
  void Drain();

  /// Snapshot of queue depth, admitted/running counts and the served-work
  /// counters.
  SchedulerStats stats() const;

  const ServiceOptions& options() const { return options_; }

 private:
  ServiceOptions options_;
  std::shared_ptr<service_internal::SchedulerCore> core_;
  std::vector<std::thread> workers_;
};

}  // namespace progxe
