#include "shard/shard_engine.h"

namespace progxe {

ShardEngine::~ShardEngine() = default;

}  // namespace progxe
