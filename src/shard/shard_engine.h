// ShardEngine: the per-shard seam inside ShardedStream.
//
// The sharded merge needs exactly four things from a shard: a budgeted
// pump, an error channel, cumulative engine counters and the
// RemainingLowerBound frontier-corner watermark. This interface names that
// contract so the shard can live anywhere:
//
//   * LocalShardEngine — the original in-process ProgXeSession, pumped
//     directly (the only implementation before distribution).
//   * RemoteShardStream (net/remote_shard.h) — the same contract spoken
//     over the wire protocol to a shard-worker daemon; stats and the
//     watermark are per-pump snapshots streamed back with each reply.
//
// The merge logic (dominator filtering, quorum release on watermarks,
// quarantine/retry/replay) is identical either way: a transport failure
// surfaces through last_status() as a retryable kUnavailable, exactly like
// an injected in-process fault.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "progxe/session.h"

namespace progxe {

class ShardEngine {
 public:
  virtual ~ShardEngine();

  /// Budgeted pump, same contract as ProgXeStream::NextBatch: advance by at
  /// most ~max_pairs join pairs (0 = until at least one result or done) and
  /// deliver up to max_results locally-final tuples (0 = uncapped).
  virtual size_t NextBatch(size_t max_results, size_t max_pairs,
                           std::vector<ResultTuple>* out) = 0;

  /// Tears the engine down (idempotent); stats() stays readable.
  virtual void Close() = 0;

  /// Cumulative engine counters. For a remote shard this is the last
  /// snapshot the worker reported (updated with every open/pump reply), so
  /// the coordinator's before/after pump deltas stay exact.
  virtual const ProgXeStats& stats() const = 0;

  /// OK while healthy. Engine faults and transport failures (heartbeat
  /// timeout, connection reset) land here; IsRetryable() failures ride the
  /// sharded stream's quarantine/retry path.
  virtual Status last_status() const = 0;

  /// The shard's remaining-output frontier corner (canonical space); false
  /// iff the shard can emit nothing more. Remote engines answer from the
  /// watermark streamed with the last reply — a valid (if slightly stale)
  /// bound, since a session's frontier only rises.
  virtual bool RemainingLowerBound(std::vector<double>* lo) const = 0;

  /// The immutable prepared state backing the shard, for retry re-opens
  /// that skip the prepare phase. Null when not applicable (remote shards
  /// re-ship their slice instead — possibly to a different engine).
  virtual std::shared_ptr<const PreparedInputs> prepared_inputs() const {
    return nullptr;
  }

  /// Resumable region-cursor snapshot (progxe/checkpoint.h), captured by
  /// the sharded stream after each healthy pump and handed to the next
  /// incarnation on retry. False when unsupported or not currently at a
  /// clean region boundary. Remote engines answer from the checkpoint
  /// streamed with the last pump reply.
  virtual bool ExportCheckpoint(SessionCheckpoint* out) {
    (void)out;
    return false;
  }

  /// True iff this incarnation was opened from a checkpoint that skipped
  /// regions; its output may then contain locally-non-final tuples, so the
  /// merge must keep this shard's own watermark in the release check.
  virtual bool resumed() const { return false; }

  /// Join pairs the resume skipped re-generating (0 when not resumed).
  virtual uint64_t replay_pairs_saved() const { return 0; }
};

/// The in-process implementation: a thin forwarding wrapper over one
/// ProgXeSession.
class LocalShardEngine : public ShardEngine {
 public:
  explicit LocalShardEngine(std::unique_ptr<ProgXeSession> session)
      : session_(std::move(session)) {}

  size_t NextBatch(size_t max_results, size_t max_pairs,
                   std::vector<ResultTuple>* out) override {
    return session_->NextBatch(max_results, max_pairs, out);
  }
  void Close() override { session_->Close(); }
  const ProgXeStats& stats() const override { return session_->stats(); }
  Status last_status() const override { return session_->last_status(); }
  bool RemainingLowerBound(std::vector<double>* lo) const override {
    return session_->RemainingLowerBound(lo);
  }
  std::shared_ptr<const PreparedInputs> prepared_inputs() const override {
    return session_->prepared_inputs();
  }
  bool ExportCheckpoint(SessionCheckpoint* out) override {
    return session_->ExportCheckpoint(out);
  }
  bool resumed() const override { return session_->resumed(); }
  uint64_t replay_pairs_saved() const override {
    return session_->replay_pairs_saved();
  }

 private:
  std::unique_ptr<ProgXeSession> session_;
};

}  // namespace progxe
