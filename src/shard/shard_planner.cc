#include "shard/shard_planner.h"

namespace progxe {

namespace {

/// Rows of `rel` grouped by shard, in source order.
std::vector<std::vector<RowId>> RowsByShard(const Relation& rel,
                                            int num_shards) {
  std::vector<std::vector<RowId>> rows(static_cast<size_t>(num_shards));
  for (size_t i = 0; i < rel.size(); ++i) {
    const RowId id = static_cast<RowId>(i);
    rows[static_cast<size_t>(ShardOfKey(rel.join_key(id), num_shards))]
        .push_back(id);
  }
  return rows;
}

}  // namespace

std::vector<QueryShard> PlanShards(const Relation& r, const Relation& t,
                                   int num_shards) {
  if (num_shards < 1) num_shards = 1;
  const std::vector<std::vector<RowId>> r_rows = RowsByShard(r, num_shards);
  const std::vector<std::vector<RowId>> t_rows = RowsByShard(t, num_shards);

  std::vector<QueryShard> shards;
  shards.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    QueryShard shard;
    shard.r = r.Select(r_rows[static_cast<size_t>(s)], &shard.r_orig_ids);
    shard.t = t.Select(t_rows[static_cast<size_t>(s)], &shard.t_orig_ids);
    shards.push_back(std::move(shard));
  }
  return shards;
}

}  // namespace progxe
