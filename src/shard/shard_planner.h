// ShardPlanner: splits one SkyMapJoin query into K disjoint sub-queries by
// hash-partitioning both sources on the join key.
//
// Because SkyMapJoin's join is an equi-join on the dictionary-encoded join
// key, every (r, t) join pair has matching keys and therefore lands whole in
// exactly one shard: the union of the shards' join outputs is exactly the
// unsharded join output, with no pair duplicated or lost. That disjointness
// is what makes the sharded skyline reconstructible — the global skyline is
// the skyline of the union of the per-shard skylines (a global result is
// undominated by anything, in particular by its own shard, so it survives
// its shard's local skyline).
#pragma once

#include <vector>

#include "data/relation.h"
#include "data/schema.h"
#include "progxe/executor.h"

namespace progxe {

/// Deterministic 64-bit finalizer (splitmix64) over the join key: the shard
/// of a key must not depend on platform hash seeding, so sharded runs are
/// reproducible across processes.
inline uint64_t MixJoinKey(JoinKey key) {
  uint64_t x = static_cast<uint64_t>(key) + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline int ShardOfKey(JoinKey key, int num_shards) {
  return static_cast<int>(MixJoinKey(key) % static_cast<uint64_t>(num_shards));
}

/// One shard's slice of the query: owned row-disjoint copies of both
/// sources plus the maps back to the caller's original row ids.
struct QueryShard {
  Relation r{Schema::Anonymous(0)};
  Relation t{Schema::Anonymous(0)};
  /// Shard-local row id -> original row id, per source.
  std::vector<RowId> r_orig_ids;
  std::vector<RowId> t_orig_ids;

  /// The shard's sub-query; `map`/`pref` are copied from the parent query
  /// and `r`/`t` point into *this, so the shard must outlive the returned
  /// query's consumers.
  SkyMapJoinQuery Query(const SkyMapJoinQuery& parent) const {
    SkyMapJoinQuery q = parent;
    q.r = &r;
    q.t = &t;
    return q;
  }
};

/// Hash-partitions `r` and `t` by join key into `num_shards` disjoint
/// shards (some possibly empty on skewed key domains). Row order within a
/// shard preserves the source order, so per-shard runs are deterministic.
std::vector<QueryShard> PlanShards(const Relation& r, const Relation& t,
                                   int num_shards);

}  // namespace progxe
