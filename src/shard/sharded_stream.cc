#include "shard/sharded_stream.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "mapping/interval.h"
#include "net/remote_shard.h"
#include "net/worker_pool.h"
#include "obs/trace.h"
#include "prefs/dominance.h"

namespace progxe {

ProgXeStream::~ProgXeStream() = default;

ShardCoverage ProgXeStream::coverage() const {
  // Base implementation for single-instance streams: one sub-stream,
  // completed iff it drained healthy. Always complete() — partial coverage
  // is a sharded-stream concept.
  ShardCoverage cov;
  cov.shards = 1;
  cov.completed = Finished() && last_status().ok() ? 1 : 0;
  return cov;
}

std::string ShardCoverage::ToString() const {
  std::ostringstream os;
  os << completed << "/" << shards << " shards";
  if (remote > 0) os << " remote=" << remote;
  if (retries > 0) os << " retries=" << retries;
  if (replay_pairs_saved > 0) os << " saved_pairs=" << replay_pairs_saved;
  if (abandoned > 0) {
    os << " abandoned=[";
    for (size_t i = 0; i < abandoned_shards.size(); ++i) {
      os << (i == 0 ? "" : ",") << abandoned_shards[i];
    }
    os << "]";
  }
  return os.str();
}

namespace {

/// Per-attribute value hull of a relation (empty vector for an empty one).
std::vector<Interval> AttributeHull(const Relation& rel) {
  std::vector<Interval> hull;
  if (rel.empty()) return hull;
  const int width = rel.num_attributes();
  hull.reserve(static_cast<size_t>(width));
  for (int a = 0; a < width; ++a) {
    hull.push_back(Interval::Point(rel.attr(0, a)));
  }
  for (size_t i = 1; i < rel.size(); ++i) {
    for (int a = 0; a < width; ++a) {
      Interval& iv = hull[static_cast<size_t>(a)];
      const double v = rel.attr(static_cast<RowId>(i), a);
      iv.lo = std::min(iv.lo, v);
      iv.hi = std::max(iv.hi, v);
    }
  }
  return hull;
}

/// Merge-grid resolution: same budget rule and constants as the engine's
/// auto-sized output grid (prepare.cc), so the accepted-frontier index
/// stays cache-resident.
int MergeCellsPerDim(int k) { return AutoCellsPerDim(k, 60000.0, 4, 24); }

/// splitmix64 finalizer (same mixer as shard_planner's key hash).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::chrono::nanoseconds JitteredRetryBackoff(const ShardOptions& opts,
                                              uint64_t seed, int shard,
                                              int consecutive_failures) {
  const int exp = std::min(std::max(consecutive_failures, 1) - 1, 6);
  const auto base = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        opts.retry_backoff) *
                    (1 << exp);
  if (opts.retry_jitter == 0.0 || base.count() == 0) return base;
  // One uniform draw in [0, 1) per (seed, shard, attempt) triple; the top
  // 53 bits give an exact double.
  const uint64_t h =
      Mix64(seed ^ Mix64(static_cast<uint64_t>(shard) * 0x9e3779b97f4a7c15ULL +
                         static_cast<uint64_t>(consecutive_failures)));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  const double factor = std::max(0.0, 1.0 + opts.retry_jitter * (2.0 * u - 1.0));
  return std::chrono::nanoseconds(static_cast<int64_t>(
      std::llround(static_cast<double>(base.count()) * factor)));
}

Result<std::unique_ptr<ShardedStream>> ShardedStream::Open(
    const SkyMapJoinQuery& query, ProgXeOptions options,
    const ShardOptions& shard_options) {
  if (query.r == nullptr || query.t == nullptr) {
    // The planner reads the sources before any per-shard PreparePhase
    // validation could reject them; keep parity with the unsharded path.
    return Status::InvalidArgument("query sources must be non-null");
  }
  std::unique_ptr<ShardedStream> stream(new ShardedStream());
  stream->cap_ = options.max_results;
  stream->query_ = query;
  stream->shard_options_ = shard_options;
  if (const char* env = std::getenv("PROGXE_FAULT_RETRIES")) {
    // Soak override: a randomized ambient fault schedule must not exhaust
    // the per-test retry budget, or every suite would need fault-aware
    // options. Only ever raises the budget.
    stream->shard_options_.max_retries =
        std::max(stream->shard_options_.max_retries, std::atoi(env));
  }
  // The cap is a property of the merged stream: a shard must not stop at
  // max_results of its *local* skyline, which is unrelated to the first
  // max_results global results.
  stream->sub_options_ = std::move(options);
  stream->sub_options_.max_results = 0;
  stream->faults_ = stream->sub_options_.faults != nullptr
                        ? stream->sub_options_.faults.get()
                        : FaultInjector::FromEnv();
  if (!stream->shard_options_.workers.empty()) {
    stream->pool_ = stream->shard_options_.worker_pool != nullptr
                        ? stream->shard_options_.worker_pool
                        : std::make_shared<WorkerPool>();
  }

  std::vector<QueryShard> slices =
      PlanShards(*query.r, *query.t, shard_options.num_shards);
  // Sessions point into their slice's relations, so every slice must sit at
  // its final address before any session opens: reserve + move all slices
  // in first, and never resize shards_ afterwards.
  stream->shards_.reserve(slices.size());
  for (QueryShard& slice : slices) {
    stream->shards_.emplace_back();
    stream->shards_.back().slice = std::move(slice);
  }
  for (size_t i = 0; i < stream->shards_.size(); ++i) {
    // Validation runs per shard before the empty-source short-circuit, so
    // an invalid query fails here even when every shard is empty.
    Status st = stream->OpenShard(i);
    if (!st.ok()) {
      // A non-retryable open failure (validation) fails Open itself; a
      // retryable one is a containable fault even here — quarantine the
      // shard and let the pump retry it, unless the budget is already gone.
      if (!IsRetryableStatusCode(st.code())) return st;
      stream->OnShardFailure(i, std::move(st));
      if (stream->failed_) return stream->status_;
    }
  }
  stream->mapper_ = CanonicalMapper(query.map, query.pref);
  stream->k_ = stream->mapper_.output_dimensions();

  // Canonical output hull for the accepted-frontier index: interval
  // arithmetic over the full attribute boxes, exactly the enclosure the
  // look-ahead uses per input partition. Every canonical output lands
  // inside it; and since the index only relies on quantization
  // monotonicity, even an edge clamp could not cost correctness.
  const size_t kk = static_cast<size_t>(stream->k_);
  std::vector<Interval> out_hull(kk, Interval(0.0, 0.0));
  const std::vector<Interval> r_hull = AttributeHull(*query.r);
  const std::vector<Interval> t_hull = AttributeHull(*query.t);
  if (!r_hull.empty() && !t_hull.empty()) {
    std::vector<Interval> r_contrib(kk);
    std::vector<Interval> t_contrib(kk);
    stream->mapper_.ContributionBounds(Side::kR, r_hull, r_contrib.data());
    stream->mapper_.ContributionBounds(Side::kT, t_hull, t_contrib.data());
    stream->mapper_.CombineBounds(r_contrib.data(), t_contrib.data(),
                                  out_hull.data());
  }
  const int cpd = MergeCellsPerDim(stream->k_);
  stream->merge_grid_ = GridGeometry(std::move(out_hull), cpd);
  stream->accepted_ = DominanceIndex(stream->k_, cpd);
  stream->canon_scratch_.resize(kk);
  stream->coord_scratch_.resize(kk);

  // Shards that prepared to provably-empty joins constrain nothing.
  stream->RefreshBoundsAndRelease();
  return stream;
}

ShardedStream::~ShardedStream() { Close(); }

bool ShardedStream::AllExhausted() const {
  for (const SubShard& shard : shards_) {
    if (!shard.exhausted && !shard.abandoned) return false;
  }
  return true;
}

Status ShardedStream::OpenShard(size_t i) {
  SubShard& shard = shards_[i];
  PROGXE_RETURN_NOT_OK(MaybeInjectFault(faults_, fault_sites::kShardOpen,
                                        static_cast<int>(i)));
  ProgXeOptions opts = sub_options_;
  opts.fault_instance = static_cast<int>(i);
  const SessionCheckpoint* resume =
      shard_options_.checkpoint_retry && shard.has_checkpoint
          ? &shard.checkpoint
          : nullptr;
  if (pool_ != nullptr) {
    // Remote shard: ship the slice to a worker. The endpoint rotates with
    // the shard's incarnation, so a retry after a worker failure re-opens
    // on a *different* engine (the dead worker's endpoint comes around
    // again only after every alternative was tried) — and endpoints the
    // circuit breaker has sidelined are skipped while any alternative is
    // closed, so a dead worker stops eating whole connect timeouts per
    // retry. When every circuit is open the rotation's original pick goes
    // through as the half-open probe. The worker runs a plain ProgXeSession
    // over the identical slice + options, so the replayed local skyline —
    // and therefore the merged delivered set — is bit-identical to the
    // in-process run.
    const std::vector<std::string>& workers = shard_options_.workers;
    size_t pick =
        (i + static_cast<size_t>(shard.incarnation)) % workers.size();
    for (size_t probe = 0; probe < workers.size(); ++probe) {
      const size_t cand = (pick + probe) % workers.size();
      if (!pool_->IsOpen(workers[cand])) {
        pick = cand;
        break;
      }
    }
    const std::string& endpoint = workers[pick];
    ++shard.incarnation;
    // The worker falls back to a from-scratch replay by itself if it
    // rejects the checkpoint as stale/corrupt (it answers resumed=false).
    PROGXE_ASSIGN_OR_RETURN(
        shard.session,
        RemoteShardStream::Open(pool_, endpoint, static_cast<int>(i),
                                shard.slice.r, shard.slice.t, query_.map,
                                query_.pref, opts, resume));
  } else {
    ++shard.incarnation;
    if (shard.prepared != nullptr) {
      // Retry re-open: adopt the first incarnation's prepared state instead
      // of re-running the prepare phase over the slice.
      Result<std::unique_ptr<ProgXeSession>> opened =
          ProgXeSession::OpenPrepared(shard.prepared, opts, resume);
      if (!opened.ok() && resume != nullptr &&
          opened.status().IsInvalidArgument()) {
        // Stale/corrupt checkpoint: full replay is always a sound fallback.
        PROGXE_LOG(Warn) << "shard " << i
                         << " resume checkpoint rejected, replaying: "
                         << opened.status().ToString();
        shard.has_checkpoint = false;
        opened = ProgXeSession::OpenPrepared(shard.prepared, std::move(opts));
      }
      PROGXE_RETURN_NOT_OK(opened.status());
      shard.session =
          std::make_unique<LocalShardEngine>(std::move(opened).MoveValue());
    } else {
      PROGXE_ASSIGN_OR_RETURN(
          std::unique_ptr<ProgXeSession> session,
          ProgXeSession::Open(shard.slice.Query(query_), std::move(opts)));
      shard.session = std::make_unique<LocalShardEngine>(std::move(session));
      if (shard_options_.max_retries > 0) {
        // Capture for possible re-opens. The prepared state aliases the
        // slice's relations (which live in shards_ for the stream's
        // lifetime), so sharing it across incarnations is safe.
        shard.prepared = shard.session->prepared_inputs();
      }
    }
  }
  if (shard.session->resumed()) {
    shard.resumed = true;
    replay_pairs_saved_ += shard.session->replay_pairs_saved();
    TraceInstant(trace_cats::kShard, "retry.resume", "shard",
                 static_cast<int64_t>(i), "regions_skipped",
                 static_cast<int64_t>(shard.checkpoint.skip_regions.size()));
  }
  return Status::OK();
}

void ShardedStream::OnShardFailure(size_t i, Status status) {
  assert(!status.ok());
  SubShard& shard = shards_[i];
  if (shard.session != nullptr) {
    // The incarnation is dead but its work happened: fold its counters into
    // the shard's lost tally before dropping it (reset joins any workers).
    shard.lost_stats.Accumulate(shard.session->stats());
    shard.session.reset();
  }
  shard.last_error = status;
  ++shard.consecutive_failures;
  if (IsRetryableStatusCode(status.code()) &&
      shard.consecutive_failures <= shard_options_.max_retries &&
      (shard_options_.max_total_retries == 0 ||
       retries_committed_ < shard_options_.max_total_retries)) {
    // Quarantine: only this shard stops; everyone else keeps pumping and
    // releasing against its frozen pre-failure bound. Exponential backoff
    // (capped at 64x so a long retry fight stays responsive) with seeded
    // ±retry_jitter so simultaneously-sick shards desynchronize. The
    // stream-wide budget is committed here, not at the re-open, so shards
    // quarantining in the same round cannot collectively overdraw it.
    ++retries_committed_;
    const std::chrono::nanoseconds backoff = JitteredRetryBackoff(
        shard_options_, sub_options_.seed, static_cast<int>(i),
        shard.consecutive_failures);
    shard.next_attempt = Clock::now() + backoff;
    shard.replayed = true;
    const int64_t backoff_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(backoff).count();
    TraceInstant(trace_cats::kShard, "shard.retry_backoff", "shard",
                 static_cast<int64_t>(i), "backoff_ms", backoff_ms);
    PROGXE_LOG(Warn) << "shard " << i << " quarantined (failure "
                     << shard.consecutive_failures << "/"
                     << shard_options_.max_retries << ", retry in "
                     << backoff_ms << "ms): " << status.ToString();
    return;
  }
  if (shard_options_.allow_partial) {
    // Degrade: drop the shard from the merge like an exhausted one. Its
    // already-delivered results stand (they are true skyline members); the
    // rest of the stream completes as the skyline of the data actually
    // observed, and coverage() reports the hole.
    shard.abandoned = true;
    std::unordered_set<uint64_t>().swap(shard.ingested);
    shard.has_checkpoint = false;
    bounds_dirty_ = true;  // its bound no longer constrains releases
    TraceInstant(trace_cats::kShard, "shard.abandon", "shard",
                 static_cast<int64_t>(i));
    PROGXE_LOG(Warn) << "shard " << i
                     << " abandoned after retry exhaustion (allow_partial): "
                     << status.ToString();
    return;
  }
  PROGXE_LOG(Error) << "shard " << i
                    << " out of retries; failing the stream: "
                    << status.ToString();
  FailStream(std::move(status));
}

void ShardedStream::FailStream(Status status) {
  assert(!status.ok());
  failed_ = true;
  status_ = std::move(status);
  // Close (not reset) the surviving sessions so stats() stays readable;
  // dead incarnations are already folded into lost_stats.
  for (SubShard& shard : shards_) {
    if (shard.session != nullptr) shard.session->Close();
  }
  ReleaseMergeState();
  ready_.clear();
  ready_pos_ = 0;
}

ShardedStream::Clock::time_point ShardedStream::NextRetryAt() const {
  Clock::time_point next = Clock::time_point::max();
  for (const SubShard& shard : shards_) {
    if (shard.exhausted || shard.abandoned || shard.session != nullptr) {
      continue;
    }
    next = std::min(next, shard.next_attempt);
  }
  return next;
}

uint64_t ShardedStream::PumpRound(size_t per_shard) {
  uint64_t used = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    SubShard& shard = shards_[i];
    if (shard.exhausted || shard.abandoned) continue;
    if (shard.session == nullptr) {
      // Quarantined. Re-open once the backoff expires; the replay is
      // idempotent (see Ingest), so the re-opened incarnation simply runs
      // from the start.
      if (Clock::now() < shard.next_attempt) continue;
      ++total_retries_;
      Status reopened = OpenShard(i);
      if (!reopened.ok()) {
        OnShardFailure(i, std::move(reopened));
        if (failed_) return used;
        continue;
      }
    }
    const uint64_t before = shard.session->stats().join_pairs_generated;
    Status fault = MaybeInjectFault(faults_, fault_sites::kShardNextBatch,
                                    static_cast<int>(i));
    if (fault.ok()) {
      TraceSpan span(trace_cats::kShard, "shard.pump");
      span.arg("shard", static_cast<int64_t>(i));
      shard.session->NextBatch(/*max_results=*/0, per_shard, &pump_scratch_);
      const uint64_t pumped =
          shard.session->stats().join_pairs_generated - before;
      used += pumped;
      span.arg("pairs", static_cast<int64_t>(pumped));
      // Engine-level failures (the "session.next_batch" site) surface
      // through the sub-session's own error channel.
      fault = shard.session->last_status();
    }
    if (PROGXE_PREDICT_FALSE(!fault.ok())) {
      OnShardFailure(i, std::move(fault));
      if (failed_) return used;
      continue;
    }
    shard.consecutive_failures = 0;  // a healthy pump re-arms the budget
    Ingest(i, pump_scratch_);
    if (shard_options_.checkpoint_retry && shard_options_.max_retries > 0) {
      // Capture the freshest resume point while the shard is healthy; a
      // later retry hands it to the re-opened incarnation. Only adopt a
      // checkpoint whose delivered count is consistent with what this
      // coordinator actually merged (a stale/corrupt remote snapshot must
      // not survive to a resume — full replay is always sound).
      SessionCheckpoint checkpoint;
      if (shard.session->ExportCheckpoint(&checkpoint) &&
          checkpoint.delivered <= shard.ingested.size()) {
        shard.checkpoint = std::move(checkpoint);
        shard.has_checkpoint = true;
      }
    }
  }
  return used;
}

void ShardedStream::DropAccepted(int32_t acc_id) {
  accepted_.Remove(acc_pos_[static_cast<size_t>(acc_id)]);
  acc_pos_[static_cast<size_t>(acc_id)] = -1;
  const int32_t h = acc_held_[static_cast<size_t>(acc_id)];
  // Released entries are unreachable here: their release proved no live
  // shard could dominate them, and any later arrival is such a tuple.
  assert(h >= 0 && "a released candidate can never be dominated");
  acc_held_[static_cast<size_t>(acc_id)] = -1;
  const size_t last = held_.size() - 1;
  if (static_cast<size_t>(h) != last) {
    held_[static_cast<size_t>(h)] = std::move(held_[last]);
    acc_held_[static_cast<size_t>(held_[static_cast<size_t>(h)].acc_id)] = h;
  }
  held_.pop_back();
}

void ShardedStream::Ingest(size_t shard_idx,
                           const std::vector<ResultTuple>& batch) {
  if (batch.empty()) return;
  Stopwatch watch;
  TraceSpan span(trace_cats::kShard, "shard.merge");
  span.arg("shard", static_cast<int64_t>(shard_idx));
  span.arg("batch", static_cast<int64_t>(batch.size()));
  SubShard& owner = shards_[shard_idx];
  const QueryShard& slice = owner.slice;
  // Replay dedup is only needed when a re-open can happen at all.
  const bool track_replay = shard_options_.max_retries > 0;
  const size_t k = static_cast<size_t>(k_);
  for (const ResultTuple& local : batch) {
    const RowId orig_r = slice.r_orig_ids[local.r_id];
    const RowId orig_t = slice.t_orig_ids[local.t_id];
    if (track_replay) {
      // Each (shard, pair) is merged at most once *ever*, across
      // incarnations. Without this, a replayed delivery would be
      // point-equal to its accepted twin — which strict dominance cannot
      // filter — and the stream would emit a duplicate. RowId is 32-bit,
      // so the pair packs losslessly.
      const uint64_t key =
          (static_cast<uint64_t>(orig_r) << 32) | static_cast<uint64_t>(orig_t);
      if (!owner.ingested.insert(key).second) continue;
    }
    double* canon = canon_scratch_.data();
    for (size_t j = 0; j < k; ++j) {
      canon[j] = mapper_.Canonicalize(static_cast<int>(j), local.values[j]);
    }
    CellCoord* coords = coord_scratch_.data();
    merge_grid_.CoordsOf(canon, coords);

    // Dominated by any accepted point (released or held, from any shard):
    // provably outside the global skyline. A dominator's canonical cell
    // must lie in the arrival's <= cone, so the cone sweep visits only the
    // real candidates instead of the whole accepted set.
    bool dominated = false;
    accepted_.SweepLe(coords, [&](size_t pos) {
      const double* a =
          acc_canon_.data() +
          static_cast<size_t>(accepted_.payload(pos)) * k;
      if (DominatesMin(a, canon, k_, &merge_counter_)) {
        dominated = true;
        return false;
      }
      return true;
    });
    if (dominated) continue;

    // The arrival may retroactively disprove held candidates' finality —
    // they were never delivered, so dropping them here is exactly the
    // merge-time re-validation (and it is what keeps the index the Pareto
    // frontier: the arrival rejects at least as much as every entry it
    // removes). Released entries cannot appear: nothing can dominate them
    // (see DropAccepted).
    accepted_.SweepGe(coords, 0, [&](size_t pos) {
      const int32_t id = accepted_.payload(pos);
      if (DominatesMin(canon,
                       acc_canon_.data() + static_cast<size_t>(id) * k, k_,
                       &merge_counter_)) {
        DropAccepted(id);
      }
      return true;
    });

    // Admit: enter the accepted frontier and the held queue.
    const int32_t acc_id = static_cast<int32_t>(acc_pos_.size());
    acc_canon_.insert(acc_canon_.end(), canon, canon + k);
    acc_pos_.push_back(accepted_.Add(coords, acc_id));
    acc_held_.push_back(static_cast<int32_t>(held_.size()));
    Candidate candidate;
    candidate.tuple = local;
    candidate.tuple.r_id = orig_r;
    candidate.tuple.t_id = orig_t;
    candidate.shard = static_cast<int>(shard_idx);
    candidate.acc_id = acc_id;
    held_.push_back(std::move(candidate));
    held_peak_ = std::max(held_peak_, held_.size());
    accepted_.MaybeCompact([this](int32_t id, int32_t pos) {
      acc_pos_[static_cast<size_t>(id)] = pos;
    });
  }
  merge_seconds_ += watch.ElapsedSeconds();
}

bool ShardedStream::GloballyFinal(Candidate* candidate) {
  const double* canon =
      acc_canon_.data() +
      static_cast<size_t>(candidate->acc_id) * static_cast<size_t>(k_);
  // Cheapest first: the shard that blocked the last check usually still
  // does, so a still-held candidate costs one comparison per re-check. A
  // shard with an *empty* bound (quarantined before it ever published a
  // frontier) blocks everything: it may still emit anything.
  const int cached = candidate->blocker;
  if (cached >= 0) {
    const SubShard& blocker = shards_[static_cast<size_t>(cached)];
    if (!blocker.exhausted && !blocker.abandoned &&
        (blocker.bound.empty() ||
         DominatesMin(blocker.bound.data(), canon, k_, &merge_counter_))) {
      return false;
    }
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    const bool own = static_cast<int>(s) == candidate->shard;
    if ((own && !shards_[s].resumed) || static_cast<int>(s) == cached ||
        shards_[s].exhausted || shards_[s].abandoned) {
      continue;
    }
    // Every future tuple y of shard s satisfies y >= bound componentwise,
    // so y can strictly dominate the candidate only if the bound corner
    // itself does. (The candidate's own shard needs no check across a
    // plain replay: a shard's outputs are its local skyline, whose members
    // never strictly dominate each other. But once the shard *resumed*
    // from a checkpoint it skips regions, so an output may have its
    // suppressor still in flight from the same shard — the own bound then
    // blocks it until the suppressor arrives and Ingest prunes the twin.)
    if (shards_[s].bound.empty() ||
        DominatesMin(shards_[s].bound.data(), canon, k_, &merge_counter_)) {
      candidate->blocker = static_cast<int>(s);
      return false;
    }
  }
  return true;
}

void ShardedStream::RefreshBoundsAndRelease() {
  // A fault in the merge release pass is not attributable to any one shard,
  // so there is nothing to quarantine: it fails the stream.
  Status fault = MaybeInjectFault(faults_, fault_sites::kMergeRelease);
  if (PROGXE_PREDICT_FALSE(!fault.ok())) {
    FailStream(std::move(fault));
    return;
  }
  Stopwatch watch;
  TraceSpan span(trace_cats::kShard, "shard.release");
  const size_t ready_before = ready_.size();
  bool advanced = bounds_dirty_;
  bounds_dirty_ = false;
  for (SubShard& shard : shards_) {
    if (shard.exhausted || shard.abandoned) continue;
    // Quarantined: the pre-failure bound stays frozen. It is still valid —
    // everything the dead incarnation delivered is already merged, so the
    // shard's remaining *new* outputs are a subset of what the old frontier
    // bounded.
    if (shard.session == nullptr) continue;
    if (!shard.session->RemainingLowerBound(&bound_scratch_)) {
      shard.exhausted = true;
      advanced = true;
      // The shard finished healthy: nothing can ever replay it, so the
      // replay-dedup set (the largest per-shard merge structure) and the
      // resume checkpoint are dead weight — free them now instead of at
      // stream teardown.
      std::unordered_set<uint64_t>().swap(shard.ingested);
      shard.checkpoint = SessionCheckpoint{};
      shard.has_checkpoint = false;
    } else if (shard.bound.empty()) {
      shard.bound = bound_scratch_;
      advanced = true;
    } else if (shard.replayed) {
      // A shard that has ever been replayed ratchets componentwise: the
      // replaying incarnation's frontier restarts below the pre-failure
      // bound while it re-covers old ground, and both bounds are valid, so
      // the effective bound is their max.
      for (size_t j = 0; j < shard.bound.size(); ++j) {
        if (bound_scratch_[j] > shard.bound[j]) {
          shard.bound[j] = bound_scratch_[j];
          advanced = true;
        }
      }
    } else if (bound_scratch_ != shard.bound) {
      shard.bound = bound_scratch_;
      advanced = true;
    }
  }
  if (advanced) ++bounds_version_;
  size_t i = 0;
  while (i < held_.size()) {
    Candidate& candidate = held_[i];
    // Blocked at the current bound set already: nothing changed that could
    // unblock it, skip without comparisons. (New candidates carry version
    // 0 < bounds_version_, so they are always checked once.)
    if (candidate.checked_version == bounds_version_) {
      ++i;
      continue;
    }
    if (!GloballyFinal(&candidate)) {
      candidate.checked_version = bounds_version_;
      ++i;
      continue;
    }
    // Release: the tuple is globally final. Its index entry stays — a
    // released candidate keeps rejecting dominated arrivals forever.
    ready_.push_back(std::move(candidate.tuple));
    acc_held_[static_cast<size_t>(candidate.acc_id)] = -1;
    const size_t last = held_.size() - 1;
    if (i != last) {
      held_[i] = std::move(held_[last]);
      acc_held_[static_cast<size_t>(held_[i].acc_id)] =
          static_cast<int32_t>(i);
    }
    held_.pop_back();
    // Re-examine the swapped-in candidate at position i.
  }
  span.arg("released", static_cast<int64_t>(ready_.size() - ready_before));
  span.arg("held", static_cast<int64_t>(held_.size()));
  merge_seconds_ += watch.ElapsedSeconds();
}

size_t ShardedStream::NextBatch(size_t max_results, size_t max_pairs,
                                std::vector<ResultTuple>* out) {
  out->clear();
  if (closed_ || failed_ || CapReached()) return 0;
  if (ready_pos_ >= ready_.size()) {
    // Reclaim the delivered (moved-out) prefix before refilling.
    ready_.clear();
    ready_pos_ = 0;
  }
  size_t budget = max_pairs;
  while (ready_pos_ >= ready_.size() && !AllExhausted() && !failed_) {
    size_t runnable = 0;
    const Clock::time_point now = Clock::now();
    for (const SubShard& shard : shards_) {
      if (shard.exhausted || shard.abandoned) continue;
      if (shard.session != nullptr || now >= shard.next_attempt) ++runnable;
    }
    if (runnable == 0) {
      // Every live shard is parked in retry backoff. A budgeted call
      // yields (returns 0 with !Finished()) so a scheduler keeps checking
      // cancel/deadline between slices instead of a worker sleeping inside
      // the stream; an unbudgeted caller has nothing better to do than
      // wait out the earliest backoff.
      if (max_pairs != 0) return 0;
      std::this_thread::sleep_until(NextRetryAt());
      continue;
    }
    // Split the slice budget across the runnable shards; unbudgeted calls
    // pump each shard to its next local emission instead. Release checks
    // run once per pump batch (not per candidate): every shard first
    // ingests its whole batch, then a single refresh re-reads the frontier
    // corners and drains everything they cleared.
    const size_t per_shard =
        max_pairs == 0 ? 0 : std::max<size_t>(1, budget / runnable);
    const uint64_t used = PumpRound(per_shard);
    if (!failed_) RefreshBoundsAndRelease();
    if (failed_) break;
    if (max_pairs != 0) {
      budget = used >= budget ? 0 : budget - static_cast<size_t>(used);
      if (budget == 0) break;  // possibly a yield: nothing globally final yet
    }
  }
  if (failed_) return 0;

  size_t n = ready_.size() - ready_pos_;
  if (max_results != 0) n = std::min(n, max_results);
  if (cap_ != 0) n = std::min(n, cap_ - delivered_);
  out->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out->push_back(std::move(ready_[ready_pos_ + i]));
  }
  ready_pos_ += n;
  delivered_ += n;
  if (CapReached()) {
    // Early termination, merge-level: the remaining shard work (and the
    // held candidates) can never be delivered — release the engines (and
    // their worker threads) now.
    for (SubShard& shard : shards_) {
      if (shard.session != nullptr) shard.session->Close();
    }
    ReleaseMergeState();
  }
  return n;
}

void ShardedStream::ReleaseMergeState() {
  held_.clear();
  accepted_ = DominanceIndex(k_, merge_grid_.cells_per_dim());
  acc_canon_.clear();
  acc_canon_.shrink_to_fit();
  acc_pos_.clear();
  acc_held_.clear();
}

void ShardedStream::Close() {
  if (closed_) return;
  closed_ = true;
  for (SubShard& shard : shards_) {
    if (shard.session != nullptr) shard.session->Close();
  }
  ReleaseMergeState();
  ready_.clear();
  ready_pos_ = 0;
}

bool ShardedStream::Finished() const {
  if (closed_ || failed_ || CapReached()) return true;
  return ready_pos_ >= ready_.size() && held_.empty() && AllExhausted();
}

const ProgXeStats& ShardedStream::stats() const {
  agg_stats_ = ProgXeStats{};
  for (const SubShard& shard : shards_) {
    // Dead incarnations of retried shards first, then whatever is live.
    agg_stats_.Accumulate(shard.lost_stats);
    if (shard.session != nullptr) agg_stats_.Accumulate(shard.session->stats());
  }
  return agg_stats_;
}

ShardCoverage ShardedStream::coverage() const {
  ShardCoverage cov;
  cov.shards = static_cast<int>(shards_.size());
  cov.completed = 0;
  cov.remote = pool_ != nullptr ? cov.shards : 0;
  cov.retries = total_retries_;
  cov.replay_pairs_saved = replay_pairs_saved_;
  // Early termination (max_results) closes the sub-sessions before they
  // exhaust, but the delivered set is the complete requested answer: every
  // surviving shard counts as covered, exactly as on a run-to-exhaustion
  // finish. Without this a cap-finished query reported 0/K covered.
  const bool finished_early = !failed_ && CapReached();
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].abandoned) {
      ++cov.abandoned;
      cov.abandoned_shards.push_back(static_cast<int>(i));
    } else if (shards_[i].exhausted || finished_early) {
      ++cov.completed;
    }
  }
  return cov;
}

Result<std::unique_ptr<ProgXeStream>> OpenProgXeStream(
    const SkyMapJoinQuery& query, ProgXeOptions options,
    const ShardOptions& shards) {
  // A worker list forces the sharded executor even at num_shards == 1: one
  // remote shard is still remote execution, and the in-process session has
  // no transport.
  if (shards.num_shards <= 1 && shards.workers.empty()) {
    PROGXE_ASSIGN_OR_RETURN(std::unique_ptr<ProgXeSession> session,
                            ProgXeSession::Open(query, std::move(options)));
    return std::unique_ptr<ProgXeStream>(std::move(session));
  }
  PROGXE_ASSIGN_OR_RETURN(
      std::unique_ptr<ShardedStream> stream,
      ShardedStream::Open(query, std::move(options), shards));
  return std::unique_ptr<ProgXeStream>(std::move(stream));
}

}  // namespace progxe
