#include "shard/sharded_stream.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "prefs/dominance.h"

namespace progxe {

ProgXeStream::~ProgXeStream() = default;

namespace {

/// Elementwise counter sum; booleans OR (a sharded run used the EL-Graph
/// bypass iff any shard did).
void AddStats(ProgXeStats* agg, const ProgXeStats& s) {
  agg->r_rows += s.r_rows;
  agg->t_rows += s.t_rows;
  agg->r_rows_after_push_through += s.r_rows_after_push_through;
  agg->t_rows_after_push_through += s.t_rows_after_push_through;
  agg->sigma_used += s.sigma_used;
  agg->partition_pairs_total += s.partition_pairs_total;
  agg->partition_pairs_skipped += s.partition_pairs_skipped;
  agg->regions_created += s.regions_created;
  agg->regions_pruned_lookahead += s.regions_pruned_lookahead;
  agg->cells_marked_lookahead += s.cells_marked_lookahead;
  agg->elgraph_disabled = agg->elgraph_disabled || s.elgraph_disabled;
  agg->regions_processed += s.regions_processed;
  agg->regions_discarded_runtime += s.regions_discarded_runtime;
  agg->pq_reorderings += s.pq_reorderings;
  agg->join_pairs_generated += s.join_pairs_generated;
  agg->tuples_discarded_marked += s.tuples_discarded_marked;
  agg->tuples_discarded_frontier += s.tuples_discarded_frontier;
  agg->tuples_dominated_on_insert += s.tuples_dominated_on_insert;
  agg->tuples_evicted += s.tuples_evicted;
  agg->dominance_comparisons += s.dominance_comparisons;
  agg->results_emitted += s.results_emitted;
  agg->cells_flushed += s.cells_flushed;
  agg->results_emitted_early += s.results_emitted_early;
}

}  // namespace

Result<std::unique_ptr<ShardedStream>> ShardedStream::Open(
    const SkyMapJoinQuery& query, ProgXeOptions options,
    const ShardOptions& shard_options) {
  if (query.r == nullptr || query.t == nullptr) {
    // The planner reads the sources before any per-shard PreparePhase
    // validation could reject them; keep parity with the unsharded path.
    return Status::InvalidArgument("query sources must be non-null");
  }
  std::unique_ptr<ShardedStream> stream(new ShardedStream());
  stream->cap_ = options.max_results;
  // The cap is a property of the merged stream: a shard must not stop at
  // max_results of its *local* skyline, which is unrelated to the first
  // max_results global results.
  ProgXeOptions sub_options = std::move(options);
  sub_options.max_results = 0;

  std::vector<QueryShard> slices =
      PlanShards(*query.r, *query.t, shard_options.num_shards);
  // Sessions point into their slice's relations, so every slice must sit at
  // its final address before any session opens: reserve + move all slices
  // in first, and never resize shards_ afterwards.
  stream->shards_.reserve(slices.size());
  for (QueryShard& slice : slices) {
    stream->shards_.emplace_back();
    stream->shards_.back().slice = std::move(slice);
  }
  for (SubShard& shard : stream->shards_) {
    // Validation runs per shard before the empty-source short-circuit, so
    // an invalid query fails here even when every shard is empty.
    PROGXE_ASSIGN_OR_RETURN(
        shard.session,
        ProgXeSession::Open(shard.slice.Query(query), sub_options));
  }
  stream->mapper_ = CanonicalMapper(query.map, query.pref);
  stream->k_ = stream->mapper_.output_dimensions();
  // Shards that prepared to provably-empty joins constrain nothing.
  stream->RefreshBoundsAndRelease();
  return stream;
}

ShardedStream::~ShardedStream() { Close(); }

bool ShardedStream::AllExhausted() const {
  for (const SubShard& shard : shards_) {
    if (!shard.exhausted) return false;
  }
  return true;
}

uint64_t ShardedStream::PumpRound(size_t per_shard) {
  uint64_t used = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    SubShard& shard = shards_[i];
    if (shard.exhausted) continue;
    const uint64_t before = shard.session->stats().join_pairs_generated;
    shard.session->NextBatch(/*max_results=*/0, per_shard, &pump_scratch_);
    used += shard.session->stats().join_pairs_generated - before;
    Ingest(i, pump_scratch_);
  }
  return used;
}

void ShardedStream::Ingest(size_t shard_idx,
                           const std::vector<ResultTuple>& batch) {
  const QueryShard& slice = shards_[shard_idx].slice;
  const size_t k = static_cast<size_t>(k_);
  for (const ResultTuple& local : batch) {
    Candidate candidate;
    candidate.tuple = local;
    candidate.tuple.r_id = slice.r_orig_ids[local.r_id];
    candidate.tuple.t_id = slice.t_orig_ids[local.t_id];
    candidate.shard = static_cast<int>(shard_idx);
    candidate.canon.resize(k);
    for (size_t j = 0; j < k; ++j) {
      candidate.canon[j] =
          mapper_.Canonicalize(static_cast<int>(j), local.values[j]);
    }

    // Dominated by any accepted point (released or held, from any shard):
    // provably outside the global skyline. Domination is transitive, so
    // stale dominator entries whose own candidate was later dropped still
    // reject exactly the right arrivals.
    bool dominated = false;
    for (size_t d = 0; d + k <= dominators_.size(); d += k) {
      if (DominatesMin(dominators_.data() + d, candidate.canon.data(), k_,
                       &merge_counter_)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;

    // The arrival may retroactively disprove held candidates' finality —
    // they were never delivered, so dropping them here is exactly the
    // merge-time re-validation (released candidates are unreachable by
    // construction: their release proved no live shard could dominate
    // them).
    std::erase_if(held_, [&](const Candidate& held) {
      return DominatesMin(candidate.canon.data(), held.canon.data(), k_,
                          &merge_counter_);
    });

    dominators_.insert(dominators_.end(), candidate.canon.begin(),
                       candidate.canon.end());
    held_.push_back(std::move(candidate));
  }
}

bool ShardedStream::GloballyFinal(const Candidate& candidate) {
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (static_cast<int>(s) == candidate.shard || shards_[s].exhausted) {
      continue;
    }
    // Every future tuple y of shard s satisfies y >= bound componentwise,
    // so y can strictly dominate the candidate only if the bound corner
    // itself does.
    if (DominatesMin(shards_[s].bound.data(), candidate.canon.data(), k_,
                     &merge_counter_)) {
      return false;
    }
  }
  return true;
}

void ShardedStream::RefreshBoundsAndRelease() {
  for (SubShard& shard : shards_) {
    if (shard.exhausted) continue;
    if (!shard.session->RemainingLowerBound(&shard.bound)) {
      shard.exhausted = true;
    }
  }
  size_t kept = 0;
  for (size_t i = 0; i < held_.size(); ++i) {
    if (GloballyFinal(held_[i])) {
      ready_.push_back(std::move(held_[i].tuple));
    } else {
      if (kept != i) held_[kept] = std::move(held_[i]);
      ++kept;
    }
  }
  held_.resize(kept);
}

size_t ShardedStream::NextBatch(size_t max_results, size_t max_pairs,
                                std::vector<ResultTuple>* out) {
  out->clear();
  if (closed_ || CapReached()) return 0;
  if (ready_pos_ >= ready_.size()) {
    // Reclaim the delivered (moved-out) prefix before refilling.
    ready_.clear();
    ready_pos_ = 0;
  }
  size_t budget = max_pairs;
  while (ready_pos_ >= ready_.size() && !AllExhausted()) {
    size_t runnable = 0;
    for (const SubShard& shard : shards_) {
      if (!shard.exhausted) ++runnable;
    }
    // Split the slice budget across the runnable shards; unbudgeted calls
    // pump each shard to its next local emission instead.
    const size_t per_shard =
        max_pairs == 0 ? 0 : std::max<size_t>(1, budget / runnable);
    const uint64_t used = PumpRound(per_shard);
    RefreshBoundsAndRelease();
    if (max_pairs != 0) {
      budget = used >= budget ? 0 : budget - static_cast<size_t>(used);
      if (budget == 0) break;  // possibly a yield: nothing globally final yet
    }
  }

  size_t n = ready_.size() - ready_pos_;
  if (max_results != 0) n = std::min(n, max_results);
  if (cap_ != 0) n = std::min(n, cap_ - delivered_);
  out->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out->push_back(std::move(ready_[ready_pos_ + i]));
  }
  ready_pos_ += n;
  delivered_ += n;
  if (CapReached()) {
    // Early termination, merge-level: the remaining shard work (and the
    // held candidates) can never be delivered — release the engines (and
    // their worker threads) now.
    for (SubShard& shard : shards_) shard.session->Close();
    held_.clear();
    dominators_.clear();
  }
  return n;
}

void ShardedStream::Close() {
  if (closed_) return;
  closed_ = true;
  for (SubShard& shard : shards_) {
    if (shard.session != nullptr) shard.session->Close();
  }
  held_.clear();
  dominators_.clear();
  ready_.clear();
  ready_pos_ = 0;
}

bool ShardedStream::Finished() const {
  if (closed_ || CapReached()) return true;
  return ready_pos_ >= ready_.size() && held_.empty() && AllExhausted();
}

const ProgXeStats& ShardedStream::stats() const {
  agg_stats_ = ProgXeStats{};
  for (const SubShard& shard : shards_) {
    AddStats(&agg_stats_, shard.session->stats());
  }
  return agg_stats_;
}

Result<std::unique_ptr<ProgXeStream>> OpenProgXeStream(
    const SkyMapJoinQuery& query, ProgXeOptions options,
    const ShardOptions& shards) {
  if (shards.num_shards <= 1) {
    PROGXE_ASSIGN_OR_RETURN(std::unique_ptr<ProgXeSession> session,
                            ProgXeSession::Open(query, std::move(options)));
    return std::unique_ptr<ProgXeStream>(std::move(session));
  }
  PROGXE_ASSIGN_OR_RETURN(
      std::unique_ptr<ShardedStream> stream,
      ShardedStream::Open(query, std::move(options), shards));
  return std::unique_ptr<ProgXeStream>(std::move(stream));
}

}  // namespace progxe
