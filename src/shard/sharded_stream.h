// ShardedStream: the sharded implementation of ProgXeStream.
//
// The planner hash-partitions both sources by join key into K disjoint
// shards (shard/shard_planner.h), one ProgXeSession per shard. Each pump
// round splits the caller's pair budget across the runnable shards and
// funnels their locally-final outputs into a merge sink that re-validates
// finality *globally* before emitting:
//
//   * A per-shard "final" certificate only covers that shard's own join
//     pairs — a tuple a shard proved undominated locally may still be
//     dominated by another shard's output, so nothing a sub-session emits
//     may pass through unchecked.
//   * The merge sink therefore keeps every accepted candidate as a
//     dominator: a new arrival strictly dominated by any earlier candidate
//     is discarded (it is provably not in the global skyline), and held
//     candidates a new arrival dominates are dropped before they ever reach
//     the caller.
//   * A held candidate is released only once no *other* unfinished shard
//     can still dominate it. Each sub-session exposes its remaining-output
//     frontier (ProgXeSession::RemainingLowerBound — the canonical
//     lower-bound corner of everything it may still deliver); if that
//     corner does not strictly dominate the candidate, no future tuple from
//     that shard can either. The candidate's own shard needs no check: the
//     engine's progressive guarantee already covers it.
//
// Together these give the sharded stream the same contract as a session:
// every delivered tuple is final (no retractions) and the union of all
// deliveries is exactly the unsharded skyline. ProgXeStats are the
// per-shard engine counters summed elementwise, so per-shard work remains
// auditable through the standard counters.
#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "mapping/canonical.h"
#include "prefs/dominance.h"
#include "progxe/session.h"
#include "progxe/stream.h"
#include "shard/shard_planner.h"

namespace progxe {

class ShardedStream : public ProgXeStream {
 public:
  /// Plans the shards and opens one sub-session per shard (each runs
  /// PreparePhase over its slice). `options.max_results` is enforced at the
  /// merge sink, not per shard. The relations behind `query` must outlive
  /// the stream; the shard slices are owned by it.
  static Result<std::unique_ptr<ShardedStream>> Open(
      const SkyMapJoinQuery& query, ProgXeOptions options,
      const ShardOptions& shards);

  ~ShardedStream() override;

  size_t NextBatch(size_t max_results, size_t max_pairs,
                   std::vector<ResultTuple>* out) override;
  void Close() override;
  bool Finished() const override;

  /// Elementwise sum of the sub-sessions' counters (doubles add, flags OR).
  const ProgXeStats& stats() const override;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Candidates currently held back by the global finality check
  /// (diagnostic; 0 once Finished()).
  size_t held_candidates() const { return held_.size(); }

  /// Dominance comparisons performed by the merge sink itself (dominator
  /// filtering + finality checks). Kept *out* of stats().dominance_
  /// comparisons, which is by contract the additive sum of the per-shard
  /// engine counters; benches report both.
  uint64_t merge_comparisons() const { return merge_counter_.comparisons; }

 private:
  struct SubShard {
    QueryShard slice;
    std::unique_ptr<ProgXeSession> session;
    /// Canonical remaining-output frontier corner; meaningful while
    /// `!exhausted`.
    std::vector<double> bound;
    /// True once the session delivered everything: it constrains nothing.
    bool exhausted = false;
  };

  /// One locally-final tuple awaiting the global finality check.
  struct Candidate {
    ResultTuple tuple;          // original row ids, user-space values
    std::vector<double> canon;  // canonical (minimize-all) values
    int shard = 0;
  };

  ShardedStream() = default;

  bool AllExhausted() const;
  bool CapReached() const {
    return cap_ != 0 && delivered_ >= cap_;
  }
  /// Advances every runnable shard by its slice of `per_shard` pairs and
  /// ingests what it produced. Returns the pairs actually consumed.
  uint64_t PumpRound(size_t per_shard);
  /// Filters a sub-session batch through the dominator set and adds the
  /// survivors to the held set.
  void Ingest(size_t shard_idx, const std::vector<ResultTuple>& batch);
  /// Re-reads every runnable shard's frontier, then moves the held
  /// candidates no unfinished foreign shard can still dominate into the
  /// ready queue.
  void RefreshBoundsAndRelease();
  bool GloballyFinal(const Candidate& candidate);

  std::vector<SubShard> shards_;
  CanonicalMapper mapper_;
  int k_ = 0;
  size_t cap_ = 0;  // options.max_results, merge-level
  size_t delivered_ = 0;
  bool closed_ = false;

  /// Canonical vectors (k_ per entry) of every accepted candidate, released
  /// or held. Dominated arrivals never enter; dominated *held* entries stay
  /// listed, which is harmless — their dominator kills anything they would.
  std::vector<double> dominators_;
  std::vector<Candidate> held_;

  /// Released results not yet handed to the caller:
  /// [ready_pos_, ready_.size()).
  std::vector<ResultTuple> ready_;
  size_t ready_pos_ = 0;

  mutable ProgXeStats agg_stats_;
  DomCounter merge_counter_;
  std::vector<ResultTuple> pump_scratch_;
};

}  // namespace progxe
