// ShardedStream: the sharded implementation of ProgXeStream.
//
// The planner hash-partitions both sources by join key into K disjoint
// shards (shard/shard_planner.h), one ProgXeSession per shard. Each pump
// round splits the caller's pair budget across the runnable shards and
// funnels their locally-final outputs into a merge sink that re-validates
// finality *globally* before emitting:
//
//   * A per-shard "final" certificate only covers that shard's own join
//     pairs — a tuple a shard proved undominated locally may still be
//     dominated by another shard's output, so nothing a sub-session emits
//     may pass through unchecked.
//   * The merge sink keeps the accepted candidates — released or held — as
//     the *dominator frontier*. They are indexed by canonical output cell
//     in a DominanceIndex (dominance/dominance_index.h), the same bitmap
//     cone-sweep structure OutputTable uses, so a new arrival is tested
//     only against accepted entries whose cell lies in its dominator cone
//     instead of the whole accepted list: arrivals any of them strictly
//     dominates are discarded (provably not in the global skyline), and
//     held candidates the arrival dominates are pruned from both the held
//     queue and the index (their dominator now rejects at least as much,
//     so the index stays exactly the Pareto frontier of accepted outputs).
//   * A held candidate is released only once no *other* unfinished shard
//     can still dominate it. Each sub-session exposes its remaining-output
//     frontier (ProgXeSession::RemainingLowerBound — the canonical
//     lower-bound corner of everything it may still deliver); if that
//     corner does not strictly dominate the candidate, no future tuple from
//     that shard can either. The candidate's own shard needs no check
//     *while it has never resumed from a checkpoint*: its outputs are then
//     its local skyline, whose members never dominate each other. A shard
//     that resumed skips regions, so it may emit tuples that are not
//     locally final — its own bound must block them until the suppressor
//     arrives and prunes the held twin. Release checks run
//     once per pump batch and are version-gated: a candidate re-tests only
//     after some shard's frontier corner actually advanced, starting with
//     the shard that blocked it last time.
//
// Fault containment rides on the same structure. A retryable sub-session
// failure quarantines only that shard: its session is torn down and
// re-opened after exponential backoff (ShardOptions::max_retries /
// retry_backoff), and because a shard is a deterministic function of its
// slice + options, the replay re-delivers the same local skyline — a
// per-shard dedup set plus the accepted-frontier filtering make the replay
// idempotent, so the merged delivered set stays bit-identical to a
// fault-free run with zero retractions. With
// ShardOptions::checkpoint_retry the coordinator additionally captures a
// resumable SessionCheckpoint from each healthy pump and hands it to the
// re-opened incarnation (locally restored in-process, shipped in
// kOpenShard for remote shards), so the replay skips the regions the dead
// incarnation provably finished — bounding the re-joined pairs instead of
// restarting from scratch; coverage().replay_pairs_saved reports the win. The quarantined shard's last
// published frontier corner remains a valid bound on anything *new* it may
// still contribute, so the other shards keep releasing results while it
// recovers. Retry exhaustion either fails the stream (last_status) or,
// under ShardOptions::allow_partial, abandons the shard and completes with
// an honest coverage() report.
//
// Together these give the sharded stream the same contract as a session:
// every delivered tuple is final (no retractions) and the union of all
// deliveries is exactly the unsharded skyline. ProgXeStats are the
// per-shard engine counters summed elementwise, so per-shard work remains
// auditable through the standard counters; the merge sink's own work is
// reported separately (merge_comparisons, merge_seconds, held peak).
#pragma once

#include <chrono>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/fault_injection.h"
#include "common/status.h"
#include "dominance/dominance_index.h"
#include "grid/grid_geometry.h"
#include "mapping/canonical.h"
#include "prefs/dominance.h"
#include "progxe/session.h"
#include "progxe/stream.h"
#include "shard/shard_engine.h"
#include "shard/shard_planner.h"

namespace progxe {

/// The deterministic jittered backoff before re-opening a quarantined
/// shard: retry_backoff doubled per consecutive failure (capped at 64x),
/// scaled by a factor in [1 - retry_jitter, 1 + retry_jitter) drawn from
/// a splitmix64 mix of (seed, shard, consecutive_failures). Pure function
/// of its arguments — the same seed always reproduces the same schedule —
/// while distinct shards (and successive attempts of one shard) land on
/// different offsets, so simultaneously-sick shards desynchronize.
std::chrono::nanoseconds JitteredRetryBackoff(const ShardOptions& opts,
                                              uint64_t seed, int shard,
                                              int consecutive_failures);

class ShardedStream : public ProgXeStream {
 public:
  /// Plans the shards and opens one sub-session per shard (each runs
  /// PreparePhase over its slice). `options.max_results` is enforced at the
  /// merge sink, not per shard. The relations behind `query` must outlive
  /// the stream; the shard slices are owned by it.
  static Result<std::unique_ptr<ShardedStream>> Open(
      const SkyMapJoinQuery& query, ProgXeOptions options,
      const ShardOptions& shards);

  ~ShardedStream() override;

  size_t NextBatch(size_t max_results, size_t max_pairs,
                   std::vector<ResultTuple>* out) override;
  void Close() override;
  bool Finished() const override;

  /// Elementwise sum of the sub-sessions' counters (doubles add, flags OR),
  /// including the work done by failed incarnations of retried shards.
  const ProgXeStats& stats() const override;

  /// OK while healthy. A retryable sub-session fault quarantines that shard
  /// and replays it (see ShardOptions::max_retries); only retry exhaustion
  /// without allow_partial — or a non-shard-local merge fault — moves the
  /// stream here: a terminal error state holding the shard's failure.
  Status last_status() const override { return status_; }

  /// Real per-shard accounting: completed vs abandoned shards and the
  /// total re-opens performed. `!complete()` iff a shard was abandoned
  /// under allow_partial; the delivered set is then exactly the skyline of
  /// the covered shards' data.
  ShardCoverage coverage() const override;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Candidates currently held back by the global finality check
  /// (diagnostic; 0 once Finished()).
  size_t held_candidates() const { return held_.size(); }

  /// High-water mark of the held queue over the stream's lifetime.
  size_t held_peak() const { return held_peak_; }

  /// Dominance comparisons performed by the merge sink itself (dominator
  /// filtering + finality checks). Kept *out* of stats().dominance_
  /// comparisons, which is by contract the additive sum of the per-shard
  /// engine counters; benches report both.
  uint64_t merge_comparisons() const { return merge_counter_.comparisons; }

  /// Wall-clock seconds spent inside the merge sink (candidate ingest +
  /// release checks), excluding the sub-sessions' own work.
  double merge_seconds() const { return merge_seconds_; }

  /// Total live entries across the per-shard replay-dedup sets
  /// (diagnostic; drops to 0 per shard as each finishes healthy).
  size_t dedup_entries() const {
    size_t n = 0;
    for (const SubShard& shard : shards_) n += shard.ingested.size();
    return n;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct SubShard {
    QueryShard slice;
    /// The shard's engine — a LocalShardEngine over an in-process
    /// ProgXeSession, or a RemoteShardStream speaking to a worker daemon
    /// when ShardOptions::workers is set. Null while quarantined (between a
    /// fault and the retry re-open).
    std::unique_ptr<ShardEngine> session;
    /// The first healthy incarnation's immutable prepared state, captured
    /// only when retries are enabled: a re-open adopts it directly
    /// (ProgXeSession::OpenPrepared) instead of re-running push-through /
    /// grids / look-ahead over the slice. Identical by construction — a
    /// shard is a deterministic function of its slice + options — so the
    /// replay contract is unchanged.
    std::shared_ptr<const PreparedInputs> prepared;
    /// Canonical remaining-output frontier corner; meaningful while
    /// `!exhausted`. Empty means "no bound yet" — it blocks every release
    /// (a shard that failed before publishing a frontier may still emit
    /// anything). During quarantine the pre-failure bound stays valid: a
    /// replay re-delivers a subset of what the dead incarnation already
    /// delivered before producing anything new, so the remaining *new*
    /// outputs are bounded by the old frontier; after re-open the bound
    /// only ratchets up componentwise.
    std::vector<double> bound;
    /// True once the session delivered everything: it constrains nothing.
    bool exhausted = false;
    /// Retry budget exhausted under allow_partial: dropped from the merge
    /// like an exhausted shard, recorded in coverage().
    bool abandoned = false;
    /// Consecutive (unrecovered) failures; reset by a successful pump.
    int consecutive_failures = 0;
    /// True once this shard has ever been quarantined: its published bound
    /// then ratchets (componentwise max) instead of being replaced, since a
    /// replaying incarnation's frontier restarts below the frozen one.
    bool replayed = false;
    /// Engines opened for this shard so far. Remote shards rotate their
    /// endpoint by incarnation, so a retry re-opens on a different worker.
    int incarnation = 0;
    /// Earliest re-open time while quarantined (session == nullptr).
    Clock::time_point next_attempt{};
    /// Last failure that quarantined/abandoned this shard.
    Status last_error;
    /// Counters of failed incarnations, summed — stats() adds these to the
    /// live session's so retried work stays auditable.
    ProgXeStats lost_stats;
    /// Replay dedup: packed original (r_id << 32 | t_id) of every tuple
    /// this shard already ingested into the merge, across incarnations. A
    /// replayed duplicate is point-*equal* to its accepted twin, which
    /// strict dominance would not filter — this set is what makes replay
    /// idempotent. Only populated when retries are enabled, and freed as
    /// soon as the shard finishes healthy (nothing can replay then).
    std::unordered_set<uint64_t> ingested;
    /// Freshest resume point captured from a healthy pump
    /// (ShardOptions::checkpoint_retry); handed to the next incarnation on
    /// a retry re-open so it skips the finished regions.
    SessionCheckpoint checkpoint;
    bool has_checkpoint = false;
    /// True once any incarnation of this shard resumed from a checkpoint.
    /// A resumed incarnation may emit tuples that are not locally final,
    /// so GloballyFinal then also tests the candidate's *own* shard bound.
    bool resumed = false;
  };

  /// One locally-final tuple awaiting the global finality check. Its
  /// canonical vector lives in acc_canon_ at `acc_id`.
  struct Candidate {
    ResultTuple tuple;  // original row ids, user-space values
    int shard = 0;
    int32_t acc_id = 0;
    /// Shard whose frontier corner blocked the last finality check, or -1.
    int blocker = -1;
    /// bounds_version_ at the last failed finality check; the candidate is
    /// re-tested only once some shard's bound advanced past it.
    uint64_t checked_version = 0;
  };

  ShardedStream() = default;

  bool AllExhausted() const;
  bool CapReached() const {
    return cap_ != 0 && delivered_ >= cap_;
  }
  /// (Re-)opens shard `i`'s sub-session over its slice; fires the
  /// "shard.open" fault site first.
  Status OpenShard(size_t i);
  /// Containment: snapshots the dead incarnation's counters, tears it down
  /// and either quarantines the shard for retry (exponential backoff),
  /// abandons it (retry budget gone, allow_partial) or fails the whole
  /// stream (budget gone, fail-fast; or a non-retryable error).
  void OnShardFailure(size_t i, Status status);
  /// Moves the stream to the terminal error state: sub-sessions closed,
  /// merge state dropped, `status` held for last_status().
  void FailStream(Status status);
  /// Earliest quarantined shard re-open time (Clock::time_point::max() if
  /// none are quarantined).
  Clock::time_point NextRetryAt() const;
  /// Advances every runnable shard by its slice of `per_shard` pairs and
  /// ingests what it produced; re-opens quarantined shards whose backoff
  /// expired. Returns the pairs actually consumed.
  uint64_t PumpRound(size_t per_shard);
  /// Filters a sub-session batch through the accepted-frontier index and
  /// admits the survivors into the held queue.
  void Ingest(size_t shard_idx, const std::vector<ResultTuple>& batch);
  /// Removes a (necessarily held) accepted entry that a new arrival
  /// strictly dominates from the index and the held queue.
  void DropAccepted(int32_t acc_id);
  /// Re-reads every runnable shard's frontier, then moves the held
  /// candidates no unfinished foreign shard can still dominate into the
  /// ready queue. Runs once per pump batch.
  void RefreshBoundsAndRelease();
  bool GloballyFinal(Candidate* candidate);
  /// Drops all merge-sink state (cap reached / Close).
  void ReleaseMergeState();

  std::vector<SubShard> shards_;
  /// Retained for retry re-opens (the relations outlive the stream by the
  /// Open contract; the slices live in shards_).
  SkyMapJoinQuery query_;
  /// The per-shard engine options (cap stripped); OpenShard stamps
  /// fault_instance per shard.
  ProgXeOptions sub_options_;
  ShardOptions shard_options_;
  /// Effective injector for the shard.*/merge.* sites: the programmatic
  /// one when set, else the process-wide env one, else null. Not owned
  /// (sub_options_.faults or process lifetime).
  FaultInjector* faults_ = nullptr;
  /// Worker connection pool; non-null iff shard_options_.workers is set
  /// (created privately when the caller supplied none).
  std::shared_ptr<WorkerPool> pool_;
  CanonicalMapper mapper_;
  int k_ = 0;
  size_t cap_ = 0;  // options.max_results, merge-level
  size_t delivered_ = 0;
  bool closed_ = false;
  bool failed_ = false;
  Status status_;  // non-OK once failed_
  uint64_t total_retries_ = 0;
  /// Join pairs the checkpointed retries skipped re-generating, summed over
  /// every resume (coverage().replay_pairs_saved).
  uint64_t replay_pairs_saved_ = 0;
  /// Re-opens committed to (counted at the quarantine decision, before the
  /// re-open happens) against ShardOptions::max_total_retries. Separate
  /// from total_retries_ — the re-opens actually performed, reported in
  /// coverage() — so K shards quarantining in one round cannot all slip
  /// under the budget before any of them re-opens.
  uint64_t retries_committed_ = 0;
  /// Set when a shard exhausts or is abandoned outside
  /// RefreshBoundsAndRelease, so the next release pass re-checks held
  /// candidates even if no surviving bound moved.
  bool bounds_dirty_ = false;

  /// Canonical-cell quantization of the accepted set: a uniform grid over
  /// the query's canonical output hull (interval arithmetic over the full
  /// attribute boxes). Only monotonicity of the quantization is relied on,
  /// so edge clamping cannot cost correctness.
  GridGeometry merge_grid_;

  /// The accepted Pareto frontier, indexed by canonical cell. Entry
  /// payloads are acc ids; dominated held entries are removed on arrival of
  /// their dominator, so every live entry is released or held.
  DominanceIndex accepted_;
  std::vector<double> acc_canon_;   // k_ doubles per acc id, append-only
  std::vector<int32_t> acc_pos_;    // acc id -> index position (-1 pruned)
  std::vector<int32_t> acc_held_;   // acc id -> held_ position (-1 if not held)

  std::vector<Candidate> held_;
  size_t held_peak_ = 0;

  /// Monotone version of the per-shard bound set; bumped whenever any
  /// shard's frontier corner changes or a shard exhausts.
  uint64_t bounds_version_ = 1;

  /// Released results not yet handed to the caller:
  /// [ready_pos_, ready_.size()).
  std::vector<ResultTuple> ready_;
  size_t ready_pos_ = 0;

  mutable ProgXeStats agg_stats_;
  DomCounter merge_counter_;
  double merge_seconds_ = 0.0;
  std::vector<ResultTuple> pump_scratch_;
  std::vector<double> canon_scratch_;
  std::vector<CellCoord> coord_scratch_;
  std::vector<double> bound_scratch_;
};

}  // namespace progxe
