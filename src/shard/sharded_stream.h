// ShardedStream: the sharded implementation of ProgXeStream.
//
// The planner hash-partitions both sources by join key into K disjoint
// shards (shard/shard_planner.h), one ProgXeSession per shard. Each pump
// round splits the caller's pair budget across the runnable shards and
// funnels their locally-final outputs into a merge sink that re-validates
// finality *globally* before emitting:
//
//   * A per-shard "final" certificate only covers that shard's own join
//     pairs — a tuple a shard proved undominated locally may still be
//     dominated by another shard's output, so nothing a sub-session emits
//     may pass through unchecked.
//   * The merge sink keeps the accepted candidates — released or held — as
//     the *dominator frontier*. They are indexed by canonical output cell
//     in a DominanceIndex (dominance/dominance_index.h), the same bitmap
//     cone-sweep structure OutputTable uses, so a new arrival is tested
//     only against accepted entries whose cell lies in its dominator cone
//     instead of the whole accepted list: arrivals any of them strictly
//     dominates are discarded (provably not in the global skyline), and
//     held candidates the arrival dominates are pruned from both the held
//     queue and the index (their dominator now rejects at least as much,
//     so the index stays exactly the Pareto frontier of accepted outputs).
//   * A held candidate is released only once no *other* unfinished shard
//     can still dominate it. Each sub-session exposes its remaining-output
//     frontier (ProgXeSession::RemainingLowerBound — the canonical
//     lower-bound corner of everything it may still deliver); if that
//     corner does not strictly dominate the candidate, no future tuple from
//     that shard can either. The candidate's own shard needs no check: the
//     engine's progressive guarantee already covers it. Release checks run
//     once per pump batch and are version-gated: a candidate re-tests only
//     after some shard's frontier corner actually advanced, starting with
//     the shard that blocked it last time.
//
// Together these give the sharded stream the same contract as a session:
// every delivered tuple is final (no retractions) and the union of all
// deliveries is exactly the unsharded skyline. ProgXeStats are the
// per-shard engine counters summed elementwise, so per-shard work remains
// auditable through the standard counters; the merge sink's own work is
// reported separately (merge_comparisons, merge_seconds, held peak).
#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "dominance/dominance_index.h"
#include "grid/grid_geometry.h"
#include "mapping/canonical.h"
#include "prefs/dominance.h"
#include "progxe/session.h"
#include "progxe/stream.h"
#include "shard/shard_planner.h"

namespace progxe {

class ShardedStream : public ProgXeStream {
 public:
  /// Plans the shards and opens one sub-session per shard (each runs
  /// PreparePhase over its slice). `options.max_results` is enforced at the
  /// merge sink, not per shard. The relations behind `query` must outlive
  /// the stream; the shard slices are owned by it.
  static Result<std::unique_ptr<ShardedStream>> Open(
      const SkyMapJoinQuery& query, ProgXeOptions options,
      const ShardOptions& shards);

  ~ShardedStream() override;

  size_t NextBatch(size_t max_results, size_t max_pairs,
                   std::vector<ResultTuple>* out) override;
  void Close() override;
  bool Finished() const override;

  /// Elementwise sum of the sub-sessions' counters (doubles add, flags OR).
  const ProgXeStats& stats() const override;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Candidates currently held back by the global finality check
  /// (diagnostic; 0 once Finished()).
  size_t held_candidates() const { return held_.size(); }

  /// High-water mark of the held queue over the stream's lifetime.
  size_t held_peak() const { return held_peak_; }

  /// Dominance comparisons performed by the merge sink itself (dominator
  /// filtering + finality checks). Kept *out* of stats().dominance_
  /// comparisons, which is by contract the additive sum of the per-shard
  /// engine counters; benches report both.
  uint64_t merge_comparisons() const { return merge_counter_.comparisons; }

  /// Wall-clock seconds spent inside the merge sink (candidate ingest +
  /// release checks), excluding the sub-sessions' own work.
  double merge_seconds() const { return merge_seconds_; }

 private:
  struct SubShard {
    QueryShard slice;
    std::unique_ptr<ProgXeSession> session;
    /// Canonical remaining-output frontier corner; meaningful while
    /// `!exhausted`.
    std::vector<double> bound;
    /// True once the session delivered everything: it constrains nothing.
    bool exhausted = false;
  };

  /// One locally-final tuple awaiting the global finality check. Its
  /// canonical vector lives in acc_canon_ at `acc_id`.
  struct Candidate {
    ResultTuple tuple;  // original row ids, user-space values
    int shard = 0;
    int32_t acc_id = 0;
    /// Shard whose frontier corner blocked the last finality check, or -1.
    int blocker = -1;
    /// bounds_version_ at the last failed finality check; the candidate is
    /// re-tested only once some shard's bound advanced past it.
    uint64_t checked_version = 0;
  };

  ShardedStream() = default;

  bool AllExhausted() const;
  bool CapReached() const {
    return cap_ != 0 && delivered_ >= cap_;
  }
  /// Advances every runnable shard by its slice of `per_shard` pairs and
  /// ingests what it produced. Returns the pairs actually consumed.
  uint64_t PumpRound(size_t per_shard);
  /// Filters a sub-session batch through the accepted-frontier index and
  /// admits the survivors into the held queue.
  void Ingest(size_t shard_idx, const std::vector<ResultTuple>& batch);
  /// Removes a (necessarily held) accepted entry that a new arrival
  /// strictly dominates from the index and the held queue.
  void DropAccepted(int32_t acc_id);
  /// Re-reads every runnable shard's frontier, then moves the held
  /// candidates no unfinished foreign shard can still dominate into the
  /// ready queue. Runs once per pump batch.
  void RefreshBoundsAndRelease();
  bool GloballyFinal(Candidate* candidate);
  /// Drops all merge-sink state (cap reached / Close).
  void ReleaseMergeState();

  std::vector<SubShard> shards_;
  CanonicalMapper mapper_;
  int k_ = 0;
  size_t cap_ = 0;  // options.max_results, merge-level
  size_t delivered_ = 0;
  bool closed_ = false;

  /// Canonical-cell quantization of the accepted set: a uniform grid over
  /// the query's canonical output hull (interval arithmetic over the full
  /// attribute boxes). Only monotonicity of the quantization is relied on,
  /// so edge clamping cannot cost correctness.
  GridGeometry merge_grid_;

  /// The accepted Pareto frontier, indexed by canonical cell. Entry
  /// payloads are acc ids; dominated held entries are removed on arrival of
  /// their dominator, so every live entry is released or held.
  DominanceIndex accepted_;
  std::vector<double> acc_canon_;   // k_ doubles per acc id, append-only
  std::vector<int32_t> acc_pos_;    // acc id -> index position (-1 pruned)
  std::vector<int32_t> acc_held_;   // acc id -> held_ position (-1 if not held)

  std::vector<Candidate> held_;
  size_t held_peak_ = 0;

  /// Monotone version of the per-shard bound set; bumped whenever any
  /// shard's frontier corner changes or a shard exhausts.
  uint64_t bounds_version_ = 1;

  /// Released results not yet handed to the caller:
  /// [ready_pos_, ready_.size()).
  std::vector<ResultTuple> ready_;
  size_t ready_pos_ = 0;

  mutable ProgXeStats agg_stats_;
  DomCounter merge_counter_;
  double merge_seconds_ = 0.0;
  std::vector<ResultTuple> pump_scratch_;
  std::vector<double> canon_scratch_;
  std::vector<CellCoord> coord_scratch_;
  std::vector<double> bound_scratch_;
};

}  // namespace progxe
