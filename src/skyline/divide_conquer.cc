#include "skyline/divide_conquer.h"

#include <algorithm>
#include <numeric>

namespace progxe {

namespace {

/// Recursion cutoff below which the quadratic reference is faster.
constexpr size_t kBaseCase = 64;

class DcSolver {
 public:
  DcSolver(const PointView& points, DomCounter* counter)
      : points_(points), counter_(counter) {}

  /// Computes the skyline of `idx` (destroyed), returning surviving indices.
  std::vector<uint32_t> Solve(std::vector<uint32_t> idx, int depth) {
    if (idx.size() <= kBaseCase) return BaseCase(std::move(idx));

    // Median split on dimension (depth % k) for balanced recursion across
    // dimensions; classic D&C uses dimension 0 but rotating splits behave
    // better on correlated data.
    const int dim = depth % points_.k;
    const size_t mid = idx.size() / 2;
    std::nth_element(idx.begin(), idx.begin() + static_cast<ptrdiff_t>(mid),
                     idx.end(), [&](uint32_t a, uint32_t b) {
                       const double va = points_.point(a)[dim];
                       const double vb = points_.point(b)[dim];
                       if (va != vb) return va < vb;
                       return a < b;
                     });
    std::vector<uint32_t> low(idx.begin(),
                              idx.begin() + static_cast<ptrdiff_t>(mid));
    std::vector<uint32_t> high(idx.begin() + static_cast<ptrdiff_t>(mid),
                               idx.end());
    idx.clear();
    idx.shrink_to_fit();

    std::vector<uint32_t> low_sky = Solve(std::move(low), depth + 1);
    std::vector<uint32_t> high_sky = Solve(std::move(high), depth + 1);

    // Merge: points in the high half can be dominated by the low half's
    // skyline (the converse is impossible in dimension `dim` except for
    // ties, which the pairwise test handles).
    std::vector<uint32_t> merged = low_sky;
    for (uint32_t h : high_sky) {
      bool dominated = false;
      for (uint32_t l : low_sky) {
        if (DominatesMin(points_.point(l), points_.point(h), points_.k,
                         counter_)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) merged.push_back(h);
    }
    // And low-half points may be dominated by high-half survivors when the
    // split dimension tied; a second filtering pass keeps exactness.
    std::vector<uint32_t> result;
    result.reserve(merged.size());
    for (uint32_t cand : merged) {
      bool dominated = false;
      for (uint32_t other : merged) {
        if (other == cand) continue;
        if (DominatesMin(points_.point(other), points_.point(cand),
                         points_.k, counter_)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) result.push_back(cand);
    }
    return result;
  }

 private:
  std::vector<uint32_t> BaseCase(std::vector<uint32_t> idx) {
    std::vector<uint32_t> out;
    for (size_t i = 0; i < idx.size(); ++i) {
      bool dominated = false;
      for (size_t j = 0; j < idx.size() && !dominated; ++j) {
        if (i == j) continue;
        dominated = DominatesMin(points_.point(idx[j]),
                                 points_.point(idx[i]), points_.k, counter_);
      }
      if (!dominated) out.push_back(idx[i]);
    }
    return out;
  }

  const PointView& points_;
  DomCounter* counter_;
};

}  // namespace

std::vector<uint32_t> SkylineDivideConquer(const PointView& points,
                                           DomCounter* counter) {
  std::vector<uint32_t> idx(points.n);
  std::iota(idx.begin(), idx.end(), 0u);
  DcSolver solver(points, counter);
  std::vector<uint32_t> result = solver.Solve(std::move(idx), 0);
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace progxe
