// Divide-and-conquer skyline (Börzsönyi et al., ICDE 2001; after Kung,
// Luccio & Preparata's maxima algorithm).
//
// Recursively splits the point set at a rotating median, computes both
// halves' skylines, and cross-filters the survivors. This implementation
// favours exactness (ties included) over the textbook's asymptotics — the
// final cross-filter is quadratic in the skyline size — and serves as an
// independently derived oracle alongside SkylineReference: two unrelated
// algorithms agreeing on random inputs is strong evidence for both.
#pragma once

#include <cstdint>
#include <vector>

#include "prefs/dominance.h"
#include "skyline/skyline.h"

namespace progxe {

/// Returns the indices of all non-dominated points (ascending order).
/// Minimize-all canonical form, equal points all retained.
std::vector<uint32_t> SkylineDivideConquer(const PointView& points,
                                           DomCounter* counter = nullptr);

}  // namespace progxe
