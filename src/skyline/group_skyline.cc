#include "skyline/group_skyline.h"

#include <algorithm>

#include "skyline/skyline.h"

namespace progxe {

ContributionTable::ContributionTable(const Relation& rel,
                                     const CanonicalMapper& mapper,
                                     Side side)
    : n_(rel.size()), k_(mapper.output_dimensions()) {
  data_.resize(n_ * static_cast<size_t>(k_));
  for (size_t i = 0; i < n_; ++i) {
    mapper.ContributionVector(side, rel.attrs(static_cast<RowId>(i)),
                              data_.data() + i * static_cast<size_t>(k_));
  }
}

SourceLists ComputeSourceLists(const Relation& rel,
                               const ContributionTable& contribs,
                               DomCounter* counter) {
  SourceLists lists;
  const size_t n = rel.size();
  const int k = contribs.dimensions();
  lists.in_source_skyline.assign(n, false);
  lists.in_group_skyline.assign(n, false);

  // Source-level skyline over all contribution vectors.
  PointView all{contribs.flat().data(), n, k};
  lists.source_skyline = SkylineSFS(all, counter);
  for (uint32_t id : lists.source_skyline) {
    lists.in_source_skyline[id] = true;
  }

  // Group-level skyline: bucket rows by join key, skyline each bucket.
  std::unordered_map<JoinKey, std::vector<RowId>> groups;
  groups.reserve(n / 4 + 1);
  for (size_t i = 0; i < n; ++i) {
    groups[rel.join_key(static_cast<RowId>(i))].push_back(
        static_cast<RowId>(i));
  }
  std::vector<double> scratch;
  for (auto& [key, rows] : groups) {
    (void)key;
    scratch.clear();
    scratch.reserve(rows.size() * static_cast<size_t>(k));
    for (RowId id : rows) {
      const double* v = contribs.vector(id);
      scratch.insert(scratch.end(), v, v + k);
    }
    PointView group_view{scratch.data(), rows.size(), k};
    for (uint32_t local : SkylineSFS(group_view, counter)) {
      lists.in_group_skyline[rows[local]] = true;
      lists.group_skyline.push_back(rows[local]);
    }
  }
  std::sort(lists.group_skyline.begin(), lists.group_skyline.end());
  return lists;
}

std::vector<RowId> PushThroughPrune(const Relation& rel,
                                    const ContributionTable& contribs,
                                    DomCounter* counter) {
  SourceLists lists = ComputeSourceLists(rel, contribs, counter);
  return lists.group_skyline;
}

}  // namespace progxe
