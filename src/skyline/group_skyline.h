// Source-level and group-level skylines over canonical contribution vectors
// (the lists SSMJ maintains, Section VI-A, and the basis of skyline partial
// push-through).
//
// For a source relation S with per-tuple canonical contribution vectors
// c(s) in R^k:
//  * LS(S)  - the source-level skyline: tuples whose contribution vector is
//    not dominated by any other tuple's, ignoring the join attribute.
//  * LS(N)  - the group-level skyline: within each join-key group, tuples
//    whose contribution is not dominated by another tuple *of the same
//    group*.
//
// Because mapping functions are separable and monotone in each source's
// contribution (see mapping/map_expr.h), a tuple strictly dominated within
// its join group can never produce an undominated join result: any partner
// t pairs with the dominating tuple to produce a dominating output. Hence
// pruning a source to LS(N) ("partial push-through") is result-preserving.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "data/relation.h"
#include "mapping/canonical.h"
#include "prefs/dominance.h"

namespace progxe {

/// Canonical contribution vectors of every tuple of one source.
class ContributionTable {
 public:
  /// Computes c(s) for all tuples of `rel` on the given side.
  ContributionTable(const Relation& rel, const CanonicalMapper& mapper,
                    Side side);

  size_t size() const { return n_; }
  int dimensions() const { return k_; }

  const double* vector(RowId id) const {
    return data_.data() + static_cast<size_t>(id) * static_cast<size_t>(k_);
  }

  const std::vector<double>& flat() const { return data_; }

 private:
  size_t n_;
  int k_;
  std::vector<double> data_;
};

/// The two pruning lists of one source.
struct SourceLists {
  /// LS(S): row ids in the source-level skyline.
  std::vector<RowId> source_skyline;
  /// LS(N): row ids in their join-group skyline (superset of LS(S) members
  /// that survive within their group; every LS(S) member is also here).
  std::vector<RowId> group_skyline;
  /// Membership flags indexed by row id.
  std::vector<bool> in_source_skyline;
  std::vector<bool> in_group_skyline;
};

/// Computes LS(S) and LS(N) for one source.
SourceLists ComputeSourceLists(const Relation& rel,
                               const ContributionTable& contribs,
                               DomCounter* counter = nullptr);

/// Partial push-through: the row ids that survive group-level pruning,
/// i.e. LS(N). Pruning to this set preserves the final SkyMapJoin result.
std::vector<RowId> PushThroughPrune(const Relation& rel,
                                    const ContributionTable& contribs,
                                    DomCounter* counter = nullptr);

}  // namespace progxe
