#include "skyline/skyline.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/compact.h"

namespace progxe {

std::vector<uint32_t> SkylineReference(const PointView& points,
                                       DomCounter* counter) {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < points.n; ++i) {
    bool dominated = false;
    for (size_t j = 0; j < points.n && !dominated; ++j) {
      if (j == i) continue;
      dominated = DominatesMin(points.point(j), points.point(i), points.k,
                               counter);
    }
    if (!dominated) out.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

std::vector<uint32_t> SkylineBNL(const PointView& points, DomCounter* counter) {
  // Window of candidate skyline indices; a new point fights the window.
  std::vector<uint32_t> window;
  for (size_t i = 0; i < points.n; ++i) {
    const double* p = points.point(i);
    bool dominated = false;
    size_t w = 0;
    for (size_t j = 0; j < window.size(); ++j) {
      const double* q = points.point(window[j]);
      DomResult r = CompareMin(q, p, points.k, counter);
      if (r == DomResult::kLeftDominates) {
        dominated = true;
        // Keep the rest of the window intact.
        for (size_t rest = j; rest < window.size(); ++rest) {
          window[w++] = window[rest];
        }
        break;
      }
      if (r != DomResult::kRightDominates) {
        window[w++] = window[j];  // q survives p
      }
      // else: q is dominated by p and is dropped.
    }
    window.resize(w);
    if (!dominated) window.push_back(static_cast<uint32_t>(i));
  }
  return window;
}

std::vector<uint32_t> SkylineSFS(const PointView& points, DomCounter* counter) {
  // Order by ascending coordinate sum: if p dominates q then sum(p) < sum(q),
  // so dominators always precede their victims and window entries are never
  // evicted.
  std::vector<uint32_t> order(points.n);
  std::iota(order.begin(), order.end(), 0u);
  std::vector<double> sums(points.n, 0.0);
  for (size_t i = 0; i < points.n; ++i) {
    const double* p = points.point(i);
    double s = 0.0;
    for (int d = 0; d < points.k; ++d) s += p[d];
    sums[i] = s;
  }
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (sums[a] != sums[b]) return sums[a] < sums[b];
    return a < b;
  });

  std::vector<uint32_t> window;
  for (uint32_t idx : order) {
    const double* p = points.point(idx);
    bool dominated = false;
    for (uint32_t w : window) {
      if (DominatesMin(points.point(w), p, points.k, counter)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) window.push_back(idx);
  }
  std::sort(window.begin(), window.end());
  return window;
}

std::vector<uint32_t> Skyline(const PointView& points, const Preference& pref,
                              DomCounter* counter) {
  assert(pref.dimensions() == points.k);
  if (pref.IsAllLowest()) return SkylineSFS(points, counter);
  // Canonicalize into a scratch buffer, then run the minimize-all algorithm.
  std::vector<double> canon(points.n * static_cast<size_t>(points.k));
  for (size_t i = 0; i < points.n; ++i) {
    const double* p = points.point(i);
    for (int d = 0; d < points.k; ++d) {
      canon[i * static_cast<size_t>(points.k) + static_cast<size_t>(d)] =
          pref.Canonicalize(d, p[d]);
    }
  }
  PointView canon_view{canon.data(), points.n, points.k};
  return SkylineSFS(canon_view, counter);
}

bool SkylineWindow::Insert(const double* p, uint64_t payload,
                           DomCounter* counter) {
  const size_t k = static_cast<size_t>(k_);
  const size_t n = payloads_.size();
  // Single scan: record victims, bail if an incumbent dominates p. By
  // transitivity no incumbent can dominate p after p dominated another
  // (both incumbents would have to dominate each other), so bailing never
  // leaves the window half-evicted.
  evict_scratch_.clear();
  for (size_t j = 0; j < n; ++j) {
    DomResult r = CompareMin(points_.data() + j * k, p, k_, counter);
    if (r == DomResult::kLeftDominates) {
      assert(evict_scratch_.empty());
      return false;
    }
    if (r == DomResult::kRightDominates) evict_scratch_.push_back(j);
  }
  if (!evict_scratch_.empty()) {
    // Squeeze out the victims; survivors move at most once.
    size_t next_victim = 0;
    const size_t w = CompactParallel(
        n,
        [&](size_t i) {
          if (next_victim < evict_scratch_.size() &&
              evict_scratch_[next_victim] == i) {
            ++next_victim;
            return false;
          }
          return true;
        },
        [&](size_t from, size_t to) {
          MoveFlatRow(points_.data(), k, from, to);
          payloads_[to] = payloads_[from];
        });
    points_.resize(w * k);
    payloads_.resize(w);
  }
  // No-eviction fast path falls straight through: append only, no resize.
  points_.insert(points_.end(), p, p + k);
  payloads_.push_back(payload);
  return true;
}

}  // namespace progxe
