// Single-set skyline algorithms over flat point arrays.
//
// These are the substrate the blocking baselines (JF-SL, JF-SL+) are built
// on, and the reference implementations our property tests validate every
// progressive algorithm against. All functions operate on the canonical
// minimize-all form; use the Preference overloads for raw values.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "prefs/dominance.h"
#include "prefs/preference.h"

namespace progxe {

/// A flat set of n k-dimensional points: `data[i*k .. i*k+k)` is point i.
struct PointView {
  const double* data = nullptr;
  size_t n = 0;
  int k = 0;

  const double* point(size_t i) const { return data + i * static_cast<size_t>(k); }
};

/// O(n^2) textbook skyline; the oracle for property tests. Returns the
/// indices of all non-dominated points in input order. Points with exactly
/// equal coordinates are all retained (neither dominates the other).
std::vector<uint32_t> SkylineReference(const PointView& points,
                                       DomCounter* counter = nullptr);

/// Block-Nested-Loop skyline (Börzsönyi et al.) with an unbounded in-memory
/// window. Returns indices of skyline points in window order.
std::vector<uint32_t> SkylineBNL(const PointView& points,
                                 DomCounter* counter = nullptr);

/// Sort-Filter-Skyline (Chomicki et al.): points are scanned in a
/// topological order of the dominance relation (ascending coordinate sum),
/// so a point can only be dominated by points already in the window and the
/// window is never purged. Typically far fewer comparisons than BNL on
/// anti-correlated data.
std::vector<uint32_t> SkylineSFS(const PointView& points,
                                 DomCounter* counter = nullptr);

/// Preference-aware convenience wrapper: canonicalizes `points` (given in
/// user space) under `pref`, then runs SFS.
std::vector<uint32_t> Skyline(const PointView& points, const Preference& pref,
                              DomCounter* counter = nullptr);

/// Incremental skyline window: maintains the skyline of all points inserted
/// so far. Used by the blocking baselines' final phases.
class SkylineWindow {
 public:
  explicit SkylineWindow(int k) : k_(k) {}

  /// Inserts a point (canonical form). Returns true iff the point survives
  /// (is not dominated by the current window); dominated incumbents are
  /// evicted. `payload` is an opaque caller id carried with the point.
  bool Insert(const double* p, uint64_t payload, DomCounter* counter = nullptr);

  size_t size() const { return payloads_.size(); }
  int dimensions() const { return k_; }

  const double* point(size_t i) const {
    return points_.data() + i * static_cast<size_t>(k_);
  }
  uint64_t payload(size_t i) const { return payloads_[i]; }

  const std::vector<uint64_t>& payloads() const { return payloads_; }

 private:
  int k_;
  std::vector<double> points_;     // flat, k_ per entry
  std::vector<uint64_t> payloads_;
  std::vector<size_t> evict_scratch_;  // victim indices of the current insert
};

}  // namespace progxe
