// Tests for the state-of-the-art baselines: JF-SL, JF-SL+ and SSMJ.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/jf_sl.h"
#include "baselines/ssmj.h"
#include "harness/workload.h"
#include "skyline/group_skyline.h"

namespace progxe {
namespace {

Workload MakeWorkload(Distribution dist, size_t n, int d, double sigma,
                      uint64_t seed = 77) {
  WorkloadParams params;
  params.distribution = dist;
  params.cardinality = n;
  params.dims = d;
  params.sigma = sigma;
  params.seed = seed;
  return Workload::Make(params).MoveValue();
}

std::vector<std::pair<RowId, RowId>> Ids(
    const std::vector<ResultTuple>& results) {
  std::vector<std::pair<RowId, RowId>> ids;
  for (const auto& r : results) ids.emplace_back(r.r_id, r.t_id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(JfSl, SingleBatchAtEnd) {
  Workload w = MakeWorkload(Distribution::kIndependent, 500, 3, 0.02);
  BaselineStats stats;
  std::vector<ResultTuple> results;
  ASSERT_TRUE(RunJfSl(w.query(), [&](const ResultTuple& r) {
                results.push_back(r);
              }, &stats)
                  .ok());
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.results, results.size());
  EXPECT_GT(stats.join_pairs, 0u);
  EXPECT_EQ(stats.r_rows_used, 500u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(JfSlPlus, SameAnswerFewerJoinPairs) {
  Workload w = MakeWorkload(Distribution::kCorrelated, 1000, 3, 0.02);
  BaselineStats plain_stats;
  BaselineStats plus_stats;
  std::vector<ResultTuple> plain;
  std::vector<ResultTuple> plus;
  ASSERT_TRUE(RunJfSl(w.query(), [&](const ResultTuple& r) {
                plain.push_back(r);
              }, &plain_stats)
                  .ok());
  ASSERT_TRUE(RunJfSlPlus(w.query(), [&](const ResultTuple& r) {
                plus.push_back(r);
              }, &plus_stats)
                  .ok());
  EXPECT_EQ(Ids(plain), Ids(plus));
  EXPECT_LT(plus_stats.join_pairs, plain_stats.join_pairs);
  EXPECT_LT(plus_stats.r_rows_used, plain_stats.r_rows_used);
}

TEST(JfSl, RejectsInvalidQueries) {
  SkyMapJoinQuery q;
  EXPECT_TRUE(RunJfSl(q, [](const ResultTuple&) {}).IsInvalidArgument());
  Workload w = MakeWorkload(Distribution::kIndependent, 50, 2, 0.1);
  q = w.query();
  q.pref = Preference::AllLowest(5);
  EXPECT_TRUE(RunJfSl(q, [](const ResultTuple&) {}).IsInvalidArgument());
}

TEST(Ssmj, TwoBatchesAndCorrectFinalSet) {
  Workload w = MakeWorkload(Distribution::kIndependent, 800, 3, 0.02);
  BaselineStats jf_stats;
  std::vector<ResultTuple> reference;
  ASSERT_TRUE(RunJfSl(w.query(), [&](const ResultTuple& r) {
                reference.push_back(r);
              }, &jf_stats)
                  .ok());

  BaselineStats stats;
  SsmjResult result;
  std::vector<int> batch_marks;
  size_t emitted_at_batch1 = 0;
  std::vector<ResultTuple> emitted;
  ASSERT_TRUE(RunSsmj(
                  w.query(),
                  [&](const ResultTuple& r) { emitted.push_back(r); }, &stats,
                  &result,
                  [&](int batch) {
                    batch_marks.push_back(batch);
                    if (batch == 1) emitted_at_batch1 = emitted.size();
                  })
                  .ok());
  EXPECT_EQ(batch_marks, (std::vector<int>{1, 2}));
  EXPECT_EQ(stats.batches, 2u);
  // Final results are exactly the reference skyline.
  EXPECT_EQ(Ids(result.final_results), Ids(reference));
  // Batch 1 is whatever phase 1 produced.
  EXPECT_EQ(result.batch1.size(), emitted_at_batch1);
  // Accounting: emissions = final + early false positives.
  EXPECT_EQ(emitted.size(),
            result.final_results.size() + stats.early_false_positives);
}

TEST(Ssmj, SourcePruningBoundsJoinWork) {
  Workload w = MakeWorkload(Distribution::kCorrelated, 1500, 4, 0.01);
  BaselineStats ssmj_stats;
  BaselineStats jf_stats;
  ASSERT_TRUE(RunSsmj(w.query(), [](const ResultTuple&) {}, &ssmj_stats).ok());
  ASSERT_TRUE(RunJfSl(w.query(), [](const ResultTuple&) {}, &jf_stats).ok());
  EXPECT_LT(ssmj_stats.r_rows_used, 1500u);
  EXPECT_LT(ssmj_stats.join_pairs, jf_stats.join_pairs);
}

TEST(Ssmj, BatchOneSubsetOfGroupListJoin) {
  // Batch 1 must come from LS(S) x LS(S): every batch-1 result's rows are
  // source-skyline members.
  Workload w = MakeWorkload(Distribution::kAntiCorrelated, 400, 3, 0.05);
  SsmjResult result;
  ASSERT_TRUE(
      RunSsmj(w.query(), [](const ResultTuple&) {}, nullptr, &result).ok());

  CanonicalMapper mapper(w.query().map, w.query().pref);
  ContributionTable rc(w.r(), mapper, Side::kR);
  ContributionTable tc(w.t(), mapper, Side::kT);
  SourceLists r_lists = ComputeSourceLists(w.r(), rc);
  SourceLists t_lists = ComputeSourceLists(w.t(), tc);
  for (const ResultTuple& r : result.batch1) {
    EXPECT_TRUE(r_lists.in_source_skyline[r.r_id]);
    EXPECT_TRUE(t_lists.in_source_skyline[r.t_id]);
  }
}

TEST(Ssmj, EmptyJoinYieldsEmptyBatches) {
  Relation r(Schema::Anonymous(2));
  Relation t(Schema::Anonymous(2));
  const double row[] = {1.0, 2.0};
  r.Append(row, 1);
  t.Append(row, 2);  // disjoint keys
  SkyMapJoinQuery q;
  q.r = &r;
  q.t = &t;
  q.map = MapSpec::PairwiseSum(2);
  q.pref = Preference::AllLowest(2);
  BaselineStats stats;
  SsmjResult result;
  ASSERT_TRUE(RunSsmj(q, [](const ResultTuple&) { FAIL(); }, &stats, &result)
                  .ok());
  EXPECT_TRUE(result.batch1.empty());
  EXPECT_TRUE(result.final_results.empty());
}

}  // namespace
}  // namespace progxe
