// Randomized equivalence tests for the batched tuple pipeline: across many
// seeded configs — including heavy ties, high join selectivity and
// max_results early termination — the batched executor must emit exactly
// the same result multiset as SkylineReference applied to the full
// materialized join, and its ProgXeStats counters must be identical to the
// per-tuple legacy path (insert_batch_size <= 1). The batching changes
// cost, never semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "data/generator.h"
#include "progxe/executor.h"
#include "skyline/skyline.h"

namespace progxe {
namespace {

struct Config {
  Relation r{Schema::Anonymous(0)};
  Relation t{Schema::Anonymous(0)};
  MapSpec map;
  Preference pref;

  SkyMapJoinQuery query() const {
    SkyMapJoinQuery q;
    q.r = &r;
    q.t = &t;
    q.map = map;
    q.pref = pref;
    return q;
  }
};

/// Random query in the style of random_query_test, plus two stress knobs:
/// `tied` forces one output dimension to a constant (every join result ties
/// on it) and `high_sigma` pushes join selectivity into the 0.2-0.5 range.
Config MakeConfig(Rng* rng, bool tied, bool high_sigma) {
  Config cfg;
  const int src_dims = 2 + static_cast<int>(rng->NextBelow(3));
  const int out_dims = 2 + static_cast<int>(rng->NextBelow(2));
  const double sigma = high_sigma ? 0.2 + rng->NextDouble() * 0.3
                                  : 0.01 + rng->NextDouble() * 0.19;

  GeneratorOptions gen;
  gen.distribution = static_cast<Distribution>(rng->NextBelow(3));
  gen.cardinality = 120 + rng->NextBelow(200);
  gen.num_attributes = src_dims;
  gen.join_selectivity = sigma;
  gen.seed = rng->Next();
  cfg.r = GenerateRelation(gen).MoveValue();
  gen.seed = rng->Next();
  gen.cardinality = 120 + rng->NextBelow(200);
  cfg.t = GenerateRelation(gen).MoveValue();

  std::vector<MapFunc> funcs;
  std::vector<Direction> dirs;
  for (int j = 0; j < out_dims; ++j) {
    std::vector<MapTerm> terms;
    const int nterms = 1 + static_cast<int>(rng->NextBelow(3));
    for (int i = 0; i < nterms; ++i) {
      // Weight 0 on every term of a tied dimension: the dimension becomes
      // the constant, so all join results collide there.
      const double weight =
          tied && j == 0 ? 0.0 : rng->Uniform(0.2, 3.0);
      terms.push_back(MapTerm{
          rng->Bernoulli(0.5) ? Side::kR : Side::kT,
          static_cast<int>(rng->NextBelow(static_cast<uint64_t>(src_dims))),
          weight});
    }
    funcs.push_back(MapFunc(terms, rng->Uniform(0.0, 10.0),
                            static_cast<Transform>(rng->NextBelow(4))));
    dirs.push_back(rng->Bernoulli(0.3) ? Direction::kHighest
                                       : Direction::kLowest);
  }
  cfg.map = MapSpec(std::move(funcs));
  cfg.pref = Preference(std::move(dirs));
  return cfg;
}

/// Oracle per the issue: materialize the join, canonicalize the mapped
/// values under the preference, and run the O(n^2) SkylineReference.
std::vector<std::pair<RowId, RowId>> Oracle(const Config& cfg) {
  const int k = cfg.map.output_dimensions();
  std::vector<double> canon;
  std::vector<std::pair<RowId, RowId>> ids;
  std::vector<double> v(static_cast<size_t>(k));
  for (RowId a = 0; a < cfg.r.size(); ++a) {
    for (RowId b = 0; b < cfg.t.size(); ++b) {
      if (cfg.r.join_key(a) != cfg.t.join_key(b)) continue;
      cfg.map.Eval(cfg.r.attrs(a), cfg.t.attrs(b), v.data());
      for (int j = 0; j < k; ++j) {
        canon.push_back(cfg.pref.Canonicalize(j, v[static_cast<size_t>(j)]));
      }
      ids.emplace_back(a, b);
    }
  }
  PointView view{canon.data(), ids.size(), k};
  std::vector<std::pair<RowId, RowId>> skyline;
  for (uint32_t idx : SkylineReference(view)) {
    skyline.push_back(ids[idx]);
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

std::vector<std::pair<RowId, RowId>> Sorted(
    const std::vector<ResultTuple>& results) {
  std::vector<std::pair<RowId, RowId>> ids;
  for (const auto& r : results) ids.emplace_back(r.r_id, r.t_id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// The counters that define the pipeline's observable work. The batched
/// path must reproduce all of them exactly, comparisons included.
void ExpectSameStats(const ProgXeStats& a, const ProgXeStats& b,
                     const char* label) {
  EXPECT_EQ(a.join_pairs_generated, b.join_pairs_generated) << label;
  EXPECT_EQ(a.tuples_discarded_marked, b.tuples_discarded_marked) << label;
  EXPECT_EQ(a.tuples_discarded_frontier, b.tuples_discarded_frontier)
      << label;
  EXPECT_EQ(a.tuples_dominated_on_insert, b.tuples_dominated_on_insert)
      << label;
  EXPECT_EQ(a.tuples_evicted, b.tuples_evicted) << label;
  EXPECT_EQ(a.dominance_comparisons, b.dominance_comparisons) << label;
  EXPECT_EQ(a.results_emitted, b.results_emitted) << label;
  EXPECT_EQ(a.regions_discarded_runtime, b.regions_discarded_runtime)
      << label;
  EXPECT_EQ(a.cells_flushed, b.cells_flushed) << label;
}

Result<std::vector<ResultTuple>> RunConfig(const Config& cfg, size_t batch_size,
                                     ProgXeStats* stats,
                                     size_t max_results = 0) {
  ProgXeOptions options;
  options.insert_batch_size = batch_size;
  options.max_results = max_results;
  options.seed = 0xfeed;
  return RunProgXe(cfg.query(), options, stats);
}

class BatchedEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(BatchedEquivalenceSweep, BatchedMatchesOracleAndLegacyCounters) {
  const int param = GetParam();
  Rng rng(0xba7c4 + static_cast<uint64_t>(param));
  // Every third config is heavily tied; every fourth has high sigma.
  const Config cfg = MakeConfig(&rng, param % 3 == 0, param % 4 == 0);
  const auto oracle = Oracle(cfg);

  ProgXeStats legacy_stats;
  auto legacy = RunConfig(cfg, 1, &legacy_stats);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(Sorted(legacy.value()), oracle) << "legacy path, param=" << param;

  // Default block size plus an odd size that exercises ragged tails.
  for (size_t batch : {size_t{256}, size_t{7}}) {
    ProgXeStats batched_stats;
    auto batched = RunConfig(cfg, batch, &batched_stats);
    ASSERT_TRUE(batched.ok());
    EXPECT_EQ(Sorted(batched.value()), oracle)
        << "batch=" << batch << ", param=" << param;
    ExpectSameStats(legacy_stats, batched_stats, "full run");
  }

  // max_results early termination: the emitted prefix must be identical
  // between the legacy and batched pipelines, and a subset of the oracle.
  if (!oracle.empty()) {
    const size_t limit = 1 + oracle.size() / 2;
    ProgXeStats legacy_early_stats;
    auto legacy_early = RunConfig(cfg, 1, &legacy_early_stats, limit);
    ASSERT_TRUE(legacy_early.ok());
    ProgXeStats batched_early_stats;
    auto batched_early = RunConfig(cfg, 256, &batched_early_stats, limit);
    ASSERT_TRUE(batched_early.ok());
    const auto legacy_ids = Sorted(legacy_early.value());
    EXPECT_EQ(legacy_ids, Sorted(batched_early.value()))
        << "early termination, param=" << param;
    ExpectSameStats(legacy_early_stats, batched_early_stats, "early run");
    EXPECT_LE(legacy_ids.size(), limit);
    EXPECT_TRUE(std::includes(oracle.begin(), oracle.end(),
                              legacy_ids.begin(), legacy_ids.end()))
        << "emitted prefix must be final skyline members, param=" << param;
  }
}

// 56 random configs; with the per-config legacy/256/7/early variants this
// sweeps well over 50 seeded executor configurations.
INSTANTIATE_TEST_SUITE_P(Seeds, BatchedEquivalenceSweep,
                         ::testing::Range(0, 56));

}  // namespace
}  // namespace progxe
