// Randomized equivalence tests for the batched tuple pipeline: across many
// seeded configs — including heavy ties, high join selectivity and
// max_results early termination — the batched executor must emit exactly
// the same result multiset as SkylineReference applied to the full
// materialized join, and its ProgXeStats counters must be identical to the
// per-tuple legacy path (insert_batch_size <= 1). The batching changes
// cost, never semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <utility>
#include <vector>

#include "equivalence_common.h"
#include "skyline/skyline.h"

namespace progxe {
namespace {

using test::Config;
using test::ExpectSameStats;
using test::MakeConfig;

/// Oracle per the issue: materialize the join, canonicalize the mapped
/// values under the preference, and run the O(n^2) SkylineReference.
std::vector<std::pair<RowId, RowId>> Oracle(const Config& cfg) {
  const int k = cfg.map.output_dimensions();
  std::vector<double> canon;
  std::vector<std::pair<RowId, RowId>> ids;
  std::vector<double> v(static_cast<size_t>(k));
  for (RowId a = 0; a < cfg.r.size(); ++a) {
    for (RowId b = 0; b < cfg.t.size(); ++b) {
      if (cfg.r.join_key(a) != cfg.t.join_key(b)) continue;
      cfg.map.Eval(cfg.r.attrs(a), cfg.t.attrs(b), v.data());
      for (int j = 0; j < k; ++j) {
        canon.push_back(cfg.pref.Canonicalize(j, v[static_cast<size_t>(j)]));
      }
      ids.emplace_back(a, b);
    }
  }
  PointView view{canon.data(), ids.size(), k};
  std::vector<std::pair<RowId, RowId>> skyline;
  for (uint32_t idx : SkylineReference(view)) {
    skyline.push_back(ids[idx]);
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

std::vector<std::pair<RowId, RowId>> Sorted(
    const std::vector<ResultTuple>& results) {
  std::vector<std::pair<RowId, RowId>> ids;
  for (const auto& r : results) ids.emplace_back(r.r_id, r.t_id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

Result<std::vector<ResultTuple>> RunConfig(const Config& cfg, size_t batch_size,
                                     ProgXeStats* stats,
                                     size_t max_results = 0,
                                     int num_threads = 1) {
  ProgXeOptions options;
  options.insert_batch_size = batch_size;
  options.max_results = max_results;
  options.seed = 0xfeed;
  options.num_threads = num_threads;
  return RunProgXe(cfg.query(), options, stats);
}

/// Thread counts the parallel pipeline is swept over; PROGXE_TEST_THREADS
/// adds one more (the ThreadSanitizer CI job sets it to 4).
std::vector<int> ThreadSweep() {
  std::vector<int> sweep = {2, 8};
  if (const char* env = std::getenv("PROGXE_TEST_THREADS")) {
    const int extra = std::atoi(env);
    if (extra > 1) sweep.push_back(extra);
  }
  return sweep;
}

class BatchedEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(BatchedEquivalenceSweep, BatchedMatchesOracleAndLegacyCounters) {
  const int param = GetParam();
  Rng rng(0xba7c4 + static_cast<uint64_t>(param));
  // Every third config is heavily tied; every fourth has high sigma.
  const Config cfg = MakeConfig(&rng, param % 3 == 0, param % 4 == 0);
  const auto oracle = Oracle(cfg);

  ProgXeStats legacy_stats;
  auto legacy = RunConfig(cfg, 1, &legacy_stats);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(Sorted(legacy.value()), oracle) << "legacy path, param=" << param;

  // Default block size plus an odd size that exercises ragged tails.
  std::vector<std::pair<RowId, RowId>> batched256_seq;
  for (size_t batch : {size_t{256}, size_t{7}}) {
    ProgXeStats batched_stats;
    auto batched = RunConfig(cfg, batch, &batched_stats);
    ASSERT_TRUE(batched.ok());
    EXPECT_EQ(Sorted(batched.value()), oracle)
        << "batch=" << batch << ", param=" << param;
    ExpectSameStats(legacy_stats, batched_stats, "full run");
    if (batch == 256) {
      for (const auto& res : batched.value()) {
        batched256_seq.emplace_back(res.r_id, res.t_id);
      }
    }
  }

  // The parallel join->map pipeline: any worker count must reproduce the
  // single-threaded *emission sequence* and counters bit-for-bit — the
  // ordered merge feeds the output table in exactly the sequential pair
  // order.
  for (int threads : ThreadSweep()) {
    ProgXeStats mt_stats;
    auto mt = RunConfig(cfg, 256, &mt_stats, 0, threads);
    ASSERT_TRUE(mt.ok());
    std::vector<std::pair<RowId, RowId>> mt_seq;
    for (const auto& res : mt.value()) mt_seq.emplace_back(res.r_id, res.t_id);
    EXPECT_EQ(mt_seq, batched256_seq)
        << "threads=" << threads << ", param=" << param;
    ExpectSameStats(legacy_stats, mt_stats, "parallel run");
  }

  // max_results early termination: the emitted prefix must be identical
  // between the legacy and batched pipelines, and a subset of the oracle.
  if (!oracle.empty()) {
    const size_t limit = 1 + oracle.size() / 2;
    ProgXeStats legacy_early_stats;
    auto legacy_early = RunConfig(cfg, 1, &legacy_early_stats, limit);
    ASSERT_TRUE(legacy_early.ok());
    ProgXeStats batched_early_stats;
    auto batched_early = RunConfig(cfg, 256, &batched_early_stats, limit);
    ASSERT_TRUE(batched_early.ok());
    const auto legacy_ids = Sorted(legacy_early.value());
    EXPECT_EQ(legacy_ids, Sorted(batched_early.value()))
        << "early termination, param=" << param;
    ExpectSameStats(legacy_early_stats, batched_early_stats, "early run");
    EXPECT_LE(legacy_ids.size(), limit);
    EXPECT_TRUE(std::includes(oracle.begin(), oracle.end(),
                              legacy_ids.begin(), legacy_ids.end()))
        << "emitted prefix must be final skyline members, param=" << param;
  }
}

// 56 random configs; with the per-config legacy/256/7/early variants this
// sweeps well over 50 seeded executor configurations.
INSTANTIATE_TEST_SUITE_P(Seeds, BatchedEquivalenceSweep,
                         ::testing::Range(0, 56));

}  // namespace
}  // namespace progxe
