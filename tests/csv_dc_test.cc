// Tests for the CSV relation loader/writer and the divide-and-conquer
// skyline oracle.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/csv_loader.h"
#include "data/generator.h"
#include "skyline/divide_conquer.h"

namespace progxe {
namespace {

class CsvLoaderTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_ = "/tmp/progxe_csv_loader_test.csv";
};

TEST_F(CsvLoaderTest, LoadsNumericJoinKeys) {
  WriteFile("price,delay,country\n10.5,3,7\n20,4.25,9\n");
  auto result = LoadRelationCsv(path_, "country");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Relation& rel = result->relation;
  ASSERT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.schema().num_attributes(), 2);
  EXPECT_EQ(rel.schema().attribute_names()[0], "price");
  EXPECT_EQ(rel.schema().join_name(), "country");
  EXPECT_EQ(rel.attr(0, 0), 10.5);
  EXPECT_EQ(rel.attr(1, 1), 4.25);
  EXPECT_EQ(rel.join_key(0), 7);
  EXPECT_EQ(rel.join_key(1), 9);
  EXPECT_TRUE(result->join_dictionary.empty());
}

TEST_F(CsvLoaderTest, DictionaryEncodesStringKeys) {
  WriteFile("price,country\n1,DE\n2,FR\n3,DE\n");
  auto result = LoadRelationCsv(path_, "country");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->relation.join_key(0), 0);
  EXPECT_EQ(result->relation.join_key(1), 1);
  EXPECT_EQ(result->relation.join_key(2), 0);
  ASSERT_EQ(result->join_dictionary.size(), 2u);
  EXPECT_EQ(result->join_dictionary[0], "DE");
  EXPECT_EQ(result->join_dictionary[1], "FR");
}

TEST_F(CsvLoaderTest, JoinColumnAnywhereInHeader) {
  WriteFile("country,price,delay\n5,1,2\n");
  auto result = LoadRelationCsv(path_, "country");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->relation.attr(0, 0), 1.0);
  EXPECT_EQ(result->relation.attr(0, 1), 2.0);
  EXPECT_EQ(result->relation.join_key(0), 5);
}

TEST_F(CsvLoaderTest, QuotedFields) {
  WriteFile("price,country\n\"1.5\",\"US, east\"\n");
  auto result = LoadRelationCsv(path_, "country");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->relation.attr(0, 0), 1.5);
  EXPECT_EQ(result->join_dictionary[0], "US, east");
}

TEST_F(CsvLoaderTest, Errors) {
  EXPECT_TRUE(LoadRelationCsv("/no/such/file.csv", "k").status().code() ==
              StatusCode::kIOError);

  WriteFile("");
  EXPECT_FALSE(LoadRelationCsv(path_, "k").ok());

  WriteFile("a,b\n1,2\n");
  EXPECT_FALSE(LoadRelationCsv(path_, "missing").ok());

  WriteFile("a,k\nnot_a_number,1\n");
  EXPECT_FALSE(LoadRelationCsv(path_, "k").ok());

  WriteFile("a,k\n1\n");  // wrong field count
  EXPECT_FALSE(LoadRelationCsv(path_, "k").ok());

  WriteFile("k\n1\n");  // no value columns
  EXPECT_FALSE(LoadRelationCsv(path_, "k").ok());
}

TEST_F(CsvLoaderTest, RoundTripThroughWriter) {
  GeneratorOptions gen;
  gen.cardinality = 200;
  gen.num_attributes = 3;
  gen.seed = 9;
  Relation rel = GenerateRelation(gen).MoveValue();
  ASSERT_TRUE(WriteRelationCsv(rel, path_).ok());
  auto loaded = LoadRelationCsv(path_, "jk");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->relation.size(), rel.size());
  for (RowId i = 0; i < rel.size(); ++i) {
    EXPECT_EQ(loaded->relation.join_key(i), rel.join_key(i));
    for (int d = 0; d < 3; ++d) {
      EXPECT_NEAR(loaded->relation.attr(i, d), rel.attr(i, d), 1e-4);
    }
  }
}

TEST(SplitCsvLine, EdgeCases) {
  using internal::SplitCsvLine;
  EXPECT_EQ(SplitCsvLine("a,b,c").size(), 3u);
  EXPECT_EQ(SplitCsvLine("").size(), 1u);
  EXPECT_EQ(SplitCsvLine("a,,c")[1], "");
  EXPECT_EQ(SplitCsvLine("\"x\"\"y\"")[0], "x\"y");  // escaped quote
  EXPECT_EQ(SplitCsvLine("a,b\r")[1], "b");          // CRLF tolerated
}

class DcSkylineSweep : public ::testing::TestWithParam<Distribution> {};

TEST_P(DcSkylineSweep, MatchesReferenceAndSfs) {
  GeneratorOptions gen;
  gen.distribution = GetParam();
  gen.cardinality = 1200;
  gen.num_attributes = 4;
  gen.seed = 123;
  Relation rel = GenerateRelation(gen).MoveValue();
  std::vector<double> flat;
  for (RowId i = 0; i < rel.size(); ++i) {
    auto span = rel.attrs(i);
    flat.insert(flat.end(), span.begin(), span.end());
  }
  PointView view{flat.data(), rel.size(), 4};
  auto reference = SkylineReference(view);
  std::sort(reference.begin(), reference.end());
  EXPECT_EQ(SkylineDivideConquer(view), reference);
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, DcSkylineSweep,
                         ::testing::Values(Distribution::kIndependent,
                                           Distribution::kCorrelated,
                                           Distribution::kAntiCorrelated),
                         [](const auto& info) {
                           return DistributionName(info.param);
                         });

TEST(DcSkyline, TinyInputsAndTies) {
  PointView empty{nullptr, 0, 2};
  EXPECT_TRUE(SkylineDivideConquer(empty).empty());

  // Duplicates across the median split must all survive.
  std::vector<double> dup;
  for (int i = 0; i < 200; ++i) {
    dup.push_back(1.0);
    dup.push_back(1.0);
  }
  PointView view{dup.data(), 200, 2};
  EXPECT_EQ(SkylineDivideConquer(view).size(), 200u);
}

}  // namespace
}  // namespace progxe
