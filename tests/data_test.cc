// Unit tests for schema, relation storage and the synthetic generator.
#include <gtest/gtest.h>

#include <cmath>

#include "data/generator.h"
#include "data/relation.h"

namespace progxe {
namespace {

TEST(Schema, AnonymousNamesAndWidth) {
  Schema s = Schema::Anonymous(3);
  EXPECT_EQ(s.num_attributes(), 3);
  EXPECT_EQ(s.attribute_names()[0], "a0");
  EXPECT_EQ(s.attribute_names()[2], "a2");
  EXPECT_EQ(s.join_name(), "jk");
}

TEST(Schema, IndexOf) {
  Schema s({"price", "delay"}, "country");
  EXPECT_EQ(s.IndexOf("price").value(), 0);
  EXPECT_EQ(s.IndexOf("delay").value(), 1);
  EXPECT_TRUE(s.IndexOf("missing").status().IsNotFound());
}

TEST(Schema, ToStringMentionsEverything) {
  Schema s({"x", "y"}, "j");
  EXPECT_EQ(s.ToString(), "Schema(x, y | j)");
}

TEST(Relation, AppendAndAccess) {
  Relation rel(Schema::Anonymous(2));
  const double row0[] = {1.5, 2.5};
  const double row1[] = {3.0, 4.0};
  EXPECT_EQ(rel.Append(row0, 7), 0u);
  EXPECT_EQ(rel.Append(row1, 9), 1u);
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.attr(0, 1), 2.5);
  EXPECT_EQ(rel.attr(1, 0), 3.0);
  EXPECT_EQ(rel.join_key(0), 7);
  EXPECT_EQ(rel.join_key(1), 9);
  auto span = rel.attrs(1);
  EXPECT_EQ(span.size(), 2u);
  EXPECT_EQ(span[1], 4.0);
}

TEST(Relation, SelectRenumbersAndMaps) {
  Relation rel(Schema::Anonymous(1));
  for (int i = 0; i < 5; ++i) {
    double v = static_cast<double>(i);
    rel.Append({&v, 1}, i * 10);
  }
  std::vector<RowId> ids;
  Relation sub = rel.Select({4, 1}, &ids);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.attr(0, 0), 4.0);
  EXPECT_EQ(sub.attr(1, 0), 1.0);
  EXPECT_EQ(sub.join_key(0), 40);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 4u);
  EXPECT_EQ(ids[1], 1u);
}

TEST(Generator, ParseDistribution) {
  EXPECT_EQ(ParseDistribution("independent").value(),
            Distribution::kIndependent);
  EXPECT_EQ(ParseDistribution("corr").value(), Distribution::kCorrelated);
  EXPECT_EQ(ParseDistribution("anti").value(),
            Distribution::kAntiCorrelated);
  EXPECT_FALSE(ParseDistribution("zipf").ok());
}

TEST(Generator, JoinDomainSizeFromSelectivity) {
  EXPECT_EQ(JoinDomainSize(0.001), 1000u);
  EXPECT_EQ(JoinDomainSize(0.1), 10u);
  EXPECT_EQ(JoinDomainSize(1.0), 1u);
}

TEST(Generator, RejectsBadOptions) {
  GeneratorOptions bad;
  bad.num_attributes = 0;
  EXPECT_FALSE(GenerateRelation(bad).ok());
  bad = GeneratorOptions();
  bad.join_selectivity = 0.0;
  EXPECT_FALSE(GenerateRelation(bad).ok());
  bad = GeneratorOptions();
  bad.attr_lo = 5;
  bad.attr_hi = 5;
  EXPECT_FALSE(GenerateRelation(bad).ok());
}

TEST(Generator, Deterministic) {
  GeneratorOptions opts;
  opts.cardinality = 100;
  opts.seed = 5;
  Relation a = GenerateRelation(opts).MoveValue();
  Relation b = GenerateRelation(opts).MoveValue();
  ASSERT_EQ(a.size(), b.size());
  for (RowId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.join_key(i), b.join_key(i));
    for (int d = 0; d < a.num_attributes(); ++d) {
      EXPECT_EQ(a.attr(i, d), b.attr(i, d));
    }
  }
}

class GeneratorDistributions
    : public ::testing::TestWithParam<Distribution> {};

TEST_P(GeneratorDistributions, ValuesInRangeAndKeysInDomain) {
  GeneratorOptions opts;
  opts.distribution = GetParam();
  opts.cardinality = 5000;
  opts.num_attributes = 4;
  opts.join_selectivity = 0.01;
  Relation rel = GenerateRelation(opts).MoveValue();
  ASSERT_EQ(rel.size(), 5000u);
  const auto domain = static_cast<JoinKey>(JoinDomainSize(0.01));
  for (RowId i = 0; i < rel.size(); ++i) {
    EXPECT_GE(rel.join_key(i), 0);
    EXPECT_LT(rel.join_key(i), domain);
    for (int d = 0; d < 4; ++d) {
      EXPECT_GE(rel.attr(i, d), 1.0);
      EXPECT_LE(rel.attr(i, d), 100.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, GeneratorDistributions,
                         ::testing::Values(Distribution::kIndependent,
                                           Distribution::kCorrelated,
                                           Distribution::kAntiCorrelated),
                         [](const auto& info) {
                           return DistributionName(info.param);
                         });

// Pearson correlation between the first two attributes must have the
// distribution's characteristic sign.
double PairwiseCorrelation(const Relation& rel) {
  const size_t n = rel.size();
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (RowId i = 0; i < n; ++i) {
    const double x = rel.attr(i, 0);
    const double y = rel.attr(i, 1);
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  const double dn = static_cast<double>(n);
  const double cov = sxy / dn - (sx / dn) * (sy / dn);
  const double vx = sxx / dn - (sx / dn) * (sx / dn);
  const double vy = syy / dn - (sy / dn) * (sy / dn);
  return cov / std::sqrt(vx * vy);
}

TEST(Generator, CorrelationSigns) {
  GeneratorOptions opts;
  opts.cardinality = 20000;
  opts.num_attributes = 2;

  opts.distribution = Distribution::kIndependent;
  EXPECT_NEAR(PairwiseCorrelation(GenerateRelation(opts).MoveValue()), 0.0,
              0.05);

  opts.distribution = Distribution::kCorrelated;
  EXPECT_GT(PairwiseCorrelation(GenerateRelation(opts).MoveValue()), 0.5);

  opts.distribution = Distribution::kAntiCorrelated;
  EXPECT_LT(PairwiseCorrelation(GenerateRelation(opts).MoveValue()), -0.5);
}

// The skyline-size ordering correlated < independent < anti-correlated is
// the defining property of the benchmark family (Börzsönyi et al.).
TEST(Generator, SkylineSizeOrdering) {
  GeneratorOptions opts;
  opts.cardinality = 3000;
  opts.num_attributes = 4;

  auto skyline_size = [&](Distribution d) {
    opts.distribution = d;
    Relation rel = GenerateRelation(opts).MoveValue();
    size_t count = 0;
    for (RowId i = 0; i < rel.size(); ++i) {
      bool dominated = false;
      for (RowId j = 0; j < rel.size() && !dominated; ++j) {
        if (i == j) continue;
        bool leq = true;
        bool strict = false;
        for (int d2 = 0; d2 < 4; ++d2) {
          if (rel.attr(j, d2) > rel.attr(i, d2)) {
            leq = false;
            break;
          }
          if (rel.attr(j, d2) < rel.attr(i, d2)) strict = true;
        }
        dominated = leq && strict;
      }
      if (!dominated) ++count;
    }
    return count;
  };

  const size_t corr = skyline_size(Distribution::kCorrelated);
  const size_t indep = skyline_size(Distribution::kIndependent);
  const size_t anti = skyline_size(Distribution::kAntiCorrelated);
  EXPECT_LT(corr, indep);
  EXPECT_LT(indep, anti);
}

}  // namespace
}  // namespace progxe
