// Property tests for the shared DominanceIndex (dominance/dominance_index.h):
// randomized insert/remove/query sweeps checked against a brute-force flat
// scan, plus the frontier-pruning invariants the sharded merge sink and the
// OutputTable fast path rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.h"
#include "dominance/dominance_index.h"

namespace progxe {
namespace {

struct RefEntry {
  std::vector<CellCoord> coords;
  int32_t payload = 0;
  bool live = false;
};

/// Brute-force mirror of the index: flat entry list + naive scans.
struct Reference {
  int k = 0;
  std::vector<RefEntry> entries;  // by insertion order
  /// Mirror of the frontier's dedup: coords covered by a current frontier
  /// entry are not logged; otherwise covered entries are evicted and the
  /// coords appended. `noted` is therefore the reference epoch log.
  std::vector<std::vector<CellCoord>> frontier;
  std::vector<std::vector<CellCoord>> noted;

  void Note(const std::vector<CellCoord>& coords) {
    for (const auto& f : frontier) {
      if (DominanceIndex::CoordsLeq(f.data(), coords.data(), k)) return;
    }
    std::erase_if(frontier, [&](const std::vector<CellCoord>& f) {
      return DominanceIndex::CoordsLeq(coords.data(), f.data(), k);
    });
    frontier.push_back(coords);
    noted.push_back(coords);
  }

  std::vector<int32_t> ConePayloads(const CellCoord* q, bool ge,
                                    CellCoord offset) const {
    std::vector<int32_t> out;
    for (const RefEntry& e : entries) {
      if (!e.live) continue;
      bool in_cone = true;
      for (int d = 0; d < k && in_cone; ++d) {
        in_cone = ge ? e.coords[static_cast<size_t>(d)] >= q[d] + offset
                     : e.coords[static_cast<size_t>(d)] <= q[d] + offset;
      }
      if (in_cone) out.push_back(e.payload);
    }
    return out;
  }

  bool AnyLiveStrictlyBelow(const CellCoord* q) const {
    for (const RefEntry& e : entries) {
      if (!e.live) continue;
      if (DominanceIndex::CoordsStrictlyBelow(e.coords.data(), q, k)) {
        return true;
      }
    }
    return false;
  }

  /// The frontier covers every coordinate vector ever noted, so its strict
  /// -domination test must equal a scan of the full note log.
  bool AnyNotedStrictlyBelow(const CellCoord* q, size_t from = 0) const {
    for (size_t i = from; i < noted.size(); ++i) {
      if (DominanceIndex::CoordsStrictlyBelow(noted[i].data(), q, k)) {
        return true;
      }
    }
    return false;
  }
};

class DominanceIndexSweep : public ::testing::TestWithParam<int> {};

TEST_P(DominanceIndexSweep, MatchesBruteForceUnderRandomChurn) {
  const int param = GetParam();
  Rng rng(0xd031 + static_cast<uint64_t>(param));
  const int k = 2 + static_cast<int>(rng.NextBelow(3));
  const int cpd = 4 + static_cast<int>(rng.NextBelow(12));

  DominanceIndex index(k, cpd);
  Reference ref;
  ref.k = k;
  std::vector<int32_t> pos_of;  // payload -> index position

  std::vector<CellCoord> q(static_cast<size_t>(k));
  const auto random_coords = [&](CellCoord* out) {
    for (int d = 0; d < k; ++d) {
      out[d] = static_cast<CellCoord>(rng.NextBelow(
          static_cast<uint64_t>(cpd)));
    }
  };

  for (int step = 0; step < 400; ++step) {
    const uint64_t action = rng.NextBelow(10);
    if (action < 5 || ref.entries.empty()) {
      // Insert (and usually note the coords to the frontier, as OutputTable
      // does; the merge sink path skips the note).
      RefEntry e;
      e.coords.resize(static_cast<size_t>(k));
      random_coords(e.coords.data());
      e.payload = static_cast<int32_t>(ref.entries.size());
      e.live = true;
      pos_of.push_back(index.Add(e.coords.data(), e.payload));
      if (rng.NextBelow(4) != 0) {
        index.NoteFrontier(e.coords.data());
        ref.Note(e.coords);
      }
      ref.entries.push_back(std::move(e));
    } else if (action < 7) {
      // Remove a random live entry.
      std::vector<int32_t> live;
      for (const RefEntry& e : ref.entries) {
        if (e.live) live.push_back(e.payload);
      }
      if (live.empty()) continue;
      const int32_t victim =
          live[rng.NextBelow(static_cast<uint64_t>(live.size()))];
      index.Remove(pos_of[static_cast<size_t>(victim)]);
      ref.entries[static_cast<size_t>(victim)].live = false;
      index.MaybeCompact([&](int32_t payload, int32_t pos) {
        pos_of[static_cast<size_t>(payload)] = pos;
      });
    } else {
      // Query: cone sweeps and the strict-below fast path vs brute force.
      random_coords(q.data());
      const bool ge = rng.Bernoulli(0.5);
      const CellCoord offset =
          static_cast<CellCoord>(rng.NextBelow(2));  // 0 or 1
      std::vector<int32_t> got;
      if (ge) {
        index.SweepGe(q.data(), offset, [&](size_t p) {
          got.push_back(index.payload(p));
          return true;
        });
      } else {
        index.SweepLe(q.data(), [&](size_t p) {
          got.push_back(index.payload(p));
          return true;
        });
      }
      std::vector<int32_t> want = ref.ConePayloads(q.data(), ge,
                                                   ge ? offset : 0);
      // Sweeps enumerate ascending positions; payloads follow insertion
      // order modulo compaction, which preserves relative order — so both
      // sides sort to the same multiset AND the sweep order itself is the
      // reference order.
      EXPECT_EQ(got, want) << "step=" << step << " ge=" << ge;

      EXPECT_EQ(index.AnyLiveStrictlyBelow(q.data()),
                ref.AnyLiveStrictlyBelow(q.data()))
          << "step=" << step;
      EXPECT_EQ(index.FrontierStrictlyDominates(q.data()),
                ref.AnyNotedStrictlyBelow(q.data()))
          << "step=" << step;
    }

    // Structural invariants, every step.
    ASSERT_EQ(index.live_size(),
              static_cast<size_t>(std::count_if(
                  ref.entries.begin(), ref.entries.end(),
                  [](const RefEntry& e) { return e.live; })));
    // Frontier pruning: the kept frontier is an antichain — no entry
    // covered (<= everywhere) by another.
    const auto& frontier = index.frontier();
    const size_t kk = static_cast<size_t>(k);
    for (size_t a = 0; a + kk <= frontier.size(); a += kk) {
      for (size_t b = 0; b + kk <= frontier.size(); b += kk) {
        if (a == b) continue;
        EXPECT_FALSE(DominanceIndex::CoordsLeq(frontier.data() + a,
                                               frontier.data() + b, k))
            << "frontier entry dominated by another";
      }
    }
  }

  // The epoch log is append-only and never loses dominators: a check from
  // any epoch suffix must agree with the reference log suffix.
  ASSERT_EQ(index.frontier_epoch(), ref.noted.size());
  for (int probe = 0; probe < 32; ++probe) {
    random_coords(q.data());
    const size_t since =
        ref.noted.empty()
            ? 0
            : rng.NextBelow(static_cast<uint64_t>(ref.noted.size() + 1));
    EXPECT_EQ(index.FrontierDominatesSince(q.data(), since),
              ref.AnyNotedStrictlyBelow(q.data(), since))
        << "since=" << since;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominanceIndexSweep, ::testing::Range(0, 10));

// Early-exit contract: a sweep stops as soon as fn returns false.
TEST(DominanceIndex, SweepStopsOnFalse) {
  DominanceIndex index(2, 8);
  const CellCoord a[2] = {1, 1};
  const CellCoord b[2] = {2, 2};
  const CellCoord c[2] = {3, 3};
  index.Add(a, 0);
  index.Add(b, 1);
  index.Add(c, 2);
  size_t visits = 0;
  const CellCoord q[2] = {7, 7};
  index.SweepLe(q, [&](size_t) {
    ++visits;
    return false;
  });
  EXPECT_EQ(visits, 1u);
}

// Removal mid-sweep: entries tombstoned by fn within the currently captured
// word must not be visited afterwards (the merge sink drops dominated held
// candidates from inside SweepGe).
TEST(DominanceIndex, RemovalDuringSweepSkipsTombstones) {
  DominanceIndex index(2, 8);
  std::vector<int32_t> pos;
  const CellCoord coords[2] = {4, 4};
  for (int32_t i = 0; i < 8; ++i) pos.push_back(index.Add(coords, i));
  std::vector<int32_t> seen;
  const CellCoord q[2] = {4, 4};
  index.SweepGe(q, 0, [&](size_t p) {
    const int32_t id = index.payload(p);
    seen.push_back(id);
    if (id == 0) {
      // Drop two later entries while their bits are already captured.
      index.Remove(pos[3]);
      index.Remove(pos[5]);
    }
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int32_t>{0, 1, 2, 4, 6, 7}));
  EXPECT_EQ(index.live_size(), 6u);
}

}  // namespace
}  // namespace progxe
