// Unit tests for the preference model and dominance predicates
// (Definition 1 of the paper).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "prefs/dominance.h"

namespace progxe {
namespace {

TEST(Preference, FactoriesAndAccessors) {
  Preference low = Preference::AllLowest(3);
  EXPECT_EQ(low.dimensions(), 3);
  EXPECT_TRUE(low.IsAllLowest());
  EXPECT_EQ(low.direction(1), Direction::kLowest);

  Preference high = Preference::AllHighest(2);
  EXPECT_FALSE(high.IsAllLowest());
  EXPECT_EQ(high.ToString(), "HIGHEST,HIGHEST");
}

TEST(Preference, CanonicalizeIsInvolution) {
  Preference mixed({Direction::kLowest, Direction::kHighest});
  EXPECT_EQ(mixed.Canonicalize(0, 5.0), 5.0);
  EXPECT_EQ(mixed.Canonicalize(1, 5.0), -5.0);
  EXPECT_EQ(mixed.Decanonicalize(1, mixed.Canonicalize(1, 5.0)), 5.0);
}

TEST(Dominance, BasicMinimizeCases) {
  Preference pref = Preference::AllLowest(2);
  std::vector<double> a{1.0, 2.0};
  std::vector<double> b{2.0, 3.0};
  std::vector<double> c{2.0, 1.0};
  std::vector<double> a2{1.0, 2.0};

  EXPECT_EQ(Compare(a, b, pref), DomResult::kLeftDominates);
  EXPECT_EQ(Compare(b, a, pref), DomResult::kRightDominates);
  EXPECT_EQ(Compare(a, c, pref), DomResult::kIncomparable);
  EXPECT_EQ(Compare(a, a2, pref), DomResult::kEqual);

  EXPECT_TRUE(Dominates(a, b, pref));
  EXPECT_FALSE(Dominates(b, a, pref));
  EXPECT_FALSE(Dominates(a, a2, pref));  // equality is not dominance

  EXPECT_TRUE(WeaklyDominates(a, a2, pref));
  EXPECT_TRUE(WeaklyDominates(a, b, pref));
  EXPECT_FALSE(WeaklyDominates(b, a, pref));
}

TEST(Dominance, PartialImprovementIsNotDominance) {
  Preference pref = Preference::AllLowest(3);
  std::vector<double> a{1.0, 5.0, 3.0};
  std::vector<double> b{2.0, 4.0, 3.0};
  EXPECT_EQ(Compare(a, b, pref), DomResult::kIncomparable);
}

TEST(Dominance, HighestDirectionFlipsOrder) {
  Preference pref = Preference::AllHighest(2);
  std::vector<double> big{10.0, 10.0};
  std::vector<double> small{1.0, 1.0};
  EXPECT_TRUE(Dominates(big, small, pref));
  EXPECT_FALSE(Dominates(small, big, pref));
}

TEST(Dominance, MixedDirections) {
  // Minimize cost (dim 0), maximize quality (dim 1).
  Preference pref({Direction::kLowest, Direction::kHighest});
  std::vector<double> cheap_good{1.0, 9.0};
  std::vector<double> costly_bad{5.0, 2.0};
  std::vector<double> cheap_bad{1.0, 2.0};
  EXPECT_TRUE(Dominates(cheap_good, costly_bad, pref));
  EXPECT_TRUE(Dominates(cheap_good, cheap_bad, pref));
  EXPECT_EQ(Compare(cheap_bad, costly_bad, pref), DomResult::kLeftDominates);
}

TEST(Dominance, CounterCountsCalls) {
  Preference pref = Preference::AllLowest(2);
  DomCounter counter;
  std::vector<double> a{1.0, 2.0};
  std::vector<double> b{2.0, 3.0};
  Dominates(a, b, pref, &counter);
  Compare(a, b, pref, &counter);
  WeaklyDominates(a, b, pref, &counter);
  EXPECT_EQ(counter.comparisons, 3u);
  counter.Reset();
  EXPECT_EQ(counter.comparisons, 0u);
}

TEST(DominanceMin, MatchesGenericOnCanonicalVectors) {
  Rng rng(404);
  Preference pref = Preference::AllLowest(4);
  for (int trial = 0; trial < 2000; ++trial) {
    double a[4];
    double b[4];
    for (int i = 0; i < 4; ++i) {
      // Small integer grid to generate many ties.
      a[i] = static_cast<double>(rng.NextBelow(4));
      b[i] = static_cast<double>(rng.NextBelow(4));
    }
    std::span<const double> sa(a, 4);
    std::span<const double> sb(b, 4);
    EXPECT_EQ(DominatesMin(a, b, 4), Dominates(sa, sb, pref));
    EXPECT_EQ(CompareMin(a, b, 4), Compare(sa, sb, pref));
  }
}

// Property: dominance is a strict partial order on any sample —
// irreflexive, asymmetric, transitive.
TEST(DominanceProperty, StrictPartialOrder) {
  Rng rng(7);
  constexpr int kN = 60;
  constexpr int kD = 3;
  std::vector<std::array<double, kD>> pts(kN);
  for (auto& p : pts) {
    for (double& v : p) v = static_cast<double>(rng.NextBelow(5));
  }
  auto dom = [&](int i, int j) {
    return DominatesMin(pts[i].data(), pts[j].data(), kD);
  };
  for (int i = 0; i < kN; ++i) {
    EXPECT_FALSE(dom(i, i));
    for (int j = 0; j < kN; ++j) {
      if (dom(i, j)) EXPECT_FALSE(dom(j, i));
      for (int l = 0; l < kN; ++l) {
        if (dom(i, j) && dom(j, l)) {
          EXPECT_TRUE(dom(i, l))
              << "transitivity violated at " << i << "," << j << "," << l;
        }
      }
    }
  }
}

}  // namespace
}  // namespace progxe
