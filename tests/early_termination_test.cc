// Tests for the max_results early-termination mode: the emitted prefix must
// consist of final-skyline members only, and work must actually be saved.
#include <gtest/gtest.h>

#include <algorithm>

#include "harness/experiment.h"
#include "progxe/executor.h"

namespace progxe {
namespace {

Workload MakeWorkload(Distribution dist, size_t n, double sigma) {
  WorkloadParams params;
  params.distribution = dist;
  params.cardinality = n;
  params.dims = 4;
  params.sigma = sigma;
  params.seed = 31;
  return Workload::Make(params).MoveValue();
}

TEST(EarlyTermination, PrefixIsSubsetOfFinalSkyline) {
  Workload w = MakeWorkload(Distribution::kAntiCorrelated, 2000, 0.01);

  auto reference = RunAlgorithm(Algo::kJfSl, w);
  ASSERT_TRUE(reference.ok());
  auto ref_ids = CanonicalIdPairs(reference->results);

  for (size_t limit : {1u, 10u, 100u}) {
    ProgXeOptions options;
    options.max_results = limit;
    std::vector<ResultTuple> results;
    ProgXeExecutor exec(w.query(), options);
    ASSERT_TRUE(
        exec.Run([&](const ResultTuple& r) { results.push_back(r); }).ok());
    ASSERT_EQ(results.size(), limit) << "exact prefix length expected";
    for (const ResultTuple& r : results) {
      EXPECT_TRUE(std::binary_search(ref_ids.begin(), ref_ids.end(),
                                     std::make_pair(r.r_id, r.t_id)))
          << "early-terminated run emitted a non-skyline tuple";
    }
  }
}

TEST(EarlyTermination, SavesJoinWork) {
  Workload w = MakeWorkload(Distribution::kAntiCorrelated, 3000, 0.05);

  ProgXeOptions full_options;
  ProgXeExecutor full(w.query(), full_options);
  size_t full_count = 0;
  ASSERT_TRUE(full.Run([&](const ResultTuple&) { ++full_count; }).ok());

  ProgXeOptions limited_options;
  limited_options.max_results = 20;
  ProgXeExecutor limited(w.query(), limited_options);
  size_t limited_count = 0;
  ASSERT_TRUE(
      limited.Run([&](const ResultTuple&) { ++limited_count; }).ok());

  EXPECT_EQ(limited_count, 20u);
  EXPECT_GT(full_count, 20u);
  EXPECT_LT(limited.stats().join_pairs_generated,
            full.stats().join_pairs_generated);
  EXPECT_LT(limited.stats().regions_processed,
            full.stats().regions_processed);
}

TEST(EarlyTermination, LimitAboveTotalIsHarmless) {
  Workload w = MakeWorkload(Distribution::kIndependent, 500, 0.02);
  auto reference = RunAlgorithm(Algo::kProgXe, w);
  ASSERT_TRUE(reference.ok());

  ProgXeOptions options;
  options.max_results = 1000000;
  std::vector<ResultTuple> results;
  ProgXeExecutor exec(w.query(), options);
  ASSERT_TRUE(
      exec.Run([&](const ResultTuple& r) { results.push_back(r); }).ok());
  EXPECT_EQ(results.size(), reference->results.size());
}

TEST(EarlyTermination, ZeroMeansUnlimited) {
  Workload w = MakeWorkload(Distribution::kCorrelated, 400, 0.05);
  ProgXeOptions options;
  options.max_results = 0;
  std::vector<ResultTuple> results;
  ProgXeExecutor exec(w.query(), options);
  ASSERT_TRUE(
      exec.Run([&](const ResultTuple& r) { results.push_back(r); }).ok());
  EXPECT_GT(results.size(), 0u);
}

}  // namespace
}  // namespace progxe
