// Tests for region elimination predicates and the EL-Graph (P6).
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "elgraph/el_graph.h"

namespace progxe {
namespace {

Region MakeRegion(int32_t id, std::vector<CellCoord> lo,
                  std::vector<CellCoord> hi) {
  Region region;
  region.id = id;
  region.lo_cell = std::move(lo);
  region.hi_cell = std::move(hi);
  region.guaranteed = true;
  return region;
}

TEST(RegionPredicates, CanEliminate) {
  // u's lower cell strictly below v's upper cell in all dims.
  Region u = MakeRegion(0, {0, 0}, {2, 2});
  Region v = MakeRegion(1, {2, 2}, {4, 4});
  EXPECT_TRUE(CanEliminate(u, v));   // cell (0,0) < cell (4,4)
  EXPECT_FALSE(CanEliminate(v, u));  // v.lo (2,2) is not < u.hi (2,2)
}

TEST(RegionPredicates, CanEliminateAsymmetry) {
  Region u = MakeRegion(0, {0, 0}, {1, 1});
  Region v = MakeRegion(1, {3, 3}, {4, 4});
  EXPECT_TRUE(CanEliminate(u, v));
  EXPECT_FALSE(CanEliminate(v, u));  // 3 < 1 fails
}

TEST(RegionPredicates, IncomparableBoxes) {
  // Disjoint in an anti-diagonal arrangement: neither eliminates.
  Region u = MakeRegion(0, {0, 5}, {1, 6});
  Region v = MakeRegion(1, {5, 0}, {6, 1});
  EXPECT_FALSE(CanEliminate(u, v));  // u.lo[1]=5 < v.hi[1]=1 fails
  EXPECT_FALSE(CanEliminate(v, u));
}

TEST(RegionPredicates, CompleteElimination) {
  Region u = MakeRegion(0, {0, 0}, {1, 1});
  Region v = MakeRegion(1, {2, 2}, {4, 4});
  EXPECT_TRUE(CompletelyEliminates(u, v));
  Region w = MakeRegion(2, {1, 1}, {4, 4});  // overlaps v's lower corner
  EXPECT_FALSE(CompletelyEliminates(w, v) && !CanEliminate(w, v));
}

TEST(Region, ActiveLifecycle) {
  Region region = MakeRegion(0, {0}, {1});
  EXPECT_TRUE(region.Active());
  region.pruned = true;
  EXPECT_FALSE(region.Active());
  region.pruned = false;
  region.processed = true;
  EXPECT_FALSE(region.Active());
  region.processed = false;
  region.discarded = true;
  EXPECT_FALSE(region.Active());
}

TEST(Region, BoxVolume) {
  Region region = MakeRegion(0, {1, 2, 3}, {2, 2, 5});
  EXPECT_EQ(region.BoxVolume(), 2 * 1 * 3);
}

std::vector<Region> RandomRegions(Rng* rng, int count, int dims,
                                  CellCoord cells) {
  std::vector<Region> regions;
  for (int i = 0; i < count; ++i) {
    std::vector<CellCoord> lo(static_cast<size_t>(dims));
    std::vector<CellCoord> hi(static_cast<size_t>(dims));
    for (int d = 0; d < dims; ++d) {
      lo[static_cast<size_t>(d)] =
          static_cast<CellCoord>(rng->NextBelow(static_cast<uint64_t>(cells)));
      hi[static_cast<size_t>(d)] = static_cast<CellCoord>(
          lo[static_cast<size_t>(d)] +
          static_cast<CellCoord>(rng->NextBelow(3)));
      hi[static_cast<size_t>(d)] =
          std::min<CellCoord>(hi[static_cast<size_t>(d)], cells - 1);
    }
    regions.push_back(MakeRegion(static_cast<int32_t>(i), lo, hi));
  }
  return regions;
}

TEST(ElGraph, IndegreesMatchBruteForce) {
  Rng rng(21);
  std::vector<Region> regions = RandomRegions(&rng, 40, 3, 6);
  ElGraph graph(regions);
  ASSERT_FALSE(graph.disabled());
  for (const Region& v : regions) {
    int64_t expected = 0;
    for (const Region& u : regions) {
      if (u.id == v.id) continue;
      if (CanEliminate(u, v)) ++expected;
    }
    EXPECT_EQ(graph.indegree(v.id), expected);
  }
}

TEST(ElGraph, RootsHaveZeroIndegree) {
  Rng rng(5);
  std::vector<Region> regions = RandomRegions(&rng, 30, 2, 8);
  ElGraph graph(regions);
  for (int32_t root : graph.InitialRoots(regions)) {
    EXPECT_EQ(graph.indegree(root), 0);
  }
}

TEST(ElGraph, RemovalPromotesNewRoots) {
  Rng rng(9);
  std::vector<Region> regions = RandomRegions(&rng, 50, 2, 10);
  ElGraph graph(regions);
  std::set<int32_t> roots;
  for (int32_t r : graph.InitialRoots(regions)) roots.insert(r);

  // Remove regions one by one in id order; every removal's new roots must
  // previously have had positive indegree and now have zero.
  for (Region& region : regions) {
    if (!region.Active()) continue;
    region.processed = true;
    for (int32_t nr : graph.OnRegionRemoved(region.id, regions)) {
      EXPECT_EQ(graph.indegree(nr), 0);
      EXPECT_TRUE(roots.insert(nr).second) << "root reported twice";
    }
  }
  // After removing everything, every region must have become a root at some
  // point (no region is permanently blocked unless cyclic; with removal of
  // all vertices, cycles also drain).
  size_t rooted = roots.size();
  size_t cyclic_leftover = regions.size() - rooted;
  // All regions were removed, so indegrees are consistent; any leftover
  // means mutual elimination cycles whose members were processed without
  // ever being roots — allowed, but their count must match NonRootCount of
  // an empty graph (0 active regions left).
  EXPECT_EQ(graph.NonRootCount(regions), 0u);
  EXPECT_LE(cyclic_leftover, regions.size());
}

TEST(ElGraph, DoubleRemovalIsIgnored) {
  Rng rng(2);
  std::vector<Region> regions = RandomRegions(&rng, 10, 2, 4);
  ElGraph graph(regions);
  regions[0].processed = true;
  graph.OnRegionRemoved(0, regions);
  EXPECT_TRUE(graph.OnRegionRemoved(0, regions).empty());
}

TEST(ElGraph, DisablesAboveRegionCap) {
  Rng rng(3);
  std::vector<Region> regions = RandomRegions(&rng, 30, 2, 6);
  ElGraph graph(regions, /*max_regions=*/10);
  EXPECT_TRUE(graph.disabled());
  // Disabled graph: everyone is a root.
  EXPECT_EQ(graph.InitialRoots(regions).size(), regions.size());
  EXPECT_TRUE(graph.OnRegionRemoved(0, regions).empty());
}

TEST(ElGraph, InactiveRegionsExcluded) {
  Rng rng(4);
  std::vector<Region> regions = RandomRegions(&rng, 20, 2, 6);
  regions[3].pruned = true;
  regions[7].discarded = true;
  ElGraph graph(regions);
  auto roots = graph.InitialRoots(regions);
  for (int32_t r : roots) {
    EXPECT_NE(r, 3);
    EXPECT_NE(r, 7);
  }
}

}  // namespace
}  // namespace progxe
