// Shared helpers for the executor-equivalence test suites
// (batched_equivalence_test, session_test): a randomized SkyMapJoin config
// generator and the ProgXeStats counter-identity assertion. Keeping these
// in one place means a counter added to ProgXeStats is guarded by every
// equivalence suite at once.
#pragma once

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/rng.h"
#include "data/generator.h"
#include "progxe/executor.h"

namespace progxe {
namespace test {

struct Config {
  Relation r{Schema::Anonymous(0)};
  Relation t{Schema::Anonymous(0)};
  MapSpec map;
  Preference pref;

  SkyMapJoinQuery query() const {
    SkyMapJoinQuery q;
    q.r = &r;
    q.t = &t;
    q.map = map;
    q.pref = pref;
    return q;
  }
};

/// Random query in the style of random_query_test, plus two stress knobs:
/// `tied` forces one output dimension to a constant (every join result ties
/// on it) and `high_sigma` pushes join selectivity into the 0.2-0.5 range.
inline Config MakeConfig(Rng* rng, bool tied, bool high_sigma) {
  Config cfg;
  const int src_dims = 2 + static_cast<int>(rng->NextBelow(3));
  const int out_dims = 2 + static_cast<int>(rng->NextBelow(2));
  const double sigma = high_sigma ? 0.2 + rng->NextDouble() * 0.3
                                  : 0.01 + rng->NextDouble() * 0.19;

  GeneratorOptions gen;
  gen.distribution = static_cast<Distribution>(rng->NextBelow(3));
  gen.cardinality = 120 + rng->NextBelow(200);
  gen.num_attributes = src_dims;
  gen.join_selectivity = sigma;
  gen.seed = rng->Next();
  cfg.r = GenerateRelation(gen).MoveValue();
  gen.seed = rng->Next();
  gen.cardinality = 120 + rng->NextBelow(200);
  cfg.t = GenerateRelation(gen).MoveValue();

  std::vector<MapFunc> funcs;
  std::vector<Direction> dirs;
  for (int j = 0; j < out_dims; ++j) {
    std::vector<MapTerm> terms;
    const int nterms = 1 + static_cast<int>(rng->NextBelow(3));
    for (int i = 0; i < nterms; ++i) {
      // Weight 0 on every term of a tied dimension: the dimension becomes
      // the constant, so all join results collide there.
      const double weight =
          tied && j == 0 ? 0.0 : rng->Uniform(0.2, 3.0);
      terms.push_back(MapTerm{
          rng->Bernoulli(0.5) ? Side::kR : Side::kT,
          static_cast<int>(rng->NextBelow(static_cast<uint64_t>(src_dims))),
          weight});
    }
    funcs.push_back(MapFunc(terms, rng->Uniform(0.0, 10.0),
                            static_cast<Transform>(rng->NextBelow(4))));
    dirs.push_back(rng->Bernoulli(0.3) ? Direction::kHighest
                                       : Direction::kLowest);
  }
  cfg.map = MapSpec(std::move(funcs));
  cfg.pref = Preference(std::move(dirs));
  return cfg;
}

/// The counters that define the pipeline's observable work. Every
/// equivalent execution mode (per-tuple / batched / parallel / session)
/// must reproduce all of them exactly, comparisons included.
inline void ExpectSameStats(const ProgXeStats& a, const ProgXeStats& b,
                            const char* label) {
  EXPECT_EQ(a.join_pairs_generated, b.join_pairs_generated) << label;
  EXPECT_EQ(a.tuples_discarded_marked, b.tuples_discarded_marked) << label;
  EXPECT_EQ(a.tuples_discarded_frontier, b.tuples_discarded_frontier)
      << label;
  EXPECT_EQ(a.tuples_dominated_on_insert, b.tuples_dominated_on_insert)
      << label;
  EXPECT_EQ(a.tuples_evicted, b.tuples_evicted) << label;
  EXPECT_EQ(a.dominance_comparisons, b.dominance_comparisons) << label;
  EXPECT_EQ(a.results_emitted, b.results_emitted) << label;
  EXPECT_EQ(a.results_emitted_early, b.results_emitted_early) << label;
  EXPECT_EQ(a.regions_processed, b.regions_processed) << label;
  EXPECT_EQ(a.regions_discarded_runtime, b.regions_discarded_runtime)
      << label;
  EXPECT_EQ(a.regions_discarded_seed, b.regions_discarded_seed) << label;
  EXPECT_EQ(a.cells_flushed, b.cells_flushed) << label;
}

}  // namespace test
}  // namespace progxe
