// ProgXe executor unit tests: API contracts, edge cases and option handling.
#include <gtest/gtest.h>

#include "data/generator.h"
#include "progxe/executor.h"

namespace progxe {
namespace {

Relation MakeRows(const std::vector<std::pair<std::vector<double>, JoinKey>>&
                      rows,
                  int width) {
  Relation rel(Schema::Anonymous(width));
  for (const auto& [attrs, key] : rows) {
    rel.Append(attrs, key);
  }
  return rel;
}

SkyMapJoinQuery QueryOver(const Relation& r, const Relation& t, int dims) {
  SkyMapJoinQuery q;
  q.r = &r;
  q.t = &t;
  q.map = MapSpec::PairwiseSum(dims);
  q.pref = Preference::AllLowest(dims);
  return q;
}

TEST(Executor, RejectsNullSources) {
  SkyMapJoinQuery q;
  q.map = MapSpec::PairwiseSum(2);
  q.pref = Preference::AllLowest(2);
  ProgXeExecutor exec(q, ProgXeOptions());
  EXPECT_TRUE(exec.Run([](const ResultTuple&) {}).IsInvalidArgument());
}

TEST(Executor, RejectsDimensionMismatch) {
  Relation r = MakeRows({{{1, 2}, 0}}, 2);
  Relation t = MakeRows({{{1, 2}, 0}}, 2);
  SkyMapJoinQuery q = QueryOver(r, t, 2);
  q.pref = Preference::AllLowest(3);
  ProgXeExecutor exec(q, ProgXeOptions());
  EXPECT_TRUE(exec.Run([](const ResultTuple&) {}).IsInvalidArgument());
}

TEST(Executor, RejectsOutOfRangeMapIndices) {
  Relation r = MakeRows({{{1, 2}, 0}}, 2);
  Relation t = MakeRows({{{1, 2}, 0}}, 2);
  SkyMapJoinQuery q = QueryOver(r, t, 2);
  q.map = MapSpec({MapFunc::Sum(0, 5)});
  q.pref = Preference::AllLowest(1);
  ProgXeExecutor exec(q, ProgXeOptions());
  EXPECT_TRUE(exec.Run([](const ResultTuple&) {}).IsInvalidArgument());
}

TEST(Executor, RunIsReusable) {
  // The same executor object runs the same query repeatedly, and every run
  // reproduces the same result sequence and the same counters from scratch.
  GeneratorOptions gen;
  gen.distribution = Distribution::kAntiCorrelated;
  gen.cardinality = 400;
  gen.num_attributes = 3;
  gen.join_selectivity = 0.05;
  gen.seed = 7;
  Relation r = GenerateRelation(gen).MoveValue();
  gen.seed = 8;
  Relation t = GenerateRelation(gen).MoveValue();
  ProgXeExecutor exec(QueryOver(r, t, 3), ProgXeOptions());

  std::vector<std::pair<RowId, RowId>> first_ids;
  ASSERT_TRUE(exec.Run([&](const ResultTuple& res) {
                    first_ids.emplace_back(res.r_id, res.t_id);
                  })
                  .ok());
  const ProgXeStats first = exec.stats();
  ASSERT_GT(first.results_emitted, 0u);

  std::vector<std::pair<RowId, RowId>> second_ids;
  ASSERT_TRUE(exec.Run([&](const ResultTuple& res) {
                    second_ids.emplace_back(res.r_id, res.t_id);
                  })
                  .ok());
  const ProgXeStats& second = exec.stats();

  EXPECT_EQ(first_ids, second_ids);
  EXPECT_EQ(first.results_emitted, second.results_emitted);
  EXPECT_EQ(first.join_pairs_generated, second.join_pairs_generated);
  EXPECT_EQ(first.dominance_comparisons, second.dominance_comparisons);
  EXPECT_EQ(first.regions_processed, second.regions_processed);
  EXPECT_EQ(first.regions_discarded_runtime, second.regions_discarded_runtime);
  EXPECT_EQ(first.cells_flushed, second.cells_flushed);
  EXPECT_EQ(first.tuples_evicted, second.tuples_evicted);
}

TEST(Executor, EmptySourcesYieldNoResults) {
  Relation r(Schema::Anonymous(2));
  Relation t(Schema::Anonymous(2));
  size_t count = 0;
  ProgXeExecutor exec(QueryOver(r, t, 2), ProgXeOptions());
  EXPECT_TRUE(exec.Run([&](const ResultTuple&) { ++count; }).ok());
  EXPECT_EQ(count, 0u);
}

TEST(Executor, DisjointJoinDomainsYieldNoResults) {
  Relation r = MakeRows({{{1, 1}, 1}, {{2, 2}, 2}}, 2);
  Relation t = MakeRows({{{1, 1}, 7}, {{2, 2}, 8}}, 2);
  size_t count = 0;
  ProgXeExecutor exec(QueryOver(r, t, 2), ProgXeOptions());
  EXPECT_TRUE(exec.Run([&](const ResultTuple&) { ++count; }).ok());
  EXPECT_EQ(count, 0u);
}

TEST(Executor, SingleRowSources) {
  Relation r = MakeRows({{{3, 4}, 5}}, 2);
  Relation t = MakeRows({{{10, 20}, 5}}, 2);
  std::vector<ResultTuple> results;
  ProgXeExecutor exec(QueryOver(r, t, 2), ProgXeOptions());
  ASSERT_TRUE(
      exec.Run([&](const ResultTuple& x) { results.push_back(x); }).ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].r_id, 0u);
  EXPECT_EQ(results[0].t_id, 0u);
  EXPECT_EQ(results[0].values[0], 13.0);
  EXPECT_EQ(results[0].values[1], 24.0);
}

TEST(Executor, OneDimensionalOutput) {
  // k = 1: the skyline is the set of all minimum-value results.
  Relation r = MakeRows({{{1}, 0}, {{2}, 0}, {{1}, 0}}, 1);
  Relation t = MakeRows({{{5}, 0}, {{6}, 0}}, 1);
  std::vector<ResultTuple> results;
  ProgXeExecutor exec(QueryOver(r, t, 1), ProgXeOptions());
  ASSERT_TRUE(
      exec.Run([&](const ResultTuple& x) { results.push_back(x); }).ok());
  // Minimum sum is 1+5 = 6, achieved by rows {0,2} x {0}.
  ASSERT_EQ(results.size(), 2u);
  for (const auto& res : results) {
    EXPECT_EQ(res.values[0], 6.0);
  }
}

TEST(Executor, AllRowsIdenticalAllSurvive) {
  Relation r = MakeRows({{{2, 2}, 1}, {{2, 2}, 1}, {{2, 2}, 1}}, 2);
  Relation t = MakeRows({{{3, 3}, 1}, {{3, 3}, 1}}, 2);
  size_t count = 0;
  ProgXeExecutor exec(QueryOver(r, t, 2), ProgXeOptions());
  ASSERT_TRUE(exec.Run([&](const ResultTuple&) { ++count; }).ok());
  EXPECT_EQ(count, 6u);  // every pair is Pareto-equivalent
}

TEST(Executor, HighestPreferenceEmitsTrueMaxima) {
  Relation r = MakeRows({{{1, 1}, 0}, {{9, 9}, 0}}, 2);
  Relation t = MakeRows({{{1, 1}, 0}, {{9, 9}, 0}}, 2);
  SkyMapJoinQuery q = QueryOver(r, t, 2);
  q.pref = Preference::AllHighest(2);
  std::vector<ResultTuple> results;
  ProgXeExecutor exec(q, ProgXeOptions());
  ASSERT_TRUE(
      exec.Run([&](const ResultTuple& x) { results.push_back(x); }).ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].r_id, 1u);
  EXPECT_EQ(results[0].t_id, 1u);
  EXPECT_EQ(results[0].values[0], 18.0);
}

TEST(Executor, StatsAreCoherent) {
  GeneratorOptions gen;
  gen.cardinality = 500;
  gen.num_attributes = 3;
  gen.join_selectivity = 0.02;
  gen.seed = 1;
  Relation r = GenerateRelation(gen).MoveValue();
  gen.seed = 2;
  Relation t = GenerateRelation(gen).MoveValue();
  ProgXeExecutor exec(QueryOver(r, t, 3), ProgXeOptions());
  size_t emitted = 0;
  ASSERT_TRUE(exec.Run([&](const ResultTuple&) { ++emitted; }).ok());
  const ProgXeStats& s = exec.stats();

  EXPECT_EQ(s.r_rows, 500u);
  EXPECT_EQ(s.results_emitted, emitted);
  EXPECT_GT(s.join_pairs_generated, 0u);
  // Every generated pair is accounted for: discarded, dominated, or kept.
  EXPECT_GE(s.join_pairs_generated,
            s.tuples_discarded_marked + s.tuples_discarded_frontier +
                s.tuples_dominated_on_insert);
  EXPECT_EQ(s.regions_created,
            s.regions_processed + s.regions_pruned_lookahead +
                s.regions_discarded_runtime);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(Executor, SigmaHintSkipsMeasurement) {
  GeneratorOptions gen;
  gen.cardinality = 300;
  gen.num_attributes = 2;
  gen.seed = 5;
  Relation r = GenerateRelation(gen).MoveValue();
  gen.seed = 6;
  Relation t = GenerateRelation(gen).MoveValue();
  ProgXeOptions opts;
  opts.sigma_hint = 0.123;
  ProgXeExecutor exec(QueryOver(r, t, 2), opts);
  ASSERT_TRUE(exec.Run([](const ResultTuple&) {}).ok());
  EXPECT_DOUBLE_EQ(exec.stats().sigma_used, 0.123);
}

TEST(Executor, PushThroughShrinksSources) {
  GeneratorOptions gen;
  gen.distribution = Distribution::kCorrelated;
  gen.cardinality = 2000;
  gen.num_attributes = 3;
  gen.join_selectivity = 0.01;
  gen.seed = 1;
  Relation r = GenerateRelation(gen).MoveValue();
  gen.seed = 2;
  Relation t = GenerateRelation(gen).MoveValue();
  ProgXeOptions opts;
  opts.push_through = true;
  ProgXeExecutor exec(QueryOver(r, t, 3), opts);
  ASSERT_TRUE(exec.Run([](const ResultTuple&) {}).ok());
  EXPECT_LT(exec.stats().r_rows_after_push_through, 2000u);
  EXPECT_LT(exec.stats().t_rows_after_push_through, 2000u);
}

TEST(Executor, BloomSignatureModeStillCorrect) {
  GeneratorOptions gen;
  gen.cardinality = 600;
  gen.num_attributes = 3;
  gen.join_selectivity = 0.01;
  gen.seed = 3;
  Relation r = GenerateRelation(gen).MoveValue();
  gen.seed = 4;
  Relation t = GenerateRelation(gen).MoveValue();

  auto run_with = [&](SignatureMode mode) {
    ProgXeOptions opts;
    opts.signature_mode = mode;
    std::vector<std::pair<RowId, RowId>> ids;
    ProgXeExecutor exec(QueryOver(r, t, 3), opts);
    EXPECT_TRUE(exec
                    .Run([&](const ResultTuple& x) {
                      ids.emplace_back(x.r_id, x.t_id);
                    })
                    .ok());
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  EXPECT_EQ(run_with(SignatureMode::kBloom),
            run_with(SignatureMode::kExact));
}

TEST(Executor, SequentialOrderingModeWorks) {
  GeneratorOptions gen;
  gen.cardinality = 400;
  gen.num_attributes = 2;
  gen.join_selectivity = 0.05;
  gen.seed = 9;
  Relation r = GenerateRelation(gen).MoveValue();
  gen.seed = 10;
  Relation t = GenerateRelation(gen).MoveValue();
  ProgXeOptions opts;
  opts.ordering = OrderingMode::kSequential;
  size_t count = 0;
  ProgXeExecutor exec(QueryOver(r, t, 2), opts);
  ASSERT_TRUE(exec.Run([&](const ResultTuple&) { ++count; }).ok());
  EXPECT_GT(count, 0u);
}

TEST(Executor, ExplicitGridSizesRespected) {
  GeneratorOptions gen;
  gen.cardinality = 200;
  gen.num_attributes = 2;
  gen.seed = 11;
  Relation r = GenerateRelation(gen).MoveValue();
  gen.seed = 12;
  Relation t = GenerateRelation(gen).MoveValue();
  ProgXeOptions opts;
  opts.input_cells_per_dim = 2;
  opts.output_cells_per_dim = 5;
  ProgXeExecutor exec(QueryOver(r, t, 2), opts);
  ASSERT_TRUE(exec.Run([](const ResultTuple&) {}).ok());
  // 2 cells/dim over 2 dims = at most 4 partitions per source => <= 16 pairs.
  EXPECT_LE(exec.stats().partition_pairs_total, 16u);
}

TEST(RunProgXeHelper, CollectsResultsAndStats) {
  GeneratorOptions gen;
  gen.cardinality = 300;
  gen.num_attributes = 2;
  gen.seed = 21;
  Relation r = GenerateRelation(gen).MoveValue();
  gen.seed = 22;
  Relation t = GenerateRelation(gen).MoveValue();
  ProgXeStats stats;
  auto results = RunProgXe(QueryOver(r, t, 2), ProgXeOptions(), &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), stats.results_emitted);
}

}  // namespace
}  // namespace progxe
