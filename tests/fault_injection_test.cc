// FaultInjector unit tests plus the error channel it feeds: spec parsing,
// deterministic per-seed fire schedules, thread-safe fire budgets, and the
// terminal-error contract of ProgXeSession / ProgXeExecutor /
// QueryScheduler when a fault fires.
#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "equivalence_common.h"
#include "progxe/session.h"
#include "service/scheduler.h"

namespace progxe {
namespace {

using test::Config;
using test::MakeConfig;

std::shared_ptr<FaultInjector> MustParse(std::string_view spec,
                                         uint64_t seed = 0) {
  auto injector = FaultInjector::Parse(spec, seed);
  EXPECT_TRUE(injector.ok()) << injector.status().ToString();
  return injector.MoveValue();
}

TEST(FaultInjectorParse, DefaultsAndFields) {
  auto injector = MustParse("shard.open");
  ASSERT_EQ(injector->rules().size(), 1u);
  const FaultRule& rule = injector->rules()[0];
  EXPECT_EQ(rule.site, "shard.open");
  EXPECT_EQ(rule.probability, 1.0);
  EXPECT_EQ(rule.max_fires, -1);
  EXPECT_EQ(rule.skip, 0);
  EXPECT_EQ(rule.instance, -1);
  EXPECT_EQ(rule.code, StatusCode::kUnavailable);

  injector = MustParse(
      "shard.next_batch:p=0.25,max=3,skip=7,shard=2,code=io_error;"
      "merge.release:code=resource_exhausted", 42);
  ASSERT_EQ(injector->rules().size(), 2u);
  const FaultRule& full = injector->rules()[0];
  EXPECT_EQ(full.site, "shard.next_batch");
  EXPECT_EQ(full.probability, 0.25);
  EXPECT_EQ(full.max_fires, 3);
  EXPECT_EQ(full.skip, 7);
  EXPECT_EQ(full.instance, 2);
  EXPECT_EQ(full.code, StatusCode::kIOError);
  EXPECT_EQ(injector->rules()[1].code, StatusCode::kResourceExhausted);
  EXPECT_EQ(injector->seed(), 42u);
  EXPECT_FALSE(injector->ToString().empty());
}

TEST(FaultInjectorParse, RejectsMalformedSpecs) {
  for (const char* spec :
       {"", ";", "shard.open:p=1.5", "shard.open:p=-0.1", "shard.open:p=x",
        "shard.open:max=", "shard.open:skip=-1", "shard.open:bogus=1",
        "shard.open:code=nope", "shard.open:code=ok", "shard.open:p",
        ":p=1"}) {
    auto injector = FaultInjector::Parse(spec);
    EXPECT_FALSE(injector.ok()) << "accepted: \"" << spec << "\"";
    EXPECT_TRUE(injector.status().IsInvalidArgument()) << spec;
  }
}

TEST(FaultInjector, CertainAndImpossibleRules) {
  auto always = MustParse("s:p=1");
  auto never = MustParse("s:p=0");
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(always->Check("s").ok());
    EXPECT_TRUE(never->Check("s").ok());
    EXPECT_TRUE(always->Check("other.site").ok()) << "site must be keyed";
  }
  EXPECT_EQ(always->fires(), 100);
  EXPECT_EQ(never->fires(), 0);
}

TEST(FaultInjector, FireScheduleIsDeterministicPerSeed) {
  auto pattern = [](uint64_t seed) {
    auto injector = MustParse("s:p=0.5", seed);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!injector->Check("s").ok());
    return fired;
  };
  const std::vector<bool> a = pattern(7);
  EXPECT_EQ(a, pattern(7)) << "same seed must replay the same schedule";
  // p=0.5 over 64 calls: identical schedules for different seeds would be a
  // 2^-64 coincidence — treat it as mixing failure.
  EXPECT_NE(a, pattern(8));
  size_t fires = 0;
  for (bool b : a) fires += b ? 1u : 0u;
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);
}

TEST(FaultInjector, SkipPassesLeadingCalls) {
  auto injector = MustParse("s:p=1,skip=3");
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(injector->Check("s").ok());
  EXPECT_FALSE(injector->Check("s").ok());
}

TEST(FaultInjector, InstanceScoping) {
  auto injector = MustParse("s:p=1,shard=2");
  EXPECT_TRUE(injector->Check("s", 0).ok());
  EXPECT_TRUE(injector->Check("s", 1).ok());
  EXPECT_FALSE(injector->Check("s", 2).ok());
}

TEST(FaultInjector, FiredStatusCarriesRuleCodeAndContext) {
  auto injector = MustParse("merge.release:p=1,code=io_error");
  Status st = injector->Check("merge.release", 5);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError());
  EXPECT_NE(st.message().find("merge.release"), std::string::npos);
}

// max= is a fire budget over the whole injector, exact even under
// concurrent Check calls (the reservation is an atomic fetch_add).
TEST(FaultInjector, MaxFiresIsExactAcrossThreads) {
  auto injector = MustParse("s:p=1,max=5");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&injector] {
      for (int i = 0; i < 1000; ++i) injector->Check("s").ok();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(injector->fires(), 5);
  EXPECT_TRUE(injector->Check("s").ok()) << "budget exhausted, must pass";
}

TEST(FaultInjector, NullHookIsOk) {
  EXPECT_TRUE(MaybeInjectFault(nullptr, fault_sites::kShardOpen, 3).ok());
}

// A session hit by session.next_batch dies cleanly: NextBatch returns 0,
// the error is readable through last_status(), the session reports
// Finished (it will never produce more) and stays stable on further calls.
TEST(SessionFaults, NextBatchFaultIsTerminal) {
  Rng rng(0xfa171);
  const Config cfg = MakeConfig(&rng, false, true);
  ProgXeOptions options;
  options.faults = MustParse("session.next_batch:p=1,skip=1");
  auto session = ProgXeSession::Open(cfg.query(), options);
  ASSERT_TRUE(session.ok());

  // Call 1 passes (skip=1) and may deliver results; call 2 fires.
  std::vector<ResultTuple> batch;
  (*session)->NextBatch(0, 64, &batch);
  EXPECT_TRUE((*session)->last_status().ok());
  while (!(*session)->Finished()) {
    if ((*session)->NextBatch(0, 64, &batch) == 0 &&
        !(*session)->last_status().ok()) {
      break;
    }
  }
  const Status death = (*session)->last_status();
  ASSERT_FALSE(death.ok());
  EXPECT_TRUE(death.IsUnavailable());
  EXPECT_TRUE((*session)->Finished());
  // Dead is dead: no further delivery, error sticky, stats readable.
  EXPECT_EQ((*session)->NextBatch(0, 0, &batch), 0u);
  EXPECT_EQ((*session)->last_status().code(), death.code());
  EXPECT_GT((*session)->stats().r_rows, 0u);
}

// The executor surfaces the stream's terminal error instead of returning OK
// on a drained-but-dead stream.
TEST(SessionFaults, ExecutorPropagatesStreamError) {
  Rng rng(0xfa172);
  const Config cfg = MakeConfig(&rng, false, false);
  ProgXeOptions options;
  options.faults = MustParse("session.next_batch:p=1");
  auto result = RunProgXe(cfg.query(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable());
}

/// Sink asserting the exactly-one-OnDone contract.
class FaultSink : public QuerySink {
 public:
  void OnBatch(const std::vector<ResultTuple>& batch) override {
    results_ += batch.size();
  }
  void OnDone(QueryState state, const Status& status,
              const ProgXeStats&) override {
    EXPECT_FALSE(done_) << "OnDone fired twice";
    done_ = true;
    state_ = state;
    status_ = status;
  }
  bool done() const { return done_; }
  QueryState state() const { return state_; }
  const Status& status() const { return status_; }
  size_t results() const { return results_; }

 private:
  bool done_ = false;
  QueryState state_ = QueryState::kQueued;
  Status status_;
  size_t results_ = 0;
};

// A scheduler.slice fault fails the query with the injected Status: state
// kFailed, the real error on the handle, exactly one OnDone, and the
// worker moves on (a later healthy query still completes).
TEST(SchedulerFaults, SliceFaultFailsQueryWithRealStatus) {
  Rng rng(0xfa173);
  const Config cfg = MakeConfig(&rng, false, false);

  ServiceOptions sopts;
  sopts.num_workers = 1;
  QueryScheduler scheduler(sopts);

  ProgXeOptions faulty;
  faulty.faults = MustParse("scheduler.slice:p=1,code=resource_exhausted");
  FaultSink doomed;
  auto h1 = scheduler.Submit(cfg.query(), faulty, &doomed);
  ASSERT_TRUE(h1.ok());
  FaultSink healthy;
  auto h2 = scheduler.Submit(cfg.query(), ProgXeOptions(), &healthy);
  ASSERT_TRUE(h2.ok());
  scheduler.Drain();

  EXPECT_TRUE(doomed.done());
  EXPECT_EQ(doomed.state(), QueryState::kFailed);
  EXPECT_TRUE(doomed.status().IsResourceExhausted());
  EXPECT_EQ(h1->state(), QueryState::kFailed);
  EXPECT_TRUE(h1->status().IsResourceExhausted());
  EXPECT_EQ(doomed.results(), 0u);

  EXPECT_TRUE(healthy.done());
  EXPECT_EQ(healthy.state(), QueryState::kFinished);
  EXPECT_GT(healthy.results(), 0u);

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.finished, 1u);
}

}  // namespace
}  // namespace progxe
