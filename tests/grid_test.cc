// Unit tests for Bloom filters, join signatures, grid geometry and input
// partitioning (property P7 of DESIGN.md).
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/rng.h"
#include "data/generator.h"
#include "grid/bloom_filter.h"
#include "grid/grid_geometry.h"
#include "grid/input_grid.h"
#include "grid/signature.h"

namespace progxe {
namespace {

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bloom(1024, 4);
  for (uint64_t k = 0; k < 100; ++k) bloom.Add(k * 7);
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_TRUE(bloom.MightContain(k * 7));
  }
}

TEST(BloomFilter, FalsePositiveRateReasonable) {
  BloomFilter bloom(4096, 4);
  for (uint64_t k = 0; k < 200; ++k) bloom.Add(k);
  int fp = 0;
  for (uint64_t k = 1000000; k < 1010000; ++k) {
    if (bloom.MightContain(k)) ++fp;
  }
  EXPECT_LT(fp, 200);  // << 2% on a 4096/4 filter with 200 keys
  EXPECT_GT(bloom.EstimatedFpRate(200), 0.0);
  EXPECT_LT(bloom.EstimatedFpRate(200), 0.05);
}

TEST(BloomFilter, IntersectionIsSoundSkipTest) {
  Rng rng(5);
  // Property: whenever two filters share an inserted key, MightIntersect
  // must be true (AND-zero implies provable disjointness, never the
  // reverse).
  for (int trial = 0; trial < 100; ++trial) {
    BloomFilter a(512, 3);
    BloomFilter b(512, 3);
    std::set<uint64_t> ka, kb;
    for (int i = 0; i < 30; ++i) {
      uint64_t k1 = rng.NextBelow(1000);
      uint64_t k2 = rng.NextBelow(1000);
      a.Add(k1);
      ka.insert(k1);
      b.Add(k2);
      kb.insert(k2);
    }
    bool share = false;
    for (uint64_t k : ka) share |= (kb.count(k) != 0);
    if (share) EXPECT_TRUE(a.MightIntersect(b));
  }
}

TEST(Signature, ExactIntersection) {
  Relation rel(Schema::Anonymous(1));
  double v = 0;
  rel.Append({&v, 1}, 1);
  rel.Append({&v, 1}, 5);
  rel.Append({&v, 1}, 9);
  rel.Append({&v, 1}, 5);  // duplicate

  Signature a = Signature::Build(rel, {0, 1, 3}, SignatureMode::kExact);
  Signature b = Signature::Build(rel, {2}, SignatureMode::kExact);
  Signature c = Signature::Build(rel, {1, 2}, SignatureMode::kExact);
  EXPECT_EQ(a.distinct_keys(), 2u);  // {1, 5}
  EXPECT_TRUE(a.exact());
  EXPECT_FALSE(a.MightIntersect(b));   // {1,5} vs {9}
  EXPECT_TRUE(a.MightIntersect(c));    // share 5
  EXPECT_TRUE(b.MightIntersect(c));    // share 9
}

TEST(Signature, BloomModeNeverFalseNegative) {
  Relation rel(Schema::Anonymous(1));
  double v = 0;
  for (JoinKey k = 0; k < 50; ++k) rel.Append({&v, 1}, k);
  std::vector<RowId> left, right;
  for (RowId i = 0; i < 25; ++i) left.push_back(i);
  for (RowId i = 24; i < 50; ++i) right.push_back(i);  // overlap at key 24
  Signature a = Signature::Build(rel, left, SignatureMode::kBloom, 1024, 4);
  Signature b = Signature::Build(rel, right, SignatureMode::kBloom, 1024, 4);
  EXPECT_FALSE(a.exact());
  EXPECT_TRUE(a.MightIntersect(b));
}

TEST(GridGeometry, CoordsAndIndexRoundTrip) {
  GridGeometry grid({Interval(0, 10), Interval(0, 20)}, 5);
  EXPECT_EQ(grid.dimensions(), 2);
  EXPECT_EQ(grid.total_cells(), 25);
  std::vector<CellCoord> coords(2);
  for (CellIndex c = 0; c < grid.total_cells(); ++c) {
    grid.CoordsOfIndex(c, coords.data());
    EXPECT_EQ(grid.IndexOf(coords.data()), c);
  }
}

TEST(GridGeometry, HalfOpenCellMembership) {
  GridGeometry grid({Interval(0, 10)}, 5);  // cells of width 2
  EXPECT_EQ(grid.CoordOf(0, 0.0), 0);
  EXPECT_EQ(grid.CoordOf(0, 1.999), 0);
  EXPECT_EQ(grid.CoordOf(0, 2.0), 1);   // lower bound belongs to the cell
  EXPECT_EQ(grid.CoordOf(0, 10.0), 4);  // top value lands in the last cell
  EXPECT_EQ(grid.CoordOf(0, -5.0), 0);  // clamped
  EXPECT_EQ(grid.CoordOf(0, 15.0), 4);  // clamped
}

TEST(GridGeometry, CellBounds) {
  GridGeometry grid({Interval(0, 10)}, 5);
  EXPECT_DOUBLE_EQ(grid.CellLower(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(grid.CellUpper(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(grid.CellLower(0, 4), 8.0);
  EXPECT_DOUBLE_EQ(grid.CellUpper(0, 4), 10.0);
}

TEST(GridGeometry, CoordRangeOfInterval) {
  GridGeometry grid({Interval(0, 10)}, 5);
  CellCoord lo, hi;
  grid.CoordRange(0, Interval(1.0, 7.0), &lo, &hi);
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 3);
  grid.CoordRange(0, Interval(4.0, 4.0), &lo, &hi);
  EXPECT_EQ(lo, hi);
}

TEST(GridGeometry, ZeroWidthDomainIsWidened) {
  GridGeometry grid({Interval(5.0, 5.0)}, 4);
  EXPECT_EQ(grid.CoordOf(0, 5.0), 0);
  EXPECT_EQ(grid.total_cells(), 4);
}

TEST(GridGeometry, BoxIterationCoversExactlyTheBox) {
  GridGeometry grid({Interval(0, 1), Interval(0, 1), Interval(0, 1)}, 4);
  const CellCoord lo[] = {1, 0, 2};
  const CellCoord hi[] = {2, 1, 3};
  std::set<CellIndex> seen;
  grid.ForEachCellInBox(lo, hi, [&](CellIndex c) {
    EXPECT_TRUE(seen.insert(c).second) << "duplicate cell visit";
  });
  EXPECT_EQ(static_cast<int64_t>(seen.size()), grid.BoxVolume(lo, hi));
  EXPECT_EQ(grid.BoxVolume(lo, hi), 2 * 2 * 2);
  std::vector<CellCoord> coords(3);
  for (CellIndex c : seen) {
    grid.CoordsOfIndex(c, coords.data());
    for (int d = 0; d < 3; ++d) {
      EXPECT_GE(coords[static_cast<size_t>(d)], lo[d]);
      EXPECT_LE(coords[static_cast<size_t>(d)], hi[d]);
    }
  }
}

TEST(GridGeometry, PointCoordWithinItsCellBounds) {
  Rng rng(6);
  GridGeometry grid({Interval(-3, 7), Interval(100, 200)}, 9);
  for (int trial = 0; trial < 1000; ++trial) {
    double pt[2] = {rng.Uniform(-3, 7), rng.Uniform(100, 200)};
    CellCoord coords[2];
    grid.CoordsOf(pt, coords);
    for (int d = 0; d < 2; ++d) {
      EXPECT_GE(pt[d], grid.CellLower(d, coords[d]) - 1e-9);
      EXPECT_LE(pt[d], grid.CellUpper(d, coords[d]) + 1e-9);
    }
  }
}

TEST(InputGrid, PartitionsCoverAllRowsOnce) {
  GeneratorOptions gen;
  gen.cardinality = 2000;
  gen.num_attributes = 3;
  Relation rel = GenerateRelation(gen).MoveValue();
  CanonicalMapper mapper(MapSpec::PairwiseSum(3), Preference::AllLowest(3));
  ContributionTable contribs(rel, mapper, Side::kR);
  InputGridOptions opts;
  opts.cells_per_dim = 3;
  InputGrid grid(rel, contribs, opts);

  std::unordered_set<RowId> seen;
  for (const InputPartition& part : grid.partitions()) {
    EXPECT_FALSE(part.rows.empty()) << "empty partitions must be dropped";
    for (RowId id : part.rows) {
      EXPECT_TRUE(seen.insert(id).second) << "row in two partitions";
    }
  }
  EXPECT_EQ(seen.size(), rel.size());
}

TEST(InputGrid, BoundsAreTightOverContributions) {
  GeneratorOptions gen;
  gen.cardinality = 500;
  gen.num_attributes = 2;
  Relation rel = GenerateRelation(gen).MoveValue();
  CanonicalMapper mapper(MapSpec::PairwiseSum(2), Preference::AllLowest(2));
  ContributionTable contribs(rel, mapper, Side::kT);
  InputGridOptions opts;
  opts.cells_per_dim = 4;
  InputGrid grid(rel, contribs, opts);

  for (const InputPartition& part : grid.partitions()) {
    for (int d = 0; d < 2; ++d) {
      double lo = 1e300;
      double hi = -1e300;
      for (RowId id : part.rows) {
        lo = std::min(lo, contribs.vector(id)[d]);
        hi = std::max(hi, contribs.vector(id)[d]);
      }
      EXPECT_DOUBLE_EQ(part.bounds[static_cast<size_t>(d)].lo, lo);
      EXPECT_DOUBLE_EQ(part.bounds[static_cast<size_t>(d)].hi, hi);
    }
  }
}

TEST(InputGrid, SignaturesReflectPartitionKeys) {
  Relation rel(Schema::Anonymous(1));
  // Two clusters in value space with disjoint key sets.
  for (int i = 0; i < 10; ++i) {
    double v = 0.0;
    rel.Append({&v, 1}, 1);
  }
  for (int i = 0; i < 10; ++i) {
    double v = 100.0;
    rel.Append({&v, 1}, 2);
  }
  CanonicalMapper mapper(
      MapSpec({MapFunc::Passthrough(Side::kR, 0)}), Preference::AllLowest(1));
  ContributionTable contribs(rel, mapper, Side::kR);
  InputGridOptions opts;
  opts.cells_per_dim = 2;
  InputGrid grid(rel, contribs, opts);
  ASSERT_EQ(grid.num_partitions(), 2u);
  EXPECT_FALSE(grid.partitions()[0].signature.MightIntersect(
      grid.partitions()[1].signature));
}

}  // namespace
}  // namespace progxe
