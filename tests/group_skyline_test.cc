// Tests for source-level / group-level skylines and the push-through
// pruning's result-preservation property.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/generator.h"
#include "join/hash_join.h"
#include "skyline/group_skyline.h"
#include "skyline/skyline.h"

namespace progxe {
namespace {

Relation TinyRelation() {
  // attrs (2-d), key:
  //  0: (1, 1) k=1   group-1 skyline, source skyline
  //  1: (2, 2) k=1   dominated within group 1
  //  2: (1, 5) k=2   group-2 skyline (not dominated in group 2)
  //  3: (0, 9) k=2   group-2 skyline, source skyline (best a0)
  //  4: (9, 0) k=3   group-3 skyline, source skyline (best a1)
  Relation rel(Schema::Anonymous(2));
  const double rows[][2] = {{1, 1}, {2, 2}, {1, 5}, {0, 9}, {9, 0}};
  const JoinKey keys[] = {1, 1, 2, 2, 3};
  for (int i = 0; i < 5; ++i) rel.Append(rows[i], keys[i]);
  return rel;
}

TEST(SourceLists, HandCase) {
  Relation rel = TinyRelation();
  CanonicalMapper mapper(MapSpec::PairwiseSum(2), Preference::AllLowest(2));
  ContributionTable contribs(rel, mapper, Side::kR);
  SourceLists lists = ComputeSourceLists(rel, contribs);

  EXPECT_EQ(lists.source_skyline, (std::vector<RowId>{0, 3, 4}));
  EXPECT_EQ(lists.group_skyline, (std::vector<RowId>{0, 2, 3, 4}));
  EXPECT_TRUE(lists.in_source_skyline[0]);
  EXPECT_FALSE(lists.in_source_skyline[2]);
  EXPECT_TRUE(lists.in_group_skyline[2]);
  EXPECT_FALSE(lists.in_group_skyline[1]);
}

TEST(SourceLists, SourceSkylineIsSubsetOfGroupSkyline) {
  GeneratorOptions gen;
  gen.cardinality = 1000;
  gen.num_attributes = 3;
  gen.join_selectivity = 0.05;
  Relation rel = GenerateRelation(gen).MoveValue();
  CanonicalMapper mapper(MapSpec::PairwiseSum(3), Preference::AllLowest(3));
  ContributionTable contribs(rel, mapper, Side::kR);
  SourceLists lists = ComputeSourceLists(rel, contribs);
  for (RowId id : lists.source_skyline) {
    EXPECT_TRUE(lists.in_group_skyline[id])
        << "LS(S) member " << id << " missing from LS(N)";
  }
  EXPECT_GE(lists.group_skyline.size(), lists.source_skyline.size());
}

// The central safety property of partial push-through: pruning both sources
// to LS(N) does not change the skyline of the mapped join.
TEST(PushThroughProperty, PreservesSkyMapJoinResult) {
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kCorrelated,
        Distribution::kAntiCorrelated}) {
    SCOPED_TRACE(DistributionName(dist));
    GeneratorOptions gen;
    gen.distribution = dist;
    gen.cardinality = 400;
    gen.num_attributes = 3;
    gen.join_selectivity = 0.05;
    gen.seed = 7;
    Relation r = GenerateRelation(gen).MoveValue();
    gen.seed = 8;
    Relation t = GenerateRelation(gen).MoveValue();

    MapSpec map = MapSpec::PairwiseSum(3);
    Preference pref = Preference::AllLowest(3);
    CanonicalMapper mapper(map, pref);
    ContributionTable rc(r, mapper, Side::kR);
    ContributionTable tc(t, mapper, Side::kT);

    // Full-join skyline (reference).
    auto skyline_of = [&](const Relation& rr, const Relation& tt,
                          const ContributionTable& rcc,
                          const ContributionTable& tcc) {
      std::vector<double> vals;
      std::vector<std::pair<RowId, RowId>> ids;
      double buf[3];
      HashJoin(rr, tt, [&](RowId a, RowId b) {
        mapper.Combine(rcc.vector(a), tcc.vector(b), buf);
        vals.insert(vals.end(), buf, buf + 3);
        ids.emplace_back(a, b);
      });
      PointView view{vals.data(), ids.size(), 3};
      std::set<std::pair<double, double>> sig;  // value signature
      std::vector<std::pair<RowId, RowId>> members;
      for (uint32_t i : SkylineSFS(view)) members.push_back(ids[i]);
      std::sort(members.begin(), members.end());
      return members;
    };

    auto reference = skyline_of(r, t, rc, tc);

    std::vector<RowId> r_keep_ids = PushThroughPrune(r, rc);
    std::vector<RowId> t_keep_ids = PushThroughPrune(t, tc);
    std::vector<RowId> r_map, t_map;
    Relation rp = r.Select(r_keep_ids, &r_map);
    Relation tp = t.Select(t_keep_ids, &t_map);
    ContributionTable rpc(rp, mapper, Side::kR);
    ContributionTable tpc(tp, mapper, Side::kT);
    auto pruned = skyline_of(rp, tp, rpc, tpc);
    // Translate back to original ids.
    for (auto& pr : pruned) {
      pr = {r_map[pr.first], t_map[pr.second]};
    }
    std::sort(pruned.begin(), pruned.end());
    EXPECT_EQ(pruned, reference);
  }
}

TEST(PushThrough, PrunesDominatedGroupMembers) {
  Relation rel = TinyRelation();
  CanonicalMapper mapper(MapSpec::PairwiseSum(2), Preference::AllLowest(2));
  ContributionTable contribs(rel, mapper, Side::kR);
  std::vector<RowId> kept = PushThroughPrune(rel, contribs);
  EXPECT_EQ(kept, (std::vector<RowId>{0, 2, 3, 4}));  // row 1 pruned
}

TEST(PushThrough, EqualTuplesWithinGroupAllSurvive) {
  Relation rel(Schema::Anonymous(2));
  const double row[] = {1.0, 1.0};
  rel.Append(row, 1);
  rel.Append(row, 1);
  CanonicalMapper mapper(MapSpec::PairwiseSum(2), Preference::AllLowest(2));
  ContributionTable contribs(rel, mapper, Side::kR);
  EXPECT_EQ(PushThroughPrune(rel, contribs).size(), 2u);
}

}  // namespace
}  // namespace progxe
