// Tests for the progressiveness harness: recorder, metrics, workloads,
// experiment driver, CSV writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/csv_writer.h"
#include "harness/experiment.h"

namespace progxe {
namespace {

TEST(ProgressiveRecorder, CountsAndMonotoneTime) {
  ProgressiveRecorder rec;
  for (int i = 0; i < 5; ++i) rec.OnResult();
  rec.OnFinish();
  EXPECT_EQ(rec.total_results(), 5u);
  EXPECT_TRUE(rec.finished());
  EXPECT_GE(rec.total_seconds(), 0.0);
  ASSERT_EQ(rec.points().size(), 5u);
  for (size_t i = 1; i < rec.points().size(); ++i) {
    EXPECT_GE(rec.points()[i].t_sec, rec.points()[i - 1].t_sec);
    EXPECT_EQ(rec.points()[i].count, i + 1);
  }
}

TEST(ProgressiveRecorder, TimeToFraction) {
  ProgressiveRecorder rec;
  EXPECT_EQ(rec.TimeToFirst(), -1.0);
  EXPECT_EQ(rec.TimeToFraction(0.5), -1.0);
  for (int i = 0; i < 10; ++i) rec.OnResult();
  rec.OnFinish();
  EXPECT_GE(rec.TimeToFirst(), 0.0);
  EXPECT_GE(rec.TimeToFraction(0.5), rec.TimeToFirst());
  EXPECT_GE(rec.TimeToFraction(1.0), rec.TimeToFraction(0.5));
}

TEST(ProgressiveRecorder, DownsampleKeepsEndpoints) {
  ProgressiveRecorder rec;
  for (int i = 0; i < 100; ++i) rec.OnResult();
  auto sampled = rec.Downsample(10);
  ASSERT_EQ(sampled.size(), 10u);
  EXPECT_EQ(sampled.front().count, rec.points().front().count);
  EXPECT_EQ(sampled.back().count, rec.points().back().count);
  // Small series pass through.
  ProgressiveRecorder small;
  small.OnResult();
  EXPECT_EQ(small.Downsample(10).size(), 1u);
}

TEST(ProgressiveRecorder, ResetClearsState) {
  ProgressiveRecorder rec;
  rec.OnResult();
  rec.OnFinish();
  rec.Reset();
  EXPECT_EQ(rec.total_results(), 0u);
  EXPECT_FALSE(rec.finished());
  EXPECT_TRUE(rec.points().empty());
}

TEST(Metrics, SummarizeRecorder) {
  ProgressiveRecorder rec;
  for (int i = 0; i < 4; ++i) rec.OnResult();
  rec.OnFinish();
  ProgressivenessMetrics m = SummarizeRecorder(rec);
  EXPECT_EQ(m.total_results, 4u);
  EXPECT_GE(m.time_to_25pct, 0.0);
  EXPECT_LE(m.time_to_25pct, m.time_to_75pct);
}

TEST(FormatSeries, EmitsLabelledRows) {
  std::vector<SeriesPoint> pts{{0.1, 1}, {0.2, 2}};
  std::string out = FormatSeries(pts, "ProgXe");
  EXPECT_NE(out.find("ProgXe t=0.1"), std::string::npos);
  EXPECT_NE(out.find("n=2"), std::string::npos);
}

TEST(WorkloadParams, ToStringMentionsEverything) {
  WorkloadParams params;
  params.distribution = Distribution::kAntiCorrelated;
  params.cardinality = 123;
  std::string s = params.ToString();
  EXPECT_NE(s.find("anticorrelated"), std::string::npos);
  EXPECT_NE(s.find("123"), std::string::npos);
}

TEST(Workload, SourcesDifferButShareParams) {
  WorkloadParams params;
  params.cardinality = 100;
  params.dims = 2;
  auto w = Workload::Make(params);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->r().size(), 100u);
  EXPECT_EQ(w->t().size(), 100u);
  // R and T are seeded differently.
  bool differ = false;
  for (RowId i = 0; i < 100 && !differ; ++i) {
    differ = w->r().attr(i, 0) != w->t().attr(i, 0);
  }
  EXPECT_TRUE(differ);
  SkyMapJoinQuery q = w->query();
  EXPECT_EQ(q.map.output_dimensions(), 2);
  EXPECT_TRUE(q.pref.IsAllLowest());
}

TEST(AlgoRegistry, NamesAndOrder) {
  EXPECT_STREQ(AlgoName(Algo::kProgXe), "ProgXe");
  EXPECT_STREQ(AlgoName(Algo::kSsmj), "SSMJ");
  EXPECT_EQ(AllAlgos().size(), 8u);
  EXPECT_STREQ(AlgoName(Algo::kSaj), "SAJ");
}

TEST(OptionsForAlgo, VariantFlags) {
  ProgXeOptions base;
  EXPECT_EQ(OptionsForAlgo(Algo::kProgXe, base).ordering,
            OrderingMode::kProgOrder);
  EXPECT_FALSE(OptionsForAlgo(Algo::kProgXe, base).push_through);
  EXPECT_TRUE(OptionsForAlgo(Algo::kProgXePlus, base).push_through);
  EXPECT_EQ(OptionsForAlgo(Algo::kProgXeNoOrder, base).ordering,
            OrderingMode::kRandom);
  EXPECT_TRUE(OptionsForAlgo(Algo::kProgXePlusNoOrder, base).push_through);
}

TEST(RunAlgorithm, PopulatesMetricsAndSeries) {
  WorkloadParams params;
  params.cardinality = 300;
  params.dims = 3;
  params.sigma = 0.02;
  auto w = Workload::Make(params);
  ASSERT_TRUE(w.ok());
  auto run = RunAlgorithm(Algo::kProgXe, *w);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->series.size(), run->results.size());
  EXPECT_EQ(run->metrics.total_results, run->results.size());
  EXPECT_GT(run->join_pairs, 0u);
}

TEST(CsvWriter, EscapesSpecials) {
  EXPECT_EQ(CsvWriter::Escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::Escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::Escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::Escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesRowsToFile) {
  const std::string path = "/tmp/progxe_csv_test.csv";
  {
    auto writer = CsvWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    writer->WriteRow({"algo", "t", "n"});
    writer->WriteValues(std::string("ProgXe"), 0.5, 42);
    writer->Close();
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "algo,t,n");
  EXPECT_EQ(line2.substr(0, 7), "ProgXe,");
  std::remove(path.c_str());
}

TEST(CsvWriter, OpenFailsOnBadPath) {
  EXPECT_FALSE(CsvWriter::Open("/nonexistent-dir-xyz/file.csv").ok());
}

}  // namespace
}  // namespace progxe
