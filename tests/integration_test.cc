// Cross-algorithm integration tests: properties P1-P3 of DESIGN.md.
//
// P1 (correctness & completeness): every algorithm's final result set equals
//    the reference skyline of the mapped join.
// P2 (progressive safety): every tuple ProgXe emits before completion is in
//    the final skyline — implied here by P1 because ProgXe's emission log IS
//    its final set (no retraction mechanism exists).
// P3 (monotone emission): cumulative counts are non-decreasing and end at
//    the final skyline size.
#include <gtest/gtest.h>

#include <tuple>

#include "harness/experiment.h"

namespace progxe {
namespace {

struct Sweep {
  Distribution dist;
  size_t n;
  int dims;
  double sigma;
};

class IntegrationSweep : public ::testing::TestWithParam<Sweep> {};

TEST_P(IntegrationSweep, AllAlgorithmsProduceTheReferenceSkyline) {
  const Sweep& sweep = GetParam();
  WorkloadParams params;
  params.distribution = sweep.dist;
  params.cardinality = sweep.n;
  params.dims = sweep.dims;
  params.sigma = sweep.sigma;
  params.seed = 1234;
  auto workload = Workload::Make(params);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();

  auto reference = RunAlgorithm(Algo::kJfSl, *workload);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const auto ref_ids = CanonicalIdPairs(reference->results);

  for (Algo algo : AllAlgos()) {
    SCOPED_TRACE(AlgoName(algo));
    auto run = RunAlgorithm(algo, *workload);
    ASSERT_TRUE(run.ok()) << run.status().ToString();

    // P1: exact same final answer.
    EXPECT_EQ(CanonicalIdPairs(run->results), ref_ids);

    // P3: monotone cumulative emission ending at the total.
    size_t prev = 0;
    double prev_t = 0.0;
    for (const SeriesPoint& p : run->series) {
      EXPECT_EQ(p.count, prev + 1);
      EXPECT_GE(p.t_sec, prev_t);
      prev = p.count;
      prev_t = p.t_sec;
    }
    if (algo != Algo::kSsmj) {
      EXPECT_EQ(prev, ref_ids.size());
    } else {
      // SSMJ may emit batch-1 false positives on top of the final set.
      EXPECT_GE(prev, ref_ids.size());
      EXPECT_EQ(prev, ref_ids.size() + run->early_false_positives);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, IntegrationSweep,
    ::testing::Values(
        // Distribution coverage at d=4 (the paper's main setting).
        Sweep{Distribution::kIndependent, 2000, 4, 0.01},
        Sweep{Distribution::kCorrelated, 2000, 4, 0.01},
        Sweep{Distribution::kAntiCorrelated, 2000, 4, 0.01},
        // Selectivity extremes.
        Sweep{Distribution::kIndependent, 3000, 4, 0.0005},
        Sweep{Distribution::kAntiCorrelated, 1000, 4, 0.1},
        Sweep{Distribution::kCorrelated, 1000, 3, 0.1},
        // Dimensionality sweep.
        Sweep{Distribution::kIndependent, 1500, 2, 0.01},
        Sweep{Distribution::kAntiCorrelated, 800, 5, 0.02},
        Sweep{Distribution::kCorrelated, 800, 6, 0.02},
        // Tiny and skewed.
        Sweep{Distribution::kIndependent, 50, 3, 0.5},
        Sweep{Distribution::kAntiCorrelated, 200, 2, 1.0}),
    [](const ::testing::TestParamInfo<Sweep>& info) {
      const Sweep& s = info.param;
      std::string name = DistributionName(s.dist);
      name += "_n" + std::to_string(s.n) + "_d" + std::to_string(s.dims) +
              "_s" + std::to_string(static_cast<int>(s.sigma * 10000));
      return name;
    });

// ProgXe's early emissions must never be retracted: with a callback that
// snapshots counts, every early tuple must be found in the final set.
TEST(ProgressiveSafety, EarlyEmissionsAreFinal) {
  WorkloadParams params;
  params.distribution = Distribution::kAntiCorrelated;
  params.cardinality = 1500;
  params.dims = 4;
  params.sigma = 0.01;
  auto workload = Workload::Make(params);
  ASSERT_TRUE(workload.ok());

  auto run = RunAlgorithm(Algo::kProgXe, *workload);
  ASSERT_TRUE(run.ok());
  auto reference = RunAlgorithm(Algo::kJfSl, *workload);
  ASSERT_TRUE(reference.ok());

  // All emissions (in emission order) are in the reference answer.
  auto ref_ids = CanonicalIdPairs(reference->results);
  for (const ResultTuple& r : run->results) {
    auto key = std::make_pair(r.r_id, r.t_id);
    EXPECT_TRUE(std::binary_search(ref_ids.begin(), ref_ids.end(), key))
        << "emitted non-skyline tuple (" << r.r_id << "," << r.t_id << ")";
  }
}

// Mapped output values reported by ProgXe match a direct evaluation of the
// mapping functions on the original rows.
TEST(ResultValues, MatchDirectEvaluation) {
  WorkloadParams params;
  params.distribution = Distribution::kIndependent;
  params.cardinality = 800;
  params.dims = 3;
  params.sigma = 0.02;
  auto workload = Workload::Make(params);
  ASSERT_TRUE(workload.ok());

  auto run = RunAlgorithm(Algo::kProgXePlus, *workload);
  ASSERT_TRUE(run.ok());
  ASSERT_FALSE(run->results.empty());

  const MapSpec map = workload->query().map;
  for (const ResultTuple& r : run->results) {
    std::vector<double> expected(static_cast<size_t>(map.output_dimensions()));
    map.Eval(workload->r().attrs(r.r_id), workload->t().attrs(r.t_id),
             expected.data());
    ASSERT_EQ(expected.size(), r.values.size());
    for (size_t j = 0; j < expected.size(); ++j) {
      EXPECT_DOUBLE_EQ(expected[j], r.values[j]);
    }
  }
}

}  // namespace
}  // namespace progxe
