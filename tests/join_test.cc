// Unit tests for the join substrate: key index, hash join, sort-merge join.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "data/generator.h"
#include "join/hash_join.h"
#include "join/key_index.h"
#include "join/sort_merge_join.h"

namespace progxe {
namespace {

Relation MakeRelation(const std::vector<JoinKey>& keys) {
  Relation rel(Schema::Anonymous(1));
  for (size_t i = 0; i < keys.size(); ++i) {
    double v = static_cast<double>(i);
    rel.Append({&v, 1}, keys[i]);
  }
  return rel;
}

using Pair = std::pair<RowId, RowId>;

std::vector<Pair> NestedLoopJoin(const Relation& r, const Relation& t) {
  std::vector<Pair> out;
  for (RowId i = 0; i < r.size(); ++i) {
    for (RowId j = 0; j < t.size(); ++j) {
      if (r.join_key(i) == t.join_key(j)) out.emplace_back(i, j);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(KeyIndex, FindAndDistinct) {
  Relation rel = MakeRelation({1, 2, 1, 3, 2, 1});
  KeyIndex index(rel);
  EXPECT_EQ(index.distinct_keys(), 3u);
  ASSERT_NE(index.Find(1), nullptr);
  EXPECT_EQ(index.Find(1)->size(), 3u);
  EXPECT_EQ(index.Find(99), nullptr);
}

TEST(KeyIndex, SubsetOfRows) {
  Relation rel = MakeRelation({1, 2, 1, 3});
  KeyIndex index(rel, {0, 3});
  EXPECT_EQ(index.distinct_keys(), 2u);
  EXPECT_EQ(index.Find(2), nullptr);
  ASSERT_NE(index.Find(1), nullptr);
  EXPECT_EQ(index.Find(1)->size(), 1u);
}

TEST(KeyIndex, SharesKeyWith) {
  Relation a = MakeRelation({1, 2, 3});
  Relation b = MakeRelation({4, 5, 3});
  Relation c = MakeRelation({6, 7});
  KeyIndex ia(a), ib(b), ic(c);
  EXPECT_TRUE(ia.SharesKeyWith(ib));
  EXPECT_TRUE(ib.SharesKeyWith(ia));
  EXPECT_FALSE(ia.SharesKeyWith(ic));
}

TEST(JoinIndexes, EmitsCrossProductPerKey) {
  Relation r = MakeRelation({1, 1, 2});
  Relation t = MakeRelation({1, 2, 2});
  std::vector<RowId> all_r(r.size());
  std::iota(all_r.begin(), all_r.end(), 0u);
  std::vector<RowId> all_t(t.size());
  std::iota(all_t.begin(), all_t.end(), 0u);
  KeyIndex ir(r, all_r), it(t, all_t);
  std::vector<Pair> pairs;
  size_t count = JoinIndexes(ir, it, [&](RowId a, RowId b) {
    pairs.emplace_back(a, b);
  });
  std::sort(pairs.begin(), pairs.end());
  EXPECT_EQ(count, 4u);  // key 1: 2x1, key 2: 1x2
  EXPECT_EQ(pairs, NestedLoopJoin(r, t));
}

TEST(JoinIndexesBatched, SamePairSequenceForAnyCapacity) {
  Relation r = MakeRelation({1, 1, 2, 3, 3, 3});
  Relation t = MakeRelation({1, 2, 2, 3, 3});
  KeyIndex ir(r), it(t);
  std::vector<Pair> reference;
  const size_t ref_count = JoinIndexes(ir, it, [&](RowId a, RowId b) {
    reference.emplace_back(a, b);
  });
  // Batched joins must emit the identical sequence, full blocks plus a
  // ragged tail, for every buffer capacity.
  for (size_t cap : {size_t{1}, size_t{3}, size_t{4}, size_t{64}}) {
    std::vector<RowIdPair> buf(cap);
    std::vector<Pair> got;
    const size_t count = JoinIndexesBatched(
        ir, it, buf.data(), cap, [&](const RowIdPair* pairs, size_t n) {
          EXPECT_LE(n, cap);
          for (size_t i = 0; i < n; ++i) got.emplace_back(pairs[i].r, pairs[i].t);
        });
    EXPECT_EQ(count, ref_count) << "cap=" << cap;
    EXPECT_EQ(got, reference) << "cap=" << cap;
  }
}

TEST(HashJoin, MatchesNestedLoop) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<JoinKey> rk(50);
    std::vector<JoinKey> tk(70);
    for (auto& key : rk) key = static_cast<JoinKey>(rng.NextBelow(10));
    for (auto& key : tk) key = static_cast<JoinKey>(rng.NextBelow(10));
    Relation r = MakeRelation(rk);
    Relation t = MakeRelation(tk);
    std::vector<Pair> pairs;
    JoinStats stats =
        HashJoin(r, t, [&](RowId a, RowId b) { pairs.emplace_back(a, b); });
    std::sort(pairs.begin(), pairs.end());
    EXPECT_EQ(pairs, NestedLoopJoin(r, t));
    EXPECT_EQ(stats.output_pairs, pairs.size());
  }
}

TEST(HashJoin, BuildsOnSmallerSide) {
  Relation small = MakeRelation({1, 2});
  Relation large = MakeRelation({1, 1, 2, 2, 3});
  JoinStats st = HashJoin(small, large, [](RowId, RowId) {});
  EXPECT_EQ(st.build_rows, 2u);
  EXPECT_EQ(st.probe_rows, 5u);
  // Emission stays in (r, t) order regardless of build side.
  std::vector<Pair> pairs;
  HashJoin(large, small, [&](RowId a, RowId b) { pairs.emplace_back(a, b); });
  for (const Pair& p : pairs) {
    EXPECT_EQ(large.join_key(p.first), small.join_key(p.second));
  }
}

TEST(HashJoin, CountAndSelectivity) {
  Relation r = MakeRelation({1, 2, 3, 4});
  Relation t = MakeRelation({1, 1, 9});
  EXPECT_EQ(HashJoinCount(r, t), 2u);
  EXPECT_DOUBLE_EQ(MeasuredJoinSelectivity(r, t), 2.0 / 12.0);
  Relation empty = MakeRelation({});
  EXPECT_DOUBLE_EQ(MeasuredJoinSelectivity(r, empty), 0.0);
}

TEST(SortMergeJoin, MatchesHashJoin) {
  Rng rng(44);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<JoinKey> rk(40);
    std::vector<JoinKey> tk(60);
    for (auto& key : rk) key = static_cast<JoinKey>(rng.NextBelow(8));
    for (auto& key : tk) key = static_cast<JoinKey>(rng.NextBelow(8));
    Relation r = MakeRelation(rk);
    Relation t = MakeRelation(tk);
    std::vector<RowId> all_r(r.size());
    std::iota(all_r.begin(), all_r.end(), 0u);
    std::vector<RowId> all_t(t.size());
    std::iota(all_t.begin(), all_t.end(), 0u);
    std::vector<Pair> pairs;
    size_t count =
        MergeJoin(SortByKey(r, all_r), SortByKey(t, all_t),
                  [&](RowId a, RowId b) { pairs.emplace_back(a, b); });
    std::sort(pairs.begin(), pairs.end());
    EXPECT_EQ(pairs, NestedLoopJoin(r, t));
    EXPECT_EQ(count, pairs.size());
  }
}

TEST(SortMergeJoin, DisjointAndEmptyInputs) {
  Relation r = MakeRelation({1, 2});
  Relation t = MakeRelation({3, 4});
  std::vector<RowId> all{0, 1};
  size_t count = MergeJoin(SortByKey(r, all), SortByKey(t, all),
                           [](RowId, RowId) { FAIL(); });
  EXPECT_EQ(count, 0u);
  count = MergeJoin(SortByKey(r, {}), SortByKey(t, all),
                    [](RowId, RowId) { FAIL(); });
  EXPECT_EQ(count, 0u);
}

TEST(GeneratedSelectivity, TracksRequestedSigma) {
  // The generator's join-domain construction should yield a measured
  // selectivity close to the requested sigma.
  for (double sigma : {0.1, 0.01, 0.001}) {
    GeneratorOptions opts;
    opts.cardinality = 5000;
    opts.num_attributes = 2;
    opts.join_selectivity = sigma;
    opts.seed = 1;
    Relation r = GenerateRelation(opts).MoveValue();
    opts.seed = 2;
    Relation t = GenerateRelation(opts).MoveValue();
    const double measured = MeasuredJoinSelectivity(r, t);
    EXPECT_GT(measured, sigma * 0.8);
    EXPECT_LT(measured, sigma * 1.2);
  }
}

}  // namespace
}  // namespace progxe
