// Tests for the adaptive kd-style partitioner and its use in the executor.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "data/generator.h"
#include "grid/kd_partitioner.h"
#include "harness/experiment.h"

namespace progxe {
namespace {

struct KdSetup {
  Relation rel{Schema::Anonymous(0)};
  std::unique_ptr<ContributionTable> contribs;
};

KdSetup MakeKdSetup(Distribution dist, size_t n, int d, uint64_t seed = 3) {
  KdSetup s;
  GeneratorOptions gen;
  gen.distribution = dist;
  gen.cardinality = n;
  gen.num_attributes = d;
  gen.seed = seed;
  s.rel = GenerateRelation(gen).MoveValue();
  CanonicalMapper mapper(MapSpec::PairwiseSum(d), Preference::AllLowest(d));
  s.contribs = std::make_unique<ContributionTable>(s.rel, mapper, Side::kR);
  return s;
}

TEST(KdPartitioner, CoversAllRowsExactlyOnce) {
  KdSetup s = MakeKdSetup(Distribution::kAntiCorrelated, 3000, 3);
  KdPartitionerOptions options;
  options.max_partitions = 64;
  KdPartitioner parts(s.rel, *s.contribs, options);
  std::unordered_set<RowId> seen;
  for (const InputPartition& part : parts.partitions()) {
    EXPECT_FALSE(part.rows.empty());
    for (RowId id : part.rows) {
      EXPECT_TRUE(seen.insert(id).second);
    }
  }
  EXPECT_EQ(seen.size(), s.rel.size());
  EXPECT_LE(parts.num_partitions(), 64u);
}

TEST(KdPartitioner, PartitionsAreBalanced) {
  KdSetup s = MakeKdSetup(Distribution::kCorrelated, 4096, 2);
  KdPartitionerOptions options;
  options.max_partitions = 32;
  KdPartitioner parts(s.rel, *s.contribs, options);
  size_t min_size = s.rel.size();
  size_t max_size = 0;
  for (const InputPartition& part : parts.partitions()) {
    min_size = std::min(min_size, part.size());
    max_size = std::max(max_size, part.size());
  }
  // Median splits: sizes within a factor ~2 of each other (power-of-two n).
  EXPECT_LE(max_size, 2 * min_size + 1);
}

TEST(KdPartitioner, BoundsAreTight) {
  KdSetup s = MakeKdSetup(Distribution::kIndependent, 1000, 3);
  KdPartitionerOptions options;
  KdPartitioner parts(s.rel, *s.contribs, options);
  for (const InputPartition& part : parts.partitions()) {
    for (int j = 0; j < 3; ++j) {
      double lo = 1e300;
      double hi = -1e300;
      for (RowId id : part.rows) {
        lo = std::min(lo, s.contribs->vector(id)[j]);
        hi = std::max(hi, s.contribs->vector(id)[j]);
      }
      EXPECT_DOUBLE_EQ(part.bounds[static_cast<size_t>(j)].lo, lo);
      EXPECT_DOUBLE_EQ(part.bounds[static_cast<size_t>(j)].hi, hi);
    }
  }
}

TEST(KdPartitioner, RespectsRowTarget) {
  KdSetup s = MakeKdSetup(Distribution::kIndependent, 2000, 2);
  KdPartitionerOptions options;
  options.max_rows_per_partition = 100;
  options.max_partitions = 1000;
  KdPartitioner parts(s.rel, *s.contribs, options);
  for (const InputPartition& part : parts.partitions()) {
    EXPECT_LE(part.size(), 100u);
  }
}

TEST(KdPartitioner, AllEqualRowsSingleLeaf) {
  Relation rel(Schema::Anonymous(2));
  const double row[] = {5.0, 5.0};
  for (int i = 0; i < 100; ++i) rel.Append(row, i % 3);
  CanonicalMapper mapper(MapSpec::PairwiseSum(2), Preference::AllLowest(2));
  ContributionTable contribs(rel, mapper, Side::kR);
  KdPartitionerOptions options;
  options.max_rows_per_partition = 10;
  KdPartitioner parts(rel, contribs, options);
  ASSERT_EQ(parts.num_partitions(), 1u);
  EXPECT_EQ(parts.partitions()[0].size(), 100u);
}

TEST(KdPartitioner, EmptyRelation) {
  Relation rel(Schema::Anonymous(2));
  CanonicalMapper mapper(MapSpec::PairwiseSum(2), Preference::AllLowest(2));
  ContributionTable contribs(rel, mapper, Side::kR);
  KdPartitioner parts(rel, contribs, KdPartitionerOptions());
  EXPECT_EQ(parts.num_partitions(), 0u);
}

// The executor produces identical answers under either partitioning scheme.
class KdExecutorSweep : public ::testing::TestWithParam<Distribution> {};

TEST_P(KdExecutorSweep, SameSkylineAsUniformGrid) {
  WorkloadParams params;
  params.distribution = GetParam();
  params.cardinality = 1500;
  params.dims = 4;
  params.sigma = 0.01;
  params.seed = 77;
  auto workload = Workload::Make(params);
  ASSERT_TRUE(workload.ok());

  auto run_with = [&](PartitioningScheme scheme) {
    ProgXeOptions options;
    options.partitioning = scheme;
    auto run = RunAlgorithm(Algo::kProgXe, *workload, options);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return CanonicalIdPairs(run->results);
  };
  EXPECT_EQ(run_with(PartitioningScheme::kKdTree),
            run_with(PartitioningScheme::kUniformGrid));
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, KdExecutorSweep,
                         ::testing::Values(Distribution::kIndependent,
                                           Distribution::kCorrelated,
                                           Distribution::kAntiCorrelated),
                         [](const auto& info) {
                           return DistributionName(info.param);
                         });

}  // namespace
}  // namespace progxe
