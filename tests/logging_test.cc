// Tests for leveled logging and a regression guard for the tie fast-path.
#include <gtest/gtest.h>

#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "data/relation.h"
#include "progxe/executor.h"

namespace progxe {
namespace {

TEST(Logging, LevelFilteringRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // These must not crash and must be filtered (kError threshold).
  PROGXE_LOG(Debug) << "filtered";
  PROGXE_LOG(Info) << "filtered " << 42;
  PROGXE_LOG(Error) << "emitted to stderr intentionally (test)";
  SetLogLevel(original);
}

TEST(Logging, StreamsArbitraryTypes) {
  SetLogLevel(LogLevel::kError);  // keep the test quiet
  PROGXE_LOG(Info) << "int=" << 1 << " double=" << 2.5 << " str="
                   << std::string("x");
  SetLogLevel(LogLevel::kInfo);
}

TEST(Logging, ParseLogLevelAcceptsNamesAndNumbers) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("WARN", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("1", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("3", &level));
  EXPECT_EQ(level, LogLevel::kError);
  // Junk leaves *out untouched.
  level = LogLevel::kDebug;
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("4", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
}

TEST(Logging, PrefixCarriesLevelTimestampThreadAndSite) {
  const std::string prefix =
      internal::FormatLogPrefix(LogLevel::kWarn, "sharded_stream.cc", 412);
  EXPECT_NE(prefix.find("WARN"), std::string::npos) << prefix;
  EXPECT_NE(prefix.find("tid="), std::string::npos) << prefix;
  EXPECT_NE(prefix.find("+"), std::string::npos) << prefix;
  EXPECT_NE(prefix.find("sharded_stream.cc:412"), std::string::npos) << prefix;
}

TEST(Logging, ThreadIdsAreSmallDenseAndStable) {
  const int mine = LogThreadId();
  EXPECT_GE(mine, 0);
  EXPECT_EQ(mine, LogThreadId());  // stable across calls
  int other = -1;
  std::thread([&] { other = LogThreadId(); }).join();
  EXPECT_GE(other, 0);
  EXPECT_NE(other, mine);
}

TEST(Logging, MonotonicSecondsAdvances) {
  const double a = LogMonotonicSeconds();
  const double b = LogMonotonicSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

// Regression: workloads where a large fraction of join results are exactly
// equal in the output space (e.g. query-relaxation penalty dimensions that
// are all zero) must stay near-linear. Before the tie fast-path in
// OutputTable::Insert, every equal tuple scanned all previous equals,
// making this quadratic (minutes); now it finishes in well under a second.
TEST(TieFastPath, MassivelyTiedWorkloadStaysLinear) {
  Relation r(Schema::Anonymous(2));
  Relation t(Schema::Anonymous(2));
  const double zero[] = {0.0, 0.0};
  // 400 x 400 within one join group = 160K identical join results.
  for (int i = 0; i < 400; ++i) {
    r.Append(zero, 1);
    t.Append(zero, 1);
  }
  SkyMapJoinQuery q;
  q.r = &r;
  q.t = &t;
  q.map = MapSpec::PairwiseSum(2);
  q.pref = Preference::AllLowest(2);

  // All pairs tie: everything is in the skyline.
  Stopwatch watch;
  size_t count = 0;
  ProgXeExecutor exec(q, ProgXeOptions());
  ASSERT_TRUE(exec.Run([&](const ResultTuple&) { ++count; }).ok());
  EXPECT_EQ(count, 400u * 400u);
  EXPECT_LT(watch.ElapsedSeconds(), 5.0)
      << "tie fast-path regressed to quadratic behaviour";
  // The dominance work must be linear-ish, not ~(160K)^2 / 2.
  EXPECT_LT(exec.stats().dominance_comparisons, 2u * 160000u);
}

}  // namespace
}  // namespace progxe
