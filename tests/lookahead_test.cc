// Tests for output-space look-ahead (Section III-A): region bounds
// soundness, signature skipping, region pruning soundness (P4) and
// partition marking soundness.
#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "grid/input_grid.h"
#include "join/hash_join.h"
#include "outputspace/lookahead.h"
#include "skyline/skyline.h"

namespace progxe {
namespace {

struct LaSetup {
  Relation r{Schema::Anonymous(0)};
  Relation t{Schema::Anonymous(0)};
  CanonicalMapper mapper;
  std::unique_ptr<ContributionTable> rc;
  std::unique_ptr<ContributionTable> tc;
  std::unique_ptr<InputGrid> r_grid;
  std::unique_ptr<InputGrid> t_grid;
  LookaheadResult la;
};

LaSetup MakeSetup(Distribution dist, size_t n, int d, double sigma,
                uint64_t seed, int input_cells = 3, int output_cells = 8) {
  LaSetup s;
  GeneratorOptions gen;
  gen.distribution = dist;
  gen.cardinality = n;
  gen.num_attributes = d;
  gen.join_selectivity = sigma;
  gen.seed = seed;
  s.r = GenerateRelation(gen).MoveValue();
  gen.seed = seed + 1;
  s.t = GenerateRelation(gen).MoveValue();
  s.mapper = CanonicalMapper(MapSpec::PairwiseSum(d),
                             Preference::AllLowest(d));
  s.rc = std::make_unique<ContributionTable>(s.r, s.mapper, Side::kR);
  s.tc = std::make_unique<ContributionTable>(s.t, s.mapper, Side::kT);
  InputGridOptions opts;
  opts.cells_per_dim = input_cells;
  s.r_grid = std::make_unique<InputGrid>(s.r, *s.rc, opts);
  s.t_grid = std::make_unique<InputGrid>(s.t, *s.tc, opts);
  LookaheadOptions la_opts;
  la_opts.output_cells_per_dim = output_cells;
  s.la = OutputSpaceLookahead(*s.r_grid, *s.t_grid, s.mapper, la_opts)
             .MoveValue();
  return s;
}

TEST(Lookahead, EveryJoinResultFallsInItsRegionBounds) {
  LaSetup s = MakeSetup(Distribution::kIndependent, 600, 3, 0.02, 42);
  const int k = 3;
  double buf[3];
  for (const Region& region : s.la.regions) {
    const InputPartition& pa =
        s.r_grid->partitions()[static_cast<size_t>(region.a)];
    const InputPartition& pb =
        s.t_grid->partitions()[static_cast<size_t>(region.b)];
    JoinIndexes(pa.key_index, pb.key_index, [&](RowId a, RowId b) {
      s.mapper.Combine(s.rc->vector(a), s.tc->vector(b), buf);
      for (int j = 0; j < k; ++j) {
        EXPECT_GE(buf[j], region.bounds[static_cast<size_t>(j)].lo - 1e-9);
        EXPECT_LE(buf[j], region.bounds[static_cast<size_t>(j)].hi + 1e-9);
      }
    });
  }
}

TEST(Lookahead, SkippedPairsProduceNoJoinResults) {
  LaSetup s = MakeSetup(Distribution::kIndependent, 600, 3, 0.0005, 7);
  ASSERT_GT(s.la.stats.pairs_skipped_signature, 0u)
      << "test needs at least one skipped pair to be meaningful";
  // Build the set of regions created and check complement pairs are empty.
  std::set<std::pair<int32_t, int32_t>> created;
  for (const Region& region : s.la.regions) {
    created.insert({region.a, region.b});
  }
  for (size_t a = 0; a < s.r_grid->num_partitions(); ++a) {
    for (size_t b = 0; b < s.t_grid->num_partitions(); ++b) {
      if (created.count({static_cast<int32_t>(a), static_cast<int32_t>(b)})) {
        continue;
      }
      const InputPartition& pa = s.r_grid->partitions()[a];
      const InputPartition& pb = s.t_grid->partitions()[b];
      size_t pairs = JoinIndexes(pa.key_index, pb.key_index,
                                 [](RowId, RowId) {});
      EXPECT_EQ(pairs, 0u) << "signature skip lost join results";
    }
  }
}

TEST(Lookahead, GuaranteedRegionsReallyProduceAResult) {
  LaSetup s = MakeSetup(Distribution::kCorrelated, 500, 2, 0.01, 3);
  for (const Region& region : s.la.regions) {
    if (!region.guaranteed) continue;
    const InputPartition& pa =
        s.r_grid->partitions()[static_cast<size_t>(region.a)];
    const InputPartition& pb =
        s.t_grid->partitions()[static_cast<size_t>(region.b)];
    size_t pairs =
        JoinIndexes(pa.key_index, pb.key_index, [](RowId, RowId) {});
    EXPECT_GT(pairs, 0u) << "guaranteed region with empty join";
  }
}

// P4: no final-skyline tuple ever maps into a pruned region or a marked
// cell. Verified against a brute-force skyline of the full mapped join.
TEST(Lookahead, PruningSoundness) {
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAntiCorrelated,
        Distribution::kCorrelated}) {
    SCOPED_TRACE(DistributionName(dist));
    LaSetup s = MakeSetup(dist, 500, 3, 0.05, 11);
    const int k = 3;

    // Brute-force mapped join + skyline.
    std::vector<double> vals;
    double buf[3];
    HashJoin(s.r, s.t, [&](RowId a, RowId b) {
      s.mapper.Combine(s.rc->vector(a), s.tc->vector(b), buf);
      vals.insert(vals.end(), buf, buf + 3);
    });
    PointView view{vals.data(), vals.size() / 3, k};
    std::vector<uint32_t> sky = SkylineSFS(view);

    std::vector<CellCoord> coords(static_cast<size_t>(k));
    for (uint32_t idx : sky) {
      const double* p = view.point(idx);
      // Not inside any pruned region... a skyline tuple may map into several
      // regions' bounds; it must not be *only* producible by pruned ones.
      // Strong check: it must not fall in a marked cell.
      s.la.output_grid.CoordsOf(p, coords.data());
      const CellIndex cell = s.la.output_grid.IndexOf(coords.data());
      EXPECT_EQ(s.la.marked[static_cast<size_t>(cell)], 0)
          << "final skyline tuple in a marked cell";
    }

    // And: every pruned region's entire join output is dominated.
    for (const Region& region : s.la.regions) {
      if (!region.pruned) continue;
      const InputPartition& pa =
          s.r_grid->partitions()[static_cast<size_t>(region.a)];
      const InputPartition& pb =
          s.t_grid->partitions()[static_cast<size_t>(region.b)];
      JoinIndexes(pa.key_index, pb.key_index, [&](RowId a, RowId b) {
        s.mapper.Combine(s.rc->vector(a), s.tc->vector(b), buf);
        bool dominated = false;
        for (size_t i = 0; i < view.n && !dominated; ++i) {
          dominated = DominatesMin(view.point(i), buf, k);
        }
        EXPECT_TRUE(dominated)
            << "pruned region contained a non-dominated join result";
      });
    }
  }
}

TEST(Lookahead, RejectsOversizedOutputGrid) {
  LaSetup s;  // build manually to control options
  GeneratorOptions gen;
  gen.cardinality = 100;
  gen.num_attributes = 5;
  s.r = GenerateRelation(gen).MoveValue();
  gen.seed = 43;
  s.t = GenerateRelation(gen).MoveValue();
  s.mapper =
      CanonicalMapper(MapSpec::PairwiseSum(5), Preference::AllLowest(5));
  s.rc = std::make_unique<ContributionTable>(s.r, s.mapper, Side::kR);
  s.tc = std::make_unique<ContributionTable>(s.t, s.mapper, Side::kT);
  InputGridOptions opts;
  opts.cells_per_dim = 2;
  s.r_grid = std::make_unique<InputGrid>(s.r, *s.rc, opts);
  s.t_grid = std::make_unique<InputGrid>(s.t, *s.tc, opts);
  LookaheadOptions la_opts;
  la_opts.output_cells_per_dim = 64;  // 64^5 cells
  la_opts.max_output_cells = 1000000;
  auto result = OutputSpaceLookahead(*s.r_grid, *s.t_grid, s.mapper, la_opts);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(Lookahead, BloomSignaturesDisableGuarantees) {
  LaSetup s;
  GeneratorOptions gen;
  gen.cardinality = 300;
  gen.num_attributes = 2;
  gen.join_selectivity = 0.01;
  s.r = GenerateRelation(gen).MoveValue();
  gen.seed = 43;
  s.t = GenerateRelation(gen).MoveValue();
  s.mapper =
      CanonicalMapper(MapSpec::PairwiseSum(2), Preference::AllLowest(2));
  s.rc = std::make_unique<ContributionTable>(s.r, s.mapper, Side::kR);
  s.tc = std::make_unique<ContributionTable>(s.t, s.mapper, Side::kT);
  InputGridOptions opts;
  opts.cells_per_dim = 3;
  opts.signature_mode = SignatureMode::kBloom;
  s.r_grid = std::make_unique<InputGrid>(s.r, *s.rc, opts);
  s.t_grid = std::make_unique<InputGrid>(s.t, *s.tc, opts);
  LookaheadOptions la_opts;
  auto la = OutputSpaceLookahead(*s.r_grid, *s.t_grid, s.mapper, la_opts);
  ASSERT_TRUE(la.ok());
  for (const Region& region : la->regions) {
    EXPECT_FALSE(region.guaranteed)
        << "Bloom signatures cannot guarantee population";
    EXPECT_FALSE(region.pruned)
        << "nothing may be pruned without a guaranteed dominator";
  }
  EXPECT_EQ(la->stats.cells_marked, 0u);
}

}  // namespace
}  // namespace progxe
